// Repo-level benchmarks: one per table/figure/claim in the paper's
// evaluation, mirroring the experiments package (see DESIGN.md §3 and
// EXPERIMENTS.md). `go test -bench=. -benchmem` regenerates every number;
// cmd/benchreport prints the same data as formatted tables.
package repro

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/pattern"
	"repro/internal/programs/authsim"
	"repro/internal/programs/eliza"
	"repro/internal/programs/rogue"
	"repro/internal/tcl"
	"repro/internal/vt"
)

// --- E1: rogue throughput ("about 10 games per second", §7.4) ----------

func benchmarkRogue(b *testing.B, spawn func(cfg *core.Config, g int) (*core.Session, error)) {
	cfg := &core.Config{Timeout: 5 * time.Second}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := spawn(cfg, i)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.ExpectTimeout(5*time.Second,
			core.Glob("*Str: 18*"), core.TimeoutCase(), core.EOFCase()); err != nil {
			s.Close()
			b.Fatal(err)
		}
		s.Close()
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "games/sec")
}

func BenchmarkRogueGamesPerSecondVirtual(b *testing.B) {
	benchmarkRogue(b, func(cfg *core.Config, g int) (*core.Session, error) {
		return core.SpawnProgram(cfg, "rogue",
			rogue.New(rogue.Config{Seed: int64(g + 1), LuckNumerator: 1, LuckDenominator: 1}))
	})
}

func BenchmarkRogueGamesPerSecondPipe(b *testing.B) {
	benchmarkRogue(b, func(cfg *core.Config, g int) (*core.Session, error) {
		return core.SpawnPipeCommand(cfg, "sh", "-c",
			`echo "Level: 1  Gold: 0  Hp: 12(12)  Str: 18(18)  Arm: 4  Exp: 1/0"; read line`)
	})
}

func BenchmarkRogueGamesPerSecondPty(b *testing.B) {
	benchmarkRogue(b, func(cfg *core.Config, g int) (*core.Session, error) {
		return core.SpawnCommand(cfg, "sh", "-c",
			`echo "Level: 1  Gold: 0  Hp: 12(12)  Str: 18(18)  Arm: 4  Exp: 1/0"; read line`)
	})
}

// --- E2: phase shares (§7.4's 40/26/16/8/5 table) -----------------------

func BenchmarkRoguePhaseBreakdown(b *testing.B) {
	prof := metrics.NewProfiler()
	cfg := &core.Config{Timeout: 5 * time.Second, Prof: prof}
	for i := 0; i < b.N; i++ {
		s, err := core.SpawnCommand(cfg, "sh", "-c",
			`echo "Level: 1  Gold: 0  Hp: 12(12)  Str: 18(18)  Arm: 4  Exp: 1/0"; read line`)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.ExpectTimeout(5*time.Second,
			core.Glob("*Str: 18*"), core.TimeoutCase(), core.EOFCase()); err != nil {
			s.Close()
			b.Fatal(err)
		}
		s.Close()
	}
	for _, s := range prof.Snapshot() {
		name := strings.NewReplacer(" ", "_", "/", "_", "(", "", ")", "").Replace(s.Phase.String())
		b.ReportMetric(s.Share*100, "pct_"+name)
	}
}

// --- E4: match_max bounded buffer (§3.1) --------------------------------

func BenchmarkMatchBufferAppend(b *testing.B) {
	for _, mm := range []int{512, 2000, 8192} {
		b.Run(fmt.Sprintf("match_max=%d", mm), func(b *testing.B) {
			payload := strings.Repeat("x", 4096)
			s, err := core.SpawnProgram(&core.Config{MatchMax: mm}, "torrent",
				func(stdin io.Reader, stdout io.Writer) error {
					for {
						if _, err := io.WriteString(stdout, payload); err != nil {
							return nil
						}
					}
				})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			b.ResetTimer()
			var total int64
			for total < int64(b.N)*int64(len(payload)) {
				time.Sleep(100 * time.Microsecond)
				total = s.TotalSeen()
			}
			b.SetBytes(int64(len(payload)))
			if got := len(s.Buffer()); got > mm {
				b.Fatalf("buffer %d exceeds match_max %d", got, mm)
			}
		})
	}
}

// --- E5: rescan vs incremental matching (§7.4 open question) ------------

func matcherStream(n int) string {
	return strings.Repeat("x", n-8) + "Str: 18\n"
}

func BenchmarkMatcherRescan(b *testing.B) {
	for _, n := range []int{2000, 8000, 32000} {
		for _, c := range []int{1, 16, 256} {
			b.Run(fmt.Sprintf("n=%d/c=%d", n, c), func(b *testing.B) {
				stream := matcherStream(n)
				b.SetBytes(int64(n))
				for i := 0; i < b.N; i++ {
					for pos := 0; pos < len(stream); pos += c {
						end := pos + c
						if end > len(stream) {
							end = len(stream)
						}
						pattern.Match("*Str: 18*", stream[:end])
					}
				}
			})
		}
	}
}

func BenchmarkMatcherIncremental(b *testing.B) {
	for _, n := range []int{2000, 8000, 32000} {
		for _, c := range []int{1, 16, 256} {
			b.Run(fmt.Sprintf("n=%d/c=%d", n, c), func(b *testing.B) {
				stream := matcherStream(n)
				b.SetBytes(int64(n))
				for i := 0; i < b.N; i++ {
					m := pattern.NewIncremental("*Str: 18*")
					for pos := 0; pos < len(stream); pos += c {
						end := pos + c
						if end > len(stream) {
							end = len(stream)
						}
						m.Feed([]byte(stream[pos:end]))
					}
				}
			})
		}
	}
}

// --- E6: select across N processes (Figure 5, §7.2) ---------------------

func BenchmarkSelectNProcesses(b *testing.B) {
	for _, n := range []int{1, 5, 10, 32} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			sessions := make([]*core.Session, n)
			for i := range sessions {
				s, err := core.SpawnProgram(nil, fmt.Sprintf("peer%d", i),
					func(stdin io.Reader, stdout io.Writer) error {
						buf := make([]byte, 256)
						for {
							k, err := stdin.Read(buf)
							if err != nil {
								return nil
							}
							if _, err := stdout.Write(buf[:k]); err != nil {
								return nil
							}
						}
					})
				if err != nil {
					b.Fatal(err)
				}
				sessions[i] = s
			}
			defer func() {
				for _, s := range sessions {
					s.Close()
				}
			}()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				target := sessions[i%n]
				if err := target.Send("ping\n"); err != nil {
					b.Fatal(err)
				}
				ready := core.Select(5*time.Second, sessions...)
				if len(ready) == 0 {
					b.Fatal("select timeout")
				}
				if _, err := target.ExpectTimeout(5*time.Second, core.Glob("*ping*")); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E7: flushing programs (§5.4) ---------------------------------------

func BenchmarkFlushBaselineVsExpect(b *testing.B) {
	run := func(b *testing.B, paced bool) int {
		const commands = 3
		var mu sync.Mutex
		processed := 0
		prog := authsim.NewFlusher(authsim.FlusherConfig{
			Commands:  commands,
			ThinkTime: 2 * time.Millisecond,
			OnProcessed: func(string) {
				mu.Lock()
				processed++
				mu.Unlock()
			},
		})
		s, err := core.SpawnProgram(nil, "rn", prog)
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		if paced {
			for i := 0; i < commands; i++ {
				if _, err := s.ExpectTimeout(5*time.Second, core.Glob("*Command*> *")); err != nil {
					b.Fatal(err)
				}
				s.Send("cmd\n")
			}
		} else {
			s.Send("cmd\ncmd\ncmd\n")
			s.CloseWrite()
		}
		if _, err := s.ExpectTimeout(10*time.Second, core.Glob("*processed*"), core.EOFCase()); err != nil {
			b.Fatal(err)
		}
		s.Wait()
		mu.Lock()
		defer mu.Unlock()
		return processed
	}
	b.Run("blind", func(b *testing.B) {
		lost := 0
		for i := 0; i < b.N; i++ {
			lost += 3 - run(b, false)
		}
		b.ReportMetric(float64(lost)/float64(b.N), "lost/run")
	})
	b.Run("expect-paced", func(b *testing.B) {
		lost := 0
		for i := 0; i < b.N; i++ {
			lost += 3 - run(b, true)
		}
		b.ReportMetric(float64(lost)/float64(b.N), "lost/run")
	})
}

// --- E8: expect vs human (§7.4) -----------------------------------------

func BenchmarkExpectVsHumanDialogue(b *testing.B) {
	for i := 0; i < b.N; i++ {
		login := authsim.NewLogin(authsim.LoginConfig{
			Accounts: map[string]string{"don": "secret"},
		})
		s, err := core.SpawnProgram(&core.Config{Timeout: 5 * time.Second}, "login", login)
		if err != nil {
			b.Fatal(err)
		}
		steps := []struct{ pat, reply string }{
			{"*login:*", "don\n"},
			{"*Password:*", "secret\n"},
			{"*$ *", "who\n"},
			{"*$ *", "logout\n"},
		}
		for _, st := range steps {
			if _, err := s.ExpectMatch(st.pat); err != nil {
				b.Fatal(err)
			}
			s.Send(st.reply)
		}
		s.ExpectTimeout(2*time.Second, core.Glob("*logout*"), core.EOFCase())
		s.Close()
	}
	// 22 keystrokes at 280 ms plus 4 s of think time ≈ a 10-second human.
	human := 22*0.280 + 4*1.0
	perOp := b.Elapsed().Seconds() / float64(b.N)
	b.ReportMetric(human/perOp, "speedup_vs_human")
}

// --- E9: pipe interposition (§5.9) ---------------------------------------

func BenchmarkPipeDirectVsInterposed(b *testing.B) {
	const payload = 1 << 20
	producer := func(stdin io.Reader, stdout io.Writer) error {
		chunk := make([]byte, 32*1024)
		sent := 0
		for sent < payload {
			if _, err := stdout.Write(chunk); err != nil {
				return nil
			}
			sent += len(chunk)
		}
		return nil
	}
	b.Run("direct", func(b *testing.B) {
		b.SetBytes(payload)
		for i := 0; i < b.N; i++ {
			s, err := core.SpawnProgram(&core.Config{MatchMax: payload + 1}, "p", producer)
			if err != nil {
				b.Fatal(err)
			}
			for s.TotalSeen() < payload {
				time.Sleep(50 * time.Microsecond)
			}
			s.Close()
		}
	})
	b.Run("interposed", func(b *testing.B) {
		b.SetBytes(payload)
		for i := 0; i < b.N; i++ {
			s, err := core.SpawnProgram(&core.Config{MatchMax: payload + 1}, "p", producer)
			if err != nil {
				b.Fatal(err)
			}
			moved := 0
			for moved < payload {
				r, err := s.ExpectTimeout(10*time.Second, core.Regexp(`(?s).+`), core.EOFCase())
				if err != nil {
					b.Fatal(err)
				}
				moved += len(r.Text)
				if r.Eof {
					break
				}
			}
			s.Close()
		}
	})
}

func BenchmarkFanOut(b *testing.B) {
	// One producer relayed to k sinks — the tee superset of §5.9.
	for _, k := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			const payload = 256 << 10
			b.SetBytes(payload)
			for i := 0; i < b.N; i++ {
				s, err := core.SpawnProgram(&core.Config{MatchMax: payload + 1}, "p",
					func(stdin io.Reader, stdout io.Writer) error {
						chunk := make([]byte, 32*1024)
						for sent := 0; sent < payload; sent += len(chunk) {
							if _, err := stdout.Write(chunk); err != nil {
								return nil
							}
						}
						return nil
					})
				if err != nil {
					b.Fatal(err)
				}
				sinks := make([][]byte, k)
				moved := 0
				for moved < payload {
					r, err := s.ExpectTimeout(10*time.Second, core.Regexp(`(?s).+`), core.EOFCase())
					if err != nil {
						b.Fatal(err)
					}
					for j := range sinks {
						sinks[j] = append(sinks[j][:0], r.Text...)
					}
					moved += len(r.Text)
					if r.Eof {
						break
					}
				}
				s.Close()
			}
		})
	}
}

// --- E12: baseline comparison (§7.1, §9) ---------------------------------

func BenchmarkChatVsExpectLogin(b *testing.B) {
	b.Run("expect", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			login := authsim.NewLogin(authsim.LoginConfig{
				Accounts: map[string]string{"uucp": "secret"},
			})
			s, err := core.SpawnProgram(&core.Config{Timeout: 5 * time.Second}, "login", login)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := s.ExpectMatch("*login:*"); err != nil {
				b.Fatal(err)
			}
			s.Send("uucp\n")
			if _, err := s.ExpectMatch("*Password:*"); err != nil {
				b.Fatal(err)
			}
			s.Send("secret\n")
			if _, err := s.ExpectMatch("*Welcome*"); err != nil {
				b.Fatal(err)
			}
			s.Close()
		}
	})
}

// --- E14: the paper's scripts through the full interpreter ---------------

func BenchmarkPaperRogueScript(b *testing.B) {
	off := false
	for i := 0; i < b.N; i++ {
		eng := core.NewEngine(core.EngineOptions{
			UserIn:  strings.NewReader(""),
			UserOut: io.Discard,
			LogUser: &off,
		})
		eng.RegisterVirtual("rogue", rogue.New(rogue.Config{
			Seed: int64(i + 1), LuckNumerator: 1, LuckDenominator: 1,
		}))
		_, err := eng.Run(`
			set timeout 3
			for {} 1 {} {
				spawn rogue
				expect {*Str:\ 18*} break \
					timeout close
			}
		`)
		if err != nil {
			b.Fatal(err)
		}
		eng.Shutdown()
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "games/sec")
}

// --- language microbenchmarks (the substrate the engine pays for) --------

func BenchmarkTclEvalSet(b *testing.B) {
	i := tcl.New()
	b.ReportAllocs()
	for k := 0; k < b.N; k++ {
		if _, err := i.Eval(`set a 5`); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTclExpr(b *testing.B) {
	i := tcl.New()
	i.SetVar("x", "21")
	for k := 0; k < b.N; k++ {
		if _, err := i.Eval(`expr {$x * 2 + 1}`); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTclProcCall(b *testing.B) {
	i := tcl.New()
	if _, err := i.Eval(`proc add {a b} {expr $a+$b}`); err != nil {
		b.Fatal(err)
	}
	for k := 0; k < b.N; k++ {
		if _, err := i.Eval(`add 2 3`); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTclPaperFactorial(b *testing.B) {
	i := tcl.New()
	if _, err := i.Eval(`proc fac x {
		if {$x == 1} {return 1}
		return [expr {$x * [fac [expr $x-1]]}]
	}`); err != nil {
		b.Fatal(err)
	}
	for k := 0; k < b.N; k++ {
		if _, err := i.Eval(`fac 10`); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGlobMatchStatusLine(b *testing.B) {
	line := "Level: 1  Gold: 0  Hp: 12(12)  Str: 18(18)  Arm: 4  Exp: 1/0"
	b.SetBytes(int64(len(line)))
	for i := 0; i < b.N; i++ {
		if !pattern.Match("*Str: 18*", line) {
			b.Fatal("no match")
		}
	}
}

func BenchmarkElizaRespond(b *testing.B) {
	e := eliza.NewEngine(1)
	for i := 0; i < b.N; i++ {
		e.Respond("i am very unhappy about my computer")
	}
}

// --- §8 extensions: terminal emulator and combined expect/select ---------

func BenchmarkVTScreenWrite(b *testing.B) {
	// One full curses repaint of a 24×80 screen per iteration.
	frame := func() []byte {
		var sb strings.Builder
		sb.WriteString("\x1b[2J\x1b[H")
		for r := 1; r <= 23; r++ {
			fmt.Fprintf(&sb, "\x1b[%d;1H%s", r, strings.Repeat(".", 79))
		}
		sb.WriteString("\x1b[24;1HLevel: 1  Gold: 0  Hp: 12(12)  Str: 18(18)  Arm: 4  Exp: 1/0")
		return []byte(sb.String())
	}()
	s := vt.NewScreen(24, 80)
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Write(frame)
	}
}

func BenchmarkVTRegionExtract(b *testing.B) {
	s := vt.NewScreen(24, 80)
	s.Write([]byte("\x1b[24;1HLevel: 1  Gold: 0  Hp: 12(12)  Str: 18(18)  Arm: 4  Exp: 1/0"))
	for i := 0; i < b.N; i++ {
		if !strings.Contains(s.Region(23, 0, 23, 79), "Str: 18") {
			b.Fatal("region lost")
		}
	}
}

func BenchmarkExpectAnyFanIn(b *testing.B) {
	// Combined expect/select across 8 sessions, each answering in turn.
	const n = 8
	sessions := make([]*core.Session, n)
	for i := range sessions {
		s, err := core.SpawnProgram(nil, fmt.Sprintf("peer%d", i),
			func(stdin io.Reader, stdout io.Writer) error {
				buf := make([]byte, 64)
				for {
					k, err := stdin.Read(buf)
					if err != nil {
						return nil
					}
					stdout.Write(buf[:k])
				}
			})
		if err != nil {
			b.Fatal(err)
		}
		sessions[i] = s
	}
	defer func() {
		for _, s := range sessions {
			s.Close()
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		target := sessions[i%n]
		target.Send("tick\n")
		winner, _, err := core.ExpectAny(5*time.Second, sessions, core.Glob("*tick*"))
		if err != nil {
			b.Fatal(err)
		}
		if winner != target {
			b.Fatalf("wrong winner %s", winner.Name())
		}
	}
}

// --- E15: hot-path compilation caches (parse-once Tcl, compiled globs,
// gap-buffer match_max) ---------------------------------------------------

// hotScript is a loop-and-branch script shaped like real expect dialogue
// glue: every iteration re-evaluates the same body text.
const hotScript = `set total 0
foreach n {1 2 3 4 5 6 7 8} {
	if {$n % 2 == 0} {
		set total [expr {$total + $n * 3}]
	} else {
		set log "skip $n"
	}
}
set total`

func BenchmarkEvalCacheHit(b *testing.B) {
	i := tcl.New()
	if _, err := i.Eval(hotScript); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for k := 0; k < b.N; k++ {
		if _, err := i.Eval(hotScript); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalCacheMiss(b *testing.B) {
	// Caching disabled: every evaluation re-parses the script text, the
	// seed implementation's behaviour.
	i := tcl.New()
	i.SetEvalCacheSize(0)
	if _, err := i.Eval(hotScript); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for k := 0; k < b.N; k++ {
		if _, err := i.Eval(hotScript); err != nil {
			b.Fatal(err)
		}
	}
}

const hotExpr = `($x * 2 + 100 / $y) > 50 && $x % 7 <= 3 || !($y == 3)`

func BenchmarkExprASTCached(b *testing.B) {
	i := tcl.New()
	i.SetVar("x", "21")
	i.SetVar("y", "3")
	if _, res := i.ExprString(hotExpr); res.Code != tcl.OK {
		b.Fatal(res.Value)
	}
	b.ReportAllocs()
	for k := 0; k < b.N; k++ {
		if _, res := i.ExprString(hotExpr); res.Code != tcl.OK {
			b.Fatal(res.Value)
		}
	}
}

func BenchmarkExprASTReparse(b *testing.B) {
	i := tcl.New()
	i.SetEvalCacheSize(0)
	i.SetVar("x", "21")
	i.SetVar("y", "3")
	if _, res := i.ExprString(hotExpr); res.Code != tcl.OK {
		b.Fatal(res.Value)
	}
	b.ReportAllocs()
	for k := 0; k < b.N; k++ {
		if _, res := i.ExprString(hotExpr); res.Code != tcl.OK {
			b.Fatal(res.Value)
		}
	}
}

// globBenchText matches only at the tail, so the leading star sweeps the
// whole buffer. The star is followed immediately by a character class: the
// naive matcher re-parses the class text at every position it tries, while
// the compiled program tests one bitset per position.
var globBenchText = strings.Repeat("all quiet on the eastern interface, nothing to report\n", 38) +
	"error 407: tail marker\n"

const globBenchPat = `*[0-9][0-9][0-9]: tail marker*`

func BenchmarkCompiledGlob(b *testing.B) {
	c := pattern.CompileGlob(globBenchPat)
	buf := []byte(globBenchText)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	for k := 0; k < b.N; k++ {
		if !c.Match(buf) {
			b.Fatal("no match")
		}
	}
}

func BenchmarkCompiledGlobNaive(b *testing.B) {
	// The seed matcher: re-lexes the pattern (character classes included)
	// at every position it tries.
	b.SetBytes(int64(len(globBenchText)))
	b.ReportAllocs()
	for k := 0; k < b.N; k++ {
		if !pattern.MatchNaive(globBenchPat, globBenchText) {
			b.Fatal("no match")
		}
	}
}

func BenchmarkRingBufferExpectTorrent(b *testing.B) {
	// End-to-end: a 256 KiB torrent squeezed through the default 2000-byte
	// match buffer, matched at the tail. The gap buffer forgets overflow in
	// O(1); the seed copied the whole buffer down on every overflowing read.
	const streamLen = 256 * 1024
	payload := strings.Repeat("x", streamLen)
	b.SetBytes(streamLen)
	b.ReportAllocs()
	for k := 0; k < b.N; k++ {
		s, err := core.SpawnProgram(nil, "torrent", func(stdin io.Reader, stdout io.Writer) error {
			io.WriteString(stdout, payload)
			io.WriteString(stdout, " TAIL-MARKER")
			io.Copy(io.Discard, stdin)
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.ExpectTimeout(10*time.Second, core.Glob("*TAIL-MARKER*")); err != nil {
			s.Close()
			b.Fatal(err)
		}
		s.Close()
	}
}

func BenchmarkRingBufferCopyShiftReference(b *testing.B) {
	// The seed's match_max enforcement, preserved here as the baseline the
	// gap buffer replaces (see internal/core BenchmarkRingBufferGapAppend
	// for the direct micro comparison).
	const max = core.DefaultMatchMax
	chunk := []byte(strings.Repeat("x", 64))
	var buf []byte
	b.SetBytes(int64(len(chunk)))
	for k := 0; k < b.N; k++ {
		buf = append(buf, chunk...)
		if over := len(buf) - max; over > 0 {
			buf = append(buf[:0:0], buf[over:]...)
		}
	}
}
