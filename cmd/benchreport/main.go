// Command benchreport regenerates the paper's evaluation: every
// quantitative claim in §7 (throughput, CPU shares, code sizes, process
// counts) plus the measurable claims of §3.1, §5.4 and §5.9, printed as
// the tables EXPERIMENTS.md records.
//
//	benchreport                 run everything
//	benchreport -exp e5         run one experiment
//	benchreport -exp e15,e16    run a comma-separated subset
//	benchreport -root DIR       repository root for the code-size experiment
//	benchreport -json FILE      also write the results as JSON
//	benchreport -guard PCT      fail if E16's disabled-recorder overhead
//	                            exceeds PCT percent (the check.sh gate)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "", "run only these experiment ids (comma-separated, e.g. e5 or e15,e16)")
		root     = flag.String("root", ".", "repository root (for the code-size experiment)")
		jsonPath = flag.String("json", "", "write the results to this file as JSON")
		guard    = flag.Float64("guard", 0, "fail when E16's disabled-recorder overhead exceeds this percentage (0 disables)")
	)
	flag.Parse()

	wanted := map[string]bool{}
	for _, id := range strings.Split(*exp, ",") {
		if id = strings.TrimSpace(id); id != "" {
			wanted[strings.ToLower(id)] = true
		}
	}

	specs := experiments.All(*root)
	var results []experiments.Result
	for _, spec := range specs {
		if len(wanted) > 0 && !wanted[strings.ToLower(spec.ID)] {
			continue
		}
		r, err := spec.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: %s: %v\n", spec.ID, err)
			os.Exit(1)
		}
		results = append(results, r)
		fmt.Println(r.Format())
	}
	if len(results) == 0 {
		fmt.Fprintf(os.Stderr, "benchreport: no experiment %q; available:", *exp)
		for _, spec := range specs {
			fmt.Fprintf(os.Stderr, " %s", spec.ID)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(2)
	}

	if *jsonPath != "" {
		data, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: marshal: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchreport: wrote %s (%d experiments)\n", *jsonPath, len(results))
	}

	if *guard > 0 {
		guarded := false
		for _, r := range results {
			overhead, ok := r.Metrics["trace_overhead_disabled_pct"]
			if !ok {
				continue
			}
			guarded = true
			if overhead > *guard {
				fmt.Fprintf(os.Stderr,
					"benchreport: trace-overhead guard FAILED: disabled recorder costs %.1f%% per wakeup (budget %.1f%%)\n",
					overhead, *guard)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr,
				"benchreport: trace-overhead guard ok: disabled recorder %.1f%% per wakeup (budget %.1f%%)\n",
				overhead, *guard)
		}
		if !guarded {
			fmt.Fprintln(os.Stderr, "benchreport: -guard set but E16 did not run; add e16 to -exp")
			os.Exit(2)
		}
	}
}
