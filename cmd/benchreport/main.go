// Command benchreport regenerates the paper's evaluation: every
// quantitative claim in §7 (throughput, CPU shares, code sizes, process
// counts) plus the measurable claims of §3.1, §5.4 and §5.9, printed as
// the tables EXPERIMENTS.md records.
//
//	benchreport                 run everything
//	benchreport -exp e5         run one experiment
//	benchreport -exp e15,e16    run a comma-separated subset
//	benchreport -root DIR       repository root for the code-size experiment
//	benchreport -json FILE      also write the results as JSON
//	benchreport -guard PCT      fail if E16's disabled-recorder overhead
//	                            exceeds PCT percent (the check.sh gate)
//	benchreport -baseline FILE  compare against a committed results JSON
//	benchreport -p99guard PCT   with -baseline: fail if E17's 1k-session
//	                            sharded p99 wakeup-to-match regressed by
//	                            more than PCT percent vs the baseline
//	benchreport -netguard X     fail if E18's 10k-session sharded socket
//	                            per-dialogue cost exceeds X times the
//	                            64-session goroutine socket baseline
//	benchreport -memguard PCT   fail if E19's copied-bytes or ingest-alloc
//	                            per-dialogue drop at 10k sharded sessions
//	                            falls short of PCT percent vs the legacy
//	                            copying referee
//	benchreport -goroguard N    fail if E19's ingest goroutines at 10k
//	                            connections (peak minus drivers) exceed N
//	benchreport -replayguard P  fail if E20's journaled-soak per-dialogue
//	                            overhead exceeds P percent vs ring-only
//	benchreport -ckptguard PCT  with -baseline: fail if E20's
//	                            checkpoint/restore round-trip p99
//	                            regressed by more than PCT percent vs
//	                            the committed BENCH_7.json
//	benchreport -statsguard P   fail if E21's 1 Hz-scraped telemetry
//	                            overhead exceeds P percent per dialogue,
//	                            or armed-but-unscraped exceeds P/3
//	benchreport -vmguard X      fail if E22's bytecode vm is not at least
//	                            X times faster than the cached evaluator
//	                            on eval and expr, or if any script in the
//	                            differential sweep diverges from classic
//	benchreport -muxguard X     fail if E23's 100k-session gateway
//	                            per-dialogue cost exceeds X times the
//	                            committed 10k socket baseline, or if any
//	                            expectd gateway drained dirty
//	benchreport -cpuprofile F   write a CPU profile of the run to F
//	benchreport -memprofile F   write an allocation profile of the run to F
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		exp         = flag.String("exp", "", "run only these experiment ids (comma-separated, e.g. e5 or e15,e16)")
		root        = flag.String("root", ".", "repository root (for the code-size experiment)")
		jsonPath    = flag.String("json", "", "write the results to this file as JSON")
		guard       = flag.Float64("guard", 0, "fail when E16's disabled-recorder overhead exceeds this percentage (0 disables)")
		baseline    = flag.String("baseline", "", "committed results JSON to regression-check against")
		p99guard    = flag.Float64("p99guard", 0, "with -baseline: fail when E17's 1k-session sharded p99 wakeup latency regresses by more than this percentage (0 disables)")
		netguard    = flag.Float64("netguard", 0, "fail when E18's 10k-sharded vs 64-goroutine socket per-dialogue ratio exceeds this factor (0 disables)")
		memguard    = flag.Float64("memguard", 0, "fail when E19's copied-bytes or ingest-alloc drop at 10k sharded sessions is below this percentage (0 disables)")
		goroguard   = flag.Float64("goroguard", 0, "fail when E19's ingest goroutines at 10k connections exceed this count (0 disables)")
		replayguard = flag.Float64("replayguard", 0, "fail when E20's journaled-soak per-dialogue overhead exceeds this percentage (0 disables)")
		ckptguard   = flag.Float64("ckptguard", 0, "with -baseline: fail when E20's checkpoint/restore round-trip p99 regresses by more than this percentage (0 disables)")
		statsguard  = flag.Float64("statsguard", 0, "fail when E21's scraped telemetry overhead exceeds this percentage per dialogue, or armed-but-unscraped exceeds a third of it (0 disables)")
		vmguard     = flag.Float64("vmguard", 0, "fail when E22's bytecode vm eval or expr speedup over the cached evaluator is below this factor, or its differential sweep diverges (0 disables)")
		muxguard    = flag.Float64("muxguard", 0, "fail when E23's 100k-session gateway per-dialogue ratio vs the 10k socket baseline exceeds this factor, or any gateway drained dirty (0 disables)")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
		memprofile  = flag.String("memprofile", "", "write an allocation profile taken after the run to this file")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() { pprof.StopCPUProfile(); f.Close() }()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchreport: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "benchreport: memprofile: %v\n", err)
			}
		}()
	}

	wanted := map[string]bool{}
	for _, id := range strings.Split(*exp, ",") {
		if id = strings.TrimSpace(id); id != "" {
			wanted[strings.ToLower(id)] = true
		}
	}

	specs := experiments.All(*root)
	var results []experiments.Result
	for _, spec := range specs {
		if len(wanted) > 0 && !wanted[strings.ToLower(spec.ID)] {
			continue
		}
		r, err := spec.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: %s: %v\n", spec.ID, err)
			os.Exit(1)
		}
		results = append(results, r)
		fmt.Println(r.Format())
	}
	if len(results) == 0 {
		fmt.Fprintf(os.Stderr, "benchreport: no experiment %q; available:", *exp)
		for _, spec := range specs {
			fmt.Fprintf(os.Stderr, " %s", spec.ID)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(2)
	}

	// Snapshot the baseline BEFORE -json rewrites it: check.sh points
	// -baseline and -json at the same committed file, so reading it after
	// the write would compare the run against itself and pass forever.
	base := baselineSnapshot{path: *baseline}
	if *baseline != "" {
		base.data, base.err = os.ReadFile(*baseline)
	}

	if *jsonPath != "" {
		data, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: marshal: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchreport: wrote %s (%d experiments)\n", *jsonPath, len(results))
	}

	if *guard > 0 {
		guarded := false
		for _, r := range results {
			overhead, ok := r.Metrics["trace_overhead_disabled_pct"]
			if !ok {
				continue
			}
			guarded = true
			if overhead > *guard {
				fmt.Fprintf(os.Stderr,
					"benchreport: trace-overhead guard FAILED: disabled recorder costs %.1f%% per wakeup (budget %.1f%%)\n",
					overhead, *guard)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr,
				"benchreport: trace-overhead guard ok: disabled recorder %.1f%% per wakeup (budget %.1f%%)\n",
				overhead, *guard)
		}
		if !guarded {
			fmt.Fprintln(os.Stderr, "benchreport: -guard set but E16 did not run; add e16 to -exp")
			os.Exit(2)
		}
	}

	if *p99guard > 0 {
		if *baseline == "" {
			fmt.Fprintln(os.Stderr, "benchreport: -p99guard needs -baseline FILE")
			os.Exit(2)
		}
		checkBaselineGuard(base, results, *p99guard,
			"p99_wakeup_ns_1000_sharded", "p99 guard", "1k-session sharded p99 wakeup", "e17")
	}

	if *netguard > 0 {
		const metric = "ratio_10k_sharded_vs_64_goroutine_net"
		guarded := false
		for _, r := range results {
			ratio, ok := r.Metrics[metric]
			if !ok {
				continue
			}
			guarded = true
			if ratio > *netguard {
				fmt.Fprintf(os.Stderr,
					"benchreport: net-scaling guard FAILED: 10k sharded socket sessions cost %.2fx the 64-session baseline (bar %.2fx)\n",
					ratio, *netguard)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr,
				"benchreport: net-scaling guard ok: 10k sharded socket sessions at %.2fx the 64-session baseline (bar %.2fx)\n",
				ratio, *netguard)
		}
		if !guarded {
			fmt.Fprintln(os.Stderr, "benchreport: -netguard set but E18 did not run; add e18 to -exp")
			os.Exit(2)
		}
	}

	if *memguard > 0 {
		guarded := false
		for _, r := range results {
			copied, ok1 := r.Metrics["bytes_copied_drop_pct_10k"]
			allocs, ok2 := r.Metrics["ingest_allocs_drop_pct_10k"]
			if !ok1 || !ok2 {
				continue
			}
			guarded = true
			if copied < *memguard || allocs < *memguard {
				fmt.Fprintf(os.Stderr,
					"benchreport: mem guard FAILED: zero-copy ingest drops copied bytes %.0f%% and ingest allocs %.0f%% per dialogue at 10k sharded sessions (bar %.0f%% each)\n",
					copied, allocs, *memguard)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr,
				"benchreport: mem guard ok: copied bytes -%.0f%%, ingest allocs -%.0f%% per dialogue at 10k sharded sessions (bar %.0f%% each)\n",
				copied, allocs, *memguard)
		}
		if !guarded {
			fmt.Fprintln(os.Stderr, "benchreport: -memguard set but E19 did not run; add e19 to -exp")
			os.Exit(2)
		}
	}

	if *goroguard > 0 {
		guarded := false
		for _, r := range results {
			goro, ok := r.Metrics["ingest_goroutines_10k_sharded"]
			if !ok {
				continue
			}
			guarded = true
			if goro > *goroguard {
				fmt.Fprintf(os.Stderr,
					"benchreport: goroutine guard FAILED: %.0f ingest goroutines above the 10k drivers (ceiling %.0f) — O(conns) ingest is back\n",
					goro, *goroguard)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr,
				"benchreport: goroutine guard ok: %.0f ingest goroutines above the 10k drivers (ceiling %.0f)\n",
				goro, *goroguard)
		}
		if !guarded {
			fmt.Fprintln(os.Stderr, "benchreport: -goroguard set but E19 did not run; add e19 to -exp")
			os.Exit(2)
		}
	}

	if *replayguard > 0 {
		guarded := false
		for _, r := range results {
			overhead, ok := r.Metrics["journal_overhead_pct"]
			if !ok {
				continue
			}
			guarded = true
			if overhead > *replayguard {
				fmt.Fprintf(os.Stderr,
					"benchreport: replay guard FAILED: journaled soak costs %+.1f%% per dialogue vs ring-only (budget %.1f%%)\n",
					overhead, *replayguard)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr,
				"benchreport: replay guard ok: journaled soak %+.1f%% per dialogue vs ring-only (budget %.1f%%)\n",
				overhead, *replayguard)
		}
		if !guarded {
			fmt.Fprintln(os.Stderr, "benchreport: -replayguard set but E20 did not run; add e20 to -exp")
			os.Exit(2)
		}
	}

	if *ckptguard > 0 {
		if *baseline == "" {
			fmt.Fprintln(os.Stderr, "benchreport: -ckptguard needs -baseline FILE")
			os.Exit(2)
		}
		checkBaselineGuard(base, results, *ckptguard,
			"ckpt_roundtrip_p99_ns", "ckpt guard", "checkpoint/restore round-trip p99", "e20")
	}

	if *statsguard > 0 {
		armedBudget := *statsguard / 3
		guarded := false
		for _, r := range results {
			armed, ok1 := r.Metrics["telemetry_armed_overhead_pct"]
			scraped, ok2 := r.Metrics["telemetry_scraped_overhead_pct"]
			if !ok1 || !ok2 {
				continue
			}
			guarded = true
			if scraped > *statsguard || armed > armedBudget {
				fmt.Fprintf(os.Stderr,
					"benchreport: stats guard FAILED: telemetry costs %+.1f%% per dialogue armed (budget %.1f%%), %+.1f%% scraped at 1 Hz (budget %.1f%%)\n",
					armed, armedBudget, scraped, *statsguard)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr,
				"benchreport: stats guard ok: telemetry %+.1f%% per dialogue armed (budget %.1f%%), %+.1f%% scraped at 1 Hz (budget %.1f%%)\n",
				armed, armedBudget, scraped, *statsguard)
		}
		if !guarded {
			fmt.Fprintln(os.Stderr, "benchreport: -statsguard set but E21 did not run; add e21 to -exp")
			os.Exit(2)
		}
	}

	if *vmguard > 0 {
		guarded := false
		for _, r := range results {
			evalX, ok1 := r.Metrics["vm_eval_speedup_vs_cached"]
			exprX, ok2 := r.Metrics["vm_expr_speedup_vs_cached"]
			diverged, ok3 := r.Metrics["vm_conformance_divergences"]
			if !ok1 || !ok2 || !ok3 {
				continue
			}
			guarded = true
			if diverged > 0 {
				fmt.Fprintf(os.Stderr,
					"benchreport: vm guard FAILED: %d differential-sweep scripts diverge from the classic referee\n",
					int(diverged))
				os.Exit(1)
			}
			if evalX < *vmguard || exprX < *vmguard {
				fmt.Fprintf(os.Stderr,
					"benchreport: vm guard FAILED: vm is %.1fx (eval) / %.1fx (expr) vs cached (bar %.1fx)\n",
					evalX, exprX, *vmguard)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr,
				"benchreport: vm guard ok: vm %.1fx (eval) / %.1fx (expr) vs cached (bar %.1fx), 0 divergences\n",
				evalX, exprX, *vmguard)
		}
		if !guarded {
			fmt.Fprintln(os.Stderr, "benchreport: -vmguard set but E22 did not run; add e22 to -exp")
			os.Exit(2)
		}
	}

	if *muxguard > 0 {
		guarded := false
		for _, r := range results {
			ratio, ok1 := r.Metrics["ratio_100k_mux_vs_10k_net_baseline"]
			dirty, ok2 := r.Metrics["mux_dirty_drains"]
			if !ok1 || !ok2 {
				continue
			}
			guarded = true
			if dirty > 0 {
				fmt.Fprintf(os.Stderr,
					"benchreport: mux guard FAILED: %d expectd gateway(s) did not drain clean under 100k live streams\n",
					int(dirty))
				os.Exit(1)
			}
			if ratio > *muxguard {
				fmt.Fprintf(os.Stderr,
					"benchreport: mux guard FAILED: 100k gateway sessions cost %.2fx the 10k socket baseline per dialogue (bar %.2fx)\n",
					ratio, *muxguard)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr,
				"benchreport: mux guard ok: 100k gateway sessions at %.2fx the 10k socket baseline per dialogue (bar %.2fx), all drains clean\n",
				ratio, *muxguard)
		}
		if !guarded {
			fmt.Fprintln(os.Stderr, "benchreport: -muxguard set but E23 did not run; add e23 to -exp")
			os.Exit(2)
		}
	}
}

// baselineSnapshot is the committed baseline file as it was before this
// run rewrote it with -json. Guards must compare against the snapshot,
// never re-read the path.
type baselineSnapshot struct {
	path string
	data []byte
	err  error
}

// checkBaselineGuard compares one nanosecond metric of the current run
// against a committed baseline JSON, failing past pct percent regression.
// A missing baseline file or metric is the bootstrap case: warn and pass,
// so the first run that commits the snapshot doesn't guard against
// itself.
func checkBaselineGuard(base baselineSnapshot, results []experiments.Result, pct float64, metric, guardName, what, expID string) {
	var cur float64
	found := false
	for _, r := range results {
		if v, ok := r.Metrics[metric]; ok {
			cur, found = v, true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "benchreport: %s set but the experiment did not run; add %s to -exp\n", guardName, expID)
		os.Exit(2)
	}
	if base.err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %s: no baseline at %s (%v) — bootstrap pass\n", guardName, base.path, base.err)
		return
	}
	var baseResults []experiments.Result
	if err := json.Unmarshal(base.data, &baseResults); err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %s: unreadable baseline %s: %v\n", guardName, base.path, err)
		os.Exit(1)
	}
	var ref float64
	refFound := false
	for _, r := range baseResults {
		if v, ok := r.Metrics[metric]; ok {
			ref, refFound = v, true
		}
	}
	if !refFound || ref <= 0 {
		fmt.Fprintf(os.Stderr, "benchreport: %s: baseline %s lacks %s — bootstrap pass\n", guardName, base.path, metric)
		return
	}
	regress := (cur/ref - 1) * 100
	if regress > pct {
		fmt.Fprintf(os.Stderr,
			"benchreport: %s FAILED: %s %.0fns vs baseline %.0fns (%+.1f%%, budget %+.1f%%)\n",
			guardName, what, cur, ref, regress, pct)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr,
		"benchreport: %s ok: %s %.0fns vs baseline %.0fns (%+.1f%%, budget %+.1f%%)\n",
		guardName, what, cur, ref, regress, pct)
}
