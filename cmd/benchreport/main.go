// Command benchreport regenerates the paper's evaluation: every
// quantitative claim in §7 (throughput, CPU shares, code sizes, process
// counts) plus the measurable claims of §3.1, §5.4 and §5.9, printed as
// the tables EXPERIMENTS.md records.
//
//	benchreport            run everything
//	benchreport -exp e5    run one experiment
//	benchreport -root DIR  repository root for the code-size experiment
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		exp  = flag.String("exp", "", "run only this experiment id (e.g. e5)")
		root = flag.String("root", ".", "repository root (for the code-size experiment)")
	)
	flag.Parse()

	specs := experiments.All(*root)
	ran := 0
	for _, spec := range specs {
		if *exp != "" && !strings.EqualFold(*exp, spec.ID) {
			continue
		}
		ran++
		r, err := spec.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: %s: %v\n", spec.ID, err)
			os.Exit(1)
		}
		fmt.Println(r.Format())
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "benchreport: no experiment %q; available:", *exp)
		for _, spec := range specs {
			fmt.Fprintf(os.Stderr, " %s", spec.ID)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(2)
	}
}
