// Command chat runs a uucp L.sys-style chat script against a program —
// the 1978 baseline the paper credits for expect's name (§7.1). Usage:
//
//	chat 'ogin:--ogin: uucp ssword: secret' loginsim -host durer
//
// The script alternates expect and send fields; expect fields support the
// one alternation uucico had (expect-send-expect). The child runs over a
// pty. Exit status 0 means the chat completed; anything else is exactly
// the all-or-nothing failure mode the paper criticizes.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/baseline/uucpchat"
	"repro/internal/proc"
)

func main() {
	var (
		timeout = flag.Duration("timeout", 45*time.Second, "per-expect-field timeout (uucico used 45s)")
		pipe    = flag.Bool("pipe", false, "run the child over pipes instead of a pty")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: chat [-timeout d] [-pipe] 'script' program [args...]")
		os.Exit(2)
	}
	script, err := uucpchat.Parse(args[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "chat: bad script: %v\n", err)
		os.Exit(2)
	}
	var p *proc.Process
	if *pipe {
		p, err = proc.SpawnPipe(args[1], args[2:], proc.Options{})
	} else {
		p, err = proc.SpawnPty(args[1], args[2:], proc.Options{})
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "chat: spawn: %v\n", err)
		os.Exit(1)
	}
	defer p.Close()
	r := uucpchat.NewRunner(p)
	r.Timeout = *timeout
	if err := r.Run(script); err != nil {
		fmt.Fprintf(os.Stderr, "chat: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("chat: completed")
}
