// Command chess is the simulated chess(6): it accepts moves in old
// descriptive notation ("p/k2-k3") and announces its replies with the
// move-number prefix ("1. ... p/k7-k5") that makes its output unusable as
// input — the asymmetry the paper's two-chess example must translate.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/programs/chess"
)

func main() {
	var (
		white = flag.Bool("white", false, "engine plays white (moves first)")
		seed  = flag.Int64("seed", 0, "move-choice seed (0 = random)")
		limit = flag.Int("max-moves", 0, "engine offers a draw after this many of its moves (0 = none)")
	)
	flag.Parse()
	side := chess.Black
	if *white {
		side = chess.White
	}
	prog := chess.New(chess.Config{EngineSide: side, Seed: *seed, MaxMoves: *limit})
	if err := prog(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "chess: %v\n", err)
		os.Exit(1)
	}
}
