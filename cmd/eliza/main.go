// Command eliza is Weizenbaum's doctor as a standalone interactive
// program. Two of them can be wired to each other with a goexpect script
// (§5.8 of the paper).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/programs/eliza"
)

func main() {
	var (
		seed   = flag.Int64("seed", 0, "response-choice seed (0 = random)")
		prompt = flag.Bool("prompt", false, `print "> " before each read`)
	)
	flag.Parse()
	prog := eliza.New(eliza.Config{Seed: *seed, Prompt: *prompt})
	if err := prog(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "eliza: %v\n", err)
		os.Exit(1)
	}
}
