// Command expectd is the session server: a concurrent TCP daemon that
// serves the repo's interactive programs — the load-workbench talkers
// and the simulated programs (login, eliza, chess) — one program
// instance per connection, so a goexpect script can drive them remotely:
//
//	expectd -serve echo,login-sim &
//	goexpect -c 'spawn -network 127.0.0.1:46000; ...'
//
// Each served program gets its own listener; the daemon prints one
//
//	expectd: serving <name> on <host:port>
//
// line per program (machine-parseable — E18 scrapes them) and then
// "expectd: ready".
//
// With -mux addr the daemon additionally runs a session gateway: one
// framed listener (internal/netx/mux) multiplexing every served program,
// many sessions per TCP connection — OPEN frames name the program, DATA
// frames interleave per-stream, and a pooled client (netx.MuxPool,
// core.SpawnMux) drives thousands of dialogues over a handful of
// sockets. Its address is printed as "expectd: mux on <host:port>" (E23
// scrapes it). -mux-sessions caps concurrent gateway streams and
// -tenant-quota caps them per tenant; an OPEN over either limit is
// refused immediately with a GOAWAY frame naming the reason, never
// queued. The gateway snapshot is served on /debug/mux when -admin is up.
//
// With -admin addr the daemon also serves a telemetry plane: Prometheus
// metrics on /metrics, live session and shard introspection on
// /debug/sessions and /debug/shards, pprof under /debug/pprof/, and a
// streaming JSONL trace tap on /debug/trace?sid=N. Its bound address is
// printed as "expectd: admin <host:port>" before the ready line, and the
// listener is the LAST thing closed on shutdown — /debug/sessions stays
// readable while the daemon drains.
//
// The daemon can also run a goexpect script of its own (-drive), which
// spawns the same programs in-process — a resident driver session. With
// -checkpoint FILE armed, SIGUSR1 serializes the drive engine's state
// (interpreter globals plus one SessionCheckpoint per live spawn,
// including any expect parked on a shard loop) and atomically writes it
// to FILE:
//
//	expectd -drive robot.exp -checkpoint /var/run/expectd.ckpt &
//	kill -USR1 $!             # → "expectd: checkpointed N sessions to ..."
//
// A later incarnation started with -restore FILE reads the checkpoint
// back and reinstalls the interpreter globals before the drive script
// runs, so a crashed daemon's script can resume from its recorded
// progress. Session transports do not survive the process — restoring
// live dialogues is core.RestoreSession plus a reconnect, which is the
// client's job (see the crash/recovery battery in internal/load).
//
// Shutdown honors the netx.Server drain contract: on SIGTERM/SIGINT the
// daemon stops accepting, lets every in-flight session run its dialogue
// to EOF within the -grace window, and only then closes. It exits 0 only
// when no session was cut mid-dialogue.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/admin"
	"repro/internal/core"
	"repro/internal/load"
	"repro/internal/metrics"
	"repro/internal/netx"
	"repro/internal/proc"
	"repro/internal/programs/authsim"
	"repro/internal/programs/chess"
	"repro/internal/programs/eliza"
)

// registry maps servable program names to constructors. Constructed once
// per listener; program values are instance-safe (one invocation per
// connection), same as virtual spawns.
func registry() map[string]func() proc.Program {
	return map[string]func() proc.Program{
		"echo":   func() proc.Program { return load.EchoServer() },
		"slow":   func() proc.Program { return load.SlowTalker(100 * time.Microsecond) },
		"bursty": func() proc.Program { return load.BurstyLogger(8) },
		"login-sim": func() proc.Program {
			return authsim.NewLogin(authsim.LoginConfig{
				Accounts: map[string]string{"guest": "guest", "don": "secret"},
			})
		},
		"eliza-sim": func() proc.Program { return eliza.New(eliza.Config{}) },
		"chess-sim": func() proc.Program { return chess.New(chess.Config{EngineSide: chess.Black}) },
	}
}

// writeFileAtomic writes b to path via a same-directory temp file and
// rename, so a reader (or a crash) never sees a half-written checkpoint.
func writeFileAtomic(path string, b []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".ckpt-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	return os.Rename(name, path)
}

func main() {
	var (
		serveList = flag.String("serve", "echo,slow,bursty,login-sim,eliza-sim,chess-sim",
			"comma-separated programs to serve; each entry is name or name=host:port (default port 0 on -host)")
		host  = flag.String("host", "127.0.0.1", "default listen host for entries without an explicit address")
		grace = flag.Duration("grace", 30*time.Second, "drain window on SIGTERM/SIGINT before in-flight sessions are cut")
		drive = flag.String("drive", "",
			"goexpect script the daemon runs in-process; served program names are spawnable directly")
		ckptPath = flag.String("checkpoint", "",
			"arm SIGUSR1: each signal atomically writes an engine checkpoint (interpreter globals + live session snapshots) to this file; signal while the drive script is parked in expect, not mid-evaluation")
		restorePath = flag.String("restore", "",
			"engine-checkpoint file to read at startup; its interpreter globals are reinstalled before -drive runs")
		adminAddr = flag.String("admin", "",
			"telemetry-plane listen address (host:0 picks a port): /metrics, /debug/sessions, /debug/shards, /debug/pprof/, /debug/trace")
		muxAddr = flag.String("mux", "",
			"session-gateway listen address (host:0 picks a port): one framed TCP listener multiplexing every served program, many sessions per connection")
		muxSessions = flag.Int("mux-sessions", 0,
			"gateway-wide concurrent session cap (0 = unlimited); excess OPENs are refused with GOAWAY")
		tenantQuota = flag.Int("tenant-quota", 0,
			"per-tenant concurrent session cap on the gateway (0 = unlimited); a tenant at quota gets GOAWAY, not a queue")
	)
	flag.Parse()

	// The drive engine exists only when something needs it. Shards > 0
	// matters for -checkpoint: shard-parked expects are captured by the
	// loop-synchronized checkpoint path, so a SIGUSR1 taken while the
	// drive script waits in expect records the pending op.
	var eng *core.Engine
	if *drive != "" || *ckptPath != "" || *restorePath != "" {
		eng = core.NewEngine(core.EngineOptions{Transport: "pipe", Shards: 2})
		for name, mk := range registry() {
			eng.RegisterVirtual(name, mk())
		}
		if *restorePath != "" {
			b, err := os.ReadFile(*restorePath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "expectd: restore: %v\n", err)
				os.Exit(1)
			}
			ec, err := core.ParseEngineCheckpoint(b)
			if err != nil {
				fmt.Fprintf(os.Stderr, "expectd: restore %s: %v\n", *restorePath, err)
				os.Exit(1)
			}
			eng.RestoreGlobals(ec)
			fmt.Printf("expectd: restored %d globals and %d session checkpoints from %s\n",
				len(ec.Globals), len(ec.Sessions), *restorePath)
		}
	}

	reg := registry()
	var servers []*netx.Server
	var serverNames []string
	for _, entry := range strings.Split(*serveList, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, addr := entry, *host+":0"
		if eq := strings.IndexByte(entry, '='); eq >= 0 {
			name, addr = entry[:eq], entry[eq+1:]
		}
		mk, ok := reg[name]
		if !ok {
			known := make([]string, 0, len(reg))
			for k := range reg {
				known = append(known, k)
			}
			sort.Strings(known)
			fmt.Fprintf(os.Stderr, "expectd: unknown program %q (have %s)\n", name, strings.Join(known, ", "))
			os.Exit(2)
		}
		srv, err := netx.NewServer(addr, mk())
		if err != nil {
			fmt.Fprintf(os.Stderr, "expectd: listen %s for %s: %v\n", addr, name, err)
			os.Exit(1)
		}
		servers = append(servers, srv)
		serverNames = append(serverNames, name)
		fmt.Printf("expectd: serving %s on %s\n", name, srv.Addr())
	}
	if len(servers) == 0 {
		fmt.Fprintln(os.Stderr, "expectd: nothing to serve")
		os.Exit(2)
	}

	// The session gateway multiplexes every served program behind one
	// framed listener: a client pool opens thousands of sessions over a
	// handful of TCP connections (OPEN names the program), which is how the
	// daemon scales past the one-socket-per-dialogue fd ceiling.
	var muxSrv *netx.MuxServer
	if *muxAddr != "" {
		progs := make(map[string]proc.Program, len(serverNames))
		for _, name := range serverNames {
			progs[name] = reg[name]()
		}
		var err error
		muxSrv, err = netx.NewMuxServer(*muxAddr, progs, netx.MuxServerOptions{
			TenantQuota: *tenantQuota,
			MaxSessions: *muxSessions,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "expectd: mux listen %s: %v\n", *muxAddr, err)
			os.Exit(1)
		}
		fmt.Printf("expectd: mux on %s\n", muxSrv.Addr())
	}

	// The telemetry plane comes up after the listeners (so its per-program
	// gauges have servers to read) and before the ready line (so a harness
	// that waits for ready already knows the admin address).
	var adminSrv *admin.Server
	if *adminAddr != "" {
		mreg := metrics.NewRegistry()
		perProgram := func(read func(netx.ServerStats) float64) func() map[string]float64 {
			return func() map[string]float64 {
				out := make(map[string]float64, len(servers))
				for i, srv := range servers {
					out[serverNames[i]] = read(srv.Stats())
				}
				return out
			}
		}
		mreg.GaugeVec("expectd_sessions_active",
			"Connections currently running a program instance, per served program.",
			"program", perProgram(func(st netx.ServerStats) float64 { return float64(st.Active) }))
		mreg.CounterVec("expectd_sessions_served_total",
			"Sessions whose program ran to completion, per served program.",
			"program", perProgram(func(st netx.ServerStats) float64 { return float64(st.Served) }))
		mreg.Gauge("expectd_draining",
			"1 once the daemon has begun its drain, 0 while accepting.",
			func() float64 {
				for _, srv := range servers {
					if srv.Stats().Draining {
						return 1
					}
				}
				return 0
			})
		if muxSrv != nil {
			mreg.Gauge("expectd_mux_sessions_active",
				"Streams currently running a program instance on the session gateway.",
				func() float64 { return float64(muxSrv.Stats().Active) })
			mreg.Counter("expectd_mux_sessions_served_total",
				"Gateway streams whose program ran to completion.",
				func() float64 { return float64(muxSrv.Served()) })
			mreg.Gauge("expectd_mux_conns",
				"Live multiplexed TCP connections on the session gateway.",
				func() float64 { return float64(muxSrv.Stats().Conns) })
			mreg.GaugeVec("expectd_mux_tenant_sessions",
				"Live gateway streams per tenant (quota accounting).",
				"tenant", func() map[string]float64 {
					st := muxSrv.Stats()
					out := make(map[string]float64, len(st.Tenants))
					for tenant, n := range st.Tenants {
						out[tenant] = float64(n)
					}
					return out
				})
			mreg.CounterVec("expectd_mux_refused_total",
				"Gateway OPENs refused with GOAWAY, by reason.",
				"reason", func() map[string]float64 {
					st := muxSrv.Stats()
					out := make(map[string]float64, len(st.Refused))
					for reason, n := range st.Refused {
						out[reason] = float64(n)
					}
					return out
				})
		}
		opt := admin.Options{Registry: mreg}
		if muxSrv != nil {
			opt.Mux = muxSrv.Stats
		}
		if eng != nil {
			eng.RegisterMetrics(mreg)
			opt.Sessions = eng.SessionInfos
			opt.Shards = eng.Scheduler().SnapshotShards
			opt.Recorder = eng.Recorder()
		}
		var err error
		adminSrv, err = admin.Listen(*adminAddr, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "expectd: admin listen %s: %v\n", *adminAddr, err)
			os.Exit(1)
		}
		fmt.Printf("expectd: admin %s\n", adminSrv.Addr())
	}
	fmt.Println("expectd: ready")

	if *drive != "" {
		go func() {
			if _, err := eng.RunFile(*drive); err != nil {
				fmt.Fprintf(os.Stderr, "expectd: drive: %v\n", err)
				return
			}
			fmt.Println("expectd: drive script finished")
		}()
	}

	notif := []os.Signal{syscall.SIGTERM, syscall.SIGINT}
	if *ckptPath != "" {
		notif = append(notif, syscall.SIGUSR1)
	}
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, notif...)
	for s := range sig {
		if s != syscall.SIGUSR1 {
			break
		}
		ec := eng.CheckpointAll()
		if err := writeFileAtomic(*ckptPath, ec.Marshal()); err != nil {
			fmt.Fprintf(os.Stderr, "expectd: checkpoint: %v\n", err)
			continue
		}
		fmt.Printf("expectd: checkpointed %d sessions to %s\n", len(ec.Sessions), *ckptPath)
	}
	fmt.Printf("expectd: draining (grace %v)\n", *grace)

	// Tear the drive engine down first: its sessions resolve with ErrClosed
	// and the script unwinds, so the drain below only waits on the wire.
	if eng != nil {
		eng.Shutdown()
	}

	clean := true
	var served uint64
	nDrains := len(servers)
	if muxSrv != nil {
		nDrains++
	}
	done := make(chan bool, nDrains)
	for _, srv := range servers {
		srv := srv
		go func() { done <- srv.Shutdown(*grace) }()
	}
	if muxSrv != nil {
		// The gateway drains under the same contract: GOAWAY every muxed
		// connection, let in-flight streams finish within grace, cut only
		// at the deadline.
		go func() { done <- muxSrv.Shutdown(*grace) }()
	}
	for i := 0; i < nDrains; i++ {
		if !<-done {
			clean = false
		}
	}
	for _, srv := range servers {
		served += srv.Served()
	}
	if muxSrv != nil {
		served += muxSrv.Served()
	}
	// The admin listener closes LAST — after the wire has drained and the
	// final report is out — so /debug/sessions and /metrics stay readable
	// for the whole drain window (a scraper can watch the backlog fall).
	if clean {
		fmt.Printf("expectd: drained clean, served %d sessions\n", served)
		adminSrv.Close()
		os.Exit(0)
	}
	fmt.Printf("expectd: drain cut sessions at deadline, served %d sessions\n", served)
	adminSrv.Close()
	os.Exit(1)
}
