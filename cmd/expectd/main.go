// Command expectd is the session server: a concurrent TCP daemon that
// serves the repo's interactive programs — the load-workbench talkers
// and the simulated programs (login, eliza, chess) — one program
// instance per connection, so a goexpect script can drive them remotely:
//
//	expectd -serve echo,login-sim &
//	goexpect -c 'spawn -network 127.0.0.1:46000; ...'
//
// Each served program gets its own listener; the daemon prints one
//
//	expectd: serving <name> on <host:port>
//
// line per program (machine-parseable — E18 scrapes them) and then
// "expectd: ready".
//
// Shutdown honors the netx.Server drain contract: on SIGTERM/SIGINT the
// daemon stops accepting, lets every in-flight session run its dialogue
// to EOF within the -grace window, and only then closes. It exits 0 only
// when no session was cut mid-dialogue.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/load"
	"repro/internal/netx"
	"repro/internal/proc"
	"repro/internal/programs/authsim"
	"repro/internal/programs/chess"
	"repro/internal/programs/eliza"
)

// registry maps servable program names to constructors. Constructed once
// per listener; program values are instance-safe (one invocation per
// connection), same as virtual spawns.
func registry() map[string]func() proc.Program {
	return map[string]func() proc.Program{
		"echo":   func() proc.Program { return load.EchoServer() },
		"slow":   func() proc.Program { return load.SlowTalker(100 * time.Microsecond) },
		"bursty": func() proc.Program { return load.BurstyLogger(8) },
		"login-sim": func() proc.Program {
			return authsim.NewLogin(authsim.LoginConfig{
				Accounts: map[string]string{"guest": "guest", "don": "secret"},
			})
		},
		"eliza-sim": func() proc.Program { return eliza.New(eliza.Config{}) },
		"chess-sim": func() proc.Program { return chess.New(chess.Config{EngineSide: chess.Black}) },
	}
}

func main() {
	var (
		serveList = flag.String("serve", "echo,slow,bursty,login-sim,eliza-sim,chess-sim",
			"comma-separated programs to serve; each entry is name or name=host:port (default port 0 on -host)")
		host  = flag.String("host", "127.0.0.1", "default listen host for entries without an explicit address")
		grace = flag.Duration("grace", 30*time.Second, "drain window on SIGTERM/SIGINT before in-flight sessions are cut")
	)
	flag.Parse()

	reg := registry()
	var servers []*netx.Server
	for _, entry := range strings.Split(*serveList, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, addr := entry, *host+":0"
		if eq := strings.IndexByte(entry, '='); eq >= 0 {
			name, addr = entry[:eq], entry[eq+1:]
		}
		mk, ok := reg[name]
		if !ok {
			known := make([]string, 0, len(reg))
			for k := range reg {
				known = append(known, k)
			}
			sort.Strings(known)
			fmt.Fprintf(os.Stderr, "expectd: unknown program %q (have %s)\n", name, strings.Join(known, ", "))
			os.Exit(2)
		}
		srv, err := netx.NewServer(addr, mk())
		if err != nil {
			fmt.Fprintf(os.Stderr, "expectd: listen %s for %s: %v\n", addr, name, err)
			os.Exit(1)
		}
		servers = append(servers, srv)
		fmt.Printf("expectd: serving %s on %s\n", name, srv.Addr())
	}
	if len(servers) == 0 {
		fmt.Fprintln(os.Stderr, "expectd: nothing to serve")
		os.Exit(2)
	}
	fmt.Println("expectd: ready")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	<-sig
	fmt.Printf("expectd: draining (grace %v)\n", *grace)

	clean := true
	var served uint64
	done := make(chan bool, len(servers))
	for _, srv := range servers {
		srv := srv
		go func() { done <- srv.Shutdown(*grace) }()
	}
	for range servers {
		if !<-done {
			clean = false
		}
	}
	for _, srv := range servers {
		served += srv.Served()
	}
	if clean {
		fmt.Printf("expectd: drained clean, served %d sessions\n", served)
		os.Exit(0)
	}
	fmt.Printf("expectd: drain cut sessions at deadline, served %d sessions\n", served)
	os.Exit(1)
}
