// Command fscksim checks a synthetic filesystem image, asking the classic
// CLEAR? / RECONNECT? / ADJUST? / SALVAGE? questions. The -y and -n flags
// reproduce the blanket answers the paper's §5.6 quotes the manual
// against ("a free license to continue"); without them the questions are
// interactive, which is where expect earns its keep.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/programs/fsck"
)

func main() {
	var (
		yes    = flag.Bool("y", false, "assume a yes response to all questions")
		no     = flag.Bool("n", false, "assume a no response to all questions")
		seed   = flag.Int64("seed", 1990, "image generation seed")
		files  = flag.Int("files", 20, "files in the synthetic image")
		blocks = flag.Int("blocks", 100, "blocks in the synthetic image")
		errs   = flag.Int("errors", 6, "inconsistencies to inject")
	)
	flag.Parse()
	if *yes && *no {
		fmt.Fprintln(os.Stderr, "fscksim: -y and -n are mutually exclusive")
		os.Exit(2)
	}
	fs := fsck.Generate(*seed, *files, *blocks, *errs)
	prog := fsck.New(fsck.Config{FS: fs, AnswerYes: *yes, AnswerNo: *no})
	if err := prog(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "fscksim: %v\n", err)
		os.Exit(1)
	}
	if rem := fs.Problems(); len(rem) > 0 {
		os.Exit(1) // like fsck: nonzero when the filesystem is still dirty
	}
}
