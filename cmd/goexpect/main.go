// Command goexpect is the expect interpreter: it reads a script in the
// paper's dialect (Tcl plus spawn/send/expect/interact/…) and controls
// interactive programs with it.
//
// Usage:
//
//	goexpect script.exp [args...]      run a script file
//	goexpect -c "commands" [script]    run commands before the script
//	goexpect -transport pipe script    spawn over pipes instead of ptys
//	goexpect -network script           dial spawn targets as host:port
//	                                   socket sessions (see cmd/expectd)
//	goexpect -shards N script          own sessions with N sharded event
//	                                   loops instead of one pump
//	                                   goroutine per session
//	goexpect -evalmode vm script       pick the Tcl evaluation engine:
//	                                   classic (re-parse everything),
//	                                   cached (default), or vm (register
//	                                   bytecode with inline caches)
//	goexpect -sims script              make the simulated programs
//	                                   (rogue-sim, chess-sim, eliza-sim,
//	                                   fsck-sim, tip-sim, passwd-sim,
//	                                   login-sim) spawnable by name
//	goexpect -stats script             print an engine metrics summary
//	                                   (sessions, phase shares, latency
//	                                   percentiles) on stderr at exit
//	goexpect -diag script              narrate the dialogue on stderr
//	                                   (exp_internal 1: received bytes,
//	                                   pattern attempts and verdicts);
//	                                   -diag -diag (or exp_internal 2
//	                                   in-script) adds engine internals
//
// Scripts see their arguments in the argv variable, paper-style
// ([index $argv 1] is the first argument). Scripts may also start with
// #! and be executed directly.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/programs/authsim"
	"repro/internal/programs/chess"
	"repro/internal/programs/eliza"
	"repro/internal/programs/fsck"
	"repro/internal/programs/ftpsim"
	"repro/internal/programs/modem"
	"repro/internal/programs/rogue"
	"repro/internal/pty"
	"repro/internal/tcl"
)

func main() {
	os.Exit(run())
}

// diagLevel is a counting boolean flag: -diag arms level 1 (the paper's
// §3.3 dialogue narration), -diag -diag level 2 (adds sends, evals,
// timers, match_max forgetting, injected faults). An explicit value
// (-diag=2) also works.
type diagLevel int

func (d *diagLevel) String() string { return strconv.Itoa(int(*d)) }

func (d *diagLevel) IsBoolFlag() bool { return true }

func (d *diagLevel) Set(v string) error {
	if v == "true" || v == "" {
		if *d < 2 {
			*d++
		}
		return nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return fmt.Errorf("diag level must be 0, 1, or 2, got %q", v)
	}
	if n < 0 || n > 2 {
		return fmt.Errorf("diag level must be 0, 1, or 2, got %d", n)
	}
	*d = diagLevel(n)
	return nil
}

func run() int {
	var (
		commands   = flag.String("c", "", "commands to execute before (or instead of) the script")
		transport  = flag.String("transport", "pty", `spawn transport: "pty", "pipe", or "network" (spawn targets are host:port addresses)`)
		network    = flag.Bool("network", false, `shorthand for -transport network: every spawn target is a host:port dialed over the socket transport (expectd serves the other end)`)
		sims       = flag.Bool("sims", false, "register the simulated interactive programs as spawnable names")
		quiet      = flag.Bool("q", false, "start with log_user 0 (script output only)")
		timeout    = flag.Int("timeout", 0, "override the initial timeout variable (seconds; 0 keeps the default 10)")
		shards     = flag.Int("shards", 0, "run sessions under a sharded scheduler with this many event loops (0 = one pump goroutine per session)")
		evalmode   = flag.String("evalmode", "cached", `Tcl evaluation engine: "classic", "cached", or "vm"`)
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile taken at exit to this file")
		stats      = flag.Bool("stats", false, "print an engine metrics summary (sessions, phase shares, latency percentiles) on stderr at exit")
	)
	var diag diagLevel
	flag.Var(&diag, "diag", "render exp_internal-style diagnostics on stderr (repeat for engine internals)")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "goexpect: cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "goexpect: cpuprofile: %v\n", err)
			return 1
		}
		defer func() { pprof.StopCPUProfile(); f.Close() }()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "goexpect: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "goexpect: memprofile: %v\n", err)
			}
		}()
	}

	if *network {
		*transport = "network"
	}
	if _, ok := tcl.ParseEvalMode(*evalmode); !ok {
		fmt.Fprintf(os.Stderr, "goexpect: -evalmode: unknown mode %q (want classic, cached, or vm)\n", *evalmode)
		return 2
	}
	logUser := !*quiet
	opts := core.EngineOptions{
		Transport: *transport,
		LogUser:   &logUser,
		Shards:    *shards,
		EvalMode:  *evalmode,
	}
	if *stats {
		// -stats needs a profiler from the first spawn so the phase and
		// latency families have observations by exit.
		opts.Prof = metrics.NewProfiler()
	}
	eng := core.NewEngine(opts)
	defer eng.Shutdown()
	if *stats {
		reg := metrics.NewRegistry()
		eng.RegisterMetrics(reg)
		defer fmt.Fprint(os.Stderr, reg.Summary())
	}
	if diag > 0 {
		// Same switch the script-level exp_internal command flips; the
		// flag just turns it on before the first spawn.
		eng.Recorder().SetDiag(int(diag), os.Stderr)
	}
	if *sims {
		registerSims(eng)
	}

	// argv holds the script name and its arguments, as in the paper's
	// callback.exp example.
	args := flag.Args()
	eng.Interp.GlobalSet("argv", tcl.FormList(args))
	if *timeout > 0 {
		eng.Interp.GlobalSet("timeout", fmt.Sprint(*timeout))
	}

	// Raw mode on the real terminal during the run makes interact faithful:
	// every keystroke passes through. Restore on exit.
	if pty.IsTerminal(os.Stdin) {
		if restore, err := pty.MakeRaw(os.Stdin); err == nil {
			defer restore()
		}
	}

	if *commands != "" {
		if _, err := eng.Run(*commands); err != nil {
			fmt.Fprintf(os.Stderr, "goexpect: -c: %v\n", err)
			return 1
		}
	}
	if len(args) > 0 {
		if _, err := eng.RunFile(args[0]); err != nil {
			fmt.Fprintf(os.Stderr, "goexpect: %v\n", err)
			if te, ok := err.(*tcl.TclError); ok && te.ErrorInfo != "" {
				fmt.Fprintln(os.Stderr, te.ErrorInfo)
			}
			return 1
		}
	} else if *commands == "" {
		fmt.Fprintln(os.Stderr, "usage: goexpect [-c commands] [-transport pty|pipe] [-sims] script [args...]")
		return 2
	}
	code, _ := eng.ExitCode()
	return code
}

// registerSims installs the simulated interactive programs so hermetic
// scripts can spawn them without separate binaries. EXPECT_SIM_LUCK_DEN
// tunes the rogue roll (default 16, the realistic odds; tests set 1 so
// the faithful timeout-per-bad-game loop doesn't dominate wall clock).
func registerSims(eng *core.Engine) {
	luckDen := 16
	if v, err := strconv.Atoi(os.Getenv("EXPECT_SIM_LUCK_DEN")); err == nil && v > 0 {
		luckDen = v
	}
	eng.RegisterVirtual("rogue-sim", rogue.New(rogue.Config{LuckNumerator: 1, LuckDenominator: luckDen}))
	eng.RegisterVirtual("chess-sim", chess.New(chess.Config{EngineSide: chess.Black}))
	eng.RegisterVirtual("chess-sim-white", chess.New(chess.Config{EngineSide: chess.White}))
	eng.RegisterVirtual("eliza-sim", eliza.New(eliza.Config{}))
	eng.RegisterVirtual("fsck-sim", fsck.New(fsck.Config{FS: fsck.Generate(time.Now().UnixNano(), 20, 100, 6)}))
	eng.RegisterVirtual("passwd-sim", authsim.NewPasswd(authsim.PasswdConfig{
		User:       os.Getenv("USER"),
		Dictionary: []string{"password", "dragon", "letmein", "qwerty"},
	}))
	eng.RegisterVirtual("login-sim", authsim.NewLogin(authsim.LoginConfig{
		Accounts: map[string]string{"guest": "guest", "don": "secret"},
	}))
	eng.RegisterVirtual("su-sim", authsim.NewSu(authsim.SuConfig{Password: "rootpw"}))
	eng.RegisterVirtual("crypt-sim", authsim.NewCrypt(authsim.CryptConfig{}))
	eng.RegisterVirtual("ftp-sim", ftpsim.New(ftpsim.Config{
		Interactive: true,
		Files: []ftpsim.File{
			{Name: "expect.shar.Z", Size: 81920},
			{Name: "README", Size: 1200},
		},
	}))
	eng.RegisterVirtual("tip-sim", modem.NewTip(modem.TipConfig{Modem: modem.Config{
		Directory: map[string]modem.Entry{
			"12016442332": {Result: modem.ResultConnect, Delay: 500 * time.Millisecond},
			"5550000":     {Result: modem.ResultBusy},
		},
		Default: modem.Entry{Result: modem.ResultNoCarrier, Delay: time.Second},
	}}))
}
