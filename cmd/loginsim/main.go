// Command loginsim is the login greeter plus toy shell on stdio: the
// target for uucp chat scripts, stelnet conversations, and goexpect
// sessions alike. Flags select the failure modes experiment E12 injects.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/programs/authsim"
)

func main() {
	var (
		accounts = flag.String("accounts", "guest:guest,don:secret", "comma-separated user:password pairs")
		host     = flag.String("host", "unixhost", "hostname in the banner")
		busy     = flag.Bool("busy", false, "refuse connections with a busy banner")
		variant  = flag.Bool("variant-prompt", false, `prompt "Username:" instead of "login:"`)
		delay    = flag.Duration("delay", 0, "getty delay before the first prompt")
	)
	flag.Parse()
	table := map[string]string{}
	for _, pair := range strings.Split(*accounts, ",") {
		if u, p, ok := strings.Cut(strings.TrimSpace(pair), ":"); ok {
			table[u] = p
		}
	}
	prog := authsim.NewLogin(authsim.LoginConfig{
		Accounts:      table,
		Hostname:      *host,
		Busy:          *busy,
		PromptVariant: *variant,
		LoginDelay:    time.Duration(*delay),
	})
	if err := prog(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "loginsim: %v\n", err)
		os.Exit(1)
	}
}
