// Command modemsim emulates a Hayes modem on stdio (optionally behind a
// tip(1)-style front end with -tip). Its phone directory answers the
// paper's callback number and a busy test line; unknown numbers get NO
// CARRIER after a delay.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/programs/authsim"
	"repro/internal/programs/modem"
)

func main() {
	var (
		tip   = flag.Bool("tip", false, `print the "connected" banner first, like tip(1)`)
		delay = flag.Duration("dial-delay", 300*time.Millisecond, "time to establish a call")
	)
	flag.Parse()
	cfg := modem.Config{
		Directory: map[string]modem.Entry{
			// The paper's example number, +1 (201) 644-2332, answers with
			// a login greeter so callback scripts have something to talk to.
			"12016442332": {Result: modem.ResultConnect, Delay: *delay,
				Remote: authsim.NewLogin(authsim.LoginConfig{
					Accounts: map[string]string{"don": "secret"},
					Hostname: "durer",
				})},
			"5550000": {Result: modem.ResultBusy, Delay: *delay},
		},
		Default: modem.Entry{Result: modem.ResultNoCarrier, Delay: *delay},
	}
	var prog func() error
	if *tip {
		p := modem.NewTip(modem.TipConfig{Modem: cfg})
		prog = func() error { return p(os.Stdin, os.Stdout) }
	} else {
		p := modem.New(cfg)
		prog = func() error { return p(os.Stdin, os.Stdout) }
	}
	if err := prog(); err != nil {
		fmt.Fprintf(os.Stderr, "modemsim: %v\n", err)
		os.Exit(1)
	}
}
