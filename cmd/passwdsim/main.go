// Command passwdsim changes a (pretend) password, and — like the real
// passwd of §1 and §5.3 — insists on conversing with its controlling
// terminal: it opens /dev/tty for the dialogue, bypassing any stdin/stdout
// redirection. Run it from a shell script with redirected input and it
// ignores the redirection; run it under goexpect's pty and the engine is
// the terminal. That is the whole point of the paper.
//
// Without a controlling terminal it exits with an error (pass
// -allow-stdio to fall back to stdin/stdout, which demonstrates what the
// real program refused to do).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/programs/authsim"
)

func main() {
	var (
		user       = flag.String("user", userName(), "account to change")
		old        = flag.String("old", "", "current password (empty = none required)")
		allowStdio = flag.Bool("allow-stdio", false, "converse on stdin/stdout if /dev/tty is unavailable")
	)
	flag.Parse()

	var in io.Reader
	var out io.Writer
	tty, err := os.OpenFile("/dev/tty", os.O_RDWR, 0)
	if err == nil {
		defer tty.Close()
		in, out = tty, tty
	} else if *allowStdio {
		in, out = os.Stdin, os.Stdout
	} else {
		fmt.Fprintln(os.Stderr, "passwdsim: no controlling terminal (the real passwd talks only to /dev/tty)")
		os.Exit(1)
	}

	prog := authsim.NewPasswd(authsim.PasswdConfig{
		User:        *user,
		OldPassword: *old,
		Dictionary:  []string{"password", "dragon", "letmein", "qwerty", "unix"},
	})
	if err := prog(in, out); err != nil {
		os.Exit(1)
	}
}

func userName() string {
	if u := os.Getenv("USER"); u != "" {
		return u
	}
	return "nobody"
}
