// Command rogue is the simulated BSD game as a standalone binary, for
// driving over a real pty: it draws a dungeon screen with the classic
// status line (Level/Gold/Hp/Str/Arm/Exp) and answers movement keys.
// The paper's rogue.exp script restarts it until Str: 18 appears.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/programs/rogue"
)

func main() {
	var (
		seed   = flag.Int64("seed", 0, "character roll seed (0 = random)")
		num    = flag.Int("luck-num", 1, "numerator of the Str-18 probability")
		den    = flag.Int("luck-den", 16, "denominator of the Str-18 probability")
		curses = flag.Bool("curses", false, "paint with VT100 cursor addressing like the real game")
	)
	flag.Parse()
	cfg := rogue.Config{Seed: *seed, LuckNumerator: *num, LuckDenominator: *den, Curses: *curses}
	if err := rogue.Main(cfg, os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "rogue: %v\n", err)
		os.Exit(1)
	}
}
