// Package repro is a from-scratch Go reproduction of "expect: Curing
// Those Uncontrollable Fits of Interaction" (Don Libes, USENIX Summer
// 1990): a programmed-dialogue engine for interactive programs, the Tcl
// language core it embeds, the pty machinery underneath, the interactive
// programs the paper drives, and the uucp-chat and stelnet baselines it
// compares against.
//
// The root package carries the repository documentation and the
// repo-level benchmark suite (bench_test.go), one benchmark per table or
// figure in the paper's evaluation; the implementation lives under
// internal/ (see DESIGN.md for the inventory) and the runnable
// demonstrations under examples/ and cmd/.
package repro
