// callback.exp (§4): dial the computer back so the phone charges land on
// it. The script is the paper's, verbatim but for a shorter logout grace
// period; tip and the Hayes modem are simulated, and the dialed number
// answers with a login greeter.
//
//	go run ./examples/callback 12016442332
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/programs/authsim"
	"repro/internal/programs/modem"
	"repro/internal/tcl"
)

const callbackExp = `
	# first give the user some time to logout
	exec sleep 1
	spawn tip modem
	expect {*connected*} {}
	send ATZ\r
	expect {*OK*} {}
	send ATDT[index $argv 1]\r
	# modem takes a while to connect
	set timeout 60
	expect {*CONNECT*} {send_user "\ncall established, getty will take the line\n"} \
		{*BUSY*} {send_user "\nline busy\n"; exit 1} \
		timeout {send_user "\nno answer\n"; exit 2}
`

func main() {
	number := "12016442332"
	if len(os.Args) > 1 {
		number = os.Args[1]
	}

	eng := core.NewEngine(core.EngineOptions{UserOut: os.Stdout})
	defer eng.Shutdown()
	eng.RegisterVirtual("tip", modem.NewTip(modem.TipConfig{Modem: modem.Config{
		Directory: map[string]modem.Entry{
			"12016442332": {Result: modem.ResultConnect, Delay: 800 * time.Millisecond,
				Remote: authsim.NewLogin(authsim.LoginConfig{
					Accounts: map[string]string{"don": "secret"},
					Hostname: "durer",
				})},
			"5550000": {Result: modem.ResultBusy, Delay: 200 * time.Millisecond},
		},
		Default: modem.Entry{Result: modem.ResultNoCarrier, Delay: 500 * time.Millisecond},
	}}))

	eng.Interp.GlobalSet("argv", tcl.FormList([]string{"callback.exp", number}))
	if _, err := eng.Run(callbackExp); err != nil {
		log.Fatalf("callback.exp: %v", err)
	}
	if code, called := eng.ExitCode(); called && code != 0 {
		fmt.Printf("callback failed with status %d\n", code)
		os.Exit(code)
	}
	fmt.Println("callback.exp finished")
}
