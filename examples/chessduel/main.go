// Chess duel (§2.2, §3.2): two chess programs that were never designed to
// talk to each other, wired together by the expect engine. The white
// engine announces "N. p/k2-k4"; that text is not valid input for the
// black engine, so the relay strips the move-number prefix — the exact
// translation the paper leaves "as an exercise for the reader".
//
//	go run ./examples/chessduel
package main

import (
	"fmt"
	"log"
	"regexp"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/programs/chess"
)

var movePattern = regexp.MustCompile(`\d+\. (?:\.\.\. )?([pnbrqk]/[a-z0-9]+-[a-z0-9]+)`)

// readMove waits for the engine to announce a move (or the game to end)
// and returns the bare move text.
func readMove(s *core.Session) (string, bool) {
	r, err := s.ExpectTimeout(5*time.Second,
		core.Regexp(`\d+\. (\.\.\. )?[pnbrqk]/[a-z0-9]+-[a-z0-9]+`),
		core.Glob("*Checkmate*"),
		core.Glob("*Stalemate*"),
		core.Glob("*Draw*"),
		core.EOFCase(),
	)
	if err != nil {
		log.Fatalf("%s stopped talking: %v", s.Name(), err)
	}
	if r.Index != 0 {
		return strings.TrimSpace(r.Text), false
	}
	m := movePattern.FindStringSubmatch(r.Text)
	if m == nil {
		log.Fatalf("unparseable move announcement %q", r.Text)
	}
	return m[1], true
}

func main() {
	white, err := core.SpawnProgram(nil, "chess-white",
		chess.New(chess.Config{EngineSide: chess.White, Seed: 1, MaxMoves: 20}))
	if err != nil {
		log.Fatal(err)
	}
	defer white.Close()
	black, err := core.SpawnProgram(nil, "chess-black",
		chess.New(chess.Config{EngineSide: chess.Black, Seed: 2}))
	if err != nil {
		log.Fatal(err)
	}
	defer black.Close()

	// Swallow both banners. A regexp consumes only through the banner —
	// an anchored glob would also eat white's first move if it arrived in
	// the same read.
	white.Expect(core.Regexp("Chess\n"))
	black.Expect(core.Regexp("Chess\n"))

	// White opens; thereafter moves are relayed until someone ends it.
	move, ok := readMove(white)
	fmt.Printf("white: %s\n", move)
	for turn := 0; ok && turn < 60; turn++ {
		target, name := black, "black"
		if turn%2 == 1 {
			target, name = white, "white"
		}
		if err := target.Send(move + "\n"); err != nil {
			log.Fatalf("relay to %s: %v", name, err)
		}
		move, ok = readMove(target)
		fmt.Printf("%s: %s\n", name, move)
	}
	fmt.Println("duel over")
}
