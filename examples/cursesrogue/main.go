// The §8 open question, answered: "If expect had a built-in terminal
// emulator, could one look for 'regions' of character graphics?"
//
// This example drives the curses flavor of the rogue simulator — whose
// raw output is VT100 escape-sequence soup — through a screen-tracking
// session, and restarts the game until the *status-line region* of the
// rendered display shows Str: 18. Pattern matching happens on the screen
// the program painted, not on the bytes it emitted.
//
//	go run ./examples/cursesrogue
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/programs/rogue"
	"repro/internal/vt"
)

func main() {
	cfg := &core.Config{
		ScreenRows: 24,
		ScreenCols: 80,
		MatchMax:   1 << 14,
	}
	for game := 1; ; game++ {
		s, err := core.SpawnProgram(cfg, "rogue", rogue.New(rogue.Config{
			Seed:            int64(game),
			LuckNumerator:   1,
			LuckDenominator: 4,
			Curses:          true,
		}))
		if err != nil {
			log.Fatal(err)
		}
		// Wait for the status line to be painted at all (bottom row).
		if err := s.ExpectScreen(2*time.Second, func(sc *vt.Screen) bool {
			return strings.Contains(sc.Row(23), "Str:")
		}); err != nil {
			log.Fatalf("game %d never painted: %v", game, err)
		}
		// Region match on the rendered display, not the byte stream.
		err = s.ExpectScreenRegion(200*time.Millisecond, 23, 0, 23, 79, "*Str: 18*")
		if err == nil {
			fmt.Printf("game %d rolled Str 18; the screen as rendered:\n\n", game)
			fmt.Println(s.Screen().Text())
			fmt.Printf("(raw stream carried %d bytes of escape sequences)\n", s.TotalSeen())
			s.Close()
			return
		}
		fmt.Printf("game %d: %s — restarting\n", game, strings.TrimSpace(s.Screen().Row(23)))
		s.Close()
	}
}
