// Eliza vs. Eliza (§2.2, §5.8): two copies of a program written to talk
// to humans, talking to each other through the expect engine's job
// control. Each turn uses Select to wait for whichever doctor speaks.
//
//	go run ./examples/elizachat
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/programs/eliza"
)

func main() {
	a, err := core.SpawnProgram(nil, "doctor-a", eliza.New(eliza.Config{Seed: 7}))
	if err != nil {
		log.Fatal(err)
	}
	defer a.Close()
	b, err := core.SpawnProgram(nil, "doctor-b", eliza.New(eliza.Config{Seed: 8}))
	if err != nil {
		log.Fatal(err)
	}
	defer b.Close()

	lastLine := func(s *core.Session) string {
		r, err := s.ExpectTimeout(3*time.Second, core.Regexp(`[^\n]+\n`))
		if err != nil {
			log.Fatalf("%s is speechless: %v", s.Name(), err)
		}
		lines := strings.Split(strings.TrimSpace(r.Text), "\n")
		return strings.TrimSpace(lines[len(lines)-1])
	}

	// Both greet; doctor A's greeting becomes the first "patient" line.
	msg := lastLine(a)
	lastLine(b)
	fmt.Printf("a> %s\n", msg)

	for turn := 0; turn < 10; turn++ {
		speaker, listener := b, a
		tag := "b"
		if turn%2 == 1 {
			speaker, listener = a, b
			tag = "a"
		}
		_ = listener
		// Job control, §2.2: wait until the addressed doctor is ready.
		if ready := core.Select(3*time.Second, speaker); len(ready) == 0 && speaker.Buffer() == "" {
			// Quiet is fine — it is waiting for input.
			_ = ready
		}
		if err := speaker.Send(msg + "\n"); err != nil {
			log.Fatal(err)
		}
		msg = lastLine(speaker)
		fmt.Printf("%s> %s\n", tag, msg)
	}
	fmt.Println("(session ends; both doctors bill for the hour)")
}
