// fsck with judgment (§5.6): the paper's answer to "-y is a free license
// to continue". The script answers the routine questions (RECONNECT,
// ADJUST, SALVAGE) with yes, but declines the destructive CLEAR — the
// per-question policy neither -y nor -n can express.
//
//	go run ./examples/fsckauto
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/programs/fsck"
)

func main() {
	fs := fsck.Generate(1990, 20, 100, 6)
	fmt.Printf("before: %d problems\n", len(fs.Problems()))

	s, err := core.SpawnProgram(&core.Config{MatchMax: 1 << 16}, "fsck",
		fsck.New(fsck.Config{FS: fs}))
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()

	answered := map[string]int{}
	for {
		r, err := s.ExpectTimeout(5*time.Second,
			core.Exact("CLEAR? "),
			core.Exact("RECONNECT? "),
			core.Exact("ADJUST? "),
			core.Exact("SALVAGE? "),
			core.EOFCase(),
		)
		if err != nil {
			log.Fatalf("fsck dialogue: %v", err)
		}
		if r.Eof {
			break
		}
		switch r.Index {
		case 0:
			// Clearing deletes data: a human should decide. Here, decline.
			answered["CLEAR:no"]++
			s.Send("no\n")
		default:
			answered[[]string{"", "RECONNECT", "ADJUST", "SALVAGE"}[r.Index]+":yes"]++
			s.Send("yes\n")
		}
	}
	s.Wait()

	fmt.Println("answers given:")
	for q, n := range answered {
		fmt.Printf("  %-14s x%d\n", q, n)
	}
	fmt.Printf("after: %d problems remain (the declined CLEARs)\n", len(fs.Problems()))
}
