// Remote mail retrieval (§5.8): "Commercial systems such as MCI Mail and
// CompuServe do not forward mail, expecting that users will dial up and
// read mail interactively. An expect script can dial up such a system and
// check for mail. If mail is found, a mail process can be started on the
// local system and fed input from the remote system. Mail will then
// appear as if it was originally mailed to the local system."
//
// This example dials the simulated service through the Hayes modem, logs
// in, runs the remote mail command, captures the messages, and delivers
// them to a local mbox file — then prints it, as the local mail reader
// would. "Since expect can run in the background, this can be done at
// night, every hour, or whatever is convenient."
//
//	go run ./examples/mailretrieve
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/programs/authsim"
	"repro/internal/programs/modem"
)

func main() {
	remoteMail := []string{
		"From mci!jdoe: lunch thursday?",
		"From mci!ops: tape drive fixed",
	}
	mdm := modem.New(modem.Config{
		Directory: map[string]modem.Entry{
			"18005551234": {Result: modem.ResultConnect, Delay: 200 * time.Millisecond,
				Remote: authsim.NewLogin(authsim.LoginConfig{
					Accounts: map[string]string{"don": "secret"},
					Hostname: "mcimail",
					Mail:     remoteMail,
				})},
		},
		Default: modem.Entry{Result: modem.ResultNoCarrier},
	})

	s, err := core.SpawnProgram(&core.Config{Timeout: 10 * time.Second, MatchMax: 1 << 14}, "modem", mdm)
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()

	// Dial and log in.
	step := func(sendText, expectGlob string) *core.MatchResult {
		if sendText != "" {
			if err := s.Send(sendText); err != nil {
				log.Fatalf("send %q: %v", sendText, err)
			}
		}
		r, err := s.ExpectMatch(expectGlob)
		if err != nil {
			log.Fatalf("waiting for %q: %v\nbuffer: %q", expectGlob, err, s.Buffer())
		}
		return r
	}
	step("ATZ\r", "*OK*")
	step("ATDT18005551234\r", "*CONNECT*")
	step("", "*login:*")
	step("don\r\n", "*Password:*")
	// The greeter announces pending mail right after login. The anchored
	// glob consumes the shell prompt that follows in the same burst.
	step("secret\r\n", "*You have mail*")

	// Retrieve: run mail, capture everything through the next prompt.
	s.Send("mail\r\n")
	mailDump, err := s.Expect(core.Regexp(`(?s)Message 1:.*\$ `))
	if err != nil {
		log.Fatalf("mail dump: %v", err)
	}
	s.Send("logout\r\n")
	s.ExpectTimeout(2*time.Second, core.Glob("*NO CARRIER*"), core.EOFCase())

	// Deliver locally: parse the captured messages into an mbox.
	msgRe := regexp.MustCompile(`Message \d+:\s*\r?\n(From [^\r\n]+)`)
	matches := msgRe.FindAllStringSubmatch(mailDump.Text, -1)
	mbox := filepath.Join(os.TempDir(), "retrieved-mbox")
	var sb strings.Builder
	for _, m := range matches {
		sb.WriteString(m[1] + "\n")
	}
	if err := os.WriteFile(mbox, []byte(sb.String()), 0o644); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("retrieved %d messages into %s:\n", len(matches), mbox)
	for _, m := range matches {
		fmt.Printf("  %s\n", m[1])
	}
	if len(matches) != len(remoteMail) {
		log.Fatalf("expected %d messages, got %d", len(remoteMail), len(matches))
	}
	fmt.Println("mail now appears as if originally sent to the local system")
}
