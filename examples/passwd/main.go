// The passwd problem (§1): "it is impossible to write a [shell] script
// that, say, rejects passwords that are in the system dictionary".
// Here the expect engine drives passwd's interactive dialogue, reacts to
// its rejections, and retries with progressively better candidates —
// the paper's opening example, solved.
//
//	go run ./examples/passwd
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/programs/authsim"
)

func main() {
	passwd := authsim.NewPasswd(authsim.PasswdConfig{
		User:       "don",
		Dictionary: []string{"password", "dragon", "letmein"},
	})
	s, err := core.SpawnProgram(&core.Config{Timeout: 5 * time.Second}, "passwd", passwd)
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()

	candidates := []string{"dragon", "short", "korrekt-horse-battery"}
	ci := 0
	next := func() string {
		pw := candidates[ci]
		if ci < len(candidates)-1 {
			ci++
		}
		return pw
	}

	if _, err := s.ExpectMatch("*New password:*"); err != nil {
		log.Fatalf("no prompt: %v", err)
	}
	for {
		pw := next()
		fmt.Printf("trying %q\n", pw)
		s.Send(pw + "\n")
		r, err := s.Expect(
			core.Glob("*English word*New password:*"),
			core.Glob("*longer*New password:*"),
			core.Glob("*Retype new password:*"),
		)
		if err != nil {
			log.Fatalf("unexpected reply: %v", err)
		}
		switch r.Index {
		case 0:
			fmt.Println("  rejected: dictionary word")
		case 1:
			fmt.Println("  rejected: too short")
		case 2:
			s.Send(pw + "\n")
			if _, err := s.ExpectMatch("*Password changed*"); err != nil {
				log.Fatalf("confirmation failed: %v", err)
			}
			fmt.Println("  accepted — password changed")
			return
		}
	}
}
