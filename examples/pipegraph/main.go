// Dynamic and complex pipes (§5.9): the shell's pipes are "unabashedly
// linear", and systems like gsh and MTX were built to escape that. The
// paper notes expect gets the same power as a byproduct: it can emulate
// process graphs, rearrange connections mid-stream ("either under the
// control of a user or when signalled by data"), and fan out to several
// consumers, superseding tee.
//
// This example wires a producer to consumer A, then — when the data
// itself signals a phase change — rearranges the graph mid-stream so the
// remaining output flows to consumer B, while a third tap receives
// everything (the tee superset).
//
//	go run ./examples/pipegraph
package main

import (
	"fmt"
	"io"
	"log"
	"strings"
	"time"

	"repro/internal/core"
)

// producer emits phase-1 lines, a SWITCH marker, then phase-2 lines.
func producer(stdin io.Reader, stdout io.Writer) error {
	for i := 1; i <= 3; i++ {
		fmt.Fprintf(stdout, "phase1 record %d\n", i)
	}
	fmt.Fprintln(stdout, "SWITCH")
	for i := 1; i <= 3; i++ {
		fmt.Fprintf(stdout, "phase2 record %d\n", i)
	}
	return nil
}

// consumer counts the lines it is fed and reports on EOF.
func consumer(name string, report chan<- string) func(io.Reader, io.Writer) error {
	return func(stdin io.Reader, stdout io.Writer) error {
		data, _ := io.ReadAll(stdin)
		lines := 0
		for _, l := range strings.Split(string(data), "\n") {
			if strings.TrimSpace(l) != "" {
				lines++
			}
		}
		report <- fmt.Sprintf("%s received %d lines", name, lines)
		return nil
	}
}

func main() {
	report := make(chan string, 3)
	src, err := core.SpawnProgram(nil, "producer", producer)
	if err != nil {
		log.Fatal(err)
	}
	defer src.Close()
	a, err := core.SpawnProgram(nil, "consumer-a", consumer("A", report))
	if err != nil {
		log.Fatal(err)
	}
	b, err := core.SpawnProgram(nil, "consumer-b", consumer("B", report))
	if err != nil {
		log.Fatal(err)
	}
	tap, err := core.SpawnProgram(nil, "tap", consumer("tap", report))
	if err != nil {
		log.Fatal(err)
	}

	// The expect loop IS the graph: every line is routed according to the
	// current wiring, and the SWITCH marker rearranges it mid-stream.
	target := a
	for {
		r, err := src.ExpectTimeout(5*time.Second, core.Regexp(`[^\n]*\n`), core.EOFCase())
		if err != nil {
			log.Fatalf("relay: %v", err)
		}
		if r.Eof {
			break
		}
		line := r.Text
		tap.Send(line) // fan-out: the tap sees everything
		if strings.Contains(line, "SWITCH") {
			fmt.Println("data signalled a rearrangement: A -> B")
			target = b
			continue
		}
		if err := target.Send(line); err != nil {
			log.Fatal(err)
		}
	}
	// Hang up all sinks so they report.
	a.CloseWrite()
	b.CloseWrite()
	tap.CloseWrite()
	for i := 0; i < 3; i++ {
		fmt.Println(<-report)
	}
}
