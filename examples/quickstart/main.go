// Quickstart: drive an interactive login dialogue from Go.
//
// This is the library flavor of the paper's core loop — spawn, expect,
// send — against the simulated login greeter. Run it with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/programs/authsim"
)

func main() {
	login := authsim.NewLogin(authsim.LoginConfig{
		Accounts: map[string]string{"don": "secret"},
		Hostname: "durer",
	})

	// Sessions wrap a spawned program with the expect match buffer.
	// SpawnProgram runs it in-process; SpawnCommand would fork a real
	// binary under a pty instead — the API is the same from here on.
	s, err := core.SpawnProgram(&core.Config{Timeout: 5 * time.Second}, "login", login)
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()

	// expect/send pairs, exactly like the script language.
	if _, err := s.ExpectMatch("*login:*"); err != nil {
		log.Fatalf("no login prompt: %v", err)
	}
	s.Send("don\n")
	if _, err := s.ExpectMatch("*Password:*"); err != nil {
		log.Fatalf("no password prompt: %v", err)
	}
	s.Send("secret\n")
	r, err := s.Expect(
		core.Glob("*Welcome*"),
		core.Glob("*incorrect*"),
	)
	if err != nil {
		log.Fatalf("login outcome unclear: %v", err)
	}
	if r.Index != 0 {
		log.Fatal("login rejected")
	}
	fmt.Println("logged in; asking the remote shell who is on")

	s.ExpectMatch("*$ *")
	s.Send("who\n")
	who, err := s.ExpectMatch("*ttyp0*")
	if err != nil {
		log.Fatalf("who failed: %v", err)
	}
	fmt.Printf("remote says: %s\n", trimLines(who.Text))

	s.ExpectMatch("*$ *")
	s.Send("logout\n")
	s.ExpectTimeout(time.Second, core.EOFCase())
	fmt.Println("session closed cleanly")
}

func trimLines(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		if line != "" && line != "$ " {
			out = line
		}
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' || s[i] == '\r' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	return append(lines, s[start:])
}
