// The paper's flagship example (§4): rogue.exp, run through the script
// engine against the simulated game.
//
//	# rogue.exp - find a good game of rogue
//	set timeout 3
//	for {} 1 {} {
//		spawn rogue
//		expect {*Str:\ 18*} break \
//			timeout close
//	}
//	interact
//
// Since there is no human at this example, interact is driven by a small
// scripted user who admires the good game and quits. Run with:
//
//	go run ./examples/rogue
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/programs/rogue"
)

const rogueExp = `
	# rogue.exp - find a good game of rogue
	set timeout 3
	set games 0
	for {} 1 {} {
		incr games
		spawn rogue
		expect {*Str:\ 18*} break \
			timeout close
	}
	send_user "found Str 18 after $games games\n"
	interact
`

// scriptedUser quits the game after a moment, standing in for the human
// who would normally take over at interact.
type scriptedUser struct{ fed bool }

func (u *scriptedUser) Read(p []byte) (int, error) {
	if u.fed {
		time.Sleep(50 * time.Millisecond)
		return 0, io.EOF
	}
	u.fed = true
	time.Sleep(100 * time.Millisecond)
	return copy(p, "Qy"), nil // quit, confirm
}

func main() {
	eng := core.NewEngine(core.EngineOptions{
		UserIn:  &scriptedUser{},
		UserOut: os.Stdout,
	})
	defer eng.Shutdown()
	// 1-in-4 luck keeps the demo brisk; the real game is nearer 1-in-16.
	eng.RegisterVirtual("rogue", rogue.New(rogue.Config{LuckNumerator: 1, LuckDenominator: 4}))

	if _, err := eng.Run(rogueExp); err != nil {
		log.Fatalf("rogue.exp: %v", err)
	}
	fmt.Println("\nrogue.exp finished")
}
