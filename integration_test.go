// End-to-end tests: the compiled goexpect interpreter driving the
// compiled interactive programs over real pseudo-terminals. These are the
// paper's scripts run for real (experiment E14), plus the behavioural
// reproductions of Figures 1–4 that need actual processes (E10).
package repro

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

var (
	binDirOnce sync.Once
	binDir     string
	binErr     error
)

// buildBinaries compiles the commands once per test run.
func buildBinaries(t *testing.T) string {
	t.Helper()
	binDirOnce.Do(func() {
		dir, err := os.MkdirTemp("", "expect-bins")
		if err != nil {
			binErr = err
			return
		}
		cmd := exec.Command("go", "build", "-o", dir+string(os.PathSeparator),
			"./cmd/goexpect", "./cmd/rogue", "./cmd/chess", "./cmd/eliza",
			"./cmd/fscksim", "./cmd/modemsim", "./cmd/passwdsim", "./cmd/loginsim", "./cmd/chat")
		cmd.Env = os.Environ()
		if out, err := cmd.CombinedOutput(); err != nil {
			binErr = err
			t.Logf("go build output:\n%s", out)
			return
		}
		binDir = dir
	})
	if binErr != nil {
		t.Fatalf("building binaries: %v", binErr)
	}
	return binDir
}

// runScript executes goexpect on a script file with args.
func runScript(t *testing.T, script string, args ...string) (string, int) {
	t.Helper()
	dir := buildBinaries(t)
	path := filepath.Join(t.TempDir(), "script.exp")
	if err := os.WriteFile(path, []byte(script), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(filepath.Join(dir, "goexpect"), append([]string{path}, args...)...)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	cmd.Stdin = strings.NewReader("")
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("goexpect: %v\n%s", err, out.String())
	}
	return out.String(), code
}

// TestPaperRogueScriptRealPty runs rogue.exp from §4 against the real
// rogue binary over real ptys — the headline demonstration.
func TestPaperRogueScriptRealPty(t *testing.T) {
	dir := buildBinaries(t)
	script := `
		# rogue.exp - find a good game of rogue
		set timeout 5
		set games 0
		for {} 1 {} {
			incr games
			spawn ` + filepath.Join(dir, "rogue") + ` -seed $games -luck-num 1 -luck-den 3
			expect {*Str:\ 18*} break \
				timeout close
		}
		send_user "GAMES=$games\n"
		close
		exit 0
	`
	out, code := runScript(t, script)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "GAMES=") {
		t.Fatalf("no games report:\n%s", out)
	}
	if !strings.Contains(out, "Str: 18") {
		t.Errorf("winning screen never shown:\n%s", out)
	}
}

// TestLoginScriptRealPty logs into the real loginsim binary and runs a
// shell command, echo and all.
func TestLoginScriptRealPty(t *testing.T) {
	dir := buildBinaries(t)
	script := `
		set timeout 5
		spawn ` + filepath.Join(dir, "loginsim") + ` -host testhost
		expect {*login:*} {}
		send don\n
		expect {*Password:*} {}
		send secret\n
		expect {*Welcome\ to\ testhost*} {send_user "LOGIN-OK\n"} \
			timeout {send_user "LOGIN-FAIL\n"; exit 1}
		expect {*$\ *} {}
		send "echo proof-of-shell\n"
		expect {*proof-of-shell*} {}
		send logout\n
		exit 0
	`
	out, code := runScript(t, script)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "LOGIN-OK") {
		t.Fatalf("login failed:\n%s", out)
	}
}

// TestPasswdOverRealPty is the §1/§5.3 demonstration: passwdsim talks to
// /dev/tty, so only a pty-based controller can drive it.
func TestPasswdOverRealPty(t *testing.T) {
	dir := buildBinaries(t)
	script := `
		set timeout 5
		spawn ` + filepath.Join(dir, "passwdsim") + ` -user don
		expect {*New password:*} {}
		send brand-new-pw-42\r
		expect {*Retype new password:*} {}
		send brand-new-pw-42\r
		expect {*Password\ changed*} {send_user "CHANGED\n"; exit 0} \
			timeout {send_user "STUCK\n"; exit 1}
	`
	out, code := runScript(t, script)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "CHANGED") {
		t.Fatalf("password never changed:\n%s", out)
	}
}

// TestPasswdRefusesPipes pins the other half of §5.3: detached from any
// terminal, with only pipes attached, passwdsim refuses to converse —
// which is exactly why the shell cannot script it.
func TestPasswdRefusesPipes(t *testing.T) {
	dir := buildBinaries(t)
	cmd := exec.Command(filepath.Join(dir, "passwdsim"), "-user", "don")
	cmd.Stdin = strings.NewReader("pw\npw\n")
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	// Detach from the test's controlling terminal (if any) so /dev/tty
	// does not resolve.
	cmd.SysProcAttr = &syscall.SysProcAttr{Setsid: true}
	err := cmd.Run()
	if err == nil {
		t.Fatalf("passwd accepted a pipe conversation:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "no controlling terminal") {
		t.Errorf("unexpected failure mode:\n%s", out.String())
	}
}

// TestFsckInteractiveScript drives the real fscksim over a pty, answering
// every question with yes — and verifies it exits 0 (filesystem clean).
func TestFsckInteractiveScript(t *testing.T) {
	dir := buildBinaries(t)
	script := `
		set timeout 10
		spawn ` + filepath.Join(dir, "fscksim") + ` -seed 42 -errors 5
		for {} 1 {} {
			expect {*RECONNECT?*} {send yes\r} \
				{*CLEAR?*} {send yes\r} \
				{*ADJUST?*} {send yes\r} \
				{*SALVAGE?*} {send yes\r} \
				{*MODIFIED*} break \
				eof break \
				timeout {exit 3}
		}
		set status [wait]
		exit $status
	`
	out, code := runScript(t, script)
	if code != 0 {
		t.Fatalf("fsck dialogue exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "Phase 1") {
		t.Errorf("no phase banner:\n%s", out)
	}
}

// TestCallbackScriptRealPty runs callback.exp against the real modemsim
// (with its tip front end) over a pty.
func TestCallbackScriptRealPty(t *testing.T) {
	dir := buildBinaries(t)
	script := `
		spawn ` + filepath.Join(dir, "modemsim") + ` -tip -dial-delay 100ms
		expect {*connected*} {}
		send ATZ\r
		expect {*OK*} {}
		send ATDT[index $argv 1]\r
		set timeout 60
		expect {*CONNECT*} {send_user "DIALED\n"; exit 0} \
			{*BUSY*} {send_user "BUSY\n"; exit 1} \
			timeout {exit 2}
	`
	out, code := runScript(t, script, "12016442332")
	if code != 0 {
		t.Fatalf("callback exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "DIALED") {
		t.Fatalf("never connected:\n%s", out)
	}
	// And the busy line reports busy.
	out, code = runScript(t, script, "5550000")
	if code != 1 || !strings.Contains(out, "BUSY") {
		t.Fatalf("busy line: exit %d\n%s", code, out)
	}
}

// TestElizaScriptRealPty holds a short conversation with the real eliza
// binary.
func TestElizaScriptRealPty(t *testing.T) {
	dir := buildBinaries(t)
	script := `
		set timeout 5
		spawn ` + filepath.Join(dir, "eliza") + ` -seed 3
		expect {*PROBLEM*} {}
		send "i am testing a reproduction\n"
		expect {*TESTING\ A\ REPRODUCTION*} {send_user "HEARD\n"} \
			timeout {exit 1}
		send goodbye\n
		expect {*GOODBYE*} {}
		exit 0
	`
	out, code := runScript(t, script)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "HEARD") {
		t.Fatalf("reflection lost:\n%s", out)
	}
}

// TestChessScriptKickoff reproduces the §3.2 kickoff: send p/k2-k3 by
// hand to the real chess binary and read its reply.
func TestChessScriptKickoff(t *testing.T) {
	dir := buildBinaries(t)
	script := `
		set timeout 5
		spawn ` + filepath.Join(dir, "chess") + ` -seed 9
		expect {*Chess*} {}
		send p/k2-k3\n
		expect {*...*} {send_user "REPLIED\n"; exit 0} \
			timeout {exit 1}
	`
	out, code := runScript(t, script)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "REPLIED") {
		t.Fatalf("no counter-move:\n%s", out)
	}
}

// TestGoexpectDashC runs commands via -c, the paper's §4 tracing hook.
func TestGoexpectDashC(t *testing.T) {
	dir := buildBinaries(t)
	cmd := exec.Command(filepath.Join(dir, "goexpect"), "-c", `send_user "from-dash-c\n"`)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	cmd.Stdin = strings.NewReader("")
	if err := cmd.Run(); err != nil {
		t.Fatalf("goexpect -c: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "from-dash-c") {
		t.Errorf("output: %q", out.String())
	}
}

// TestGoexpectSims exercises the -sims registry: a hermetic script with
// no external binaries at all.
func TestGoexpectSims(t *testing.T) {
	dir := buildBinaries(t)
	script := `
		set timeout 5
		spawn login-sim
		expect {*login:*} {}
		send guest\n
		expect {*Password:*} {}
		send guest\n
		expect {*Welcome*} {send_user "SIM-OK\n"; exit 0} timeout {exit 1}
	`
	path := filepath.Join(t.TempDir(), "sim.exp")
	if err := os.WriteFile(path, []byte(script), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(filepath.Join(dir, "goexpect"), "-sims", path)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	cmd.Stdin = strings.NewReader("")
	if err := cmd.Run(); err != nil {
		t.Fatalf("goexpect -sims: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "SIM-OK") {
		t.Errorf("output:\n%s", out.String())
	}
}

// TestFigure1PipesAreOneWay demonstrates the paper's Figure 1: the shell
// cannot cross-connect two processes; a pipe is strictly one-way. Here a
// pipe-spawned child that needs a terminal behaves degenerately, while
// the same child under a pty works (Figure 2's fix).
func TestFigure1PipesAreOneWay(t *testing.T) {
	dir := buildBinaries(t)
	// Under pipes, passwdsim cannot find its terminal.
	cmd := exec.Command(filepath.Join(dir, "passwdsim"))
	cmd.SysProcAttr = &syscall.SysProcAttr{Setsid: true}
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err == nil {
		t.Fatal("pipe-connected passwd should have failed")
	}
	// Under goexpect's pty, the very same binary converses (covered by
	// TestPasswdOverRealPty); here we just confirm the asymmetry exists.
	if !strings.Contains(out.String(), "no controlling terminal") {
		t.Errorf("unexpected pipe failure: %s", out.String())
	}
}

// TestScriptTimeoutHonored: a never-matching expect with timeout arm exits
// promptly rather than hanging (E13 at the binary level).
func TestScriptTimeoutHonored(t *testing.T) {
	dir := buildBinaries(t)
	script := `
		set timeout 1
		spawn ` + filepath.Join(dir, "loginsim") + `
		expect {*never-going-to-appear*} {exit 9} timeout {send_user "TIMED-OUT\n"; exit 0}
	`
	start := time.Now()
	out, code := runScript(t, script)
	if code != 0 || !strings.Contains(out, "TIMED-OUT") {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if e := time.Since(start); e > 10*time.Second {
		t.Errorf("timeout took %v", e)
	}
}

// runSimScript runs a script file from scripts/ through goexpect -sims.
func runSimScript(t *testing.T, path string, args ...string) (string, int) {
	t.Helper()
	dir := buildBinaries(t)
	cmd := exec.Command(filepath.Join(dir, "goexpect"),
		append([]string{"-sims", path}, args...)...)
	// Every roll wins, so the faithful timeout-per-bad-game loop in
	// rogue.exp doesn't burn a minute of test time.
	cmd.Env = append(os.Environ(), "EXPECT_SIM_LUCK_DEN=1")
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	cmd.Stdin = strings.NewReader("")
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("goexpect -sims %s: %v\n%s", path, err, out.String())
	}
	return out.String(), code
}

// TestShippedScripts runs every script in scripts/ — the paper's examples
// as distributed artifacts.
func TestShippedScripts(t *testing.T) {
	t.Run("rogue.exp", func(t *testing.T) {
		// interact immediately sees user EOF (empty stdin) and returns.
		out, code := runSimScript(t, "scripts/rogue.exp")
		if code != 0 {
			t.Fatalf("exit %d:\n%s", code, out)
		}
		if !strings.Contains(out, "Str: 18") {
			t.Errorf("no winning game:\n%s", out)
		}
	})
	t.Run("callback.exp", func(t *testing.T) {
		out, code := runSimScript(t, "scripts/callback.exp", "12016442332")
		if code != 0 || !strings.Contains(out, "call established") {
			t.Fatalf("exit %d:\n%s", code, out)
		}
		out, code = runSimScript(t, "scripts/callback.exp", "5550000")
		if code != 1 || !strings.Contains(out, "busy") {
			t.Fatalf("busy line exit %d:\n%s", code, out)
		}
	})
	t.Run("passwd.exp", func(t *testing.T) {
		out, code := runSimScript(t, "scripts/passwd.exp")
		if code != 0 || !strings.Contains(out, "changed") {
			t.Fatalf("exit %d:\n%s", code, out)
		}
	})
	t.Run("fsck.exp", func(t *testing.T) {
		out, code := runSimScript(t, "scripts/fsck.exp")
		if code != 0 || !strings.Contains(out, "fsck dialogue complete") {
			t.Fatalf("exit %d:\n%s", code, out)
		}
	})
	t.Run("login.exp", func(t *testing.T) {
		out, code := runSimScript(t, "scripts/login.exp")
		if code != 0 || !strings.Contains(out, "logged in") {
			t.Fatalf("exit %d:\n%s", code, out)
		}
	})
}

// TestChatTool runs the uucp chat binary against loginsim: the baseline
// as a usable tool (and its documented failure on the busy variant).
func TestChatTool(t *testing.T) {
	dir := buildBinaries(t)
	run := func(extra ...string) (string, int) {
		args := append([]string{"-timeout", "3s",
			`ogin:--ogin: guest ssword: guest elcome`,
			filepath.Join(dir, "loginsim")}, extra...)
		cmd := exec.Command(filepath.Join(dir, "chat"), args...)
		var out bytes.Buffer
		cmd.Stdout = &out
		cmd.Stderr = &out
		err := cmd.Run()
		code := 0
		if ee, ok := err.(*exec.ExitError); ok {
			code = ee.ExitCode()
		} else if err != nil {
			t.Fatalf("chat: %v\n%s", err, out.String())
		}
		return out.String(), code
	}
	out, code := run()
	if code != 0 || !strings.Contains(out, "completed") {
		t.Fatalf("happy path exit %d:\n%s", code, out)
	}
	out, code = run("-busy")
	if code == 0 {
		t.Fatalf("chat succeeded against a busy line:\n%s", out)
	}
}

// TestGoexpectTimeoutFlag overrides the initial timeout variable.
func TestGoexpectTimeoutFlag(t *testing.T) {
	dir := buildBinaries(t)
	cmd := exec.Command(filepath.Join(dir, "goexpect"),
		"-timeout", "33", "-c", `send_user "timeout=$timeout\n"`)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	cmd.Stdin = strings.NewReader("")
	if err := cmd.Run(); err != nil {
		t.Fatalf("goexpect: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "timeout=33") {
		t.Errorf("output: %q", out.String())
	}
}

// TestElizaDuetScript runs the §5.8 duet through the script engine's
// combined machinery (spawn_id switching + regexp patterns).
func TestElizaDuetScript(t *testing.T) {
	out, code := runSimScript(t, "scripts/elizaduet.exp")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "duet complete") {
		t.Fatalf("duet did not finish:\n%s", out)
	}
	if !strings.Contains(out, "turn 5:") {
		t.Errorf("missing turns:\n%s", out)
	}
}
