// Package admin is expectd's telemetry plane: a small HTTP listener
// exposing the live state of a running daemon — Prometheus metrics,
// per-session and per-shard introspection, pprof, and a streaming trace
// tap. The paper's exp_internal (§3.3) shows one dialogue after the fact;
// this surface answers "what are all ten thousand dialogues doing right
// now" from outside the process, without stopping any of them.
//
// The package wires surfaces together but owns no state of its own:
// every data source arrives as a closure or handle in Options, so admin
// depends only on core/metrics/trace and any binary (expectd, a test, an
// experiment) can stand up the same endpoints around whatever it runs.
package admin

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/netx"
	"repro/internal/trace"
)

// Options names the data sources behind the endpoints. Every field is
// optional: a nil Registry renders an empty (valid) exposition, nil
// snapshot funcs report empty lists, and a nil Recorder turns
// /debug/trace into a 404.
type Options struct {
	// Registry backs /metrics.
	Registry *metrics.Registry
	// Sessions backs /debug/sessions: the live per-session snapshot.
	Sessions func() []core.SessionInfo
	// Shards backs /debug/shards: the per-shard-loop snapshot. Session
	// details are stripped from the reply (they have their own endpoint).
	Shards func() []core.ShardSnapshot
	// Recorder backs /debug/trace: live JSONL event streaming by tap.
	Recorder *trace.Recorder
	// Mux backs /debug/mux: the session-gateway snapshot (stream and
	// connection counts, per-tenant quota accounting, refusal tallies).
	// Nil turns the endpoint into a 404.
	Mux func() netx.MuxServerStats
}

// Server is one admin listener. Close is immediate (it hangs up streaming
// trace watchers too); expectd closes it after the drain report so the
// plane stays readable while the daemon drains.
type Server struct {
	ln  net.Listener
	srv *http.Server
	opt Options
}

// Listen binds addr (host:0 picks an ephemeral port) and starts serving
// the telemetry endpoints.
func Listen(addr string, opt Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, opt: opt}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/sessions", s.handleSessions)
	mux.HandleFunc("/debug/shards", s.handleShards)
	mux.HandleFunc("/debug/trace", s.handleTrace)
	mux.HandleFunc("/debug/mux", s.handleMux)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr reports the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close tears the listener and every in-flight request down immediately.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}

// get guards an endpoint to the GET method.
func get(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return false
	}
	return true
}

// handleMetrics renders the registry in the Prometheus text exposition
// format, version 0.0.4.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if !get(w, r) {
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.opt.Registry.WritePrometheus(w)
}

// sessionsReply is the /debug/sessions JSON schema. Count duplicates
// len(sessions) so a scraper can assert the conservation law without
// parsing the whole list.
type sessionsReply struct {
	Count    int                `json:"count"`
	Sessions []core.SessionInfo `json:"sessions"`
}

func (s *Server) handleSessions(w http.ResponseWriter, r *http.Request) {
	if !get(w, r) {
		return
	}
	reply := sessionsReply{Sessions: []core.SessionInfo{}}
	if s.opt.Sessions != nil {
		if infos := s.opt.Sessions(); infos != nil {
			reply.Sessions = infos
		}
	}
	reply.Count = len(reply.Sessions)
	writeJSON(w, reply)
}

// shardsReply is the /debug/shards JSON schema.
type shardsReply struct {
	Count  int                  `json:"count"`
	Shards []core.ShardSnapshot `json:"shards"`
}

func (s *Server) handleShards(w http.ResponseWriter, r *http.Request) {
	if !get(w, r) {
		return
	}
	reply := shardsReply{Shards: []core.ShardSnapshot{}}
	if s.opt.Shards != nil {
		for _, snap := range s.opt.Shards() {
			snap.Sessions = nil // shard-level view; sessions have their own endpoint
			reply.Shards = append(reply.Shards, snap)
		}
	}
	reply.Count = len(reply.Shards)
	writeJSON(w, reply)
}

// handleMux reports the session gateway's live snapshot. The maps are
// normalized to empty (never null) so scrapers can index without nil
// checks.
func (s *Server) handleMux(w http.ResponseWriter, r *http.Request) {
	if !get(w, r) {
		return
	}
	if s.opt.Mux == nil {
		http.Error(w, "no session gateway", http.StatusNotFound)
		return
	}
	st := s.opt.Mux()
	if st.Tenants == nil {
		st.Tenants = map[string]int{}
	}
	if st.Refused == nil {
		st.Refused = map[string]uint64{}
	}
	writeJSON(w, st)
}

// handleTrace streams live trace events as JSONL (the journal schema;
// each line parses with trace.ParseJSONL). Query parameters: sid filters
// to one session (-1 or absent = all), n closes the stream after that
// many lines (absent = until the client hangs up). Delivery taps the
// recorder with a bounded buffer, so a stalled watcher silently loses
// lines instead of stalling the engine — the same never-block contract
// the journal writer keeps.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if !get(w, r) {
		return
	}
	if s.opt.Recorder == nil {
		http.Error(w, "no flight recorder armed", http.StatusNotFound)
		return
	}
	sid := int32(-1)
	if v := r.URL.Query().Get("sid"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad sid %q", v), http.StatusBadRequest)
			return
		}
		sid = int32(n)
	}
	limit := -1
	if v := r.URL.Query().Get("n"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, fmt.Sprintf("bad n %q", v), http.StatusBadRequest)
			return
		}
		limit = n
	}
	tap := s.opt.Recorder.Subscribe(sid, 0)
	defer tap.Close()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush()
	}
	sent := 0
	for limit < 0 || sent < limit {
		select {
		case line, ok := <-tap.Events():
			if !ok {
				return
			}
			if _, err := w.Write(line); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
			sent++
		case <-r.Context().Done():
			return
		}
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.Encode(v)
}
