package admin

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/trace"
)

func testServer(t *testing.T, opt Options) *Server {
	t.Helper()
	s, err := Listen("127.0.0.1:0", opt)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func httpGet(t *testing.T, s *Server, path string) (int, string, string) {
	t.Helper()
	resp, err := http.Get("http://" + s.Addr() + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s read: %v", path, err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
}

func TestMetricsEndpoint(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Gauge("up", "Always one.", func() float64 { return 1 })
	s := testServer(t, Options{Registry: reg})
	code, ctype, body := httpGet(t, s, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("status %d, want 200", code)
	}
	if !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Errorf("content-type %q", ctype)
	}
	if !strings.Contains(body, "# TYPE up gauge") || !strings.Contains(body, "up 1\n") {
		t.Errorf("exposition missing the gauge:\n%s", body)
	}
}

func TestMetricsEndpointNilRegistry(t *testing.T) {
	s := testServer(t, Options{})
	if code, _, body := httpGet(t, s, "/metrics"); code != http.StatusOK || body != "" {
		t.Errorf("nil registry: status %d body %q, want empty 200", code, body)
	}
}

func TestSessionsAndShardsEndpoints(t *testing.T) {
	s := testServer(t, Options{
		Sessions: func() []core.SessionInfo {
			return []core.SessionInfo{
				{SID: 1, Name: "echo-1", State: "open", Shard: 0, ParkedOps: 1, RemainingTimeoutNS: 5000},
				{SID: 2, Name: "slow-2", State: "eof", Shard: 1, RemainingTimeoutNS: -1},
			}
		},
		Shards: func() []core.ShardSnapshot {
			return []core.ShardSnapshot{{
				Shard:      0,
				QueueDepth: 3,
				Sessions:   []core.SessionInfo{{SID: 1}}, // must be stripped
			}}
		},
	})

	code, ctype, body := httpGet(t, s, "/debug/sessions")
	if code != http.StatusOK || !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("sessions: status %d content-type %q", code, ctype)
	}
	var sessions struct {
		Count    int                `json:"count"`
		Sessions []core.SessionInfo `json:"sessions"`
	}
	if err := json.Unmarshal([]byte(body), &sessions); err != nil {
		t.Fatalf("sessions JSON: %v\n%s", err, body)
	}
	if sessions.Count != 2 || len(sessions.Sessions) != 2 {
		t.Errorf("count %d / %d sessions, want 2 / 2", sessions.Count, len(sessions.Sessions))
	}
	if sessions.Sessions[0].Name != "echo-1" || sessions.Sessions[0].ParkedOps != 1 {
		t.Errorf("session 0 round-trip: %+v", sessions.Sessions[0])
	}

	code, _, body = httpGet(t, s, "/debug/shards")
	if code != http.StatusOK {
		t.Fatalf("shards: status %d", code)
	}
	var shards struct {
		Count  int                  `json:"count"`
		Shards []core.ShardSnapshot `json:"shards"`
	}
	if err := json.Unmarshal([]byte(body), &shards); err != nil {
		t.Fatalf("shards JSON: %v\n%s", err, body)
	}
	if shards.Count != 1 || shards.Shards[0].QueueDepth != 3 {
		t.Errorf("shards round-trip: %+v", shards)
	}
	if len(shards.Shards[0].Sessions) != 0 {
		t.Error("/debug/shards leaked per-session details")
	}
}

func TestEmptyRepliesAreValidJSON(t *testing.T) {
	s := testServer(t, Options{})
	_, _, body := httpGet(t, s, "/debug/sessions")
	if want := `{"count":0,"sessions":[]}` + "\n"; body != want {
		t.Errorf("empty sessions = %q, want %q", body, want)
	}
	_, _, body = httpGet(t, s, "/debug/shards")
	if want := `{"count":0,"shards":[]}` + "\n"; body != want {
		t.Errorf("empty shards = %q, want %q", body, want)
	}
}

func TestNonGETRejected(t *testing.T) {
	s := testServer(t, Options{})
	for _, path := range []string{"/metrics", "/debug/sessions", "/debug/shards", "/debug/trace"} {
		resp, err := http.Post("http://"+s.Addr()+path, "text/plain", strings.NewReader("x"))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST %s: status %d, want 405", path, resp.StatusCode)
		}
	}
}

func TestTraceEndpointStreams(t *testing.T) {
	rec := trace.New(128)
	s := testServer(t, Options{Recorder: rec})

	// Start the watcher first; it blocks until n lines arrive.
	type result struct {
		lines []string
		err   error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Get("http://" + s.Addr() + "/debug/trace?sid=7&n=3")
		if err != nil {
			done <- result{err: err}
			return
		}
		defer resp.Body.Close()
		var lines []string
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			lines = append(lines, sc.Text())
		}
		done <- result{lines: lines, err: sc.Err()}
	}()

	// Subscribe arms recording; poll for it so the watcher is attached
	// before the events fire.
	deadline := time.Now().Add(5 * time.Second)
	for !rec.Recording() {
		if time.Now().After(deadline) {
			t.Fatal("recorder never armed (watcher did not subscribe)")
		}
		time.Sleep(time.Millisecond)
	}
	// A little slack for the tap to land in r.taps after arming.
	time.Sleep(10 * time.Millisecond)
	for i := 0; i < 5; i++ {
		rec.Record(trace.KindRead, 7, int64(i), 0, false, fmt.Sprintf("payload-%d", i), "")
		rec.Record(trace.KindRead, 9, 0, 0, false, "other-session", "")
	}

	res := <-done
	if res.err != nil {
		t.Fatalf("watcher: %v", res.err)
	}
	if len(res.lines) != 3 {
		t.Fatalf("streamed %d lines, want 3 (n=3)", len(res.lines))
	}
	evs, err := trace.ParseJSONL([]byte(strings.Join(res.lines, "\n") + "\n"))
	if err != nil {
		t.Fatalf("streamed lines are not valid journal JSONL: %v", err)
	}
	for i, e := range evs {
		if e.SID != 7 {
			t.Errorf("line %d: sid %d leaked through the sid=7 filter", i, e.SID)
		}
	}
}

func TestTraceEndpointWithoutRecorder(t *testing.T) {
	s := testServer(t, Options{})
	if code, _, _ := httpGet(t, s, "/debug/trace"); code != http.StatusNotFound {
		t.Errorf("status %d, want 404 when no recorder is wired", code)
	}
}

func TestTraceEndpointBadParams(t *testing.T) {
	s := testServer(t, Options{Recorder: trace.New(16)})
	for _, path := range []string{"/debug/trace?sid=abc", "/debug/trace?n=-1", "/debug/trace?n=x"} {
		if code, _, _ := httpGet(t, s, path); code != http.StatusBadRequest {
			t.Errorf("GET %s: status %d, want 400", path, code)
		}
	}
}

func TestPprofMounted(t *testing.T) {
	s := testServer(t, Options{})
	code, _, body := httpGet(t, s, "/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index: status %d", code)
	}
	if code, _, _ := httpGet(t, s, "/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("pprof cmdline: status %d", code)
	}
}
