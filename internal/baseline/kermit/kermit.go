// Package kermit implements the other send/expect precursor the paper
// names (§1, §7.1: "the idea of send/expect sequences popularized by
// uucp, kermit and other communications programs ... are quite primitive
// and do not even provide adequate flexibility for their own tasks").
//
// The dialect is the C-Kermit 4E TAKE-file subset of the era:
//
//	INPUT 10 login:
//	OUTPUT don\13
//	PAUSE 1
//	CLEAR
//
// INPUT waits (with a per-command timeout) for a fixed string; OUTPUT
// sends text with \ddd decimal escapes; PAUSE sleeps; CLEAR drops
// buffered input. Strictly straight-line: a failed INPUT aborts the whole
// script — there is no IF FAILURE, no loop, no alternation (this subset
// predates kermit's later script programming), which is precisely the
// baseline property experiment E12 measures.
package kermit

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// Op is a script command kind.
type Op int

// Command kinds.
const (
	OpInput Op = iota
	OpOutput
	OpPause
	OpClear
	OpEcho
)

// Cmd is one script line.
type Cmd struct {
	Op      Op
	Timeout time.Duration // INPUT, PAUSE
	Text    string        // INPUT target / OUTPUT payload / ECHO message
}

// Script is a parsed TAKE file.
type Script struct {
	Cmds []Cmd
}

// ErrInputTimeout reports an INPUT that never matched.
var ErrInputTimeout = errors.New("kermit: INPUT timed out")

// ErrHangup reports a stream that closed mid-script.
var ErrHangup = errors.New("kermit: connection closed")

// Parse reads a TAKE file. Lines are commands; blank lines and lines
// starting with ';' or '#' are comments.
func Parse(text string) (*Script, error) {
	s := &Script{}
	for ln, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, ";") || strings.HasPrefix(line, "#") {
			continue
		}
		word, rest, _ := strings.Cut(line, " ")
		rest = strings.TrimSpace(rest)
		switch strings.ToUpper(word) {
		case "INPUT":
			secsText, target, ok := strings.Cut(rest, " ")
			if !ok {
				return nil, fmt.Errorf("kermit: line %d: INPUT needs timeout and text", ln+1)
			}
			secs, err := strconv.ParseFloat(secsText, 64)
			if err != nil {
				return nil, fmt.Errorf("kermit: line %d: bad INPUT timeout %q", ln+1, secsText)
			}
			s.Cmds = append(s.Cmds, Cmd{Op: OpInput,
				Timeout: time.Duration(secs * float64(time.Second)),
				Text:    decode(target)})
		case "OUTPUT":
			s.Cmds = append(s.Cmds, Cmd{Op: OpOutput, Text: decode(rest)})
		case "PAUSE":
			secs := 1.0
			if rest != "" {
				v, err := strconv.ParseFloat(rest, 64)
				if err != nil {
					return nil, fmt.Errorf("kermit: line %d: bad PAUSE %q", ln+1, rest)
				}
				secs = v
			}
			s.Cmds = append(s.Cmds, Cmd{Op: OpPause,
				Timeout: time.Duration(secs * float64(time.Second))})
		case "CLEAR":
			s.Cmds = append(s.Cmds, Cmd{Op: OpClear})
		case "ECHO":
			s.Cmds = append(s.Cmds, Cmd{Op: OpEcho, Text: decode(rest)})
		default:
			return nil, fmt.Errorf("kermit: line %d: unknown command %q", ln+1, word)
		}
	}
	return s, nil
}

// decode handles kermit's \ddd decimal escapes (\13 is CR) and \\.
func decode(s string) string {
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' || i+1 >= len(s) {
			sb.WriteByte(s[i])
			continue
		}
		i++
		if s[i] == '\\' {
			sb.WriteByte('\\')
			continue
		}
		val, digits := 0, 0
		for digits < 3 && i+digits < len(s) && s[i+digits] >= '0' && s[i+digits] <= '9' {
			val = val*10 + int(s[i+digits]-'0')
			digits++
		}
		if digits == 0 {
			sb.WriteByte(s[i])
			continue
		}
		sb.WriteByte(byte(val))
		i += digits - 1
	}
	return sb.String()
}

// Runner executes scripts over a stream. Like the uucp runner it owns a
// primitive reader pump: one buffer, substring search.
type Runner struct {
	rw    io.ReadWriter
	Echo  io.Writer // ECHO output (default: discarded)
	input chan []byte
	buf   []byte
}

// NewRunner prepares to run scripts over rw.
func NewRunner(rw io.ReadWriter) *Runner {
	r := &Runner{rw: rw, Echo: io.Discard, input: make(chan []byte, 16)}
	go func() {
		defer close(r.input)
		for {
			b := make([]byte, 512)
			n, err := rw.Read(b)
			if n > 0 {
				r.input <- b[:n]
			}
			if err != nil {
				return
			}
		}
	}()
	return r
}

// Run executes the script; the first INPUT failure aborts it, as the
// original's straight-line TAKE files did.
func (r *Runner) Run(s *Script) error {
	for _, c := range s.Cmds {
		switch c.Op {
		case OpOutput:
			if _, err := r.rw.Write([]byte(c.Text)); err != nil {
				return fmt.Errorf("%w (OUTPUT failed: %v)", ErrHangup, err)
			}
		case OpPause:
			time.Sleep(c.Timeout)
		case OpClear:
			r.buf = nil
			// Also drain anything already queued.
			drained := false
			for !drained {
				select {
				case _, ok := <-r.input:
					if !ok {
						return nil
					}
				default:
					drained = true
				}
			}
		case OpEcho:
			fmt.Fprintln(r.Echo, c.Text)
		case OpInput:
			deadline := time.After(c.Timeout)
			for !strings.Contains(string(r.buf), c.Text) {
				select {
				case chunk, ok := <-r.input:
					if !ok {
						return fmt.Errorf("%w (waiting for %q)", ErrHangup, c.Text)
					}
					r.buf = append(r.buf, chunk...)
				case <-deadline:
					return fmt.Errorf("%w waiting for %q", ErrInputTimeout, c.Text)
				}
			}
			r.buf = nil // matched: start fresh, like the original
		}
	}
	return nil
}
