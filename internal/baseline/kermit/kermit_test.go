package kermit

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/proc"
	"repro/internal/programs/authsim"
)

const loginTake = `
; log into the simulated host
INPUT 3 login:
OUTPUT uucp\13
INPUT 3 ssword:
OUTPUT secret\13
INPUT 3 Welcome
ECHO logged in
`

func TestParse(t *testing.T) {
	s, err := Parse(loginTake)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Cmds) != 6 {
		t.Fatalf("cmds = %d, want 6", len(s.Cmds))
	}
	if s.Cmds[0].Op != OpInput || s.Cmds[0].Text != "login:" || s.Cmds[0].Timeout != 3*time.Second {
		t.Errorf("cmd 0 = %+v", s.Cmds[0])
	}
	if s.Cmds[1].Op != OpOutput || s.Cmds[1].Text != "uucp\r" {
		t.Errorf("cmd 1 = %+v (decimal escape must decode)", s.Cmds[1])
	}
	if s.Cmds[5].Op != OpEcho {
		t.Errorf("cmd 5 = %+v", s.Cmds[5])
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"INPUT login:",          // missing timeout
		"INPUT abc login:",      // bad timeout
		"PAUSE xyz",             // bad pause
		"FROBNICATE everything", // unknown command
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded", bad)
		}
	}
}

func TestDecode(t *testing.T) {
	for in, want := range map[string]string{
		`plain`:    "plain",
		`a\13b`:    "a\rb",
		`a\10`:     "a\n",
		`back\\sl`: `back\sl`,
		`\65\66`:   "AB",
	} {
		if got := decode(in); got != want {
			t.Errorf("decode(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestLoginHappyPath(t *testing.T) {
	p, err := proc.SpawnVirtual("login", authsim.NewLogin(authsim.LoginConfig{
		Accounts: map[string]string{"uucp": "secret"},
	}), proc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	s, _ := Parse(loginTake)
	var echoed strings.Builder
	r := NewRunner(p)
	r.Echo = &echoed
	if err := r.Run(s); err != nil {
		t.Fatalf("kermit script failed on the happy path: %v", err)
	}
	if !strings.Contains(echoed.String(), "logged in") {
		t.Errorf("ECHO output: %q", echoed.String())
	}
}

func TestInputTimeoutOnVariantPrompt(t *testing.T) {
	p, err := proc.SpawnVirtual("login", authsim.NewLogin(authsim.LoginConfig{
		Accounts:      map[string]string{"uucp": "secret"},
		PromptVariant: true,
	}), proc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	script, _ := Parse("INPUT 0.2 login:\nOUTPUT uucp\\13")
	err = NewRunner(p).Run(script)
	if !errors.Is(err, ErrInputTimeout) {
		t.Fatalf("err = %v, want input timeout", err)
	}
}

func TestHangupSurfaced(t *testing.T) {
	p, err := proc.SpawnVirtual("login", authsim.NewLogin(authsim.LoginConfig{
		Busy: true,
	}), proc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	script, _ := Parse("INPUT 2 login:")
	err = NewRunner(p).Run(script)
	if !errors.Is(err, ErrHangup) {
		t.Fatalf("err = %v, want hangup", err)
	}
}

func TestPauseAndClear(t *testing.T) {
	p, err := proc.SpawnVirtual("login", authsim.NewLogin(authsim.LoginConfig{
		Accounts: map[string]string{"uucp": "secret"},
	}), proc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	// CLEAR between the banner and the prompt must not break matching of
	// later input (the prompt may be flushed, so wait first).
	script, _ := Parse("INPUT 3 login:\nPAUSE 0.05\nOUTPUT uucp\\13\nINPUT 3 ssword:")
	start := time.Now()
	if err := NewRunner(p).Run(script); err != nil {
		t.Fatalf("run: %v", err)
	}
	if time.Since(start) < 50*time.Millisecond {
		t.Error("PAUSE did not pause")
	}
}
