// Package stelnet reimplements the precursor the paper's acknowledgements
// describe: Scott Paisley's "smart telnet", which "ran telnet and
// performed a simple send/expect conversation to login. stelnet had only
// straight-line control without error processing, used pipes instead of
// ptys, and lacked pattern matching and job control."
//
// Those four limitations are reproduced deliberately — this is the second
// baseline of experiment E12. Steps run strictly in order; an expect step
// blocks until its fixed string arrives or the stream ends; there is no
// alternation, no timeout action, no second process.
package stelnet

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"time"
)

// Step is one line of a straight-line conversation.
type Step struct {
	// Send, when true, writes Text; otherwise the step waits for Text to
	// appear in the output (fixed string — no patterns).
	Send bool
	Text string
}

// Expect builds a wait step.
func Expect(text string) Step { return Step{Text: text} }

// Send builds a write step.
func Send(text string) Step { return Step{Send: true, Text: text} }

// ErrHangup reports that the stream ended mid-conversation.
var ErrHangup = errors.New("stelnet: connection closed during conversation")

// ErrDeadline reports that the harness deadline expired; the original had
// no timeouts at all and would simply hang, so the deadline exists only so
// experiments can observe the hang without hanging themselves.
var ErrDeadline = errors.New("stelnet: conversation deadline exceeded (original would hang forever)")

// Run drives the conversation over rw. A zero deadline means wait forever
// — faithful to the original.
func Run(rw io.ReadWriter, steps []Step, deadline time.Duration) error {
	var timeout <-chan time.Time
	if deadline > 0 {
		timeout = time.After(deadline)
	}
	input := make(chan []byte, 16)
	go func() {
		defer close(input)
		for {
			b := make([]byte, 512)
			n, err := rw.Read(b)
			if n > 0 {
				input <- b[:n]
			}
			if err != nil {
				return
			}
		}
	}()
	var buf []byte
	for _, st := range steps {
		if st.Send {
			if _, err := rw.Write([]byte(st.Text)); err != nil {
				// Writing into a dead peer is a hangup; the original would
				// have taken a SIGPIPE here.
				return fmt.Errorf("%w (send failed: %v)", ErrHangup, err)
			}
			continue
		}
		for !strings.Contains(string(buf), st.Text) {
			select {
			case chunk, ok := <-input:
				if !ok {
					return fmt.Errorf("%w (waiting for %q)", ErrHangup, st.Text)
				}
				buf = append(buf, chunk...)
			case <-timeout:
				return fmt.Errorf("%w (waiting for %q)", ErrDeadline, st.Text)
			}
		}
		buf = nil // straight-line: each expect starts fresh
	}
	return nil
}
