package stelnet

import (
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/proc"
	"repro/internal/programs/authsim"
)

func loginSteps() []Step {
	return []Step{
		Expect("login: "),
		Send("don\n"),
		Expect("Password: "),
		Send("secret\n"),
		Expect("Welcome"),
		Send("logout\n"),
	}
}

func TestStraightLineLogin(t *testing.T) {
	// stelnet's one trick, §9: log in over pipes with fixed strings.
	p, err := proc.SpawnPipe("sh", []string{"-c", `printf 'login: '; read u; printf 'Password: '; read p; echo Welcome; read bye`}, proc.Options{})
	if err != nil {
		t.Skipf("spawn: %v", err)
	}
	defer p.Close()
	if err := Run(p, loginSteps(), 5*time.Second); err != nil {
		t.Fatalf("straight-line login failed: %v", err)
	}
}

func TestStraightLineLoginVirtual(t *testing.T) {
	p, err := proc.SpawnVirtual("login", authsim.NewLogin(authsim.LoginConfig{
		Accounts: map[string]string{"don": "secret"},
	}), proc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := Run(p, loginSteps(), 5*time.Second); err != nil {
		t.Fatalf("login via stelnet failed: %v", err)
	}
}

func TestNoErrorProcessingMeansHang(t *testing.T) {
	// Against a busy host the conversation simply never advances; the
	// original would hang forever — the harness deadline observes it.
	p, err := proc.SpawnVirtual("login", authsim.NewLogin(authsim.LoginConfig{
		Busy: true,
	}), proc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	err = Run(p, loginSteps(), 200*time.Millisecond)
	if !errors.Is(err, ErrDeadline) && !errors.Is(err, ErrHangup) {
		t.Fatalf("err = %v, want deadline/hangup", err)
	}
}

func TestNoPatternMatching(t *testing.T) {
	// "Str: 18" as a fixed string cannot express the rogue experiment's
	// *Str:\ 18* — a variant spacing defeats it.
	p, err := proc.SpawnVirtual("rogue-ish", func(stdin io.Reader, stdout io.Writer) error {
		stdout.Write([]byte("Str:  18\n")) // double space
		return nil
	}, proc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	err = Run(p, []Step{Expect("Str: 18")}, 200*time.Millisecond)
	if err == nil {
		t.Fatal("fixed-string match succeeded against variant output")
	}
}

func TestHangupMidConversation(t *testing.T) {
	p, err := proc.SpawnVirtual("dies", func(stdin io.Reader, stdout io.Writer) error {
		stdout.Write([]byte("login: "))
		return nil // dies before password stage
	}, proc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	err = Run(p, loginSteps(), 2*time.Second)
	if !errors.Is(err, ErrHangup) {
		t.Fatalf("err = %v, want hangup", err)
	}
}
