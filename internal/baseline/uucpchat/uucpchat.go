// Package uucpchat implements the send/expect chat scripts of uucp's
// L.sys file — the mechanism the paper credits for expect's name and
// dismisses as "quite primitive": straight-line expect/send pairs,
// substring matching, one alternate subexpression per field, and nothing
// else. No control flow, no multiple outcomes, no job control.
//
// A script is a whitespace-separated alternation of expect and send
// fields:
//
//	"" \r ogin:--ogin: uucp ssword: secret
//
// reads: expect nothing, send CR, expect "ogin:" (and if it does not come,
// send nothing and expect "ogin:" once more), send "uucp", expect
// "ssword:", send "secret". This is the baseline of experiment E12: it
// handles exactly the happy path it was written for.
package uucpchat

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"time"
)

// ErrChatTimeout reports an expect field that never matched.
var ErrChatTimeout = errors.New("uucpchat: expect timed out")

// subChat is one expect[-send-expect...] alternation within a field.
type subChat struct {
	expect string
	send   string // sent if expect times out, before the next expect
	more   *subChat
}

// Field is one script field: either an expect (with optional alternates)
// or a send.
type Field struct {
	IsExpect bool
	Expect   *subChat
	Send     string
	sendCR   bool
}

// Script is a parsed chat script.
type Script struct {
	Fields []Field
}

// Parse splits a chat string into alternating expect/send fields. Fields
// at even positions (0-based) are expects, odd are sends, exactly as
// uucico reads L.sys.
func Parse(chat string) (*Script, error) {
	raw := strings.Fields(chat)
	s := &Script{}
	for i, f := range raw {
		if i%2 == 0 {
			s.Fields = append(s.Fields, parseExpectField(f))
		} else {
			send, cr := parseSendText(f)
			s.Fields = append(s.Fields, Field{Send: send, sendCR: cr})
		}
	}
	return s, nil
}

func parseExpectField(f string) Field {
	parts := strings.Split(f, "-")
	head := &subChat{expect: unquote(parts[0])}
	cur := head
	// parts alternate: expect, send, expect, send, ...
	for k := 1; k+1 < len(parts); k += 2 {
		next := &subChat{expect: unquote(parts[k+1])}
		cur.send = unquote(parts[k])
		cur.more = next
		cur = next
	}
	return Field{IsExpect: true, Expect: head}
}

// unquote handles "" (empty) and the escape set uucp understood.
func unquote(s string) string {
	if s == `""` {
		return ""
	}
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			i++
			switch s[i] {
			case 'r':
				sb.WriteByte('\r')
			case 'n':
				sb.WriteByte('\n')
			case 's':
				sb.WriteByte(' ')
			case 't':
				sb.WriteByte('\t')
			default:
				sb.WriteByte(s[i])
			}
			continue
		}
		sb.WriteByte(s[i])
	}
	return sb.String()
}

// parseSendText handles the \c suffix (suppress the trailing CR).
func parseSendText(f string) (text string, cr bool) {
	cr = true
	if strings.HasSuffix(f, `\c`) {
		cr = false
		f = strings.TrimSuffix(f, `\c`)
	}
	return unquote(f), cr
}

// Runner executes a script against a byte stream. It owns a tiny reader
// pump — deliberately reimplemented at uucp's level of sophistication:
// one buffer, substring search, full rescans.
type Runner struct {
	rw      io.ReadWriter
	Timeout time.Duration // per expect field; default 45s like uucico

	input chan []byte
	errCh chan error
	buf   []byte
}

// NewRunner prepares to run scripts over rw.
func NewRunner(rw io.ReadWriter) *Runner {
	r := &Runner{rw: rw, Timeout: 45 * time.Second,
		input: make(chan []byte, 16), errCh: make(chan error, 1)}
	go func() {
		for {
			b := make([]byte, 512)
			n, err := rw.Read(b)
			if n > 0 {
				r.input <- b[:n]
			}
			if err != nil {
				r.errCh <- err
				close(r.input)
				return
			}
		}
	}()
	return r
}

// Run executes the script. The first expect failure aborts the whole chat
// — a uucico would hang up and retry later, which is exactly the
// inflexibility the paper calls out ("system administrators always embed
// calls to uucp in shell scripts which can repeat dialing upon failure").
func (r *Runner) Run(s *Script) error {
	for _, f := range s.Fields {
		if f.IsExpect {
			if err := r.expectField(f.Expect); err != nil {
				return err
			}
			continue
		}
		if err := r.sendText(f.Send, f.sendCR); err != nil {
			return err
		}
	}
	return nil
}

func (r *Runner) sendText(text string, cr bool) error {
	if cr {
		text += "\r"
	}
	if text == "" {
		return nil
	}
	_, err := r.rw.Write([]byte(text))
	return err
}

// expectField waits for sub.expect, falling through the alternates.
func (r *Runner) expectField(sub *subChat) error {
	for sub != nil {
		err := r.waitFor(sub.expect)
		if err == nil {
			return nil
		}
		if !errors.Is(err, ErrChatTimeout) {
			return err
		}
		if sub.more == nil {
			return fmt.Errorf("%w waiting for %q", ErrChatTimeout, sub.expect)
		}
		if serr := r.sendText(sub.send, true); serr != nil {
			return serr
		}
		sub = sub.more
	}
	return nil
}

// waitFor blocks until needle appears in the stream (substring, not
// pattern) or the per-field timeout passes.
func (r *Runner) waitFor(needle string) error {
	if needle == "" {
		return nil
	}
	deadline := time.After(r.Timeout)
	for {
		if strings.Contains(string(r.buf), needle) {
			// uucp discards everything once a field matches.
			r.buf = nil
			return nil
		}
		select {
		case chunk, ok := <-r.input:
			if !ok {
				return io.EOF
			}
			r.buf = append(r.buf, chunk...)
		case <-deadline:
			return ErrChatTimeout
		}
	}
}
