package uucpchat

import (
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/proc"
	"repro/internal/programs/authsim"
)

func TestParse(t *testing.T) {
	s, err := Parse(`"" \r ogin:--ogin: uucp ssword: secret`)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Fields) != 6 {
		t.Fatalf("fields = %d, want 6", len(s.Fields))
	}
	if !s.Fields[0].IsExpect || s.Fields[0].Expect.expect != "" {
		t.Errorf("field 0 = %+v", s.Fields[0])
	}
	if s.Fields[1].IsExpect || s.Fields[1].Send != "\r" {
		t.Errorf("field 1 = %+v", s.Fields[1])
	}
	f2 := s.Fields[2]
	if !f2.IsExpect || f2.Expect.expect != "ogin:" {
		t.Fatalf("field 2 = %+v", f2)
	}
	if f2.Expect.more == nil || f2.Expect.more.expect != "ogin:" || f2.Expect.send != "" {
		t.Errorf("alternate of field 2 = %+v", f2.Expect.more)
	}
	if s.Fields[3].Send != "uucp" {
		t.Errorf("field 3 = %+v", s.Fields[3])
	}
}

func TestEscapes(t *testing.T) {
	if got := unquote(`a\r\n\s\tb`); got != "a\r\n \tb" {
		t.Errorf("unquote = %q", got)
	}
	text, cr := parseSendText(`word\c`)
	if text != "word" || cr {
		t.Errorf("parseSendText = %q, %v", text, cr)
	}
}

func spawnLogin(t *testing.T, cfg authsim.LoginConfig) *proc.Process {
	t.Helper()
	p, err := proc.SpawnVirtual("login", authsim.NewLogin(cfg), proc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func TestChatLoginHappyPath(t *testing.T) {
	p := spawnLogin(t, authsim.LoginConfig{
		Accounts: map[string]string{"uucp": "secret"},
	})
	r := NewRunner(p)
	r.Timeout = 3 * time.Second
	script, _ := Parse(`ogin: uucp ssword: secret elcome ""`)
	if err := r.Run(script); err != nil {
		t.Fatalf("chat failed on the happy path: %v", err)
	}
}

func TestChatTimesOutOnVariantPrompt(t *testing.T) {
	// The fixed "ogin:" expectation cannot cope with a "Username:" prompt
	// — the rigidity the paper criticizes.
	p := spawnLogin(t, authsim.LoginConfig{
		Accounts:      map[string]string{"uucp": "secret"},
		PromptVariant: true,
	})
	r := NewRunner(p)
	r.Timeout = 150 * time.Millisecond
	script, _ := Parse(`ogin: uucp ssword: secret`)
	err := r.Run(script)
	if !errors.Is(err, ErrChatTimeout) {
		t.Fatalf("err = %v, want chat timeout", err)
	}
}

func TestChatAlternateResendsOnSilence(t *testing.T) {
	// ogin:--ogin: — a getty that says nothing until poked.
	poked := false
	prog := func(stdin io.Reader, stdout io.Writer) error {
		buf := make([]byte, 64)
		for {
			n, err := stdin.Read(buf)
			if err != nil {
				return nil
			}
			if n > 0 {
				if !poked {
					poked = true
					io.WriteString(stdout, "login: ")
					continue
				}
				if strings.Contains(string(buf[:n]), "uucp") {
					io.WriteString(stdout, "Password: ")
					return nil
				}
			}
		}
	}
	p, err := proc.SpawnVirtual("shy-getty", prog, proc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	r := NewRunner(p)
	r.Timeout = 200 * time.Millisecond
	script, _ := Parse(`ogin:--ogin: uucp ssword:`)
	if err := r.Run(script); err != nil {
		t.Fatalf("alternate did not rescue the chat: %v", err)
	}
	if !poked {
		t.Error("alternate never sent the wake-up CR")
	}
}

func TestChatCannotBranch(t *testing.T) {
	// A busy system needs a retry loop — chat scripts have no way to
	// express one; the whole run just fails (E12's capability gap).
	p := spawnLogin(t, authsim.LoginConfig{Busy: true})
	r := NewRunner(p)
	r.Timeout = 300 * time.Millisecond
	script, _ := Parse(`ogin: uucp ssword: secret`)
	if err := r.Run(script); err == nil {
		t.Fatal("chat against a busy system succeeded?!")
	}
}

func TestChatEOFSurfaced(t *testing.T) {
	p, err := proc.SpawnVirtual("dead", func(stdin io.Reader, stdout io.Writer) error {
		return nil // exits immediately
	}, proc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	r := NewRunner(p)
	r.Timeout = time.Second
	script, _ := Parse(`ogin: uucp`)
	if err := r.Run(script); !errors.Is(err, io.EOF) {
		t.Fatalf("err = %v, want EOF", err)
	}
}
