// Package conformance is the differential harness: it replays the shipped
// scripts/*.exp and a table of engine scenarios through every engine
// variant (rescan vs incremental matching × the classic/cached/vm Tcl
// evaluation modes) and through clean vs deterministically-faultified
// transports (internal/faultify), then asserts that the observable
// outcomes are identical.
//
// What counts as observable is chosen to be chunking-invariant, because
// §3.1's anchored glob semantics make some surfaces legitimately depend
// on read segmentation (an early `*foo*` match consumes whatever partial
// buffer happens to hold "foo"). The invariant surfaces compared here:
//
//   - the user-facing transcript produced by the script itself
//     (send_user/print output, with log_user off so racy pump chunks
//     never interleave),
//   - each child's complete raw output stream, captured per spawn
//     ordinal by the engine's ChildTap hook and drained to process exit
//     before comparison,
//   - the script's exit code and error disposition.
//
// A divergence is reported with the variant, the fault schedule (whose
// Seed fully determines the perturbation), and a greedily minimized
// schedule that still reproduces it — a self-contained repro recipe.
package conformance

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/faultify"
	"repro/internal/metrics"
	"repro/internal/netx"
	"repro/internal/proc"
	"repro/internal/programs/authsim"
	"repro/internal/programs/eliza"
	"repro/internal/programs/fsck"
	"repro/internal/programs/modem"
	"repro/internal/programs/rogue"
	"repro/internal/tcl"
	"repro/internal/trace"
)

// Variant names one engine configuration under test.
type Variant struct {
	Name string
	// Matcher selects the glob scan strategy (rescan is the seed
	// baseline; incremental is the NFA-feeding optimisation).
	Matcher core.MatcherMode
	// EvalCacheSize is passed to Interp.SetEvalCacheSize; 0 restores the
	// classic parse-as-you-evaluate path.
	EvalCacheSize int
	// EvalMode, when non-empty, selects the interpreter's evaluation
	// engine ("classic", "cached", or "vm" — see tcl.ParseEvalMode). The
	// register-bytecode vm must be observably identical to the classic
	// walker on every script, scenario, and fault schedule.
	EvalMode string
	// Shards > 0 runs the engine's sessions under a sharded scheduler
	// with that many event loops instead of per-session pump goroutines.
	Shards int
	// Network serves every simulated program behind its own fresh
	// loopback TCP server (internal/netx) and registers the names as
	// remotes, so each spawn dials a socket instead of starting an
	// in-process virtual — the loopback-socket transport variant. The
	// observables must still be byte-identical: the wire adds real
	// segmentation, which is exactly what the invariant surfaces are
	// chosen to be immune to.
	Network bool
	// Mux serves every simulated program behind one shared session
	// gateway (netx.MuxServer) and registers the names as mux remotes, so
	// each spawn opens a framed stream on a pooled TCP connection instead
	// of dialing its own socket — the multiplexed-gateway transport
	// variant. Demultiplexing adds another layer of re-segmentation and
	// interleaving on a shared wire; the observables must still be
	// byte-identical to the one-conn-one-session referee.
	Mux bool
}

// Variants is the full matrix: both matchers × the three evaluation
// modes, plus the sharded-scheduler cells (shard counts pinned
// explicitly — the default would collapse to GOMAXPROCS). Variants[0]
// is the seed-faithful baseline every other cell is compared against.
var Variants = []Variant{
	{Name: "rescan-cached", Matcher: core.MatcherRescan, EvalCacheSize: tcl.DefaultEvalCacheSize},
	{Name: "incremental-cached", Matcher: core.MatcherIncremental, EvalCacheSize: tcl.DefaultEvalCacheSize},
	{Name: "rescan-classic", Matcher: core.MatcherRescan, EvalMode: "classic"},
	{Name: "incremental-classic", Matcher: core.MatcherIncremental, EvalMode: "classic"},
	{Name: "rescan-vm", Matcher: core.MatcherRescan, EvalCacheSize: tcl.DefaultEvalCacheSize, EvalMode: "vm"},
	{Name: "incremental-vm", Matcher: core.MatcherIncremental, EvalCacheSize: tcl.DefaultEvalCacheSize, EvalMode: "vm"},
	{Name: "rescan-cached-shard1", Matcher: core.MatcherRescan, EvalCacheSize: tcl.DefaultEvalCacheSize, Shards: 1},
	{Name: "rescan-cached-shard8", Matcher: core.MatcherRescan, EvalCacheSize: tcl.DefaultEvalCacheSize, Shards: 8},
	{Name: "incremental-cached-shard8", Matcher: core.MatcherIncremental, EvalCacheSize: tcl.DefaultEvalCacheSize, Shards: 8},
	{Name: "rescan-vm-shard1", Matcher: core.MatcherRescan, EvalCacheSize: tcl.DefaultEvalCacheSize, EvalMode: "vm", Shards: 1},
	{Name: "rescan-vm-shard8", Matcher: core.MatcherRescan, EvalCacheSize: tcl.DefaultEvalCacheSize, EvalMode: "vm", Shards: 8},
	{Name: "rescan-cached-net", Matcher: core.MatcherRescan, EvalCacheSize: tcl.DefaultEvalCacheSize, Network: true},
	{Name: "rescan-cached-net-shard8", Matcher: core.MatcherRescan, EvalCacheSize: tcl.DefaultEvalCacheSize, Shards: 8, Network: true},
	{Name: "rescan-vm-net", Matcher: core.MatcherRescan, EvalCacheSize: tcl.DefaultEvalCacheSize, EvalMode: "vm", Network: true},
	{Name: "rescan-cached-mux", Matcher: core.MatcherRescan, EvalCacheSize: tcl.DefaultEvalCacheSize, Mux: true},
	{Name: "rescan-cached-mux-shard8", Matcher: core.MatcherRescan, EvalCacheSize: tcl.DefaultEvalCacheSize, Shards: 8, Mux: true},
	{Name: "rescan-vm-mux", Matcher: core.MatcherRescan, EvalCacheSize: tcl.DefaultEvalCacheSize, EvalMode: "vm", Mux: true},
}

// Condition names one transport treatment. A Clean schedule means the
// transport is not wrapped at all.
type Condition struct {
	Name  string
	Sched faultify.Schedule
}

// Conditions are the semantics-preserving perturbations: they reorder
// nothing and lose nothing, so every outcome must match the clean
// baseline bit for bit. (Semantics-altering faults — CutAfterBytes —
// are reserved for the mutation test, which proves the harness detects
// what it is supposed to detect.)
var Conditions = []Condition{
	{"clean", faultify.Schedule{Seed: 1}},
	{"reseg1", faultify.Schedule{Seed: 11, MaxReadChunk: 1}},
	{"mixed", faultify.Schedule{
		Seed:                 12,
		MaxReadChunk:         3,
		MaxWriteChunk:        2,
		TransientEveryN:      5,
		WriteTransientEveryN: 7,
		DelayEveryN:          9,
		ReadDelay:            time.Millisecond,
	}},
}

// Child is one spawned process's complete output stream, in spawn order.
type Child struct {
	Seq        int
	Name       string
	Transcript string
}

// Outcome is everything the harness compares for one run.
type Outcome struct {
	// User is what the script printed to the user (send_user, print);
	// log_user is off so no raw pump chunks interleave here.
	User string
	// Children holds each spawned process's drained output stream.
	Children []Child
	// ExitCode/ExitCalled mirror Engine.ExitCode.
	ExitCode   int
	ExitCalled bool
	// Err is the script-level error ("" on success).
	Err string
	// Faults snapshots the injected-fault counters (report-only; never
	// compared — two runs legitimately differ in how many reads the
	// schedule happened to split).
	Faults map[string]int64
	// Dump is the run's bounded flight recording (JSONL, last
	// dumpTailEvents events): reads, pattern attempts, injected faults,
	// timer activity. Report-only, never compared — timings and chunk
	// boundaries legitimately differ between runs. When a cell diverges,
	// this is the black box that says what the engine actually saw.
	Dump []byte
	// Journal is the run's full durable journal (trace journal mode:
	// complete payloads, unbounded length) — unlike Dump it is not a
	// preview but the replayable record: internal/replay re-drives it
	// byte-for-byte and must reproduce the same observables standalone.
	Journal []byte
}

// dumpTailEvents bounds the flight-recording tail attached to each
// outcome; it matches the engine's own incident-dump depth.
const dumpTailEvents = 128

// ScriptCase is one shipped script with its run parameters.
type ScriptCase struct {
	// File is the name under scripts/.
	File string
	Args []string
	// CompareUser: rogue.exp ends in `interact`, whose pass-through drain
	// races the user's EOF, so its user transcript is legitimately
	// nondeterministic and excluded from comparison. Child transcripts
	// and exit codes are still compared for every script.
	CompareUser bool
}

// Scripts lists every shipped script. callback.exp runs its busy branch
// in integration tests; here the connect branch exercises the modem
// dialogue (the 4-second courtesy sleep is the script's own behaviour).
var Scripts = []ScriptCase{
	{File: "callback.exp", Args: []string{"12016442332"}, CompareUser: true},
	{File: "elizaduet.exp", CompareUser: true},
	{File: "fsck.exp", CompareUser: true},
	{File: "login.exp", CompareUser: true},
	{File: "passwd.exp", CompareUser: true},
	{File: "rogue.exp", CompareUser: false},
}

// ScriptedScenarios are the interpreter-heavy dialogue fixtures under
// testdata/: unlike the engine-scenario table (scenarios.go), which
// drives sessions through the core API with no interpreter in the loop,
// these compute every sent byte with procs, loops, and expr between
// expect wakeups — so the eval-mode axis (classic/cached/vm) is load-
// bearing for every cell. They run through RunScript with scriptsDir
// pointed at the package testdata directory.
var ScriptedScenarios = []ScriptCase{
	{File: "vmdialog.exp", CompareUser: true},
	{File: "vmcompute.exp", CompareUser: true},
}

// sim pairs a spawnable name with its program.
type sim struct {
	name string
	prog proc.Program
}

// deterministicSims builds the simulated programs with pinned seeds and
// no environment dependence, unlike the CLI's registration (time-based
// seeds, $USER): differential comparison needs every run of a sim to
// emit byte-identical output for identical input. Built fresh per run so
// stateful program values never carry dialogue state across runs.
func deterministicSims() []sim {
	return []sim{
		{"rogue-sim", rogue.New(rogue.Config{
			Seed: 7, LuckNumerator: 1, LuckDenominator: 1,
		})},
		{"eliza-sim", eliza.New(eliza.Config{Seed: 42})},
		{"fsck-sim", fsck.New(fsck.Config{
			FS: fsck.Generate(7, 20, 100, 6),
		})},
		{"passwd-sim", authsim.NewPasswd(authsim.PasswdConfig{
			User:       "don",
			Dictionary: []string{"password", "dragon", "letmein", "qwerty"},
		})},
		{"login-sim", authsim.NewLogin(authsim.LoginConfig{
			Accounts: map[string]string{"guest": "guest", "don": "secret"},
		})},
		{"tip-sim", modem.NewTip(modem.TipConfig{Modem: modem.Config{
			Directory: map[string]modem.Entry{
				"12016442332": {Result: modem.ResultConnect, Delay: 50 * time.Millisecond},
				"5550000":     {Result: modem.ResultBusy},
			},
			Default: modem.Entry{Result: modem.ResultNoCarrier, Delay: 100 * time.Millisecond},
		}})},
	}
}

// simServers owns whatever loopback infrastructure a transport variant
// stood up for the simulated programs: one plain server per sim for the
// Network axis, or one shared session gateway for the Mux axis.
type simServers struct {
	plain []*netx.Server
	mux   *netx.MuxServer
}

// shutdown drains every server within grace. Called after the engine has
// hung up all its sessions, so programs are already returning.
func (ss *simServers) shutdown(grace time.Duration) {
	for _, s := range ss.plain {
		s.Shutdown(grace)
	}
	if ss.mux != nil {
		ss.mux.Shutdown(grace)
	}
}

// registerDeterministicSims installs the sims into the engine: as
// in-process virtuals normally; for a Network variant behind per-run
// loopback TCP servers dialed by name; for a Mux variant behind one
// shared session gateway whose streams the engine's pooled client opens
// by program name. The remote registrations keep spawn names (and hence
// Child.Name and trace text) identical across transports. It returns the
// servers to shut down after the run (zero-valued when in-process).
func registerDeterministicSims(eng *core.Engine, v Variant) (*simServers, error) {
	ss := &simServers{}
	switch {
	case v.Mux:
		progs := make(map[string]proc.Program)
		for _, sm := range deterministicSims() {
			progs[sm.name] = sm.prog
		}
		srv, err := netx.NewMuxServer("127.0.0.1:0", progs, netx.MuxServerOptions{})
		if err != nil {
			return nil, fmt.Errorf("mux gateway for sims: %w", err)
		}
		ss.mux = srv
		for name := range progs {
			eng.RegisterRemoteMux(name, srv.Addr())
		}
	case v.Network:
		for _, sm := range deterministicSims() {
			srv, err := netx.NewServer("127.0.0.1:0", sm.prog)
			if err != nil {
				ss.shutdown(0)
				return nil, fmt.Errorf("loopback server for %s: %w", sm.name, err)
			}
			ss.plain = append(ss.plain, srv)
			eng.RegisterRemote(sm.name, srv.Addr())
		}
	default:
		for _, sm := range deterministicSims() {
			eng.RegisterVirtual(sm.name, sm.prog)
		}
	}
	return ss, nil
}

// lockedBuf is a pump-goroutine-safe byte sink.
type lockedBuf struct {
	mu  sync.Mutex
	buf strings.Builder
}

func (b *lockedBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// tapSet collects per-spawn child transcripts keyed by spawn ordinal.
type tapSet struct {
	mu   sync.Mutex
	taps []*childTap
}

type childTap struct {
	seq  int
	name string
	buf  lockedBuf
}

func (ts *tapSet) hook(seq int, name string) io.Writer {
	ct := &childTap{seq: seq, name: name}
	ts.mu.Lock()
	ts.taps = append(ts.taps, ct)
	ts.mu.Unlock()
	return &ct.buf
}

func (ts *tapSet) children() []Child {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make([]Child, 0, len(ts.taps))
	for _, ct := range ts.taps {
		out = append(out, Child{Seq: ct.seq, Name: ct.name, Transcript: ct.buf.String()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// drainDeadline bounds how long RunScript waits for a child to exit after
// its stdin is half-closed during the drain protocol.
const drainDeadline = 10 * time.Second

// RunScript replays scriptsDir/sc.File through one engine variant with
// one fault schedule and returns the invariant outcome.
//
// The drain protocol matters: a script often ends with bytes still in
// flight (a logout banner, a farewell line). Comparing transcripts
// truncated at whatever instant the script happened to finish would be
// pure noise, so before shutdown every surviving session's write side is
// closed (the child sees EOF and exits) and the pump is allowed to drain
// the stream to EOF. Only then are transcripts collected.
func RunScript(scriptsDir string, sc ScriptCase, v Variant, sched faultify.Schedule) (*Outcome, error) {
	taps := &tapSet{}
	var user lockedBuf
	counters := metrics.NewCounters()
	logUser := false
	// One armed recorder shared by the engine and the fault injector, so a
	// divergence report interleaves what the adversary did with what the
	// engine saw, in one sequence-ordered recording.
	rec := trace.New(0)
	rec.SetRecording(true)
	// Journal mode rides along: the ring keeps serving the bounded Dump
	// while the journal retains every event with full payloads, so a
	// diverging cell ships a standalone replayable record of itself.
	jrn := trace.NewJournal()
	rec.SetJournal(jrn)
	opts := core.EngineOptions{
		UserIn:   strings.NewReader(""),
		UserOut:  &user,
		Matcher:  v.Matcher,
		LogUser:  &logUser,
		ChildTap: taps.hook,
		Rec:      rec,
		Shards:   v.Shards,
	}
	if !sched.Clean() {
		opts.SpawnWrap = faultify.TracedWrapper(sched, counters, rec)
	}
	eng := core.NewEngine(opts)
	eng.Interp.SetEvalCacheSize(v.EvalCacheSize)
	if m, ok := tcl.ParseEvalMode(v.EvalMode); ok {
		eng.Interp.SetEvalMode(m)
	}
	servers, err := registerDeterministicSims(eng, v)
	if err != nil {
		return nil, err
	}
	eng.Interp.GlobalSet("argv", tcl.FormList(append([]string{sc.File}, sc.Args...)))

	_, runErr := eng.RunFile(scriptsDir + "/" + sc.File)

	// Drain: half-close each surviving session and wait for its stream to
	// reach EOF so transcripts are complete, not cut at script end.
	for _, id := range eng.SessionIDs() {
		s, ok := eng.SessionByID(id)
		if !ok {
			continue
		}
		s.CloseWrite()
		done := make(chan struct{})
		go func() { s.WaitPumpDrained(); close(done) }()
		select {
		case <-done:
		case <-time.After(drainDeadline):
			// A child that ignores EOF would hang the harness; kill it.
			s.Kill()
		}
	}
	eng.Shutdown()
	// Loopback servers drain after the engine hangs up: every session has
	// had its FIN (or its CLOSE frame), so the programs are already
	// returning.
	servers.shutdown(drainDeadline)

	out := &Outcome{
		User:     user.String(),
		Children: taps.children(),
		Faults:   counters.Snapshot(),
		Dump:     rec.Dump(dumpTailEvents),
		Journal:  jrn.Bytes(),
	}
	out.ExitCode, out.ExitCalled = eng.ExitCode()
	if runErr != nil {
		out.Err = runErr.Error()
	}
	return out, nil
}

// Diff explains the first difference between two outcomes, or returns ""
// when they agree on every compared surface.
func Diff(base, got *Outcome, compareUser bool) string {
	if base.Err != got.Err {
		return fmt.Sprintf("script error: baseline %q vs %q", base.Err, got.Err)
	}
	if base.ExitCalled != got.ExitCalled || base.ExitCode != got.ExitCode {
		return fmt.Sprintf("exit status: baseline (%d, called=%v) vs (%d, called=%v)",
			base.ExitCode, base.ExitCalled, got.ExitCode, got.ExitCalled)
	}
	if compareUser && base.User != got.User {
		return fmt.Sprintf("user transcript: baseline %q vs %q", base.User, got.User)
	}
	if len(base.Children) != len(got.Children) {
		return fmt.Sprintf("spawn count: baseline %d vs %d", len(base.Children), len(got.Children))
	}
	for i := range base.Children {
		b, g := base.Children[i], got.Children[i]
		if b.Name != g.Name {
			return fmt.Sprintf("spawn #%d: baseline %q vs %q", i, b.Name, g.Name)
		}
		if b.Transcript != g.Transcript {
			return fmt.Sprintf("child %q (#%d) transcript: baseline %d bytes vs %d bytes; first divergence at offset %d",
				b.Name, i, len(b.Transcript), len(g.Transcript), firstDiff(b.Transcript, g.Transcript))
		}
	}
	return ""
}

func firstDiff(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// Divergence is a failed comparison packaged as a repro recipe.
type Divergence struct {
	Subject  string // script file or scenario name
	Variant  Variant
	Schedule faultify.Schedule // schedule that produced the divergence
	Minimal  faultify.Schedule // smallest schedule still reproducing it
	Detail   string            // Diff output
	// Dump is the diverging run's flight recording (Outcome.Dump): the
	// JSONL black box embedded in the report so the reader sees the reads,
	// attempts, and injected faults leading up to the divergence without
	// re-running anything.
	Dump []byte
	// Journal is the diverging run's full replayable journal
	// (Outcome.Journal): internal/replay.RunJournal re-drives it
	// standalone — no sims, no faults, no scheduler — and must reproduce
	// the identical dispositions, which is how the harness confirms a
	// divergence is real engine behaviour rather than run-to-run noise.
	Journal []byte
}

func (d *Divergence) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb,
		"conformance divergence in %s [variant %s]\n  %s\n  repro: schedule %s\n  minimized: schedule %s",
		d.Subject, d.Variant.Name, d.Detail, d.Schedule.String(), d.Minimal.String())
	if len(d.Dump) > 0 {
		sb.WriteString("\n  flight recording (JSONL, last ")
		fmt.Fprintf(&sb, "%d events max):", dumpTailEvents)
		for _, line := range strings.Split(strings.TrimRight(string(d.Dump), "\n"), "\n") {
			sb.WriteString("\n    ")
			sb.WriteString(line)
		}
	}
	if n := bytesLines(d.Journal); n > 0 {
		fmt.Fprintf(&sb, "\n  replayable journal: %d events, %d bytes (re-drive with internal/replay.RunJournal)",
			n, len(d.Journal))
	}
	return sb.String()
}

// bytesLines counts newline-terminated records in a JSONL blob.
func bytesLines(b []byte) int {
	n := 0
	for _, c := range b {
		if c == '\n' {
			n++
		}
	}
	return n
}

// Minimize greedily strips fault classes from sched while diverges keeps
// reporting the divergence, returning the smallest schedule found. The
// result is what a human debugs: rather than "the mixed schedule breaks
// passwd.exp", it answers "a forced EOF after 5 bytes breaks passwd.exp".
func Minimize(sched faultify.Schedule, diverges func(faultify.Schedule) bool) faultify.Schedule {
	drop := []func(*faultify.Schedule){
		func(s *faultify.Schedule) { s.TransientEveryN = 0 },
		func(s *faultify.Schedule) { s.WriteTransientEveryN = 0 },
		func(s *faultify.Schedule) { s.DelayEveryN, s.ReadDelay = 0, 0 },
		func(s *faultify.Schedule) { s.MaxWriteChunk = 0 },
		func(s *faultify.Schedule) { s.MaxReadChunk = 0 },
		func(s *faultify.Schedule) { s.CutAfterBytes = 0 },
	}
	for _, mod := range drop {
		candidate := sched
		mod(&candidate)
		if candidate == sched {
			continue // class not present
		}
		if diverges(candidate) {
			sched = candidate
		}
	}
	return sched
}
