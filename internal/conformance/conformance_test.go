package conformance

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/faultify"
	"repro/internal/replay"
	"repro/internal/tcl"
	"repro/internal/trace"
)

const scriptsDir = "../../scripts"

// TestConformanceScripts replays every shipped script through the full
// variant × condition matrix and requires each cell's outcome to be
// identical to the seed-faithful baseline (rescan matcher, cached eval,
// clean transport).
func TestConformanceScripts(t *testing.T) {
	if testing.Short() {
		t.Skip("script matrix is wall-clock heavy (callback.exp sleeps 4s per cell)")
	}
	for _, sc := range Scripts {
		sc := sc
		t.Run(sc.File, func(t *testing.T) {
			t.Parallel()
			base, err := RunScript(scriptsDir, sc, Variants[0], Conditions[0].Sched)
			if err != nil {
				t.Fatalf("baseline: %v", err)
			}
			if base.Err != "" {
				t.Fatalf("baseline script error: %s", base.Err)
			}
			for _, v := range Variants {
				for _, cond := range Conditions {
					if v.Name == Variants[0].Name && cond.Name == Conditions[0].Name {
						continue // the baseline itself
					}
					v, cond := v, cond
					t.Run(v.Name+"/"+cond.Name, func(t *testing.T) {
						t.Parallel()
						got, err := RunScript(scriptsDir, sc, v, cond.Sched)
						if err != nil {
							t.Fatalf("run: %v", err)
						}
						if d := Diff(base, got, sc.CompareUser); d != "" {
							div := &Divergence{
								Subject: sc.File, Variant: v,
								Schedule: cond.Sched, Minimal: cond.Sched, Detail: d,
								Dump: got.Dump, Journal: got.Journal,
							}
							t.Error(div.String())
						}
					})
				}
			}
		})
	}
}

// TestConformanceScriptedScenarios replays the interpreter-heavy
// testdata fixtures across the three evaluation modes × every fault
// schedule × scheduler shapes (including the shard1/shard8 legs),
// anchored to the classic evaluator — the frozen referee — as baseline.
// The fixtures compute each sent byte in Tcl, so a vm miscompile shows
// up as a transcript or exit divergence here, not just in unit tests.
func TestConformanceScriptedScenarios(t *testing.T) {
	variants := []Variant{
		{Name: "classic", Matcher: core.MatcherRescan, EvalMode: "classic"},
		{Name: "cached", Matcher: core.MatcherRescan, EvalCacheSize: tcl.DefaultEvalCacheSize, EvalMode: "cached"},
		{Name: "vm", Matcher: core.MatcherRescan, EvalCacheSize: tcl.DefaultEvalCacheSize, EvalMode: "vm"},
		{Name: "classic-shard1", Matcher: core.MatcherRescan, EvalMode: "classic", Shards: 1},
		{Name: "cached-shard1", Matcher: core.MatcherRescan, EvalCacheSize: tcl.DefaultEvalCacheSize, EvalMode: "cached", Shards: 1},
		{Name: "vm-shard1", Matcher: core.MatcherRescan, EvalCacheSize: tcl.DefaultEvalCacheSize, EvalMode: "vm", Shards: 1},
		{Name: "classic-shard8", Matcher: core.MatcherRescan, EvalMode: "classic", Shards: 8},
		{Name: "cached-shard8", Matcher: core.MatcherRescan, EvalCacheSize: tcl.DefaultEvalCacheSize, EvalMode: "cached", Shards: 8},
		{Name: "vm-shard8", Matcher: core.MatcherRescan, EvalCacheSize: tcl.DefaultEvalCacheSize, EvalMode: "vm", Shards: 8},
	}
	for _, sc := range ScriptedScenarios {
		sc := sc
		t.Run(sc.File, func(t *testing.T) {
			t.Parallel()
			base, err := RunScript("testdata", sc, variants[0], Conditions[0].Sched)
			if err != nil {
				t.Fatalf("baseline: %v", err)
			}
			if base.Err != "" {
				t.Fatalf("baseline script error: %s", base.Err)
			}
			for _, v := range variants {
				for _, cond := range Conditions {
					if v.Name == variants[0].Name && cond.Name == Conditions[0].Name {
						continue
					}
					v, cond := v, cond
					t.Run(v.Name+"/"+cond.Name, func(t *testing.T) {
						t.Parallel()
						got, err := RunScript("testdata", sc, v, cond.Sched)
						if err != nil {
							t.Fatalf("run: %v", err)
						}
						if d := Diff(base, got, sc.CompareUser); d != "" {
							div := &Divergence{
								Subject: sc.File, Variant: v,
								Schedule: cond.Sched, Minimal: cond.Sched, Detail: d,
								Dump: got.Dump, Journal: got.Journal,
							}
							t.Error(div.String())
						}
					})
				}
			}
		})
	}
}

// TestConformanceScenarios runs the engine-scenario table across both
// matchers, every condition, both schedulers (per-session pumps and
// sharded event loops), and both transports (virtual and loopback
// socket); all summaries must equal the baseline's.
func TestConformanceScenarios(t *testing.T) {
	configs := []struct {
		name    string
		mode    core.MatcherMode
		shards  int
		network bool
		mux     bool
	}{
		{"rescan", core.MatcherRescan, 0, false, false},
		{"incremental", core.MatcherIncremental, 0, false, false},
		{"rescan-shard1", core.MatcherRescan, 1, false, false},
		{"rescan-shard8", core.MatcherRescan, 8, false, false},
		{"incremental-shard8", core.MatcherIncremental, 8, false, false},
		{"rescan-net", core.MatcherRescan, 0, true, false},
		{"rescan-net-shard8", core.MatcherRescan, 8, true, false},
		{"rescan-mux", core.MatcherRescan, 0, false, true},
		{"rescan-mux-shard8", core.MatcherRescan, 8, false, true},
	}
	for _, sc := range AllScenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			base, err := RunScenario(sc, core.MatcherRescan, Conditions[0].Sched)
			if err != nil {
				t.Fatalf("baseline: %v", err)
			}
			if base == "" {
				t.Fatal("baseline produced an empty summary")
			}
			for _, m := range configs {
				for _, cond := range Conditions {
					m, cond := m, cond
					t.Run(m.name+"/"+cond.Name, func(t *testing.T) {
						t.Parallel()
						got, err := RunScenarioWith(sc, ScenarioRun{
							Matcher: m.mode, Sched: cond.Sched,
							Shards: m.shards, Network: m.network, Mux: m.mux,
						})
						if err != nil {
							t.Fatalf("run: %v", err)
						}
						if got != base {
							t.Errorf("summary diverged under schedule %s:\nbaseline: %s\n     got: %s",
								cond.Sched.String(), base, got)
						}
					})
				}
			}
		})
	}
}

// TestPollerFallbackScenarioEquivalence is the zero-copy ingest
// differential: every scenario runs over the socket transport under a
// sharded scheduler twice — once eligible for the shard's readiness
// poller (the epoll loop on linux) and once pinned to the fallback
// reader goroutine — and the summaries must be identical. Which loop
// moves the bytes is not an observable. On platforms without a poller
// both arms take the fallback and the test degenerates to a rerun.
func TestPollerFallbackScenarioEquivalence(t *testing.T) {
	for _, sc := range AllScenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			for _, cond := range Conditions {
				cond := cond
				t.Run(cond.Name, func(t *testing.T) {
					t.Parallel()
					run := ScenarioRun{
						Matcher: core.MatcherRescan, Sched: cond.Sched,
						Shards: 4, Network: true,
					}
					polled, err := RunScenarioWith(sc, run)
					if err != nil {
						t.Fatalf("polled run: %v", err)
					}
					run.NoPoller = true
					fallback, err := RunScenarioWith(sc, run)
					if err != nil {
						t.Fatalf("fallback run: %v", err)
					}
					if polled != fallback {
						t.Errorf("ingest loops diverged under schedule %s:\n  polled: %s\nfallback: %s",
							cond.Sched.String(), polled, fallback)
					}
				})
			}
		})
	}
}

// TestConformanceMutationCaught is the harness's own proof of life: a
// deliberately semantics-altering schedule (forced EOF 5 bytes into the
// passwd dialogue) must be detected as a divergence and reported with
// the seed and a minimized fault schedule — the repro recipe a real
// divergence would ship with. (passwd.exp is straight-line: the early
// EOF implicitly closes the session, §3.2, and the next send fails —
// a deterministic, promptly-detected divergence. login.exp's retry loop
// would instead respawn forever.)
func TestConformanceMutationCaught(t *testing.T) {
	sc := ScriptCase{File: "passwd.exp", CompareUser: true}
	base, err := RunScript(scriptsDir, sc, Variants[0], Conditions[0].Sched)
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	mutated := faultify.Schedule{
		Seed:            5,
		MaxReadChunk:    2,
		TransientEveryN: 3,
		CutAfterBytes:   5,
	}
	diverges := func(s faultify.Schedule) bool {
		got, err := RunScript(scriptsDir, sc, Variants[0], s)
		if err != nil {
			return true
		}
		return Diff(base, got, sc.CompareUser) != ""
	}
	got, err := RunScript(scriptsDir, sc, Variants[0], mutated)
	if err != nil {
		t.Fatalf("mutated run: %v", err)
	}
	detail := Diff(base, got, sc.CompareUser)
	if detail == "" {
		t.Fatal("mutation not caught: forced mid-dialogue EOF produced an identical outcome")
	}
	div := &Divergence{
		Subject: sc.File, Variant: Variants[0],
		Schedule: mutated,
		Minimal:  Minimize(mutated, diverges),
		Detail:   detail,
		Dump:     got.Dump,
		Journal:  got.Journal,
	}
	report := div.String()
	t.Logf("mutation report (expected):\n%s", report)
	for _, want := range []string{"seed=5", "cutafter=5B", "passwd.exp", "minimized",
		"flight recording", "replayable journal"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
	// The embedded journal must replay standalone and reproduce the
	// diverging run's dispositions exactly — the harness's confirmation
	// that the divergence is engine behaviour, not run-to-run noise.
	reports, err := replay.RunJournal(div.Journal, replay.Options{})
	if err != nil {
		t.Fatalf("divergence journal does not replay: %v", err)
	}
	if len(reports) == 0 {
		t.Fatal("divergence journal replayed no sessions")
	}
	for _, rep := range reports {
		if !rep.Clean() {
			t.Errorf("divergence journal did not reproduce its own run: %s", rep)
		}
	}
	// The embedded black box must be machine-readable and must show both
	// sides of the incident: the adversary's forced cut and the EOF the
	// engine saw because of it.
	events, err := trace.ParseJSONL(div.Dump)
	if err != nil {
		t.Fatalf("embedded dump is not parseable JSONL: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("embedded dump is empty")
	}
	kinds := map[string]bool{}
	for _, e := range events {
		kinds[e.Kind] = true
	}
	if !kinds["fault"] {
		t.Errorf("dump missing the injected-fault event; kinds seen: %v", kinds)
	}
	if !kinds["eof"] {
		t.Errorf("dump missing the engine-side eof event; kinds seen: %v", kinds)
	}
	// Minimization must keep the fault that matters and shed the noise.
	if div.Minimal.CutAfterBytes != 5 {
		t.Errorf("minimized schedule lost the essential fault: %s", div.Minimal.String())
	}
	if div.Minimal.MaxReadChunk != 0 || div.Minimal.TransientEveryN != 0 {
		t.Errorf("minimized schedule kept irrelevant faults: %s", div.Minimal.String())
	}
}
