package conformance

// Engine scenarios: hand-built session dialogues that hit the semantic
// corners scripts don't reach cleanly — a timeout firing over a partial
// match, EOF mid-pattern, match_max overflow, multi-session fan-in, and
// interact pass-through. Each scenario drives the core API directly and
// reduces its run to a summary string built only from chunking-invariant
// observables (Exact-case consumed text, first-occurrence positions,
// total byte counts, exit reasons), so every variant × condition cell
// must produce the identical summary.

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/faultify"
	"repro/internal/netx"
	"repro/internal/proc"
	"repro/internal/trace"
)

// Scenario is one differential dialogue: a virtual child program plus a
// driver that converses with it and summarizes what happened.
type Scenario struct {
	Name    string
	Program proc.Program
	// Drive runs the dialogue and returns the invariant summary.
	Drive func(s *core.Session) (string, error)
}

// blockForever parks a child on stdin so its stream stays open (reading
// into a spare byte, since virtual programs must not over-consume).
func blockForever(stdin io.Reader) {
	io.Copy(io.Discard, stdin)
}

// Scenarios is the table. Summaries use Exact cases (consumed text =
// first occurrence, invariant) rather than glob Text (anchored to the
// whole buffer, segmentation-dependent by design).
var Scenarios = []Scenario{
	{
		Name: "prompt-response",
		Program: func(stdin io.Reader, stdout io.Writer) error {
			io.WriteString(stdout, "login: ")
			line := readLine(stdin)
			io.WriteString(stdout, "Password for "+line+": ")
			readLine(stdin)
			io.WriteString(stdout, "Welcome!\r\nlast login: yesterday\r\n")
			return nil
		},
		Drive: func(s *core.Session) (string, error) {
			var sum strings.Builder
			for _, step := range []struct{ want, send string }{
				{"login: ", "guest\n"},
				{"Password for guest: ", "secret\n"},
				{"Welcome!", ""},
			} {
				r, err := s.ExpectTimeout(5*time.Second, core.Exact(step.want))
				if err != nil {
					return "", err
				}
				fmt.Fprintf(&sum, "[%s]", r.Text)
				if step.send != "" {
					if err := s.Send(step.send); err != nil {
						return "", err
					}
				}
			}
			// Let the stream finish and fold in the tail.
			r, err := s.ExpectTimeout(5*time.Second, core.EOFCase())
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&sum, "[eof:%s]", r.Text)
			return sum.String(), nil
		},
	},
	{
		Name: "timeout-over-partial-match",
		Program: func(stdin io.Reader, stdout io.Writer) error {
			io.WriteString(stdout, "par")
			one := make([]byte, 1)
			if _, err := stdin.Read(one); err != nil {
				return nil
			}
			io.WriteString(stdout, "tial complete")
			blockForever(stdin)
			return nil
		},
		Drive: func(s *core.Session) (string, error) {
			r, err := s.ExpectTimeout(300*time.Millisecond,
				core.Glob("*complete*"), core.TimeoutCase())
			if err != nil {
				return "", err
			}
			sum := fmt.Sprintf("timeout=%v partial=%q", r.TimedOut, r.Text)
			if err := s.Send("g"); err != nil {
				return "", err
			}
			r, err = s.ExpectTimeout(5*time.Second, core.Exact("complete"))
			if err != nil {
				return "", err
			}
			return sum + fmt.Sprintf(" then=%q", r.Text), nil
		},
	},
	{
		Name: "eof-mid-pattern",
		Program: func(stdin io.Reader, stdout io.Writer) error {
			io.WriteString(stdout, "user na") // hangs up mid-"username:"
			return nil
		},
		Drive: func(s *core.Session) (string, error) {
			r, err := s.ExpectTimeout(5*time.Second,
				core.Glob("*username:*"), core.EOFCase())
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("eof=%v text=%q", r.Eof, r.Text), nil
		},
	},
	{
		Name: "match-max-overflow",
		Program: func(stdin io.Reader, stdout io.Writer) error {
			stdout.Write(bytes.Repeat([]byte{'a'}, 6000))
			io.WriteString(stdout, "MARKER")
			blockForever(stdin)
			return nil
		},
		Drive: func(s *core.Session) (string, error) {
			s.SetMatchMax(512)
			r, err := s.ExpectTimeout(10*time.Second, core.Exact("MARKER"))
			if err != nil {
				return "", err
			}
			// The matched text must fit match_max and end at the marker;
			// the total stream length is invariant even though the exact
			// retained window depends on read segmentation.
			return fmt.Sprintf("suffix=%v len<=512=%v total=%d",
				strings.HasSuffix(r.Text, "MARKER"), len(r.Text) <= 512, s.TotalSeen()), nil
		},
	},
}

// ScenarioRun parameterizes one scenario execution cell: the matcher ×
// schedule axes, scheduler ownership, and — when Network is set — the
// transport itself: each spawn then runs its program behind a one-shot
// loopback TCP server and the session dials it, so the identical drive
// logic exercises the socket transport.
type ScenarioRun struct {
	Matcher core.MatcherMode
	Sched   faultify.Schedule
	Shards  int
	Network bool
	// Mux runs each spawn behind a one-shot session gateway instead: the
	// program is served by a netx.MuxServer and the session is a framed
	// stream opened through a MuxPool — the multiplexed transport arm of
	// the differential. Takes precedence over Network.
	Mux bool
	// NoPoller pins network sessions to the fallback reader goroutine
	// instead of a shard readiness poller. The epoll loop and the
	// fallback reader must be byte-identical; this flag is the other arm
	// of that differential.
	NoPoller bool
	// Rec, when non-nil, is an armed flight recorder the run's sessions
	// report to — with a journal attached it captures the full replayable
	// event stream (see RunScenarioJournaled).
	Rec *trace.Recorder
}

// spawn starts one scenario child under the run's transport. The
// returned cleanup tears down the loopback server or gateway (no-op for
// virtual).
func (rn ScenarioRun) spawn(cfg *core.Config, name string, prog proc.Program) (*core.Session, func(), error) {
	if rn.Mux {
		srv, err := netx.NewMuxServer("127.0.0.1:0",
			map[string]proc.Program{name: prog}, netx.MuxServerOptions{})
		if err != nil {
			return nil, nil, err
		}
		pool := netx.NewMuxPool(netx.MuxOptions{})
		cfg.Mux = pool
		s, err := core.SpawnMux(cfg, name, srv.Addr(), name)
		if err != nil {
			pool.Close()
			srv.Shutdown(0)
			return nil, nil, err
		}
		return s, func() {
			pool.Close()
			srv.Shutdown(drainDeadline)
		}, nil
	}
	if !rn.Network {
		s, err := core.SpawnProgram(cfg, name, prog)
		return s, func() {}, err
	}
	srv, err := netx.NewServer("127.0.0.1:0", prog)
	if err != nil {
		return nil, nil, err
	}
	cfg.NetOptions.NoPoller = rn.NoPoller
	s, err := core.SpawnNetwork(cfg, name, srv.Addr())
	if err != nil {
		srv.Shutdown(0)
		return nil, nil, err
	}
	return s, func() { srv.Shutdown(drainDeadline) }, nil
}

// FanInScenario needs two sessions, so it lives outside the table shape:
// a talker that must win the ExpectAny race and a silent bystander.
func runFanIn(rn ScenarioRun, scheduler *core.Scheduler) (string, error) {
	cfg := scenarioConfig(rn.Matcher, rn.Sched, rn.Sched.Clean())
	cfg.Sched = scheduler
	cfg.Rec = rn.Rec
	cfg.SID = 1
	talker, cleanupT, err := rn.spawn(cfg, "talker",
		func(stdin io.Reader, stdout io.Writer) error {
			io.WriteString(stdout, "ok ready\n")
			blockForever(stdin)
			return nil
		})
	if err != nil {
		return "", err
	}
	defer cleanupT()
	defer talker.Close()
	cfg2 := *cfg
	cfg2.SID = 2
	silent, cleanupS, err := rn.spawn(&cfg2, "silent",
		func(stdin io.Reader, stdout io.Writer) error {
			blockForever(stdin)
			return nil
		})
	if err != nil {
		return "", err
	}
	defer cleanupS()
	defer silent.Close()
	winner, r, err := core.ExpectAny(5*time.Second,
		[]*core.Session{silent, talker}, core.Exact("ready"), core.TimeoutCase())
	if err != nil {
		return "", err
	}
	sum := fmt.Sprintf("winner=%s case=%d text=%q", sessName(winner), r.Index, r.Text)
	// With nothing further coming, the shared deadline must fire.
	winner, r, err = core.ExpectAny(200*time.Millisecond,
		[]*core.Session{silent, talker}, core.Exact("never"), core.TimeoutCase())
	if err != nil {
		return "", err
	}
	return sum + fmt.Sprintf(" then-winner=%s timeout=%v", sessName(winner), r.TimedOut), nil
}

// runInteract checks the pass-through loop: scripted keystrokes flow to
// an echo child, its replies flow back, and its exit ends the session.
func runInteract(rn ScenarioRun, scheduler *core.Scheduler) (string, error) {
	cfg := scenarioConfig(rn.Matcher, rn.Sched, rn.Sched.Clean())
	cfg.Sched = scheduler
	cfg.Rec = rn.Rec
	cfg.SID = 1
	s, cleanup, err := rn.spawn(cfg, "echo",
		func(stdin io.Reader, stdout io.Writer) error {
			io.WriteString(stdout, "shell> ")
			for {
				line := readLine(stdin)
				if line == "" || line == "exit" {
					io.WriteString(stdout, "goodbye\n")
					return nil
				}
				io.WriteString(stdout, "ran "+line+"\nshell> ")
			}
		})
	if err != nil {
		return "", err
	}
	defer cleanup()
	defer s.Close()
	var userOut lockedBuf
	outcome, err := s.Interact(core.InteractOptions{
		UserIn:  &idleAfter{r: strings.NewReader("date\nexit\n")},
		UserOut: &userOut,
	})
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("reason=%v out=%q", outcome.Reason, userOut.String()), nil
}

func sessName(s *core.Session) string {
	if s == nil {
		return "<none>"
	}
	return s.Name()
}

// scenarioConfig builds a session config for matcher m under sched.
func scenarioConfig(m core.MatcherMode, sched faultify.Schedule, clean bool) *core.Config {
	cfg := &core.Config{Matcher: m}
	if !clean {
		cfg.SpawnOptions.WrapTransport = faultify.Wrapper(sched, nil)
	}
	return cfg
}

// RunScenario executes one table scenario for a matcher/schedule cell
// with the per-session pump baseline.
func RunScenario(sc Scenario, m core.MatcherMode, sched faultify.Schedule) (string, error) {
	return RunScenarioSharded(sc, m, sched, 0)
}

// RunScenarioSharded is RunScenario with the session(s) owned by a
// sharded scheduler of the given size (0 = pump baseline). The summary
// must be identical either way — scheduling is not an observable.
func RunScenarioSharded(sc Scenario, m core.MatcherMode, sched faultify.Schedule, shards int) (string, error) {
	return RunScenarioWith(sc, ScenarioRun{Matcher: m, Sched: sched, Shards: shards})
}

// RunScenarioWith executes one scenario cell under full ScenarioRun
// control — matcher, fault schedule, scheduler shape, and transport.
// Neither scheduling nor the transport is an observable: the summary
// must be identical across every cell.
func RunScenarioWith(sc Scenario, rn ScenarioRun) (string, error) {
	var scheduler *core.Scheduler
	if rn.Shards > 0 {
		scheduler = core.NewScheduler(core.SchedulerOptions{Shards: rn.Shards})
		defer scheduler.Stop()
	}
	switch sc.Name {
	case "fan-in":
		return runFanIn(rn, scheduler)
	case "interact-passthrough":
		return runInteract(rn, scheduler)
	}
	cfg := scenarioConfig(rn.Matcher, rn.Sched, rn.Sched.Clean())
	cfg.Sched = scheduler
	cfg.Rec = rn.Rec
	cfg.SID = 1
	s, cleanup, err := rn.spawn(cfg, sc.Name, sc.Program)
	if err != nil {
		return "", err
	}
	defer cleanup()
	defer s.Close()
	return sc.Drive(s)
}

// RunScenarioJournaled executes one scenario cell with a journal-armed
// flight recorder and returns the summary plus the durable JSONL journal
// — the replayable record of everything the engine observed. This is the
// journal the replay-determinism matrix re-drives and the one a
// divergence report embeds.
func RunScenarioJournaled(sc Scenario, rn ScenarioRun) (string, []byte, error) {
	rec := trace.New(0)
	jrn := trace.NewJournal()
	rec.SetJournal(jrn)
	rn.Rec = rec
	sum, err := RunScenarioWith(sc, rn)
	return sum, jrn.Bytes(), err
}

// AllScenarios returns the table plus the special-cased multi-session and
// interact scenarios, addressable by name through RunScenario.
func AllScenarios() []Scenario {
	return append(Scenarios[:len(Scenarios):len(Scenarios)],
		Scenario{Name: "fan-in"},
		Scenario{Name: "interact-passthrough"},
	)
}

// readLine reads a newline-terminated line one byte at a time (virtual
// programs share a duplex stream and must not over-read).
func readLine(r io.Reader) string {
	var sb strings.Builder
	one := make([]byte, 1)
	for {
		n, err := r.Read(one)
		if n > 0 {
			if one[0] == '\n' {
				break
			}
			sb.WriteByte(one[0])
		}
		if err != nil {
			break
		}
	}
	return strings.TrimSuffix(sb.String(), "\r")
}

// idleAfter yields its reader's content and then blocks forever, like a
// user who typed a few commands and is now sitting at the keyboard.
type idleAfter struct {
	r io.Reader
}

func (t *idleAfter) Read(p []byte) (int, error) {
	n, err := t.r.Read(p)
	if n == 0 && err == io.EOF {
		select {}
	}
	return n, nil
}
