package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/tcl"
)

// This file is the migration half of the replay subsystem: a serializable
// snapshot of live session state — match buffer, counters, stream
// disposition, and any pending Expect call — that can cross a process
// boundary and resume on the other side. Checkpoints are what let expectd
// survive a crash mid-soak (cmd/expectd -checkpoint/-restore) and what
// Scheduler.Migrate hands between shards conceptually: the shard handoff
// moves the live structures, the checkpoint moves their portable image.

// CaseSpec is the portable form of one expect case: kind plus source
// pattern. Compiled forms (regexp programs, glob NFAs) are rebuilt on
// restore.
type CaseSpec struct {
	Kind    int    `json:"k"`
	Pattern string `json:"p,omitempty"`
}

// OpCheckpoint is a pending Expect call: its case list and how much of
// its deadline budget remained at checkpoint time. RemainingNS is -1 for
// a wait-forever call; a fired-but-unresolved deadline checkpoints as 0.
type OpCheckpoint struct {
	Cases       []CaseSpec `json:"cases"`
	RemainingNS int64      `json:"remaining_ns"`
}

// SessionCheckpoint is the serializable snapshot of one session's dialogue
// state. Buffer is always a fresh copy taken under the session lock —
// never an alias of owned segment backing, so a checkpoint neither pins a
// transport lease nor goes stale when the source session trims (the
// lease-safety contract the owned-ingest path requires).
type SessionCheckpoint struct {
	Name      string         `json:"name"`
	SID       int32          `json:"sid"`
	Matcher   int            `json:"matcher,omitempty"`
	MatchMax  int            `json:"match_max"`
	TimeoutNS int64          `json:"timeout_ns"`
	Buffer    []byte         `json:"buffer,omitempty"`
	TotalSeen int64          `json:"total_seen"`
	Forgotten int64          `json:"forgotten,omitempty"`
	Eof       bool           `json:"eof,omitempty"`
	ReadErr   string         `json:"read_err,omitempty"`
	Pending   []OpCheckpoint `json:"pending,omitempty"`
}

// Marshal renders the checkpoint as one JSON object.
func (cp *SessionCheckpoint) Marshal() []byte {
	b, _ := json.Marshal(cp)
	return b
}

// ParseSessionCheckpoint inverts Marshal.
func ParseSessionCheckpoint(b []byte) (*SessionCheckpoint, error) {
	cp := new(SessionCheckpoint)
	if err := json.Unmarshal(b, cp); err != nil {
		return nil, err
	}
	return cp, nil
}

// Checkpoint snapshots the session's dialogue state under its lock. It
// does not see Expect calls parked on a shard loop — use
// Scheduler.CheckpointSession for those.
func (s *Session) Checkpoint() *SessionCheckpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := &SessionCheckpoint{
		Name:      s.name,
		SID:       s.sid,
		Matcher:   int(s.matcher),
		MatchMax:  s.mb.max,
		TimeoutNS: int64(s.timeout),
		TotalSeen: s.totalSeen,
		Forgotten: s.forgotten,
		Eof:       s.eof,
	}
	if s.readErr != nil && s.readErr != io.EOF {
		cp.ReadErr = s.readErr.Error()
	}
	if s.mb.length() > 0 {
		// The copy is the lease-safety guarantee: the live view may sit on
		// adopted segment backing whose lease stays with this session.
		cp.Buffer = append([]byte(nil), s.mb.bytes()...)
	}
	return cp
}

// checkpoint captures a parked op's portable form. Loop-owned; callers
// reach it via the shard's msgCheckpoint handler.
func (op *expectOp) checkpoint(now time.Time) OpCheckpoint {
	oc := OpCheckpoint{RemainingNS: -1}
	for _, c := range op.cases {
		oc.Cases = append(oc.Cases, CaseSpec{Kind: int(c.Kind), Pattern: c.Pattern})
	}
	if !op.deadline.IsZero() {
		rem := op.deadline.Sub(now)
		if rem < 0 {
			rem = 0
		}
		oc.RemainingNS = int64(rem)
	}
	return oc
}

// RestoreSession rebuilds a session from a checkpoint. With rw nil the
// session is manual — driven by Feed/FeedEOF, as replay and tests do;
// otherwise rw becomes the live transport and a pump goroutine drives it
// (restored sessions are never shard-adopted: they carry no proc handle
// for a shard to ingest). The buffer, counters, and stream disposition
// resume exactly where the checkpoint left them; a pending expect from
// cp.Pending is re-issued with ResumeExpect.
func RestoreSession(cfg *Config, cp *SessionCheckpoint, rw io.ReadWriteCloser) (*Session, error) {
	if cp == nil {
		return nil, errors.New("core: restore: nil checkpoint")
	}
	var c Config
	if cfg != nil {
		c = *cfg
	}
	c.Sched = nil
	if c.MatchMax == 0 {
		c.MatchMax = cp.MatchMax
	}
	c.Matcher = MatcherMode(cp.Matcher)
	if c.SID == 0 {
		c.SID = cp.SID
	}
	s := newManualSession(&c, cp.Name)
	s.mu.Lock()
	if len(cp.Buffer) > 0 {
		s.mb.appendData(cp.Buffer)
	}
	s.timeout = time.Duration(cp.TimeoutNS)
	s.totalSeen = cp.TotalSeen
	s.forgotten = cp.Forgotten
	if cp.Eof {
		s.eof = true
		s.readErr = io.EOF
		if cp.ReadErr != "" {
			s.readErr = errors.New(cp.ReadErr)
		}
	}
	s.mu.Unlock()
	if rw != nil {
		s.rw = rw
		s.pumpDone = make(chan struct{})
		s.pumpOnce = sync.Once{}
		go s.pump()
	}
	return s, nil
}

// EngineCheckpoint is a whole-engine snapshot: the interpreter's global
// variables plus one SessionCheckpoint per live spawn id. It is what
// expectd writes on SIGUSR1 and reads back with -restore.
type EngineCheckpoint struct {
	Globals  map[string]tcl.VarSnapshot `json:"globals,omitempty"`
	Sessions []EngineSessionCheckpoint  `json:"sessions,omitempty"`
}

// EngineSessionCheckpoint pairs a session snapshot with its spawn id.
type EngineSessionCheckpoint struct {
	ID      int                `json:"id"`
	Session *SessionCheckpoint `json:"session"`
}

// Marshal renders the engine checkpoint as one JSON object.
func (ec *EngineCheckpoint) Marshal() []byte {
	b, _ := json.Marshal(ec)
	return b
}

// ParseEngineCheckpoint inverts Marshal.
func ParseEngineCheckpoint(b []byte) (*EngineCheckpoint, error) {
	ec := new(EngineCheckpoint)
	if err := json.Unmarshal(b, ec); err != nil {
		return nil, err
	}
	return ec, nil
}

// CheckpointAll snapshots the interpreter globals and every live session.
// The interpreter is not safe for concurrent use, so call this from the
// goroutine that runs scripts (or between runs), not concurrently with
// evaluation; session snapshots themselves are loop-synchronized.
func (e *Engine) CheckpointAll() *EngineCheckpoint {
	out := &EngineCheckpoint{Globals: e.Interp.SnapshotGlobals()}
	for _, id := range e.SessionIDs() {
		s, ok := e.SessionByID(id)
		if !ok {
			continue
		}
		cp := s.Checkpoint()
		if e.sched != nil {
			if c, err := e.sched.CheckpointSession(s); err == nil {
				cp = c
			}
		}
		out.Sessions = append(out.Sessions, EngineSessionCheckpoint{ID: id, Session: cp})
	}
	return out
}

// RestoreGlobals installs a checkpoint's interpreter globals. Sessions
// are left to the caller: the engine cannot conjure the transports they
// were attached to, so restoring them is RestoreSession plus whatever
// reconnect logic the deployment has (see cmd/expectd -restore).
func (e *Engine) RestoreGlobals(ec *EngineCheckpoint) {
	if ec == nil {
		return
	}
	e.Interp.RestoreGlobals(ec.Globals)
}

// MigrateSession moves spawn id's session to shard dst — the sid-level
// face of Scheduler.Migrate.
func (e *Engine) MigrateSession(id, dst int) error {
	if e.sched == nil {
		return errors.New("core: migrate: engine has no sharded scheduler")
	}
	s, ok := e.SessionByID(id)
	if !ok {
		return fmt.Errorf("core: migrate: no session %d", id)
	}
	return e.sched.Migrate(s, dst)
}

// ResumeExpect re-issues a checkpointed pending Expect with whatever
// deadline budget it had left.
func (s *Session) ResumeExpect(oc OpCheckpoint) (*MatchResult, error) {
	cases := make([]Case, len(oc.Cases))
	for i, cs := range oc.Cases {
		c, err := caseFromSpec(cs.Kind, cs.Pattern)
		if err != nil {
			return nil, err
		}
		cases[i] = c
	}
	d := time.Duration(-1)
	if oc.RemainingNS >= 0 {
		d = time.Duration(oc.RemainingNS)
	}
	return s.ExpectTimeout(d, cases...)
}
