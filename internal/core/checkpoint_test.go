package core

import (
	"io"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeOwned is a pooled-segment stand-in: Release scribbles the payload,
// the way a real pool reusing the backing for another connection would.
type fakeOwned struct {
	data     []byte
	released atomic.Bool
}

func (f *fakeOwned) Bytes() []byte { return f.data }
func (f *fakeOwned) Release() {
	f.released.Store(true)
	for i := range f.data {
		f.data[i] = 0xee
	}
}

func TestSessionCheckpointRestoreRoundTrip(t *testing.T) {
	s := NewManualSession(&Config{MatchMax: 128, Timeout: 7 * time.Second}, "cp")
	s.Feed([]byte("login: "))
	cp := s.Checkpoint()

	// JSON round-trip: the checkpoint must survive a process boundary.
	cp2, err := ParseSessionCheckpoint(cp.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if cp2.Name != "cp" || cp2.MatchMax != 128 || cp2.TimeoutNS != int64(7*time.Second) {
		t.Fatalf("checkpoint lost config: %+v", cp2)
	}
	if string(cp2.Buffer) != "login: " || cp2.TotalSeen != 7 {
		t.Fatalf("checkpoint lost buffer state: %+v", cp2)
	}

	r, err := RestoreSession(nil, cp2, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.ExpectTimeout(time.Second, Glob("*login: "))
	if err != nil {
		t.Fatal(err)
	}
	if res.Index != 0 {
		t.Fatalf("restored buffer did not match: %+v", res)
	}
	if seen := r.TotalSeen(); seen != 7 {
		t.Fatalf("restored totalSeen = %d, want 7", seen)
	}
}

// A checkpoint taken while the match buffer sits on adopted (owned)
// backing must copy: when the lease ends and the pool scribbles the
// segment, the checkpoint is unaffected.
func TestCheckpointCopiesOwnedBacking(t *testing.T) {
	s := NewManualSession(&Config{MatchMax: 64}, "owned")
	o := &fakeOwned{data: []byte("prompt> ")}
	s.applyOwned(o)
	cp := s.Checkpoint()

	// Simulate the pool reclaiming the segment out from under any alias.
	for i := range o.data {
		o.data[i] = 0xee
	}
	if string(cp.Buffer) != "prompt> " {
		t.Fatalf("checkpoint aliases owned backing: %q", cp.Buffer)
	}
	s.Close()
}

func TestRestoreSessionResumesEOF(t *testing.T) {
	s := NewManualSession(nil, "eof")
	s.Feed([]byte("tail"))
	s.FeedEOF(io.ErrUnexpectedEOF)
	cp := s.Checkpoint()
	if !cp.Eof || cp.ReadErr == "" {
		t.Fatalf("EOF disposition not captured: %+v", cp)
	}

	r, err := RestoreSession(nil, cp, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.ExpectTimeout(time.Second, EOFCase())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Eof {
		t.Fatalf("restored session lost its EOF: %+v", res)
	}
}

func TestResumeExpectAfterRestore(t *testing.T) {
	s := NewManualSession(nil, "resume")
	s.Feed([]byte("partial out"))
	cp := s.Checkpoint()
	oc := OpCheckpoint{
		Cases:       []CaseSpec{{Kind: int(CaseGlob), Pattern: "*done*"}},
		RemainingNS: int64(5 * time.Second),
	}

	r, err := RestoreSession(nil, cp, nil)
	if err != nil {
		t.Fatal(err)
	}
	r.Feed([]byte("put done\n"))
	res, err := r.ResumeExpect(oc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Index != 0 || !strings.Contains(res.Text, "done") {
		t.Fatalf("resumed expect missed: %+v", res)
	}
}

// waitParked polls the loop-synchronized checkpoint until the pending
// Expect shows up in it (or the deadline passes).
func waitParked(t *testing.T, sc *Scheduler, s *Session) *SessionCheckpoint {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		cp, err := sc.CheckpointSession(s)
		if err != nil {
			t.Fatal(err)
		}
		if len(cp.Pending) > 0 {
			return cp
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("expect op never parked on the shard loop")
	return nil
}

// A scheduler checkpoint must see ops parked on the owning loop: their
// case lists and the remaining (not original) deadline budget.
func TestSchedulerCheckpointSeesParkedOp(t *testing.T) {
	sc := NewScheduler(SchedulerOptions{Shards: 1})
	defer sc.Stop()
	s, err := SpawnProgram(&Config{Sched: sc}, "mute", func(stdin io.Reader, stdout io.Writer) error {
		io.Copy(io.Discard, stdin)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.ExpectTimeout(10*time.Second, Glob("*never*"), Exact("nope"))
	}()
	cp := waitParked(t, sc, s)
	if len(cp.Pending) != 1 {
		t.Fatalf("pending ops = %d, want 1", len(cp.Pending))
	}
	oc := cp.Pending[0]
	if len(oc.Cases) != 2 || oc.Cases[0].Pattern != "*never*" || CaseKind(oc.Cases[1].Kind) != CaseExact {
		t.Fatalf("pending case list wrong: %+v", oc)
	}
	if oc.RemainingNS <= 0 || oc.RemainingNS > int64(10*time.Second) {
		t.Fatalf("remaining budget out of range: %d", oc.RemainingNS)
	}
	s.Close()
	<-done
}

// The tentpole property: a session migrates between shards while an
// Expect is parked, and the op resolves on the destination when the
// child finally speaks. Event-capable transport — the doorbell must be
// re-aimed at the destination loop.
func TestMigrateMidExpect(t *testing.T) {
	sc := NewScheduler(SchedulerOptions{Shards: 2})
	defer sc.Stop()
	release := make(chan struct{})
	s, err := SpawnProgram(&Config{Sched: sc}, "gate", func(stdin io.Reader, stdout io.Writer) error {
		<-release
		io.WriteString(stdout, "token done\n")
		io.Copy(io.Discard, stdin)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	type outcome struct {
		res *MatchResult
		err error
	}
	resCh := make(chan outcome, 1)
	go func() {
		res, err := s.ExpectTimeout(10*time.Second, Glob("*done*"))
		resCh <- outcome{res, err}
	}()
	waitParked(t, sc, s)

	src := s.ShardIndex()
	dst := 1 - src
	if err := sc.Migrate(s, dst); err != nil {
		t.Fatal(err)
	}
	if got := s.ShardIndex(); got != dst {
		t.Fatalf("after migrate ShardIndex = %d, want %d", got, dst)
	}
	// Migrating to the shard that already owns it is a no-op.
	if err := sc.Migrate(s, dst); err != nil {
		t.Fatal(err)
	}

	close(release)
	out := <-resCh
	if out.err != nil {
		t.Fatal(out.err)
	}
	if !strings.Contains(out.res.Text, "done") {
		t.Fatalf("migrated expect matched %q", out.res.Text)
	}
	s.Close()
}

// Feeder-path migration: a pipe transport has a dedicated reader that
// keeps posting to the old shard forever; chunks must still reach the
// buffer in order and wake the op on the new owner.
func TestMigrateFeederSession(t *testing.T) {
	sc := NewScheduler(SchedulerOptions{Shards: 2})
	defer sc.Stop()
	s, err := SpawnPipeCommand(&Config{Sched: sc}, "cat")
	if err != nil {
		t.Skipf("cannot spawn cat: %v", err)
	}
	if s.ShardIndex() < 0 {
		t.Fatal("pipe session not shard-owned")
	}
	type outcome struct {
		res *MatchResult
		err error
	}
	resCh := make(chan outcome, 1)
	go func() {
		res, err := s.ExpectTimeout(10*time.Second, Glob("*hello-echo*"))
		resCh <- outcome{res, err}
	}()
	waitParked(t, sc, s)

	dst := 1 - s.ShardIndex()
	if err := sc.Migrate(s, dst); err != nil {
		t.Fatal(err)
	}
	if err := s.Send("hello-echo\n"); err != nil {
		t.Fatal(err)
	}
	out := <-resCh
	if out.err != nil {
		t.Fatal(out.err)
	}
	if !strings.Contains(out.res.Text, "hello-echo") {
		t.Fatalf("matched %q", out.res.Text)
	}
	s.Close()
}

// A parked deadline travels with the migration: the destination loop
// must fire it.
func TestMigrateTimeoutFiresOnDestination(t *testing.T) {
	sc := NewScheduler(SchedulerOptions{Shards: 2})
	defer sc.Stop()
	s, err := SpawnProgram(&Config{Sched: sc}, "mute", func(stdin io.Reader, stdout io.Writer) error {
		io.Copy(io.Discard, stdin)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	type outcome struct {
		res *MatchResult
		err error
	}
	resCh := make(chan outcome, 1)
	go func() {
		res, err := s.ExpectTimeout(400*time.Millisecond, Glob("*never*"), TimeoutCase())
		resCh <- outcome{res, err}
	}()
	waitParked(t, sc, s)
	dst := 1 - s.ShardIndex()
	if err := sc.Migrate(s, dst); err != nil {
		t.Fatal(err)
	}
	select {
	case out := <-resCh:
		if out.err != nil {
			t.Fatal(out.err)
		}
		if !out.res.TimedOut {
			t.Fatalf("want timeout case, got %+v", out.res)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("migrated deadline never fired on the destination")
	}
	s.Close()
}

func TestMigrateErrors(t *testing.T) {
	sc := NewScheduler(SchedulerOptions{Shards: 2})
	defer sc.Stop()
	s, err := SpawnProgram(&Config{Sched: sc}, "p", func(stdin io.Reader, stdout io.Writer) error {
		io.Copy(io.Discard, stdin)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Migrate(s, 99); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
	manual := NewManualSession(nil, "m")
	if err := sc.Migrate(manual, 0); err == nil {
		t.Fatal("pump/manual session migrated")
	}
	s.Close()
}

func TestEngineCheckpointGlobalsRoundTrip(t *testing.T) {
	e := NewEngine(EngineOptions{})
	if _, err := e.Run("set greeting hello\nset cfg(retries) 3\nset cfg(host) deep"); err != nil {
		t.Fatal(err)
	}
	ec := e.CheckpointAll()
	ec2, err := ParseEngineCheckpoint(ec.Marshal())
	if err != nil {
		t.Fatal(err)
	}

	e2 := NewEngine(EngineOptions{})
	e2.RestoreGlobals(ec2)
	if v, _ := e2.Interp.GlobalGet("greeting"); v != "hello" {
		t.Fatalf("greeting = %q", v)
	}
	if v, _ := e2.Interp.GlobalGet("cfg(retries)"); v != "3" {
		t.Fatalf("cfg(retries) = %q", v)
	}
	if v, _ := e2.Interp.GlobalGet("cfg(host)"); v != "deep" {
		t.Fatalf("cfg(host) = %q", v)
	}
}

func TestEngineMigrateSessionByID(t *testing.T) {
	e := NewEngine(EngineOptions{Shards: 2})
	defer e.Shutdown()
	e.RegisterVirtual("mute", func(stdin io.Reader, stdout io.Writer) error {
		io.Copy(io.Discard, stdin)
		return nil
	})
	s, id, err := e.Spawn("mute")
	if err != nil {
		t.Fatal(err)
	}
	dst := 1 - s.ShardIndex()
	if err := e.MigrateSession(id, dst); err != nil {
		t.Fatal(err)
	}
	if got := s.ShardIndex(); got != dst {
		t.Fatalf("ShardIndex = %d, want %d", got, dst)
	}
	if err := e.MigrateSession(id+100, 0); err == nil {
		t.Fatal("unknown spawn id migrated")
	}
}
