package core

import (
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"

	"repro/internal/pattern"
	"repro/internal/tcl"
)

// registerExpectCommands grafts the paper's command set (§3.1–§3.3) onto
// the engine's Tcl interpreter.
func registerExpectCommands(e *Engine) {
	i := e.Interp
	i.Register("spawn", e.cmdSpawn)
	i.Register("send", e.cmdSend)
	i.Register("expect", e.cmdExpect)
	i.Register("interact", e.cmdInteract)
	i.Register("close", e.cmdClose)
	i.Register("select", e.cmdSelect)
	i.Register("wait", e.cmdWait)
	i.Register("send_user", e.cmdSendUser)
	i.Register("expect_user", e.cmdExpectUser)
	i.Register("log_user", e.cmdLogUser)
	i.Register("log_file", e.cmdLogFile)
	i.Register("system", e.cmdSystem)
	i.Register("sleep", e.cmdSleep)
	i.Register("trace", e.cmdTrace)
	i.Register("match_max", e.cmdMatchMax)
	i.Register("expect_any", e.cmdExpectAny)
	i.Register("exp_internal", e.cmdExpInternal)
}

// cmdExpInternal: exp_internal 0|1|2 — controls the engine's diagnostic
// output, the paper-era debugging aid that narrates the dialogue: every
// chunk received and every pattern attempt with its verdict. 0 silences
// the narration (the flight recorder keeps running), 1 shows the dialogue
// view, 2 additionally shows sends, eval dispatches, timers, and faults.
func (e *Engine) cmdExpInternal(i *tcl.Interp, args []string) tcl.Result {
	if len(args) != 2 {
		return tcl.Errf(`wrong # args: should be "exp_internal 0|1|2"`)
	}
	n, err := strconv.Atoi(args[1])
	if err != nil || n < 0 || n > 2 {
		return tcl.Errf("exp_internal: expected 0, 1, or 2, got %q", args[1])
	}
	e.rec.SetDiag(n, i.Stderr)
	return tcl.Ok("")
}

// cmdExpectAny: expect_any {spawn_id ...} patlist action … — the combined
// expect/select of §8: waits on several processes at once; the first one
// whose buffer matches becomes the current process (spawn_id is set as a
// side effect) and its action runs.
func (e *Engine) cmdExpectAny(i *tcl.Interp, args []string) tcl.Result {
	if len(args) < 3 {
		return tcl.Errf(`wrong # args: should be "expect_any spawnIdList patlist action ?patlist action ...?"`)
	}
	idList, err := tcl.ParseList(args[1])
	if err != nil || len(idList) == 0 {
		return tcl.Errf("expect_any: bad spawn_id list %q", args[1])
	}
	sessions := make([]*Session, 0, len(idList))
	sessionID := make(map[*Session]string, len(idList))
	for _, idStr := range idList {
		id, err := strconv.Atoi(idStr)
		if err != nil {
			return tcl.Errf("expect_any: bad spawn_id %q", idStr)
		}
		s, ok := e.SessionByID(id)
		if !ok {
			return tcl.Errf("expect_any: spawn_id %d refers to no live process", id)
		}
		sessions = append(sessions, s)
		sessionID[s] = idStr
	}
	cases, caseArm, arms, berr := buildExpectCases(args[2:])
	if berr != nil {
		return tcl.Errf("%v", berr)
	}
	winner, r, eerr := ExpectAny(e.scriptTimeout(), sessions, cases...)
	if r != nil {
		e.Interp.GlobalSet("expect_match", r.Text)
	}
	if eerr != nil {
		if errors.Is(eerr, ErrTimeout) || errors.Is(eerr, ErrEOF) {
			return tcl.Ok("")
		}
		return tcl.Errf("expect_any: %v", eerr)
	}
	if winner != nil {
		e.Interp.GlobalSet("spawn_id", sessionID[winner])
	}
	action := arms[caseArm[r.Index]].action
	if action == "" {
		return tcl.Ok("")
	}
	return e.Interp.EvalScript(action)
}

// cmdSpawn: spawn program ?args? — creates a new process whose stdin,
// stdout, and stderr are connected to expect. Sets spawn_id as a side
// effect and returns the UNIX process id (§3.2). The -network form,
// `spawn -network host:port`, dials a socket session (an expectd program
// or any line service) instead of forking; the returned pid is synthetic.
func (e *Engine) cmdSpawn(i *tcl.Interp, args []string) tcl.Result {
	if len(args) >= 2 && args[1] == "-network" {
		if len(args) != 3 {
			return tcl.Errf(`wrong # args: should be "spawn -network host:port"`)
		}
		s, _, err := e.SpawnRemote("", args[2])
		if err != nil {
			return tcl.Errf("spawn -network %s: %v", args[2], err)
		}
		return tcl.Ok(strconv.Itoa(s.Pid()))
	}
	if len(args) < 2 {
		return tcl.Errf(`wrong # args: should be "spawn program ?args?"`)
	}
	s, _, err := e.Spawn(args[1], args[2:]...)
	if err != nil {
		return tcl.Errf("spawn %s: %v", args[1], err)
	}
	return tcl.Ok(strconv.Itoa(s.Pid()))
}

// cmdSend: send args — sends to the current process. Multiple words are
// joined with single spaces, so `send hello world\r` types exactly
// "hello world\r" (§3.1).
func (e *Engine) cmdSend(i *tcl.Interp, args []string) tcl.Result {
	if len(args) < 2 {
		return tcl.Errf(`wrong # args: should be "send string"`)
	}
	s, err := e.Current()
	if err != nil {
		return tcl.Errf("send: %v", err)
	}
	if err := s.Send(strings.Join(args[1:], " ")); err != nil {
		return tcl.Errf("%v", err)
	}
	return tcl.Ok("")
}

// expectArm couples one patlist with its action.
type expectArm struct {
	action string
}

// buildExpectCases translates script-level patlist/action pairs into
// engine cases. Each patlist is a Tcl list of glob patterns, one of the
// special words eof / timeout, or a flagged single pattern: `-re pattern`
// (regular expression — the abstract's "expect patterns can include
// regular expressions"), `-ex pattern` (exact substring), or `-gl
// pattern` (explicit glob). Returns the cases, a parallel case→arm
// index, and the arms.
func buildExpectCases(args []string) (cases []Case, caseArm []int, arms []expectArm, err error) {
	for k := 0; k < len(args); {
		patlist := args[k]
		kind := CaseGlob
		switch patlist {
		case "-re", "-ex", "-gl":
			if k+1 >= len(args) {
				return nil, nil, nil, fmt.Errorf("expect: %s requires a pattern", patlist)
			}
			switch patlist {
			case "-re":
				kind = CaseRegexp
			case "-ex":
				kind = CaseExact
			}
			k++
			patlist = args[k]
			action := ""
			if k+1 < len(args) {
				action = args[k+1]
			}
			k += 2
			armIdx := len(arms)
			arms = append(arms, expectArm{action: action})
			switch kind {
			case CaseRegexp:
				re, cerr := pattern.CompileRegexp(patlist)
				if cerr != nil {
					return nil, nil, nil, fmt.Errorf("expect -re: %v", cerr)
				}
				cases = append(cases, Case{Kind: CaseRegexp, Pattern: patlist, re: re})
			case CaseExact:
				cases = append(cases, Exact(patlist))
			default:
				cases = append(cases, Glob(patlist))
			}
			caseArm = append(caseArm, armIdx)
			continue
		}
		action := ""
		if k+1 < len(args) {
			action = args[k+1]
		}
		k += 2
		armIdx := len(arms)
		arms = append(arms, expectArm{action: action})
		switch patlist {
		case "eof":
			cases = append(cases, EOFCase())
			caseArm = append(caseArm, armIdx)
		case "timeout":
			cases = append(cases, TimeoutCase())
			caseArm = append(caseArm, armIdx)
		default:
			pats, perr := tcl.ParseList(patlist)
			if perr != nil || len(pats) == 0 {
				// Unbalanced or empty: treat the raw text as one pattern.
				pats = []string{patlist}
			}
			for _, p := range pats {
				cases = append(cases, Glob(p))
				caseArm = append(caseArm, armIdx)
			}
		}
	}
	return cases, caseArm, arms, nil
}

// runExpect is the shared core of expect and expect_user.
func (e *Engine) runExpect(s *Session, sid int, implicitClose bool, args []string) tcl.Result {
	cases, caseArm, arms, err := buildExpectCases(args)
	if err != nil {
		return tcl.Errf("%v", err)
	}
	// Honor the script-level variables at call time (§3.1).
	if mm := e.varInt("match_max", DefaultMatchMax); mm != s.MatchMax() {
		s.SetMatchMax(mm)
	}
	r, eerr := s.ExpectTimeout(e.scriptTimeout(), cases...)
	if r != nil {
		e.Interp.GlobalSet("expect_match", r.Text)
	}
	if eerr != nil {
		switch {
		case errors.Is(eerr, ErrTimeout):
			// No timeout arm: expect simply completes.
			return tcl.Ok("")
		case errors.Is(eerr, ErrEOF):
			// "Both expect and interact will detect when the current
			// process exits and implicitly do a close" (§3.2).
			if implicitClose {
				s.Close()
				e.removeSession(sid)
			}
			return tcl.Ok("")
		default:
			return tcl.Errf("expect: %v", eerr)
		}
	}
	if r.Eof && implicitClose {
		s.Close()
		e.removeSession(sid)
	}
	action := arms[caseArm[r.Index]].action
	if action == "" {
		return tcl.Ok("")
	}
	// The action's result — including break/continue/return codes — is the
	// result of expect, which is what lets `expect {*welcome*} break`
	// terminate an enclosing loop.
	return e.Interp.EvalScript(action)
}

// cmdExpect: expect patlist1 action1 patlist2 action2 … (§3.1).
func (e *Engine) cmdExpect(i *tcl.Interp, args []string) tcl.Result {
	if len(args) < 2 {
		return tcl.Errf(`wrong # args: should be "expect patlist action ?patlist action ...?"`)
	}
	s, sid, err := e.currentWithID()
	if err != nil {
		return tcl.Errf("expect: %v", err)
	}
	return e.runExpect(s, sid, true, args[1:])
}

func (e *Engine) currentWithID() (*Session, int, error) {
	idStr, ok := e.Interp.GlobalGet("spawn_id")
	if !ok || idStr == "" {
		return nil, 0, fmt.Errorf("no current process (nothing spawned yet)")
	}
	id, err := strconv.Atoi(idStr)
	if err != nil {
		return nil, 0, fmt.Errorf("bad spawn_id %q", idStr)
	}
	s, live := e.SessionByID(id)
	if !live {
		return nil, 0, fmt.Errorf("spawn_id %d refers to no live process", id)
	}
	return s, id, nil
}

// cmdInteract: interact ?escape-character? — gives control to the user
// (§3.1). After the escape character, script commands may be entered;
// `continue` resumes the interaction and `return ?value?` ends it.
func (e *Engine) cmdInteract(i *tcl.Interp, args []string) tcl.Result {
	if len(args) > 2 {
		return tcl.Errf(`wrong # args: should be "interact ?escape-character?"`)
	}
	s, sid, err := e.currentWithID()
	if err != nil {
		return tcl.Errf("interact: %v", err)
	}
	var escape byte
	if len(args) == 2 && args[1] != "" {
		escape = args[1][0]
	}
	// During interact the drain loop is the user's window on the process;
	// leaving log_user echo on would print everything twice.
	savedLogUser := e.LogUser()
	e.SetLogUser(false)
	defer e.SetLogUser(savedLogUser)
	outcome, ierr := s.Interact(InteractOptions{
		UserIn:  e.userIn,
		UserOut: e.userOut,
		Escape:  escape,
		OnEscape: func(userIn io.Reader) (bool, string) {
			return e.escapeCommandLoop(userIn)
		},
	})
	if ierr != nil {
		return tcl.Errf("interact: %v", ierr)
	}
	if outcome.Reason == InteractEOF {
		e.removeSession(sid)
	}
	return tcl.Ok(outcome.Result)
}

// escapeCommandLoop reads and evaluates command lines typed after the
// interact escape character, until continue or return.
func (e *Engine) escapeCommandLoop(userIn io.Reader) (resume bool, result string) {
	fmt.Fprint(e.userOut, "\nexpect> ")
	for {
		line, err := readUserLine(userIn)
		if err != nil {
			return false, ""
		}
		res := e.Interp.EvalScript(line)
		switch res.Code {
		case tcl.Continue:
			return true, ""
		case tcl.Return:
			return false, res.Value
		case tcl.Error:
			fmt.Fprintf(e.userOut, "error: %s\nexpect> ", res.Value)
		default:
			if res.Value != "" {
				fmt.Fprintln(e.userOut, res.Value)
			}
			fmt.Fprint(e.userOut, "expect> ")
		}
	}
}

// readUserLine reads one newline-terminated line, a byte at a time so it
// never steals type-ahead beyond the line.
func readUserLine(r io.Reader) (string, error) {
	var sb strings.Builder
	buf := make([]byte, 1)
	for {
		n, err := r.Read(buf)
		if n > 0 {
			c := buf[0]
			if c == '\n' || c == '\r' {
				return sb.String(), nil
			}
			sb.WriteByte(c)
		}
		if err != nil {
			if sb.Len() > 0 {
				return sb.String(), nil
			}
			return "", err
		}
	}
}

// cmdClose: close ?spawn_id? — closes the connection; most programs see
// EOF and exit (§3.2).
func (e *Engine) cmdClose(i *tcl.Interp, args []string) tcl.Result {
	if len(args) > 2 {
		return tcl.Errf(`wrong # args: should be "close ?spawn_id?"`)
	}
	var (
		s   *Session
		id  int
		err error
	)
	if len(args) == 2 {
		id, err = strconv.Atoi(args[1])
		if err != nil {
			return tcl.Errf("close: bad spawn_id %q", args[1])
		}
		var ok bool
		s, ok = e.SessionByID(id)
		if !ok {
			return tcl.Errf("close: spawn_id %d refers to no live process", id)
		}
	} else {
		s, id, err = e.currentWithID()
		if err != nil {
			return tcl.Errf("close: %v", err)
		}
	}
	s.Close()
	e.removeSession(id)
	return tcl.Ok("")
}

// cmdSelect: select spawn_id1 spawn_id2 … — returns the subset with input
// pending, waiting up to the timeout (§3.2).
func (e *Engine) cmdSelect(i *tcl.Interp, args []string) tcl.Result {
	if len(args) < 2 {
		return tcl.Errf(`wrong # args: should be "select spawn_id ?spawn_id ...?"`)
	}
	var sessions []*Session
	ids := make(map[*Session]string, len(args)-1)
	for _, a := range args[1:] {
		id, err := strconv.Atoi(a)
		if err != nil {
			return tcl.Errf("select: bad spawn_id %q", a)
		}
		s, ok := e.SessionByID(id)
		if !ok {
			return tcl.Errf("select: spawn_id %d refers to no live process", id)
		}
		sessions = append(sessions, s)
		ids[s] = a
	}
	ready := Select(e.scriptTimeout(), sessions...)
	out := make([]string, 0, len(ready))
	for _, s := range ready {
		out = append(out, ids[s])
	}
	return tcl.Ok(strings.Join(out, " "))
}

// cmdWait: wait — reaps the current process and returns its exit status.
func (e *Engine) cmdWait(i *tcl.Interp, args []string) tcl.Result {
	if len(args) != 1 {
		return tcl.Errf(`wrong # args: should be "wait"`)
	}
	s, _, err := e.currentWithID()
	if err != nil {
		return tcl.Errf("wait: %v", err)
	}
	code, werr := s.Wait()
	if werr != nil {
		return tcl.Errf("wait: %v", werr)
	}
	return tcl.Ok(strconv.Itoa(code))
}

// cmdSendUser: send_user string — writes to the user regardless of
// log_user, treating the user as an output sink (§2.2).
func (e *Engine) cmdSendUser(i *tcl.Interp, args []string) tcl.Result {
	if len(args) < 2 {
		return tcl.Errf(`wrong # args: should be "send_user string"`)
	}
	if _, err := io.WriteString(e.userOut, strings.Join(args[1:], " ")); err != nil {
		return tcl.Errf("send_user: %v", err)
	}
	return tcl.Ok("")
}

// cmdExpectUser: expect_user patlist action … — reads from the user with
// the same pattern machinery as expect.
func (e *Engine) cmdExpectUser(i *tcl.Interp, args []string) tcl.Result {
	if len(args) < 2 {
		return tcl.Errf(`wrong # args: should be "expect_user patlist action ?patlist action ...?"`)
	}
	return e.runExpect(e.UserSession(), -1, false, args[1:])
}

// cmdLogUser: log_user 0|1 — controls whether the user sees the dialogue
// (§3.3); returns the previous setting.
func (e *Engine) cmdLogUser(i *tcl.Interp, args []string) tcl.Result {
	if len(args) != 2 {
		return tcl.Errf(`wrong # args: should be "log_user 0|1"`)
	}
	old := "0"
	if e.LogUser() {
		old = "1"
	}
	on, err := strconv.Atoi(args[1])
	if err != nil {
		return tcl.Errf("log_user: expected 0 or 1, got %q", args[1])
	}
	e.SetLogUser(on != 0)
	return tcl.Ok(old)
}

// cmdLogFile: log_file ?name? — starts or stops logging the dialogue to a
// file (§3.3).
func (e *Engine) cmdLogFile(i *tcl.Interp, args []string) tcl.Result {
	if len(args) > 2 {
		return tcl.Errf(`wrong # args: should be "log_file ?name?"`)
	}
	path := ""
	if len(args) == 2 {
		path = args[1]
	}
	if err := e.SetLogFile(path); err != nil {
		return tcl.Errf("log_file: %v", err)
	}
	return tcl.Ok("")
}

// cmdSystem: system args — runs a shell command with output to the user.
func (e *Engine) cmdSystem(i *tcl.Interp, args []string) tcl.Result {
	if len(args) < 2 {
		return tcl.Errf(`wrong # args: should be "system command ?args?"`)
	}
	cmd := exec.Command("/bin/sh", "-c", strings.Join(args[1:], " "))
	cmd.Stdout = e.userOut
	cmd.Stderr = e.userOut
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		return tcl.Errf("system: %v", err)
	}
	return tcl.Ok("")
}

// cmdSleep: sleep seconds — pauses the script (fractions allowed).
func (e *Engine) cmdSleep(i *tcl.Interp, args []string) tcl.Result {
	if len(args) != 2 {
		return tcl.Errf(`wrong # args: should be "sleep seconds"`)
	}
	secs, err := strconv.ParseFloat(args[1], 64)
	if err != nil || secs < 0 {
		return tcl.Errf("sleep: bad duration %q", args[1])
	}
	time.Sleep(time.Duration(secs * float64(time.Second)))
	return tcl.Ok("")
}

// cmdTrace: trace on|off — dumps each command before execution to the
// user's stderr, the §3.3 debugging aid.
func (e *Engine) cmdTrace(i *tcl.Interp, args []string) tcl.Result {
	if len(args) != 2 {
		return tcl.Errf(`wrong # args: should be "trace on|off"`)
	}
	switch args[1] {
	case "on":
		i.Trace = func(depth int, words []string) {
			fmt.Fprintf(i.Stderr, "trace:%s %s\n",
				strings.Repeat("  ", depth), strings.Join(words, " "))
		}
	case "off":
		i.Trace = nil
	default:
		return tcl.Errf("trace: expected on or off, got %q", args[1])
	}
	return tcl.Ok("")
}

// cmdMatchMax: match_max ?n? — reads or sets the buffer bound, mirroring
// the match_max variable (§3.1).
func (e *Engine) cmdMatchMax(i *tcl.Interp, args []string) tcl.Result {
	if len(args) > 2 {
		return tcl.Errf(`wrong # args: should be "match_max ?size?"`)
	}
	if len(args) == 1 {
		return tcl.Ok(strconv.Itoa(e.varInt("match_max", DefaultMatchMax)))
	}
	n, err := strconv.Atoi(args[1])
	if err != nil || n <= 0 {
		return tcl.Errf("match_max: expected positive integer, got %q", args[1])
	}
	i.GlobalSet("match_max", args[1])
	if s, _, err := e.currentWithID(); err == nil {
		s.SetMatchMax(n)
	}
	return tcl.Ok("")
}
