package core

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/netx"
	"repro/internal/proc"
	"repro/internal/tcl"
	"repro/internal/trace"
)

// Engine is the script-level expect: a Tcl interpreter extended with the
// paper's commands (spawn, send, expect, interact, close, select, …), a
// table of live sessions addressed by spawn_id, and the user terminal as
// an I/O source/sink.
type Engine struct {
	// Interp is the underlying Tcl interpreter. Callers may register
	// additional commands on it before Run.
	Interp *tcl.Interp

	mu       sync.Mutex
	sessions map[int]*Session
	nextID   int

	userIn  io.Reader
	userOut io.Writer
	userSes *Session

	logUser  bool
	logFile  io.WriteCloser
	logMu    sync.Mutex
	prof     *metrics.Profiler
	rec      *trace.Recorder
	matcher  MatcherMode
	virtuals map[string]proc.Program
	// remotes maps program names to network addresses (RegisterRemote);
	// spawning a mapped name dials instead of forking.
	remotes map[string]string
	// muxRemotes maps program names to session-gateway addresses
	// (RegisterRemoteMux); spawning a mapped name opens one multiplexed
	// stream on the engine-owned pool instead of dialing a fresh socket.
	muxRemotes map[string]string
	// muxPool is created lazily on the first mux spawn and closed by
	// Shutdown. Guarded by muxMu: spawns can race from event handlers.
	muxMu   sync.Mutex
	muxPool *netx.MuxPool
	// transport selects how spawn starts real programs.
	transport string
	// childTap/spawnWrap are the observability and fault-injection hooks;
	// see EngineOptions.
	childTap  func(seq int, name string) io.Writer
	spawnWrap func(io.ReadWriteCloser) io.ReadWriteCloser
	spawnSeq  int
	// sched owns spawned sessions when EngineOptions.Shards > 0.
	sched *Scheduler

	exitCode   int
	exitCalled bool
}

// EngineOptions configures a script engine.
type EngineOptions struct {
	// UserIn/UserOut are the user's terminal (default os.Stdin/os.Stdout).
	UserIn  io.Reader
	UserOut io.Writer
	// Prof receives phase timings.
	Prof *metrics.Profiler
	// Rec overrides the engine's flight recorder. By default every engine
	// arms a fresh ring-recording trace.Recorder so incident reports
	// (timeouts, EOF surprises, conformance divergences) always have a
	// flight recording to attach; pass an explicitly disabled recorder to
	// opt out (trace.New(n) without arming).
	Rec *trace.Recorder
	// Matcher selects the glob scan strategy for all sessions.
	Matcher MatcherMode
	// Transport is "pty" (default) or "pipe" for real program spawns, or
	// "network" to treat every spawn target as a host:port to dial over
	// the socket transport (internal/netx).
	Transport string
	// LogUser sets the initial log_user state (default true: the user sees
	// the dialogue as it happens).
	LogUser *bool
	// ChildTap, when non-nil, is called once per spawn with the session's
	// spawn ordinal (0, 1, …) and program name; the returned writer (if
	// non-nil) receives that session's raw output stream, independent of
	// log_user. The conformance harness uses per-session taps to compare
	// child transcripts across engine variants; writers must be safe for
	// use from the session's pump goroutine.
	ChildTap func(seq int, name string) io.Writer
	// SpawnWrap, when non-nil, wraps every spawned transport
	// (proc.Options.WrapTransport) — the engine-level entry point for
	// fault injection (internal/faultify).
	SpawnWrap func(rw io.ReadWriteCloser) io.ReadWriteCloser
	// Shards, when > 0, runs spawned sessions on a sharded scheduler with
	// that many event loops instead of one pump goroutine per session
	// (shard.go). The user session always stays pump-driven: it wraps the
	// caller's terminal, whose reads must be allowed to block.
	Shards int
	// EvalMode selects the interpreter's evaluation engine: "classic"
	// (re-parse every evaluation; the frozen referee), "cached" (parse-once
	// skeletons, the default), or "vm" (register bytecode with inline
	// caches). Unknown or empty values keep the default; all three modes
	// are observably identical — the conformance harness runs every
	// scenario across them.
	EvalMode string
}

// NewEngine builds an engine with a fresh interpreter and the expect
// command set registered.
func NewEngine(opt EngineOptions) *Engine {
	e := &Engine{
		Interp:     tcl.New(),
		sessions:   make(map[int]*Session),
		userIn:     opt.UserIn,
		userOut:    opt.UserOut,
		logUser:    true,
		prof:       opt.Prof,
		rec:        opt.Rec,
		matcher:    opt.Matcher,
		virtuals:   make(map[string]proc.Program),
		remotes:    make(map[string]string),
		muxRemotes: make(map[string]string),
		transport:  opt.Transport,
		childTap:   opt.ChildTap,
		spawnWrap:  opt.SpawnWrap,
	}
	if e.userIn == nil {
		e.userIn = os.Stdin
	}
	if e.userOut == nil {
		e.userOut = os.Stdout
	}
	if opt.LogUser != nil {
		e.logUser = *opt.LogUser
	}
	if e.transport == "" {
		e.transport = "pty"
	}
	if e.rec == nil {
		// Always-on flight recording: the ring is cheap (fixed memory, no
		// allocation per event) and is the difference between a timeout
		// report that says "timed out" and one that shows the dialogue.
		e.rec = trace.New(0)
		e.rec.SetRecording(true)
	}
	if opt.Shards > 0 {
		e.sched = NewScheduler(SchedulerOptions{Shards: opt.Shards})
	}
	if m, ok := tcl.ParseEvalMode(opt.EvalMode); ok {
		e.Interp.SetEvalMode(m)
	}
	e.Interp.Stdout = e.userOut
	// Every Tcl command dispatch feeds the eval latency histogram and, when
	// armed, the flight recorder (§3.3's trace, structurally).
	e.Interp.DispatchHook = func(name string, depth int, d time.Duration) {
		e.prof.Observe(metrics.HistEvalDispatch, d)
		if e.rec.On() {
			e.rec.Record(trace.KindEval, -1, int64(d), int64(depth), false, name, "")
		}
	}
	// Script-visible defaults (§3.1).
	e.Interp.GlobalSet("timeout", "10")
	e.Interp.GlobalSet("match_max", strconv.Itoa(DefaultMatchMax))
	e.Interp.GlobalSet("expect_match", "")
	e.Interp.OnExit(func(code int) { e.exitCalled, e.exitCode = true, code })
	registerExpectCommands(e)
	return e
}

// RegisterVirtual installs an in-process program under name: a subsequent
// `spawn name` in a script runs it on the virtual transport instead of
// exec'ing a binary. The simulated rogue/chess/fsck/… programs register
// this way for hermetic scripts, tests, and benchmarks.
func (e *Engine) RegisterVirtual(name string, program proc.Program) {
	e.virtuals[name] = program
}

// RegisterRemote maps a program name to a network address: `spawn name`
// then dials the address over the socket transport instead of starting
// anything locally. Remote registrations shadow virtual ones, which is
// how the conformance matrix swaps its simulated programs out for
// loopback servers without touching the scripts.
func (e *Engine) RegisterRemote(name, addr string) {
	e.remotes[name] = addr
}

// RegisterRemoteMux maps a program name to a session-gateway address:
// `spawn name` then opens one multiplexed stream on a pooled framed
// connection to an expectd -mux listener instead of dialing a socket per
// session. Mux registrations shadow plain remote and virtual ones. The
// engine lazily creates and owns the connection pool; Shutdown closes it.
func (e *Engine) RegisterRemoteMux(name, addr string) {
	e.muxRemotes[name] = addr
}

// MuxPoolOptions presets the engine-owned mux pool's options. It must be
// called before the first mux spawn; afterwards the pool exists and the
// options are frozen.
func (e *Engine) MuxPoolOptions(opt netx.MuxOptions) {
	e.muxMu.Lock()
	defer e.muxMu.Unlock()
	if e.muxPool == nil {
		e.muxPool = netx.NewMuxPool(opt)
	}
}

// muxPoolLazy returns the engine-owned pool, creating it with defaults on
// first use.
func (e *Engine) muxPoolLazy() *netx.MuxPool {
	e.muxMu.Lock()
	defer e.muxMu.Unlock()
	if e.muxPool == nil {
		e.muxPool = netx.NewMuxPool(netx.MuxOptions{})
	}
	return e.muxPool
}

// Profiler returns the engine's profiler (may be nil).
func (e *Engine) Profiler() *metrics.Profiler { return e.prof }

// Recorder returns the engine's flight recorder (never nil). Callers can
// arm live diagnostics with Recorder().SetDiag — the exp_internal command
// and goexpect -diag do exactly that — or pull a JSONL dump after a run.
func (e *Engine) Recorder() *trace.Recorder { return e.rec }

// sessionConfig builds the per-session config for a spawn of name with the
// reserved spawn id (which doubles as the flight-recorder SID).
func (e *Engine) sessionConfig(name string, id int) *Config {
	var tap io.Writer
	if e.childTap != nil {
		e.mu.Lock()
		seq := e.spawnSeq
		e.spawnSeq++
		e.mu.Unlock()
		tap = e.childTap(seq, name)
	}
	return &Config{
		MatchMax: e.varInt("match_max", DefaultMatchMax),
		Matcher:  e.matcher,
		Prof:     e.prof,
		Logger:   e.logSink(tap),
		Rec:      e.rec,
		SID:      int32(id),
		Sched:    e.sched,
		SpawnOptions: proc.Options{
			WrapTransport: e.spawnWrap,
			Rec:           e.rec,
			TraceSID:      int32(id),
		},
	}
}

// logSink returns the child-output sink implementing log_user/log_file
// plus the per-session observer tap.
func (e *Engine) logSink(tap io.Writer) func([]byte) {
	return func(b []byte) {
		e.logMu.Lock()
		lu, lf := e.logUser, e.logFile
		e.logMu.Unlock()
		if tap != nil {
			tap.Write(b)
		}
		if lu {
			e.userOut.Write(b)
		}
		if lf != nil {
			lf.Write(b)
		}
	}
}

// varInt reads a global integer variable with a default.
func (e *Engine) varInt(name string, def int) int {
	s, ok := e.Interp.GlobalGet(name)
	if !ok {
		return def
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return def
	}
	return n
}

// scriptTimeout converts the script's timeout variable to a duration
// (seconds; -1 means forever).
func (e *Engine) scriptTimeout() time.Duration {
	secs := e.varInt("timeout", 10)
	if secs < 0 {
		return -1
	}
	return time.Duration(secs) * time.Second
}

// reserveID allocates the next spawn id. Reserving before the spawn (not
// after, as addSession used to) lets the session and its transport carry
// the final spawn id in every flight-recorder event from the first byte.
func (e *Engine) reserveID() int {
	e.mu.Lock()
	id := e.nextID
	e.nextID++
	e.mu.Unlock()
	return id
}

// installSession registers s under its reserved id and makes it current.
func (e *Engine) installSession(id int, s *Session) {
	e.mu.Lock()
	e.sessions[id] = s
	e.mu.Unlock()
	e.Interp.GlobalSet("spawn_id", strconv.Itoa(id))
}

// Current returns the session selected by the spawn_id variable — "the
// variable spawn_id determines the current process" (§3.2).
func (e *Engine) Current() (*Session, error) {
	idStr, ok := e.Interp.GlobalGet("spawn_id")
	if !ok || idStr == "" {
		return nil, fmt.Errorf("no current process (nothing spawned yet)")
	}
	id, err := strconv.Atoi(idStr)
	if err != nil {
		return nil, fmt.Errorf("bad spawn_id %q", idStr)
	}
	e.mu.Lock()
	s := e.sessions[id]
	e.mu.Unlock()
	if s == nil {
		return nil, fmt.Errorf("spawn_id %d refers to no live process", id)
	}
	return s, nil
}

// SessionByID looks up a session by spawn id.
func (e *Engine) SessionByID(id int) (*Session, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, ok := e.sessions[id]
	return s, ok
}

// SessionIDs returns the live spawn ids in ascending order.
func (e *Engine) SessionIDs() []int {
	e.mu.Lock()
	defer e.mu.Unlock()
	ids := make([]int, 0, len(e.sessions))
	for id := range e.sessions {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// removeSession drops id from the table (after close).
func (e *Engine) removeSession(id int) {
	e.mu.Lock()
	s := e.sessions[id]
	delete(e.sessions, id)
	e.mu.Unlock()
	if s != nil && e.rec.On() {
		e.rec.Record(trace.KindExit, int32(id), 0, 0, false, s.name, "")
	}
}

// UserSession lazily wraps the user terminal as a session so scripts can
// expect_user/send_user — the user "is essentially treated as just another
// process" (Figure 5).
func (e *Engine) UserSession() *Session {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.userSes == nil {
		e.userSes = NewSession(&Config{Prof: e.prof, Matcher: e.matcher, Rec: e.rec, SID: -1},
			"user", userRW{e.userIn, e.userOut})
	}
	return e.userSes
}

type userRW struct {
	r io.Reader
	w io.Writer
}

func (u userRW) Read(b []byte) (int, error)  { return u.r.Read(b) }
func (u userRW) Write(b []byte) (int, error) { return u.w.Write(b) }
func (u userRW) Close() error                { return nil }

// Spawn starts program args under the engine's transport (or as a
// registered virtual program) and makes it the current process.
func (e *Engine) Spawn(name string, args ...string) (*Session, int, error) {
	id := e.reserveID()
	cfg := e.sessionConfig(name, id)
	var (
		s   *Session
		err error
	)
	if addr, ok := e.muxRemotes[name]; ok {
		cfg.Mux = e.muxPoolLazy()
		s, err = SpawnMux(cfg, name, addr, name)
	} else if addr, ok := e.remotes[name]; ok {
		s, err = SpawnNetwork(cfg, name, addr)
	} else if prog, ok := e.virtuals[name]; ok {
		s, err = SpawnProgram(cfg, name, prog)
	} else if e.transport == "network" {
		s, err = SpawnNetwork(cfg, name, name)
	} else if e.transport == "pipe" {
		s, err = SpawnPipeCommand(cfg, name, args...)
	} else {
		s, err = SpawnCommand(cfg, name, args...)
	}
	if err != nil {
		return nil, 0, err
	}
	e.installSession(id, s)
	return s, id, nil
}

// SpawnRemote dials a TCP address and makes the socket session the
// current process — the script-level `spawn -network host:port`. The
// session is named after the address unless name is non-empty (remote
// registrations pass the program name, so transcripts and traces read in
// program terms either way).
func (e *Engine) SpawnRemote(name, addr string) (*Session, int, error) {
	if name == "" {
		name = addr
	}
	id := e.reserveID()
	cfg := e.sessionConfig(name, id)
	s, err := SpawnNetwork(cfg, name, addr)
	if err != nil {
		return nil, 0, err
	}
	e.installSession(id, s)
	return s, id, nil
}

// Run evaluates a complete script.
func (e *Engine) Run(script string) (string, error) {
	out, err := e.Interp.Eval(script)
	if e.exitCalled {
		return out, nil
	}
	return out, err
}

// RunFile loads and evaluates a script file.
func (e *Engine) RunFile(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	return e.Run(string(data))
}

// ExitCode returns the code passed to the script's exit command (0 if exit
// was never called) and whether exit was called.
func (e *Engine) ExitCode() (int, bool) { return e.exitCode, e.exitCalled }

// Shutdown closes every live session, stops the sharded scheduler (if
// any), and closes the log file.
func (e *Engine) Shutdown() {
	e.mu.Lock()
	sessions := make([]*Session, 0, len(e.sessions))
	for _, s := range e.sessions {
		sessions = append(sessions, s)
	}
	e.sessions = make(map[int]*Session)
	e.mu.Unlock()
	for _, s := range sessions {
		s.Close()
	}
	if e.sched != nil {
		e.sched.Stop()
	}
	e.muxMu.Lock()
	if e.muxPool != nil {
		e.muxPool.Close()
		e.muxPool = nil
	}
	e.muxMu.Unlock()
	e.logMu.Lock()
	if e.logFile != nil {
		e.logFile.Close()
		e.logFile = nil
	}
	e.logMu.Unlock()
}

// Scheduler returns the engine's sharded scheduler, or nil when sessions
// are pump-driven.
func (e *Engine) Scheduler() *Scheduler { return e.sched }

// SetLogUser flips the log_user state (what the user sees of the ongoing
// dialogue, §3.3).
func (e *Engine) SetLogUser(on bool) {
	e.logMu.Lock()
	e.logUser = on
	e.logMu.Unlock()
}

// LogUser reports the current log_user state.
func (e *Engine) LogUser() bool {
	e.logMu.Lock()
	defer e.logMu.Unlock()
	return e.logUser
}

// SetLogFile starts (or stops, with "") logging all dialogue to a file.
func (e *Engine) SetLogFile(path string) error {
	e.logMu.Lock()
	defer e.logMu.Unlock()
	if e.logFile != nil {
		e.logFile.Close()
		e.logFile = nil
	}
	if path == "" {
		return nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	e.logFile = f
	return nil
}
