package core

import (
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/testutil"
)

func TestScriptSystemCommand(t *testing.T) {
	e, out := newTestEngine(t)
	if _, err := e.Run(`system echo from-the-shell`); err != nil {
		t.Fatalf("system: %v", err)
	}
	if !strings.Contains(out.String(), "from-the-shell") {
		t.Errorf("system output: %q", out.String())
	}
	if _, err := e.Run(`system exit 3`); err == nil {
		t.Error("system swallowed a nonzero status")
	}
}

func TestScriptSleep(t *testing.T) {
	e, _ := newTestEngine(t)
	start := time.Now()
	if _, err := e.Run(`sleep 0.1`); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 90*time.Millisecond {
		t.Error("sleep returned early")
	}
	if _, err := e.Run(`sleep banana`); err == nil {
		t.Error("sleep accepted a bad duration")
	}
	if _, err := e.Run(`sleep -1`); err == nil {
		t.Error("sleep accepted a negative duration")
	}
}

func TestScriptSendUserMultipleWords(t *testing.T) {
	e, out := newTestEngine(t)
	if _, err := e.Run(`send_user one two three`); err != nil {
		t.Fatal(err)
	}
	if out.String() != "one two three" {
		t.Errorf("send_user joined = %q", out.String())
	}
}

func TestEnginePipeTransport(t *testing.T) {
	var out lockedBuffer
	off := false
	e := NewEngine(EngineOptions{
		UserIn:    newScriptedReader(),
		UserOut:   &out,
		LogUser:   &off,
		Transport: "pipe",
	})
	defer e.Shutdown()
	res, err := e.Run(`
		set timeout 5
		spawn sh -c {if [ -t 0 ]; then echo TTY; else echo NOTTY; fi}
		expect {*NOTTY*} {set r pipe-mode} {*TTY*} {set r pty-mode}
		set r
	`)
	if err != nil {
		t.Fatalf("pipe transport: %v", err)
	}
	if res != "pipe-mode" {
		t.Errorf("r = %q — engine did not honor Transport: pipe", res)
	}
}

func TestEnginePtyTransportReal(t *testing.T) {
	testutil.RequirePty(t)
	e, _ := newTestEngine(t) // default transport is pty
	res, err := e.Run(`
		set timeout 5
		spawn sh -c {if [ -t 0 ]; then echo YES-TTY; else echo NO-TTY; fi}
		expect {*YES-TTY*} {set r tty} {*NO-TTY*} {set r no-tty}
		set r
	`)
	if err != nil {
		t.Fatalf("pty spawn failed despite /dev/ptmx being present: %v", err)
	}
	if res != "tty" {
		t.Errorf("r = %q — pty spawn did not give the child a terminal", res)
	}
}

func TestUserSessionIsSingleton(t *testing.T) {
	e, _ := newTestEngine(t, "line\n")
	a := e.UserSession()
	b := e.UserSession()
	if a != b {
		t.Error("UserSession created two sessions for one user")
	}
}

func TestExpectUserTimeout(t *testing.T) {
	e, _ := newTestEngine(t) // user types nothing
	out, err := e.Run(`
		set timeout 1
		expect_user {*yes*} {set r got} timeout {set r silent}
		set r
	`)
	if err != nil {
		t.Fatal(err)
	}
	if out != "silent" {
		t.Errorf("r = %q", out)
	}
}

func TestScriptCloseById(t *testing.T) {
	e, _ := newTestEngine(t)
	e.RegisterVirtual("p", greeter("x"))
	out, err := e.Run(`
		spawn p
		set a $spawn_id
		spawn p
		close $a
		llength [list]
	`)
	_ = out
	if err != nil {
		t.Fatal(err)
	}
	if ids := e.SessionIDs(); len(ids) != 1 {
		t.Errorf("sessions after close-by-id: %v", ids)
	}
	if _, err := e.Run(`close 999`); err == nil {
		t.Error("close of bogus id succeeded")
	}
}

func TestScriptSelectErrors(t *testing.T) {
	e, _ := newTestEngine(t)
	if _, err := e.Run(`select`); err == nil {
		t.Error("select with no args succeeded")
	}
	if _, err := e.Run(`select banana`); err == nil {
		t.Error("select with bad id succeeded")
	}
	if _, err := e.Run(`select 42`); err == nil {
		t.Error("select with dead id succeeded")
	}
}

func TestScriptLogFileToggleErrors(t *testing.T) {
	e, _ := newTestEngine(t)
	if _, err := e.Run(`log_file /no/such/dir/x.log`); err == nil {
		t.Error("log_file to bogus path succeeded")
	}
	if _, err := e.Run(`log_file`); err != nil {
		t.Errorf("log_file off: %v", err)
	}
	if _, err := e.Run(`log_user banana`); err == nil {
		t.Error("log_user accepted garbage")
	}
	// log_user returns the previous value.
	out, err := e.Run(`log_user 1`)
	if err != nil || out != "0" {
		t.Errorf("log_user 1 = %q, %v (engine started with 0)", out, err)
	}
}

func TestEngineExpectErrorsWithoutSpawn(t *testing.T) {
	e, _ := newTestEngine(t)
	for _, script := range []string{
		`expect {*x*} {}`,
		`send hello`,
		`close`,
		`wait`,
		`interact`,
		`match_max 99`,
	} {
		_, err := e.Run(script)
		if script == `match_max 99` {
			// match_max works without a session (sets the global).
			if err != nil {
				t.Errorf("%q: %v", script, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%q succeeded with nothing spawned", script)
		}
	}
}

func TestEngineSpawnIdManualSwitch(t *testing.T) {
	e, _ := newTestEngine(t)
	e.RegisterVirtual("alpha", lineServer("from-alpha\n", func(string) (string, bool) { return "", true }))
	e.RegisterVirtual("beta", lineServer("from-beta\n", func(string) (string, bool) { return "", true }))
	out, err := e.Run(`
		set timeout 5
		spawn alpha
		set a $spawn_id
		spawn beta
		set b $spawn_id
		set spawn_id $a
		expect {*from-alpha*} {set r1 ok-a}
		set spawn_id $b
		expect {*from-beta*} {set r2 ok-b}
		list $r1 $r2
	`)
	if err != nil {
		t.Fatal(err)
	}
	if out != "ok-a ok-b" {
		t.Errorf("job switching result = %q", out)
	}
}

func TestEngineLoggerToFileAndUser(t *testing.T) {
	// log_user and log_file can both be active; the tap fans out.
	e, out := newTestEngine(t)
	e.RegisterVirtual("p", greeter("DOUBLE-TAP"))
	path := t.TempDir() + "/both.log"
	_, err := e.Run(`
		log_user 1
		log_file ` + path + `
		set timeout 5
		spawn p
		expect {*login:*} {}
		log_file
	`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "DOUBLE-TAP") {
		t.Error("user missed the output")
	}
	data, _ := readFileString(path)
	if !strings.Contains(data, "DOUBLE-TAP") {
		t.Error("log file missed the output")
	}
}

func readFileString(path string) (string, error) {
	b, err := os.ReadFile(path)
	return string(b), err
}
