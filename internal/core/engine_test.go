package core

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// newTestEngine builds an engine with quiet logging and scripted user IO.
func newTestEngine(t *testing.T, userInput ...string) (*Engine, *lockedBuffer) {
	t.Helper()
	var out lockedBuffer
	off := false
	e := NewEngine(EngineOptions{
		UserIn:  newScriptedReader(userInput...),
		UserOut: &out,
		LogUser: &off,
	})
	t.Cleanup(e.Shutdown)
	return e, &out
}

// greeter is a login-: style virtual program for script tests.
func greeter(banner string) func(io.Reader, io.Writer) error {
	return lineServer(banner+"\nlogin: ", func(line string) (string, bool) {
		switch line {
		case "don":
			return "Password: ", true
		case "secret":
			return "welcome to unix\n$ ", true
		case "logout":
			return "bye\n", false
		default:
			return "failed\nlogin: ", true
		}
	})
}

func TestScriptSpawnSendExpect(t *testing.T) {
	e, _ := newTestEngine(t)
	e.RegisterVirtual("login-sim", greeter("test system"))
	out, err := e.Run(`
		set timeout 5
		spawn login-sim
		expect {*login:*} {}
		send don\n
		expect {*Password:*} {}
		send secret\n
		expect {*welcome*} {set result ok} {*failed*} {set result bad}
		set result
	`)
	if err != nil {
		t.Fatalf("script failed: %v", err)
	}
	if out != "ok" {
		t.Errorf("result = %q, want ok", out)
	}
}

func TestScriptSpawnReturnsPid(t *testing.T) {
	e, _ := newTestEngine(t)
	e.RegisterVirtual("p", greeter("x"))
	out, err := e.Run(`set pid [spawn p]; set pid`)
	if err != nil {
		t.Fatal(err)
	}
	if out == "" || out == "0" {
		t.Errorf("spawn returned %q, want a pid", out)
	}
	// spawn_id is set as a side effect and differs from the pid (§3.2).
	id, _ := e.Interp.GlobalGet("spawn_id")
	if id == out {
		t.Errorf("spawn_id %q equals pid — they must be distinct namespaces", id)
	}
}

func TestScriptExpectMatchVariable(t *testing.T) {
	e, _ := newTestEngine(t)
	e.RegisterVirtual("p", greeter("HELLO-BANNER"))
	_, err := e.Run(`
		set timeout 5
		spawn p
		expect {*login:*} {}
		set m $expect_match
	`)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := e.Interp.GlobalGet("m")
	if !strings.Contains(m, "HELLO-BANNER") || !strings.Contains(m, "login:") {
		t.Errorf("expect_match = %q", m)
	}
}

// TestPaperLoginFragment runs the §3.1 example (adapted: abort is a proc).
func TestPaperLoginFragment(t *testing.T) {
	e, _ := newTestEngine(t)
	busy := 0
	e.RegisterVirtual("remote", func(stdin io.Reader, stdout io.Writer) error {
		busy++
		if busy < 3 {
			fmt.Fprint(stdout, "system busy, try later\n")
			return nil
		}
		fmt.Fprint(stdout, "welcome to unix\n")
		io.Copy(io.Discard, stdin)
		return nil
	})
	out, err := e.Run(`
		proc abort {} {error aborted}
		set timeout 5
		set tries 0
		for {} 1 {} {
			incr tries
			spawn remote
			expect {*welcome*} break \
				{*busy*} {continue} \
				{*failed*} abort \
				timeout abort
		}
		set tries
	`)
	if err != nil {
		t.Fatalf("fragment failed: %v", err)
	}
	if out != "3" {
		t.Errorf("tries = %q, want 3 (two busy rounds then welcome)", out)
	}
}

// TestPaperRogueScript runs rogue.exp from §4 nearly verbatim (interact is
// replaced by a marker since there is no human).
func TestPaperRogueScript(t *testing.T) {
	e, _ := newTestEngine(t)
	games := 0
	e.RegisterVirtual("rogue", func(stdin io.Reader, stdout io.Writer) error {
		games++
		str := 16
		if games == 4 {
			str = 18
		}
		fmt.Fprintf(stdout, "Level: 1  Gold: 0  Hp: 12(12)  Str: %d(%d)  Arm: 4  Exp: 1/0\n", str, str)
		io.Copy(io.Discard, stdin)
		return nil
	})
	_, err := e.Run(`
		# rogue.exp - find a good game of rogue
		set timeout 3
		for {} 1 {} {
			spawn rogue
			expect {*Str:\ 18*} break \
				timeout close
		}
		set found 1
	`)
	if err != nil {
		t.Fatalf("rogue.exp failed: %v", err)
	}
	if games != 4 {
		t.Errorf("played %d games, want 4", games)
	}
	// The good game is still alive for interact.
	if _, err := e.Current(); err != nil {
		t.Errorf("no current session after break: %v", err)
	}
}

// TestPaperCallbackScript runs callback.exp from §4 (sleep shortened, tip
// and modem simulated).
func TestPaperCallbackScript(t *testing.T) {
	e, _ := newTestEngine(t)
	e.RegisterVirtual("tip", tipProgram())
	e.Interp.GlobalSet("argv", "callback.exp 12016442332")
	start := time.Now()
	_, err := e.Run(`
		# first give the user some time to logout
		exec sleep 0.1
		spawn tip modem
		expect {*connected*} {}
		send ATZ\r
		expect {*OK*} {}
		send ATDT[index $argv 1]\r
		# modem takes a while to connect
		set timeout 60
		expect {*CONNECT*} {set connected 1}
		set connected
	`)
	if err != nil {
		t.Fatalf("callback.exp failed: %v", err)
	}
	if time.Since(start) < 100*time.Millisecond {
		t.Error("exec sleep did not block")
	}
	c, _ := e.Interp.GlobalGet("connected")
	if c != "1" {
		t.Error("never saw CONNECT")
	}
}

// tipProgram is a minimal inline tip+modem for the callback script test
// (the full simulator lives in internal/programs/modem; core tests stay
// dependency-light).
func tipProgram() func(io.Reader, io.Writer) error {
	return func(stdin io.Reader, stdout io.Writer) error {
		fmt.Fprint(stdout, "connected\r\n")
		buf := make([]byte, 256)
		var acc string
		for {
			n, err := stdin.Read(buf)
			if err != nil {
				return nil
			}
			acc += string(buf[:n])
			for {
				idx := strings.IndexAny(acc, "\r\n")
				if idx < 0 {
					break
				}
				cmd := strings.TrimSpace(acc[:idx])
				acc = acc[idx+1:]
				switch {
				case cmd == "":
				case cmd == "ATZ":
					fmt.Fprint(stdout, "OK\r\n")
				case strings.HasPrefix(cmd, "ATDT"):
					time.Sleep(20 * time.Millisecond)
					fmt.Fprint(stdout, "CONNECT 1200\r\n")
				default:
					fmt.Fprint(stdout, "ERROR\r\n")
				}
			}
		}
	}
}

// TestPaperChessLoop reproduces the §3.2 job-control example: two chess-
// like processes wired together, one move sent by hand to get things
// started, with read_move/send_move written in the script language.
func TestPaperChessLoop(t *testing.T) {
	e, _ := newTestEngine(t)
	// A toy "chess" that replies to any move with a counter-move of its
	// own, numbered so the relay can be verified.
	e.RegisterVirtual("chess", func(stdin io.Reader, stdout io.Writer) error {
		n := 0
		return lineServer("Chess\n", func(line string) (string, bool) {
			n++
			if n >= 4 {
				return fmt.Sprintf("%d. ... p/q%d-q%d\nCheckmate\n", n, n, n+1), false
			}
			return fmt.Sprintf("%d. ... p/q%d-q%d\n", n, n, n+1), true
		})(stdin, stdout)
	})
	out, err := e.Run(`
		set timeout 5
		proc read_move {} {
			global expect_match
			expect {*...*} {}
			regexp {\.\.\. ([a-z0-9/-]+)} $expect_match whole move
			return $move
		}
		proc send_move {m} { send $m\n }

		spawn chess
		set chess1 $spawn_id
		expect {*Chess*} {}
		spawn chess
		set chess2 $spawn_id
		expect {*Chess*} {}

		# force someone to go first
		set spawn_id $chess1
		send p/k2-k3\n
		set relayed 0
		for {} {$relayed < 3} {} {
			set spawn_id $chess1
			set m [read_move]
			set spawn_id $chess2
			send_move $m
			set m2 [read_move]
			set spawn_id $chess1
			send_move $m2
			incr relayed
		}
		set relayed
	`)
	if err != nil {
		t.Fatalf("chess loop failed: %v", err)
	}
	if out != "3" {
		t.Errorf("relayed = %q, want 3", out)
	}
}

func TestScriptClose(t *testing.T) {
	e, _ := newTestEngine(t)
	e.RegisterVirtual("p", greeter("x"))
	_, err := e.Run(`spawn p; expect {*login:*} {}; close`)
	if err != nil {
		t.Fatal(err)
	}
	if ids := e.SessionIDs(); len(ids) != 0 {
		t.Errorf("sessions after close: %v", ids)
	}
}

func TestScriptWaitExitStatus(t *testing.T) {
	e, _ := newTestEngine(t)
	e.RegisterVirtual("failing", func(stdin io.Reader, stdout io.Writer) error {
		fmt.Fprint(stdout, "dying\n")
		return fmt.Errorf("boom")
	})
	out, err := e.Run(`spawn failing; expect {*dying*} {}; wait`)
	if err != nil {
		t.Fatal(err)
	}
	if out != "1" {
		t.Errorf("wait = %q, want 1", out)
	}
}

func TestScriptSelect(t *testing.T) {
	e, _ := newTestEngine(t)
	e.RegisterVirtual("fast", func(stdin io.Reader, stdout io.Writer) error {
		fmt.Fprint(stdout, "data\n")
		io.Copy(io.Discard, stdin)
		return nil
	})
	// Gated rather than sleep-delayed: "slow" stays silent for the whole
	// script — the test asserts select returns only the fast id — and the
	// cleanup release lets its goroutine unwind.
	gate := make(chan struct{})
	t.Cleanup(func() { close(gate) })
	e.RegisterVirtual("slow", func(stdin io.Reader, stdout io.Writer) error {
		<-gate
		fmt.Fprint(stdout, "late\n")
		io.Copy(io.Discard, stdin)
		return nil
	})
	out, err := e.Run(`
		set timeout 5
		spawn fast
		set a $spawn_id
		spawn slow
		set b $spawn_id
		select $a $b
	`)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := e.Interp.GlobalGet("a")
	if out != a {
		t.Errorf("select = %q, want only the fast id %q", out, a)
	}
}

func TestScriptTimeoutVariable(t *testing.T) {
	e, _ := newTestEngine(t)
	e.RegisterVirtual("quiet", func(stdin io.Reader, stdout io.Writer) error {
		io.Copy(io.Discard, stdin)
		return nil
	})
	start := time.Now()
	out, err := e.Run(`
		set timeout 1
		spawn quiet
		expect {*never*} {set r matched} timeout {set r timedout}
		set r
	`)
	if err != nil {
		t.Fatal(err)
	}
	if out != "timedout" {
		t.Errorf("r = %q", out)
	}
	if e := time.Since(start); e < 900*time.Millisecond || e > 5*time.Second {
		t.Errorf("timeout honored badly: %v", e)
	}
}

func TestScriptEofArm(t *testing.T) {
	e, _ := newTestEngine(t)
	e.RegisterVirtual("brief", func(stdin io.Reader, stdout io.Writer) error {
		fmt.Fprint(stdout, "so long\n")
		return nil
	})
	out, err := e.Run(`
		set timeout 5
		spawn brief
		expect {*so\ long*} {}
		expect {*more*} {set r data} eof {set r eof}
		set r
	`)
	if err != nil {
		t.Fatal(err)
	}
	if out != "eof" {
		t.Errorf("r = %q, want eof", out)
	}
	// Implicit close must have reaped the session (§3.2).
	if ids := e.SessionIDs(); len(ids) != 0 {
		t.Errorf("sessions after implicit close: %v", ids)
	}
}

func TestScriptMultiplePatternsOneAction(t *testing.T) {
	e, _ := newTestEngine(t)
	e.RegisterVirtual("p", greeter("system going down"))
	out, err := e.Run(`
		set timeout 5
		spawn p
		expect {{*going down*} {*login:*}} {set r either}
		set r
	`)
	if err != nil {
		t.Fatal(err)
	}
	if out != "either" {
		t.Errorf("r = %q", out)
	}
}

func TestScriptLogUserGatesOutput(t *testing.T) {
	e, out := newTestEngine(t)
	e.RegisterVirtual("p", greeter("VISIBLE-BANNER"))
	_, err := e.Run(`
		log_user 1
		set timeout 5
		spawn p
		expect {*login:*} {}
		log_user 0
		send don\n
		expect {*Password:*} {}
	`)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "VISIBLE-BANNER") {
		t.Errorf("log_user 1 output missing banner: %q", got)
	}
	if strings.Contains(got, "Password:") {
		t.Errorf("output after log_user 0 leaked: %q", got)
	}
}

func TestScriptLogFile(t *testing.T) {
	e, _ := newTestEngine(t)
	e.RegisterVirtual("p", greeter("LOGGED-LINE"))
	path := filepath.Join(t.TempDir(), "dialogue.log")
	_, err := e.Run(fmt.Sprintf(`
		log_file %s
		set timeout 5
		spawn p
		expect {*login:*} {}
		log_file
	`, path))
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "LOGGED-LINE") {
		t.Errorf("log file contents: %q", data)
	}
}

func TestScriptSendUserAndExpectUser(t *testing.T) {
	e, out := newTestEngine(t, "yes\n")
	result, err := e.Run(`
		send_user "continue? "
		set timeout 5
		expect_user {*yes*} {set r affirmative} {*no*} {set r negative}
		set r
	`)
	if err != nil {
		t.Fatal(err)
	}
	if result != "affirmative" {
		t.Errorf("r = %q", result)
	}
	if !strings.Contains(out.String(), "continue? ") {
		t.Errorf("user never saw prompt: %q", out.String())
	}
}

func TestScriptInteract(t *testing.T) {
	// User types a command at the process, then the process exits.
	e, out := newTestEngine(t, "hello\n", "quit\n")
	e.RegisterVirtual("echoer", lineServer("ready\n", func(line string) (string, bool) {
		if line == "quit" {
			return "goodbye\n", false
		}
		return "echo:" + line + "\n", true
	}))
	_, err := e.Run(`
		set timeout 5
		spawn echoer
		expect {*ready*} {}
		interact
	`)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "echo:hello") || !strings.Contains(got, "goodbye") {
		t.Errorf("interact pass-through missing: %q", got)
	}
	if ids := e.SessionIDs(); len(ids) != 0 {
		t.Errorf("sessions after interact EOF: %v", ids)
	}
}

func TestScriptInteractEscapeReturn(t *testing.T) {
	// ^] escapes to command mode; `return done` ends the interaction.
	e, _ := newTestEngine(t, "abc\n", "\x1d", "return done\n")
	e.RegisterVirtual("echoer", lineServer("ready\n", func(line string) (string, bool) {
		return "echo:" + line + "\n", true
	}))
	out, err := e.Run("set timeout 5\nspawn echoer\nexpect {*ready*} {}\nset r [interact \x1d]\nset r")
	if err != nil {
		t.Fatal(err)
	}
	if out != "done" {
		t.Errorf("interact returned %q, want done", out)
	}
}

func TestScriptMatchMaxCommand(t *testing.T) {
	e, _ := newTestEngine(t)
	e.RegisterVirtual("p", greeter("x"))
	out, err := e.Run(`match_max`)
	if err != nil {
		t.Fatal(err)
	}
	if out != "2000" {
		t.Errorf("default match_max = %q, want 2000 (§3.1)", out)
	}
	if _, err := e.Run(`spawn p; match_max 512`); err != nil {
		t.Fatal(err)
	}
	s, _ := e.Current()
	if s.MatchMax() != 512 {
		t.Errorf("session match_max = %d, want 512", s.MatchMax())
	}
}

func TestScriptExit(t *testing.T) {
	e, _ := newTestEngine(t)
	e.RegisterVirtual("p", greeter("x"))
	_, err := e.Run(`spawn p; exit 4; spawn p`)
	if err != nil {
		t.Fatalf("exit surfaced as error: %v", err)
	}
	code, called := e.ExitCode()
	if !called || code != 4 {
		t.Errorf("exit code = %d called=%v", code, called)
	}
}

func TestScriptTraceToggle(t *testing.T) {
	e, _ := newTestEngine(t)
	var errBuf lockedBuffer
	e.Interp.Stderr = &errBuf
	if _, err := e.Run(`trace on; set x 1; trace off; set y 2`); err != nil {
		t.Fatal(err)
	}
	got := errBuf.String()
	if !strings.Contains(got, "set x 1") {
		t.Errorf("trace output missing: %q", got)
	}
	if strings.Contains(got, "set y 2") {
		t.Errorf("trace off leaked: %q", got)
	}
}

func TestScriptSpawnUnknownProgram(t *testing.T) {
	e, _ := newTestEngine(t)
	_, err := e.Run(`spawn /no/such/binary/exists`)
	if err == nil || !strings.Contains(err.Error(), "spawn") {
		t.Errorf("spawn of missing binary: %v", err)
	}
}

func TestScriptDefaultTimeoutIsTen(t *testing.T) {
	e, _ := newTestEngine(t)
	v, _ := e.Interp.GlobalGet("timeout")
	if v != "10" {
		t.Errorf("default timeout variable = %q, want 10 (§3.1)", v)
	}
}

func TestScriptExpectRegexpFlag(t *testing.T) {
	e, _ := newTestEngine(t)
	e.RegisterVirtual("p", greeter("build 12345 ready"))
	out, err := e.Run(`
		set timeout 5
		spawn p
		expect -re {build [0-9]+ ready} {set r regexp-hit} timeout {set r miss}
		set r
	`)
	if err != nil {
		t.Fatal(err)
	}
	if out != "regexp-hit" {
		t.Errorf("r = %q", out)
	}
	// expect_match holds everything through the end of the match.
	m, _ := e.Interp.GlobalGet("expect_match")
	if !strings.Contains(m, "build 12345 ready") {
		t.Errorf("expect_match = %q", m)
	}
}

func TestScriptExpectExactFlag(t *testing.T) {
	e, _ := newTestEngine(t)
	e.RegisterVirtual("p", greeter("literal *stars* here"))
	out, err := e.Run(`
		set timeout 5
		spawn p
		expect -ex {*stars*} {set r exact-hit} timeout {set r miss}
		set r
	`)
	if err != nil {
		t.Fatal(err)
	}
	if out != "exact-hit" {
		t.Errorf("r = %q (exact match must treat stars literally)", out)
	}
}

func TestScriptExpectBadRegexp(t *testing.T) {
	e, _ := newTestEngine(t)
	e.RegisterVirtual("p", greeter("x"))
	_, err := e.Run(`spawn p; expect -re {[unclosed} {}`)
	if err == nil || !strings.Contains(err.Error(), "-re") {
		t.Errorf("bad regexp error = %v", err)
	}
}

func TestScriptExpectMixedFlagsAndGlobs(t *testing.T) {
	e, _ := newTestEngine(t)
	e.RegisterVirtual("p", greeter("code-777"))
	out, err := e.Run(`
		set timeout 5
		spawn p
		expect {*nothing*} {set r glob} \
			-re {code-[0-9]+} {set r re} \
			timeout {set r miss}
		set r
	`)
	if err != nil {
		t.Fatal(err)
	}
	if out != "re" {
		t.Errorf("r = %q", out)
	}
}
