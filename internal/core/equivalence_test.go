package core

import (
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/pattern"
)

// chunkedEmitter writes text in the given chunk sizes with tiny pauses, so
// the pump observes many small reads — the §7.4 slow-arrival regime.
func chunkedEmitter(text string, chunks []int) func(io.Reader, io.Writer) error {
	return func(stdin io.Reader, stdout io.Writer) error {
		pos := 0
		ci := 0
		for pos < len(text) {
			n := 1
			if len(chunks) > 0 {
				n = chunks[ci%len(chunks)]
				ci++
			}
			if n < 1 {
				n = 1
			}
			if pos+n > len(text) {
				n = len(text) - pos
			}
			if _, err := io.WriteString(stdout, text[pos:pos+n]); err != nil {
				return nil
			}
			pos += n
			time.Sleep(200 * time.Microsecond)
		}
		io.Copy(io.Discard, stdin)
		return nil
	}
}

// TestMatcherModesEquivalentQuick is the engine-level equivalence
// property behind E5: for random dialogue text and random chunkings, the
// rescanning and incremental matchers must fire the same case with the
// same matched text.
func TestMatcherModesEquivalentQuick(t *testing.T) {
	words := []string{"login:", "Password:", "busy", "welcome", "noise", "xyz ", "-- "}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var sb strings.Builder
		for k := 0; k < 3+r.Intn(10); k++ {
			sb.WriteString(words[r.Intn(len(words))])
		}
		text := sb.String()
		chunks := make([]int, 1+r.Intn(4))
		for i := range chunks {
			chunks[i] = 1 + r.Intn(5)
		}
		cases := []Case{
			Glob("*welcome*"),
			Glob("*busy*"),
			Glob("*Password:*"),
		}
		run := func(mode MatcherMode) (int, string, error) {
			s, err := SpawnProgram(&Config{Matcher: mode}, "emitter",
				chunkedEmitter(text, chunks))
			if err != nil {
				return 0, "", err
			}
			defer s.Close()
			res, err := s.ExpectTimeout(time.Second, cases...)
			if err != nil {
				return -1, "", nil // no pattern present in text: both must agree
			}
			return res.Index, res.Text, nil
		}
		ri, rt, err1 := run(MatcherRescan)
		ii, it, err2 := run(MatcherIncremental)
		if err1 != nil || err2 != nil {
			t.Logf("spawn errors: %v %v", err1, err2)
			return false
		}
		// Both modes must agree on whether a match exists at all.
		if (ri >= 0) != (ii >= 0) {
			t.Logf("text=%q chunks=%v: rescan case %d vs incremental case %d", text, chunks, ri, ii)
			return false
		}
		// Each run's match must be a prefix of the emitted stream on which
		// its winning pattern holds. (Exact case/text equality across the
		// two runs would require identical pump scheduling — when several
		// patterns appear in the stream, chunk coalescing legitimately
		// decides which fires first.)
		for _, m := range []struct {
			idx  int
			text string
		}{{ri, rt}, {ii, it}} {
			if m.idx < 0 {
				continue
			}
			if !strings.HasPrefix(text, m.text) {
				t.Logf("match %q is not a prefix of %q", m.text, text)
				return false
			}
			if !pattern.Match(cases[m.idx].Pattern, m.text) {
				t.Logf("match %q does not satisfy %q", m.text, cases[m.idx].Pattern)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestCompiledGlobEngineEquivalentQuick cross-checks the compiled-pattern
// fast path against the naive reference matcher through the full engine:
// for random dialogue text delivered in random chunkings, whatever case
// Expect declares the winner must be exactly the case the naive matcher
// picks for the matched text — same result, same case index.
func TestCompiledGlobEngineEquivalentQuick(t *testing.T) {
	words := []string{"login:", "Password:", "busy", "welcome", "noise", "[ok] ", "q?x ", "-- "}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var sb strings.Builder
		for k := 0; k < 3+r.Intn(10); k++ {
			sb.WriteString(words[r.Intn(len(words))])
		}
		text := sb.String()
		chunks := make([]int, 1+r.Intn(4))
		for i := range chunks {
			chunks[i] = 1 + r.Intn(5)
		}
		cases := []Case{
			Glob("*welcome*"),
			Glob("*bus[xyz]*"),
			Glob("*Password:*"),
			Glob("*q?x*"),
		}
		s, err := SpawnProgram(nil, "emitter", chunkedEmitter(text, chunks))
		if err != nil {
			t.Log(err)
			return false
		}
		defer s.Close()
		res, err := s.ExpectTimeout(time.Second, cases...)
		if err != nil {
			// No pattern in the stream: the naive matcher must agree that
			// nothing matches the full text.
			for _, c := range cases {
				if pattern.MatchNaive(c.Pattern, text) {
					t.Logf("text=%q: engine timed out but naive matches %q", text, c.Pattern)
					return false
				}
			}
			return true
		}
		// The winner must hold under the naive matcher...
		if !pattern.MatchNaive(cases[res.Index].Pattern, res.Text) {
			t.Logf("text=%q: case %d matched %q but naive disagrees", text, res.Index, res.Text)
			return false
		}
		// ...and every higher-priority case must fail on the same text,
		// otherwise the compiled scan picked a different index than a naive
		// scan of the same wakeup would have.
		for j := 0; j < res.Index; j++ {
			if pattern.MatchNaive(cases[j].Pattern, res.Text) {
				t.Logf("text=%q: case %d won but naive prefers case %d on %q",
					text, res.Index, j, res.Text)
				return false
			}
		}
		return strings.HasPrefix(text, res.Text)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestEngineCachedUncachedEquivalentQuick runs one randomly assembled
// expect script through two engines — eval cache on (default) and off (the
// seed's parse-as-you-go path) — against the same virtual program, and
// requires identical results and identical state.
func TestEngineCachedUncachedEquivalentQuick(t *testing.T) {
	pieces := []string{
		`set a [expr {$a * 2 + 1}]`,
		`for {set i 0} {$i < 4} {incr i} { set a [expr {$a + $i}] }`,
		`proc twice x {expr {$x + $x}}; set a [twice $a]`,
		`if {$a % 2 == 0} { set b even } else { set b odd }`,
		`foreach w {alpha beta gamma} { set b "$b-$w" }`,
		`set msg "a=$a b=$b"`,
		`send probe\n`,
		`expect {*echo:*} {set b "saw-echo"}`,
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var sb strings.Builder
		sb.WriteString("set timeout 5\nset a 3\nset b start\nspawn echoer\nexpect {*ready*} {}\n")
		for k := 0; k < 3+r.Intn(6); k++ {
			sb.WriteString(pieces[r.Intn(len(pieces))])
			sb.WriteByte('\n')
		}
		sb.WriteString(`set out "$a|$b"`)
		script := sb.String()

		run := func(cached bool) (string, string) {
			var userOut lockedBuffer
			off := false
			e := NewEngine(EngineOptions{UserOut: &userOut, LogUser: &off})
			defer e.Shutdown()
			if !cached {
				e.Interp.SetEvalCacheSize(0)
			}
			e.RegisterVirtual("echoer", lineServer("ready\n", func(line string) (string, bool) {
				return "echo: " + line + "\n", true
			}))
			out, err := e.Run(script)
			if err != nil {
				return out, err.Error()
			}
			return out, ""
		}
		co, ce := run(true)
		uo, ue := run(false)
		if co != uo || ce != ue {
			t.Logf("script:\n%s\ncached   = (%q, %q)\nuncached = (%q, %q)", script, co, ce, uo, ue)
			return false
		}
		return true
	}
	n := 8
	if testing.Short() {
		n = 3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: n}); err != nil {
		t.Error(err)
	}
}
