package core

import (
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/pattern"
)

// chunkedEmitter writes text in the given chunk sizes with tiny pauses, so
// the pump observes many small reads — the §7.4 slow-arrival regime.
func chunkedEmitter(text string, chunks []int) func(io.Reader, io.Writer) error {
	return func(stdin io.Reader, stdout io.Writer) error {
		pos := 0
		ci := 0
		for pos < len(text) {
			n := 1
			if len(chunks) > 0 {
				n = chunks[ci%len(chunks)]
				ci++
			}
			if n < 1 {
				n = 1
			}
			if pos+n > len(text) {
				n = len(text) - pos
			}
			if _, err := io.WriteString(stdout, text[pos:pos+n]); err != nil {
				return nil
			}
			pos += n
			time.Sleep(200 * time.Microsecond)
		}
		io.Copy(io.Discard, stdin)
		return nil
	}
}

// TestMatcherModesEquivalentQuick is the engine-level equivalence
// property behind E5: for random dialogue text and random chunkings, the
// rescanning and incremental matchers must fire the same case with the
// same matched text.
func TestMatcherModesEquivalentQuick(t *testing.T) {
	words := []string{"login:", "Password:", "busy", "welcome", "noise", "xyz ", "-- "}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var sb strings.Builder
		for k := 0; k < 3+r.Intn(10); k++ {
			sb.WriteString(words[r.Intn(len(words))])
		}
		text := sb.String()
		chunks := make([]int, 1+r.Intn(4))
		for i := range chunks {
			chunks[i] = 1 + r.Intn(5)
		}
		cases := []Case{
			Glob("*welcome*"),
			Glob("*busy*"),
			Glob("*Password:*"),
		}
		run := func(mode MatcherMode) (int, string, error) {
			s, err := SpawnProgram(&Config{Matcher: mode}, "emitter",
				chunkedEmitter(text, chunks))
			if err != nil {
				return 0, "", err
			}
			defer s.Close()
			res, err := s.ExpectTimeout(time.Second, cases...)
			if err != nil {
				return -1, "", nil // no pattern present in text: both must agree
			}
			return res.Index, res.Text, nil
		}
		ri, rt, err1 := run(MatcherRescan)
		ii, it, err2 := run(MatcherIncremental)
		if err1 != nil || err2 != nil {
			t.Logf("spawn errors: %v %v", err1, err2)
			return false
		}
		// Both modes must agree on whether a match exists at all.
		if (ri >= 0) != (ii >= 0) {
			t.Logf("text=%q chunks=%v: rescan case %d vs incremental case %d", text, chunks, ri, ii)
			return false
		}
		// Each run's match must be a prefix of the emitted stream on which
		// its winning pattern holds. (Exact case/text equality across the
		// two runs would require identical pump scheduling — when several
		// patterns appear in the stream, chunk coalescing legitimately
		// decides which fires first.)
		for _, m := range []struct {
			idx  int
			text string
		}{{ri, rt}, {ii, it}} {
			if m.idx < 0 {
				continue
			}
			if !strings.HasPrefix(text, m.text) {
				t.Logf("match %q is not a prefix of %q", m.text, text)
				return false
			}
			if !pattern.Match(cases[m.idx].Pattern, m.text) {
				t.Logf("match %q does not satisfy %q", m.text, cases[m.idx].Pattern)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
