package core

import (
	"fmt"
	"strings"
	"time"
)

// tailBytes bounds the buffer tail included in expect error messages: big
// enough to show the prompt the pattern missed, small enough that error
// strings stay one readable line.
const tailBytes = 120

// dumpEvents bounds the flight-recorder dump attached to an ExpectError.
const dumpEvents = 128

// ExpectError is the rich failure report for expect timeouts and EOF
// surprises. It wraps the ErrTimeout/ErrEOF sentinel (errors.Is keeps
// working) and carries the evidence that used to be discarded: how long
// the call waited, what unmatched output was sitting in the buffer, and —
// when the session has a flight recorder — the JSONL dump of the last
// events (reads, pattern attempts, timers) leading up to the failure.
type ExpectError struct {
	// Err is the sentinel: ErrTimeout or ErrEOF.
	Err error
	// Name is the session's program name; SID its flight-recorder spawn id.
	Name string
	SID  int32
	// Elapsed is how long the Expect call ran before giving up.
	Elapsed time.Duration
	// BufferLen and BufferTail describe the unmatched output: total length
	// and a bounded tail (the end of the buffer is where the expected
	// prompt would have appeared).
	BufferLen  int
	BufferTail string
	// ReadErr is the underlying read error when EOF was not a clean close.
	ReadErr error
	// Dump is the bounded JSONL flight recording (nil when no recorder was
	// armed). Parse with trace.ParseJSONL.
	Dump []byte
}

func (e *ExpectError) Error() string {
	var sb strings.Builder
	sb.WriteString(e.Err.Error())
	fmt.Fprintf(&sb, " (spawn_id %d, %s) after %s", e.SID, e.Name,
		e.Elapsed.Round(time.Millisecond))
	if e.ReadErr != nil {
		fmt.Fprintf(&sb, "; read error: %v", e.ReadErr)
	}
	fmt.Fprintf(&sb, "; unmatched buffer (%d bytes) ends %q", e.BufferLen, e.BufferTail)
	return sb.String()
}

// Unwrap lets errors.Is(err, ErrTimeout) / errors.Is(err, ErrEOF) see
// through the wrapper.
func (e *ExpectError) Unwrap() error { return e.Err }

// tailString returns the last n bytes of b as a string (the whole thing
// when shorter). Cold-path only: it allocates.
func tailString(b []byte, n int) string {
	if len(b) > n {
		b = b[len(b)-n:]
	}
	return string(b)
}
