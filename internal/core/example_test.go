package core_test

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
)

// Example shows the basic spawn/expect/send loop against an in-process
// interactive program.
func Example() {
	greeter := func(stdin io.Reader, stdout io.Writer) error {
		fmt.Fprint(stdout, "login: ")
		buf := make([]byte, 64)
		n, _ := stdin.Read(buf)
		fmt.Fprintf(stdout, "welcome, %s", string(buf[:n]))
		return nil
	}
	s, err := core.SpawnProgram(nil, "greeter", greeter)
	if err != nil {
		fmt.Println(err)
		return
	}
	defer s.Close()
	if _, err := s.ExpectMatch("*login:*"); err != nil {
		fmt.Println(err)
		return
	}
	s.Send("don")
	r, err := s.ExpectMatch("*welcome, don*")
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(r.Text)
	// Output: welcome, don
}

// ExampleSession_Expect demonstrates multiple cases with the paper's
// first-match-wins ordering and the timeout case.
func ExampleSession_Expect() {
	prog := func(stdin io.Reader, stdout io.Writer) error {
		fmt.Fprint(stdout, "system busy, try later\n")
		io.Copy(io.Discard, stdin)
		return nil
	}
	s, _ := core.SpawnProgram(&core.Config{Timeout: 2 * time.Second}, "remote", prog)
	defer s.Close()
	r, err := s.Expect(
		core.Glob("*welcome*"),
		core.Glob("*busy*"),
		core.TimeoutCase(),
	)
	if err != nil {
		fmt.Println(err)
		return
	}
	switch r.Index {
	case 0:
		fmt.Println("logged in")
	case 1:
		fmt.Println("line busy")
	case 2:
		fmt.Println("timed out")
	}
	// Output: line busy
}

// ExampleEngine runs a script through the full interpreter: spawn, expect
// with pattern/action arms, and the expect_match variable.
func ExampleEngine() {
	eng := core.NewEngine(core.EngineOptions{
		UserIn:  emptyReader{},
		UserOut: io.Discard,
	})
	defer eng.Shutdown()
	eng.RegisterVirtual("echo-server", func(stdin io.Reader, stdout io.Writer) error {
		fmt.Fprint(stdout, "ready\n")
		buf := make([]byte, 64)
		n, _ := stdin.Read(buf)
		fmt.Fprintf(stdout, "you said %s", string(buf[:n]))
		return nil
	})
	out, err := eng.Run(`
		set timeout 5
		spawn echo-server
		expect {*ready*} {}
		send ping
		# A patlist is a Tcl LIST of patterns, so spaces inside one
		# pattern are escaped — the paper writes {*Str:\ 18*} for the
		# same reason.
		expect {*you\ said\ ping*} {set result heard} timeout {set result lost}
		set result
	`)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(out)
	// Output: heard
}

// ExampleSelect waits for the first of several processes to speak —
// programmed job control (§2.2).
func ExampleSelect() {
	mk := func(name string, delay time.Duration) *core.Session {
		s, _ := core.SpawnProgram(nil, name, func(stdin io.Reader, stdout io.Writer) error {
			time.Sleep(delay)
			fmt.Fprintf(stdout, "%s done\n", name)
			io.Copy(io.Discard, stdin)
			return nil
		})
		return s
	}
	fast := mk("fast", 0)
	slow := mk("slow", time.Minute)
	defer fast.Close()
	defer slow.Close()
	ready := core.Select(5*time.Second, fast, slow)
	fmt.Println(ready[0].Name())
	// Output: fast
}

type emptyReader struct{}

func (emptyReader) Read([]byte) (int, error) {
	time.Sleep(time.Hour)
	return 0, io.EOF
}
