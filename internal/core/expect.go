package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"regexp"
	"time"

	"repro/internal/metrics"
	"repro/internal/pattern"
	"repro/internal/trace"
)

// CaseKind classifies an expect case.
type CaseKind int

// Case kinds. Glob is the paper's pattern flavor ("the usual
// C-shell-style regular expressions", anchored to the whole buffer, §3.1);
// Exact and Regexp are the library extensions later expect versions grew.
const (
	CaseGlob CaseKind = iota
	CaseExact
	CaseRegexp
	CaseEOF
	CaseTimeout
)

// Case is one pattern/action arm of an expect command.
type Case struct {
	Kind    CaseKind
	Pattern string
	re      *regexp.Regexp
	inc     *pattern.Incremental
	// glob and lit are the compiled forms, filled in by prepareCases once
	// per Expect call so the per-wakeup scan is allocation-free.
	glob *pattern.Compiled
	lit  []byte
}

// Glob builds a glob case. Per the paper, the pattern must match the
// entire buffered output, "hence the reason most are surrounded by the *
// wildcard".
func Glob(pat string) Case { return Case{Kind: CaseGlob, Pattern: pat} }

// Exact builds a literal-substring case.
func Exact(s string) Case { return Case{Kind: CaseExact, Pattern: s} }

// Regexp builds a regular-expression case; it panics on a bad pattern
// (compile with pattern.CompileRegexp first to handle errors).
func Regexp(pat string) Case {
	re, err := pattern.CompileRegexp(pat)
	if err != nil {
		panic(err)
	}
	return Case{Kind: CaseRegexp, Pattern: pat, re: re}
}

// prepareCases fills in the compiled form of each case: globs come from
// the shared compile cache, exact patterns become byte slices. Done once
// per Expect call; every subsequent wakeup matches compiled programs
// directly over the buffer bytes without allocating.
func prepareCases(cases []Case, prof *metrics.Profiler) {
	stop := prof.Start(metrics.PhaseCompile)
	for i := range cases {
		switch cases[i].Kind {
		case CaseGlob:
			cases[i].glob = pattern.CompileGlob(cases[i].Pattern)
		case CaseExact:
			cases[i].lit = []byte(cases[i].Pattern)
		}
	}
	stop()
}

// EOFCase fires when the process closes its output.
func EOFCase() Case { return Case{Kind: CaseEOF} }

// TimeoutCase fires when the expect deadline passes.
func TimeoutCase() Case { return Case{Kind: CaseTimeout} }

// MatchResult describes how an Expect call completed.
type MatchResult struct {
	// Index is the position of the winning case in the argument list.
	Index int
	// Case is the winning case.
	Case Case
	// Text is "the exact string matched (or read but unmatched, if a
	// timeout occurred)" — the paper's expect_match variable. For glob
	// cases this is the entire buffer (anchored semantics); for exact and
	// regexp cases it is everything consumed through the end of the match.
	Text string
	// TimedOut and Eof report which special condition fired, if any.
	TimedOut bool
	Eof      bool
}

// Expect waits with the session's default timeout. See ExpectTimeout.
func (s *Session) Expect(cases ...Case) (*MatchResult, error) {
	return s.ExpectTimeout(s.Timeout(), cases...)
}

// ExpectMatch is the one-pattern convenience: wait for a single glob.
func (s *Session) ExpectMatch(glob string) (*MatchResult, error) {
	return s.Expect(Glob(glob))
}

// ExpectTimeout waits until the process output matches one of cases, the
// deadline d passes (d < 0 waits forever), or EOF arrives. Cases are
// checked in order on every new chunk of output; the first match wins.
// On match the consumed bytes are removed from the buffer, so consecutive
// Expect calls see only fresh output ("patterns must match the entire
// output of the current process since the previous expect", §3.1).
//
// Timeout and EOF return errors (ErrTimeout, ErrEOF) unless the case list
// includes TimeoutCase or EOFCase, in which case they complete normally
// with the corresponding case index.
func (s *Session) ExpectTimeout(d time.Duration, cases ...Case) (*MatchResult, error) {
	op := s.newExpectOp(d, cases)
	if sh := s.owningShard(); sh != nil {
		return sh.runExpect(op)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		res, err, done := op.stepLocked(time.Now())
		if done {
			return res, err
		}
		// Nothing matched and the stream is live: wait for more output.
		var remaining time.Duration
		if !op.deadline.IsZero() {
			remaining = time.Until(op.deadline)
			if remaining <= 0 {
				// The deadline slipped past between the step's timestamp and
				// here; go around so the step resolves the timeout.
				continue
			}
		}
		s.waitLocked(remaining)
	}
}

// expectOutcome carries a resolved expect across the shard boundary.
type expectOutcome struct {
	res *MatchResult
	err error
}

// expectOp is one in-flight Expect call in step form. The classic path
// drives it from a cond-wait loop; a shard event loop drives it from
// ingest and timer events. Either way every attempt runs stepLocked, so
// the two schedulers cannot drift semantically.
type expectOp struct {
	s           *Session
	cases       []Case
	start       time.Time
	deadline    time.Time // zero = wait forever
	incremental bool

	// Lazily initialized by the first step (under s.mu): incremental NFA
	// construction and the feed/read-to-wakeup high-water marks.
	inited   bool
	fed      int64 // totalSeen high-water mark already fed to matchers
	seenMark int64 // output this call has reacted to (latency histogram)

	// Sharded-delivery state, owned by the shard loop.
	ch       chan expectOutcome
	resolved bool
	timed    bool // sitting in the shard's timer heap
}

// newExpectOp compiles the case patterns once and records the expect
// event; the per-wakeup steps only run compiled programs over buffer
// bytes.
func (s *Session) newExpectOp(d time.Duration, cases []Case) *expectOp {
	s.nExpects.Add(1)
	op := &expectOp{
		s:           s,
		cases:       cases,
		start:       time.Now(),
		incremental: s.matcher == MatcherIncremental,
	}
	if d >= 0 {
		op.deadline = op.start.Add(d)
	}
	prepareCases(cases, s.prof)
	if s.rec.On() {
		t := int64(-1)
		if d >= 0 {
			t = int64(d)
		}
		if s.rec.Journaling() {
			// A journaled expect carries its serialized case list so a
			// replay can reconstruct the exact call; ring-only runs skip
			// the encoding allocation.
			s.rec.RecordData(trace.KindExpect, s.sid, int64(len(cases)), t, false, "", "", EncodeCases(cases))
		} else {
			s.rec.Record(trace.KindExpect, s.sid, int64(len(cases)), t, false, "", "")
		}
	}
	return op
}

// caseJSON is the journal schema for one expect case.
type caseJSON struct {
	K int    `json:"k"`
	P string `json:"p,omitempty"`
}

// EncodeCases serializes an expect case list for the journal (kind +
// pattern per case; compiled forms are rebuilt on decode).
func EncodeCases(cases []Case) []byte {
	out := make([]caseJSON, len(cases))
	for i, c := range cases {
		out[i] = caseJSON{K: int(c.Kind), P: c.Pattern}
	}
	b, _ := json.Marshal(out)
	return b
}

// DecodeCases inverts EncodeCases, recompiling regexp cases.
func DecodeCases(data []byte) ([]Case, error) {
	var in []caseJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("core: bad case list %q: %w", data, err)
	}
	out := make([]Case, len(in))
	for i, c := range in {
		cs, err := caseFromSpec(c.K, c.P)
		if err != nil {
			return nil, fmt.Errorf("core: case %d: %w", i, err)
		}
		out[i] = cs
	}
	return out, nil
}

// caseFromSpec rebuilds one case from its portable kind+pattern form,
// recompiling as needed. Shared by journal decode and checkpoint restore.
func caseFromSpec(kind int, pat string) (Case, error) {
	switch CaseKind(kind) {
	case CaseGlob:
		return Glob(pat), nil
	case CaseExact:
		return Exact(pat), nil
	case CaseRegexp:
		re, err := pattern.CompileRegexp(pat)
		if err != nil {
			return Case{}, err
		}
		return Case{Kind: CaseRegexp, Pattern: pat, re: re}, nil
	case CaseEOF:
		return EOFCase(), nil
	case CaseTimeout:
		return TimeoutCase(), nil
	default:
		return Case{}, fmt.Errorf("unknown case kind %d", kind)
	}
}

// ManualExpect is an Expect call driven by hand: no cond-wait, no shard
// loop, no wall clock. The replay engine uses it to reproduce a journaled
// run's exact wakeup structure — Feed a chunk, Step a scan — and the
// checkpoint path uses it to resume a restored pending op. It must not be
// mixed with a concurrent Expect on the same session.
type ManualExpect struct {
	op *expectOp
}

// BeginExpect starts a manually-stepped expect call. Unlike ExpectTimeout
// it returns immediately without scanning; the first Step is the first
// wakeup.
func (s *Session) BeginExpect(d time.Duration, cases ...Case) *ManualExpect {
	return &ManualExpect{op: s.newExpectOp(d, cases)}
}

// Step runs one match attempt (one wakeup) at the op's start time, so an
// armed deadline can never fire mid-stream: recorded timeouts are replayed
// by StepDeadline, not by racing the clock.
func (m *ManualExpect) Step() (*MatchResult, error, bool) {
	s := m.op.s
	s.mu.Lock()
	defer s.mu.Unlock()
	return m.op.stepLocked(m.op.start)
}

// StepDeadline runs one match attempt with the clock forced past the op's
// deadline, resolving the call as the recorded timeout did — virtual time,
// no waiting. With no deadline armed it behaves like Step.
func (m *ManualExpect) StepDeadline() (*MatchResult, error, bool) {
	s := m.op.s
	now := m.op.deadline
	if now.IsZero() {
		return m.Step()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return m.op.stepLocked(now)
}

// stepLocked runs one match attempt: feed fresh bytes to incremental
// matchers, scan the cases, then resolve EOF or a passed deadline. It
// returns done=false when the stream is live, nothing matched, and the
// deadline (if any) is still ahead of now. The caller holds s.mu.
func (op *expectOp) stepLocked(now time.Time) (*MatchResult, error, bool) {
	s := op.s
	if !op.inited {
		op.inited = true
		if op.incremental {
			// One incremental matcher per glob case, carrying NFA state
			// across wakeups so nothing is rescanned.
			for i := range op.cases {
				if op.cases[i].Kind == CaseGlob {
					op.cases[i].inc = pattern.NewIncremental(op.cases[i].Pattern)
				}
			}
			op.fed = s.totalSeen - int64(s.mb.length())
		}
		op.seenMark = s.totalSeen
	}
	cases := op.cases

	var wake time.Time
	if s.prof != nil {
		wake = now
		if s.totalSeen > op.seenMark && !s.lastRead.IsZero() {
			s.prof.Observe(metrics.HistReadToWakeup, wake.Sub(s.lastRead))
		}
		op.seenMark = s.totalSeen
	}

	buf := s.mb.bytes()
	if op.incremental {
		// Feed only bytes not yet seen by the matchers. If match_max
		// trimming outran the feed (a torrent arrived in one read),
		// the skipped bytes are exactly the ones the engine forgot.
		delta := s.totalSeen - op.fed
		if delta > int64(len(buf)) {
			delta = int64(len(buf))
		}
		if delta > 0 {
			fresh := buf[int64(len(buf))-delta:]
			stop := s.prof.Start(metrics.PhaseMatch)
			for i := range cases {
				if cases[i].inc != nil {
					cases[i].inc.Feed(fresh)
				}
			}
			stop()
			op.fed = s.totalSeen
		}
	}

	// Scan cases in order against the buffered output. The traced
	// variant records one attempt event per case; the untraced one is
	// the allocation-free fast path.
	stop := s.prof.Start(metrics.PhaseMatch)
	var idx, consumed int
	if s.rec.On() {
		idx, consumed = s.scanCasesTraced(buf, cases, op.incremental)
	} else {
		idx, consumed = scanCases(buf, cases, op.incremental)
	}
	stop()
	if s.prof != nil {
		s.prof.Observe(metrics.HistWakeupToMatch, time.Since(wake))
	}
	if idx >= 0 {
		text := string(buf[:consumed])
		s.mb.consume(consumed)
		if s.rec.On() {
			s.rec.RecordBytes(trace.KindMatch, s.sid, int64(idx), int64(consumed), true, buf[:consumed], nil)
		}
		s.nMatches.Add(1)
		return &MatchResult{Index: idx, Case: cases[idx], Text: text}, nil, true
	}

	if s.eof {
		text := string(buf)
		s.nEofs.Add(1)
		for i, c := range cases {
			if c.Kind == CaseEOF {
				s.mb.reset()
				if s.rec.On() {
					s.rec.Record(trace.KindEOF, s.sid, int64(len(buf)), 0, true, tailString(buf, trace.TextCap), "")
				}
				return &MatchResult{Index: i, Case: c, Text: text, Eof: true}, nil, true
			}
		}
		readErr := s.readErr
		if s.rec.On() {
			aux := ""
			if readErr != nil {
				aux = readErr.Error()
			}
			s.rec.Record(trace.KindEOF, s.sid, int64(len(buf)), 0, false, tailString(buf, trace.TextCap), aux)
		}
		return &MatchResult{Index: -1, Text: text, Eof: true}, &ExpectError{
			Err:        ErrEOF,
			Name:       s.name,
			SID:        s.sid,
			Elapsed:    time.Since(op.start),
			BufferLen:  len(buf),
			BufferTail: tailString(buf, tailBytes),
			ReadErr:    readErr,
			Dump:       s.rec.Dump(dumpEvents),
		}, true
	}

	if !op.deadline.IsZero() && !now.Before(op.deadline) {
		text := string(buf)
		s.nTimeouts.Add(1)
		elapsed := time.Since(op.start)
		for i, c := range cases {
			if c.Kind == CaseTimeout {
				if s.rec.On() {
					s.rec.Record(trace.KindTimeout, s.sid, int64(len(buf)), int64(elapsed), true, tailString(buf, trace.TextCap), "")
				}
				return &MatchResult{Index: i, Case: c, Text: text, TimedOut: true}, nil, true
			}
		}
		if s.rec.On() {
			s.rec.Record(trace.KindTimeout, s.sid, int64(len(buf)), int64(elapsed), false, tailString(buf, trace.TextCap), "")
		}
		return &MatchResult{Index: -1, Text: text, TimedOut: true}, &ExpectError{
			Err:        ErrTimeout,
			Name:       s.name,
			SID:        s.sid,
			Elapsed:    elapsed,
			BufferLen:  len(buf),
			BufferTail: tailString(buf, tailBytes),
			Dump:       s.rec.Dump(dumpEvents),
		}, true
	}

	return nil, nil, false
}

// scanCases checks prepared cases in order against buf; it returns the
// winning index and how many buffer bytes the match consumes, or (-1, 0).
// Everything it runs is precompiled, so a wakeup that finds no match
// performs no allocation no matter how large the buffer is.
func scanCases(buf []byte, cases []Case, incremental bool) (int, int) {
	for i := range cases {
		if ok, n := scanOneCase(buf, &cases[i], incremental); ok {
			return i, n
		}
	}
	return -1, 0
}

// scanOneCase runs a single prepared case against buf, reporting whether
// it matched and how many bytes the match consumes. EOF/timeout cases
// never match here (they are resolved by the expect loop's state, not the
// buffer contents).
func scanOneCase(buf []byte, c *Case, incremental bool) (bool, int) {
	switch c.Kind {
	case CaseGlob:
		if incremental && c.inc != nil {
			if c.inc.Matched() {
				return true, len(buf)
			}
			return false, 0
		}
		if c.glob.Match(buf) {
			// Anchored semantics: the whole buffer is the match.
			return true, len(buf)
		}
	case CaseExact:
		if idx := bytes.Index(buf, c.lit); idx >= 0 {
			return true, idx + len(c.lit)
		}
	case CaseRegexp:
		if loc := c.re.FindIndex(buf); loc != nil {
			return true, loc[1]
		}
	}
	return false, 0
}

// scanCasesTraced is scanCases with the flight recorder watching: every
// pattern case tried on this wakeup leaves an attempt event carrying its
// verdict — the per-wakeup record behind the exp_internal "does X match
// pattern Y? yes/no" lines. Semantics are identical to scanCases.
func (s *Session) scanCasesTraced(buf []byte, cases []Case, incremental bool) (int, int) {
	for i := range cases {
		c := &cases[i]
		if c.Kind == CaseEOF || c.Kind == CaseTimeout {
			continue
		}
		ok, n := scanOneCase(buf, c, incremental)
		s.rec.RecordAttempt(s.sid, i, len(buf), ok, c.Pattern, buf)
		if ok {
			return i, n
		}
	}
	return -1, 0
}

// waitLocked blocks on the session condition for at most remaining
// (forever when remaining == 0, used for no-deadline waits). The caller
// holds s.mu.
func (s *Session) waitLocked(remaining time.Duration) {
	if remaining <= 0 {
		s.cond.Wait()
		return
	}
	stop := s.prof.Start(metrics.PhaseTimer)
	if s.rec.On() {
		s.rec.Record(trace.KindTimerArm, s.sid, int64(remaining), 0, false, "", "")
	}
	t := time.AfterFunc(remaining, func() {
		if s.rec.On() {
			s.rec.Record(trace.KindTimerFire, s.sid, 0, 0, false, "", "")
		}
		s.mu.Lock()
		// Locking before broadcasting guarantees the waiter is parked in
		// cond.Wait and cannot miss the wakeup.
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	stop()
	s.cond.Wait()
	stop = s.prof.Start(metrics.PhaseTimer)
	t.Stop()
	stop()
}
