package core

// Correctness under adversity: these tests drive Expect, ExpectAny, and
// Interact through faultified transports (internal/faultify) and pin the
// paper's §3.1 semantics at the awkward boundaries — a timeout firing
// while a partial match sits in the gap buffer, EOF arriving mid-pattern,
// match_max overflowing under a torrent — for both matcher modes.

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/faultify"
	"repro/internal/proc"
)

// faultCondition names a transport perturbation applied to a scenario.
type faultCondition struct {
	name  string
	sched *faultify.Schedule // nil = clean transport
}

var faultConditions = []faultCondition{
	{"clean", nil},
	{"reseg1", &faultify.Schedule{Seed: 101, MaxReadChunk: 1}},
	{"reseg+transient", &faultify.Schedule{Seed: 102, MaxReadChunk: 2, TransientEveryN: 3, MaxWriteChunk: 1, WriteTransientEveryN: 4}},
	{"reseg+delay", &faultify.Schedule{Seed: 103, MaxReadChunk: 1, DelayEveryN: 5, ReadDelay: 2 * time.Millisecond}},
}

// faultConfig builds a session config for a matcher mode and condition.
func faultConfig(m MatcherMode, fc faultCondition) *Config {
	cfg := &Config{Matcher: m, Timeout: 5 * time.Second}
	if fc.sched != nil {
		cfg.SpawnOptions.WrapTransport = faultify.Wrapper(*fc.sched, nil)
	}
	return cfg
}

// forEachMode runs fn across matcher modes × fault conditions.
func forEachMode(t *testing.T, fn func(t *testing.T, m MatcherMode, fc faultCondition)) {
	t.Helper()
	for _, m := range []struct {
		name string
		mode MatcherMode
	}{{"rescan", MatcherRescan}, {"incremental", MatcherIncremental}} {
		for _, fc := range faultConditions {
			m, fc := m, fc
			t.Run(m.name+"/"+fc.name, func(t *testing.T) {
				t.Parallel()
				fn(t, m.mode, fc)
			})
		}
	}
}

// gatedWriter writes "par", waits for a go-byte on stdin, then completes
// the phrase — so a timeout reliably fires with a partial match buffered.
func gatedWriter(stdin io.Reader, stdout io.Writer) error {
	if _, err := io.WriteString(stdout, "par"); err != nil {
		return nil
	}
	one := make([]byte, 1)
	if _, err := stdin.Read(one); err != nil {
		return nil
	}
	io.WriteString(stdout, "tial complete")
	stdin.Read(one) // hold the stream open until the engine hangs up
	return nil
}

func TestTimeoutWithPartialMatchInGapBuffer(t *testing.T) {
	forEachMode(t, func(t *testing.T, m MatcherMode, fc faultCondition) {
		s, err := SpawnProgram(faultConfig(m, fc), "gated", gatedWriter)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()

		// Phase 1: the pattern cannot complete; the timeout case must
		// fire with the partial text reported and retained.
		r, err := s.ExpectTimeout(300*time.Millisecond, Glob("*complete*"), TimeoutCase())
		if err != nil {
			t.Fatalf("expect: %v", err)
		}
		if !r.TimedOut || r.Index != 1 {
			t.Fatalf("want timeout case, got %+v", r)
		}
		if r.Text != "par" {
			t.Errorf("timeout text = %q, want the partial %q", r.Text, "par")
		}
		if got := s.Buffer(); got != "par" {
			t.Errorf("buffer after timeout = %q, want %q (partial must survive)", got, "par")
		}

		// Phase 2: release the writer; the completed phrase must match
		// across the timeout boundary, including the pre-timeout bytes.
		if err := s.Send("g"); err != nil {
			t.Fatal(err)
		}
		r, err = s.ExpectTimeout(5*time.Second, Exact("complete"))
		if err != nil {
			t.Fatalf("expect after release: %v", err)
		}
		if r.Text != "partial complete" {
			t.Errorf("text = %q, want %q", r.Text, "partial complete")
		}
	})
}

func TestEOFMidPattern(t *testing.T) {
	halfPrompt := func(stdin io.Reader, stdout io.Writer) error {
		io.WriteString(stdout, "user na") // hangs up mid-"username:"
		return nil
	}
	forEachMode(t, func(t *testing.T, m MatcherMode, fc faultCondition) {
		// With an eof case: completes normally, partial text reported.
		s, err := SpawnProgram(faultConfig(m, fc), "half", halfPrompt)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		r, err := s.ExpectTimeout(5*time.Second, Glob("*username:*"), EOFCase())
		if err != nil {
			t.Fatalf("expect: %v", err)
		}
		if !r.Eof || r.Index != 1 {
			t.Fatalf("want eof case, got %+v", r)
		}
		if r.Text != "user na" {
			t.Errorf("eof text = %q, want %q", r.Text, "user na")
		}

		// Without an eof case: ErrEOF, partial text still reported.
		s2, err := SpawnProgram(faultConfig(m, fc), "half", halfPrompt)
		if err != nil {
			t.Fatal(err)
		}
		defer s2.Close()
		r, err = s2.ExpectTimeout(5*time.Second, Glob("*username:*"))
		if err == nil || !errors.Is(err, ErrEOF) {
			t.Fatalf("want ErrEOF, got %v (r=%+v)", err, r)
		}
		if r == nil || r.Text != "user na" {
			t.Errorf("ErrEOF text = %+v, want partial %q", r, "user na")
		}
	})
}

// TestEOFCutMidPattern uses the fault schedule itself to drop the line
// partway through a pattern the program did write in full.
func TestEOFCutMidPattern(t *testing.T) {
	full := func(stdin io.Reader, stdout io.Writer) error {
		io.WriteString(stdout, "username: ")
		io.Copy(io.Discard, stdin)
		return nil
	}
	for _, m := range []MatcherMode{MatcherRescan, MatcherIncremental} {
		cfg := &Config{Matcher: m}
		cfg.SpawnOptions.WrapTransport = faultify.Wrapper(
			faultify.Schedule{Seed: 9, MaxReadChunk: 1, CutAfterBytes: 7}, nil)
		s, err := SpawnProgram(cfg, "cut", full)
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.ExpectTimeout(5*time.Second, Glob("*username:*"), EOFCase())
		if err != nil {
			t.Fatalf("expect: %v", err)
		}
		if !r.Eof {
			t.Fatalf("want eof after cut, got %+v", r)
		}
		if r.Text != "usernam" {
			t.Errorf("cut text = %q, want first 7 bytes %q", r.Text, "usernam")
		}
		s.Close()
	}
}

func TestExpectAnyTimeoutWithPartialInFanIn(t *testing.T) {
	forEachMode(t, func(t *testing.T, m MatcherMode, fc faultCondition) {
		partial, err := SpawnProgram(faultConfig(m, fc), "partial", gatedWriter)
		if err != nil {
			t.Fatal(err)
		}
		defer partial.Close()
		silent, err := SpawnProgram(faultConfig(m, fc), "silent",
			func(stdin io.Reader, stdout io.Writer) error {
				io.Copy(io.Discard, stdin)
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		defer silent.Close()

		// Wait for the partial bytes so the timeout really does fire with
		// data in a fan-in buffer, not on two empty sessions.
		if _, err := partial.ExpectTimeout(5*time.Second, Exact("par")); err != nil {
			t.Fatalf("waiting for partial: %v", err)
		}
		partial.Send("g") // release: "tial complete" arrives
		winner, r, err := ExpectAny(5*time.Second,
			[]*Session{silent, partial}, Glob("*complete*"), TimeoutCase())
		if err != nil {
			t.Fatalf("expect_any: %v", err)
		}
		if r.TimedOut || winner != partial || r.Index != 0 {
			t.Fatalf("want partial session to win case 0, got winner=%v r=%+v", name(winner), r)
		}

		// Now nothing more will arrive: the shared deadline must fire
		// while the silent session still has an un-matchable buffer state.
		winner, r, err = ExpectAny(200*time.Millisecond,
			[]*Session{silent, partial}, Glob("*never-appears*"), TimeoutCase())
		if err != nil || !r.TimedOut || winner != nil {
			t.Fatalf("want fan-in timeout, got winner=%v r=%+v err=%v", name(winner), r, err)
		}
	})
}

func TestExpectAnyEOFMidPatternFanIn(t *testing.T) {
	half := func(text string) proc.Program {
		return func(stdin io.Reader, stdout io.Writer) error {
			io.WriteString(stdout, text)
			return nil
		}
	}
	forEachMode(t, func(t *testing.T, m MatcherMode, fc faultCondition) {
		a, err := SpawnProgram(faultConfig(m, fc), "a", half("log"))
		if err != nil {
			t.Fatal(err)
		}
		defer a.Close()
		b, err := SpawnProgram(faultConfig(m, fc), "b", half("pass"))
		if err != nil {
			t.Fatal(err)
		}
		defer b.Close()
		// EOFCase fires only once every session is at EOF.
		_, r, err := ExpectAny(5*time.Second, []*Session{a, b},
			Glob("*login:*"), Glob("*password:*"), EOFCase())
		if err != nil {
			t.Fatalf("expect_any: %v", err)
		}
		if !r.Eof || r.Index != 2 {
			t.Fatalf("want all-eof case 2, got %+v", r)
		}
		// The partial bytes are still in the buffers, un-consumed.
		if a.Buffer() != "log" || b.Buffer() != "pass" {
			t.Errorf("buffers = %q / %q, want log / pass", a.Buffer(), b.Buffer())
		}
	})
}

func TestInteractUnderFaults(t *testing.T) {
	echo := func(stdin io.Reader, stdout io.Writer) error {
		io.WriteString(stdout, "ready\n")
		sc := newLineScanner(stdin)
		for {
			line, err := sc()
			if err != nil {
				return nil
			}
			if line == "quit" {
				io.WriteString(stdout, "bye\n")
				return nil
			}
			io.WriteString(stdout, "echo: "+line+"\n")
		}
	}
	forEachMode(t, func(t *testing.T, m MatcherMode, fc faultCondition) {
		var tap lockedBuffer
		cfg := faultConfig(m, fc)
		cfg.Logger = loggerOf(&tap)
		s, err := SpawnProgram(cfg, "echo", echo)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		var userOut lockedBuffer
		// The user "types" the dialogue and then sits idle: a reader that
		// returns EOF would end the interaction with user-eof before the
		// child's exit can be observed, so block after the content instead.
		outcome, err := s.Interact(InteractOptions{
			UserIn:  &thenBlocks{r: strings.NewReader("hello\nquit\n")},
			UserOut: &userOut,
		})
		if err != nil {
			t.Fatalf("interact: %v", err)
		}
		// The program exits after "quit", so interact ends on process EOF
		// (the §3.2 implicit close), having flushed everything it saw.
		if outcome.Reason != InteractEOF {
			t.Fatalf("reason = %v, want process-eof", outcome.Reason)
		}
		want := "ready\necho: hello\nbye\n"
		if got := tap.String(); got != want {
			t.Errorf("child stream = %q, want %q", got, want)
		}
		if got := userOut.String(); got != want {
			t.Errorf("user saw %q, want %q", got, want)
		}
	})
}

func TestMatchMaxOverflowUnderFaults(t *testing.T) {
	const torrent = 8000
	writer := func(stdin io.Reader, stdout io.Writer) error {
		stdout.Write(bytes.Repeat([]byte{'a'}, torrent))
		io.WriteString(stdout, "END")
		io.Copy(io.Discard, stdin)
		return nil
	}
	// The harshest faultified condition would take torrent 1-byte wakeups;
	// bound the chunking a little higher to keep the test quick.
	conds := []faultCondition{
		{"clean", nil},
		{"reseg", &faultify.Schedule{Seed: 77, MaxReadChunk: 100, TransientEveryN: 5}},
	}
	for _, m := range []MatcherMode{MatcherRescan, MatcherIncremental} {
		for _, fc := range conds {
			cfg := faultConfig(m, fc)
			cfg.MatchMax = 1000
			s, err := SpawnProgram(cfg, "torrent", writer)
			if err != nil {
				t.Fatal(err)
			}
			r, err := s.ExpectTimeout(10*time.Second, Exact("END"))
			if err != nil {
				t.Fatalf("%s: expect: %v", fc.name, err)
			}
			if !strings.HasSuffix(r.Text, "END") {
				t.Errorf("%s: text %q does not end in END", fc.name, r.Text)
			}
			if len(r.Text) > 1000 {
				t.Errorf("%s: text length %d exceeds match_max", fc.name, len(r.Text))
			}
			s.Close()
			s.WaitPumpDrained()
			if got := s.TotalSeen(); got > torrent+3 {
				t.Errorf("%s: totalSeen = %d, want <= %d", fc.name, got, torrent+3)
			}
			if forgot := s.Forgotten(); forgot < torrent+3-2*1000 {
				t.Errorf("%s: forgotten = %d, want >= %d", fc.name, forgot, torrent+3-2*1000)
			}
		}
	}
}

// TestTransientWriteRetriedBySend: SendBytes must deliver the full byte
// sequence through a transport that keeps failing transiently.
func TestTransientWriteRetriedBySend(t *testing.T) {
	received := make(chan string, 1)
	cfg := &Config{}
	cfg.SpawnOptions.WrapTransport = faultify.Wrapper(
		faultify.Schedule{Seed: 21, MaxWriteChunk: 1, WriteTransientEveryN: 2}, nil)
	s, err := SpawnProgram(cfg, "sink", func(stdin io.Reader, stdout io.Writer) error {
		all, _ := io.ReadAll(stdin)
		received <- string(all)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const msg = "the quick brown fox"
	if err := s.Send(msg); err != nil {
		t.Fatalf("send: %v", err)
	}
	if err := s.CloseWrite(); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-received:
		if got != msg {
			t.Fatalf("child received %q, want %q", got, msg)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("child never saw EOF")
	}
}

// --- small helpers ---

func name(s *Session) string {
	if s == nil {
		return "<nil>"
	}
	return s.Name()
}

// thenBlocks yields its reader's content, then blocks forever instead of
// returning EOF — an idle user at a live terminal.
type thenBlocks struct {
	r io.Reader
}

func (t *thenBlocks) Read(p []byte) (int, error) {
	n, err := t.r.Read(p)
	if n == 0 && err == io.EOF {
		select {} // idle: interact must end for another reason
	}
	return n, nil
}

// loggerOf adapts a lockedBuffer (session_test.go) to Config.Logger.
func loggerOf(l *lockedBuffer) func([]byte) {
	return func(p []byte) { l.Write(p) }
}

// newLineScanner returns a closure reading newline-terminated lines a byte
// at a time (virtual programs must not over-read past what they consume).
func newLineScanner(r io.Reader) func() (string, error) {
	buf := make([]byte, 1)
	return func() (string, error) {
		var sb strings.Builder
		for {
			n, err := r.Read(buf)
			if n > 0 {
				if buf[0] == '\n' {
					return sb.String(), nil
				}
				sb.WriteByte(buf[0])
			}
			if err != nil {
				if sb.Len() > 0 {
					return sb.String(), nil
				}
				return "", err
			}
		}
	}
}
