package core

import (
	"io"
)

// InteractReason says why an Interact call ended.
type InteractReason int

// Interact termination reasons.
const (
	// InteractEOF: the process exited (interact "will detect when the
	// current process exits and implicitly do a close", §3.2).
	InteractEOF InteractReason = iota
	// InteractUserEOF: the user's input stream closed.
	InteractUserEOF
	// InteractReturn: the escape handler asked interact to return,
	// optionally with a result value (§3.1's `return` command).
	InteractReturn
)

func (r InteractReason) String() string {
	switch r {
	case InteractEOF:
		return "process-eof"
	case InteractUserEOF:
		return "user-eof"
	case InteractReturn:
		return "return"
	default:
		return "unknown"
	}
}

// InteractOptions configures an Interact call.
type InteractOptions struct {
	// UserIn and UserOut are the user's terminal. UserIn is read a byte at
	// a time; during interact every character is passed through to the
	// process (job control characters included, §7.3), except Escape.
	UserIn  io.Reader
	UserOut io.Writer
	// Escape, when non-zero, is the escape character: seeing it suspends
	// pass-through and calls OnEscape.
	Escape byte
	// OnEscape is invoked when Escape is typed. It may run arbitrary
	// commands (the expect CLI runs an interpreter loop here), reading
	// further user input — including any type-ahead that followed the
	// escape character — from the provided reader. Returning resume=true
	// continues the interaction; resume=false ends it with InteractReturn
	// and the given result value. A nil OnEscape with a non-zero Escape
	// ends the interaction immediately with an empty result.
	OnEscape func(userIn io.Reader) (resume bool, result string)
}

// InteractOutcome reports how an interaction ended.
type InteractOutcome struct {
	Reason InteractReason
	Result string
}

// Interact gives the user direct control of the process (Figure 4): user
// keystrokes flow to the process, and the process's combined stdout/stderr
// flows back to the user, until the process exits, the user's input
// closes, or the escape character is pressed and the handler returns
// control to the script.
func (s *Session) Interact(opt InteractOptions) (*InteractOutcome, error) {
	if opt.UserOut == nil {
		opt.UserOut = io.Discard
	}

	// Output side: drain the match buffer to the user as it fills.
	drainStop := false
	drainDone := make(chan struct{})
	go func() {
		defer close(drainDone)
		for {
			s.mu.Lock()
			for s.mb.length() == 0 && !s.eof && !drainStop {
				s.cond.Wait()
			}
			if drainStop {
				s.mu.Unlock()
				return
			}
			// take copies: the write below happens after unlock, while the
			// pump may append into the same backing array.
			chunk := s.mb.take()
			eof := s.eof
			s.mu.Unlock()
			if len(chunk) > 0 {
				if _, err := opt.UserOut.Write(chunk); err != nil {
					return
				}
			}
			if eof {
				return
			}
		}
	}()
	stopDrain := func() {
		s.mu.Lock()
		drainStop = true
		s.cond.Broadcast()
		s.mu.Unlock()
		<-drainDone
	}

	// Input side: a single reader goroutine owns the user stream and feeds
	// a channel. Both the pass-through loop and the escape handler consume
	// from that channel (the handler through a chanByteReader), so escape
	// mode never races pass-through for keystrokes. If the interaction
	// ends while the user types nothing, the goroutine stays blocked in
	// Read until the stream produces one more byte or closes; that byte
	// is discarded — mirroring the original's outstanding terminal read.
	inputCh := make(chan inputChunk)
	inputAbort := make(chan struct{})
	if opt.UserIn != nil {
		go func() {
			for {
				buf := make([]byte, 256)
				n, err := opt.UserIn.Read(buf)
				select {
				case inputCh <- inputChunk{buf[:n], err}:
					if err != nil {
						return
					}
				case <-inputAbort:
					return
				}
			}
		}()
	}
	defer close(inputAbort)
	escReader := &chanByteReader{ch: inputCh}

	for {
		var data []byte
		var inErr error
		select {
		case <-drainDone:
			// Process output finished: the process exited. Implicit close.
			s.Close()
			return &InteractOutcome{Reason: InteractEOF}, nil
		case in := <-inputCh:
			data, inErr = in.b, in.err
		}
		for len(data) > 0 {
			if opt.Escape != 0 {
				if idx := indexByte(data, opt.Escape); idx >= 0 {
					if idx > 0 {
						if err := s.SendBytes(data[:idx]); err != nil {
							stopDrain()
							return nil, err
						}
					}
					// Type-ahead past the escape goes to the handler.
					escReader.pending = data[idx+1:]
					resume := false
					result := ""
					if opt.OnEscape != nil {
						resume, result = opt.OnEscape(escReader)
					}
					if !resume {
						stopDrain()
						return &InteractOutcome{Reason: InteractReturn, Result: result}, nil
					}
					// Unconsumed handler input returns to pass-through.
					data = escReader.pending
					escReader.pending = nil
					if escReader.sawEOF {
						inErr = io.EOF
					}
					continue
				}
			}
			if err := s.SendBytes(data); err != nil {
				stopDrain()
				return nil, err
			}
			break
		}
		if inErr != nil {
			stopDrain()
			return &InteractOutcome{Reason: InteractUserEOF}, nil
		}
	}
}

type inputChunk struct {
	b   []byte
	err error
}

// chanByteReader adapts the interact input channel to io.Reader for the
// escape handler, honoring bytes already pulled from the channel.
type chanByteReader struct {
	ch      chan inputChunk
	pending []byte
	sawEOF  bool
}

func (r *chanByteReader) Read(p []byte) (int, error) {
	for len(r.pending) == 0 {
		if r.sawEOF {
			return 0, io.EOF
		}
		in, ok := <-r.ch
		if !ok {
			r.sawEOF = true
			return 0, io.EOF
		}
		r.pending = in.b
		if in.err != nil {
			r.sawEOF = true
		}
	}
	n := copy(p, r.pending)
	r.pending = r.pending[n:]
	return n, nil
}

func indexByte(b []byte, c byte) int {
	for i, x := range b {
		if x == c {
			return i
		}
	}
	return -1
}
