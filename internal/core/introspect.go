package core

import (
	"sort"
	"time"

	"repro/internal/metrics"
)

// This file is the engine's live-introspection surface: structured
// snapshots of sessions, shards, and counters for the telemetry plane
// (expectd's /debug/sessions and /debug/shards, goexpect -stats). The
// paper's exp_internal shows one dialogue after the fact; these answer
// "what are all ten thousand dialogues doing right now" without stopping
// any of them.

// SessionInfo is one session's telemetry snapshot, JSON-shaped for the
// admin endpoint. Parked-op fields are filled only by the owning shard
// loop (pump-driven sessions report ParkedOps 0 / RemainingTimeoutNS -1:
// their in-flight Expect lives on the calling goroutine's stack, invisible
// from outside).
type SessionInfo struct {
	SID   int32  `json:"sid"`
	Name  string `json:"name"`
	Kind  string `json:"kind"`
	State string `json:"state"` // "open", "eof", or "closed"
	Shard int    `json:"shard"` // -1 for pump-driven sessions

	BufferLen int   `json:"buffer_len"`
	MatchMax  int   `json:"match_max"`
	TotalSeen int64 `json:"total_seen"`
	Forgotten int64 `json:"forgotten"`

	// ParkedOps counts unresolved Expect calls parked on the owning shard;
	// RemainingTimeoutNS is the earliest armed deadline among them, in
	// nanoseconds from the snapshot instant (-1 when none is armed).
	ParkedOps          int   `json:"parked_ops"`
	RemainingTimeoutNS int64 `json:"remaining_timeout_ns"`

	// Dialogue counters: expects issued and how each resolved. Their
	// conservation law (matches + timeouts + eofs accounts for every
	// completed expect) is the same one the load workbench asserts.
	Expects  int64 `json:"expects"`
	Matches  int64 `json:"matches"`
	Timeouts int64 `json:"timeouts"`
	Eofs     int64 `json:"eofs"`
}

// Info snapshots the session's own state (everything except the parked-op
// view, which only the owning shard loop can see consistently).
func (s *Session) Info() SessionInfo {
	s.mu.Lock()
	info := SessionInfo{
		SID:                s.sid,
		Name:               s.name,
		State:              "open",
		Shard:              -1,
		BufferLen:          s.mb.length(),
		MatchMax:           s.mb.max,
		TotalSeen:          s.totalSeen,
		Forgotten:          s.forgotten,
		RemainingTimeoutNS: -1,
		Expects:            s.nExpects.Load(),
		Matches:            s.nMatches.Load(),
		Timeouts:           s.nTimeouts.Load(),
		Eofs:               s.nEofs.Load(),
	}
	switch {
	case s.closed:
		info.State = "closed"
	case s.eof:
		info.State = "eof"
	}
	if s.shard != nil {
		info.Shard = s.shard.idx
	}
	s.mu.Unlock()
	info.Kind = s.Kind()
	return info
}

// ShardSnapshot is one shard loop's telemetry snapshot: its backlog, its
// losses, the wakeup-servicing latency distribution, and every session it
// owns. Taken on the loop itself (msgInspect), so the session set and
// parked-op view are exactly what the loop would act on next — no session
// is half-registered or mid-step in the reply.
type ShardSnapshot struct {
	Shard      int                 `json:"shard"`
	QueueDepth int                 `json:"queue_depth"`
	PeakDepth  int                 `json:"peak_depth"`
	Dropped    uint64              `json:"dropped"`
	ParkedOps  int                 `json:"parked_ops"`
	Wakeup     metrics.HistSummary `json:"wakeup"`
	Sessions   []SessionInfo       `json:"sessions,omitempty"`
}

// inspect builds the snapshot on the shard loop. Sessions are the union
// of the owned set and the parked-op table (a finishing session can
// briefly live in only one), sorted by SID for deterministic output.
func (sh *shard) inspect(now time.Time) ShardSnapshot {
	snap := ShardSnapshot{
		Shard:     sh.idx,
		PeakDepth: int(sh.depthPeak.Load()),
		Dropped:   sh.dropped.Load(),
		Wakeup:    sh.wake.Summary("wakeup"),
	}
	sh.dirtyMu.Lock()
	dirty := len(sh.dirty)
	sh.dirtyMu.Unlock()
	snap.QueueDepth = len(sh.cmds) + dirty

	seen := make(map[*Session]struct{}, len(sh.sessions))
	collect := func(s *Session) {
		if _, dup := seen[s]; dup {
			return
		}
		seen[s] = struct{}{}
		info := s.Info()
		info.Shard = sh.idx
		for _, op := range sh.ops[s] {
			if op.resolved {
				continue
			}
			info.ParkedOps++
			if !op.deadline.IsZero() {
				rem := op.deadline.Sub(now).Nanoseconds()
				if rem < 0 {
					rem = 0
				}
				if info.RemainingTimeoutNS < 0 || rem < info.RemainingTimeoutNS {
					info.RemainingTimeoutNS = rem
				}
			}
		}
		snap.ParkedOps += info.ParkedOps
		snap.Sessions = append(snap.Sessions, info)
	}
	for s := range sh.sessions {
		collect(s)
	}
	for s := range sh.ops {
		collect(s)
	}
	sort.Slice(snap.Sessions, func(i, j int) bool { return snap.Sessions[i].SID < snap.Sessions[j].SID })
	return snap
}

// requestInspect posts msgInspect and waits for the loop's reply,
// following the CheckpointSession request/reply shape. A stopped or
// draining loop yields an empty snapshot instead of an error: the
// telemetry plane must stay readable while the daemon drains, and an
// empty shard is the truthful answer once its loop has exited.
func (sh *shard) requestInspect() ShardSnapshot {
	mig := &migration{insp: make(chan ShardSnapshot, 1)}
	select {
	case sh.cmds <- shardMsg{kind: msgInspect, mig: mig}:
		sh.noteDepth(len(sh.cmds))
	case <-sh.done:
		return ShardSnapshot{Shard: sh.idx}
	}
	select {
	case snap := <-mig.insp:
		return snap
	case <-sh.done:
		return ShardSnapshot{Shard: sh.idx}
	}
}

// SnapshotShards returns one loop-consistent snapshot per shard. Each
// shard's snapshot is internally consistent (taken on its loop between
// batches); the slice as a whole is not a global cut — shard 0 may step a
// session while shard 1 is being photographed — which is the same
// consistency a fleet scrape of separate processes would get.
func (sc *Scheduler) SnapshotShards() []ShardSnapshot {
	if sc == nil {
		return nil
	}
	out := make([]ShardSnapshot, len(sc.shards))
	for i, sh := range sc.shards {
		out[i] = sh.requestInspect()
	}
	return out
}

// SessionInfos flattens SnapshotShards into the per-session view, sorted
// by SID across all shards.
func (sc *Scheduler) SessionInfos() []SessionInfo {
	var out []SessionInfo
	for _, snap := range sc.SnapshotShards() {
		out = append(out, snap.Sessions...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].SID < out[j].SID })
	return out
}

// ShardWakeups returns every shard's wakeup-servicing histogram; the
// registry merges them into one fleet distribution at render time.
func (sc *Scheduler) ShardWakeups() []*metrics.Histogram {
	if sc == nil {
		return nil
	}
	out := make([]*metrics.Histogram, len(sc.shards))
	for i, sh := range sc.shards {
		out[i] = &sh.wake
	}
	return out
}

// RegisterMetrics publishes the scheduler's per-shard gauges and the
// merged wakeup histogram. Queue depth, peak, and dropped come from the
// lock-free accessors; the per-shard session and parked-op gauges take a
// loop snapshot per render, which is what makes them consistent with the
// loops' own view. Safe on a nil scheduler or registry.
func (sc *Scheduler) RegisterMetrics(r *metrics.Registry) {
	if sc == nil || r == nil {
		return
	}
	shardVec := func(vals func() []int) func() map[string]float64 {
		return func() map[string]float64 {
			vs := vals()
			out := make(map[string]float64, len(vs))
			for i, v := range vs {
				out[shardLabel(i)] = float64(v)
			}
			return out
		}
	}
	r.GaugeVec("expect_shard_queue_depth",
		"Queued messages plus dirty sessions awaiting a sweep, per shard.",
		"shard", shardVec(sc.QueueDepths))
	r.GaugeVec("expect_shard_queue_peak",
		"High-water shard backlog since start, per shard.",
		"shard", shardVec(sc.PeakQueueDepths))
	r.Counter("expect_shard_dropped_total",
		"Events lost at the drain deadline across all shards (zero on a clean run).",
		func() float64 { return float64(sc.Dropped()) })
	r.GaugeVec("expect_shard_sessions",
		"Sessions owned per shard loop (loop-consistent snapshot).",
		"shard", func() map[string]float64 {
			out := make(map[string]float64, len(sc.shards))
			for _, snap := range sc.SnapshotShards() {
				out[shardLabel(snap.Shard)] = float64(len(snap.Sessions))
			}
			return out
		})
	r.GaugeVec("expect_shard_parked_ops",
		"Unresolved Expect calls parked per shard loop.",
		"shard", func() map[string]float64 {
			out := make(map[string]float64, len(sc.shards))
			for _, snap := range sc.SnapshotShards() {
				out[shardLabel(snap.Shard)] = float64(snap.ParkedOps)
			}
			return out
		})
	r.Histogram("expect_shard_wakeup_seconds",
		"Wakeup-servicing latency per shard loop batch, merged across shards.",
		sc.ShardWakeups)
}

func shardLabel(i int) string {
	// Small-int itoa without strconv in the render hot path.
	if i >= 0 && i < 10 {
		return string(rune('0' + i))
	}
	buf := [8]byte{}
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}

// SessionInfos returns the telemetry snapshot of every live engine
// session. Shard-owned sessions come from the scheduler's loop-consistent
// snapshots (so parked ops and remaining timeouts are filled in);
// pump-driven sessions fall back to their own Info.
func (e *Engine) SessionInfos() []SessionInfo {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	sessions := make([]*Session, 0, len(e.sessions))
	for _, s := range e.sessions {
		sessions = append(sessions, s)
	}
	e.mu.Unlock()

	bySID := map[int32]SessionInfo{}
	if e.sched != nil {
		for _, info := range e.sched.SessionInfos() {
			bySID[info.SID] = info
		}
	}
	out := make([]SessionInfo, 0, len(sessions))
	for _, s := range sessions {
		if info, ok := bySID[s.sid]; ok && s.owningShard() != nil {
			out = append(out, info)
			continue
		}
		out = append(out, s.Info())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].SID < out[j].SID })
	return out
}

// RegisterMetrics publishes the engine's telemetry into r: live-session
// and spawn-total gauges, the profiler's phase shares and latency
// histograms (when a profiler is armed), and the scheduler's per-shard
// families (when sharded). This is the one wiring point expectd and
// goexpect -stats both use.
func (e *Engine) RegisterMetrics(r *metrics.Registry) {
	if e == nil || r == nil {
		return
	}
	r.Gauge("expect_sessions_live", "Live sessions in the engine table.",
		func() float64 {
			e.mu.Lock()
			n := len(e.sessions)
			e.mu.Unlock()
			return float64(n)
		})
	r.Counter("expect_spawns_total", "Sessions ever spawned by this engine.",
		func() float64 {
			e.mu.Lock()
			n := e.nextID
			e.mu.Unlock()
			return float64(n)
		})
	e.prof.RegisterInto(r)
	e.sched.RegisterMetrics(r)
}
