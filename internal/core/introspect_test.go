package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
)

// TestSessionInfoLifecycle walks one pump-driven session through its
// states and checks the snapshot at each stop: open → eof → closed, with
// the dialogue counters advancing by the conservation law.
func TestSessionInfoLifecycle(t *testing.T) {
	s, err := SpawnProgram(&Config{}, "echo", echoLines)
	if err != nil {
		t.Fatal(err)
	}
	info := s.Info()
	if info.State != "open" || info.Shard != -1 {
		t.Errorf("fresh session: state=%q shard=%d, want open/-1", info.State, info.Shard)
	}
	if info.Expects != 0 || info.RemainingTimeoutNS != -1 {
		t.Errorf("fresh session: expects=%d remaining=%d", info.Expects, info.RemainingTimeoutNS)
	}
	if info.Name != "echo" {
		t.Errorf("Name = %q", info.Name)
	}

	// One match dialogue.
	s.Send("hi\n")
	if _, err := s.ExpectTimeout(5*time.Second, Exact("echo:hi\n")); err != nil {
		t.Fatal(err)
	}
	// One timeout dialogue.
	res, err := s.ExpectTimeout(5*time.Millisecond, Exact("never"), TimeoutCase())
	if err != nil || !res.TimedOut {
		t.Fatalf("timeout dialogue: res=%+v err=%v", res, err)
	}
	// One EOF dialogue.
	s.CloseWrite()
	res, err = s.ExpectTimeout(5*time.Second, Exact("never"), EOFCase())
	if err != nil || !res.Eof {
		t.Fatalf("eof dialogue: res=%+v err=%v", res, err)
	}

	info = s.Info()
	if info.Expects != 3 || info.Matches != 1 || info.Timeouts != 1 || info.Eofs != 1 {
		t.Errorf("counters after 3 dialogues: %+v", info)
	}
	if info.Matches+info.Timeouts+info.Eofs != info.Expects {
		t.Errorf("conservation law broken: %+v", info)
	}
	if info.State != "eof" {
		t.Errorf("state after EOF = %q", info.State)
	}
	if info.TotalSeen == 0 {
		t.Error("TotalSeen = 0 after a match")
	}

	s.Close()
	if got := s.Info().State; got != "closed" {
		t.Errorf("state after Close = %q", got)
	}
}

// TestShardSnapshotSeesParkedOp parks an expect on a shard loop and
// checks the loop-consistent snapshot reports it: the owning shard, the
// unresolved op, and a remaining timeout between zero and the armed
// deadline.
func TestShardSnapshotSeesParkedOp(t *testing.T) {
	sc := NewScheduler(SchedulerOptions{Shards: 2})
	defer sc.Stop()
	s, err := SpawnProgram(&Config{Sched: sc, SID: 11}, "parked", echoLines)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const armed = 30 * time.Second
	done := make(chan error, 1)
	go func() {
		_, err := s.ExpectTimeout(armed, Exact("echo:release\n"))
		done <- err
	}()

	var got SessionInfo
	deadline := time.Now().Add(5 * time.Second)
	for {
		infos := sc.SessionInfos()
		if len(infos) == 1 && infos[0].ParkedOps == 1 {
			got = infos[0]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("parked op never appeared in snapshot: %+v", infos)
		}
		time.Sleep(time.Millisecond)
	}
	if got.SID != 11 || got.Name != "parked" {
		t.Errorf("snapshot identity: %+v", got)
	}
	if got.Shard < 0 || got.Shard > 1 {
		t.Errorf("shard %d out of range", got.Shard)
	}
	if got.RemainingTimeoutNS <= 0 || got.RemainingTimeoutNS > armed.Nanoseconds() {
		t.Errorf("remaining timeout %d outside (0, %d]", got.RemainingTimeoutNS, armed.Nanoseconds())
	}
	if got.Expects != 1 {
		t.Errorf("Expects = %d while parked, want 1", got.Expects)
	}

	// The shard-level rollup agrees with the per-session view.
	var parked int
	for _, snap := range sc.SnapshotShards() {
		parked += snap.ParkedOps
		if snap.Shard != 0 && snap.Shard != 1 {
			t.Errorf("snapshot shard index %d", snap.Shard)
		}
	}
	if parked != 1 {
		t.Errorf("rolled-up ParkedOps = %d, want 1", parked)
	}

	s.Send("release\n")
	if err := <-done; err != nil {
		t.Fatalf("parked expect: %v", err)
	}
}

// TestSnapshotAfterStopDoesNotHang pins the drain contract: a scraper
// that races Scheduler.Stop gets empty snapshots, never a hang.
func TestSnapshotAfterStopDoesNotHang(t *testing.T) {
	sc := NewScheduler(SchedulerOptions{Shards: 4})
	sc.Stop()
	ch := make(chan []ShardSnapshot, 1)
	go func() { ch <- sc.SnapshotShards() }()
	select {
	case snaps := <-ch:
		if len(snaps) != 4 {
			t.Fatalf("got %d snapshots, want 4", len(snaps))
		}
		for _, snap := range snaps {
			if len(snap.Sessions) != 0 || snap.ParkedOps != 0 {
				t.Errorf("stopped shard %d reports live state: %+v", snap.Shard, snap)
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("SnapshotShards hung on a stopped scheduler")
	}
}

// TestSchedulerWakeupHistogram checks the per-shard wakeup clocks feed
// both ShardWakeups (for the registry) and the snapshot's digest.
func TestSchedulerWakeupHistogram(t *testing.T) {
	sc := NewScheduler(SchedulerOptions{Shards: 2})
	defer sc.Stop()
	s, err := SpawnProgram(&Config{Sched: sc, SID: 5}, "w", echoLines)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Send("ping\n")
	if _, err := s.ExpectTimeout(5*time.Second, Exact("echo:ping\n")); err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, h := range sc.ShardWakeups() {
		total += h.Count()
	}
	if total == 0 {
		t.Error("no wakeup observations after a served dialogue")
	}
}

// TestEngineRegisterMetricsRenders is the smoke seam expectd and goexpect
// -stats share: an engine's registry renders a parseable exposition with
// the session and shard families present.
func TestEngineRegisterMetricsRenders(t *testing.T) {
	logUser := false
	eng := NewEngine(EngineOptions{Transport: "pipe", Shards: 2, LogUser: &logUser})
	defer eng.Shutdown()
	reg := metrics.NewRegistry()
	eng.RegisterMetrics(reg)
	out := string(reg.RenderPrometheus())
	for _, want := range []string{
		"# TYPE expect_sessions_live gauge",
		"# TYPE expect_spawns_total counter",
		"# TYPE expect_shard_queue_depth gauge",
		"# TYPE expect_shard_wakeup_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if infos := eng.SessionInfos(); len(infos) != 0 {
		t.Errorf("fresh engine reports %d sessions", len(infos))
	}
}
