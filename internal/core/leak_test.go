package core

import (
	"fmt"
	"io"
	"testing"
	"time"

	"repro/internal/testutil"
)

// TestSessionChurnDoesNotLeakGoroutines spawns and closes many sessions
// and checks the pump goroutines all exit. One pump per session is the
// engine's entire concurrency budget (§7.2); leaks would make long-lived
// scripts (the paper's nightly mail checks) accumulate threads.
func TestSessionChurnDoesNotLeakGoroutines(t *testing.T) {
	defer testutil.LeakCheck(t, 10, 5*time.Second)()
	const churn = 300
	for i := 0; i < churn; i++ {
		s, err := SpawnProgram(nil, fmt.Sprintf("p%d", i), func(stdin io.Reader, stdout io.Writer) error {
			fmt.Fprint(stdout, "hello\n")
			io.Copy(io.Discard, stdin)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.ExpectTimeout(2*time.Second, Glob("*hello*")); err != nil {
			t.Fatal(err)
		}
		s.Close()
		s.WaitPumpDrained()
	}
}

// TestSelectWatcherCleanup verifies Select unregisters its wakeup channel.
func TestSelectWatcherCleanup(t *testing.T) {
	s := spawnEcho(t, nil)
	s.ExpectMatch("*ready*")
	for i := 0; i < 50; i++ {
		Select(time.Millisecond, s)
	}
	s.mu.Lock()
	n := len(s.watchers)
	s.mu.Unlock()
	if n != 0 {
		t.Errorf("%d watchers leaked", n)
	}
}

// TestExpectAnyWatcherCleanup does the same for the combined command.
func TestExpectAnyWatcherCleanup(t *testing.T) {
	s := spawnEcho(t, nil)
	s.ExpectMatch("*ready*")
	for i := 0; i < 50; i++ {
		ExpectAny(time.Millisecond, []*Session{s}, Glob("*nothing-here*"))
	}
	s.mu.Lock()
	n := len(s.watchers)
	s.mu.Unlock()
	if n != 0 {
		t.Errorf("%d watchers leaked", n)
	}
}
