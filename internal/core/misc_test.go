package core

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
)

func TestSessionAccessors(t *testing.T) {
	s := spawnEcho(t, nil)
	if s.Kind() != "virtual" {
		t.Errorf("Kind = %q", s.Kind())
	}
	s.SetTimeout(3 * time.Second)
	if s.Timeout() != 3*time.Second {
		t.Errorf("Timeout = %v", s.Timeout())
	}
	if s.Eof() {
		t.Error("Eof true on a live session")
	}
	s.ExpectMatch("*ready*")
	s.Send("quit\n")
	s.ExpectTimeout(2*time.Second, Glob("*bye*"), EOFCase())
	s.WaitPumpDrained()
	if !s.Eof() {
		t.Error("Eof false after program exit")
	}
}

func TestStreamSessionKind(t *testing.T) {
	in := newScriptedReader("x")
	var out lockedBuffer
	s := NewSession(nil, "user", rwPair{in, &out})
	defer s.Close()
	if s.Kind() != "stream" {
		t.Errorf("Kind = %q", s.Kind())
	}
	if s.Pid() != 0 {
		t.Errorf("Pid = %d", s.Pid())
	}
	if _, err := s.Wait(); err != nil {
		t.Errorf("Wait on stream session: %v", err)
	}
	if err := s.Kill(); err != nil {
		t.Errorf("Kill on stream session: %v", err)
	}
	if err := s.CloseWrite(); err != nil {
		t.Errorf("CloseWrite on stream session: %v", err)
	}
}

func TestSessionCloseWriteDeliversEOF(t *testing.T) {
	sawEOF := make(chan struct{})
	s, err := SpawnProgram(nil, "watcher", func(stdin io.Reader, stdout io.Writer) error {
		io.Copy(io.Discard, stdin)
		close(sawEOF)
		// Still able to speak after stdin closed.
		io.WriteString(stdout, "after-eof\n")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.CloseWrite(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-sawEOF:
	case <-time.After(2 * time.Second):
		t.Fatal("program never saw stdin EOF after CloseWrite")
	}
	if _, err := s.ExpectTimeout(2*time.Second, Glob("*after-eof*")); err != nil {
		t.Fatalf("half-close killed the read side too: %v", err)
	}
}

func TestEngineRunFile(t *testing.T) {
	e, _ := newTestEngine(t)
	path := filepath.Join(t.TempDir(), "s.exp")
	if err := os.WriteFile(path, []byte(`set x from-file; set x`), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := e.RunFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if out != "from-file" {
		t.Errorf("RunFile = %q", out)
	}
	if _, err := e.RunFile("/no/such/script.exp"); err == nil {
		t.Error("RunFile of missing path succeeded")
	}
}

func TestEngineProfilerExposed(t *testing.T) {
	prof := metrics.NewProfiler()
	off := false
	e := NewEngine(EngineOptions{
		UserIn:  newScriptedReader(),
		UserOut: io.Discard,
		LogUser: &off,
		Prof:    prof,
	})
	defer e.Shutdown()
	if e.Profiler() != prof {
		t.Error("Profiler() did not return the configured profiler")
	}
	e.RegisterVirtual("p", lineServer("hi\n", func(string) (string, bool) { return "", true }))
	if _, err := e.Run(`set timeout 5; spawn p; expect {*hi*} {}`); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range prof.Snapshot() {
		if s.Total > 0 {
			found = true
		}
	}
	if !found {
		t.Error("profiler collected nothing")
	}
}

func TestInteractReasonStrings(t *testing.T) {
	for r, want := range map[InteractReason]string{
		InteractEOF:        "process-eof",
		InteractUserEOF:    "user-eof",
		InteractReturn:     "return",
		InteractReason(99): "unknown",
	} {
		if got := r.String(); got != want {
			t.Errorf("reason %d = %q, want %q", int(r), got, want)
		}
	}
}

// TestEscapeCommandLoopEvaluates drives the interact escape interpreter:
// a command with output, an error, continue.
func TestEscapeCommandLoopEvaluates(t *testing.T) {
	e, out := newTestEngine(t,
		"\x1d",            // escape immediately
		"set x 41\n",      // plain command (prints nothing: empty result? returns 41)
		"nosuchcommand\n", // error path
		"incr x\n",        // prints 42
		"continue\n",      // resume interact
		"quit\n",          // then quit the program
	)
	e.RegisterVirtual("echoer", lineServer("ready\n", func(line string) (string, bool) {
		if line == "quit" {
			return "bye\n", false
		}
		return "", true
	}))
	_, err := e.Run("set timeout 5\nspawn echoer\nexpect {*ready*} {}\ninteract \x1d")
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "expect>") {
		t.Errorf("no command prompt: %q", got)
	}
	if !strings.Contains(got, "error: invalid command name") {
		t.Errorf("error not surfaced: %q", got)
	}
	if !strings.Contains(got, "42") {
		t.Errorf("command result not echoed: %q", got)
	}
}

func TestExpectAnyExactAndRegexpCases(t *testing.T) {
	a := spawnSpeaker(t, "a", "code=555 end", 0)
	_, r, err := ExpectAny(2*time.Second, []*Session{a},
		Exact("code="),
		Regexp(`\d+`),
	)
	if err != nil {
		t.Fatal(err)
	}
	if r.Index != 0 || !strings.HasSuffix(r.Text, "code=") {
		t.Errorf("exact case: %+v", r)
	}
	_, r, err = ExpectAny(2*time.Second, []*Session{a}, Regexp(`\d+`))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(r.Text, "555") {
		t.Errorf("regexp case: %+v", r)
	}
}
