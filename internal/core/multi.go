package core

import (
	"time"

	"repro/internal/metrics"
)

// ExpectAny is the combined expect/select the paper's §8 wonders about
// ("How would the buffering work in a combined expect/select command?").
// The answer implemented here: every session keeps its own independent
// match buffer; ExpectAny scans the case list against each session in
// argument order and the first session with a match wins, consuming only
// from that session's buffer. EOF/timeout cases fire only when every
// session is at EOF (for EOFCase) or the shared deadline passes.
//
// It returns the winning session alongside the match.
func ExpectAny(d time.Duration, sessions []*Session, cases ...Case) (*Session, *MatchResult, error) {
	var deadline time.Time
	if d >= 0 {
		deadline = time.Now().Add(d)
	}
	var prof *metrics.Profiler
	if len(sessions) > 0 {
		prof = sessions[0].prof
	}
	prepareCases(cases, prof)
	wake := make(chan struct{}, 1)
	for _, s := range sessions {
		s.addWatcher(wake)
		defer s.removeWatcher(wake)
	}
	for {
		allEOF := len(sessions) > 0
		for _, s := range sessions {
			s.mu.Lock()
			buf := s.mb.bytes()
			stop := s.prof.Start(metrics.PhaseMatch)
			idx, consumed := scanBuffer(buf, cases)
			stop()
			if idx >= 0 {
				text := string(buf[:consumed])
				s.mb.consume(consumed)
				s.mu.Unlock()
				return s, &MatchResult{Index: idx, Case: cases[idx], Text: text}, nil
			}
			if !s.eof {
				allEOF = false
			}
			s.mu.Unlock()
		}
		if allEOF {
			for i, c := range cases {
				if c.Kind == CaseEOF {
					return nil, &MatchResult{Index: i, Case: c, Eof: true}, nil
				}
			}
			return nil, &MatchResult{Index: -1, Eof: true}, ErrEOF
		}
		var remaining time.Duration
		if !deadline.IsZero() {
			remaining = time.Until(deadline)
			if remaining <= 0 {
				for i, c := range cases {
					if c.Kind == CaseTimeout {
						return nil, &MatchResult{Index: i, Case: c, TimedOut: true}, nil
					}
				}
				return nil, &MatchResult{Index: -1, TimedOut: true}, ErrTimeout
			}
			t := time.NewTimer(remaining)
			select {
			case <-wake:
				t.Stop()
			case <-t.C:
			}
			continue
		}
		<-wake
	}
}

// scanBuffer checks prepared cases against a raw buffer (rescan strategy);
// it is scanCases without incremental state, kept as the multi-session
// entry point.
func scanBuffer(buf []byte, cases []Case) (int, int) {
	return scanCases(buf, cases, false)
}
