package core

import (
	"bytes"
	"time"

	"repro/internal/metrics"
	"repro/internal/pattern"
)

// ExpectAny is the combined expect/select the paper's §8 wonders about
// ("How would the buffering work in a combined expect/select command?").
// The answer implemented here: every session keeps its own independent
// match buffer; ExpectAny scans the case list against each session in
// argument order and the first session with a match wins, consuming only
// from that session's buffer. EOF/timeout cases fire only when every
// session is at EOF (for EOFCase) or the shared deadline passes.
//
// It returns the winning session alongside the match.
func ExpectAny(d time.Duration, sessions []*Session, cases ...Case) (*Session, *MatchResult, error) {
	var deadline time.Time
	if d >= 0 {
		deadline = time.Now().Add(d)
	}
	wake := make(chan struct{}, 1)
	for _, s := range sessions {
		s.addWatcher(wake)
		defer s.removeWatcher(wake)
	}
	for {
		allEOF := len(sessions) > 0
		for _, s := range sessions {
			s.mu.Lock()
			stop := s.prof.Start(metrics.PhaseMatch)
			idx, consumed := scanBuffer(s.buf, cases)
			stop()
			if idx >= 0 {
				text := string(s.buf[:consumed])
				s.buf = s.buf[consumed:]
				if len(s.buf) == 0 {
					s.buf = nil
				}
				s.mu.Unlock()
				return s, &MatchResult{Index: idx, Case: cases[idx], Text: text}, nil
			}
			if !s.eof {
				allEOF = false
			}
			s.mu.Unlock()
		}
		if allEOF {
			for i, c := range cases {
				if c.Kind == CaseEOF {
					return nil, &MatchResult{Index: i, Case: c, Eof: true}, nil
				}
			}
			return nil, &MatchResult{Index: -1, Eof: true}, ErrEOF
		}
		var remaining time.Duration
		if !deadline.IsZero() {
			remaining = time.Until(deadline)
			if remaining <= 0 {
				for i, c := range cases {
					if c.Kind == CaseTimeout {
						return nil, &MatchResult{Index: i, Case: c, TimedOut: true}, nil
					}
				}
				return nil, &MatchResult{Index: -1, TimedOut: true}, ErrTimeout
			}
			t := time.NewTimer(remaining)
			select {
			case <-wake:
				t.Stop()
			case <-t.C:
			}
			continue
		}
		<-wake
	}
}

// scanBuffer checks cases against a raw buffer (rescan strategy); it
// mirrors Session.scanLocked for the multi-session path.
func scanBuffer(buf []byte, cases []Case) (int, int) {
	for i, c := range cases {
		switch c.Kind {
		case CaseGlob:
			if pattern.Match(c.Pattern, string(buf)) {
				return i, len(buf)
			}
		case CaseExact:
			if idx := bytes.Index(buf, []byte(c.Pattern)); idx >= 0 {
				return i, idx + len(c.Pattern)
			}
		case CaseRegexp:
			if loc := c.re.FindIndex(buf); loc != nil {
				return i, loc[1]
			}
		}
	}
	return -1, 0
}
