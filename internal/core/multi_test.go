package core

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

func spawnSpeaker(t *testing.T, name, line string, delay time.Duration) *Session {
	t.Helper()
	s, err := SpawnProgram(nil, name, func(stdin io.Reader, stdout io.Writer) error {
		if delay > 0 {
			time.Sleep(delay)
		}
		fmt.Fprintln(stdout, line)
		io.Copy(io.Discard, stdin)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// spawnGated starts a speaker that stays silent until the returned
// release is called — deterministic "hasn't spoken yet", where a
// sleep-delayed speaker would turn into a race on a loaded machine.
// Cleanup releases it regardless, so the program goroutine always
// unwinds.
func spawnGated(t *testing.T, name, line string) (*Session, func()) {
	t.Helper()
	gate := make(chan struct{})
	var once sync.Once
	release := func() { once.Do(func() { close(gate) }) }
	s, err := SpawnProgram(nil, name, func(stdin io.Reader, stdout io.Writer) error {
		<-gate
		fmt.Fprintln(stdout, line)
		io.Copy(io.Discard, stdin)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { release(); s.Close() })
	return s, release
}

func TestExpectAnyFirstSpeakerWins(t *testing.T) {
	slow, _ := spawnGated(t, "slow", "slow-data")
	fast := spawnSpeaker(t, "fast", "fast-data", 0)
	winner, r, err := ExpectAny(2*time.Second, []*Session{slow, fast},
		Glob("*data*"))
	if err != nil {
		t.Fatalf("ExpectAny: %v", err)
	}
	if winner != fast {
		t.Errorf("winner = %s, want fast", winner.Name())
	}
	if !strings.Contains(r.Text, "fast-data") {
		t.Errorf("Text = %q", r.Text)
	}
}

func TestExpectAnyConsumesOnlyWinner(t *testing.T) {
	a := spawnSpeaker(t, "a", "alpha", 0)
	b := spawnSpeaker(t, "b", "beta", 0)
	// Wait until both have data so consumption is observable.
	deadline := time.Now().Add(2 * time.Second)
	for (a.Buffer() == "" || b.Buffer() == "") && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	winner, _, err := ExpectAny(2*time.Second, []*Session{a, b}, Glob("*alpha*"), Glob("*beta*"))
	if err != nil {
		t.Fatal(err)
	}
	loser := b
	if winner == b {
		loser = a
	}
	if winner.Buffer() != "" {
		t.Errorf("winner buffer not consumed: %q", winner.Buffer())
	}
	if loser.Buffer() == "" {
		t.Error("loser buffer consumed — buffering must be per-session (§8)")
	}
}

func TestExpectAnyCaseSelection(t *testing.T) {
	a := spawnSpeaker(t, "a", "only-here", 0)
	quiet, _ := spawnGated(t, "quiet", "")
	_, r, err := ExpectAny(2*time.Second, []*Session{quiet, a},
		Glob("*nothing*"), Glob("*only-here*"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Index != 1 {
		t.Errorf("case index = %d, want 1", r.Index)
	}
}

func TestExpectAnyTimeout(t *testing.T) {
	quiet, _ := spawnGated(t, "quiet", "")
	start := time.Now()
	_, _, err := ExpectAny(80*time.Millisecond, []*Session{quiet}, Glob("*x*"))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v", err)
	}
	if time.Since(start) < 70*time.Millisecond {
		t.Error("returned too early")
	}
	// With an explicit timeout case it completes normally.
	_, r, err := ExpectAny(80*time.Millisecond, []*Session{quiet}, Glob("*x*"), TimeoutCase())
	if err != nil || !r.TimedOut {
		t.Errorf("timeout case: %v %+v", err, r)
	}
}

func TestExpectAnyAllEOF(t *testing.T) {
	a := spawnSpeaker(t, "a", "", 0)
	b := spawnSpeaker(t, "b", "", 0)
	a.Close()
	b.Close()
	a.WaitPumpDrained()
	b.WaitPumpDrained()
	_, _, err := ExpectAny(time.Second, []*Session{a, b}, Glob("*x*"))
	if !errors.Is(err, ErrEOF) {
		t.Fatalf("err = %v, want ErrEOF", err)
	}
	_, r, err := ExpectAny(time.Second, []*Session{a, b}, Glob("*x*"), EOFCase())
	if err != nil || !r.Eof {
		t.Errorf("eof case: %v %+v", err, r)
	}
}

func TestExpectAnyOneEOFOneLive(t *testing.T) {
	dead := spawnSpeaker(t, "dead", "", 0)
	dead.Close()
	dead.WaitPumpDrained()
	dead.ClearBuffer()
	live := spawnSpeaker(t, "live", "eventually", 100*time.Millisecond)
	winner, r, err := ExpectAny(2*time.Second, []*Session{dead, live}, Glob("*eventually*"))
	if err != nil {
		t.Fatalf("ExpectAny with one dead peer: %v", err)
	}
	if winner != live || !strings.Contains(r.Text, "eventually") {
		t.Errorf("winner=%v text=%q", winner.Name(), r.Text)
	}
}

// TestScriptExpectAny exercises the script-level combined expect/select:
// spawn_id follows the winner.
func TestScriptExpectAny(t *testing.T) {
	e, _ := newTestEngine(t)
	e.RegisterVirtual("fast", func(stdin io.Reader, stdout io.Writer) error {
		fmt.Fprintln(stdout, "from-fast")
		io.Copy(io.Discard, stdin)
		return nil
	})
	// Gated rather than sleep-delayed: "slow" must not have spoken when
	// expect_any runs, however loaded the machine is; cleanup releases it.
	gate := make(chan struct{})
	t.Cleanup(func() { close(gate) })
	e.RegisterVirtual("slow", func(stdin io.Reader, stdout io.Writer) error {
		<-gate
		fmt.Fprintln(stdout, "from-slow")
		io.Copy(io.Discard, stdin)
		return nil
	})
	out, err := e.Run(`
		set timeout 5
		spawn slow
		set s $spawn_id
		spawn fast
		set f $spawn_id
		expect_any "$s $f" {*from-fast*} {set who fast} {*from-slow*} {set who slow}
		list $who [expr {$spawn_id == $f}]
	`)
	if err != nil {
		t.Fatalf("script: %v", err)
	}
	if out != "fast 1" {
		t.Errorf("result = %q, want 'fast 1' (winner selected and spawn_id switched)", out)
	}
}
