package core

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/faultify"
	"repro/internal/netx"
	"repro/internal/testutil"
	"repro/internal/trace"
)

// promptProg is a minimal login-shaped dialogue partner: prompt, read a
// line, greet, then drain until EOF.
func promptProg(stdin io.Reader, stdout io.Writer) error {
	io.WriteString(stdout, "login: ")
	r := bufio.NewReader(stdin)
	for {
		b, err := r.ReadByte()
		if err != nil {
			return nil
		}
		if b == '\r' || b == '\n' {
			break
		}
	}
	io.WriteString(stdout, "Welcome!\r\n")
	io.Copy(io.Discard, r)
	return nil
}

func newLoopback(t *testing.T) *netx.Server {
	t.Helper()
	srv, err := netx.NewServer("127.0.0.1:0", promptProg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Shutdown(5 * time.Second) })
	return srv
}

func quietEngine(t *testing.T, opt EngineOptions) *Engine {
	t.Helper()
	off := false
	opt.LogUser = &off
	opt.UserIn = strings.NewReader("")
	opt.UserOut = io.Discard
	eng := NewEngine(opt)
	t.Cleanup(eng.Shutdown)
	return eng
}

// TestSpawnNetworkScript drives the full script surface over a socket:
// spawn -network dials, expect/send run the dialogue, close hangs up.
func TestSpawnNetworkScript(t *testing.T) {
	defer testutil.LeakCheck(t, 10, 5*time.Second)()
	srv := newLoopback(t)
	eng := quietEngine(t, EngineOptions{})

	script := fmt.Sprintf(`
set timeout 5
spawn -network %s
expect {*login:*} {} timeout {error "no prompt"}
send "don\r"
expect {*Welcome*} {} timeout {error "no greeting"}
close
`, srv.Addr())
	if _, err := eng.Run(script); err != nil {
		t.Fatalf("script: %v", err)
	}
}

// TestRegisterRemoteKeepsProgramName pins that a remote registration is
// spawned by program name (transcripts and traces stay in program terms)
// while dialing under the hood, and that the spawn is recorded with the
// network transport kind.
func TestRegisterRemoteKeepsProgramName(t *testing.T) {
	defer testutil.LeakCheck(t, 10, 5*time.Second)()
	srv := newLoopback(t)
	eng := quietEngine(t, EngineOptions{})
	eng.RegisterRemote("login-sim", srv.Addr())

	if _, err := eng.Run(`
set timeout 5
spawn login-sim
expect {*login:*} {} timeout {error "no prompt"}
send "guest\r"
expect {*Welcome*} {} timeout {error "no greeting"}
close
`); err != nil {
		t.Fatalf("script: %v", err)
	}
	var spawned []trace.Event
	for _, ev := range eng.Recorder().Events() {
		if ev.Kind == trace.KindSpawn {
			spawned = append(spawned, ev)
		}
	}
	if len(spawned) != 1 {
		t.Fatalf("want 1 spawn event, got %d", len(spawned))
	}
	if got, kind := spawned[0].Text(), spawned[0].Aux(); got != "login-sim" || kind != "network" {
		t.Fatalf("spawn event = %q/%q; want login-sim/network", got, kind)
	}
}

// TestNetworkSessionSharded runs socket sessions under the sharded
// scheduler: the unwrapped netx transport is event-capable, so the shard
// loop owns it through the TryRead/SetReadNotify doorbell with no feeder
// goroutine.
func TestNetworkSessionSharded(t *testing.T) {
	defer testutil.LeakCheck(t, 10, 5*time.Second)()
	srv := newLoopback(t)
	eng := quietEngine(t, EngineOptions{Shards: 4})

	for i := 0; i < 8; i++ {
		s, _, err := eng.SpawnRemote("", srv.Addr())
		if err != nil {
			t.Fatalf("spawn %d: %v", i, err)
		}
		if !s.p.EventCapable() {
			t.Fatal("unwrapped socket transport should be event-capable")
		}
		if _, err := s.Expect(Exact("login: ")); err != nil {
			t.Fatalf("expect %d: %v", i, err)
		}
		if err := s.Send("don\r"); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		if _, err := s.Expect(Exact("Welcome!")); err != nil {
			t.Fatalf("welcome %d: %v", i, err)
		}
		s.Close()
	}
}

// TestFaultifyComposesOverSocket replays a cut-after-bytes fault schedule
// on the client side of a socket session: the wrapper truncates the
// stream mid-dialogue and the engine sees a surprise EOF, exactly as it
// would on a virtual transport.
func TestFaultifyComposesOverSocket(t *testing.T) {
	defer testutil.LeakCheck(t, 10, 5*time.Second)()
	srv := newLoopback(t)
	eng := quietEngine(t, EngineOptions{
		SpawnWrap: faultify.Wrapper(faultify.Schedule{Seed: 9, CutAfterBytes: 4}, nil),
	})

	s, _, err := eng.SpawnRemote("", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	_, err = s.Expect(Exact("login: "))
	if err == nil {
		t.Fatal("cut at 4 bytes should prevent the full prompt from matching")
	}
	var ee *ExpectError
	if !errors.As(err, &ee) || !errors.Is(err, ErrEOF) {
		t.Fatalf("want ExpectError wrapping ErrEOF, got %v", err)
	}
}
