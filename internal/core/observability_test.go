package core

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/trace"
)

// The observability layer's session-level contract: incidents (timeouts,
// surprise EOFs) surface as rich errors carrying elapsed time, the
// unmatched buffer tail, and the bounded JSONL flight dump — and the
// instrumentation costs nothing when the recorder is disabled.

func spawnTraced(t *testing.T, rec *trace.Recorder, program func(io.Reader, io.Writer) error) *Session {
	t.Helper()
	s, err := SpawnProgram(&Config{Rec: rec, SID: 7}, "traced", program)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestForcedTimeoutDumpHasUnmatchedAttempts(t *testing.T) {
	rec := trace.New(0)
	rec.SetRecording(true)
	s := spawnTraced(t, rec, func(stdin io.Reader, stdout io.Writer) error {
		io.WriteString(stdout, "a wall of unrelated chatter, no prompt here")
		io.Copy(io.Discard, stdin)
		return nil
	})

	start := time.Now()
	_, err := s.ExpectTimeout(300*time.Millisecond, Exact("NEVER-APPEARS"))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	var ee *ExpectError
	if !errors.As(err, &ee) {
		t.Fatalf("err %T does not unwrap to *ExpectError", err)
	}
	if ee.Elapsed < 300*time.Millisecond || ee.Elapsed > time.Since(start)+time.Second {
		t.Errorf("Elapsed = %s, want >= the 300ms deadline", ee.Elapsed)
	}
	if !strings.Contains(ee.BufferTail, "no prompt here") {
		t.Errorf("BufferTail = %q, want the unmatched tail", ee.BufferTail)
	}
	msg := err.Error()
	for _, want := range []string{"after", "unmatched buffer", "spawn_id 7"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error message missing %q: %s", want, msg)
		}
	}

	events, perr := trace.ParseJSONL(ee.Dump)
	if perr != nil {
		t.Fatalf("dump is not parseable JSONL: %v", perr)
	}
	attempts, timeouts := 0, 0
	for _, e := range events {
		switch e.Kind {
		case "attempt":
			if e.OK {
				t.Errorf("attempt marked matched in a timed-out expect: %+v", e)
			}
			if e.Text != "NEVER-APPEARS" {
				t.Errorf("attempt pattern = %q, want NEVER-APPEARS", e.Text)
			}
			attempts++
		case "timeout":
			timeouts++
		}
	}
	if attempts == 0 {
		t.Error("dump has no unmatched pattern attempts")
	}
	if timeouts == 0 {
		t.Error("dump has no timeout event")
	}
}

func TestSurpriseEOFErrorCarriesDiagnostics(t *testing.T) {
	rec := trace.New(0)
	rec.SetRecording(true)
	s := spawnTraced(t, rec, func(stdin io.Reader, stdout io.Writer) error {
		io.WriteString(stdout, "user na") // hangs up mid-pattern
		return nil
	})

	_, err := s.ExpectTimeout(5*time.Second, Glob("*username:*"))
	if !errors.Is(err, ErrEOF) {
		t.Fatalf("err = %v, want ErrEOF", err)
	}
	var ee *ExpectError
	if !errors.As(err, &ee) {
		t.Fatalf("err %T does not unwrap to *ExpectError", err)
	}
	if !strings.Contains(ee.BufferTail, "user na") {
		t.Errorf("BufferTail = %q, want the partial pattern", ee.BufferTail)
	}
	events, perr := trace.ParseJSONL(ee.Dump)
	if perr != nil {
		t.Fatalf("dump: %v", perr)
	}
	kinds := map[string]int{}
	for _, e := range events {
		kinds[e.Kind]++
	}
	for _, want := range []string{"spawn", "read", "attempt", "eof"} {
		if kinds[want] == 0 {
			t.Errorf("dump missing %q events; got %v", want, kinds)
		}
	}
}

func TestExpInternalMidScript(t *testing.T) {
	e, _ := newTestEngine(t)
	e.RegisterVirtual("phased", lineServer("phase-one\n", func(line string) (string, bool) {
		return "phase-two\n", true
	}))
	var diag lockedBuffer
	e.Interp.Stderr = &diag
	_, err := e.Run(`
		set timeout 5
		spawn phased
		exp_internal 1
		expect {*phase-one*} {}
		exp_internal 0
		send go\n
		expect {*phase-two*} {}
	`)
	if err != nil {
		t.Fatal(err)
	}
	out := diag.String()
	if !strings.Contains(out, `match pattern "*phase-one*"`) {
		t.Errorf("diag missed the attempt while exp_internal was on:\n%s", out)
	}
	if strings.Contains(out, "phase-two") {
		t.Errorf("diag leaked events after exp_internal 0:\n%s", out)
	}

	// Bad arguments are script errors, same as real expect.
	for _, bad := range []string{`exp_internal`, `exp_internal 3`, `exp_internal x`} {
		if _, err := e.Run(bad); err == nil {
			t.Errorf("%q succeeded, want error", bad)
		}
	}
}

func TestLogFileAndDiagFanOut(t *testing.T) {
	// log_file and exp_internal observe the same dialogue through two
	// independent taps; turning both on must duplicate nothing and lose
	// nothing on either stream.
	e, _ := newTestEngine(t)
	e.RegisterVirtual("p", greeter("FAN-OUT-BANNER"))
	var diag lockedBuffer
	e.Interp.Stderr = &diag
	path := t.TempDir() + "/fan.log"
	_, err := e.Run(`
		exp_internal 1
		log_file ` + path + `
		set timeout 5
		spawn p
		expect {*login:*} {}
		log_file
		exp_internal 0
	`)
	if err != nil {
		t.Fatal(err)
	}
	logged, _ := readFileString(path)
	if !strings.Contains(logged, "FAN-OUT-BANNER") {
		t.Errorf("log_file missed the dialogue: %q", logged)
	}
	out := diag.String()
	if !strings.Contains(out, `match pattern "*login:*"`) {
		t.Errorf("diag stream missed the attempt:\n%s", out)
	}
	if strings.Contains(logged, "match pattern") {
		t.Errorf("diagnostics leaked into the dialogue log: %q", logged)
	}
}

func TestDisabledRecorderWakeupAllocationFree(t *testing.T) {
	// The wakeup hot path with a present-but-disabled recorder: the mode
	// check plus the untraced scan, exactly as ExpectTimeout runs them.
	s := &Session{rec: trace.New(0), sid: 3}
	cases := []Case{Glob("*NEEDLE[0-9]*"), Exact("also absent")}
	prepareCases(cases, nil)
	buf := bytes.Repeat([]byte("abcdefgh"), 8*1024)
	if allocs := testing.AllocsPerRun(100, func() {
		var idx int
		if s.rec.On() {
			idx, _ = s.scanCasesTraced(buf, cases, false)
		} else {
			idx, _ = scanCases(buf, cases, false)
		}
		if idx >= 0 {
			t.Fatal("unexpected match")
		}
	}); allocs > 0 {
		t.Errorf("disabled-recorder wakeup allocates %.1f objects, want 0", allocs)
	}
}

func TestEngineDefaultRecorderAlwaysArmed(t *testing.T) {
	// Engines arm ring recording by default so incident dumps always
	// exist; exp_internal 0 must stop narration without stopping the ring.
	e, _ := newTestEngine(t)
	rec := e.Recorder()
	if rec == nil || !rec.Recording() {
		t.Fatal("engine recorder not armed by default")
	}
	e.RegisterVirtual("p", greeter("ARMED"))
	if _, err := e.Run(`
		set timeout 5
		spawn p
		expect {*login:*} {}
	`); err != nil {
		t.Fatal(err)
	}
	events, err := trace.ParseJSONL(rec.Dump(64))
	if err != nil || len(events) == 0 {
		t.Fatalf("default recorder captured nothing (err=%v)", err)
	}
	kinds := map[string]bool{}
	for _, ev := range events {
		kinds[ev.Kind] = true
	}
	for _, want := range []string{"spawn", "read", "match", "eval"} {
		if !kinds[want] {
			t.Errorf("default recording missing %q events; got %v", want, kinds)
		}
	}
}
