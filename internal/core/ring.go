package core

// matchBuffer is the session's bounded match buffer, stored as a gap
// buffer: live bytes occupy data[off:] of a backing array capped at about
// twice the match_max bound. The original implementation re-sliced and
// copied the whole buffer on every trim (`append(buf[:0:0], buf[over:]...)`),
// making a sustained torrent of output O(n·match_max); here forgetting
// bytes from the front is a single offset bump, and the backing array is
// compacted only when appends run out of room — each compaction moves at
// most max bytes and buys at least max bytes of headroom, so the total
// copying over an N-byte stream is O(N).
//
// The live region stays contiguous, which is what lets the match loop run
// compiled patterns directly over bytes() without assembling a string.
type matchBuffer struct {
	max  int    // match_max bound on live bytes
	data []byte // backing array; live bytes are data[off:]
	off  int    // start of the live region
	// free, when non-nil, is the lease on the current backing array (a
	// pooled netx segment adopted by appendOwned). Release is called
	// exactly once, when the buffer stops using that backing — reset,
	// realloc, or replacement by the next adoption — after which data must
	// not alias the old array. Held as an interface rather than a bound
	// method so adoption stays allocation-free.
	free owned
}

// owned is the lease half of proc.Owned, restated locally so the gap
// buffer stays free of transport imports.
type owned interface{ Release() }

// releaseBacking returns adopted backing to its owner, if any.
func (b *matchBuffer) releaseBacking() {
	if b.free != nil {
		b.free.Release()
		b.free = nil
	}
}

// reset drops all live bytes and rewinds the backing array. Owned backing
// is returned to its pool and the slice dropped — the next append starts
// from scratch rather than writing into memory another holder may now own.
func (b *matchBuffer) reset() {
	if b.free != nil {
		b.releaseBacking()
		b.data, b.off = nil, 0
		return
	}
	b.data = b.data[:0]
	b.off = 0
}

// length returns the number of live bytes.
func (b *matchBuffer) length() int { return len(b.data) - b.off }

// bytes returns the live region as a contiguous view into the backing
// array. The view is invalidated by the next append, consume, or setMax;
// callers needing the data after releasing the session lock must copy.
func (b *matchBuffer) bytes() []byte { return b.data[b.off:] }

// appendData adds p to the buffer, forgetting the oldest bytes as needed to
// keep at most max live, and reports how many bytes were forgotten.
// Trimming happens before the copy so bytes that cannot survive the append
// are never moved into the backing array.
func (b *matchBuffer) appendData(p []byte) (forgot int) {
	if len(p) >= b.max {
		// The chunk alone overflows the bound: everything currently live is
		// forgotten, along with the front of the chunk itself.
		forgot = b.length() + len(p) - b.max
		p = p[len(p)-b.max:]
		b.reset()
	} else if over := b.length() + len(p) - b.max; over > 0 {
		// Forget the earliest bytes, per §3.1 — an offset bump, not a copy.
		b.off += over
		forgot = over
	}
	need := b.length() + len(p)
	if len(b.data)+len(p) > cap(b.data) {
		if need > cap(b.data) {
			// Double toward the 2*max ceiling; sessions that never buffer
			// much never commit the full backing array.
			newCap := 2 * cap(b.data)
			if newCap < 64 {
				newCap = 64
			}
			if newCap > 2*b.max {
				newCap = 2 * b.max
			}
			if newCap < need {
				newCap = need
			}
			nd := make([]byte, b.length(), newCap)
			copy(nd, b.bytes())
			b.releaseBacking()
			b.data, b.off = nd, 0
		} else {
			// Room exists at the front: compact live bytes down. With the
			// backing at 2*max and live bytes trimmed to at most max, each
			// compaction frees at least max bytes of append headroom.
			n := copy(b.data, b.bytes())
			b.data, b.off = b.data[:n], 0
		}
	}
	b.data = append(b.data, p...)
	return forgot
}

// consume removes n bytes from the front (a successful match).
func (b *matchBuffer) consume(n int) {
	b.off += n
	if b.off >= len(b.data) {
		b.reset()
	}
}

// take returns a copy of the live bytes and empties the buffer. It copies
// because callers (the interact drain) write the result after releasing
// the session lock, while the pump may be appending into the same backing.
func (b *matchBuffer) take() []byte {
	if b.length() == 0 {
		b.reset()
		return nil
	}
	out := make([]byte, b.length())
	copy(out, b.bytes())
	b.reset()
	return out
}

// setMax changes the bound, forgetting from the front if the live region
// now overflows, and reports how many bytes were forgotten. If the backing
// array is far larger than the new bound it is reallocated so a shrink
// actually releases memory.
func (b *matchBuffer) setMax(n int) (forgot int) {
	b.max = n
	if over := b.length() - n; over > 0 {
		b.off += over
		forgot = over
	}
	if cap(b.data) > 2*n && cap(b.data) > 4096 {
		nd := make([]byte, b.length())
		copy(nd, b.bytes())
		b.releaseBacking()
		b.data, b.off = nd, 0
	}
	return forgot
}

// appendOwned adds p — the payload of a leased buffer whose lease is o —
// preferring to adopt the buffer as the gap buffer's backing
// outright instead of copying. Adoption happens when the window is empty,
// which is the steady state of a pattern-matching dialogue: each match
// consumes the window, so the next chunk lands in an empty buffer and its
// segment becomes the backing with zero bytes moved. A non-empty window
// (partial match pending) falls back to the copying appendData and
// reports adopted=false so the caller can release the lease itself.
//
// On adoption the buffer takes over the lease: Release fires when the
// window forgets the backing (reset, consume-to-empty, realloc growth,
// shrink, or the next adoption). Trimming to max stays an offset bump
// even on adopted backing.
func (b *matchBuffer) appendOwned(p []byte, o owned) (forgot int, adopted bool) {
	if o == nil || b.length() > 0 {
		return b.appendData(p), false
	}
	b.releaseBacking()
	b.data, b.off, b.free = p, 0, o
	if over := len(p) - b.max; over > 0 {
		b.off = over
		forgot = over
	}
	return forgot, true
}
