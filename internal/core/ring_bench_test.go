package core

import (
	"bytes"
	"testing"
)

// The direct gap-buffer vs copy-shift comparison: identical append streams
// through the real matchBuffer and through the seed's enforcement loop.

func BenchmarkRingBufferGapAppend(b *testing.B) {
	mb := matchBuffer{max: DefaultMatchMax}
	chunk := bytes.Repeat([]byte("x"), 64)
	// Warm until the backing array reaches steady state.
	for i := 0; i < 100; i++ {
		mb.appendData(chunk)
	}
	b.SetBytes(int64(len(chunk)))
	b.ReportAllocs()
	b.ResetTimer()
	for k := 0; k < b.N; k++ {
		mb.appendData(chunk)
	}
}

func BenchmarkRingBufferCopyShiftAppend(b *testing.B) {
	chunk := bytes.Repeat([]byte("x"), 64)
	var buf []byte
	b.SetBytes(int64(len(chunk)))
	b.ReportAllocs()
	for k := 0; k < b.N; k++ {
		buf = append(buf, chunk...)
		if over := len(buf) - DefaultMatchMax; over > 0 {
			buf = append(buf[:0:0], buf[over:]...)
		}
	}
}

// TestExpectWakeupAllocationFree pins the satellite claim: once cases are
// prepared, a wakeup that scans the buffer and finds nothing allocates
// nothing, and appending a chunk to a warm buffer allocates nothing.
func TestExpectWakeupAllocationFree(t *testing.T) {
	cases := []Case{Glob("*NEEDLE[0-9]*"), Exact("also absent")}
	prepareCases(cases, nil)
	buf := bytes.Repeat([]byte("abcdefgh"), 8*1024) // 64 KiB, no match
	if allocs := testing.AllocsPerRun(100, func() {
		if idx, _ := scanCases(buf, cases, false); idx >= 0 {
			t.Fatal("unexpected match")
		}
	}); allocs > 0 {
		t.Errorf("scanCases allocates %.1f objects per wakeup, want 0", allocs)
	}

	mb := matchBuffer{max: DefaultMatchMax}
	chunk := bytes.Repeat([]byte("y"), 64)
	for i := 0; i < 100; i++ {
		mb.appendData(chunk)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		mb.appendData(chunk)
	}); allocs > 0 {
		t.Errorf("warm appendData allocates %.1f objects per chunk, want 0", allocs)
	}
}
