package core

import (
	"bytes"
	"testing"
)

// fakeLease counts Release calls so tests can pin the exactly-once lease
// contract of adopted backing.
type fakeLease struct{ released int }

func (f *fakeLease) Release() { f.released++ }

// TestAppendOwnedAdoptsWhenEmpty: the steady state — empty window, owned
// chunk — must adopt the buffer as backing with no copy and no release.
func TestAppendOwnedAdoptsWhenEmpty(t *testing.T) {
	b := matchBuffer{max: 100}
	lease := &fakeLease{}
	p := []byte("ding")
	forgot, adopted := b.appendOwned(p, lease)
	if !adopted || forgot != 0 {
		t.Fatalf("appendOwned = (%d, %v), want (0, true)", forgot, adopted)
	}
	if &b.data[0] != &p[0] {
		t.Fatal("adoption copied instead of taking the chunk as backing")
	}
	if lease.released != 0 {
		t.Fatalf("lease released %d times while backing is live", lease.released)
	}
	if string(b.bytes()) != "ding" {
		t.Fatalf("bytes() = %q", b.bytes())
	}
}

// TestAppendOwnedCopiesWhenWindowLive: a pending partial match means the
// window is non-empty; the owned chunk must be appended by copy, with
// adopted=false telling the caller the lease is still theirs to release.
func TestAppendOwnedCopiesWhenWindowLive(t *testing.T) {
	b := matchBuffer{max: 100}
	b.appendData([]byte("partial-"))
	lease := &fakeLease{}
	p := []byte("match")
	forgot, adopted := b.appendOwned(p, lease)
	if adopted || forgot != 0 {
		t.Fatalf("appendOwned = (%d, %v), want (0, false)", forgot, adopted)
	}
	if string(b.bytes()) != "partial-match" {
		t.Fatalf("bytes() = %q", b.bytes())
	}
	if b.free != nil {
		t.Fatal("copying append must not hold the lease")
	}
	if lease.released != 0 {
		t.Fatal("appendOwned released a lease it declined to adopt")
	}
	// The copy must not alias the chunk: mutating it afterwards (the
	// producer reusing the segment) cannot reach the window.
	p[0] = 'X'
	if string(b.bytes()) != "partial-match" {
		t.Fatalf("window aliases a declined chunk: %q", b.bytes())
	}
}

// TestAppendOwnedNilLeaseCopies: a nil lease is the plain copying path.
func TestAppendOwnedNilLeaseCopies(t *testing.T) {
	b := matchBuffer{max: 100}
	if _, adopted := b.appendOwned([]byte("plain"), nil); adopted {
		t.Fatal("nil lease must not report adoption")
	}
	if string(b.bytes()) != "plain" {
		t.Fatalf("bytes() = %q", b.bytes())
	}
}

// TestAppendOwnedOversizeTrimsByOffset: an adopted chunk larger than
// match_max is trimmed to the newest max bytes by an offset bump — no
// copy, and the forgotten count matches §3.1 semantics.
func TestAppendOwnedOversizeTrimsByOffset(t *testing.T) {
	b := matchBuffer{max: 8}
	lease := &fakeLease{}
	p := []byte("0123456789abcdef")
	forgot, adopted := b.appendOwned(p, lease)
	if !adopted || forgot != 8 {
		t.Fatalf("appendOwned = (%d, %v), want (8, true)", forgot, adopted)
	}
	if string(b.bytes()) != "89abcdef" {
		t.Fatalf("bytes() = %q, want newest 8", b.bytes())
	}
	if &b.data[0] != &p[0] {
		t.Fatal("oversize trim copied instead of bumping the offset")
	}
	if lease.released != 0 {
		t.Fatal("lease released while trimmed backing is live")
	}
}

// TestAppendOwnedReleaseOnForget walks every way the window forgets
// adopted backing and pins the exactly-once Release on each.
func TestAppendOwnedReleaseOnForget(t *testing.T) {
	t.Run("reset", func(t *testing.T) {
		b := matchBuffer{max: 100}
		lease := &fakeLease{}
		b.appendOwned([]byte("x"), lease)
		b.reset()
		if lease.released != 1 {
			t.Fatalf("released %d times, want 1", lease.released)
		}
		if b.data != nil || b.free != nil {
			t.Fatal("reset left adopted backing attached")
		}
	})
	t.Run("consume-to-empty", func(t *testing.T) {
		b := matchBuffer{max: 100}
		lease := &fakeLease{}
		b.appendOwned([]byte("match"), lease)
		b.consume(5)
		if lease.released != 1 {
			t.Fatalf("released %d times, want 1", lease.released)
		}
	})
	t.Run("take", func(t *testing.T) {
		b := matchBuffer{max: 100}
		lease := &fakeLease{}
		b.appendOwned([]byte("drain"), lease)
		out := b.take()
		if lease.released != 1 {
			t.Fatalf("released %d times, want 1", lease.released)
		}
		if string(out) != "drain" {
			t.Fatalf("take() = %q", out)
		}
		// take copies precisely because the backing may be gone.
		if len(b.data) != 0 && &out[0] == &b.data[0] {
			t.Fatal("take aliased released backing")
		}
	})
	t.Run("realloc-growth", func(t *testing.T) {
		b := matchBuffer{max: 1 << 16}
		lease := &fakeLease{}
		seg := bytes.Repeat([]byte("a"), 64)
		b.appendOwned(seg, lease)
		// A follow-up append that outgrows the 64-byte adopted backing
		// must copy out and release the lease.
		b.appendData(bytes.Repeat([]byte("b"), 256))
		if lease.released != 1 {
			t.Fatalf("released %d times after realloc, want 1", lease.released)
		}
		if b.length() != 64+256 {
			t.Fatalf("length = %d", b.length())
		}
	})
	t.Run("setmax-shrink", func(t *testing.T) {
		b := matchBuffer{max: 1 << 16}
		lease := &fakeLease{}
		b.appendOwned(bytes.Repeat([]byte("c"), 16384), lease)
		forgot := b.setMax(100)
		if lease.released != 1 {
			t.Fatalf("released %d times after shrink realloc, want 1", lease.released)
		}
		if forgot != 16384-100 || b.length() != 100 {
			t.Fatalf("forgot %d, length %d", forgot, b.length())
		}
	})
	t.Run("next-adoption", func(t *testing.T) {
		b := matchBuffer{max: 100}
		first := &fakeLease{}
		b.appendOwned([]byte("one"), first)
		b.consume(3) // window empty again; backing released at consume
		second := &fakeLease{}
		if _, adopted := b.appendOwned([]byte("two"), second); !adopted {
			t.Fatal("second adoption declined")
		}
		if first.released != 1 || second.released != 0 {
			t.Fatalf("leases released (%d, %d), want (1, 0)", first.released, second.released)
		}
		b.reset()
		if second.released != 1 {
			t.Fatalf("second lease released %d times, want 1", second.released)
		}
	})
}

// TestAppendOwnedAdoptionAllocFree pins the zero-copy claim at the gap
// buffer: the adopt → consume cycle performs no heap allocations. The
// lease is held as an interface precisely so this stays true.
func TestAppendOwnedAdoptionAllocFree(t *testing.T) {
	b := matchBuffer{max: 1 << 16}
	lease := &fakeLease{}
	chunk := bytes.Repeat([]byte("z"), 4096)
	avg := testing.AllocsPerRun(200, func() {
		if _, adopted := b.appendOwned(chunk, lease); !adopted {
			panic("adoption declined in steady state")
		}
		b.consume(len(chunk))
	})
	if avg != 0 {
		t.Errorf("adoption cycle allocates %.1f times per run, want 0", avg)
	}
}
