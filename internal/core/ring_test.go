package core

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"testing"
	"time"
)

func TestRingBufferAppendAndForget(t *testing.T) {
	b := matchBuffer{max: 10}
	if f := b.appendData([]byte("hello")); f != 0 {
		t.Errorf("forgot %d on first append", f)
	}
	if got := string(b.bytes()); got != "hello" {
		t.Errorf("bytes = %q", got)
	}
	if f := b.appendData([]byte("world")); f != 0 {
		t.Errorf("forgot %d while under bound", f)
	}
	// 10 live + 3 new: the 3 oldest must go.
	if f := b.appendData([]byte("abc")); f != 3 {
		t.Errorf("forgot %d, want 3", f)
	}
	if got := string(b.bytes()); got != "loworldabc" {
		t.Errorf("bytes = %q, want %q", got, "loworldabc")
	}
	if b.length() != 10 {
		t.Errorf("length = %d", b.length())
	}
}

func TestRingBufferOversizedChunk(t *testing.T) {
	b := matchBuffer{max: 8}
	b.appendData([]byte("abcd"))
	// A chunk bigger than max forgets everything live plus its own front.
	if f := b.appendData([]byte("0123456789")); f != 4+2 {
		t.Errorf("forgot %d, want 6", f)
	}
	if got := string(b.bytes()); got != "23456789" {
		t.Errorf("bytes = %q", got)
	}
	// Exactly max-sized chunk forgets only what was live.
	b2 := matchBuffer{max: 4}
	b2.appendData([]byte("xy"))
	if f := b2.appendData([]byte("abcd")); f != 2 {
		t.Errorf("forgot %d, want 2", f)
	}
	if got := string(b2.bytes()); got != "abcd" {
		t.Errorf("bytes = %q", got)
	}
}

func TestRingBufferConsumeAndTake(t *testing.T) {
	b := matchBuffer{max: 20}
	b.appendData([]byte("one two three"))
	b.consume(4)
	if got := string(b.bytes()); got != "two three" {
		t.Errorf("after consume: %q", got)
	}
	got := b.take()
	if string(got) != "two three" || b.length() != 0 {
		t.Errorf("take = %q, length = %d", got, b.length())
	}
	// take copies: appending afterwards must not change the taken bytes.
	b.appendData([]byte("XXXXXXXXX"))
	if string(got) != "two three" {
		t.Errorf("taken bytes mutated by later append: %q", got)
	}
	b.reset()
	if b.take() != nil {
		t.Error("take on empty buffer should return nil")
	}
	// Consuming everything rewinds the backing array.
	b.appendData([]byte("ab"))
	b.consume(b.length())
	if b.off != 0 || len(b.data) != 0 {
		t.Errorf("consume-all did not reset: off=%d len=%d", b.off, len(b.data))
	}
}

func TestRingBufferBackingBounded(t *testing.T) {
	const max = 100
	b := matchBuffer{max: max}
	var last []byte
	for i := 0; i < 5000; i++ {
		c := byte('a' + i%26)
		b.appendData([]byte{c})
		last = append(last, c)
	}
	if cap(b.data) > 2*max {
		t.Errorf("backing array cap %d exceeds 2*max = %d", cap(b.data), 2*max)
	}
	want := last[len(last)-max:]
	if !bytes.Equal(b.bytes(), want) {
		t.Errorf("content diverged from last %d bytes of stream", max)
	}
}

func TestRingBufferSetMax(t *testing.T) {
	b := matchBuffer{max: 100}
	b.appendData([]byte(strings.Repeat("x", 60) + strings.Repeat("y", 40)))
	if f := b.setMax(40); f != 60 {
		t.Errorf("shrink forgot %d, want 60", f)
	}
	if got := string(b.bytes()); got != strings.Repeat("y", 40) {
		t.Errorf("after shrink: %q", got)
	}
	// Growing the bound forgets nothing and keeps content.
	if f := b.setMax(200); f != 0 {
		t.Errorf("grow forgot %d", f)
	}
	if b.length() != 40 {
		t.Errorf("length after grow = %d", b.length())
	}
	// A large backing array is released on a deep shrink.
	big := matchBuffer{max: 100000}
	big.appendData(bytes.Repeat([]byte("z"), 100000))
	big.setMax(10)
	if cap(big.data) > 4096 {
		t.Errorf("backing cap %d not released after deep shrink", cap(big.data))
	}
	if got := string(big.bytes()); got != strings.Repeat("z", 10) {
		t.Errorf("content after deep shrink: %q", got)
	}
}

// TestRingBufferMatchesReferenceModel drives the gap buffer and a naive
// slice model with the same random operation stream and checks they agree
// on content and forgotten-byte accounting at every step.
func TestRingBufferMatchesReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	b := matchBuffer{max: 50}
	var ref []byte
	refMax := 50
	var forgotB, forgotRef int

	for step := 0; step < 20000; step++ {
		switch rng.Intn(10) {
		case 0: // consume a prefix, as a match would
			if b.length() > 0 {
				n := 1 + rng.Intn(b.length())
				b.consume(n)
				ref = ref[n:]
			}
		case 1: // change the bound
			refMax = 1 + rng.Intn(80)
			forgotB += b.setMax(refMax)
			if over := len(ref) - refMax; over > 0 {
				ref = ref[over:]
				forgotRef += over
			}
		default: // append a chunk, occasionally oversized
			n := 1 + rng.Intn(12)
			if rng.Intn(50) == 0 {
				n = refMax + rng.Intn(40)
			}
			chunk := make([]byte, n)
			for i := range chunk {
				chunk[i] = byte('a' + rng.Intn(26))
			}
			forgotB += b.appendData(chunk)
			ref = append(ref, chunk...)
			if over := len(ref) - refMax; over > 0 {
				ref = ref[over:]
				forgotRef += over
			}
		}
		if !bytes.Equal(b.bytes(), ref) {
			t.Fatalf("step %d: content diverged:\n  ring %q\n  ref  %q", step, b.bytes(), ref)
		}
		if forgotB != forgotRef {
			t.Fatalf("step %d: forgotten diverged: ring %d, ref %d", step, forgotB, forgotRef)
		}
		if cap(b.data) > 2*80 && cap(b.data) > 4096 {
			t.Fatalf("step %d: backing cap %d unbounded", step, cap(b.data))
		}
	}
}

// Regression: shrinking match_max mid-Expect must keep Forgotten() in
// lockstep with the buffer, so the incremental matcher's fed-bytes
// reconciliation (which trusts totalSeen - len(buf)) never double-feeds or
// skips live bytes.
func TestSetMatchMaxShrinkAgreesWithForgotten(t *testing.T) {
	cfg := &Config{Matcher: MatcherIncremental, MatchMax: 1000}
	s, err := SpawnProgram(cfg, "shrink", func(stdin io.Reader, stdout io.Writer) error {
		fmt.Fprint(stdout, strings.Repeat("x", 500))
		one := make([]byte, 1)
		stdin.Read(one)
		fmt.Fprint(stdout, "MAGIC")
		io.Copy(io.Discard, stdin)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	type outcome struct {
		r   *MatchResult
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		r, err := s.ExpectTimeout(5*time.Second, Glob("*MAGIC*"))
		done <- outcome{r, err}
	}()

	deadline := time.Now().Add(2 * time.Second)
	for s.TotalSeen() < 500 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if s.TotalSeen() < 500 {
		t.Fatal("burst never arrived")
	}

	s.SetMatchMax(50)
	if got := len(s.Buffer()); got > 50 {
		t.Errorf("buffer after shrink = %d bytes, want <= 50", got)
	}
	if got, want := s.Forgotten()+int64(len(s.Buffer())), s.TotalSeen(); got != want {
		t.Errorf("forgotten+buffered = %d, want totalSeen = %d", got, want)
	}

	if err := s.Send("g"); err != nil {
		t.Fatal(err)
	}
	o := <-done
	if o.err != nil {
		t.Fatalf("expect after shrink: %v", o.err)
	}
	if !strings.Contains(o.r.Text, "MAGIC") {
		t.Errorf("match text %q lacks MAGIC", o.r.Text)
	}
	consumed := int64(len(o.r.Text))
	if got, want := s.Forgotten()+consumed+int64(len(s.Buffer())), s.TotalSeen(); got != want {
		t.Errorf("forgotten+consumed+buffered = %d, want totalSeen = %d", got, want)
	}
}
