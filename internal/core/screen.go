package core

import (
	"time"

	"repro/internal/metrics"
	"repro/internal/pattern"
	"repro/internal/vt"
)

// Screen support: §8 of the paper asks "If expect had a built-in terminal
// emulator, could one look for 'regions' of character graphics?" With
// screen tracking enabled, a session maintains a vt.Screen from the
// process output in parallel with the byte-stream match buffer, and
// ExpectScreen waits on predicates over the rendered display — rows,
// rectangles, cursor position — instead of raw escape sequences.

// Screen returns the session's terminal emulation, or nil when screen
// tracking was not enabled (Config.ScreenRows/ScreenCols).
func (s *Session) Screen() *vt.Screen {
	return s.screen
}

// ErrNoScreen is returned by ExpectScreen on a session without screen
// tracking.
var errNoScreen = &screenError{"expect: session has no screen (set Config.ScreenRows/Cols)"}

type screenError struct{ msg string }

func (e *screenError) Error() string { return e.msg }

// ExpectScreen waits until pred holds over the rendered screen, the
// deadline d passes (d < 0 waits forever), or the process closes its
// output. Unlike Expect it consumes nothing from the match buffer: the
// screen is a view, not a stream.
func (s *Session) ExpectScreen(d time.Duration, pred func(*vt.Screen) bool) error {
	if s.screen == nil {
		return errNoScreen
	}
	var deadline time.Time
	if d >= 0 {
		deadline = time.Now().Add(d)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		stop := s.prof.Start(metrics.PhaseMatch)
		ok := pred(s.screen)
		stop()
		if ok {
			return nil
		}
		if s.eof {
			return ErrEOF
		}
		var remaining time.Duration
		if !deadline.IsZero() {
			remaining = time.Until(deadline)
			if remaining <= 0 {
				return ErrTimeout
			}
		}
		s.waitLocked(remaining)
	}
}

// ExpectScreenGlob waits until the full rendered screen matches the glob
// pattern (anchored, like stream patterns — wrap with stars).
func (s *Session) ExpectScreenGlob(d time.Duration, glob string) error {
	return s.ExpectScreen(d, func(sc *vt.Screen) bool {
		return pattern.Match(glob, sc.Text())
	})
}

// ExpectScreenRegion waits until the rectangle (r0,c0)–(r1,c1) matches
// the glob pattern — the §8 "regions of character graphics" primitive.
func (s *Session) ExpectScreenRegion(d time.Duration, r0, c0, r1, c1 int, glob string) error {
	return s.ExpectScreen(d, func(sc *vt.Screen) bool {
		return pattern.Match(glob, sc.Region(r0, c0, r1, c1))
	})
}
