package core

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/programs/rogue"
	"repro/internal/vt"
)

func TestScreenDisabledByDefault(t *testing.T) {
	s := spawnEcho(t, nil)
	if s.Screen() != nil {
		t.Error("screen enabled without config")
	}
	err := s.ExpectScreenGlob(100*time.Millisecond, "*")
	if err == nil || !strings.Contains(err.Error(), "no screen") {
		t.Errorf("ExpectScreen without screen: %v", err)
	}
}

func TestScreenTracksCursesOutput(t *testing.T) {
	cfg := &Config{ScreenRows: 24, ScreenCols: 80}
	prog := func(stdin io.Reader, stdout io.Writer) error {
		// Paint out of order, curses style.
		fmt.Fprint(stdout, "\x1b[24;1HSTATUS LINE HERE")
		fmt.Fprint(stdout, "\x1b[1;1Htop")
		io.Copy(io.Discard, stdin)
		return nil
	}
	s, err := SpawnProgram(cfg, "painter", prog)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.ExpectScreen(2*time.Second, func(sc *vt.Screen) bool {
		return strings.Contains(sc.Row(23), "STATUS LINE HERE") &&
			sc.Row(0) == "top"
	}); err != nil {
		t.Fatalf("screen never converged: %v\nscreen:\n%s", err, s.Screen().Text())
	}
}

func TestExpectScreenRegion(t *testing.T) {
	cfg := &Config{ScreenRows: 10, ScreenCols: 40}
	prog := func(stdin io.Reader, stdout io.Writer) error {
		fmt.Fprint(stdout, "\x1b[5;10HXYZ")
		io.Copy(io.Discard, stdin)
		return nil
	}
	s, err := SpawnProgram(cfg, "painter", prog)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.ExpectScreenRegion(2*time.Second, 4, 9, 4, 11, "XYZ"); err != nil {
		t.Fatalf("region match: %v", err)
	}
	// A region elsewhere must time out.
	if err := s.ExpectScreenRegion(100*time.Millisecond, 0, 0, 0, 5, "XYZ*"); !errors.Is(err, ErrTimeout) {
		t.Errorf("wrong-region err = %v, want timeout", err)
	}
}

func TestExpectScreenTimeoutAndEOF(t *testing.T) {
	cfg := &Config{ScreenRows: 4, ScreenCols: 20}
	s, err := SpawnProgram(cfg, "brief", func(stdin io.Reader, stdout io.Writer) error {
		fmt.Fprint(stdout, "done")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.ExpectScreenGlob(2*time.Second, "*done*"); err != nil {
		t.Fatalf("glob: %v", err)
	}
	// Program exited; a never-true predicate must see EOF.
	if err := s.ExpectScreenGlob(2*time.Second, "*never*"); !errors.Is(err, ErrEOF) {
		t.Errorf("err = %v, want ErrEOF", err)
	}
}

// TestCursesRogueThroughScreen is the §8 demonstration end to end: the
// curses rogue paints with escape sequences; the raw stream is
// unmatchable soup, but the screen region holds the status line.
func TestCursesRogueThroughScreen(t *testing.T) {
	cfg := &Config{ScreenRows: 24, ScreenCols: 80, MatchMax: 1 << 14}
	s, err := SpawnProgram(cfg, "rogue",
		rogue.New(rogue.Config{Seed: 7, LuckNumerator: 1, LuckDenominator: 1, Curses: true}))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Screen-level: status line appears on row 24.
	if err := s.ExpectScreen(2*time.Second, func(sc *vt.Screen) bool {
		return strings.Contains(sc.Row(23), "Str: 18")
	}); err != nil {
		t.Fatalf("status line never painted: %v\n%s", err, s.Screen().Text())
	}
	// The raw stream contains escape garbage around the same text.
	if !strings.Contains(s.Buffer(), "\x1b[") {
		t.Error("raw buffer suspiciously clean — curses mode not painting")
	}
	// Move; the @ must relocate on the screen.
	s.Send("l")
	if err := s.ExpectScreen(2*time.Second, func(sc *vt.Screen) bool {
		return strings.Contains(sc.Region(9, 4, 11, 24), "@")
	}); err != nil {
		t.Fatalf("rogue vanished after move: %v\n%s", err, s.Screen().Text())
	}
}
