package core

import (
	"time"
)

// Select returns the subset of sessions that have input pending, waiting
// until at least one can be read or the timeout expires (§3.2's select
// command). A session with buffered data or EOF counts as readable. A nil
// result means the timeout expired; d < 0 waits forever.
//
// This is the primitive behind programmed job control: the chess-vs-chess
// and Eliza-vs-Eliza loops of §2.2 poll their two children with it instead
// of the 200 hand-typed ^Z/fg sequences the shell would demand.
func Select(d time.Duration, sessions ...*Session) []*Session {
	var deadline time.Time
	if d >= 0 {
		deadline = time.Now().Add(d)
	}
	// One shared wakeup channel, registered with every session.
	wake := make(chan struct{}, 1)
	for _, s := range sessions {
		s.addWatcher(wake)
		defer s.removeWatcher(wake)
	}
	for {
		var ready []*Session
		for _, s := range sessions {
			if s.HasData() {
				ready = append(ready, s)
			}
		}
		if len(ready) > 0 {
			return ready
		}
		if deadline.IsZero() {
			<-wake
			continue
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return nil
		}
		t := time.NewTimer(remaining)
		select {
		case <-wake:
			t.Stop()
		case <-t.C:
			return nil
		}
	}
}
