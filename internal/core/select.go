package core

import (
	"time"
)

// Select returns the subset of sessions that have input pending, waiting
// until at least one can be read or the timeout expires (§3.2's select
// command). A session with buffered data or EOF counts as readable. A nil
// result means the timeout expired; d < 0 waits forever.
//
// This is the primitive behind programmed job control: the chess-vs-chess
// and Eliza-vs-Eliza loops of §2.2 poll their two children with it instead
// of the 200 hand-typed ^Z/fg sequences the shell would demand.
//
// Missed-wakeup audit (sharded scheduler): the fan-in paths here and in
// ExpectAny are safe against a child exiting between the attempt (the
// HasData/scan pass) and the wait, because the shared wake channel is
// registered with every session *before* the first attempt and both
// chunk and EOF ingest — pump or shard loop, applyChunk/applyEOF — poke
// watchers under s.mu. The window that does exist under sharding is on
// the ingest side: a child that spoke or died before its shard took
// ownership would never ring the doorbell, and an Expect admitted after
// the shard consumed the EOF would never be re-stepped. Both are closed
// in shard.go (adopt's unconditional initial markDirty; admitOp's
// synchronous attempt) and pinned by TestShardedFanInCutChildNoHang and
// TestShardedEOFBeforeExpectResolves, which kill a child mid-dialogue
// with a faultify CutAfterBytes schedule.
func Select(d time.Duration, sessions ...*Session) []*Session {
	var deadline time.Time
	if d >= 0 {
		deadline = time.Now().Add(d)
	}
	// One shared wakeup channel, registered with every session.
	wake := make(chan struct{}, 1)
	for _, s := range sessions {
		s.addWatcher(wake)
		defer s.removeWatcher(wake)
	}
	for {
		var ready []*Session
		for _, s := range sessions {
			if s.HasData() {
				ready = append(ready, s)
			}
		}
		if len(ready) > 0 {
			return ready
		}
		if deadline.IsZero() {
			<-wake
			continue
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return nil
		}
		t := time.NewTimer(remaining)
		select {
		case <-wake:
			t.Stop()
		case <-t.C:
			return nil
		}
	}
}
