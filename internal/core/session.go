// Package core implements the expect engine, the paper's contribution: a
// programmed-dialogue controller for interactive programs. A Session wraps
// a spawned process (pty-, pipe-, or virtually-backed) with the paper's
// match buffer; Expect waits for patterns in the accumulated output, Send
// types at the process, Interact couples the user to it, and Select waits
// across many sessions at once (§2.2's job control, Figure 5).
//
// The package is usable two ways: directly from Go through Session and the
// Spawn functions, or from scripts through Engine, which grafts the
// paper's twelve commands onto a Tcl interpreter (§3).
package core

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/metrics"
	"repro/internal/netx"
	"repro/internal/proc"
	"repro/internal/trace"
	"repro/internal/vt"
)

// DefaultMatchMax is the buffer bound: "more than 2000 bytes of output can
// force earlier bytes to be 'forgotten'" (§3.1).
const DefaultMatchMax = 2000

// DefaultTimeout is the expect default: "The default timeout period is 10
// seconds" (§3.1).
const DefaultTimeout = 10 * time.Second

// MatcherMode selects the pattern-scan strategy for glob patterns.
type MatcherMode int

const (
	// MatcherRescan re-runs the full-buffer match on every read, as the
	// original implementation did ("if characters arrive slowly, the
	// pattern matcher scans the same data many times", §7.4).
	MatcherRescan MatcherMode = iota
	// MatcherIncremental carries NFA state across reads and never rescans
	// earlier data — the paper's open question, answered.
	MatcherIncremental
)

// Config carries session-creation options. The zero value gives the
// paper's defaults.
type Config struct {
	// MatchMax bounds the match buffer in bytes (default 2000).
	MatchMax int
	// Timeout is the default Expect timeout (default 10s). Negative means
	// wait forever; zero means the default.
	Timeout time.Duration
	// Matcher selects rescan (default, faithful) or incremental matching.
	Matcher MatcherMode
	// Prof receives phase timings for the §7.4 breakdown; nil disables.
	Prof *metrics.Profiler
	// Logger, when non-nil, receives every chunk of child output as it
	// arrives (the engine's log_user / log_file tap).
	Logger func([]byte)
	// ScreenRows/ScreenCols, when both nonzero, enable terminal
	// emulation: the session maintains a vt.Screen of that size from the
	// output stream, queryable with Screen/ExpectScreen (the paper's §8
	// "regions of character graphics" question).
	ScreenRows, ScreenCols int
	// Rec, when non-nil, is the flight recorder the session reports to:
	// reads, writes, pattern attempts, timers, forgetting. A nil recorder
	// (or a disabled one) costs one check per site and nothing else.
	Rec *trace.Recorder
	// SID tags the session's flight-recorder events; the engine sets it to
	// the spawn id so recordings read in script terms (-1 = no id).
	SID int32
	// Sched, when non-nil, hands the session to a sharded scheduler: one
	// of its event loops owns the read side instead of a per-session pump
	// goroutine (see shard.go). Raw-stream sessions (no process) always
	// keep a pump.
	Sched *Scheduler
	// Spawn options passed through to the transport layer.
	SpawnOptions proc.Options
	// NetOptions configures the socket transport for SpawnNetwork sessions
	// (buffer caps, segment pool, legacy copying mode, poller opt-out).
	// ReadBuf defaults from SpawnOptions.BufferCap when unset.
	NetOptions netx.Options
	// Ingest, when non-nil, receives copied/handed-off byte accounting
	// from the whole ingest path — socket inbox and match-buffer append —
	// for the zero-copy experiments. Defaults NetOptions.Stats when that
	// is unset.
	Ingest *metrics.IngestStats
	// Mux, when non-nil, is the pooled gateway client SpawnMux opens
	// streams on: many sessions share a few framed TCP connections
	// instead of dialing one socket each. The caller owns the pool's
	// lifetime; closing a session closes only its stream.
	Mux *netx.MuxPool
}

func (c *Config) matchMax() int {
	if c == nil || c.MatchMax <= 0 {
		return DefaultMatchMax
	}
	return c.MatchMax
}

func (c *Config) timeout() time.Duration {
	if c == nil || c.Timeout == 0 {
		return DefaultTimeout
	}
	return c.Timeout
}

// Session is one controlled dialogue: a spawned process plus the match
// buffer its output accumulates in.
type Session struct {
	name   string
	p      *proc.Process // nil for raw-stream sessions (e.g. the user)
	rw     io.ReadWriteCloser
	prof   *metrics.Profiler
	rec    *trace.Recorder
	sid    int32
	ingest *metrics.IngestStats

	mu        sync.Mutex
	cond      *sync.Cond
	mb        matchBuffer
	totalSeen int64
	forgotten int64
	eof       bool
	readErr   error
	closed    bool
	matcher   MatcherMode
	timeout   time.Duration
	logger    func([]byte)
	watchers  map[chan struct{}]struct{}
	screen    *vt.Screen
	// lastRead timestamps the most recent chunk arrival (guarded by mu);
	// the expect loop uses it for the read-to-wakeup latency histogram.
	lastRead time.Time

	pumpDone chan struct{}
	pumpOnce sync.Once

	// Sharded-scheduler state (nil/zero for pump-driven sessions): the
	// owning shard, the hash key it was assigned with, and the ingest
	// flags its loop coordinates on.
	shard      *shard
	shardKey   uint64
	notifyMode bool
	inDirty    atomic.Bool
	shardEOF   atomic.Bool
	// stepPending is owned by the shard loop: set when a feeder chunk
	// arrives mid-batch, cleared when the post-batch sweep steps the
	// session. It coalesces match attempts to one per ingest batch, the
	// same granularity the pump's wakeup gives the classic cond-wait path.
	stepPending bool
	// ownedMode marks a shard-owned session whose transport hands chunks
	// over by ownership transfer (TryReadOwned) instead of copying drains.
	ownedMode bool

	// Dialogue counters, atomics so the expect paths bump them without
	// extra locking and the telemetry snapshot reads them from any
	// goroutine: expects issued, and how each resolved (match, timeout,
	// EOF). The load workbench's conservation law — matches + timeouts +
	// EOFs == dialogues — is checkable per session from these.
	nExpects, nMatches, nTimeouts, nEofs atomic.Int64
}

// ErrTimeout is returned by Expect when no pattern matched in time and no
// explicit timeout case was supplied.
var ErrTimeout = errors.New("expect: timeout")

// ErrEOF is returned by Expect when the process closed its output and no
// explicit eof case was supplied.
var ErrEOF = errors.New("expect: end of file from process")

// ErrClosed is returned for operations on a closed session.
var ErrClosed = errors.New("expect: session closed")

// SpawnCommand starts a program under a pseudo-terminal and returns its
// session — the script-level spawn command (§3.2).
func SpawnCommand(cfg *Config, name string, args ...string) (*Session, error) {
	opt := spawnOptions(cfg)
	p, err := proc.SpawnPty(name, args, opt)
	if err != nil {
		return nil, err
	}
	return newSession(cfg, name, p, p), nil
}

// SpawnPipeCommand starts a program over plain pipes (no terminal
// semantics) — the baseline transport that §2.1 explains is insufficient
// for programs like rogue, kept for comparison experiments.
func SpawnPipeCommand(cfg *Config, name string, args ...string) (*Session, error) {
	opt := spawnOptions(cfg)
	p, err := proc.SpawnPipe(name, args, opt)
	if err != nil {
		return nil, err
	}
	return newSession(cfg, name, p, p), nil
}

// SpawnProgram runs an in-process virtual program as a session. Tests,
// benchmarks, and the simulated interactive programs use this transport.
func SpawnProgram(cfg *Config, name string, program proc.Program) (*Session, error) {
	opt := spawnOptions(cfg)
	p, err := proc.SpawnVirtual(name, program, opt)
	if err != nil {
		return nil, err
	}
	return newSession(cfg, name, p, p), nil
}

// SpawnNetwork dials a TCP address and adopts the connection as a
// session: the remote endpoint (an expectd program, a real network
// service) plays the child's role. The socket transport is event-capable,
// so under a sharded scheduler a network session runs goroutine-free on
// the shard loop, exactly like a virtual one; the usual WrapTransport
// hook composes on the client side, so fault schedules replay over
// sockets too.
func SpawnNetwork(cfg *Config, name, addr string) (*Session, error) {
	opt := spawnOptions(cfg)
	nopt := netx.Options{}
	if cfg != nil {
		nopt = cfg.NetOptions
		if nopt.Stats == nil {
			nopt.Stats = cfg.Ingest
		}
	}
	if nopt.ReadBuf == 0 && opt.BufferCap > 0 {
		nopt.ReadBuf = opt.BufferCap
	}
	stopFork := opt.Prof.Start(metrics.PhaseFork)
	var nc *netx.Conn
	var err error
	if cfg != nil && cfg.Sched != nil && !nopt.Legacy {
		// Defer ingest: the adopting shard chooses between its readiness
		// loop (linux, zero goroutines per connection) and the fallback
		// reader goroutine. If adoption falls through to a pump, the first
		// blocking Read starts the fallback reader on its own.
		nc, err = netx.DialDeferred(addr, nopt)
	} else {
		nc, err = netx.Dial(addr, nopt)
	}
	stopFork()
	if err != nil {
		return nil, err
	}
	p := proc.SpawnStream(name, proc.KindNetwork, nc, nc.WaitStatus, opt)
	return newSession(cfg, name, p, p), nil
}

// SpawnMux opens program as one multiplexed stream on a session gateway
// (an expectd -mux listener at addr) through cfg.Mux's connection pool
// and adopts the stream as a session. The stream satisfies the full
// event-capable, ownership-transferring transport contract, so under a
// sharded scheduler a muxed session runs goroutine-free on the shard
// loop — the gateway's point: 100k dialogues over a few dozen sockets.
// WrapTransport composes on the stream as usual, so fault schedules
// replay over the mux exactly like every other transport.
func SpawnMux(cfg *Config, name, addr, program string) (*Session, error) {
	if cfg == nil || cfg.Mux == nil {
		return nil, errors.New("expect: SpawnMux requires Config.Mux pool")
	}
	opt := spawnOptions(cfg)
	stopFork := opt.Prof.Start(metrics.PhaseFork)
	st, err := cfg.Mux.Open(addr, program)
	stopFork()
	if err != nil {
		return nil, err
	}
	p := proc.SpawnStream(name, proc.KindMux, st, st.WaitStatus, opt)
	return newSession(cfg, name, p, p), nil
}

// NewSession wraps an arbitrary byte stream (for example the user's
// stdin/stdout pair) as a session, fulfilling §2.2's "the user can also be
// manipulated as if they were a process".
func NewSession(cfg *Config, name string, rw io.ReadWriteCloser) *Session {
	return newSession(cfg, name, nil, rw)
}

// sinkRW is the manual session's transport: sends vanish, there is no
// child to read from.
type sinkRW struct{}

func (sinkRW) Read(p []byte) (int, error)  { return 0, io.EOF }
func (sinkRW) Write(p []byte) (int, error) { return len(p), nil }
func (sinkRW) Close() error                { return nil }

// NewManualSession builds a session with no child, no pump goroutine, and
// no scheduler: bytes enter only through Feed/FeedEOF and match attempts
// run only through ManualExpect.Step. This is the replay engine's virtual
// transport — fully synchronous, so a journaled run's chunk boundaries and
// wakeup order reproduce exactly — and the restore path's blank slate.
func NewManualSession(cfg *Config, name string) *Session {
	var scrubbed Config
	if cfg != nil {
		scrubbed = *cfg
	}
	scrubbed.Sched = nil // manual sessions are never shard-adopted
	s := newManualSession(&scrubbed, name)
	return s
}

func newManualSession(cfg *Config, name string) *Session {
	s := &Session{
		name:     name,
		rw:       sinkRW{},
		mb:       matchBuffer{max: cfg.matchMax()},
		timeout:  cfg.timeout(),
		watchers: make(map[chan struct{}]struct{}),
		pumpDone: make(chan struct{}),
	}
	s.prof = cfg.Prof
	s.logger = cfg.Logger
	s.matcher = cfg.Matcher
	s.rec = cfg.Rec
	s.sid = cfg.SID
	if cfg.ScreenRows > 0 && cfg.ScreenCols > 0 {
		s.screen = vt.NewScreen(cfg.ScreenRows, cfg.ScreenCols)
	}
	s.cond = sync.NewCond(&s.mu)
	s.closePumpDone() // nothing will ever pump
	return s
}

// Feed applies one chunk of child output exactly as the pump would:
// match_max trimming, taps, recording, waiter wakeup. Replay and tests
// drive sessions with it; it must not race a live pump on the same
// session.
func (s *Session) Feed(chunk []byte) { s.applyChunk(chunk) }

// FeedEOF applies end-of-stream; a nil or io.EOF err is a clean hangup.
func (s *Session) FeedEOF(err error) { s.applyEOF(err) }

func spawnOptions(cfg *Config) proc.Options {
	if cfg == nil {
		return proc.Options{}
	}
	opt := cfg.SpawnOptions
	if opt.Prof == nil {
		opt.Prof = cfg.Prof
	}
	// A config-level recorder also covers the spawn itself, so direct
	// Spawn* callers get the spawn event without wiring proc.Options.
	if opt.Rec == nil {
		opt.Rec = cfg.Rec
		opt.TraceSID = cfg.SID
	}
	return opt
}

func newSession(cfg *Config, name string, p *proc.Process, rw io.ReadWriteCloser) *Session {
	s := &Session{
		name:     name,
		p:        p,
		rw:       rw,
		mb:       matchBuffer{max: cfg.matchMax()},
		timeout:  cfg.timeout(),
		watchers: make(map[chan struct{}]struct{}),
		pumpDone: make(chan struct{}),
	}
	if cfg != nil {
		s.prof = cfg.Prof
		s.logger = cfg.Logger
		s.matcher = cfg.Matcher
		s.rec = cfg.Rec
		s.sid = cfg.SID
		s.ingest = cfg.Ingest
		if s.ingest == nil {
			s.ingest = cfg.NetOptions.Stats
		}
		if cfg.ScreenRows > 0 && cfg.ScreenCols > 0 {
			s.screen = vt.NewScreen(cfg.ScreenRows, cfg.ScreenCols)
		}
	}
	s.cond = sync.NewCond(&s.mu)
	if cfg != nil && cfg.Sched != nil && p != nil {
		if cfg.Sched.adopt(s) != nil {
			return s
		}
	}
	go s.pump()
	return s
}

// ShardIndex returns the shard that owns this session, or -1 for
// pump-driven sessions.
func (s *Session) ShardIndex() int {
	sh := s.owningShard()
	if sh == nil {
		return -1
	}
	return sh.idx
}

// owningShard reads the current shard owner under the session lock;
// Migrate rewrites it mid-life, so unlocked reads of s.shard are only
// safe before adoption completes.
func (s *Session) owningShard() *shard {
	s.mu.Lock()
	sh := s.shard
	s.mu.Unlock()
	return sh
}

// setShard flips the ownership pointer; called only from the source
// loop's detach step.
func (s *Session) setShard(sh *shard) {
	s.mu.Lock()
	s.shard = sh
	s.mu.Unlock()
}

// isTransient reports whether a read/write error is a retryable transient
// condition rather than a dead stream: anything advertising Temporary()
// (net-style errors, injected faults), or the raw EAGAIN/EINTR a
// non-blocking or signal-interrupted pty read surfaces. The original
// expect's select loop simply went around again on these; treating them as
// EOF would tear down a perfectly live dialogue.
func isTransient(err error) bool {
	var temp interface{ Temporary() bool }
	if errors.As(err, &temp) && temp.Temporary() {
		return true
	}
	return errors.Is(err, syscall.EAGAIN) || errors.Is(err, syscall.EINTR)
}

// pump moves child output into the match buffer, enforcing match_max and
// waking waiters. One pump goroutine per session is the classic
// concurrency model — the dialogue logic itself stays single-threaded,
// like the original select-loop implementation (§7.2). Sessions created
// with Config.Sched skip the pump entirely: a shard event loop performs
// the same applyChunk/applyEOF sequence (shard.go).
func (s *Session) pump() {
	defer s.closePumpDone()
	chunk := make([]byte, 4096)
	for {
		stop := s.prof.Start(metrics.PhaseIO)
		n, err := s.rw.Read(chunk)
		stop()
		if n > 0 {
			s.applyChunk(chunk[:n])
		}
		if err != nil {
			if isTransient(err) {
				// A transient fault, not a hangup: retry the read.
				continue
			}
			s.applyEOF(err)
			return
		}
	}
}

// applyChunk is the single ingest path shared by the pump and the shard
// loops: tap loggers and the screen, append under the match_max bound,
// record, and wake every waiter.
func (s *Session) applyChunk(chunk []byte) {
	n := len(chunk)
	if s.logger != nil {
		s.logger(chunk)
	}
	if s.screen != nil {
		s.screen.Write(chunk)
	}
	s.mu.Lock()
	s.totalSeen += int64(n)
	// Forgetting per §3.1 happens inside appendData in O(1).
	prevCap := cap(s.mb.data)
	forgot := int64(s.mb.appendData(chunk))
	if s.ingest != nil {
		s.ingest.AddCopied(n)
		if cap(s.mb.data) != prevCap {
			s.ingest.AddAlloc()
		}
	}
	s.forgotten += forgot
	if s.prof != nil || s.rec.On() {
		s.lastRead = time.Now()
	}
	if s.rec.On() {
		s.rec.RecordBytes(trace.KindRead, s.sid, int64(n), s.totalSeen, false, chunk, nil)
		if forgot > 0 {
			s.rec.Record(trace.KindForget, s.sid, forgot, s.forgotten, false, "", "")
		}
	}
	s.notifyLocked()
	s.mu.Unlock()
}

// applyOwned is applyChunk's ownership-transfer twin: the chunk arrives
// as a leased buffer (a pooled netx segment) and, in the steady state of
// an empty match window, becomes the gap buffer's backing without a
// copy — the lease travels kernel → segment → window and is released
// when the window forgets it. Taps (logger, screen, recorder) read the
// payload before any release; the recorder copies what it keeps. When
// the window is mid-match and cannot adopt, the bytes are copied in and
// the lease returned here.
func (s *Session) applyOwned(o proc.Owned) {
	chunk := o.Bytes()
	n := len(chunk)
	if s.logger != nil {
		s.logger(chunk)
	}
	if s.screen != nil {
		s.screen.Write(chunk)
	}
	s.mu.Lock()
	s.totalSeen += int64(n)
	prevCap := cap(s.mb.data)
	forgotN, adopted := s.mb.appendOwned(chunk, o)
	forgot := int64(forgotN)
	if s.ingest != nil {
		if adopted {
			s.ingest.AddHandedOff(n)
		} else {
			s.ingest.AddCopied(n)
			if cap(s.mb.data) != prevCap {
				s.ingest.AddAlloc()
			}
		}
	}
	s.forgotten += forgot
	if s.prof != nil || s.rec.On() {
		s.lastRead = time.Now()
	}
	if s.rec.On() {
		s.rec.RecordBytes(trace.KindRead, s.sid, int64(n), s.totalSeen, false, chunk, nil)
		if forgot > 0 {
			s.rec.Record(trace.KindForget, s.sid, forgot, s.forgotten, false, "", "")
		}
	}
	s.notifyLocked()
	s.mu.Unlock()
	if !adopted {
		o.Release()
	}
}

// applyEOF marks the stream finished and wakes every waiter; a nil or
// io.EOF err is a clean hangup, anything else is preserved for the
// ExpectError report.
func (s *Session) applyEOF(err error) {
	s.mu.Lock()
	s.eof = true
	if err != nil && err != io.EOF {
		s.readErr = err
	}
	s.notifyLocked()
	s.mu.Unlock()
}

// closePumpDone releases WaitPumpDrained exactly once, whether the pump
// or the owning shard observed EOF.
func (s *Session) closePumpDone() {
	s.pumpOnce.Do(func() { close(s.pumpDone) })
}

func (s *Session) notifyLocked() {
	s.cond.Broadcast()
	for ch := range s.watchers {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// addWatcher registers a channel poked whenever new data or EOF arrives.
func (s *Session) addWatcher(ch chan struct{}) {
	s.mu.Lock()
	s.watchers[ch] = struct{}{}
	s.mu.Unlock()
}

func (s *Session) removeWatcher(ch chan struct{}) {
	s.mu.Lock()
	delete(s.watchers, ch)
	s.mu.Unlock()
}

// Name returns the spawned program name.
func (s *Session) Name() string { return s.name }

// Pid returns the process id, or 0 for raw-stream sessions.
func (s *Session) Pid() int {
	if s.p == nil {
		return 0
	}
	return s.p.Pid()
}

// Kind returns the transport kind, or "stream" for raw sessions.
func (s *Session) Kind() string {
	if s.p == nil {
		return "stream"
	}
	return string(s.p.Kind())
}

// SetMatchMax adjusts the buffer bound ("this may be changed by setting
// the variable match_max", §3.1). Shrinking below the current buffer
// length forgets the earliest bytes, exactly as if they had been pushed
// out by arriving output: Forgotten() advances by the same amount, so
// incremental matchers reconciling against it stay consistent.
func (s *Session) SetMatchMax(n int) {
	if n <= 0 {
		n = DefaultMatchMax
	}
	s.mu.Lock()
	if s.rec.On() {
		// Journaled before the trim so replay applies the same bound at
		// the same stream position.
		s.rec.Record(trace.KindConfig, s.sid, int64(n), 0, false, "match_max", "")
	}
	forgot := int64(s.mb.setMax(n))
	s.forgotten += forgot
	if forgot > 0 && s.rec.On() {
		s.rec.Record(trace.KindForget, s.sid, forgot, s.forgotten, false, "", "")
	}
	s.mu.Unlock()
}

// MatchMax returns the current buffer bound.
func (s *Session) MatchMax() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mb.max
}

// SetTimeout changes the session's default Expect timeout; d < 0 waits
// forever.
func (s *Session) SetTimeout(d time.Duration) {
	s.mu.Lock()
	s.timeout = d
	s.mu.Unlock()
}

// Timeout returns the session's default Expect timeout.
func (s *Session) Timeout() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.timeout
}

// Send writes s to the process — keystrokes, as far as the child can tell.
func (s *Session) Send(text string) error {
	return s.SendBytes([]byte(text))
}

// SendBytes writes raw bytes to the process.
func (s *Session) SendBytes(b []byte) error {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if s.rec.On() {
		s.rec.RecordBytes(trace.KindWrite, s.sid, int64(len(b)), 0, false, b, nil)
	}
	stop := s.prof.Start(metrics.PhaseIO)
	defer stop()
	// Retry short writes and transient failures: the child must see the
	// full byte sequence even when the transport delivers it in pieces.
	for len(b) > 0 {
		n, err := s.rw.Write(b)
		b = b[n:]
		if err != nil && !isTransient(err) {
			return fmt.Errorf("expect: send to %s: %w", s.name, err)
		}
	}
	return nil
}

// Buffer returns a copy of the current unmatched output.
func (s *Session) Buffer() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return string(s.mb.bytes())
}

// ClearBuffer empties the match buffer and returns what was discarded.
func (s *Session) ClearBuffer() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := string(s.mb.bytes())
	s.mb.reset()
	return out
}

// TotalSeen returns the total bytes of output ever received.
func (s *Session) TotalSeen() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.totalSeen
}

// Forgotten returns the bytes dropped from the front of the buffer by the
// match_max bound.
func (s *Session) Forgotten() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.forgotten
}

// Eof reports whether the process has closed its output.
func (s *Session) Eof() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eof
}

// HasData reports whether unread output is buffered (used by select).
func (s *Session) HasData() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mb.length() > 0 || s.eof
}

// CloseWrite half-closes the channel toward the process, delivering EOF on
// its stdin while its remaining output stays readable.
func (s *Session) CloseWrite() error {
	if s.p != nil {
		return s.p.CloseWrite()
	}
	return nil
}

// Close closes the connection to the process (§3.2 close). The process
// sees EOF/hangup; its pump drains and the session records EOF.
func (s *Session) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.rw.Close()
	if s.p != nil {
		s.p.Close()
	}
	return err
}

// Kill forcibly terminates the child (backstop for EOF-ignoring programs).
func (s *Session) Kill() error {
	if s.p != nil {
		return s.p.Kill()
	}
	return nil
}

// Wait blocks until the process exits and returns its status. Raw-stream
// sessions return immediately.
func (s *Session) Wait() (int, error) {
	if s.p == nil {
		return 0, nil
	}
	return s.p.Wait()
}

// WaitPumpDrained blocks until the reader pump has observed EOF; useful in
// tests that need every byte accounted for.
func (s *Session) WaitPumpDrained() {
	<-s.pumpDone
}
