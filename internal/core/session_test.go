package core

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

// lineServer builds a virtual program that greets, then answers each input
// line via respond. Returning ok=false exits the program.
func lineServer(greeting string, respond func(line string) (string, bool)) func(io.Reader, io.Writer) error {
	return func(stdin io.Reader, stdout io.Writer) error {
		if greeting != "" {
			fmt.Fprint(stdout, greeting)
		}
		sc := bufio.NewScanner(stdin)
		for sc.Scan() {
			reply, ok := respond(strings.TrimRight(sc.Text(), "\r"))
			if reply != "" {
				fmt.Fprint(stdout, reply)
			}
			if !ok {
				return nil
			}
		}
		return nil
	}
}

func spawnEcho(t *testing.T, cfg *Config) *Session {
	t.Helper()
	s, err := SpawnProgram(cfg, "echo", lineServer("ready\n", func(line string) (string, bool) {
		if line == "quit" {
			return "bye\n", false
		}
		return "echo:" + line + "\n", true
	}))
	if err != nil {
		t.Fatalf("SpawnProgram: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestExpectSimpleDialogue(t *testing.T) {
	s := spawnEcho(t, nil)
	r, err := s.ExpectMatch("*ready*")
	if err != nil {
		t.Fatalf("expect ready: %v", err)
	}
	if !strings.Contains(r.Text, "ready") {
		t.Errorf("matched text %q missing greeting", r.Text)
	}
	if err := s.Send("hello\n"); err != nil {
		t.Fatalf("send: %v", err)
	}
	r, err = s.ExpectMatch("*echo:hello*")
	if err != nil {
		t.Fatalf("expect echo: %v", err)
	}
	if r.Index != 0 {
		t.Errorf("index = %d", r.Index)
	}
}

func TestExpectMultipleCases(t *testing.T) {
	s := spawnEcho(t, nil)
	s.ExpectMatch("*ready*")
	s.Send("banana\n")
	r, err := s.Expect(Glob("*apple*"), Glob("*banana*"), Glob("*cherry*"))
	if err != nil {
		t.Fatalf("expect: %v", err)
	}
	if r.Index != 1 {
		t.Errorf("matched case %d, want 1", r.Index)
	}
}

func TestExpectFirstCaseWins(t *testing.T) {
	s := spawnEcho(t, nil)
	s.ExpectMatch("*ready*")
	s.Send("both\n")
	// Both patterns match the same buffer; the earlier case must win.
	r, err := s.Expect(Glob("*both*"), Glob("*echo*"))
	if err != nil {
		t.Fatalf("expect: %v", err)
	}
	if r.Index != 0 {
		t.Errorf("matched case %d, want 0", r.Index)
	}
}

func TestExpectConsumesBuffer(t *testing.T) {
	s := spawnEcho(t, nil)
	s.ExpectMatch("*ready*")
	if buf := s.Buffer(); buf != "" {
		t.Errorf("buffer after match = %q, want empty", buf)
	}
	s.Send("one\n")
	s.ExpectMatch("*one*")
	s.Send("two\n")
	r, err := s.ExpectMatch("*two*")
	if err != nil {
		t.Fatalf("expect two: %v", err)
	}
	if strings.Contains(r.Text, "one") {
		t.Errorf("second match %q saw first response — buffer not consumed", r.Text)
	}
}

func TestExpectTimeoutError(t *testing.T) {
	s := spawnEcho(t, nil)
	s.ExpectMatch("*ready*")
	start := time.Now()
	_, err := s.ExpectTimeout(50*time.Millisecond, Glob("*never-appears*"))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if e := time.Since(start); e < 40*time.Millisecond || e > 2*time.Second {
		t.Errorf("timeout fired after %v", e)
	}
}

// waitFor polls cond until it holds or the deadline passes — tests
// synchronize on observable session state instead of sleeping blind.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("%s never happened", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestExpectTimeoutCase(t *testing.T) {
	s := spawnEcho(t, nil)
	s.ExpectMatch("*ready*")
	s.Send("abc\n")
	// The echo must already sit unmatched in the buffer when the timeout
	// fires, so sync on it arriving rather than hoping 10ms suffices.
	waitFor(t, "echo of abc", func() bool { return strings.Contains(s.Buffer(), "echo:abc") })
	r, err := s.ExpectTimeout(50*time.Millisecond, Glob("*never*"), TimeoutCase())
	if err != nil {
		t.Fatalf("expect with timeout case: %v", err)
	}
	if !r.TimedOut || r.Index != 1 {
		t.Errorf("result = %+v, want timeout case 1", r)
	}
	// "read but unmatched" text lands in Text.
	if !strings.Contains(r.Text, "echo:abc") {
		t.Errorf("timeout Text = %q, want the unmatched data", r.Text)
	}
}

func TestExpectEOF(t *testing.T) {
	s := spawnEcho(t, nil)
	s.ExpectMatch("*ready*")
	s.Send("quit\n")
	r, err := s.Expect(Glob("*bye*"))
	if err != nil {
		t.Fatalf("expect bye: %v", err)
	}
	_ = r
	// Program has exited; next expect must see EOF.
	_, err = s.ExpectTimeout(time.Second, Glob("*more*"))
	if !errors.Is(err, ErrEOF) {
		t.Fatalf("err = %v, want ErrEOF", err)
	}
	// With an explicit eof case it completes normally.
	r, err = s.ExpectTimeout(time.Second, Glob("*more*"), EOFCase())
	if err != nil {
		t.Fatalf("expect with eof case: %v", err)
	}
	if !r.Eof || r.Index != 1 {
		t.Errorf("result = %+v, want eof case 1", r)
	}
}

func TestExpectExactAndRegexp(t *testing.T) {
	s := spawnEcho(t, nil)
	s.ExpectMatch("*ready*")
	s.Send("target123\n")
	r, err := s.Expect(Exact("echo:target"))
	if err != nil {
		t.Fatalf("exact: %v", err)
	}
	if !strings.HasSuffix(r.Text, "echo:target") {
		t.Errorf("exact Text = %q", r.Text)
	}
	// The rest ("123\n") stays buffered.
	r, err = s.Expect(Regexp(`\d+`))
	if err != nil {
		t.Fatalf("regexp: %v", err)
	}
	if !strings.HasSuffix(r.Text, "123") {
		t.Errorf("regexp Text = %q", r.Text)
	}
}

func TestExpectNegativeTimeoutWaitsForever(t *testing.T) {
	s, err := SpawnProgram(nil, "slow", func(stdin io.Reader, stdout io.Writer) error {
		time.Sleep(80 * time.Millisecond)
		fmt.Fprint(stdout, "late\n")
		io.Copy(io.Discard, stdin)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	r, err := s.ExpectTimeout(-1, Glob("*late*"))
	if err != nil {
		t.Fatalf("expect: %v", err)
	}
	if !strings.Contains(r.Text, "late") {
		t.Errorf("Text = %q", r.Text)
	}
}

func TestMatchMaxForgetting(t *testing.T) {
	cfg := &Config{MatchMax: 100}
	s, err := SpawnProgram(cfg, "chatty", func(stdin io.Reader, stdout io.Writer) error {
		for i := 0; i < 50; i++ {
			fmt.Fprintf(stdout, "line %04d aaaaaaaaaaaaaaaaaaaa\n", i)
		}
		fmt.Fprint(stdout, "DONE\n")
		io.Copy(io.Discard, stdin)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	r, err := s.ExpectTimeout(2*time.Second, Glob("*DONE*"))
	if err != nil {
		t.Fatalf("expect DONE: %v", err)
	}
	if len(r.Text) > 100 {
		t.Errorf("matched text %d bytes exceeds match_max 100", len(r.Text))
	}
	if s.Forgotten() == 0 {
		t.Error("no bytes forgotten despite output far exceeding match_max")
	}
	if s.TotalSeen() < 1000 {
		t.Errorf("TotalSeen = %d, expected the full stream", s.TotalSeen())
	}
}

func TestSetMatchMaxTrimsExisting(t *testing.T) {
	s, err := SpawnProgram(nil, "burst", func(stdin io.Reader, stdout io.Writer) error {
		fmt.Fprint(stdout, strings.Repeat("x", 500))
		io.Copy(io.Discard, stdin)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Wait for the data to arrive.
	deadline := time.Now().Add(2 * time.Second)
	for s.TotalSeen() < 500 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	s.SetMatchMax(50)
	if got := len(s.Buffer()); got > 50 {
		t.Errorf("buffer after SetMatchMax(50) = %d bytes", got)
	}
	if s.Forgotten() < 450 {
		t.Errorf("Forgotten = %d, want >= 450", s.Forgotten())
	}
}

func TestIncrementalMatcherMode(t *testing.T) {
	cfg := &Config{Matcher: MatcherIncremental}
	s, err := SpawnProgram(cfg, "dribble", func(stdin io.Reader, stdout io.Writer) error {
		for _, c := range "one two MAGIC three" {
			fmt.Fprint(stdout, string(c))
			time.Sleep(time.Millisecond)
		}
		io.Copy(io.Discard, stdin)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	r, err := s.ExpectTimeout(5*time.Second, Glob("*MAGIC*"))
	if err != nil {
		t.Fatalf("incremental expect: %v", err)
	}
	if !strings.Contains(r.Text, "MAGIC") {
		t.Errorf("Text = %q", r.Text)
	}
}

func TestSendToClosedSession(t *testing.T) {
	s := spawnEcho(t, nil)
	s.ExpectMatch("*ready*")
	s.Close()
	if err := s.Send("hello\n"); err != ErrClosed {
		t.Errorf("Send after Close = %v, want ErrClosed", err)
	}
}

func TestCloseDeliversEOFToProgram(t *testing.T) {
	sawEOF := make(chan struct{})
	s, err := SpawnProgram(nil, "watcher", func(stdin io.Reader, stdout io.Writer) error {
		fmt.Fprint(stdout, "up\n")
		io.Copy(io.Discard, stdin) // returns on EOF
		close(sawEOF)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	s.ExpectMatch("*up*")
	s.Close()
	select {
	case <-sawEOF:
	case <-time.After(2 * time.Second):
		t.Fatal("program never saw EOF after Close — close should kill it (§3.2)")
	}
	if code, err := s.Wait(); err != nil || code != 0 {
		t.Errorf("Wait = %d, %v", code, err)
	}
}

func TestWaitExitStatus(t *testing.T) {
	s, err := SpawnProgram(nil, "failer", func(stdin io.Reader, stdout io.Writer) error {
		return fmt.Errorf("deliberate failure")
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	code, err := s.Wait()
	if err != nil {
		t.Fatalf("Wait err: %v", err)
	}
	if code != 1 {
		t.Errorf("exit code = %d, want 1", code)
	}
}

func TestSelectTwoSessions(t *testing.T) {
	fast, err := SpawnProgram(nil, "fast", func(stdin io.Reader, stdout io.Writer) error {
		fmt.Fprint(stdout, "fast-data\n")
		io.Copy(io.Discard, stdin)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fast.Close()
	// Gated rather than sleep-delayed: "slow" must be provably silent for
	// the first Select whatever the scheduler does; we release it after.
	gate := make(chan struct{})
	slow, err := SpawnProgram(nil, "slow", func(stdin io.Reader, stdout io.Writer) error {
		<-gate
		fmt.Fprint(stdout, "slow-data\n")
		io.Copy(io.Discard, stdin)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()

	ready := Select(2*time.Second, fast, slow)
	if len(ready) != 1 || ready[0] != fast {
		names := make([]string, len(ready))
		for i, s := range ready {
			names[i] = s.Name()
		}
		t.Fatalf("Select ready = %v, want [fast]", names)
	}
	close(gate)
	// Eventually both are readable.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if len(Select(100*time.Millisecond, fast, slow)) == 2 {
			return
		}
	}
	t.Error("both sessions never became readable")
}

func TestSelectTimeout(t *testing.T) {
	quiet, err := SpawnProgram(nil, "quiet", func(stdin io.Reader, stdout io.Writer) error {
		io.Copy(io.Discard, stdin)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer quiet.Close()
	start := time.Now()
	if got := Select(60*time.Millisecond, quiet); got != nil {
		t.Fatalf("Select = %v, want nil on timeout", got)
	}
	if e := time.Since(start); e < 50*time.Millisecond {
		t.Errorf("Select returned after %v, too early", e)
	}
}

// rwPair adapts separate reader/writer into an io.ReadWriteCloser for
// user-as-session tests.
type rwPair struct {
	io.Reader
	io.Writer
}

func (rwPair) Close() error { return nil }

func TestInteractPassThrough(t *testing.T) {
	s := spawnEcho(t, nil)
	s.ExpectMatch("*ready*")

	userIn := newScriptedReader("hello\n", "quit\n")
	var userOut lockedBuffer
	outcome, err := s.Interact(InteractOptions{UserIn: userIn, UserOut: &userOut})
	if err != nil {
		t.Fatalf("interact: %v", err)
	}
	if outcome.Reason != InteractEOF {
		t.Errorf("reason = %v, want process-eof", outcome.Reason)
	}
	got := userOut.String()
	if !strings.Contains(got, "echo:hello") || !strings.Contains(got, "bye") {
		t.Errorf("user saw %q", got)
	}
}

func TestInteractEscape(t *testing.T) {
	s := spawnEcho(t, nil)
	s.ExpectMatch("*ready*")

	userIn := newScriptedReader("abc\n", "\x1d") // ^] escape
	var userOut lockedBuffer
	outcome, err := s.Interact(InteractOptions{
		UserIn:  userIn,
		UserOut: &userOut,
		Escape:  0x1d,
		OnEscape: func(io.Reader) (bool, string) {
			return false, "escaped-result"
		},
	})
	if err != nil {
		t.Fatalf("interact: %v", err)
	}
	if outcome.Reason != InteractReturn || outcome.Result != "escaped-result" {
		t.Errorf("outcome = %+v", outcome)
	}
	// The session must still be alive after escaping out.
	s.Send("more\n")
	if _, err := s.ExpectTimeout(2*time.Second, Glob("*echo:more*")); err != nil {
		t.Errorf("session dead after interact escape: %v", err)
	}
}

func TestInteractEscapeResume(t *testing.T) {
	s := spawnEcho(t, nil)
	s.ExpectMatch("*ready*")
	calls := 0
	userIn := newScriptedReader("\x1d", "after\n", "quit\n")
	var userOut lockedBuffer
	outcome, err := s.Interact(InteractOptions{
		UserIn:  userIn,
		UserOut: &userOut,
		Escape:  0x1d,
		OnEscape: func(io.Reader) (bool, string) {
			calls++
			return true, "" // continue interacting
		},
	})
	if err != nil {
		t.Fatalf("interact: %v", err)
	}
	if calls != 1 {
		t.Errorf("escape handler calls = %d", calls)
	}
	if outcome.Reason != InteractEOF {
		t.Errorf("reason = %v", outcome.Reason)
	}
	if !strings.Contains(userOut.String(), "echo:after") {
		t.Errorf("post-resume output missing: %q", userOut.String())
	}
}

func TestUserAsSession(t *testing.T) {
	// §2.2: "The user can also be manipulated as if they were a process."
	in := newScriptedReader("typed-by-user\n")
	var out lockedBuffer
	user := NewSession(nil, "user", rwPair{in, &out})
	defer user.Close()
	if err := user.Send("prompt: "); err != nil {
		t.Fatalf("send_user: %v", err)
	}
	r, err := user.ExpectTimeout(2*time.Second, Glob("*typed-by-user*"))
	if err != nil {
		t.Fatalf("expect_user: %v", err)
	}
	if !strings.Contains(r.Text, "typed-by-user") {
		t.Errorf("Text = %q", r.Text)
	}
	if out.String() != "prompt: " {
		t.Errorf("user terminal got %q", out.String())
	}
}

func TestLoggerTap(t *testing.T) {
	var mu sync.Mutex
	var logged bytes.Buffer
	cfg := &Config{Logger: func(b []byte) {
		mu.Lock()
		logged.Write(b)
		mu.Unlock()
	}}
	s := spawnEcho(t, cfg)
	s.ExpectMatch("*ready*")
	s.Send("tapme\n")
	s.ExpectMatch("*echo:tapme*")
	mu.Lock()
	got := logged.String()
	mu.Unlock()
	if !strings.Contains(got, "ready") || !strings.Contains(got, "echo:tapme") {
		t.Errorf("logger saw %q", got)
	}
}

// scriptedReader delivers each scripted string as a separate Read, with a
// tiny pause between them. Once exhausted it behaves like a user who has
// stopped typing: the Read blocks (for a long while) before reporting EOF,
// so process-side events decide how an interaction ends.
type scriptedReader struct {
	mu     sync.Mutex
	chunks []string
}

func newScriptedReader(chunks ...string) *scriptedReader {
	return &scriptedReader{chunks: chunks}
}

func (r *scriptedReader) Read(b []byte) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.chunks) == 0 {
		time.Sleep(30 * time.Second)
		return 0, io.EOF
	}
	time.Sleep(2 * time.Millisecond)
	n := copy(b, r.chunks[0])
	if n == len(r.chunks[0]) {
		r.chunks = r.chunks[1:]
	} else {
		r.chunks[0] = r.chunks[0][n:]
	}
	return n, nil
}

// lockedBuffer is a goroutine-safe bytes.Buffer.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
