package core

import (
	"container/heap"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/netx"
	"repro/internal/trace"
)

// This file is the many-session scale layer: a sharded scheduler that
// owns sessions in N event loops instead of one pump goroutine each.
// Every session hashes to exactly one shard, and that shard's loop is the
// only goroutine that ingests its output, steps its pending Expect calls,
// and fires its deadlines — the paper's single-threaded select loop
// (§7.2), multiplied.
//
// Ownership invariants:
//
//  1. A session is ingested by exactly one shard for its whole life; the
//     assignment (ShardHash over a per-scheduler key) never changes.
//  2. Only the owning shard's loop appends to the match buffer, applies
//     EOF, steps expect ops, and closes pumpDone for a sharded session.
//  3. Event-capable transports (unwrapped virtual duplexes) are drained
//     with non-blocking TryRead from the loop itself — no goroutine at
//     all. Blocking transports (pty, pipe, fault-wrapped) keep one
//     dedicated reader feeding the shard through its bounded queue.
//  4. Expect calls are admitted by the loop with an immediate synchronous
//     match attempt, so output or EOF ingested before admission is
//     observed at admission — there is no window in which a child that
//     already exited can strand a waiter (see TestShardedEOFNoMissedWakeup).
//
// Session.mu stays: Send, Interact, Select, and the introspection
// accessors still run on caller goroutines, and the shard takes the same
// lock for the brief append/step critical sections. What sharding removes
// is the per-session blocked reader and the per-call cond-wait.

// defaultQueueCap bounds each shard's message queue; feeders posting into
// a full queue block, which is the backpressure that keeps a torrent of
// child output from outrunning the loop.
const defaultQueueCap = 1024

// drainGrace is how long a stopping shard keeps servicing its queue so
// in-flight EOFs land and pumpDone closes; past it, leftover waiters are
// failed with ErrClosed rather than stranded.
const drainGrace = 5 * time.Second

// ShardHash maps a session key to a shard index. The mix is the
// splitmix64 finalizer: stable across Go releases and platforms, so a
// given spawn order lands on the same shards everywhere.
func ShardHash(key uint64, n int) int {
	if n <= 1 {
		return 0
	}
	z := key + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int(z % uint64(n))
}

// SchedulerOptions configures a sharded scheduler.
type SchedulerOptions struct {
	// Shards is the number of event loops; <= 0 means GOMAXPROCS.
	Shards int
	// QueueCap bounds each shard's message queue (default 1024).
	QueueCap int
	// Rec, when non-nil, supplies one flight recorder per shard; the
	// shard records its ingest stream (register/read/EOF) into it.
	Rec func(shard int) *trace.Recorder
}

// Scheduler owns a fixed set of shards. Sessions created with
// Config.Sched pointing here are adopted by one shard each; Stop drains
// and joins every loop.
type Scheduler struct {
	shards  []*shard
	nextKey atomic.Uint64
	stopped atomic.Bool

	// observer, when set before any session is adopted, is called from
	// the owning shard's loop at registration — the test hook behind the
	// single-ownership assertions.
	observer func(s *Session, shard int)
}

// NewScheduler starts opt.Shards event loops.
func NewScheduler(opt SchedulerOptions) *Scheduler {
	n := opt.Shards
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	qc := opt.QueueCap
	if qc <= 0 {
		qc = defaultQueueCap
	}
	sc := &Scheduler{shards: make([]*shard, n)}
	for i := range sc.shards {
		sh := &shard{
			idx:      i,
			sched:    sc,
			cmds:     make(chan shardMsg, qc),
			wakeCh:   make(chan struct{}, 1),
			stopCh:   make(chan struct{}),
			done:     make(chan struct{}),
			sessions: make(map[*Session]struct{}),
			ops:      make(map[*Session][]*expectOp),
			scratch:  make([]byte, 4096),
		}
		if opt.Rec != nil {
			sh.rec = opt.Rec(i)
		}
		sc.shards[i] = sh
		go sh.loop()
	}
	return sc
}

// NumShards returns the shard count.
func (sc *Scheduler) NumShards() int { return len(sc.shards) }

// ShardRecorder returns shard i's flight recorder (nil unless
// SchedulerOptions.Rec supplied one).
func (sc *Scheduler) ShardRecorder(i int) *trace.Recorder { return sc.shards[i].rec }

// QueueDepths samples each shard's current backlog: queued messages plus
// dirty sessions awaiting a sweep.
func (sc *Scheduler) QueueDepths() []int {
	out := make([]int, len(sc.shards))
	for i, sh := range sc.shards {
		sh.dirtyMu.Lock()
		d := len(sh.dirty)
		sh.dirtyMu.Unlock()
		out[i] = len(sh.cmds) + d
	}
	return out
}

// PeakQueueDepths returns the high-water backlog each shard has seen.
func (sc *Scheduler) PeakQueueDepths() []int {
	out := make([]int, len(sc.shards))
	for i, sh := range sc.shards {
		out[i] = int(sh.depthPeak.Load())
	}
	return out
}

// Dropped counts events a shard lost: expect waiters failed at the drain
// deadline and chunks discarded after a forced exit. A clean run —
// sessions closed and drained before Stop — is structurally zero, and the
// soak test asserts exactly that.
func (sc *Scheduler) Dropped() uint64 {
	var n uint64
	for _, sh := range sc.shards {
		n += sh.dropped.Load()
	}
	return n
}

// Stop drains and joins every shard loop. Sessions should be closed (and
// ideally WaitPumpDrained) first; a loop still owning live sessions keeps
// servicing them for drainGrace before failing their waiters.
func (sc *Scheduler) Stop() {
	if sc == nil || sc.stopped.Swap(true) {
		return
	}
	for _, sh := range sc.shards {
		close(sh.stopCh)
	}
	for _, sh := range sc.shards {
		<-sh.done
	}
	// Loops are gone; tear down the readiness pollers they accreted. Any
	// connection still registered is finished with a clean hangup, the
	// same verdict a killed reader goroutine would yield.
	for _, sh := range sc.shards {
		sh.stopPoller()
	}
}

// adopt hashes s onto a shard and hands ownership of its read side to
// that shard's loop. Returns nil (caller falls back to a pump goroutine)
// if the scheduler is stopped.
func (sc *Scheduler) adopt(s *Session) *shard {
	if sc == nil || sc.stopped.Load() {
		return nil
	}
	key := sc.nextKey.Add(1)
	sh := sc.shards[ShardHash(key, len(sc.shards))]
	s.shard = sh
	s.shardKey = key
	if s.p.EventCapable() {
		s.notifyMode = true
		s.ownedMode = s.p.OwnedCapable()
		s.p.SetReadNotify(func() { sh.markDirty(s) })
		// A deferred network connection has no ingest producer yet: claim
		// it for this shard's readiness loop, or start its fallback reader.
		// The doorbell is already installed, so no arrival can slip by.
		sh.attachNetIngest(s)
	}
	sh.post(shardMsg{kind: msgRegister, s: s})
	if s.notifyMode {
		// The doorbell went in after the child started: ring once
		// unconditionally so output — or an exit — that predates it is
		// swept at registration instead of waited on forever.
		sh.markDirty(s)
	} else {
		go s.feed(sh)
	}
	return sh
}

type shardMsgKind uint8

const (
	msgRegister shardMsgKind = iota
	msgChunk
	msgEOF
	msgExpect
	// msgStep asks the owner to re-attempt a session's parked ops — sent
	// when a non-owning shard applied a chunk on a migrated session's
	// behalf (its feeder still targets the old queue).
	msgStep
	// msgDetach (to the source loop) and msgAttach (to the destination
	// loop) are the two halves of Scheduler.Migrate.
	msgDetach
	msgAttach
	// msgCheckpoint asks the owning loop for a session snapshot that
	// includes its parked expect ops.
	msgCheckpoint
	// msgInspect asks a loop for a telemetry snapshot of everything it
	// owns — sessions, parked ops, earliest deadlines — taken on the loop
	// itself, so it is consistent with the loop's own view (no session is
	// half-registered or mid-step in the reply).
	msgInspect
)

type shardMsg struct {
	kind shardMsgKind
	s    *Session
	data []byte
	err  error
	op   *expectOp
	mig  *migration
}

// migration carries the cross-loop state of one Migrate or loop-side
// checkpoint: the destination shard, the expect ops pulled off the source
// loop, and the reply channels (each buffered, written exactly once).
type migration struct {
	dst   *shard
	ops   []*expectOp
	reply chan error
	cpc   chan *SessionCheckpoint
	insp  chan ShardSnapshot
}

type shard struct {
	idx    int
	sched  *Scheduler
	cmds   chan shardMsg
	wakeCh chan struct{}
	stopCh chan struct{}
	done   chan struct{}
	rec    *trace.Recorder

	dirtyMu sync.Mutex
	dirty   []*Session

	// Loop-owned state; no other goroutine touches it.
	sessions   map[*Session]struct{}
	ops        map[*Session][]*expectOp
	timers     opHeap
	scratch    []byte
	touched    []*Session // sessions with chunks applied this batch, step pending
	draining   bool
	drainUntil time.Time

	depthPeak atomic.Int64
	dropped   atomic.Uint64

	// wake distributes how long each loop wakeup's servicing took — one
	// observation per cmds batch or dirty sweep, so it prices the batch,
	// not the message. Lock-free Observe on the loop, lock-free Merge by
	// the telemetry plane; /debug/shards reports its percentiles.
	wake metrics.Histogram

	// Readiness poller, created lazily at the first network adoption and
	// shared by every socket session on this shard: O(shards) ingest
	// goroutines instead of O(connections). pollTried latches a failed
	// creation (non-linux) so each adoption doesn't retry the syscall.
	pollMu    sync.Mutex
	poll      *netx.Poller
	pollTried bool
}

// netPoller returns the shard's readiness poller, creating it on first
// use; nil when the platform has none (callers fall back to a reader
// goroutine per connection).
func (sh *shard) netPoller() *netx.Poller {
	sh.pollMu.Lock()
	defer sh.pollMu.Unlock()
	if !sh.pollTried {
		sh.pollTried = true
		if p, err := netx.NewPoller(); err == nil {
			sh.poll = p
		}
	}
	return sh.poll
}

func (sh *shard) stopPoller() {
	sh.pollMu.Lock()
	p := sh.poll
	sh.poll = nil
	sh.pollTried = true
	sh.pollMu.Unlock()
	if p != nil {
		p.Close()
	}
}

// attachNetIngest gives a deferred socket transport its ingest producer:
// the shard's readiness loop when the platform and options allow, the
// connection's own fallback reader goroutine otherwise. Non-socket
// transports (virtual duplexes) need neither and pass through.
func (sh *shard) attachNetIngest(s *Session) {
	nc, ok := s.p.Transport().(*netx.Conn)
	if !ok {
		return
	}
	if nc.OwnedEnabled() {
		if p := sh.netPoller(); p != nil {
			if err := p.Register(nc); err == nil {
				return
			}
		}
	}
	nc.StartIngest()
}

// loop is the shard's event loop: one goroutine multiplexing the ingest,
// timers, and match attempts of every session hashed here.
func (sh *shard) loop() {
	defer close(sh.done)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		// Fire due deadlines and find the next one.
		now := time.Now()
		for sh.timers.Len() > 0 {
			next := sh.timers[0]
			if next.resolved {
				heap.Pop(&sh.timers)
				continue
			}
			if next.deadline.After(now) {
				break
			}
			heap.Pop(&sh.timers)
			next.timed = false
			if next.s.rec.On() {
				next.s.rec.Record(trace.KindTimerFire, next.s.sid, 0, 0, false, "", "")
			}
			sh.stepOp(next, now)
			now = time.Now()
		}
		var timerC <-chan time.Time
		if sh.timers.Len() > 0 {
			timer.Reset(sh.timers[0].deadline.Sub(now))
			timerC = timer.C
		} else if sh.draining {
			timer.Reset(time.Until(sh.drainUntil))
			timerC = timer.C
		}

		if sh.draining {
			quiesced := len(sh.sessions) == 0 && len(sh.cmds) == 0 && len(sh.ops) == 0
			if quiesced || now.After(sh.drainUntil) {
				sh.disarm(timer, timerC)
				sh.shutdown()
				return
			}
		}

		select {
		case m := <-sh.cmds:
			sh.disarm(timer, timerC)
			wake := time.Now()
			sh.handle(m)
			// Batch whatever else is already queued before re-arming.
			for more := true; more; {
				select {
				case m := <-sh.cmds:
					sh.handle(m)
				default:
					more = false
				}
			}
			// Step every session the batch touched exactly once, so a
			// feeder delivering one logical write as many small reads
			// produces one match attempt against the accumulated buffer —
			// the same scan granularity the pump's coalesced wakeup gives
			// the classic path. Stepping per chunk instead would let an
			// early `*foo*` glob consume a prefix the pump path never
			// observes in isolation.
			sh.stepTouched()
			sh.wake.Observe(time.Since(wake))
		case <-sh.wakeCh:
			sh.disarm(timer, timerC)
			wake := time.Now()
			sh.drainDirty()
			sh.wake.Observe(time.Since(wake))
		case <-timerC:
		case <-sh.stopCh:
			sh.disarm(timer, timerC)
			sh.draining = true
			sh.drainUntil = time.Now().Add(drainGrace)
			sh.stopCh = nil
		}
	}
}

// disarm stops the loop timer and clears a pending tick.
func (sh *shard) disarm(t *time.Timer, armed <-chan time.Time) {
	if armed == nil {
		return
	}
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
}

// shutdown is the forced exit at the drain deadline: whatever is still
// queued or parked is failed rather than stranded, and every loss is
// counted in dropped.
func (sh *shard) shutdown() {
	for {
		select {
		case m := <-sh.cmds:
			switch m.kind {
			case msgChunk:
				sh.dropped.Add(1)
			case msgEOF:
				m.s.closePumpDone()
			case msgExpect:
				sh.dropped.Add(1)
				m.op.resolved = true
				m.op.ch <- expectOutcome{nil, ErrClosed}
			case msgDetach:
				m.mig.reply <- ErrClosed
			case msgAttach:
				for _, op := range m.mig.ops {
					if !op.resolved {
						sh.dropped.Add(1)
						op.resolved = true
						op.ch <- expectOutcome{nil, ErrClosed}
					}
				}
				m.s.closePumpDone()
				m.mig.reply <- ErrClosed
			case msgCheckpoint:
				// No reply; the requester's select sees sh.done close.
			case msgInspect:
				// The loop is gone; reply with an empty snapshot so a
				// scraper that raced the drain never hangs.
				m.mig.insp <- ShardSnapshot{Shard: sh.idx}
			}
		default:
			for s, ops := range sh.ops {
				for _, op := range ops {
					if !op.resolved {
						sh.dropped.Add(1)
						op.resolved = true
						op.ch <- expectOutcome{nil, ErrClosed}
					}
				}
				delete(sh.ops, s)
			}
			for s := range sh.sessions {
				s.closePumpDone()
				delete(sh.sessions, s)
			}
			return
		}
	}
}

func (sh *shard) handle(m shardMsg) {
	switch m.kind {
	case msgRegister:
		if m.s.shardEOF.Load() {
			return
		}
		sh.sessions[m.s] = struct{}{}
		if ob := sh.sched.observer; ob != nil {
			ob(m.s, sh.idx)
		}
		if sh.rec.On() {
			sh.rec.Record(trace.KindSpawn, m.s.sid, int64(sh.idx), 0, false, m.s.name, "shard")
		}
		if m.s.notifyMode {
			// The child may have spoken — or hung up — before we existed.
			sh.ingest(m.s)
		}
	case msgChunk:
		m.s.applyChunk(m.data)
		if sh.rec.On() {
			sh.rec.RecordBytes(trace.KindRead, m.s.sid, int64(len(m.data)), 0, false, m.data, nil)
		}
		if own := m.s.owningShard(); own != sh && own != nil {
			// The session migrated away but its feeder still targets this
			// queue — which is what keeps chunk order intact, since every
			// chunk flows through here in sequence. The bytes are applied
			// above (applyChunk is lock-protected and owner-agnostic); only
			// the match attempt belongs to the owner, so ping it.
			go forwardMsg(own, shardMsg{kind: msgStep, s: m.s})
			return
		}
		// Deferred: the loop steps touched sessions after the whole batch
		// is applied (see the cmds case in loop).
		sh.touch(m.s)
	case msgEOF:
		if own := m.s.owningShard(); own != sh && own != nil {
			// EOF is the feeder's last word; all prior chunks are already
			// applied, so the owner can finish the session whole.
			go forwardMsg(own, m)
			return
		}
		sh.finishSession(m.s, m.err)
	case msgExpect:
		if own := m.s.owningShard(); own != sh && own != nil {
			go forwardMsg(own, m)
			return
		}
		sh.admitOp(m.op)
	case msgStep:
		if own := m.s.owningShard(); own != sh && own != nil {
			go forwardMsg(own, m)
			return
		}
		sh.stepSession(m.s)
	case msgDetach:
		sh.detach(m)
	case msgAttach:
		sh.attach(m)
	case msgCheckpoint:
		if own := m.s.owningShard(); own != sh && own != nil {
			go forwardMsg(own, m)
			return
		}
		cp := m.s.Checkpoint()
		now := time.Now()
		for _, op := range sh.ops[m.s] {
			if !op.resolved {
				cp.Pending = append(cp.Pending, op.checkpoint(now))
			}
		}
		m.mig.cpc <- cp
	case msgInspect:
		m.mig.insp <- sh.inspect(time.Now())
	}
}

// forwardMsg re-posts a message to the shard that owns its session now —
// the catch-all for messages that raced a migration. Runs off-loop (a
// blocking loop→loop post could deadlock two busy shards against each
// other); ordering across forwarded messages doesn't matter, because the
// only forwarded kinds are idempotent steps, the final EOF, checkpoint
// requests, and not-yet-admitted expects.
func forwardMsg(own *shard, m shardMsg) {
	select {
	case own.cmds <- m:
		own.noteDepth(len(own.cmds))
	case <-own.done:
		switch m.kind {
		case msgExpect:
			m.op.ch <- expectOutcome{nil, ErrClosed}
		case msgEOF:
			m.s.closePumpDone()
		}
	}
}

// post delivers a message to the loop, blocking when the queue is full —
// the bounded-queue backpressure of invariant 3.
func (sh *shard) post(m shardMsg) {
	sh.cmds <- m
	sh.noteDepth(len(sh.cmds))
}

// postFeeder is post for reader goroutines, which must not deadlock
// against a loop that already exited; it reports whether the loop can
// still see the message.
func (sh *shard) postFeeder(m shardMsg) bool {
	select {
	case sh.cmds <- m:
		sh.noteDepth(len(sh.cmds))
		return true
	case <-sh.done:
		if m.kind == msgEOF {
			m.s.closePumpDone()
		} else {
			sh.dropped.Add(1)
		}
		return false
	}
}

func (sh *shard) noteDepth(d int) {
	for {
		cur := sh.depthPeak.Load()
		if int64(d) <= cur || sh.depthPeak.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// markDirty flags a session whose transport has readable bytes (or EOF)
// and rings the shard. Safe from any goroutine; the swap coalesces
// repeated rings into one sweep.
func (sh *shard) markDirty(s *Session) {
	if s.inDirty.Swap(true) {
		return
	}
	sh.dirtyMu.Lock()
	sh.dirty = append(sh.dirty, s)
	d := len(sh.dirty)
	sh.dirtyMu.Unlock()
	sh.noteDepth(d + len(sh.cmds))
	select {
	case sh.wakeCh <- struct{}{}:
	default:
	}
}

// drainDirty is two-phase: drain every rung session's transport first,
// then step the touched set once. One poll round that readied N sockets
// of the same shard costs one sweep with one match attempt per session,
// however many segments each delivered — the batch granularity contract.
func (sh *shard) drainDirty() {
	sh.dirtyMu.Lock()
	ds := sh.dirty
	sh.dirty = nil
	sh.dirtyMu.Unlock()
	for _, s := range ds {
		// Clear before sweeping: a ring during the sweep re-queues the
		// session instead of being swallowed.
		s.inDirty.Store(false)
		sh.ingest(s)
	}
	sh.stepTouched()
}

// touch defers a session's match attempt to the end of the current ingest
// batch, coalescing however many chunks arrive meanwhile into one step.
func (sh *shard) touch(s *Session) {
	if !s.stepPending {
		s.stepPending = true
		sh.touched = append(sh.touched, s)
	}
}

// stepTouched steps every session the current batch touched exactly once.
func (sh *shard) stepTouched() {
	for _, s := range sh.touched {
		if s.stepPending {
			s.stepPending = false
			sh.stepSession(s)
		}
	}
	sh.touched = sh.touched[:0]
}

// maxSweepReads bounds how long one session may hold the loop; a firehose
// re-queues itself so its shard-mates still get stepped.
const maxSweepReads = 16

// ingest drains an event-capable transport from the loop — TryReadOwned
// segment handoff for zero-copy sockets, copying TryRead otherwise —
// then defers the session's match attempt to the end of the batch.
func (sh *shard) ingest(s *Session) {
	if s.shardEOF.Load() {
		return
	}
	if own := s.owningShard(); own != sh {
		// Rung on a stale doorbell mid-migration: pass the ring to the
		// owner. The bytes stay queued in the transport until the owner
		// drains them, so nothing is applied out of order here.
		if own != nil {
			own.markDirty(s)
		}
		return
	}
	if s.ownedMode {
		sh.ingestOwned(s)
		return
	}
	for reads := 0; reads < maxSweepReads; reads++ {
		stop := s.prof.Start(metrics.PhaseIO)
		n, ok, err := s.p.TryRead(sh.scratch)
		stop()
		if n > 0 {
			if s.ingest != nil {
				s.ingest.AddCopied(n)
			}
			s.applyChunk(sh.scratch[:n])
			if sh.rec.On() {
				sh.rec.RecordBytes(trace.KindRead, s.sid, int64(n), 0, false, sh.scratch[:n], nil)
			}
			sh.touch(s)
		}
		if !ok {
			return
		}
		if err != nil {
			if isTransient(err) {
				continue
			}
			sh.finishSession(s, err)
			return
		}
	}
	sh.markDirty(s)
}

// ingestOwned is ingest for ownership-transfer transports: each queued
// segment moves from the connection's inbox into the session whole — no
// scratch buffer, no copy in the steady state — and the lease travels
// with it (applyOwned either adopts it as match-buffer backing or, when
// a partial match pins the window, copies and releases).
func (sh *shard) ingestOwned(s *Session) {
	for reads := 0; reads < maxSweepReads; reads++ {
		stop := s.prof.Start(metrics.PhaseIO)
		o, ok, err := s.p.TryReadOwned()
		stop()
		if o != nil {
			if sh.rec.On() {
				// Record before the handoff: the recorder copies what it
				// keeps, and the lease may end inside applyOwned.
				sh.rec.RecordBytes(trace.KindRead, s.sid, int64(len(o.Bytes())), 0, false, o.Bytes(), nil)
			}
			s.applyOwned(o)
			sh.touch(s)
		}
		if !ok {
			return
		}
		if err != nil {
			if isTransient(err) {
				continue
			}
			sh.finishSession(s, err)
			return
		}
	}
	sh.markDirty(s)
}

// finishSession applies EOF exactly once, resolves what it resolves, and
// releases the session from the shard.
func (sh *shard) finishSession(s *Session, err error) {
	if s.shardEOF.Swap(true) {
		return
	}
	s.applyEOF(err)
	if sh.rec.On() {
		sh.rec.Record(trace.KindEOF, s.sid, 0, 0, false, s.name, "")
	}
	sh.stepSession(s)
	delete(sh.sessions, s)
	s.closePumpDone()
}

// admitOp is the synchronous attempt of invariant 4: a new Expect is
// stepped immediately on the loop, so anything already ingested — a
// buffered match, an EOF from a child that died mid-schedule — resolves
// it here instead of stranding it in the parked set.
func (sh *shard) admitOp(op *expectOp) {
	s := op.s
	s.mu.Lock()
	res, err, done := op.stepLocked(time.Now())
	s.mu.Unlock()
	if done {
		sh.resolve(op, res, err)
		return
	}
	sh.ops[s] = append(sh.ops[s], op)
	if !op.deadline.IsZero() {
		heap.Push(&sh.timers, op)
		op.timed = true
		if s.rec.On() {
			s.rec.Record(trace.KindTimerArm, s.sid, int64(time.Until(op.deadline)), 0, false, "", "")
		}
	}
}

// stepSession re-attempts every expect parked on s after fresh input.
func (sh *shard) stepSession(s *Session) {
	ops := sh.ops[s]
	if len(ops) == 0 {
		return
	}
	now := time.Now()
	keep := ops[:0]
	for _, op := range ops {
		if op.resolved {
			continue
		}
		s.mu.Lock()
		res, err, done := op.stepLocked(now)
		s.mu.Unlock()
		if done {
			sh.resolve(op, res, err)
		} else {
			keep = append(keep, op)
		}
	}
	if len(keep) == 0 {
		delete(sh.ops, s)
	} else {
		sh.ops[s] = keep
	}
}

// stepOp re-attempts a single op whose deadline fired.
func (sh *shard) stepOp(op *expectOp, now time.Time) {
	if op.resolved {
		return
	}
	s := op.s
	s.mu.Lock()
	res, err, done := op.stepLocked(now)
	s.mu.Unlock()
	if !done {
		// The timer fired a hair early; re-arm.
		heap.Push(&sh.timers, op)
		op.timed = true
		return
	}
	sh.resolve(op, res, err)
	ops := sh.ops[s]
	for i, o := range ops {
		if o == op {
			ops = append(ops[:i], ops[i+1:]...)
			break
		}
	}
	if len(ops) == 0 {
		delete(sh.ops, s)
	} else {
		sh.ops[s] = ops
	}
}

func (sh *shard) resolve(op *expectOp, res *MatchResult, err error) {
	op.resolved = true
	op.ch <- expectOutcome{res, err}
}

// Migrate moves a shard-owned session to shard dst, carrying its parked
// expect ops and armed deadlines with it. It blocks until the destination
// loop has adopted the session (or until a loop shuts down). Chunks from
// a feeder that still targets the old shard keep being applied there — in
// order, since they all flow through one queue — with the match attempt
// forwarded to the new owner; doorbell transports are re-aimed at the
// destination during detach. A pending Expect therefore resolves on the
// destination loop with no bytes lost or reordered.
func (sc *Scheduler) Migrate(s *Session, dst int) error {
	if sc == nil || sc.stopped.Load() {
		return ErrClosed
	}
	if dst < 0 || dst >= len(sc.shards) {
		return fmt.Errorf("core: migrate: no shard %d (scheduler has %d)", dst, len(sc.shards))
	}
	dsh := sc.shards[dst]
	src := s.owningShard()
	if src == nil {
		return errors.New("core: migrate: session is not shard-owned")
	}
	if src == dsh {
		return nil
	}
	mig := &migration{dst: dsh, reply: make(chan error, 1)}
	select {
	case src.cmds <- shardMsg{kind: msgDetach, s: s, mig: mig}:
		src.noteDepth(len(src.cmds))
	case <-src.done:
		return ErrClosed
	}
	// Every path replies exactly once: detach errors reply on the source
	// loop, successful attaches on the destination loop, and loop
	// shutdowns reply ErrClosed from the drain handler.
	return <-mig.reply
}

// CheckpointSession snapshots a session including any Expect calls parked
// on its owning shard loop — state Session.Checkpoint alone cannot see.
// Pump-driven sessions fall back to the plain snapshot.
func (sc *Scheduler) CheckpointSession(s *Session) (*SessionCheckpoint, error) {
	sh := s.owningShard()
	if sh == nil {
		return s.Checkpoint(), nil
	}
	mig := &migration{cpc: make(chan *SessionCheckpoint, 1)}
	select {
	case sh.cmds <- shardMsg{kind: msgCheckpoint, s: s, mig: mig}:
		sh.noteDepth(len(sh.cmds))
	case <-sh.done:
		return nil, ErrClosed
	}
	select {
	case cp := <-mig.cpc:
		return cp, nil
	case <-sh.done:
		return nil, ErrClosed
	}
}

// detach is the source half of a migration, on the source loop: pull the
// session and its parked ops out of this shard's structures, flip the
// ownership pointer, re-aim the doorbell, and hand everything to the
// destination loop.
func (sh *shard) detach(m shardMsg) {
	s, mig := m.s, m.mig
	if _, owned := sh.sessions[s]; !owned {
		if s.shardEOF.Load() {
			mig.reply <- errors.New("core: migrate: session already finished")
		} else {
			mig.reply <- errors.New("core: migrate: session not owned by source shard")
		}
		return
	}
	mig.ops = sh.ops[s]
	delete(sh.ops, s)
	delete(sh.sessions, s)
	// Pull this session's deadlines out of the timer heap; the
	// destination re-arms them at admission.
	if len(mig.ops) > 0 && len(sh.timers) > 0 {
		kept := sh.timers[:0]
		for _, op := range sh.timers {
			if op.s == s {
				op.timed = false
				continue
			}
			kept = append(kept, op)
		}
		sh.timers = kept
		heap.Init(&sh.timers)
	}
	// Forget any pending batch step here; the destination sweeps and
	// steps at attach.
	if s.stepPending {
		s.stepPending = false
		for i, ts := range sh.touched {
			if ts == s {
				sh.touched = append(sh.touched[:i], sh.touched[i+1:]...)
				break
			}
		}
	}
	s.setShard(mig.dst)
	if s.notifyMode {
		dst := mig.dst
		s.p.SetReadNotify(func() { dst.markDirty(s) })
	}
	if sh.rec.On() {
		sh.rec.Record(trace.KindSpawn, s.sid, int64(sh.idx), int64(mig.dst.idx), false, s.name, "migrate-out")
	}
	// Hand over off-loop: a blocking loop→loop post could deadlock two
	// shards migrating toward each other.
	go func() {
		select {
		case mig.dst.cmds <- shardMsg{kind: msgAttach, s: s, mig: mig}:
			mig.dst.noteDepth(len(mig.dst.cmds))
		case <-mig.dst.done:
			for _, op := range mig.ops {
				if !op.resolved {
					op.resolved = true
					op.ch <- expectOutcome{nil, ErrClosed}
				}
			}
			mig.reply <- ErrClosed
		}
	}()
}

// attach is the destination half, on the destination loop: adopt the
// session, re-admit its ops (the synchronous admission step covers
// anything that arrived while the handoff was in flight), and sweep the
// transport in case the re-aimed doorbell rang into a void.
func (sh *shard) attach(m shardMsg) {
	s, mig := m.s, m.mig
	if !s.shardEOF.Load() {
		sh.sessions[s] = struct{}{}
		if ob := sh.sched.observer; ob != nil {
			ob(s, sh.idx)
		}
		if sh.rec.On() {
			sh.rec.Record(trace.KindSpawn, s.sid, int64(sh.idx), 0, false, s.name, "migrate-in")
		}
	}
	for _, op := range mig.ops {
		if !op.resolved {
			sh.admitOp(op)
		}
	}
	if s.notifyMode && !s.shardEOF.Load() {
		sh.ingest(s)
	}
	mig.reply <- nil
}

// runExpect hands an op to the owning shard and blocks the caller until
// the loop resolves it.
func (sh *shard) runExpect(op *expectOp) (*MatchResult, error) {
	op.ch = make(chan expectOutcome, 1)
	select {
	case sh.cmds <- shardMsg{kind: msgExpect, s: op.s, op: op}:
		sh.noteDepth(len(sh.cmds))
	case <-sh.done:
		return nil, ErrClosed
	}
	select {
	case out := <-op.ch:
		return out.res, out.err
	case <-sh.done:
		// The loop exited; its shutdown path resolves admitted ops, so
		// one more non-blocking look before giving up.
		select {
		case out := <-op.ch:
			return out.res, out.err
		default:
			return nil, ErrClosed
		}
	}
}

// feed is the dedicated reader for transports that cannot TryRead (pty,
// pipe, fault-wrapped): blocking reads, chunks posted into the owning
// shard's bounded queue.
func (s *Session) feed(sh *shard) {
	chunk := make([]byte, 4096)
	for {
		stop := s.prof.Start(metrics.PhaseIO)
		n, err := s.rw.Read(chunk)
		stop()
		if n > 0 {
			data := make([]byte, n)
			copy(data, chunk[:n])
			if s.ingest != nil {
				// The clone is a real ingest-path copy+alloc; the queue
				// hand-off that follows is not.
				s.ingest.AddCopied(n)
				s.ingest.AddAlloc()
			}
			if !sh.postFeeder(shardMsg{kind: msgChunk, s: s, data: data}) {
				return
			}
		}
		if err != nil {
			if isTransient(err) {
				continue
			}
			sh.postFeeder(shardMsg{kind: msgEOF, s: s, err: err})
			return
		}
	}
}

// opHeap orders parked expect ops by deadline (earliest first); resolved
// entries are skipped lazily by the loop.
type opHeap []*expectOp

func (h opHeap) Len() int           { return len(h) }
func (h opHeap) Less(i, j int) bool { return h[i].deadline.Before(h[j].deadline) }
func (h opHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *opHeap) Push(x any)        { *h = append(*h, x.(*expectOp)) }
func (h *opHeap) Pop() any {
	old := *h
	n := len(old)
	op := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return op
}
