package core

import (
	"bufio"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"repro/internal/faultify"
	"repro/internal/proc"
	"repro/internal/testutil"
	"repro/internal/trace"
)

// echoLines is the canonical sharded-test child: one "echo:<line>" reply
// per newline-terminated line, exiting on stdin EOF.
func echoLines(stdin io.Reader, stdout io.Writer) error {
	sc := bufio.NewScanner(stdin)
	for sc.Scan() {
		fmt.Fprintf(stdout, "echo:%s\n", sc.Text())
	}
	return nil
}

// TestShardHashGolden pins the splitmix64 mapping: assignment stability
// across processes and releases is part of the scheduler contract (same
// spawn order → same shards), so the function must never drift.
func TestShardHashGolden(t *testing.T) {
	cases := []struct {
		key  uint64
		n    int
		want int
	}{
		{1, 8, 1},
		{2, 8, 6},
		{3, 8, 5},
		{100, 8, 4},
		{1, 2, 1},
		{2, 2, 0},
		{12345, 16, 0},
		{1 << 40, 7, 5},
		{18446744073709551615, 9, 8},
		// Degenerate shard counts all collapse to 0.
		{99, 1, 0},
		{99, 0, 0},
		{99, -3, 0},
	}
	for _, tc := range cases {
		if got := ShardHash(tc.key, tc.n); got != tc.want {
			t.Errorf("ShardHash(%d, %d) = %d, want %d", tc.key, tc.n, got, tc.want)
		}
	}
}

// TestShardHashDistribution checks sequential keys (the scheduler's
// allocation pattern) spread evenly: no shard may carry more than a
// modest excess over the fair share.
func TestShardHashDistribution(t *testing.T) {
	const n, keys = 8, 8000
	counts := make([]int, n)
	for k := uint64(1); k <= keys; k++ {
		counts[ShardHash(k, n)]++
	}
	fair := keys / n
	for i, c := range counts {
		if c < fair*8/10 || c > fair*12/10 {
			t.Errorf("shard %d holds %d of %d keys (fair %d ±20%%): %v", i, c, keys, fair, counts)
		}
	}
}

// FuzzShardHash asserts the two properties everything else builds on:
// the result is always a valid index, and the function is a pure
// function of (key, n).
func FuzzShardHash(f *testing.F) {
	f.Add(uint64(0), 1)
	f.Add(uint64(1), 8)
	f.Add(uint64(1<<63), 3)
	f.Add(uint64(18446744073709551615), 1024)
	f.Add(uint64(42), -5)
	f.Fuzz(func(t *testing.T, key uint64, n int) {
		got := ShardHash(key, n)
		if n <= 1 {
			if got != 0 {
				t.Fatalf("ShardHash(%d, %d) = %d, want 0", key, n, got)
			}
			return
		}
		if got < 0 || got >= n {
			t.Fatalf("ShardHash(%d, %d) = %d out of [0,%d)", key, n, got, n)
		}
		if again := ShardHash(key, n); again != got {
			t.Fatalf("ShardHash(%d, %d) nondeterministic: %d then %d", key, n, got, again)
		}
	})
}

// TestShardAssignmentStability churns sessions through spawn → dialogue →
// close → respawn on an 8-shard scheduler and asserts the ownership
// invariants: every session is registered by exactly one shard, that
// shard is the one its key hashes to, and the per-shard trace recorders
// never see one SID from two shards.
func TestShardAssignmentStability(t *testing.T) {
	recs := make([]*trace.Recorder, 8)
	sc := NewScheduler(SchedulerOptions{Shards: 8, Rec: func(i int) *trace.Recorder {
		recs[i] = trace.New(4096)
		recs[i].SetRecording(true)
		return recs[i]
	}})
	defer sc.Stop()

	var obMu sync.Mutex
	observed := make(map[*Session][]int)
	sc.observer = func(s *Session, shard int) {
		obMu.Lock()
		observed[s] = append(observed[s], shard)
		obMu.Unlock()
	}

	spawnOne := func(sid int) *Session {
		t.Helper()
		s, err := SpawnProgram(&Config{Sched: sc, SID: int32(sid)},
			fmt.Sprintf("echo-%d", sid), echoLines)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	dialogue := func(s *Session, i int) {
		t.Helper()
		if err := s.Send(fmt.Sprintf("m%d\n", i)); err != nil {
			t.Fatal(err)
		}
		if _, err := s.ExpectTimeout(5*time.Second, Exact(fmt.Sprintf("echo:m%d\n", i))); err != nil {
			t.Fatalf("sid %d: %v", i, err)
		}
	}
	closeOne := func(s *Session) {
		t.Helper()
		s.Close()
		s.WaitPumpDrained()
	}

	// Three generations of spawn/close/respawn with distinct SIDs.
	sid := 0
	var all []*Session
	for gen := 0; gen < 3; gen++ {
		var live []*Session
		for i := 0; i < 20; i++ {
			s := spawnOne(sid)
			dialogue(s, sid)
			live = append(live, s)
			all = append(all, s)
			sid++
		}
		for _, s := range live {
			closeOne(s)
		}
	}

	obMu.Lock()
	defer obMu.Unlock()
	if len(observed) != len(all) {
		t.Fatalf("observed %d sessions, spawned %d", len(observed), len(all))
	}
	for _, s := range all {
		shards := observed[s]
		if len(shards) != 1 {
			t.Fatalf("session %s observed by shards %v, want exactly one", s.Name(), shards)
		}
		if want := ShardHash(s.shardKey, 8); shards[0] != want {
			t.Errorf("session %s on shard %d, key %d hashes to %d", s.Name(), shards[0], s.shardKey, want)
		}
		if s.ShardIndex() != shards[0] {
			t.Errorf("session %s ShardIndex()=%d, observed %d", s.Name(), s.ShardIndex(), shards[0])
		}
	}

	// Trace SIDs stay unique to one shard: no recorder shares a SID with
	// another recorder's stream.
	sidShard := make(map[int32]int)
	for i, rec := range recs {
		events, err := trace.ParseJSONL(rec.Dump(0))
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range events {
			if prev, ok := sidShard[ev.SID]; ok && prev != i {
				t.Fatalf("SID %d recorded by shard %d and shard %d", ev.SID, prev, i)
			}
			sidShard[ev.SID] = i
		}
	}
	if len(sidShard) != len(all) {
		t.Errorf("per-shard recorders saw %d distinct SIDs, want %d", len(sidShard), len(all))
	}
}

// TestShardedEOFBeforeExpectResolves is the missed-wakeup regression for
// the admission path: the child speaks a partial pattern and exits before
// the first Expect is even issued. Without admitOp's synchronous attempt
// (and adopt's initial doorbell) the op would park forever, since no
// further ingest event will ever arrive for this session.
func TestShardedEOFBeforeExpectResolves(t *testing.T) {
	sc := NewScheduler(SchedulerOptions{Shards: 2})
	defer sc.Stop()
	s, err := SpawnProgram(&Config{Sched: sc}, "dier", func(stdin io.Reader, stdout io.Writer) error {
		io.WriteString(stdout, "par") // partial pattern, then gone
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Let the shard ingest the output and the EOF before the expect exists.
	s.WaitPumpDrained()

	start := time.Now()
	m, err := s.ExpectTimeout(10*time.Second, Exact("partial-never-completes"), EOFCase())
	if err != nil {
		t.Fatalf("expect: %v", err)
	}
	if !m.Eof || m.Text != "par" {
		t.Fatalf("got %+v, want EOF case with buffered text \"par\"", m)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("EOF resolution took %v — waiter was stranded", elapsed)
	}
}

// TestShardedFanInCutChildNoHang is the select.go fan-in regression: two
// sharded sessions, one of which dies mid-dialogue under a faultify
// CutAfterBytes schedule (EOF with a partial pattern buffered). Select
// must report the dead session readable promptly, and the follow-up
// Expect must resolve its EOF — a missed wakeup would ride out the full
// deadline instead.
func TestShardedFanInCutChildNoHang(t *testing.T) {
	sc := NewScheduler(SchedulerOptions{Shards: 2})
	defer sc.Stop()

	quiet, err := SpawnProgram(&Config{Sched: sc}, "quiet", func(stdin io.Reader, stdout io.Writer) error {
		io.Copy(io.Discard, stdin)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer quiet.Close()

	// The cut transport delivers 5 bytes of "echo:hello\n" and then EOFs
	// forever: the child exits, from the engine's point of view, between
	// the attempt and the wait. The wrapper also makes the transport
	// non-event-capable, so this exercises the feeder path.
	sched := faultify.Schedule{Seed: 7, CutAfterBytes: 5}
	cut, err := SpawnProgram(&Config{
		Sched:        sc,
		SpawnOptions: proc.Options{WrapTransport: faultify.Wrapper(sched, nil)},
	}, "cut-echo", echoLines)
	if err != nil {
		t.Fatal(err)
	}
	defer cut.Close()

	if err := cut.Send("hello\n"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	ready := Select(8*time.Second, quiet, cut)
	if len(ready) != 1 || ready[0] != cut {
		t.Fatalf("Select returned %v, want just the cut session", ready)
	}
	m, err := cut.ExpectTimeout(8*time.Second, Exact("echo:hello\n"), EOFCase())
	if err != nil {
		t.Fatalf("expect after cut: %v", err)
	}
	if !m.Eof {
		t.Fatalf("got %+v, want the EOF case", m)
	}
	if m.Text != "echo:" {
		t.Fatalf("buffered text %q, want the 5 delivered bytes \"echo:\"", m.Text)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("fan-in EOF took %v — wakeup was missed", elapsed)
	}
}

// TestShardedExpectAny drives the combined expect/select across sessions
// owned by different shards.
func TestShardedExpectAny(t *testing.T) {
	sc := NewScheduler(SchedulerOptions{Shards: 4})
	defer sc.Stop()
	var sessions []*Session
	for i := 0; i < 4; i++ {
		s, err := SpawnProgram(&Config{Sched: sc}, fmt.Sprintf("e%d", i), echoLines)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		sessions = append(sessions, s)
	}
	if err := sessions[2].Send("winner\n"); err != nil {
		t.Fatal(err)
	}
	s, m, err := ExpectAny(5*time.Second, sessions, Exact("echo:winner\n"))
	if err != nil {
		t.Fatal(err)
	}
	if s != sessions[2] || m.Index != 0 {
		t.Fatalf("ExpectAny picked %v idx %d, want sessions[2] idx 0", s, m.Index)
	}
}

// TestShardedChurnDoesNotLeakGoroutines is the scheduler counterpart of
// the pump-churn leak test: sessions come and go, shard loops stay, and
// nothing accumulates.
func TestShardedChurnDoesNotLeakGoroutines(t *testing.T) {
	defer testutil.LeakCheck(t, 10, 5*time.Second)()
	sc := NewScheduler(SchedulerOptions{Shards: 4})
	const churn = 200
	for i := 0; i < churn; i++ {
		s, err := SpawnProgram(&Config{Sched: sc}, fmt.Sprintf("p%d", i), echoLines)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Send("x\n"); err != nil {
			t.Fatal(err)
		}
		if _, err := s.ExpectTimeout(5*time.Second, Exact("echo:x\n")); err != nil {
			t.Fatal(err)
		}
		s.Close()
		s.WaitPumpDrained()
	}
	sc.Stop()
	if d := sc.Dropped(); d != 0 {
		t.Errorf("dropped %d events during clean churn", d)
	}
}

// TestSchedulerStopFailsLateExpect pins the shutdown contract: once the
// loops are gone, a straggling Expect gets ErrClosed instead of hanging.
func TestSchedulerStopFailsLateExpect(t *testing.T) {
	sc := NewScheduler(SchedulerOptions{Shards: 1})
	s, err := SpawnProgram(&Config{Sched: sc}, "late", echoLines)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.WaitPumpDrained()
	sc.Stop()
	// The session is at EOF, so even post-Stop the admission fast path
	// could in principle answer; what must not happen is a hang.
	done := make(chan error, 1)
	go func() {
		_, err := s.ExpectTimeout(time.Second, Exact("never"))
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("want an error from post-Stop expect")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("post-Stop expect hung")
	}
}
