package experiments

import "fmt"

// Spec names one runnable experiment.
type Spec struct {
	ID    string
	Title string
	Run   func() (Result, error)
}

// All returns every experiment, sized for a full report run. repoRoot is
// needed by the code-size experiment (E3).
func All(repoRoot string) []Spec {
	return []Spec{
		{"E1", "rogue throughput", func() (Result, error) { return RogueThroughput(200) }},
		{"E2", "phase breakdown", func() (Result, error) { return PhaseBreakdown(200) }},
		{"E3", "code size", func() (Result, error) { return CodeSize(repoRoot) }},
		{"E4", "match_max forgetting", MatchMaxSweep},
		{"E5", "matcher rescan vs incremental", MatcherComparison},
		{"E6", "select scaling + V7 process count", SelectScaling},
		{"E7", "input flushing", FlushComparison},
		{"E8", "expect vs human", HumanVsExpect},
		{"E9", "pipe interposition penalty", PipePenalty},
		{"E12", "capability matrix", CapabilityMatrix},
		{"E13", "timeout semantics", TimeoutSemantics},
		{"E15", "hot-path compilation caches", HotPathCaches},
		{"E16", "flight-recorder overhead", TraceOverhead},
		{"E17", "sharded scheduler scaling", ShardScaling},
		{"E18", "socket transport scaling via expectd", func() (Result, error) { return NetworkScaling(repoRoot) }},
		{"E19", "zero-copy socket ingest via segment ownership transfer", func() (Result, error) { return ZeroCopyIngest(repoRoot) }},
		{"E20", "replay journal & checkpoint economics", ReplayEconomics},
		{"E21", "telemetry plane economics", TelemetryEconomics},
		{"E22", "register bytecode vm economics", VMBytecode},
		{"E23", "session gateway: 100k multiplexed sessions via expectd -mux", func() (Result, error) { return MuxGatewayScaling(repoRoot) }},
	}
}

// RunAll executes every experiment and returns the formatted report.
// Experiments E10/E11/E14 are behavioural reproductions of Figures 1–4
// and the paper's scripts; they live in the test suite (internal/core
// and repo-level integration tests) rather than here.
func RunAll(repoRoot string) (string, []Result, error) {
	var out string
	var results []Result
	for _, spec := range All(repoRoot) {
		r, err := spec.Run()
		if err != nil {
			return out, results, fmt.Errorf("%s (%s): %w", spec.ID, spec.Title, err)
		}
		results = append(results, r)
		out += r.Format() + "\n"
	}
	return out, results, nil
}
