package experiments

import (
	"time"

	"repro/internal/baseline/kermit"
	"repro/internal/baseline/stelnet"
	"repro/internal/baseline/uucpchat"
	"repro/internal/core"
	"repro/internal/proc"
	"repro/internal/programs/authsim"
)

// CapabilityMatrix is experiment E12: the same login task under the three
// generations of dialogue automation — uucp chat strings (§7.1), stelnet
// straight-line conversations (§9), and expect — across scenarios that
// perturb the happy path. The baselines' source-level limitations (no
// branching, no retry, fixed strings) decide the outcomes.
func CapabilityMatrix() (Result, error) {
	type scenario struct {
		name string
		cfg  func(attempt int) authsim.LoginConfig
	}
	scenarios := []scenario{
		{"plain login", func(int) authsim.LoginConfig {
			return authsim.LoginConfig{Accounts: map[string]string{"uucp": "secret"}}
		}},
		{"busy twice, then free", func(attempt int) authsim.LoginConfig {
			return authsim.LoginConfig{
				Accounts: map[string]string{"uucp": "secret"},
				Busy:     attempt < 2,
			}
		}},
		{"variant prompt (Username:)", func(int) authsim.LoginConfig {
			return authsim.LoginConfig{
				Accounts:      map[string]string{"uucp": "secret"},
				PromptVariant: true,
			}
		}},
		{"first password rejected", func(int) authsim.LoginConfig {
			// The account password is not the one the script tries first.
			return authsim.LoginConfig{Accounts: map[string]string{"uucp": "backup-pw"}}
		}},
	}

	t := &table{header: []string{"scenario", "uucp chat", "kermit", "stelnet", "expect"}}
	m := map[string]float64{}
	passes := map[string]int{}
	for _, sc := range scenarios {
		chatOK := runChatScenario(sc.cfg)
		kermitOK := runKermitScenario(sc.cfg)
		stelOK := runStelnetScenario(sc.cfg)
		expOK := runExpectScenario(sc.cfg)
		t.add(sc.name, passFail(chatOK), passFail(kermitOK), passFail(stelOK), passFail(expOK))
		for sys, ok := range map[string]bool{"chat": chatOK, "kermit": kermitOK, "stelnet": stelOK, "expect": expOK} {
			if ok {
				passes[sys]++
			}
		}
	}
	m["chat_passes"] = float64(passes["chat"])
	m["kermit_passes"] = float64(passes["kermit"])
	m["stelnet_passes"] = float64(passes["stelnet"])
	m["expect_passes"] = float64(passes["expect"])
	verdict := "expect handles every scenario; the baselines only the happy path — §7.1's \"quite primitive\" made concrete"
	if passes["expect"] != len(scenarios) || passes["chat"] >= passes["expect"] {
		verdict = "SHAPE MISMATCH: expect did not dominate the baselines"
	}
	return Result{
		ID:         "E12",
		Title:      "capability matrix: uucp chat vs kermit vs stelnet vs expect",
		PaperClaim: `"[uucp/kermit send-expect] are quite primitive and do not even provide adequate flexibility for their own tasks" (§7.1); stelnet "had only straight-line control without error processing" (§9)`,
		Table:      t.String(),
		Metrics:    m,
		Verdict:    verdict,
	}, nil
}

func passFail(ok bool) string {
	if ok {
		return "pass"
	}
	return "FAIL"
}

// runChatScenario: one uucp chat attempt (the chat language itself has no
// retry or branching; retries lived outside, in cron).
func runChatScenario(cfg func(int) authsim.LoginConfig) bool {
	p, err := proc.SpawnVirtual("login", authsim.NewLogin(cfg(0)), proc.Options{})
	if err != nil {
		return false
	}
	defer p.Close()
	r := uucpchat.NewRunner(p)
	r.Timeout = 400 * time.Millisecond
	script, _ := uucpchat.Parse(`ogin:--ogin: uucp ssword: secret elcome`)
	return r.Run(script) == nil
}

// runKermitScenario: one straight-line TAKE file, fixed strings, per-INPUT
// timeouts, no branching.
func runKermitScenario(cfg func(int) authsim.LoginConfig) bool {
	p, err := proc.SpawnVirtual("login", authsim.NewLogin(cfg(0)), proc.Options{})
	if err != nil {
		return false
	}
	defer p.Close()
	script, perr := kermit.Parse(
		"INPUT 0.4 login:\nOUTPUT uucp\\13\nINPUT 0.4 ssword:\nOUTPUT secret\\13\nINPUT 0.4 Welcome")
	if perr != nil {
		return false
	}
	return kermit.NewRunner(p).Run(script) == nil
}

// runStelnetScenario: one straight-line conversation, fixed strings.
func runStelnetScenario(cfg func(int) authsim.LoginConfig) bool {
	p, err := proc.SpawnVirtual("login", authsim.NewLogin(cfg(0)), proc.Options{})
	if err != nil {
		return false
	}
	defer p.Close()
	steps := []stelnet.Step{
		stelnet.Expect("login: "),
		stelnet.Send("uucp\n"),
		stelnet.Expect("Password: "),
		stelnet.Send("secret\n"),
		stelnet.Expect("Welcome"),
	}
	return stelnet.Run(p, steps, 400*time.Millisecond) == nil
}

// runExpectScenario: the full engine — respawn on busy, alternate prompt
// patterns, a fallback password on rejection.
func runExpectScenario(cfg func(int) authsim.LoginConfig) bool {
	for attempt := 0; attempt < 4; attempt++ {
		s, err := core.SpawnProgram(&core.Config{Timeout: 2 * time.Second}, "login",
			authsim.NewLogin(cfg(attempt)))
		if err != nil {
			return false
		}
		ok := func() bool {
			defer s.Close()
			passwords := []string{"secret", "backup-pw"}
			pi := 0
			for {
				// Case order is load-bearing, as in real scripts: the
				// success banner must outrank the prompt patterns because
				// "Last login:" would also match *login:*.
				r, err := s.Expect(
					core.Glob("*Welcome*"),
					core.Glob("*busy*"),
					core.Glob("*incorrect*"),
					core.Glob("*login:*"),
					core.Glob("*Username:*"),
				)
				if err != nil {
					return false
				}
				switch r.Index {
				case 0:
					return true
				case 1:
					return false // busy: caller respawns
				case 2: // rejected: branch to the fallback password
					if pi+1 < len(passwords) {
						pi++
					}
					s.Send("uucp\n")
					if _, err := s.ExpectMatch("*Password:*"); err != nil {
						return false
					}
					s.Send(passwords[pi] + "\n")
				case 3, 4: // either prompt flavor
					s.Send("uucp\n")
					if _, err := s.ExpectMatch("*Password:*"); err != nil {
						return false
					}
					s.Send(passwords[pi] + "\n")
				}
			}
		}()
		if ok {
			return true
		}
		// busy or dead: try a fresh connection, like the §3.1 fragment's
		// {*busy*} {print busy; continue} arm.
	}
	return false
}
