package experiments

import (
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/core"
)

// TimeoutSemantics is experiment E13: §3.1's timeout contract — "The
// default timeout period is 10 seconds but may, for example, be set to 30
// by the command set timeout 30." The sweep checks that a session's
// default is 10 s, that overridden timeouts fire when they should (within
// scheduler noise), that -1 waits past any configured deadline, and that
// a match always preempts the clock.
func TimeoutSemantics() (Result, error) {
	t := &table{header: []string{"configured", "observed", "error", "outcome"}}
	m := map[string]float64{}

	silent := func(stdin io.Reader, stdout io.Writer) error {
		io.Copy(io.Discard, stdin)
		return nil
	}

	// Default: a fresh session must carry the paper's 10 s.
	def, err := core.SpawnProgram(nil, "silent", silent)
	if err != nil {
		return Result{}, err
	}
	defaultTimeout := def.Timeout()
	def.Close()
	t.add("(default)", defaultTimeout.String(), "", "10s per §3.1")
	m["default_seconds"] = defaultTimeout.Seconds()

	worstErr := 0.0
	for _, d := range []time.Duration{100 * time.Millisecond, 500 * time.Millisecond, 1500 * time.Millisecond} {
		s, err := core.SpawnProgram(nil, "silent", silent)
		if err != nil {
			return Result{}, err
		}
		start := time.Now()
		_, eerr := s.ExpectTimeout(d, core.Glob("*never*"))
		observed := time.Since(start)
		s.Close()
		if !errors.Is(eerr, core.ErrTimeout) {
			return Result{}, fmt.Errorf("timeout %v: err = %v", d, eerr)
		}
		relErr := math.Abs(observed.Seconds()-d.Seconds()) / d.Seconds()
		if relErr > worstErr {
			worstErr = relErr
		}
		t.add(d.String(), observed.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1f%%", relErr*100), "timed out")
		m[fmt.Sprintf("rel_err_%dms", d.Milliseconds())] = relErr
	}

	// -1 waits forever: output arriving after any short deadline must win.
	late, err := core.SpawnProgram(nil, "late", func(stdin io.Reader, stdout io.Writer) error {
		time.Sleep(300 * time.Millisecond)
		fmt.Fprint(stdout, "finally\n")
		io.Copy(io.Discard, stdin)
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	start := time.Now()
	_, eerr := late.ExpectTimeout(-1, core.Glob("*finally*"))
	lateTook := time.Since(start)
	late.Close()
	outcome := "matched"
	if eerr != nil {
		outcome = fmt.Sprintf("ERROR: %v", eerr)
	}
	t.add("-1 (forever)", lateTook.Round(time.Millisecond).String(), "", outcome)

	// A match preempts a long timeout.
	quickMatch, err := core.SpawnProgram(nil, "prompt", func(stdin io.Reader, stdout io.Writer) error {
		fmt.Fprint(stdout, "prompt> ")
		io.Copy(io.Discard, stdin)
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	start = time.Now()
	_, eerr = quickMatch.ExpectTimeout(30*time.Second, core.Glob("*prompt>*"))
	preempt := time.Since(start)
	quickMatch.Close()
	if eerr != nil {
		return Result{}, fmt.Errorf("preempt: %v", eerr)
	}
	t.add("30s, data early", preempt.Round(time.Millisecond).String(), "", "match preempted clock")
	m["preempt_seconds"] = preempt.Seconds()
	m["worst_rel_err"] = worstErr

	verdict := fmt.Sprintf("default is 10s; overrides fire within %.0f%%; -1 waits; matches preempt", worstErr*100)
	if defaultTimeout != 10*time.Second || worstErr > 0.25 || eerr != nil {
		verdict = "SHAPE MISMATCH: timeout contract violated"
	}
	return Result{
		ID:         "E13",
		Title:      "timeout semantics: default, override, forever, preemption",
		PaperClaim: `"The default timeout period is 10 seconds but may, for example, be set to 30 by the command set timeout 30." (§3.1)`,
		Table:      t.String(),
		Metrics:    m,
		Verdict:    verdict,
	}, nil
}
