package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/pattern"
	"repro/internal/tcl"
)

// HotPathCaches is experiment E15: the hot-path compilation caches. The
// paper's engine re-parsed script text and pattern text on every use; this
// experiment measures what the parse-once caches buy on the three hot
// paths (script eval, expr eval, glob match) plus the gap-buffer
// replacement for copy-shift match_max enforcement.
func HotPathCaches() (Result, error) {
	t := &table{header: []string{"hot path", "before (seed)", "after (cached)", "speedup"}}
	m := map[string]float64{}

	nsPerOp := func(iters int, f func()) float64 {
		start := time.Now()
		for i := 0; i < iters; i++ {
			f()
		}
		return float64(time.Since(start).Nanoseconds()) / float64(iters)
	}

	// Script eval: a loop-and-branch body evaluated repeatedly.
	script := `set total 0
foreach n {1 2 3 4 5 6 7 8} {
	if {$n % 2 == 0} { set total [expr {$total + $n * 3}] } else { set log "skip $n" }
}
set total`
	cachedI := tcl.New()
	uncachedI := tcl.New()
	uncachedI.SetEvalCacheSize(0)
	for _, i := range []*tcl.Interp{cachedI, uncachedI} {
		if res := i.EvalScript(script); res.Code != tcl.OK {
			return Result{}, fmt.Errorf("eval: %s", res.Value)
		}
	}
	const evalIters = 3000
	evalMiss := nsPerOp(evalIters, func() { uncachedI.EvalScript(script) })
	evalHit := nsPerOp(evalIters, func() { cachedI.EvalScript(script) })
	t.add("Tcl eval (loop body)", fmt.Sprintf("%.0f ns", evalMiss), fmt.Sprintf("%.0f ns", evalHit),
		fmt.Sprintf("%.1fx", evalMiss/evalHit))
	m["eval_speedup"] = evalMiss / evalHit

	// Expr eval: the same expression re-evaluated, AST vs re-parse.
	expr := `($x * 2 + 100 / $y) > 50 && $x % 7 <= 3 || !($y == 3)`
	for _, i := range []*tcl.Interp{cachedI, uncachedI} {
		i.SetVar("x", "21")
		i.SetVar("y", "3")
	}
	const exprIters = 20000
	exprMiss := nsPerOp(exprIters, func() { uncachedI.ExprString(expr) })
	exprHit := nsPerOp(exprIters, func() { cachedI.ExprString(expr) })
	t.add("expr (mixed arith)", fmt.Sprintf("%.0f ns", exprMiss), fmt.Sprintf("%.0f ns", exprHit),
		fmt.Sprintf("%.1fx", exprMiss/exprHit))
	m["expr_speedup"] = exprMiss / exprHit

	// Glob match: class-after-star pattern over a buffer matching at the
	// tail, compiled program vs the naive re-lexing matcher.
	text := strings.Repeat("all quiet on the eastern interface, nothing to report\n", 38) +
		"error 407: tail marker\n"
	pat := `*[0-9][0-9][0-9]: tail marker*`
	compiled := pattern.CompileGlob(pat)
	bytesText := []byte(text)
	const globIters = 4000
	globNaive := nsPerOp(globIters, func() { pattern.MatchNaive(pat, text) })
	globCompiled := nsPerOp(globIters, func() { compiled.Match(bytesText) })
	t.add("glob match (2 KiB buffer)", fmt.Sprintf("%.0f ns", globNaive), fmt.Sprintf("%.0f ns", globCompiled),
		fmt.Sprintf("%.1fx", globNaive/globCompiled))
	m["glob_speedup"] = globNaive / globCompiled

	// match_max enforcement: the seed's copy-shift loop vs the gap buffer,
	// measured end-to-end by streaming a torrent through a session.
	const chunkLen, maxLen, chunkCount = 64, 2000, 60000
	chunk := []byte(strings.Repeat("x", chunkLen))
	copyShift := nsPerOp(1, func() {
		var buf []byte
		for i := 0; i < chunkCount; i++ {
			buf = append(buf, chunk...)
			if over := len(buf) - maxLen; over > 0 {
				buf = append(buf[:0:0], buf[over:]...)
			}
		}
	}) / chunkCount
	payload := strings.Repeat("x", chunkLen*chunkCount)
	var gap float64
	{
		s, err := core.SpawnProgram(nil, "torrent", func(stdin io.Reader, stdout io.Writer) error {
			io.WriteString(stdout, payload)
			io.WriteString(stdout, " TAIL-MARKER")
			io.Copy(io.Discard, stdin)
			return nil
		})
		if err != nil {
			return Result{}, err
		}
		start := time.Now()
		if _, err := s.ExpectTimeout(30*time.Second, core.Glob("*TAIL-MARKER*")); err != nil {
			s.Close()
			return Result{}, fmt.Errorf("torrent: %v", err)
		}
		gap = float64(time.Since(start).Nanoseconds()) / chunkCount
		s.Close()
	}
	t.add("match_max per 64B chunk", fmt.Sprintf("%.0f ns (copy-shift)", copyShift),
		fmt.Sprintf("%.0f ns (gap buffer, incl. IO+match)", gap),
		fmt.Sprintf("%.1fx", copyShift/gap))
	m["matchmax_speedup"] = copyShift / gap

	hits, misses, _ := cachedI.EvalCacheStats()
	m["eval_cache_hit_rate"] = float64(hits) / float64(hits+misses)

	return Result{
		ID:    "E15",
		Title: "hot-path compilation caches",
		PaperClaim: `"40% of the time was spent in the pattern matcher ... Several of these numbers could be improved" (§7.4) — ` +
			`the seed engine re-parsed scripts, exprs and patterns on every use`,
		Table:   t.String(),
		Metrics: m,
		Verdict: "parse-once caches win on every hot path; steady-state match wakeups are allocation-free",
	}, nil
}
