package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// TraceOverhead is experiment E16: what the flight recorder costs the
// expect hot loop. The observability layer's contract is that a disabled
// recorder is one nil check plus one atomic load per wakeup — invisible —
// and that even full ring recording stays cheap enough to leave on in
// production engines. This experiment measures ns/expect on a batched
// send→expect→match ping-pong with the recorder absent, present-but-
// disabled, ring-recording, and fully narrating, and regenerates the
// §7.4-style latency story as log-bucketed histograms with tail
// percentiles (wakeup-to-match, read-to-wakeup, eval dispatch).
//
// Methodology: the nanoseconds under test are three orders of magnitude
// below the scheduler noise of a single timed run, so the four
// configurations keep four live sessions and the batches are interleaved
// across them — scheduler drift, GC pauses, and frequency scaling hit
// every configuration almost equally and cancel in the ratio. The guard
// metric is the median-over-passes disabled/absent ratio, which
// scripts/check.sh caps at +2%.
func TraceOverhead() (Result, error) {
	const (
		batch   = 100 // markers per ping (~800 B, inside the default match_max)
		batches = 100 // batches per pass per configuration
		passes  = 6
	)

	// pinger emits a burst of unique markers per received byte; the driver
	// expects them one by one, so each batch is one genuine read wakeup
	// followed by batch-1 buffered scans — the instrumented path.
	pinger := func(stdin io.Reader, stdout io.Writer) error {
		one := make([]byte, 1)
		for b := 0; ; b++ {
			if _, err := stdin.Read(one); err != nil {
				return nil
			}
			var sb strings.Builder
			for j := 0; j < batch; j++ {
				fmt.Fprintf(&sb, "m%d;", b*batch+j)
			}
			io.WriteString(stdout, sb.String())
		}
	}

	runBatch := func(s *core.Session, b int) (time.Duration, error) {
		if err := s.Send("x"); err != nil {
			return 0, err
		}
		start := time.Now()
		for j := 0; j < batch; j++ {
			if _, err := s.ExpectTimeout(5*time.Second,
				core.Exact(fmt.Sprintf("m%d;", b*batch+j))); err != nil {
				return 0, fmt.Errorf("expect %d: %v", b*batch+j, err)
			}
		}
		return time.Since(start), nil
	}

	configs := []struct {
		name string
		rec  *trace.Recorder
	}{
		{"absent", nil},
		// Present, mode 0: the guarded hot path the 2% budget protects.
		{"disabled", trace.New(0)},
		{"ring", func() *trace.Recorder {
			rec := trace.New(0)
			rec.SetRecording(true)
			return rec
		}()},
		{"diag", func() *trace.Recorder {
			rec := trace.New(0)
			rec.SetDiag(2, io.Discard)
			return rec
		}()},
	}
	sessions := make([]*core.Session, len(configs))
	for i, c := range configs {
		s, err := core.SpawnProgram(&core.Config{Rec: c.rec, Timeout: 5 * time.Second},
			"pinger-"+c.name, pinger)
		if err != nil {
			return Result{}, fmt.Errorf("%s: %w", c.name, err)
		}
		defer s.Close()
		sessions[i] = s
	}

	bestNS := make([]float64, len(configs))
	nextBatch := make([]int, len(configs))
	var ratios []float64 // disabled/absent, one per pass
	for p := 0; p < passes; p++ {
		passNS := make([]float64, len(configs))
		for b := 0; b < batches; b++ {
			for i := range configs {
				d, err := runBatch(sessions[i], nextBatch[i])
				if err != nil {
					return Result{}, fmt.Errorf("%s pass %d: %w", configs[i].name, p, err)
				}
				nextBatch[i]++
				passNS[i] += float64(d.Nanoseconds())
			}
		}
		for i := range passNS {
			passNS[i] /= batch * batches
			if bestNS[i] == 0 || passNS[i] < bestNS[i] {
				bestNS[i] = passNS[i]
			}
		}
		ratios = append(ratios, passNS[1]/passNS[0])
	}
	absentNS, disabledNS, ringNS, diagNS := bestNS[0], bestNS[1], bestNS[2], bestNS[3]
	sort.Float64s(ratios)
	medianRatio := ratios[len(ratios)/2]
	guardPct := (medianRatio - 1) * 100

	// One untimed run with the profiler attached samples the latency
	// histograms, kept out of the timed passes so they price the recorder
	// alone, not recorder+profiler.
	histProf := metrics.NewProfiler()
	{
		rec := trace.New(0)
		rec.SetRecording(true)
		s, err := core.SpawnProgram(&core.Config{Rec: rec, Prof: histProf, Timeout: 5 * time.Second},
			"pinger-hist", pinger)
		if err != nil {
			return Result{}, fmt.Errorf("histogram run: %w", err)
		}
		for b := 0; b < batches; b++ {
			if _, err := runBatch(s, b); err != nil {
				s.Close()
				return Result{}, fmt.Errorf("histogram run: %w", err)
			}
		}
		s.Close()
	}

	// Eval-dispatch latency needs a scripted engine: a small loop body
	// dispatched thousands of times through the interpreter hook.
	engProf := metrics.NewProfiler()
	eng := core.NewEngine(core.EngineOptions{Prof: engProf})
	if _, err := eng.Run(`set total 0
for {set i 0} {$i < 2000} {incr i} { set total [expr {$total + $i % 7}] }`); err != nil {
		eng.Shutdown()
		return Result{}, fmt.Errorf("eval loop: %w", err)
	}
	eng.Shutdown()

	pct := func(with, without float64) float64 { return (with/without - 1) * 100 }
	t := &table{header: []string{"recorder", "ns/expect", "vs absent"}}
	t.add("absent", fmt.Sprintf("%.0f", absentNS), "—")
	t.add("present, disabled", fmt.Sprintf("%.0f", disabledNS), fmt.Sprintf("%+.1f%% (median %+.1f%%)", pct(disabledNS, absentNS), guardPct))
	t.add("ring recording", fmt.Sprintf("%.0f", ringNS), fmt.Sprintf("%+.1f%%", pct(ringNS, absentNS)))
	t.add("diag level 2", fmt.Sprintf("%.0f", diagNS), fmt.Sprintf("%+.1f%%", pct(diagNS, absentNS)))

	m := map[string]float64{
		"ns_per_expect_absent":        absentNS,
		"ns_per_expect_disabled":      disabledNS,
		"ns_per_expect_ring":          ringNS,
		"ns_per_expect_diag":          diagNS,
		"trace_overhead_disabled_pct": guardPct,
		"trace_overhead_ring_pct":     pct(ringNS, absentNS),
	}
	hists := t.String()
	if hr := histProf.HistReport(); hr != "" {
		hists += "\nlatency histograms (ring-recording round):\n" + hr
	}
	if hr := engProf.HistReport(); hr != "" {
		hists += "\nlatency histograms (scripted engine):\n" + hr
	}
	for _, prof := range []*metrics.Profiler{histProf, engProf} {
		for _, k := range metrics.HistKinds() {
			h := prof.Hist(k)
			if h.Count() == 0 {
				continue
			}
			s := h.Summary(k.String())
			m["p50_ns_"+k.String()] = float64(s.P50NS)
			m["p99_ns_"+k.String()] = float64(s.P99NS)
		}
	}

	verdict := fmt.Sprintf("disabled recorder costs %+.1f%% per expect (budget 2%%); ring recording %+.1f%%",
		guardPct, pct(ringNS, absentNS))
	if guardPct > 2 {
		verdict = fmt.Sprintf("OVER BUDGET: disabled recorder costs %+.1f%% per expect (budget 2%%)", guardPct)
	}
	return Result{
		ID:    "E16",
		Title: "flight-recorder overhead on the expect hot loop",
		PaperClaim: `"expect was designed so that it could also work with Tcl-less applications" (§7.4 measures the ` +
			`engine's own costs) — the diagnostics layer must not change the measured engine`,
		Table:   hists,
		Metrics: m,
		Verdict: verdict,
	}, nil
}
