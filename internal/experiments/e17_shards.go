package experiments

import (
	"fmt"

	"repro/internal/load"
	"repro/internal/metrics"
)

// ShardScaling is experiment E17: how the engine holds up when one
// process multiplexes thousands of dialogues, and what the sharded
// scheduler buys over the seed's goroutine-per-session pump. The paper
// runs one interactive child per expect process; its modern descendants
// (CI farms, device fleets) want 10k. A pump per session costs a parked
// goroutine and a wakeup handoff each; the sharded scheduler
// (internal/core/shard.go) owns all sessions of a shard from one event
// loop, so session count stops being goroutine count.
//
// The sweep runs the load workbench (internal/load) at {1, 64, 1000,
// 10000} concurrent sessions under both schedulers with the same seeded
// dialogue mix, and reports inverse throughput (ns per dialogue =
// elapsed/dialogues), dialogues/sec, and the p99 wakeup-to-match tail.
// The acceptance bar: sharded at 10k sessions stays within 2x the
// per-dialogue cost of the goroutine baseline at its comfortable
// 64-session size. The 1k-session sharded p99 is the regression-guard
// metric scripts/check.sh pins against BENCH_4.json.
func ShardScaling() (Result, error) {
	const (
		shardCount = 8
		seed       = 1990 // the paper year; fixed so every run deals the same mix
	)
	sweep := []int{1, 64, 1000, 10000}
	modes := []struct {
		name   string
		shards int
	}{
		{"goroutine", 0},
		{"sharded", shardCount},
	}

	type cell struct {
		sessions int
		mode     string
		res      *load.Result
		nsPerD   float64
		p99NS    int64
	}
	var cells []cell

	for _, sessions := range sweep {
		// Scale the per-session budget so each column does comparable total
		// work instead of total work growing 10000x down the sweep.
		dialogues := 4000 / sessions
		if dialogues < 2 {
			dialogues = 2
		}
		for _, mode := range modes {
			prof := metrics.NewProfiler()
			res, err := load.Run(load.Config{
				Sessions:  sessions,
				Dialogues: dialogues,
				Shards:    mode.shards,
				Seed:      seed,
				Prof:      prof,
			})
			if err != nil {
				return Result{}, fmt.Errorf("e17 %s/%d sessions: %w", mode.name, sessions, err)
			}
			if res.Errors != 0 || res.Dropped != 0 {
				return Result{}, fmt.Errorf("e17 %s/%d sessions: %d errors, %d dropped",
					mode.name, sessions, res.Errors, res.Dropped)
			}
			c := cell{
				sessions: sessions,
				mode:     mode.name,
				res:      res,
				nsPerD:   float64(res.Elapsed.Nanoseconds()) / float64(res.Dialogues),
				p99NS:    res.Wakeup.P99NS,
			}
			cells = append(cells, c)
		}
	}

	find := func(sessions int, mode string) cell {
		for _, c := range cells {
			if c.sessions == sessions && c.mode == mode {
				return c
			}
		}
		return cell{}
	}

	t := &table{header: []string{"sessions", "scheduler", "dialogues", "ns/dialogue", "dlg/sec", "p99 wakeup", "peak queue"}}
	m := map[string]float64{}
	for _, c := range cells {
		peak := "—"
		if len(c.res.QueueDepthPeak) > 0 {
			max := 0
			for _, d := range c.res.QueueDepthPeak {
				if d > max {
					max = d
				}
			}
			peak = fmt.Sprintf("%d", max)
		}
		t.add(fmt.Sprintf("%d", c.sessions), c.mode,
			fmt.Sprintf("%d", c.res.Dialogues),
			fmt.Sprintf("%.0f", c.nsPerD),
			fmt.Sprintf("%.0f", c.res.DialoguesPerSec),
			fmt.Sprintf("%dns", c.p99NS),
			peak)
		key := fmt.Sprintf("%d_%s", c.sessions, c.mode)
		m["ns_per_dialogue_"+key] = c.nsPerD
		m["dialogues_per_sec_"+key] = c.res.DialoguesPerSec
	}
	m["p99_wakeup_ns_1000_sharded"] = float64(find(1000, "sharded").p99NS)

	baseline := find(64, "goroutine")
	extreme := find(10000, "sharded")
	ratio := extreme.nsPerD / baseline.nsPerD
	m["ratio_10k_sharded_vs_64_goroutine"] = ratio

	verdict := fmt.Sprintf("10k sharded sessions run at %.2fx the per-dialogue cost of the 64-session goroutine baseline (bar: 2x)", ratio)
	if ratio > 2 {
		verdict = fmt.Sprintf("OVER BAR: 10k sharded at %.2fx the 64-session goroutine baseline (bar: 2x)", ratio)
	}
	return Result{
		ID:    "E17",
		Title: "sharded scheduler scaling to 10k sessions",
		PaperClaim: `"expect is not a language for handling many processes at the same time" is the scaling ceiling ` +
			`§3.2's select lifts in kind; this measures lifting it in degree`,
		Table:   t.String(),
		Metrics: m,
		Verdict: verdict,
	}, nil
}
