package experiments

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/load"
	"repro/internal/metrics"
)

// NetworkScaling is experiment E18: the E17 session sweep rerun over
// real loopback sockets, with the talker programs served by an expectd
// daemon running as a separate OS process. The paper's expect owns its
// children through ptys on one machine; the socket transport
// (internal/netx) extends the same engine semantics to programs it can
// only reach by dialing, and this measures what that costs at scale.
//
// Running expectd out of process is not a convenience: at 10k sessions
// the client side alone holds 10k socket fds, and this container's fd
// ceiling is a hard 20000 (Setrlimit cannot raise it), so server and
// client must each spend their own budget. It also makes the sweep an
// end-to-end rehearsal of the production shape — build the daemon, parse
// its "serving NAME on ADDR" lines, drive it from another process, and
// SIGTERM it at the end, requiring a clean drain (exit 0), which
// exercises the netx.Server drain contract on every E18 run.
//
// The sweep: {64, 1000, 10000} concurrent socket sessions × {goroutine,
// sharded} schedulers, same seeded dialogue mix as E17. The acceptance
// bar mirrors E17's: 10k sharded socket sessions stay within 2x the
// per-dialogue cost of the 64-session goroutine baseline (also over
// sockets). scripts/check.sh pins the ratio via benchreport -netguard.
func NetworkScaling(repoRoot string) (Result, error) {
	const (
		shardCount = 8
		seed       = 1990
	)

	d, err := startExpectd(repoRoot)
	if err != nil {
		return Result{}, fmt.Errorf("e18: %w", err)
	}
	defer d.kill()

	addrs := &load.NetAddrs{Echo: d.addrs["echo"], Slow: d.addrs["slow"], Bursty: d.addrs["bursty"]}
	sweep := []int{64, 1000, 10000}
	modes := []struct {
		name   string
		shards int
	}{
		{"goroutine", 0},
		{"sharded", shardCount},
	}

	type cell struct {
		sessions int
		mode     string
		res      *load.Result
		nsPerD   float64
	}
	var cells []cell

	for _, sessions := range sweep {
		dialogues := 4000 / sessions
		if dialogues < 2 {
			dialogues = 2
		}
		for _, mode := range modes {
			res, err := load.Run(load.Config{
				Sessions:  sessions,
				Dialogues: dialogues,
				Shards:    mode.shards,
				Seed:      seed,
				Net:       addrs,
				Prof:      metrics.NewProfiler(),
			})
			if err != nil {
				return Result{}, fmt.Errorf("e18 %s/%d sessions: %w", mode.name, sessions, err)
			}
			if res.Errors != 0 || res.Dropped != 0 {
				return Result{}, fmt.Errorf("e18 %s/%d sessions: %d errors, %d dropped",
					mode.name, sessions, res.Errors, res.Dropped)
			}
			cells = append(cells, cell{
				sessions: sessions,
				mode:     mode.name,
				res:      res,
				nsPerD:   float64(res.Elapsed.Nanoseconds()) / float64(res.Dialogues),
			})
		}
	}

	// The daemon must drain clean when told to stop — the drain contract
	// is part of what this experiment certifies, so a cut session or a
	// dirty exit fails the run, not just the verdict.
	served, err := d.stop()
	if err != nil {
		return Result{}, fmt.Errorf("e18 shutdown: %w", err)
	}

	find := func(sessions int, mode string) cell {
		for _, c := range cells {
			if c.sessions == sessions && c.mode == mode {
				return c
			}
		}
		return cell{}
	}

	t := &table{header: []string{"sessions", "scheduler", "dialogues", "ns/dialogue", "dlg/sec", "p99 wakeup"}}
	m := map[string]float64{}
	for _, c := range cells {
		t.add(fmt.Sprintf("%d", c.sessions), c.mode,
			fmt.Sprintf("%d", c.res.Dialogues),
			fmt.Sprintf("%.0f", c.nsPerD),
			fmt.Sprintf("%.0f", c.res.DialoguesPerSec),
			fmt.Sprintf("%dns", c.res.Wakeup.P99NS))
		key := fmt.Sprintf("%d_%s_net", c.sessions, c.mode)
		m["ns_per_dialogue_"+key] = c.nsPerD
		m["dialogues_per_sec_"+key] = c.res.DialoguesPerSec
	}
	m["expectd_served_sessions"] = float64(served)

	baseline := find(64, "goroutine")
	extreme := find(10000, "sharded")
	ratio := extreme.nsPerD / baseline.nsPerD
	m["ratio_10k_sharded_vs_64_goroutine_net"] = ratio

	verdict := fmt.Sprintf("10k sharded socket sessions run at %.2fx the per-dialogue cost of the 64-session goroutine baseline (bar: 2x); expectd drained clean after %d sessions", ratio, served)
	if ratio > 2 {
		verdict = fmt.Sprintf("OVER BAR: 10k sharded socket sessions at %.2fx the 64-session goroutine baseline (bar: 2x)", ratio)
	}
	return Result{
		ID:    "E18",
		Title: "socket transport scaling via expectd",
		PaperClaim: `the paper's expect reaches children only through ptys on one machine; ` +
			`this measures the same engine semantics over a wire, at the E17 session counts`,
		Table:   t.String(),
		Metrics: m,
		Verdict: verdict,
	}, nil
}

// expectdProc is a running expectd daemon owned by the experiment.
type expectdProc struct {
	cmd      *exec.Cmd
	tmp      string
	addrs    map[string]string
	tail     *tailBuf
	scanDone chan struct{} // closed when stdout hits EOF (process exited)
}

// tailBuf collects the daemon's stdout lines after startup so stop() can
// verify the drain message.
type tailBuf struct {
	mu    sync.Mutex
	lines []string
}

func (b *tailBuf) add(line string) {
	b.mu.Lock()
	b.lines = append(b.lines, line)
	b.mu.Unlock()
}

func (b *tailBuf) joined() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return strings.Join(b.lines, "\n")
}

// startExpectd builds cmd/expectd from repoRoot into a temp dir, starts
// it serving the three talker programs, and parses the advertised
// addresses from its stdout.
func startExpectd(repoRoot string) (*expectdProc, error) {
	tmp, err := os.MkdirTemp("", "e18-expectd-")
	if err != nil {
		return nil, err
	}
	bin := filepath.Join(tmp, "expectd")
	build := exec.Command("go", "build", "-o", bin, "./cmd/expectd")
	build.Dir = repoRoot
	if out, err := build.CombinedOutput(); err != nil {
		os.RemoveAll(tmp)
		return nil, fmt.Errorf("build expectd: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-serve", "echo,slow,bursty", "-grace", "60s")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		os.RemoveAll(tmp)
		return nil, err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		os.RemoveAll(tmp)
		return nil, fmt.Errorf("start expectd: %w", err)
	}

	d := &expectdProc{cmd: cmd, tmp: tmp, addrs: map[string]string{},
		tail: &tailBuf{}, scanDone: make(chan struct{})}
	sc := bufio.NewScanner(stdout)
	ready := false
	for sc.Scan() {
		line := sc.Text()
		var name, addr string
		if _, err := fmt.Sscanf(line, "expectd: serving %s on %s", &name, &addr); err == nil {
			d.addrs[name] = addr
			continue
		}
		if line == "expectd: ready" {
			ready = true
			break
		}
	}
	if !ready {
		d.kill()
		return nil, fmt.Errorf("expectd never became ready (scan err: %v)", sc.Err())
	}
	for _, want := range []string{"echo", "slow", "bursty"} {
		if d.addrs[want] == "" {
			d.kill()
			return nil, fmt.Errorf("expectd did not advertise %q (got %v)", want, d.addrs)
		}
	}
	// Keep draining stdout so the daemon never blocks on a full pipe, and
	// so the drain report is available to stop(). stop() must not call
	// cmd.Wait until this goroutine sees EOF — Wait closes the pipe and
	// would race away the final report lines.
	go func() {
		defer close(d.scanDone)
		for sc.Scan() {
			d.tail.add(sc.Text())
		}
	}()
	return d, nil
}

// stop SIGTERMs the daemon and requires the clean-drain exit: status 0
// and the "drained clean" report. Returns the served-session count.
func (d *expectdProc) stop() (uint64, error) {
	defer os.RemoveAll(d.tmp)
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return 0, fmt.Errorf("signal expectd: %w", err)
	}
	select {
	case <-d.scanDone:
	case <-time.After(90 * time.Second):
		d.cmd.Process.Kill()
		<-d.scanDone
		d.cmd.Wait()
		return 0, fmt.Errorf("expectd did not exit within 90s of SIGTERM\n%s", d.tail.joined())
	}
	if err := d.cmd.Wait(); err != nil {
		return 0, fmt.Errorf("expectd exited dirty: %v\n%s", err, d.tail.joined())
	}
	var served uint64
	for _, line := range strings.Split(d.tail.joined(), "\n") {
		if _, err := fmt.Sscanf(line, "expectd: drained clean, served %d sessions", &served); err == nil {
			return served, nil
		}
	}
	return 0, fmt.Errorf("expectd exited 0 without the drained-clean report:\n%s", d.tail.joined())
}

// kill is the error-path teardown: no drain verification, just make the
// process and temp dir go away.
func (d *expectdProc) kill() {
	if d.cmd != nil && d.cmd.Process != nil {
		d.cmd.Process.Kill()
		d.cmd.Wait()
	}
	os.RemoveAll(d.tmp)
}
