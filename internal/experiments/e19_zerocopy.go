package experiments

import (
	"fmt"

	"repro/internal/load"
	"repro/internal/metrics"
)

// ZeroCopyIngest is experiment E19: the E18 loopback socket sweep rerun
// on the zero-copy ingest path — pooled read segments whose ownership
// transfers whole from the socket reader through the connection inbox
// into the match buffer's backing, with the per-connection reader
// goroutines collapsed into one readiness loop per shard on linux.
//
// The referee is the PR 5 data path, frozen behind netx.Options.Legacy:
// a reader goroutine per connection copying every chunk into a slab
// inbox, the scheduler copying it out into scratch, and the gap buffer
// copying it in again — three copies and roughly one allocation per
// chunk. The comparison runs both configurations over the same expectd
// daemon with the same seeded dialogue schedule, so the only variable is
// the ingest architecture.
//
// Two gates ride this sweep (scripts/check.sh, via benchreport):
//   - -memguard: bytes-copied-per-dialogue and ingest-allocs-per-dialogue
//     at 10k sharded sessions must drop by at least the given percentage
//     versus the legacy referee.
//   - -goroguard: ingest goroutines at 10k connections (goroutine peak
//     minus the 10k driver goroutines) must stay under the given ceiling —
//     O(shards), not O(connections).
//
// Workers run with load.Config.NoWrap: a faultify-wrapped stream hides
// the transport capabilities and deliberately keeps a feeder goroutine,
// which the conformance equivalence matrix covers; here it would only
// blur both gates with a constant neither side is measuring.
func ZeroCopyIngest(repoRoot string) (Result, error) {
	const (
		shardCount = 8
		seed       = 1990
	)

	d, err := startExpectd(repoRoot)
	if err != nil {
		return Result{}, fmt.Errorf("e19: %w", err)
	}
	defer d.kill()

	addrs := &load.NetAddrs{Echo: d.addrs["echo"], Slow: d.addrs["slow"], Bursty: d.addrs["bursty"]}

	type cell struct {
		sessions int
		mode     string
		shards   int
		legacy   bool
		res      *load.Result
		nsPerD   float64
	}
	cells := []cell{
		{64, "goroutine", 0, false, nil, 0},
		{64, "sharded", shardCount, false, nil, 0},
		{1000, "goroutine", 0, false, nil, 0},
		{1000, "sharded", shardCount, false, nil, 0},
		{10000, "goroutine", 0, false, nil, 0},
		{10000, "sharded", shardCount, false, nil, 0},
		// The referee: 10k sharded on the frozen copying path, the
		// BENCH_5.json configuration the acceptance bar compares against.
		{10000, "sharded", shardCount, true, nil, 0},
	}

	for i := range cells {
		c := &cells[i]
		dialogues := 4000 / c.sessions
		if dialogues < 2 {
			dialogues = 2
		}
		res, err := load.Run(load.Config{
			Sessions:  c.sessions,
			Dialogues: dialogues,
			Shards:    c.shards,
			Seed:      seed,
			Net:       addrs,
			LegacyNet: c.legacy,
			NoWrap:    true,
			Prof:      metrics.NewProfiler(),
		})
		if err != nil {
			return Result{}, fmt.Errorf("e19 %s/%d sessions (legacy=%v): %w", c.mode, c.sessions, c.legacy, err)
		}
		if res.Errors != 0 || res.Dropped != 0 {
			return Result{}, fmt.Errorf("e19 %s/%d sessions (legacy=%v): %d errors, %d dropped",
				c.mode, c.sessions, c.legacy, res.Errors, res.Dropped)
		}
		c.res = res
		c.nsPerD = float64(res.Elapsed.Nanoseconds()) / float64(res.Dialogues)
	}

	served, err := d.stop()
	if err != nil {
		return Result{}, fmt.Errorf("e19 shutdown: %w", err)
	}

	find := func(sessions int, mode string, legacy bool) *cell {
		for i := range cells {
			c := &cells[i]
			if c.sessions == sessions && c.mode == mode && c.legacy == legacy {
				return c
			}
		}
		return nil
	}

	t := &table{header: []string{"sessions", "scheduler", "ingest", "copied B/dlg", "allocs/1k dlg", "goroutines", "ns/dialogue"}}
	m := map[string]float64{}
	for i := range cells {
		c := &cells[i]
		ing := "zerocopy"
		if c.legacy {
			ing = "legacy"
		}
		t.add(fmt.Sprintf("%d", c.sessions), c.mode, ing,
			fmt.Sprintf("%.0f", c.res.BytesCopiedPerDlg),
			fmt.Sprintf("%.1f", c.res.IngestAllocsPer1k),
			fmt.Sprintf("%d", c.res.GoroutinePeak),
			fmt.Sprintf("%.0f", c.nsPerD))
		key := fmt.Sprintf("%d_%s_%s", c.sessions, c.mode, ing)
		m["ns_per_dialogue_"+key] = c.nsPerD
		m["bytes_copied_per_dialogue_"+key] = c.res.BytesCopiedPerDlg
		m["ingest_allocs_per_1k_dialogues_"+key] = c.res.IngestAllocsPer1k
		m["goroutine_peak_"+key] = float64(c.res.GoroutinePeak)
		if total := c.res.BytesCopied + c.res.BytesHandedOff; total > 0 {
			m["handoff_share_pct_"+key] = 100 * float64(c.res.BytesHandedOff) / float64(total)
		}
	}
	m["expectd_served_sessions"] = float64(served)

	zc := find(10000, "sharded", false)
	ref := find(10000, "sharded", true)
	copiedDrop := 100 * (1 - zc.res.BytesCopiedPerDlg/ref.res.BytesCopiedPerDlg)
	allocDrop := 100 * (1 - zc.res.IngestAllocsPer1k/ref.res.IngestAllocsPer1k)
	ingestGoro := float64(zc.res.GoroutinePeak - zc.sessions)
	m["bytes_copied_drop_pct_10k"] = copiedDrop
	m["ingest_allocs_drop_pct_10k"] = allocDrop
	m["ingest_goroutines_10k_sharded"] = ingestGoro
	if zc.res.SegmentLeases > 0 {
		m["segment_reuse_pct_10k"] = 100 * float64(zc.res.SegmentReuses) / float64(zc.res.SegmentLeases)
	}

	verdict := fmt.Sprintf(
		"at 10k sharded socket sessions, ownership transfer cuts copied bytes per dialogue by %.0f%% and ingest allocations by %.0f%% vs the copying referee, with %.0f ingest goroutines above the 10k drivers (legacy keeps one reader per connection); expectd drained clean after %d sessions",
		copiedDrop, allocDrop, ingestGoro, served)
	if copiedDrop < 40 || allocDrop < 40 {
		verdict = fmt.Sprintf("UNDER BAR: copied-bytes drop %.0f%%, ingest-alloc drop %.0f%% (bar: 40%% each)", copiedDrop, allocDrop)
	}
	return Result{
		ID:    "E19",
		Title: "zero-copy socket ingest via segment ownership transfer",
		PaperClaim: `the original expect moves every byte of child output through multiple ` +
			`buffers per read; this measures what pooled-buffer ownership transfer and a ` +
			`per-shard readiness loop save at 10k-connection scale`,
		Table:   t.String(),
		Metrics: m,
		Verdict: verdict,
	}, nil
}
