package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/pattern"
	"repro/internal/programs/rogue"
)

// rogueLoop runs the paper's rogue.exp loop body count times: spawn the
// game, scan for *Str:\ 18*, close, repeat. It returns the elapsed time.
// luckDen=1 makes every game good (pure engine cost); a higher denominator
// reproduces the restart behaviour of the real script.
func rogueLoop(count int, transport string, prof *metrics.Profiler, luckDen int) (time.Duration, error) {
	cfg := &core.Config{Prof: prof, Timeout: 3 * time.Second}
	start := time.Now()
	for g := 0; g < count; g++ {
		var (
			s   *core.Session
			err error
		)
		switch transport {
		case "pty", "pipe":
			// A real child process under a real pty (or pipes), printing
			// the same status line the game would. The fork and pty
			// allocation costs are the real ones the paper profiled.
			str := 16
			if luckDen <= 1 || g%luckDen == 0 {
				str = 18
			}
			script := fmt.Sprintf(
				`echo "Level: 1  Gold: 0  Hp: 12(12)  Str: %d(%d)  Arm: 4  Exp: 1/0"; read line`, str, str)
			if transport == "pty" {
				s, err = core.SpawnCommand(cfg, "sh", "-c", script)
			} else {
				s, err = core.SpawnPipeCommand(cfg, "sh", "-c", script)
			}
		default: // virtual
			s, err = core.SpawnProgram(cfg, "rogue",
				rogue.New(rogue.Config{Seed: int64(g + 1), LuckNumerator: 1, LuckDenominator: luckDen}))
		}
		if err != nil {
			return 0, err
		}
		r, err := s.ExpectTimeout(3*time.Second, core.Glob("*Str: 18*"), core.TimeoutCase(), core.EOFCase())
		if err != nil {
			s.Close()
			return 0, fmt.Errorf("game %d: %v", g, err)
		}
		_ = r
		s.Close()
	}
	return time.Since(start), nil
}

// RogueThroughput is experiment E1: §7.4's "the rogue script ... examines
// about 10 games per second", on each transport.
func RogueThroughput(games int) (Result, error) {
	t := &table{header: []string{"transport", "games", "elapsed", "games/sec"}}
	m := map[string]float64{}
	for _, tr := range []string{"virtual", "pipe", "pty"} {
		elapsed, err := rogueLoop(games, tr, nil, 1)
		if err != nil {
			return Result{}, fmt.Errorf("%s: %w", tr, err)
		}
		rate := float64(games) / elapsed.Seconds()
		t.add(tr, fmt.Sprint(games), elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1f", rate))
		m["games_per_sec_"+tr] = rate
	}
	verdict := "pty transport is the binding one; the paper's Sun 3 managed ~10/s"
	if m["games_per_sec_pty"] >= 10 {
		verdict = fmt.Sprintf("pty rate %.0f/s ≥ the paper's ~10/s (modern hardware)", m["games_per_sec_pty"])
	}
	return Result{
		ID:         "E1",
		Title:      "rogue script throughput (games examined per second)",
		PaperClaim: `"the rogue script presented earlier examines about 10 games per second" (§7.4)`,
		Table:      t.String(),
		Metrics:    m,
		Verdict:    verdict,
	}, nil
}

// PhaseBreakdown is experiment E2: the §7.4 CPU-share table, regenerated
// by bracketing the engine's phases during the same rogue loop.
func PhaseBreakdown(games int) (Result, error) {
	prof := metrics.NewProfiler()
	if _, err := rogueLoop(games, "pty", prof, 1); err != nil {
		return Result{}, err
	}
	paper := map[metrics.Phase]float64{
		metrics.PhaseMatch: 0.40,
		metrics.PhaseIO:    0.26,
		metrics.PhasePty:   0.16,
		metrics.PhaseFork:  0.08,
		metrics.PhaseTimer: 0.05,
	}
	t := &table{header: []string{"phase", "paper", "measured", "total"}}
	m := map[string]float64{}
	samples := prof.Snapshot()
	for _, s := range samples {
		p, ok := paper[s.Phase]
		paperCell := "—"
		if ok {
			paperCell = fmt.Sprintf("%.0f%%", p*100)
		}
		t.add(s.Phase.String(), paperCell,
			fmt.Sprintf("%.1f%%", s.Share*100),
			s.Total.Round(time.Microsecond).String())
		m["share_"+s.Phase.String()] = s.Share
	}
	// On modern Linux with an NFA matcher, process setup dominates; on the
	// paper's Sun 3 pattern matching led (40%) because curses output
	// dribbled in and the Tcl-era matcher rescanned the buffer on every
	// read. Replaying that regime — the same rogue screen delivered in
	// c-byte chunks, whole-buffer rescan per chunk, against the per-game
	// fork/pty/io costs measured above — recovers the paper's ranking.
	perGame := func(p metrics.Phase) time.Duration {
		for _, s := range samples {
			if s.Phase == p {
				return s.Total / time.Duration(games)
			}
		}
		return 0
	}
	screen := rogueScreenBytes()
	t2 := &table{header: []string{"chunk size", "match/game (rescan)", "match share", "ranking"}}
	var matchShare1 float64
	for _, c := range []int{1, 4, 16} {
		matchCost := rescanCost(screen, c)
		fixed := perGame(metrics.PhaseFork) + perGame(metrics.PhasePty) +
			perGame(metrics.PhaseIO) + perGame(metrics.PhaseTimer)
		share := float64(matchCost) / float64(matchCost+fixed)
		if c == 1 {
			matchShare1 = share
		}
		rank := "setup-bound"
		if share > 0.4 {
			rank = "match-bound (1990 regime)"
		}
		t2.add(fmt.Sprint(c), matchCost.String(), fmt.Sprintf("%.0f%%", share*100), rank)
	}
	m["replay_match_share_c1"] = matchShare1

	// Tail percentiles for the same loop: the share table says where the
	// time went in aggregate, the histograms say how it was distributed —
	// a p99 wakeup-to-match far above the mean is the §7.4 rescan story
	// (occasional full-buffer scans) that averages hide.
	histTable := prof.HistReport()
	for _, k := range metrics.HistKinds() {
		h := prof.Hist(k)
		if h.Count() == 0 {
			continue
		}
		s := h.Summary(k.String())
		m["p50_ns_"+k.String()] = float64(s.P50NS)
		m["p99_ns_"+k.String()] = float64(s.P99NS)
	}

	setup := m["share_fork"] + m["share_open/close/ioctl (pty)"]
	verdict := fmt.Sprintf(
		"measured: setup-bound (fork+pty %.0f%%); replayed 1990 regime (rescan, dribbled input): match share %.0f%% ≥ the paper's 40%%",
		setup*100, matchShare1*100)
	if matchShare1 < 0.4 {
		verdict = fmt.Sprintf("SHAPE MISMATCH: replayed match share %.0f%% below the paper's 40%%", matchShare1*100)
	}
	return Result{
		ID:    "E2",
		Title: "CPU share by engine phase during the rogue loop",
		PaperClaim: `"about 40% is spent pattern matching ..., 26% in I/O, 16% in open, close, ` +
			`and ioctl, 8% in fork, and 5% in timer calls" (§7.4)`,
		Table: t.String() + "\nreplay of the 1990 matcher regime (whole-buffer rescan per read):\n" +
			t2.String() + histSection(histTable),
		Metrics: m,
		Verdict: verdict,
	}, nil
}

// histSection wraps a Profiler.HistReport for embedding in a result table
// ("" stays "").
func histSection(hr string) string {
	if hr == "" {
		return ""
	}
	return "\nper-wakeup latency distribution (log-bucketed):\n" + hr
}

// rogueScreenBytes is one game's worth of output as the 1990 pattern scan
// saw it: a full 24×80 curses frame (~2 KB — not coincidentally the size
// at which the default match_max starts forgetting) ending in the status
// line.
func rogueScreenBytes() string {
	s := rogue.Stats{Level: 1, Gold: 0, Hp: 12, MaxHp: 12, Str: 18, MaxStr: 18, Arm: 4, Exp: 1}
	var sb []byte
	for row := 0; row < 23; row++ {
		for col := 0; col < 79; col++ {
			sb = append(sb, '.')
		}
		sb = append(sb, '\n')
	}
	return string(sb) + s.StatusLine() + "\n"
}

// rescanCost measures the 1990 strategy on one screen: after every c-byte
// read, re-match the whole accumulated buffer.
func rescanCost(screen string, c int) time.Duration {
	start := time.Now()
	for pos := 0; pos < len(screen); pos += c {
		end := pos + c
		if end > len(screen) {
			end = len(screen)
		}
		pattern.Match("*Str: 18*", screen[:end])
	}
	return time.Since(start)
}
