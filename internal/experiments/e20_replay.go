package experiments

import (
	"fmt"
	"math"
	"os"
	"time"

	"repro/internal/conformance"
	"repro/internal/core"
	"repro/internal/load"
	"repro/internal/metrics"
	"repro/internal/replay"
	"repro/internal/trace"
)

// ReplayEconomics is experiment E20: what durability costs. The replay
// subsystem (internal/replay, PR 7) promotes the flight recorder to an
// append-only journal and adds checkpoint/restore of live sessions; this
// experiment prices both and validates the artifact it pays for.
//
// Three legs:
//
//  1. Journal soak overhead — the same seeded workbench run twice, with
//     per-shard recorders ring-only and then ring+file-journal (segment
//     rotation included). The bar from ISSUE 7: journaling a soak costs
//     ≤10% per dialogue, because a journal nobody can afford to leave on
//     never captures the incident.
//  2. Checkpoint/restore round-trip — serialize a live session (2 KiB
//     buffer, pending expect op), parse it back, and rebuild the session;
//     the p99 of that round-trip is the per-session cost of expectd's
//     SIGUSR1 checkpoint-all and the crash-recovery path, and check.sh
//     pins it against the committed BENCH_7.json.
//  3. Replay validation — journal one conformance scenario and re-drive
//     it through the replay engine; the run must replay clean, proving
//     the journal the overhead leg pays for actually buys a reproducible
//     dialogue.
func ReplayEconomics() (Result, error) {
	const (
		sessions  = 256
		dialogues = 16
		shards    = 8
		seed      = 1990
	)

	// Leg 1: identical seeded soaks, ring-only vs journaled. The journal
	// arm writes real segment files with rotation, not an in-memory sink —
	// the overhead being priced includes the write path.
	runSoak := func(jdir string) (*load.Result, []*trace.Journal, error) {
		journals := make([]*trace.Journal, shards)
		res, err := load.Run(load.Config{
			Sessions:  sessions,
			Dialogues: dialogues,
			Shards:    shards,
			Seed:      seed,
			Rec: func(i int) *trace.Recorder {
				r := trace.New(4096)
				r.SetRecording(true)
				if jdir != "" {
					j, err := trace.NewFileJournal(jdir, fmt.Sprintf("shard-%d", i), 8<<20)
					if err == nil {
						journals[i] = j
						r.SetJournal(j)
					}
				}
				return r
			},
		})
		return res, journals, err
	}

	// Each arm is best-of-N: one seeded soak is ~tens of milliseconds of
	// wall clock, so a single shot prices the scheduler's mood, not the
	// journal. The minimum per-dialogue cost across interleaved rounds is
	// the arm's intrinsic cost; the overhead is the ratio of minima.
	const soakRounds = 5
	var (
		ringNs, jNs     = math.Inf(1), math.Inf(1)
		ringDialogues   int64
		jEvents, jBytes int64
	)
	for round := 0; round < soakRounds; round++ {
		res, _, err := runSoak("")
		if err != nil {
			return Result{}, fmt.Errorf("e20 ring-only soak: %w", err)
		}
		if res.Errors != 0 || res.Dropped != 0 {
			return Result{}, fmt.Errorf("e20 soak unhealthy: %d errors, %d dropped", res.Errors, res.Dropped)
		}
		ns := float64(res.Elapsed.Nanoseconds()) / float64(res.Dialogues)
		if ns < ringNs {
			ringNs = ns
		}
		ringDialogues = res.Dialogues

		jdir, err := os.MkdirTemp("", "e20-journal-")
		if err != nil {
			return Result{}, err
		}
		jRes, journals, err := runSoak(jdir)
		if err != nil {
			os.RemoveAll(jdir)
			return Result{}, fmt.Errorf("e20 journaled soak: %w", err)
		}
		if jRes.Errors != 0 || jRes.Dropped != 0 {
			os.RemoveAll(jdir)
			return Result{}, fmt.Errorf("e20 soak unhealthy: %d errors, %d dropped", jRes.Errors, jRes.Dropped)
		}
		var roundEvents, roundBytes int64
		for _, j := range journals {
			if j == nil {
				os.RemoveAll(jdir)
				return Result{}, fmt.Errorf("e20: journal arm ran without a journal")
			}
			if err := j.Err(); err != nil {
				os.RemoveAll(jdir)
				return Result{}, fmt.Errorf("e20: journal write error: %w", err)
			}
			roundEvents += j.Lines()
			j.Close()
			for _, seg := range j.Segments() {
				if fi, err := os.Stat(seg); err == nil {
					roundBytes += fi.Size()
				}
			}
		}
		os.RemoveAll(jdir)
		if ns := float64(jRes.Elapsed.Nanoseconds()) / float64(jRes.Dialogues); ns < jNs {
			jNs = ns
			jEvents, jBytes = roundEvents, roundBytes
		}
	}
	overheadPct := (jNs/ringNs - 1) * 100

	// Leg 2: checkpoint → marshal → parse → restore, per-session. The
	// subject session carries a realistic load: a 2 KiB buffer and one
	// pending expect op (two cases), the state the crash battery moves.
	buf := make([]byte, 2048)
	for i := range buf {
		buf[i] = byte('a' + i%26)
	}
	pending := core.OpCheckpoint{
		Cases: []core.CaseSpec{
			{Kind: int(core.CaseGlob), Pattern: "*resume-marker*"},
			{Kind: int(core.CaseEOF)},
		},
		RemainingNS: int64(30 * time.Second),
	}
	ckptHist := metrics.NewHistogram()
	const rounds = 4000
	for i := 0; i < rounds; i++ {
		s := core.NewManualSession(&core.Config{}, "e20-subject")
		s.Feed(buf)
		start := time.Now()
		cp := s.Checkpoint()
		cp.Pending = append(cp.Pending, pending)
		blob := cp.Marshal()
		back, err := core.ParseSessionCheckpoint(blob)
		if err != nil {
			return Result{}, fmt.Errorf("e20 checkpoint parse: %w", err)
		}
		rs, err := core.RestoreSession(&core.Config{}, back, nil)
		if err != nil {
			return Result{}, fmt.Errorf("e20 restore: %w", err)
		}
		ckptHist.Observe(time.Since(start))
		if rs.TotalSeen() != s.TotalSeen() {
			return Result{}, fmt.Errorf("e20 restore drifted: %d vs %d bytes seen", rs.TotalSeen(), s.TotalSeen())
		}
		s.Close()
		rs.Close()
	}
	ckpt := ckptHist.Summary("ckpt_roundtrip")

	// Leg 3: one journaled conformance scenario must replay clean.
	sc := conformance.AllScenarios()[0]
	_, journal, err := conformance.RunScenarioJournaled(sc, conformance.ScenarioRun{Matcher: core.MatcherRescan})
	if err != nil {
		return Result{}, fmt.Errorf("e20 journaled scenario: %w", err)
	}
	reports, err := replay.RunJournal(journal, replay.Options{})
	if err != nil {
		return Result{}, fmt.Errorf("e20 replay: %w", err)
	}
	replayClean := 0
	for _, rep := range reports {
		if !rep.Clean() {
			return Result{}, fmt.Errorf("e20: scenario %s did not replay clean: %s", sc.Name, rep)
		}
		replayClean++
	}

	t := &table{header: []string{"leg", "detail", "cost"}}
	t.add("soak ring-only", fmt.Sprintf("%d dialogues, best of %d", ringDialogues, soakRounds),
		fmt.Sprintf("%.0f ns/dialogue", ringNs))
	t.add("soak journaled", fmt.Sprintf("%d events, %d bytes, rotated segments", jEvents, jBytes),
		fmt.Sprintf("%.0f ns/dialogue (%+.1f%%)", jNs, overheadPct))
	t.add("checkpoint round-trip", fmt.Sprintf("%d rounds, 2KiB buffer + pending op", rounds),
		fmt.Sprintf("p50 %dns, p99 %dns", ckpt.P50NS, ckpt.P99NS))
	t.add("replay validation", fmt.Sprintf("scenario %s, %d session(s)", sc.Name, replayClean), "clean")

	m := map[string]float64{
		"ns_per_dialogue_ring_soak":    ringNs,
		"ns_per_dialogue_journal_soak": jNs,
		"journal_overhead_pct":         overheadPct,
		"journal_events_total":         float64(jEvents),
		"journal_bytes_total":          float64(jBytes),
		"ckpt_roundtrip_p50_ns":        float64(ckpt.P50NS),
		"ckpt_roundtrip_p99_ns":        float64(ckpt.P99NS),
		"replay_clean_sessions":        float64(replayClean),
	}

	verdict := fmt.Sprintf(
		"journaling the soak costs %+.1f%% per dialogue (bar 10%%); checkpoint/restore round-trips at p99 %s; journaled scenario replays clean",
		overheadPct, time.Duration(ckpt.P99NS))
	if overheadPct > 10 {
		verdict = fmt.Sprintf("OVER BAR: journaled soak at %+.1f%% per dialogue (bar 10%%)", overheadPct)
	}
	return Result{
		ID:    "E20",
		Title: "replay journal & checkpoint economics",
		PaperClaim: `the paper's dialogues are repeatable because scripts encode them; ` +
			`the journal makes a specific run repeatable byte-for-byte, and this prices that durability`,
		Table:   t.String(),
		Metrics: m,
		Verdict: verdict,
	}, nil
}
