package experiments

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/admin"
	"repro/internal/core"
	"repro/internal/load"
	"repro/internal/metrics"
)

// TelemetryEconomics is experiment E21: what observability costs. The
// telemetry plane (internal/metrics.Registry + internal/admin, ISSUE 8)
// hangs pull-based gauges, counters, and histograms off the scheduler,
// the ingest path, and the profiler, and serves them over HTTP. This
// experiment prices the plane in its two honest states against a bare
// 10k-session soak:
//
//  1. armed — the registry is populated and the admin listener is
//     bound, but nobody scrapes. Steady-state cost is zero by design
//     (the registry holds closures that only run at render, and the
//     dialogue path touches the same atomics either way), so the arm
//     is priced by direct accounting: the measured wall time to build
//     the registry and bind the listener, amortized over the soak.
//     Bar: <=1% per dialogue.
//  2. scraped — /metrics is scraped at 1 Hz, the Prometheus-shaped
//     worst case. Every scrape renders the full exposition, which
//     posts an inspect message to every shard loop (twice: the session
//     and parked-op gauges each take a loop-consistent snapshot). The
//     price is measured against a live-but-quiescent plane carrying
//     10k scheduled sessions, where inspects are serviced immediately:
//     the median scrape round-trip is the work one scrape does, and
//     the overhead is that work as a share of one second — what 1 Hz
//     scraping steals from one core. Bar: <=3% per dialogue.
//
// Why accounting and not a bare-vs-scraped wall-clock differential:
// this host's run-to-run soak variance is ±2-5% (virtualized CPU, GC
// pacing), so a differential cannot resolve bars this tight — measured
// deltas swing negative as often as positive. And a mid-soak scrape's
// round-trip is no better: it queues behind thousands of dialogue
// messages on the shard loops, so it measures backlog latency, not
// stolen work. The differential soaks still run (interleaved,
// best-of-N, with a live 1 Hz scraper on the scraped arm) and the
// table reports their wall costs as corroboration that the accounted
// overheads are not hiding a larger effect, but the guarded metrics
// come from the accounting.
func TelemetryEconomics() (Result, error) {
	// 10k sessions, and enough dialogues each that the dialogue phase
	// outlasts several 1 Hz ticks — a scraped arm whose only scrape
	// lands during spawn would price nothing.
	const (
		sessions  = 10000
		dialogues = 20
		shards    = 8
		seed      = 1990
	)

	// One arm: the seeded soak, optionally with the registry + admin
	// listener armed, optionally with the 1 Hz loopback scraper running.
	type armResult struct {
		res         *load.Result
		setup       time.Duration // registry build + listener bind
		scrapes     int64
		scrapeBytes int64
	}
	runArm := func(armed, scraped bool) (armResult, error) {
		var out armResult
		cfg := load.Config{
			Sessions:  sessions,
			Dialogues: dialogues,
			Shards:    shards,
			Seed:      seed,
		}
		var srv *admin.Server
		if armed {
			setupStart := time.Now()
			reg := metrics.NewRegistry()
			cfg.Registry = reg
			var err error
			srv, err = admin.Listen("127.0.0.1:0", admin.Options{Registry: reg})
			if err != nil {
				return armResult{}, fmt.Errorf("admin listener: %w", err)
			}
			out.setup = time.Since(setupStart)
			defer srv.Close()
		}

		stop := make(chan struct{})
		var wg sync.WaitGroup
		if scraped {
			url := "http://" + srv.Addr() + "/metrics"
			scrape := func() {
				resp, err := http.Get(url)
				if err != nil {
					return
				}
				n, _ := io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				out.scrapes++
				out.scrapeBytes += n
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				scrape() // first scrape lands while the soak is live
				tick := time.NewTicker(time.Second)
				defer tick.Stop()
				for {
					select {
					case <-tick.C:
						scrape()
					case <-stop:
						return
					}
				}
			}()
		}
		res, err := load.Run(cfg)
		close(stop)
		wg.Wait()
		if err != nil {
			return armResult{}, err
		}
		if res.Errors != 0 || res.Dropped != 0 {
			return armResult{}, fmt.Errorf("soak unhealthy: %d errors, %d dropped", res.Errors, res.Dropped)
		}
		out.res = res
		return out, nil
	}

	// Interleaved best-of-N: each round runs all three arms back to
	// back; each arm keeps its fastest round.
	const soakRounds = 3
	var (
		bareNs, armedNs, scrapedNs = math.Inf(1), math.Inf(1), math.Inf(1)
		bareElapsed                time.Duration
		totalDialogues             int64
		setup                      time.Duration
		liveScrapes, scrapeBytes   int64
	)
	perDialogue := func(r *load.Result) float64 {
		return float64(r.Elapsed.Nanoseconds()) / float64(r.Dialogues)
	}
	for round := 0; round < soakRounds; round++ {
		bare, err := runArm(false, false)
		if err != nil {
			return Result{}, fmt.Errorf("e21 bare soak: %w", err)
		}
		if ns := perDialogue(bare.res); ns < bareNs {
			bareNs = ns
			bareElapsed = bare.res.Elapsed
		}
		totalDialogues = bare.res.Dialogues

		armed, err := runArm(true, false)
		if err != nil {
			return Result{}, fmt.Errorf("e21 armed soak: %w", err)
		}
		if ns := perDialogue(armed.res); ns < armedNs {
			armedNs = ns
			setup = armed.setup
		}

		scr, err := runArm(true, true)
		if err != nil {
			return Result{}, fmt.Errorf("e21 scraped soak: %w", err)
		}
		if scr.scrapes == 0 {
			return Result{}, fmt.Errorf("e21: scraped arm completed without a single scrape")
		}
		if ns := perDialogue(scr.res); ns < scrapedNs {
			scrapedNs = ns
			liveScrapes, scrapeBytes = scr.scrapes, scr.scrapeBytes
		}
	}

	// Scrape pricing leg: the same plane over 10k scheduled sessions,
	// quiescent so every inspect is serviced the moment it arrives. The
	// median round-trip of a warmed scrape is the work one scrape does.
	scrapeCost, err := priceScrape(sessions, shards)
	if err != nil {
		return Result{}, fmt.Errorf("e21 scrape pricing: %w", err)
	}

	// The guarded overheads, by direct accounting (see the doc comment).
	armedPct := 100 * float64(setup.Nanoseconds()) / float64(bareElapsed.Nanoseconds())
	scrapedPct := 100 * float64(scrapeCost.Nanoseconds()) / float64(time.Second.Nanoseconds())

	// The wall-clock differentials, as corroboration only.
	armedWallPct := (armedNs/bareNs - 1) * 100
	scrapedWallPct := (scrapedNs/bareNs - 1) * 100

	t := &table{header: []string{"arm", "detail", "cost"}}
	t.add("bare", fmt.Sprintf("%d sessions x %d dialogues, %d shards, best of %d",
		sessions, dialogues, shards, soakRounds),
		fmt.Sprintf("%.0f ns/dialogue", bareNs))
	t.add("armed, unscraped", fmt.Sprintf("setup %v amortized over %v soak",
		setup.Round(time.Microsecond), bareElapsed.Round(time.Millisecond)),
		fmt.Sprintf("%.3f%% (wall %+.1f%%, host noise)", armedPct, armedWallPct))
	t.add("scraped at 1 Hz", fmt.Sprintf("%v per 10k-session scrape; %d live scrapes, %d bytes mid-soak",
		scrapeCost.Round(time.Microsecond), liveScrapes, scrapeBytes),
		fmt.Sprintf("%.3f%% (wall %+.1f%%, host noise)", scrapedPct, scrapedWallPct))

	m := map[string]float64{
		"ns_per_dialogue_bare":           bareNs,
		"ns_per_dialogue_armed":          armedNs,
		"ns_per_dialogue_scraped":        scrapedNs,
		"telemetry_armed_overhead_pct":   armedPct,
		"telemetry_scraped_overhead_pct": scrapedPct,
		"telemetry_ns_per_scrape":        float64(scrapeCost.Nanoseconds()),
		"telemetry_scrapes_total":        float64(liveScrapes),
		"telemetry_scrape_bytes_total":   float64(scrapeBytes),
		"soak_dialogues":                 float64(totalDialogues),
	}

	verdict := fmt.Sprintf(
		"armed-but-unscraped telemetry costs %.3f%% per dialogue (bar 1%%); scraping /metrics at 1 Hz costs %.3f%% (bar 3%%)",
		armedPct, scrapedPct)
	if armedPct > 1 || scrapedPct > 3 {
		verdict = fmt.Sprintf("OVER BAR: armed %.3f%% (bar 1%%), scraped %.3f%% (bar 3%%)",
			armedPct, scrapedPct)
	}
	return Result{
		ID:    "E21",
		Title: "telemetry plane economics",
		PaperClaim: `the paper's expect is a black box while it runs — the only introspection is -d debug spew; ` +
			`the telemetry plane makes a live daemon observable, and this prices what that visibility costs the dialogues`,
		Table:   t.String(),
		Metrics: m,
		Verdict: verdict,
	}, nil
}

// priceScrape measures what one /metrics scrape costs over a quiescent
// scheduler carrying n live sessions: full exposition render, two
// loop-consistent shard snapshots, and the HTTP round-trip, with no
// dialogue backlog in front of the inspect messages. Returns the median
// of timed scrapes after warmup.
func priceScrape(n, shards int) (time.Duration, error) {
	sc := core.NewScheduler(core.SchedulerOptions{Shards: shards})
	defer sc.Stop()
	reg := metrics.NewRegistry()
	sc.RegisterMetrics(reg)
	srv, err := admin.Listen("127.0.0.1:0", admin.Options{
		Registry: reg,
		Sessions: sc.SessionInfos,
		Shards:   sc.SnapshotShards,
	})
	if err != nil {
		return 0, err
	}
	defer srv.Close()

	sess := make([]*core.Session, n)
	for i := range sess {
		s, err := core.SpawnProgram(&core.Config{Sched: sc, SID: int32(i + 1)},
			"idle", load.EchoServer())
		if err != nil {
			return 0, fmt.Errorf("spawn %d: %w", i, err)
		}
		sess[i] = s
	}
	defer func() {
		for _, s := range sess {
			s.Close()
		}
	}()

	const warmup, timed = 2, 20
	durs := make([]time.Duration, 0, timed)
	for i := 0; i < warmup+timed; i++ {
		start := time.Now()
		resp, err := http.Get("http://" + srv.Addr() + "/metrics")
		if err != nil {
			return 0, err
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			resp.Body.Close()
			return 0, err
		}
		resp.Body.Close()
		if i >= warmup {
			durs = append(durs, time.Since(start))
		}
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	return durs[len(durs)/2], nil
}
