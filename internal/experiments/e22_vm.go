package experiments

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"time"

	"repro/internal/tcl"
)

// vmDiffScripts is the in-experiment differential table: every script runs
// under all three evaluation modes and must agree on result, error text,
// captured output, and step count. It is a condensed version of the
// vmEquivScripts table in the tcl test suite, chosen to cross every
// specialized opcode family (set/incr/expr/if/while/foreach), the generic
// dispatch path, procs and frames, arrays, lazy operators, and the error
// edges.
var vmDiffScripts = []string{
	`set a 1; set b $a; set b`,
	`set a 0x10; set b [set a]; set b`,
	`set total 0; foreach n {1 2 3 4 5 6 7 8} { if {$n % 2 == 0} { set total [expr {$total + $n * 3}] } else { set log "skip $n" } }; set total`,
	`set x 5; while {$x > 0} { incr x -1 }; set x`,
	`set v 7; incr v; incr v 3; incr v -11; set v`,
	`if {0} {set r a} elseif {1} {set r b} else {set r c}; set r`,
	`expr {1 ? "a" : [set q]}`,
	`expr {0 && [undefined]}`,
	`expr {(5 / -2) + (-5 % 3)}`,
	`expr {1 << 4 | 3 & 6 ^ 2}`,
	`expr {10 % 0}`,
	`set x 21; set y 3; expr {($x * 2 + 100 / $y) > 50 && $x % 7 <= 3 || !($y == 3)}`,
	`set a(x) 1; set a(y) 2; expr {$a(x) + $a(y)}`,
	`proc fib {n} { if {$n < 2} { return $n }; expr {[fib [expr {$n-1}]] + [fib [expr {$n-2}]]} }; fib 9`,
	`proc g {} { upvar 1 v loc; set loc 42 }; set v 0; g; set v`,
	`foreach x {1 2 3} { puts "item $x" }`,
	`catch {error boom} msg; set msg`,
	`unknowncmd foo`,
	`puts "a $missing b"`,
	`rename set myset; myset z 9; myset z`,
	`set n total; set $n 3; incr $n 4; set total`,
}

// vmDiffRun evaluates one script cold and warm in the given mode and
// flattens everything the differential check compares into one string.
func vmDiffRun(mode tcl.EvalMode, script string) string {
	var sb strings.Builder
	i := tcl.New()
	i.SetEvalMode(mode)
	i.Stdout = &sb
	i.Stderr = &sb
	i.StepLimit = 100000
	cold := i.EvalScript(script)
	coldSteps := i.Steps()
	warm := i.EvalScript(script)
	return fmt.Sprintf("cold=%+v/%q/%d warm=%+v/%q/%d info=%q",
		cold, sb.String(), coldSteps, warm, sb.String(), i.Steps(), i.ErrorInfo)
}

// VMBytecode is experiment E22: the register bytecode vm. The cached
// evaluator (E15) removed re-parsing but still walks the skeleton tree and
// re-runs string substitution per command; the vm lowers straight-line
// scripts and expressions to register bytecode with a constant pool,
// interned variable slots, and inline caches. The classic walker stays the
// frozen referee: the experiment also sweeps a differential script table
// across all three modes and reports the divergence count, which the
// -vmguard benchreport gate requires to be zero.
func VMBytecode() (Result, error) {
	t := &table{header: []string{"hot path", "classic", "cached", "vm", "vm vs cached"}}
	m := map[string]float64{}

	// Best-of-5 rounds starting from a clean heap: each round is only a
	// few milliseconds, so a single GC pause or scheduler preemption would
	// otherwise swing the guarded ratios by 2x.
	nsPerOp := func(iters int, f func()) float64 {
		runtime.GC()
		best := math.MaxFloat64
		for r := 0; r < 5; r++ {
			start := time.Now()
			for i := 0; i < iters; i++ {
				f()
			}
			if ns := float64(time.Since(start).Nanoseconds()) / float64(iters); ns < best {
				best = ns
			}
		}
		return best
	}

	newInterp := func(mode tcl.EvalMode) *tcl.Interp {
		i := tcl.New()
		i.SetEvalMode(mode)
		return i
	}
	classicI := newInterp(tcl.EvalClassic)
	cachedI := newInterp(tcl.EvalCached)
	vmI := newInterp(tcl.EvalVM)

	// Script eval: the E15 loop-and-branch body, so the vm-vs-cached ratio
	// composes with E15's cached-vs-seed ratio.
	script := `set total 0
foreach n {1 2 3 4 5 6 7 8} {
	if {$n % 2 == 0} { set total [expr {$total + $n * 3}] } else { set log "skip $n" }
}
set total`
	for _, i := range []*tcl.Interp{classicI, cachedI, vmI} {
		if res := i.EvalScript(script); res.Code != tcl.OK || res.Value != "60" {
			return Result{}, fmt.Errorf("eval warmup: %+v", res)
		}
	}
	const evalIters = 3000
	evalClassic := nsPerOp(evalIters, func() { classicI.EvalScript(script) })
	evalCached := nsPerOp(evalIters, func() { cachedI.EvalScript(script) })
	evalVM := nsPerOp(evalIters, func() { vmI.EvalScript(script) })
	t.add("Tcl eval (loop body)", fmt.Sprintf("%.0f ns", evalClassic), fmt.Sprintf("%.0f ns", evalCached),
		fmt.Sprintf("%.0f ns", evalVM), fmt.Sprintf("%.1fx", evalCached/evalVM))
	m["vm_eval_speedup_vs_cached"] = evalCached / evalVM
	m["vm_eval_speedup_vs_classic"] = evalClassic / evalVM

	// Expr eval: the E15 mixed-arithmetic expression through ExprString.
	expr := `($x * 2 + 100 / $y) > 50 && $x % 7 <= 3 || !($y == 3)`
	for _, i := range []*tcl.Interp{classicI, cachedI, vmI} {
		i.SetVar("x", "21")
		i.SetVar("y", "3")
		if v, res := i.ExprString(expr); res.Code != tcl.OK || v != "1" {
			return Result{}, fmt.Errorf("expr warmup: %q %+v", v, res)
		}
	}
	const exprIters = 20000
	exprClassic := nsPerOp(exprIters, func() { classicI.ExprString(expr) })
	exprCached := nsPerOp(exprIters, func() { cachedI.ExprString(expr) })
	exprVM := nsPerOp(exprIters, func() { vmI.ExprString(expr) })
	t.add("expr (mixed arith)", fmt.Sprintf("%.0f ns", exprClassic), fmt.Sprintf("%.0f ns", exprCached),
		fmt.Sprintf("%.0f ns", exprVM), fmt.Sprintf("%.1fx", exprCached/exprVM))
	m["vm_expr_speedup_vs_cached"] = exprCached / exprVM
	m["vm_expr_speedup_vs_classic"] = exprClassic / exprVM

	// Differential sweep: classic is the referee; cached and vm must match
	// it byte-for-byte on result, error, output, and step count, cold and
	// warm. Any divergence fails the -vmguard gate regardless of speed.
	divergences := 0
	for _, s := range vmDiffScripts {
		ref := vmDiffRun(tcl.EvalClassic, s)
		for _, mode := range []tcl.EvalMode{tcl.EvalCached, tcl.EvalVM} {
			if got := vmDiffRun(mode, s); got != ref {
				divergences++
			}
		}
	}
	t.add("differential sweep", fmt.Sprintf("%d scripts", len(vmDiffScripts)), "referee",
		fmt.Sprintf("%d divergences", divergences), "-")
	m["vm_conformance_divergences"] = float64(divergences)

	verdict := "bytecode vm clears 3x over the cached evaluator with zero divergences from the classic referee"
	if divergences > 0 {
		verdict = fmt.Sprintf("DIVERGED: %d scripts disagree with the classic referee", divergences)
	}
	return Result{
		ID:    "E22",
		Title: "register bytecode vm economics",
		PaperClaim: `"Several of these numbers could be improved" (§7.4) — E15's parse-once caches still walk the ` +
			`skeleton tree and re-substitute per command; real Tcl later went to on-the-fly bytecode for the same reason`,
		Table:   t.String(),
		Metrics: m,
		Verdict: verdict,
	}, nil
}
