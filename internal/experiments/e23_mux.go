package experiments

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"

	"repro/internal/load"
	"repro/internal/metrics"
)

// MuxGatewayScaling is experiment E23: the session-gateway sweep. E18
// proved the engine's semantics survive a wire; its scale ceiling was
// never the engine — it was the transport's one-socket-per-session
// shape, which at 10k sessions already holds 10k client fds against this
// container's hard 20000 fd ceiling. The gateway dissolves that wall:
// sessions become framed streams multiplexed onto a pooled handful of
// TCP connections (internal/netx/mux), so the socket count is a
// configuration constant instead of a per-session cost.
//
// The sweep drives {10k, 100k} concurrent sessions — 10x past where the
// fd ceiling stops E18 — through TWO expectd -mux processes (sessions
// dealt round-robin), with the client pool capped well under the
// acceptance bound of 64 connections per process. Every run must satisfy
// the conservation law, both daemons must drain clean on SIGTERM (the
// GOAWAY-then-drain contract, certified at 100k live streams), and the
// 100k per-dialogue cost must stay within 2x the committed 10k-session
// socket baseline from BENCH_5.json (E18's 10k sharded cell) — scaling
// sessions 10x while shedding 99.9% of the sockets may not cost more
// than 2x per dialogue. scripts/check.sh pins that via benchreport
// -muxguard, which also fails on any dirty drain.
func MuxGatewayScaling(repoRoot string) (Result, error) {
	const (
		shardCount   = 8
		seed         = 1990
		procs        = 2
		connsPerProc = 32 // client-side cap; acceptance bound is ≤64
	)

	tmp, err := os.MkdirTemp("", "e23-expectd-")
	if err != nil {
		return Result{}, err
	}
	defer os.RemoveAll(tmp)
	bin := filepath.Join(tmp, "expectd")
	build := exec.Command("go", "build", "-o", bin, "./cmd/expectd")
	build.Dir = repoRoot
	if out, err := build.CombinedOutput(); err != nil {
		return Result{}, fmt.Errorf("e23: build expectd: %v\n%s", err, out)
	}

	daemons := make([]*expectdProc, 0, procs)
	defer func() {
		for _, d := range daemons {
			d.kill()
		}
	}()
	muxAddrs := make([]string, 0, procs)
	for i := 0; i < procs; i++ {
		d, err := startMuxDaemon(bin)
		if err != nil {
			return Result{}, fmt.Errorf("e23: gateway %d: %w", i, err)
		}
		daemons = append(daemons, d)
		muxAddrs = append(muxAddrs, d.addrs["mux"])
	}

	type cell struct {
		sessions int
		res      *load.Result
		nsPerD   float64
	}
	var cells []cell
	for _, sessions := range []int{10000, 100000} {
		// Equal total work per cell, and ≥2 dialogues per session like the
		// BENCH_5 baseline cell, so flat per-session costs amortize the
		// same way on both sides of the ratio.
		dialogues := 200000 / sessions
		if dialogues < 2 {
			dialogues = 2
		}
		res, err := load.Run(load.Config{
			Sessions:  sessions,
			Dialogues: dialogues,
			Shards:    shardCount,
			Seed:      seed,
			MuxAddrs:  muxAddrs,
			MuxConns:  connsPerProc,
			Prof:      metrics.NewProfiler(),
		})
		if err != nil {
			return Result{}, fmt.Errorf("e23 %d sessions: %w", sessions, err)
		}
		if res.Errors != 0 || res.Dropped != 0 {
			return Result{}, fmt.Errorf("e23 %d sessions: %d errors, %d dropped",
				sessions, res.Errors, res.Dropped)
		}
		if got := res.Matches + res.Timeouts + res.EOFs; got != res.Dialogues {
			return Result{}, fmt.Errorf("e23 %d sessions: conservation broken: %d+%d+%d != %d",
				sessions, res.Matches, res.Timeouts, res.EOFs, res.Dialogues)
		}
		if res.MuxConns > procs*connsPerProc {
			return Result{}, fmt.Errorf("e23 %d sessions: %d pooled connections, bound %d",
				sessions, res.MuxConns, procs*connsPerProc)
		}
		cells = append(cells, cell{
			sessions: sessions,
			res:      res,
			nsPerD:   float64(res.Elapsed.Nanoseconds()) / float64(res.Dialogues),
		})
	}

	// Hot-drain certification at full fan-in: SIGTERM both gateways and
	// require the GOAWAY-then-drain exit. A dirty drain is a metric, not
	// an experiment error — the -muxguard gate is what fails on it.
	dirty := 0
	var served uint64
	var drainNote string
	for i, d := range daemons {
		n, err := d.stop()
		if err != nil {
			dirty++
			drainNote = fmt.Sprintf("; gateway %d drain: %v", i, err)
			continue
		}
		served += n
	}
	daemons = nil // stopped (or already killed on the error path)

	t := &table{header: []string{"sessions", "processes", "tcp conns", "streams opened", "dialogues", "ns/dialogue", "dlg/sec"}}
	m := map[string]float64{}
	for _, c := range cells {
		t.add(fmt.Sprintf("%d", c.sessions), fmt.Sprintf("%d", procs),
			fmt.Sprintf("%d", c.res.MuxConns),
			fmt.Sprintf("%d", c.res.MuxStreamsOpened),
			fmt.Sprintf("%d", c.res.Dialogues),
			fmt.Sprintf("%.0f", c.nsPerD),
			fmt.Sprintf("%.0f", c.res.DialoguesPerSec))
		key := fmt.Sprintf("%d_mux", c.sessions)
		m["ns_per_dialogue_"+key] = c.nsPerD
		m["dialogues_per_sec_"+key] = c.res.DialoguesPerSec
		m["mux_conns_live_"+key] = float64(c.res.MuxConns)
	}
	m["mux_processes"] = procs
	m["mux_conns_bound_per_process"] = connsPerProc
	m["mux_served_sessions"] = float64(served)
	m["mux_dirty_drains"] = float64(dirty)

	// The regression anchor is E18's committed 10k sharded socket cell
	// (BENCH_5.json): one socket per session, the shape the gateway
	// replaces. Falling back to this run's own 10k gateway cell keeps the
	// experiment self-contained on a tree without the artifact.
	big := cells[len(cells)-1]
	baseNs, baseSrc := cells[0].nsPerD, "in-run 10k mux cell"
	if ref, ok := bench5NetBaseline(repoRoot); ok {
		baseNs, baseSrc = ref, "BENCH_5 10k sharded socket cell"
	}
	ratio := big.nsPerD / baseNs
	m["ratio_100k_mux_vs_10k_net_baseline"] = ratio

	verdict := fmt.Sprintf(
		"100k sessions over %d sockets across %d gateways run at %.2fx the per-dialogue cost of the %s (bar: 2x); %d streams drained clean%s",
		big.res.MuxConns, procs, ratio, baseSrc, served, drainNote)
	if ratio > 2 || dirty > 0 {
		verdict = fmt.Sprintf("OVER BAR: 100k gateway sessions at %.2fx the %s (bar: 2x), %d dirty drains%s",
			ratio, baseSrc, dirty, drainNote)
	}
	return Result{
		ID:    "E23",
		Title: "session gateway: 100k multiplexed sessions via expectd -mux",
		PaperClaim: `the paper runs expect against a handful of local children; E18 stretched one ` +
			`engine to 10k socket sessions and hit the one-fd-per-session wall — the framed gateway ` +
			`multiplexes 100k dialogues onto a few dozen sockets with the same observable semantics`,
		Table:   t.String(),
		Metrics: m,
		Verdict: verdict,
	}, nil
}

// bench5NetBaseline reads E18's committed 10k sharded socket
// per-dialogue cost out of BENCH_5.json, the anchor the 2x gateway bound
// is measured against.
func bench5NetBaseline(repoRoot string) (float64, bool) {
	b, err := os.ReadFile(filepath.Join(repoRoot, "BENCH_5.json"))
	if err != nil {
		return 0, false
	}
	var results []Result
	if err := json.Unmarshal(b, &results); err != nil {
		return 0, false
	}
	for _, r := range results {
		if v, ok := r.Metrics["ns_per_dialogue_10000_sharded_net"]; ok && v > 0 {
			return v, true
		}
	}
	return 0, false
}

// startMuxDaemon starts one prebuilt expectd binary in gateway mode and
// parses both the per-program listener lines and the "mux on" line.
func startMuxDaemon(bin string) (*expectdProc, error) {
	cmd := exec.Command(bin, "-serve", "echo,slow,bursty", "-mux", "127.0.0.1:0", "-grace", "120s")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("start expectd: %w", err)
	}
	d := &expectdProc{cmd: cmd, addrs: map[string]string{},
		tail: &tailBuf{}, scanDone: make(chan struct{})}
	sc := bufio.NewScanner(stdout)
	ready := false
	for sc.Scan() {
		line := sc.Text()
		var name, addr string
		if _, err := fmt.Sscanf(line, "expectd: serving %s on %s", &name, &addr); err == nil {
			d.addrs[name] = addr
			continue
		}
		if _, err := fmt.Sscanf(line, "expectd: mux on %s", &addr); err == nil {
			d.addrs["mux"] = addr
			continue
		}
		if line == "expectd: ready" {
			ready = true
			break
		}
	}
	if !ready || d.addrs["mux"] == "" {
		d.kill()
		return nil, fmt.Errorf("expectd never advertised its gateway (scan err: %v, addrs %v)", sc.Err(), d.addrs)
	}
	go func() {
		defer close(d.scanDone)
		for sc.Scan() {
			d.tail.add(sc.Text())
		}
	}()
	return d, nil
}
