package experiments

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// CountGoLines counts lines of non-test Go source under dir (comments
// included, as in the paper's "8000 lines, including comments").
func CountGoLines(dir string) (files, lines int, err error) {
	err = filepath.Walk(dir, func(path string, info os.FileInfo, werr error) error {
		if werr != nil {
			return werr
		}
		if info.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			lines++
		}
		files++
		return sc.Err()
	})
	return files, lines, err
}

// CodeSize is experiment E3: §7.1's observation that the language core
// dominates the dialogue engine — Tcl 2.1 was ~8000 lines against
// expect's ~1700 (a ratio near 4.7).
func CodeSize(repoRoot string) (Result, error) {
	t := &table{header: []string{"component", "paper (C)", "this repo (Go)", "files"}}
	tclFiles, tclLines, err := CountGoLines(filepath.Join(repoRoot, "internal/tcl"))
	if err != nil {
		return Result{}, err
	}
	coreFiles, coreLines, err := CountGoLines(filepath.Join(repoRoot, "internal/core"))
	if err != nil {
		return Result{}, err
	}
	t.add("Tcl language core", "~8000 lines", fmt.Sprint(tclLines), fmt.Sprint(tclFiles))
	t.add("expect engine+commands", "~1700 lines", fmt.Sprint(coreLines), fmt.Sprint(coreFiles))
	ratio := float64(tclLines) / float64(coreLines)
	t.add("ratio tcl/expect", "~4.7x", fmt.Sprintf("%.1fx", ratio), "")
	verdict := "expect is a wrapper around Tcl: the language core dominates"
	if tclLines <= coreLines {
		verdict = "SHAPE MISMATCH: engine outweighs the language core"
	}
	return Result{
		ID:         "E3",
		Title:      "code size: language core vs dialogue engine",
		PaperClaim: `"the Tcl library ... is approximately 8000 lines ...; the additional expect source ... is 1700 lines. Clearly, the Tcl code dominates expect." (§7.1)`,
		Table:      t.String(),
		Metrics: map[string]float64{
			"tcl_lines":  float64(tclLines),
			"core_lines": float64(coreLines),
			"ratio":      ratio,
		},
		Verdict: verdict,
	}, nil
}
