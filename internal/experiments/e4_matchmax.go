package experiments

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/core"
)

// MatchMaxSweep is experiment E4: §3.1's bounded match buffer — "more
// than 2000 bytes of output can force earlier bytes to be 'forgotten'".
// A torrent of output many times match_max must leave the buffer bounded,
// with the overflow accounted as forgotten, and a pattern that needs
// forgotten bytes must fail while one within the window still matches.
func MatchMaxSweep() (Result, error) {
	const streamLen = 64 * 1024
	t := &table{header: []string{"match_max", "streamed", "buffered", "forgotten", "early pattern", "late pattern"}}
	m := map[string]float64{}
	for _, mm := range []int{512, 2000, 8192} {
		marker := "NEEDLE-IN-THE-TAIL"
		prog := func(stdin io.Reader, stdout io.Writer) error {
			// An early marker that will scroll out, padding, then a late
			// marker inside every window size.
			io.WriteString(stdout, "EARLY-MARKER ")
			io.WriteString(stdout, strings.Repeat("x", streamLen))
			io.WriteString(stdout, " "+marker)
			io.Copy(io.Discard, stdin)
			return nil
		}
		s, err := core.SpawnProgram(&core.Config{MatchMax: mm}, "torrent", prog)
		if err != nil {
			return Result{}, err
		}
		late, err := s.ExpectTimeout(5*time.Second, core.Glob("*"+marker))
		if err != nil {
			s.Close()
			return Result{}, fmt.Errorf("match_max %d: late pattern: %v", mm, err)
		}
		lateOK := len(late.Text) <= mm
		// The early marker is gone: a fresh spawn, waiting for the whole
		// stream, must NOT be able to match it.
		s2, err := core.SpawnProgram(&core.Config{MatchMax: mm}, "torrent2", prog)
		if err != nil {
			s.Close()
			return Result{}, err
		}
		_, eerr := s2.ExpectTimeout(300*time.Millisecond, core.Glob("*EARLY-MARKER*"+marker+"*"))
		earlyFails := errors.Is(eerr, core.ErrTimeout) || errors.Is(eerr, core.ErrEOF)
		t.add(fmt.Sprint(mm), fmt.Sprint(streamLen+len(marker)+14),
			fmt.Sprintf("<=%d", mm), fmt.Sprint(s.Forgotten()),
			boolCell(!earlyFails, "matched (BAD)", "forgotten (ok)"),
			boolCell(lateOK, "matched (ok)", "oversized (BAD)"))
		m[fmt.Sprintf("forgotten_%d", mm)] = float64(s.Forgotten())
		s.Close()
		s2.Close()
		if !earlyFails || !lateOK {
			return Result{}, fmt.Errorf("match_max %d semantics violated", mm)
		}
	}
	return Result{
		ID:         "E4",
		Title:      "match_max buffer forgetting",
		PaperClaim: `"more than 2000 bytes of output can force earlier bytes to be 'forgotten'. This may be changed by setting the variable match_max." (§3.1)`,
		Table:      t.String(),
		Metrics:    m,
		Verdict:    "memory stays O(match_max) regardless of child verbosity; early data is unmatchable",
	}, nil
}

func boolCell(b bool, yes, no string) string {
	if b {
		return yes
	}
	return no
}
