package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/pattern"
)

// MatcherComparison is experiment E5: the §7.4 open question. "If
// characters arrive slowly, the pattern matcher scans the same data many
// times. ... The performance of a pattern matcher that does not need to
// rescan over earlier data needs to be studied." We study it: the naive
// strategy re-matches the whole accumulated buffer after every chunk
// (what the original shipped); the incremental matcher carries NFA state.
// Work for an N-byte stream in c-byte chunks is O(N²/c) vs O(N).
func MatcherComparison() (Result, error) {
	const pat = "*Str: 18*"
	t := &table{header: []string{"stream N", "chunk c", "rescan", "incremental", "speedup"}}
	m := map[string]float64{}
	for _, n := range []int{2000, 8000, 32000} {
		// The needle sits at the very end: worst case for rescanning.
		stream := strings.Repeat("x", n-8) + "Str: 18\n"
		for _, c := range []int{1, 16, 256} {
			rescan := timeIt(func() bool {
				matched := false
				for pos := 0; pos < len(stream); pos += c {
					end := pos + c
					if end > len(stream) {
						end = len(stream)
					}
					matched = pattern.Match(pat, stream[:end])
				}
				return matched
			})
			incr := timeIt(func() bool {
				im := pattern.NewIncremental(pat)
				matched := false
				for pos := 0; pos < len(stream); pos += c {
					end := pos + c
					if end > len(stream) {
						end = len(stream)
					}
					matched = im.Feed([]byte(stream[pos:end]))
				}
				return matched
			})
			speed := float64(rescan) / float64(incr)
			t.add(fmt.Sprint(n), fmt.Sprint(c),
				rescan.Round(time.Microsecond).String(),
				incr.Round(time.Microsecond).String(),
				fmt.Sprintf("%.1fx", speed))
			m[fmt.Sprintf("speedup_n%d_c%d", n, c)] = speed
		}
	}
	// Shape check: at the smallest chunk size the gap must grow with N.
	grows := m["speedup_n32000_c1"] > m["speedup_n2000_c1"]
	verdict := "incremental matching removes the rescan blow-up; gap grows with N/c"
	if !grows {
		verdict = "SHAPE MISMATCH: speedup did not grow with stream length"
	}
	return Result{
		ID:         "E5",
		Title:      "rescanning vs incremental pattern matching",
		PaperClaim: `"If characters arrive slowly, the pattern matcher scans the same data many times ... a pattern matcher that does not need to rescan over earlier data needs to be studied." (§7.4)`,
		Table:      t.String(),
		Metrics:    m,
		Verdict:    verdict,
	}, nil
}

// timeIt measures fn once (it is internally repetitive enough).
func timeIt(fn func() bool) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}
