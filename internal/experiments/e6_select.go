package experiments

import (
	"bufio"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
)

// SelectScaling is experiment E6: Figure 5 (one engine conversing with
// five processes at once) plus §7.2's process-count claim — under the V7
// fork-per-direction scheme, "Figure 5 would need 12 more processes than
// it does in the current implementation" (five children plus the user,
// each needing two auxiliary pump processes).
func SelectScaling() (Result, error) {
	t := &table{header: []string{"children N", "dialogue msgs", "elapsed", "msgs/sec",
		"procs (select impl)", "procs (V7 impl)", "extra"}}
	m := map[string]float64{}
	const msgsPerChild = 40
	for _, n := range []int{1, 5, 10, 32} {
		sessions := make([]*core.Session, n)
		for i := range sessions {
			name := fmt.Sprintf("peer%d", i)
			s, err := core.SpawnProgram(nil, name, func(stdin io.Reader, stdout io.Writer) error {
				sc := bufio.NewScanner(stdin)
				for sc.Scan() {
					fmt.Fprintf(stdout, "ack %s\n", sc.Text())
				}
				return nil
			})
			if err != nil {
				return Result{}, err
			}
			sessions[i] = s
		}
		start := time.Now()
		total := 0
		// Round-robin dialogue: poke every child, then use select to
		// drain whoever is ready — the Figure 5 control structure.
		for round := 0; round < msgsPerChild; round++ {
			for i, s := range sessions {
				if err := s.Send(fmt.Sprintf("r%d-c%d\n", round, i)); err != nil {
					return Result{}, err
				}
			}
			pending := map[*core.Session]bool{}
			for _, s := range sessions {
				pending[s] = true
			}
			for len(pending) > 0 {
				var waitList []*core.Session
				for s := range pending {
					waitList = append(waitList, s)
				}
				ready := core.Select(5*time.Second, waitList...)
				if len(ready) == 0 {
					return Result{}, fmt.Errorf("select timed out with %d pending", len(pending))
				}
				for _, s := range ready {
					if _, err := s.ExpectTimeout(5*time.Second, core.Glob("*ack*\n")); err != nil {
						return Result{}, err
					}
					total++
					delete(pending, s)
				}
			}
		}
		elapsed := time.Since(start)
		rate := float64(total) / elapsed.Seconds()
		// Process arithmetic: the select-based engine is 1 controller +
		// N children. The V7 scheme needs 2 auxiliary pumps per
		// conversant; the user counts as a conversant in Figure 5.
		selectProcs := 1 + n
		v7Procs := selectProcs + 2*(n+1)
		extra := v7Procs - selectProcs
		t.add(fmt.Sprint(n), fmt.Sprint(total), elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", rate),
			fmt.Sprint(selectProcs), fmt.Sprint(v7Procs), fmt.Sprintf("+%d", extra))
		m[fmt.Sprintf("msgs_per_sec_n%d", n)] = rate
		m[fmt.Sprintf("extra_procs_n%d", n)] = float64(extra)
		for _, s := range sessions {
			s.Close()
		}
	}
	verdict := "N=5 needs exactly +12 processes under the V7 scheme, matching §7.2"
	if m["extra_procs_n5"] != 12 {
		verdict = fmt.Sprintf("SHAPE MISMATCH: N=5 extra procs = %.0f, paper says 12", m["extra_procs_n5"])
	}
	return Result{
		ID:         "E6",
		Title:      "simultaneous control of N processes (Figure 5) and the V7 process-count claim",
		PaperClaim: `"expect is communicating with 5 processes simultaneously" (Fig. 5); "Figure 5 would need 12 more processes than it does in the current implementation" (§7.2)`,
		Table:      t.String(),
		Metrics:    m,
		Verdict:    verdict,
	}, nil
}
