package experiments

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/programs/authsim"
)

// FlushComparison is experiment E7: §5.4's input-flushing programs.
// "Redirecting standard input from the shell is ineffective with such
// programs since there is no control over how much can be lost when input
// flushing occurs. expect, on the other hand, will wait for the desired
// prompt rather than proceeding to send commands blindly." We drive the
// rn-style flusher both ways across a sweep of flush windows and report
// how many commands survive.
func FlushComparison() (Result, error) {
	const commands = 5
	t := &table{header: []string{"flush window", "blind writes survive", "expect-paced survive"}}
	m := map[string]float64{}
	for _, window := range []time.Duration{10 * time.Millisecond, 50 * time.Millisecond, 150 * time.Millisecond} {
		blind, err := runFlusher(window, commands, false)
		if err != nil {
			return Result{}, fmt.Errorf("blind %v: %w", window, err)
		}
		paced, err := runFlusher(window, commands, true)
		if err != nil {
			return Result{}, fmt.Errorf("paced %v: %w", window, err)
		}
		t.add(window.String(),
			fmt.Sprintf("%d/%d", blind, commands),
			fmt.Sprintf("%d/%d", paced, commands))
		m[fmt.Sprintf("blind_%dms", window.Milliseconds())] = float64(blind)
		m[fmt.Sprintf("paced_%dms", window.Milliseconds())] = float64(paced)
	}
	ok := true
	for _, w := range []int64{10, 50, 150} {
		if m[fmt.Sprintf("paced_%dms", w)] != commands {
			ok = false
		}
		if m[fmt.Sprintf("blind_%dms", w)] >= commands {
			ok = false
		}
	}
	verdict := "expect pacing loses nothing; blind redirection loses commands at every flush window"
	if !ok {
		verdict = "SHAPE MISMATCH: pacing did not dominate blind writes"
	}
	return Result{
		ID:         "E7",
		Title:      "input-flushing programs: blind redirection vs prompt-paced expect",
		PaperClaim: `"there is no control over how much can be lost when input flushing occurs. expect ... will wait for the desired prompt rather than proceeding to send commands blindly." (§5.4)`,
		Table:      t.String(),
		Metrics:    m,
		Verdict:    verdict,
	}, nil
}

func runFlusher(window time.Duration, commands int, paced bool) (int, error) {
	var mu sync.Mutex
	processed := 0
	prog := authsim.NewFlusher(authsim.FlusherConfig{
		Commands:  commands,
		ThinkTime: window,
		OnProcessed: func(string) {
			mu.Lock()
			processed++
			mu.Unlock()
		},
	})
	s, err := core.SpawnProgram(nil, "rn", prog)
	if err != nil {
		return 0, err
	}
	defer s.Close()
	if paced {
		for i := 0; i < commands; i++ {
			if _, err := s.ExpectTimeout(5*time.Second, core.Glob("*Command*> *")); err != nil {
				return 0, fmt.Errorf("prompt %d: %w", i+1, err)
			}
			if err := s.Send(fmt.Sprintf("cmd%d\n", i)); err != nil {
				return 0, err
			}
		}
	} else {
		// The shell way: pipe the whole command file in at once.
		for i := 0; i < commands; i++ {
			if err := s.Send(fmt.Sprintf("cmd%d\n", i)); err != nil {
				return 0, err
			}
		}
		s.CloseWrite()
	}
	if _, err := s.ExpectTimeout(10*time.Second, core.Glob("*processed*"), core.EOFCase()); err != nil {
		return 0, fmt.Errorf("completion: %w", err)
	}
	s.Wait()
	mu.Lock()
	defer mu.Unlock()
	return processed, nil
}
