package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/programs/authsim"
)

// HumanVsExpect is experiment E8: §7.4's only cross-comparison — "about
// the only thing that is clear is that expect uses a fraction of the real
// time that a user does." The same login-and-run-a-command dialogue is
// driven by the engine at full speed and by a simulated human typist
// (classic touch-typist figures: ~280 ms per keystroke plus a second of
// think time per prompt).
func HumanVsExpect() (Result, error) {
	const (
		keystroke = 280 * time.Millisecond
		think     = time.Second
	)
	// Expect-driven run, measured.
	expectTime, keys, prompts, err := runLoginDialogue(0, 0)
	if err != nil {
		return Result{}, err
	}
	// Human-driven run: measure with scaled-down delays (so the
	// experiment finishes) and project to the full figures analytically;
	// also report the directly simulated scaled run.
	const scale = 20
	humanScaled, _, _, err := runLoginDialogue(keystroke/scale, think/scale)
	if err != nil {
		return Result{}, err
	}
	humanProjected := time.Duration(keys)*keystroke + time.Duration(prompts)*think
	t := &table{header: []string{"driver", "keystrokes", "prompts", "dialogue time"}}
	t.add("expect engine", fmt.Sprint(keys), fmt.Sprint(prompts),
		expectTime.Round(time.Microsecond).String())
	t.add(fmt.Sprintf("human (1/%d scale, measured)", scale), fmt.Sprint(keys), fmt.Sprint(prompts),
		humanScaled.Round(time.Millisecond).String())
	t.add("human (projected full speed)", fmt.Sprint(keys), fmt.Sprint(prompts),
		humanProjected.Round(time.Millisecond).String())
	frac := expectTime.Seconds() / humanProjected.Seconds()
	m := map[string]float64{
		"expect_seconds":   expectTime.Seconds(),
		"human_seconds":    humanProjected.Seconds(),
		"expect_fraction":  frac,
		"speedup_vs_human": 1 / frac,
	}
	verdict := fmt.Sprintf("expect uses %.2g of the human's real time (%.0fx faster)", frac, 1/frac)
	if frac >= 0.5 {
		verdict = "SHAPE MISMATCH: expect not clearly faster than a human"
	}
	return Result{
		ID:         "E8",
		Title:      "wall-clock: expect vs a human running the same dialogue",
		PaperClaim: `"expect uses a fraction of the real time that a user does" (§7.4)`,
		Table:      t.String(),
		Metrics:    m,
		Verdict:    verdict,
	}, nil
}

// runLoginDialogue logs into the greeter, runs who, and logs out,
// inserting the given per-keystroke and per-prompt delays. It returns the
// elapsed time plus the keystroke and prompt counts.
func runLoginDialogue(perKey, perPrompt time.Duration) (time.Duration, int, int, error) {
	login := authsim.NewLogin(authsim.LoginConfig{
		Accounts: map[string]string{"don": "secret"},
	})
	s, err := core.SpawnProgram(&core.Config{Timeout: 10 * time.Second}, "login", login)
	if err != nil {
		return 0, 0, 0, err
	}
	defer s.Close()
	keys, prompts := 0, 0
	typeLine := func(text string) error {
		for i := 0; i < len(text); i++ {
			if perKey > 0 {
				time.Sleep(perKey)
			}
			keys++
			if err := s.SendBytes([]byte{text[i]}); err != nil {
				return err
			}
		}
		return nil
	}
	await := func(pat string) error {
		prompts++
		if _, err := s.ExpectMatch(pat); err != nil {
			return fmt.Errorf("waiting for %q: %w", pat, err)
		}
		if perPrompt > 0 {
			time.Sleep(perPrompt) // think time before answering
		}
		return nil
	}
	start := time.Now()
	steps := []struct{ pat, reply string }{
		{"*login:*", "don\n"},
		{"*Password:*", "secret\n"},
		{"*$ *", "who\n"},
		{"*$ *", "logout\n"},
	}
	for _, st := range steps {
		if err := await(st.pat); err != nil {
			return 0, 0, 0, err
		}
		if err := typeLine(st.reply); err != nil {
			return 0, 0, 0, err
		}
	}
	if _, err := s.ExpectTimeout(5*time.Second, core.Glob("*logout*"), core.EOFCase()); err != nil {
		return 0, 0, 0, err
	}
	return time.Since(start), keys, prompts, nil
}
