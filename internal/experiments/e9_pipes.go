package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/proc"
)

// PipePenalty is experiment E9: §5.9 — expect "can emulate dynamic and
// complex pipes and redirection ... the result will not be as fast
// because expect necessarily interposes itself in order to control the
// dialogue", and arbitrary fan-out "easily supercedes the capabilities of
// tee". We pump a payload producer→consumer directly, then through an
// interposed expect session, then fan one producer out to k consumers.
func PipePenalty() (Result, error) {
	const payload = 4 << 20 // 4 MiB
	t := &table{header: []string{"topology", "bytes", "elapsed", "MB/s"}}
	m := map[string]float64{}

	directRate, err := pumpDirect(payload)
	if err != nil {
		return Result{}, err
	}
	t.add("direct pipe", fmt.Sprint(payload), "", fmt.Sprintf("%.0f", directRate))
	m["direct_mb_s"] = directRate

	interposedRate, err := pumpInterposed(payload)
	if err != nil {
		return Result{}, err
	}
	t.add("expect interposed", fmt.Sprint(payload), "", fmt.Sprintf("%.0f", interposedRate))
	m["interposed_mb_s"] = interposedRate
	penalty := directRate / interposedRate
	m["penalty_factor"] = penalty

	for _, k := range []int{2, 4} {
		rate, err := pumpFanOut(payload/4, k)
		if err != nil {
			return Result{}, err
		}
		t.add(fmt.Sprintf("fan-out 1->%d", k), fmt.Sprint(payload/4), "",
			fmt.Sprintf("%.0f", rate))
		m[fmt.Sprintf("fanout%d_mb_s", k)] = rate
	}
	verdict := fmt.Sprintf("interposition costs %.1fx over a direct pipe — present but tolerable, as §5.9 concedes", penalty)
	if penalty < 1 {
		verdict = "SHAPE MISMATCH: interposed path measured faster than direct"
	}
	return Result{
		ID:         "E9",
		Title:      "throughput: direct pipe vs expect-interposed, plus tee-style fan-out",
		PaperClaim: `"the result will not be as fast because expect necessarily interposes itself"; "arbitrary fan-out is also trivial and easily supercedes the capabilities of tee" (§5.9)`,
		Table:      t.String(),
		Metrics:    m,
		Verdict:    verdict,
	}, nil
}

func producer(total int) proc.Program {
	return func(stdin io.Reader, stdout io.Writer) error {
		chunk := make([]byte, 32*1024)
		for i := range chunk {
			chunk[i] = byte('a' + i%26)
		}
		sent := 0
		for sent < total {
			n := total - sent
			if n > len(chunk) {
				n = len(chunk)
			}
			if _, err := stdout.Write(chunk[:n]); err != nil {
				return nil
			}
			sent += n
		}
		return nil
	}
}

// pumpDirect wires producer to a counting sink with no engine in between.
func pumpDirect(total int) (float64, error) {
	p, err := proc.SpawnVirtual("producer", producer(total), proc.Options{})
	if err != nil {
		return 0, err
	}
	defer p.Close()
	start := time.Now()
	n, err := io.Copy(io.Discard, p)
	if err != nil {
		return 0, err
	}
	if int(n) != total {
		return 0, fmt.Errorf("direct: copied %d of %d", n, total)
	}
	return mbPerSec(total, time.Since(start)), nil
}

// pumpInterposed relays through an expect session: every chunk passes
// through the match buffer and a pattern evaluation, exactly as when a
// script supervises a pipeline.
func pumpInterposed(total int) (float64, error) {
	// The relay must size match_max to its largest burst: there is no
	// back-pressure between the pump and the expect loop, so a too-small
	// window would forget bytes (exactly the §3.1 semantics E4 verifies).
	s, err := core.SpawnProgram(&core.Config{MatchMax: total + 1024}, "producer", producer(total))
	if err != nil {
		return 0, err
	}
	defer s.Close()
	consumer, cEnd := proc.NewDuplexPair(1 << 20)
	go io.Copy(io.Discard, cEnd)
	start := time.Now()
	moved := 0
	for moved < total {
		r, err := s.ExpectTimeout(10*time.Second, core.Regexp(`(?s).+`), core.EOFCase())
		if err != nil {
			return 0, fmt.Errorf("interposed after %d bytes: %w", moved, err)
		}
		if len(r.Text) == 0 && r.Eof {
			break
		}
		if _, err := consumer.Write([]byte(r.Text)); err != nil {
			return 0, err
		}
		moved += len(r.Text)
	}
	elapsed := time.Since(start)
	consumer.Close()
	if moved != total {
		return 0, fmt.Errorf("interposed: moved %d of %d", moved, total)
	}
	return mbPerSec(total, elapsed), nil
}

// pumpFanOut relays one producer to k sinks — the §5.9 tee superset.
func pumpFanOut(total, k int) (float64, error) {
	s, err := core.SpawnProgram(&core.Config{MatchMax: total + 1024}, "producer", producer(total))
	if err != nil {
		return 0, err
	}
	defer s.Close()
	sinks := make([]*proc.Duplex, k)
	for i := range sinks {
		a, b := proc.NewDuplexPair(1 << 20)
		go io.Copy(io.Discard, b)
		sinks[i] = a
	}
	start := time.Now()
	moved := 0
	for moved < total {
		r, err := s.ExpectTimeout(10*time.Second, core.Regexp(`(?s).+`), core.EOFCase())
		if err != nil {
			return 0, err
		}
		if len(r.Text) == 0 && r.Eof {
			break
		}
		for _, sink := range sinks {
			if _, err := sink.Write([]byte(r.Text)); err != nil {
				return 0, err
			}
		}
		moved += len(r.Text)
	}
	elapsed := time.Since(start)
	for _, sink := range sinks {
		sink.Close()
	}
	if moved != total {
		return 0, fmt.Errorf("fan-out: moved %d of %d", moved, total)
	}
	return mbPerSec(total, elapsed), nil
}

func mbPerSec(bytes int, d time.Duration) float64 {
	return float64(bytes) / (1 << 20) / d.Seconds()
}
