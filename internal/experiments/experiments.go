// Package experiments regenerates every quantitative claim in the paper's
// evaluation (§7, plus the measurable claims embedded in §2, §3.1, §5.4,
// §5.9 and §7.1–§7.3). Each experiment returns a Result holding the
// paper's claim, the measured table, and machine-readable metrics; the
// cmd/benchreport binary prints them and EXPERIMENTS.md records a run.
//
// Absolute numbers will differ from a 1990 Sun 3 — what must (and does)
// hold is the shape: who wins, by what factor, and where the crossovers
// fall.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Result is the outcome of one experiment. The JSON shape is what
// cmd/benchreport -json writes (BENCH_*.json artifacts).
type Result struct {
	// ID is the experiment identifier from DESIGN.md (e.g. "E1").
	ID string `json:"id"`
	// Title names the experiment.
	Title string `json:"title"`
	// PaperClaim quotes what the paper reports.
	PaperClaim string `json:"paper_claim"`
	// Table is the regenerated table/series, formatted for a terminal.
	Table string `json:"table"`
	// Metrics holds the headline numbers keyed by name.
	Metrics map[string]float64 `json:"metrics"`
	// Verdict is a one-line comparison of shape vs the paper.
	Verdict string `json:"verdict"`
}

// Format renders a result as a report section.
func (r Result) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", r.ID, r.Title)
	fmt.Fprintf(&sb, "paper: %s\n\n", r.PaperClaim)
	sb.WriteString(r.Table)
	if !strings.HasSuffix(r.Table, "\n") {
		sb.WriteByte('\n')
	}
	if len(r.Metrics) > 0 {
		keys := make([]string, 0, len(r.Metrics))
		for k := range r.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		sb.WriteString("\nmetrics:")
		for _, k := range keys {
			fmt.Fprintf(&sb, " %s=%.4g", k, r.Metrics[k])
		}
		sb.WriteByte('\n')
	}
	if r.Verdict != "" {
		fmt.Fprintf(&sb, "verdict: %s\n", r.Verdict)
	}
	return sb.String()
}

// table is a small fixed-width text table builder.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) {
	t.rows = append(t.rows, cells)
}

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return sb.String()
}
