package experiments

import (
	"strings"
	"testing"
)

// checkShape runs an experiment and fails on error or a shape-mismatch
// verdict — these tests are the executable form of EXPERIMENTS.md.
func checkShape(t *testing.T, name string, run func() (Result, error)) Result {
	t.Helper()
	r, err := run()
	if err != nil {
		t.Fatalf("%s failed: %v", name, err)
	}
	if strings.Contains(r.Verdict, "SHAPE MISMATCH") {
		t.Errorf("%s: %s\n%s", name, r.Verdict, r.Table)
	}
	if r.Table == "" || r.PaperClaim == "" {
		t.Errorf("%s: incomplete result", name)
	}
	return r
}

func TestE1RogueThroughputShape(t *testing.T) {
	r := checkShape(t, "E1", func() (Result, error) { return RogueThroughput(30) })
	// The paper's machine did ~10 games/s on the pty path; anything modern
	// should clear that, and the lighter transports must be faster still.
	if r.Metrics["games_per_sec_pty"] < 10 {
		t.Errorf("pty games/sec = %.1f, below the paper's 10", r.Metrics["games_per_sec_pty"])
	}
	if r.Metrics["games_per_sec_virtual"] < r.Metrics["games_per_sec_pty"] {
		t.Error("virtual transport slower than pty — transports inverted")
	}
}

func TestE2PhaseBreakdownShape(t *testing.T) {
	r := checkShape(t, "E2", func() (Result, error) { return PhaseBreakdown(30) })
	if r.Metrics["replay_match_share_c1"] < 0.4 {
		t.Errorf("replayed match share %.2f below the paper's 0.40", r.Metrics["replay_match_share_c1"])
	}
}

func TestE3CodeSizeShape(t *testing.T) {
	r := checkShape(t, "E3", func() (Result, error) { return CodeSize("../..") })
	if r.Metrics["ratio"] <= 1 {
		t.Errorf("tcl/core ratio %.2f — the language core must dominate (§7.1)", r.Metrics["ratio"])
	}
}

func TestE4MatchMaxShape(t *testing.T) {
	checkShape(t, "E4", MatchMaxSweep)
}

func TestE5MatcherShape(t *testing.T) {
	r := checkShape(t, "E5", MatcherComparison)
	// The crossover claim: small chunks favor incremental enormously and
	// the advantage grows with stream length.
	if r.Metrics["speedup_n32000_c1"] < 10 {
		t.Errorf("speedup at n=32000,c=1 only %.1fx", r.Metrics["speedup_n32000_c1"])
	}
	if r.Metrics["speedup_n32000_c1"] <= r.Metrics["speedup_n2000_c1"] {
		t.Error("speedup did not grow with N at c=1")
	}
}

func TestE6SelectShape(t *testing.T) {
	r := checkShape(t, "E6", SelectScaling)
	if r.Metrics["extra_procs_n5"] != 12 {
		t.Errorf("V7 extra processes at N=5 = %.0f, paper says 12 (§7.2)",
			r.Metrics["extra_procs_n5"])
	}
}

func TestE7FlushShape(t *testing.T) {
	r := checkShape(t, "E7", FlushComparison)
	for _, w := range []string{"10ms", "50ms", "150ms"} {
		if r.Metrics["paced_"+w] != 5 {
			t.Errorf("paced run at %s lost commands: %.0f/5", w, r.Metrics["paced_"+w])
		}
		if r.Metrics["blind_"+w] >= r.Metrics["paced_"+w] {
			t.Errorf("blind >= paced at %s", w)
		}
	}
}

func TestE8HumanShape(t *testing.T) {
	r := checkShape(t, "E8", HumanVsExpect)
	if r.Metrics["expect_fraction"] >= 0.1 {
		t.Errorf("expect used %.2f of human time; paper says 'a fraction'",
			r.Metrics["expect_fraction"])
	}
}

func TestE9PipeShape(t *testing.T) {
	r := checkShape(t, "E9", PipePenalty)
	if r.Metrics["penalty_factor"] <= 1 {
		t.Errorf("no interposition penalty measured (%.2fx) — §5.9 predicts one",
			r.Metrics["penalty_factor"])
	}
}

func TestE12MatrixShape(t *testing.T) {
	r := checkShape(t, "E12", CapabilityMatrix)
	if r.Metrics["expect_passes"] != 4 {
		t.Errorf("expect passed %.0f/4 scenarios", r.Metrics["expect_passes"])
	}
	if r.Metrics["chat_passes"] > 1 || r.Metrics["stelnet_passes"] > 1 {
		t.Errorf("baselines passed too much: chat=%.0f stelnet=%.0f — they should only manage the happy path",
			r.Metrics["chat_passes"], r.Metrics["stelnet_passes"])
	}
}

func TestE16TraceOverheadShape(t *testing.T) {
	if testing.Short() {
		t.Skip("interleaved overhead passes take seconds of wall clock")
	}
	r := checkShape(t, "E16", TraceOverhead)
	// No assertion on the overhead percentages: they are what check.sh's
	// guard enforces, and a loaded CI worker must not fail the unit tier
	// over scheduler noise. The shape obligations are that every
	// configuration produced a rate and the histograms actually sampled.
	for _, key := range []string{"ns_per_expect_absent", "ns_per_expect_disabled",
		"ns_per_expect_ring", "ns_per_expect_diag"} {
		if r.Metrics[key] <= 0 {
			t.Errorf("%s = %v, want > 0", key, r.Metrics[key])
		}
	}
	for _, key := range []string{"p99_ns_wakeup-to-match", "p99_ns_read-to-wakeup",
		"p99_ns_eval-dispatch"} {
		if r.Metrics[key] <= 0 {
			t.Errorf("%s = %v, want > 0 (histogram did not sample)", key, r.Metrics[key])
		}
	}
	if r.Metrics["ns_per_expect_diag"] <= r.Metrics["ns_per_expect_absent"] {
		t.Error("full diag rendering measured cheaper than no recorder at all — instrumentation inverted")
	}
}

func TestCountGoLines(t *testing.T) {
	files, lines, err := CountGoLines(".")
	if err != nil {
		t.Fatal(err)
	}
	if files == 0 || lines == 0 {
		t.Errorf("counted %d files, %d lines in own package", files, lines)
	}
}

func TestTableFormatting(t *testing.T) {
	tb := &table{header: []string{"a", "long-header"}}
	tb.add("x", "y")
	tb.add("wide-cell", "z")
	out := tb.String()
	if !strings.Contains(out, "long-header") || !strings.Contains(out, "wide-cell") {
		t.Errorf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Errorf("table has %d lines, want 4", len(lines))
	}
}

func TestResultFormat(t *testing.T) {
	r := Result{ID: "EX", Title: "demo", PaperClaim: "claim", Table: "t\n",
		Metrics: map[string]float64{"m": 1}, Verdict: "fine"}
	out := r.Format()
	for _, want := range []string{"EX", "demo", "claim", "m=1", "fine"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format() missing %q:\n%s", want, out)
		}
	}
}

func TestE13TimeoutShape(t *testing.T) {
	r := checkShape(t, "E13", TimeoutSemantics)
	if r.Metrics["default_seconds"] != 10 {
		t.Errorf("default timeout = %.1fs, want 10 (§3.1)", r.Metrics["default_seconds"])
	}
	if r.Metrics["worst_rel_err"] > 0.25 {
		t.Errorf("timeout error %.0f%% too loose", r.Metrics["worst_rel_err"]*100)
	}
	if r.Metrics["preempt_seconds"] > 1 {
		t.Errorf("match took %.2fs to preempt a 30s timeout", r.Metrics["preempt_seconds"])
	}
}
