// Package faultify is a deterministic adversary for the expect engine's
// byte streams. It wraps a proc transport and perturbs the traffic between
// child and engine in the ways real ptys, schedulers, and serial lines do —
// output arriving one byte at a time, reads waking up late, writes going
// out short, transient EAGAIN-style errors, the line dropping mid-pattern —
// but driven by a seeded PRNG so a failing run can be replayed from its
// seed and schedule.
//
// The paper's correctness claim (§2, §7.4) is exactly that expect survives
// these conditions: patterns match "regardless of how the program divides
// its output" and slow arrival only costs rescans, never wrong answers.
// The conformance harness (internal/conformance) replays every shipped
// script through Transports built here and asserts the dialogue comes out
// byte-identical with the clean transport.
//
// Fault taxonomy:
//
//   - Resegmentation (MaxReadChunk): each Read delivers at most k bytes,
//     k drawn uniformly from [1, MaxReadChunk]; with MaxReadChunk == 1 the
//     stream arrives strictly one byte per engine wakeup, splitting every
//     multi-byte pattern across reads. Semantics-preserving.
//   - Read delay (ReadDelay, DelayEveryN): roughly one in DelayEveryN
//     reads sleeps up to ReadDelay before delivering, exercising expect's
//     timeout arithmetic around slow arrivals. Semantics-preserving as
//     long as delays stay well inside the script's timeout budget.
//   - Short writes (MaxWriteChunk): engine writes are split into chunks of
//     at most MaxWriteChunk bytes before reaching the child, modelling a
//     clogged pty output queue. Semantics-preserving (the child sees the
//     same byte sequence).
//   - Transient errors (TransientEveryN, WriteTransientEveryN): roughly
//     one in N reads/writes fails with ErrTransient (Temporary() == true)
//     before any data moves, the EAGAIN/EINTR the engine must absorb by
//     retrying. Semantics-preserving given a retrying engine.
//   - Stream cut (CutAfterBytes): after N bytes of child output have been
//     delivered the transport reports EOF forever — the line dropping with
//     a partial pattern in the buffer. Deliberately semantics-ALTERING;
//     the conformance mutation test uses it to prove divergences are
//     caught, and targeted tests use it for EOF-mid-pattern coverage.
//
// Reproducibility contract: a Transport's choices are a pure function of
// (Schedule.Seed, the sequence of Read/Write calls on it). With
// MaxReadChunk == 1 the delivered chunking is fully deterministic; larger
// values keep the adversary's choices fixed by the seed while the chunk
// boundaries additionally depend on arrival timing. Divergence reports
// therefore always carry both the seed and the schedule.
package faultify

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// Counter names reported to the metrics sink.
const (
	CounterReads          = "faultify.reads"
	CounterReadsSplit     = "faultify.reads_resegmented"
	CounterReadDelays     = "faultify.read_delays"
	CounterReadTransients = "faultify.read_transient_errors"
	CounterWrites         = "faultify.writes"
	CounterWritesSplit    = "faultify.writes_split"
	CounterWriteTransient = "faultify.write_transient_errors"
	CounterEOFCuts        = "faultify.eof_cuts"
)

// ErrTransient is the injected EAGAIN-analogue: it reports Temporary() ==
// true, and a correct engine retries the operation instead of treating the
// stream as dead.
var ErrTransient error = transientError{}

type transientError struct{}

func (transientError) Error() string   { return "faultify: transient I/O error (injected EAGAIN)" }
func (transientError) Temporary() bool { return true }
func (transientError) Timeout() bool   { return false }

// Schedule describes one adversary: which fault classes are armed and the
// seed fixing every choice the PRNG makes. The zero value perturbs nothing
// (a clean pass-through).
type Schedule struct {
	// Seed fixes all PRNG draws. Two Transports with the same schedule
	// make identical choices at every decision point.
	Seed uint64
	// MaxReadChunk > 0 resegments reads: each Read returns at most k
	// bytes, k uniform in [1, MaxReadChunk].
	MaxReadChunk int
	// ReadDelay is the maximum injected pre-read sleep; DelayEveryN picks
	// roughly one in N reads to delay (both must be set to take effect).
	ReadDelay   time.Duration
	DelayEveryN int
	// MaxWriteChunk > 0 splits writes into chunks of at most this size.
	MaxWriteChunk int
	// TransientEveryN > 0 fails roughly one in N reads with ErrTransient.
	TransientEveryN int
	// WriteTransientEveryN > 0 fails roughly one in N write chunks with
	// ErrTransient after any earlier chunks have been delivered (a short
	// write: n < len(p) with a temporary error).
	WriteTransientEveryN int
	// CutAfterBytes > 0 forces EOF after that many bytes of child output
	// have been delivered to the engine. Semantics-altering by design.
	CutAfterBytes int64
}

// String renders the schedule compactly for divergence reports; the output
// plus the seed is everything needed to rebuild the adversary.
func (s Schedule) String() string {
	var parts []string
	parts = append(parts, fmt.Sprintf("seed=%d", s.Seed))
	if s.MaxReadChunk > 0 {
		parts = append(parts, fmt.Sprintf("readchunk<=%d", s.MaxReadChunk))
	}
	if s.ReadDelay > 0 && s.DelayEveryN > 0 {
		parts = append(parts, fmt.Sprintf("delay<=%s/1in%d", s.ReadDelay, s.DelayEveryN))
	}
	if s.MaxWriteChunk > 0 {
		parts = append(parts, fmt.Sprintf("writechunk<=%d", s.MaxWriteChunk))
	}
	if s.TransientEveryN > 0 {
		parts = append(parts, fmt.Sprintf("readerr=1in%d", s.TransientEveryN))
	}
	if s.WriteTransientEveryN > 0 {
		parts = append(parts, fmt.Sprintf("writeerr=1in%d", s.WriteTransientEveryN))
	}
	if s.CutAfterBytes > 0 {
		parts = append(parts, fmt.Sprintf("cutafter=%dB", s.CutAfterBytes))
	}
	if len(parts) == 1 {
		parts = append(parts, "clean")
	}
	return strings.Join(parts, " ")
}

// Clean reports whether the schedule perturbs nothing.
func (s Schedule) Clean() bool {
	return s.MaxReadChunk == 0 && (s.ReadDelay == 0 || s.DelayEveryN == 0) &&
		s.MaxWriteChunk == 0 && s.TransientEveryN == 0 &&
		s.WriteTransientEveryN == 0 && s.CutAfterBytes == 0
}

// rng is splitmix64: tiny, seedable, and stable across Go releases —
// math/rand's stream is not guaranteed stable, and reproducibility of a
// fault schedule must survive toolchain upgrades.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform value in [0, n).
func (r *rng) intn(n int) int {
	if n <= 1 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// Transport is the perturbing wrapper. Reads and writes may be issued from
// different goroutines (the engine's pump reads while the script thread
// sends), so each side owns an independent PRNG stream derived from the
// seed; choices on one side never depend on traffic on the other.
type Transport struct {
	rw    io.ReadWriteCloser
	sched Schedule
	sink  *metrics.Counters // optional external sink; nil is a no-op

	readMu    sync.Mutex
	readRng   rng
	pending   []byte // bytes read from rw but not yet delivered
	delivered int64  // child-output bytes handed to the engine
	cut       bool   // CutAfterBytes reached: EOF forever

	writeMu  sync.Mutex
	writeRng rng

	stats metrics.Counters // always-on internal accounting

	rec *trace.Recorder // optional flight recorder; nil records nothing
	sid int32           // spawn id tag on fault events (-1 when unknown)
}

// Wrap builds a Transport perturbing rw according to sched, reporting
// per-fault counters to sink (which may be nil).
func Wrap(rw io.ReadWriteCloser, sched Schedule, sink *metrics.Counters) *Transport {
	return &Transport{
		rw:    rw,
		sched: sched,
		sink:  sink,
		// Distinct derivation constants keep the two sides' streams
		// independent even though they share a seed.
		readRng:  rng{state: sched.Seed ^ 0x9e3779b97f4a7c15},
		writeRng: rng{state: sched.Seed ^ 0xc2b2ae3d27d4eb4f},
	}
}

// Wrapper returns a proc.Options.WrapTransport-shaped hook building a
// Transport per spawned process. Each process gets its own PRNG state
// (same seed), so single-process runs are unaffected by spawn order.
func Wrapper(sched Schedule, sink *metrics.Counters) func(io.ReadWriteCloser) io.ReadWriteCloser {
	return func(rw io.ReadWriteCloser) io.ReadWriteCloser {
		return Wrap(rw, sched, sink)
	}
}

// TracedWrapper is Wrapper plus flight recording: every injected fault
// (transient error, delay, stream cut) lands in rec as a KindFault event,
// so a post-mortem dump shows not only what the engine saw but what the
// adversary did to cause it. Resegmentation and write splitting are
// deliberately NOT recorded — with MaxReadChunk == 1 they fire on every
// read and would evict the events the dump exists to preserve. The wrapper
// is built before the engine assigns a spawn id, so fault events carry
// spawn_id -1; dump readers correlate them by sequence order instead.
func TracedWrapper(sched Schedule, sink *metrics.Counters, rec *trace.Recorder) func(io.ReadWriteCloser) io.ReadWriteCloser {
	return func(rw io.ReadWriteCloser) io.ReadWriteCloser {
		t := Wrap(rw, sched, sink)
		t.rec = rec
		t.sid = -1
		return t
	}
}

// Schedule returns the transport's schedule (for divergence reports).
func (t *Transport) Schedule() Schedule { return t.sched }

// Stats returns a snapshot of the transport's internal fault counters.
func (t *Transport) Stats() map[string]int64 { return t.stats.Snapshot() }

func (t *Transport) count(name string, n int64) {
	t.stats.Add(name, n)
	t.sink.Add(name, n)
}

// recordFault logs an injected fault in the flight recorder, if armed.
// The fault path is already cold (a sleep, an error return, or EOF), so
// the extra event write costs nothing measurable.
func (t *Transport) recordFault(label string, n int64) {
	if t.rec.On() {
		t.rec.Record(trace.KindFault, t.sid, n, 0, false, label, "")
	}
}

// Read delivers child output, resegmented, delayed, cut, or transiently
// failed per the schedule.
func (t *Transport) Read(b []byte) (int, error) {
	t.readMu.Lock()
	defer t.readMu.Unlock()
	t.count(CounterReads, 1)

	if t.cut {
		return 0, io.EOF
	}
	if t.sched.TransientEveryN > 0 && t.readRng.intn(t.sched.TransientEveryN) == 0 {
		t.count(CounterReadTransients, 1)
		t.recordFault("read transient (injected EAGAIN)", t.delivered)
		return 0, ErrTransient
	}
	if t.sched.ReadDelay > 0 && t.sched.DelayEveryN > 0 &&
		t.readRng.intn(t.sched.DelayEveryN) == 0 {
		t.count(CounterReadDelays, 1)
		// Uniform in (0, ReadDelay]; the duration is drawn from the PRNG
		// so the delay pattern is part of the reproducible schedule.
		d := time.Duration(1 + t.readRng.intn(int(t.sched.ReadDelay)))
		t.recordFault("read delay "+d.String(), t.delivered)
		t.readMu.Unlock()
		time.Sleep(d)
		t.readMu.Lock()
		if t.cut {
			return 0, io.EOF
		}
	}

	// Refill the pending buffer from the wrapped stream when empty.
	if len(t.pending) == 0 {
		chunk := make([]byte, 4096)
		n, err := t.rw.Read(chunk)
		if n > 0 {
			t.pending = chunk[:n]
		}
		if err != nil {
			if n == 0 {
				return 0, err
			}
			// Deliver the data first; the error resurfaces on the next
			// call (stash EOF by cutting only if it was a real EOF is
			// unnecessary: the wrapped stream will repeat it).
		}
	}

	// Resegment: deliver at most k bytes of what is pending.
	n := len(t.pending)
	if n > len(b) {
		n = len(b)
	}
	if t.sched.MaxReadChunk > 0 && n > t.sched.MaxReadChunk {
		k := 1 + t.readRng.intn(t.sched.MaxReadChunk)
		if n > k {
			n = k
			t.count(CounterReadsSplit, 1)
		}
	}
	// Stream cut: truncate at the cut point and report EOF afterwards.
	if t.sched.CutAfterBytes > 0 {
		remain := t.sched.CutAfterBytes - t.delivered
		if remain <= 0 {
			t.cut = true
			t.count(CounterEOFCuts, 1)
			t.recordFault("stream cut (forced EOF)", t.delivered)
			return 0, io.EOF
		}
		if int64(n) > remain {
			n = int(remain)
		}
	}
	copy(b, t.pending[:n])
	t.pending = t.pending[n:]
	t.delivered += int64(n)
	if t.sched.CutAfterBytes > 0 && t.delivered >= t.sched.CutAfterBytes {
		t.cut = true
		t.count(CounterEOFCuts, 1)
		t.recordFault("stream cut (forced EOF)", t.delivered)
	}
	return n, nil
}

// Write sends engine input to the child, split into short writes and
// transiently failed per the schedule. On ErrTransient the returned count
// says how much was actually delivered; callers retry the remainder.
func (t *Transport) Write(p []byte) (int, error) {
	t.writeMu.Lock()
	defer t.writeMu.Unlock()
	t.count(CounterWrites, 1)

	written := 0
	for written < len(p) {
		if t.sched.WriteTransientEveryN > 0 && t.writeRng.intn(t.sched.WriteTransientEveryN) == 0 {
			t.count(CounterWriteTransient, 1)
			t.recordFault("write transient (injected EAGAIN)", int64(written))
			return written, ErrTransient
		}
		chunk := p[written:]
		if t.sched.MaxWriteChunk > 0 && len(chunk) > t.sched.MaxWriteChunk {
			k := 1 + t.writeRng.intn(t.sched.MaxWriteChunk)
			if len(chunk) > k {
				chunk = chunk[:k]
				t.count(CounterWritesSplit, 1)
			}
		}
		n, err := t.rw.Write(chunk)
		written += n
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// Close tears down the wrapped stream.
func (t *Transport) Close() error { return t.rw.Close() }

// CloseWrite forwards the half-close when the wrapped transport supports
// it, so EOF-on-stdin keeps working through the adversary.
func (t *Transport) CloseWrite() error {
	if cw, ok := t.rw.(interface{ CloseWrite() error }); ok {
		return cw.CloseWrite()
	}
	return nil
}
