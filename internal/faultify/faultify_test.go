package faultify

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/proc"
)

// loopback is a ReadWriteCloser over fixed child output, recording what
// the engine wrote.
type loopback struct {
	out  *bytes.Reader // child output stream
	in   bytes.Buffer  // engine -> child bytes
	wmax int           // optional cap on per-call write size accepted
}

func newLoopback(childOutput string) *loopback {
	return &loopback{out: bytes.NewReader([]byte(childOutput))}
}

func (l *loopback) Read(b []byte) (int, error) { return l.out.Read(b) }
func (l *loopback) Write(b []byte) (int, error) {
	if l.wmax > 0 && len(b) > l.wmax {
		b = b[:l.wmax]
	}
	return l.in.Write(b)
}
func (l *loopback) Close() error { return nil }

// drain reads t to EOF, retrying transient errors, and returns the data
// plus the observed chunk sizes.
func drain(t *Transport) (string, []int, error) {
	var data bytes.Buffer
	var sizes []int
	buf := make([]byte, 4096)
	for {
		n, err := t.Read(buf)
		if n > 0 {
			sizes = append(sizes, n)
			data.Write(buf[:n])
		}
		if err != nil {
			if errors.Is(err, ErrTransient) {
				continue
			}
			if err == io.EOF {
				return data.String(), sizes, nil
			}
			return data.String(), sizes, err
		}
	}
}

const payload = "Welcome to the machine.\nlogin: guest\nPassword:\n"

func TestCleanScheduleIsPassThrough(t *testing.T) {
	tr := Wrap(newLoopback(payload), Schedule{Seed: 1}, nil)
	got, _, err := drain(tr)
	if err != nil || got != payload {
		t.Fatalf("got %q err %v", got, err)
	}
	if !tr.Schedule().Clean() {
		t.Error("schedule with only a seed should be Clean")
	}
	if n := tr.Stats()[CounterReadsSplit]; n != 0 {
		t.Errorf("clean schedule split reads: %d", n)
	}
}

func TestResegmentationOneByte(t *testing.T) {
	tr := Wrap(newLoopback(payload), Schedule{Seed: 7, MaxReadChunk: 1}, nil)
	got, sizes, err := drain(tr)
	if err != nil || got != payload {
		t.Fatalf("got %q err %v", got, err)
	}
	for _, s := range sizes {
		if s != 1 {
			t.Fatalf("1-byte schedule delivered a %d-byte chunk", s)
		}
	}
	if len(sizes) != len(payload) {
		t.Errorf("chunks = %d, want %d", len(sizes), len(payload))
	}
}

func TestResegmentationBounded(t *testing.T) {
	tr := Wrap(newLoopback(payload), Schedule{Seed: 3, MaxReadChunk: 5}, nil)
	got, sizes, err := drain(tr)
	if err != nil || got != payload {
		t.Fatalf("got %q err %v", got, err)
	}
	for _, s := range sizes {
		if s > 5 {
			t.Fatalf("chunk %d exceeds MaxReadChunk 5", s)
		}
	}
}

// Determinism: identical seed and schedule over identical traffic must
// reproduce the exact chunk sequence; a different seed should not.
func TestSeedDeterminism(t *testing.T) {
	run := func(seed uint64) []int {
		tr := Wrap(newLoopback(payload), Schedule{Seed: seed, MaxReadChunk: 6, TransientEveryN: 4}, nil)
		_, sizes, err := drain(tr)
		if err != nil {
			t.Fatal(err)
		}
		return sizes
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("same seed, different chunk counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at chunk %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical schedules (PRNG not wired)")
	}
}

func TestTransientReadErrors(t *testing.T) {
	sink := metrics.NewCounters()
	tr := Wrap(newLoopback(payload), Schedule{Seed: 5, TransientEveryN: 2}, sink)
	got, _, err := drain(tr)
	if err != nil || got != payload {
		t.Fatalf("got %q err %v", got, err)
	}
	if n := tr.Stats()[CounterReadTransients]; n == 0 {
		t.Error("no transient errors injected at 1-in-2")
	}
	if sink.Get(CounterReadTransients) != tr.Stats()[CounterReadTransients] {
		t.Error("sink and internal stats disagree")
	}
	var temp interface{ Temporary() bool }
	if !errors.As(ErrTransient, &temp) || !temp.Temporary() {
		t.Error("ErrTransient must report Temporary() == true")
	}
}

func TestShortWritesPreserveByteSequence(t *testing.T) {
	lb := newLoopback("")
	tr := Wrap(lb, Schedule{Seed: 9, MaxWriteChunk: 2, WriteTransientEveryN: 3}, nil)
	msg := []byte("set passwd hunter2\r")
	// Caller-side retry loop, as the engine's SendBytes does.
	sent := 0
	for sent < len(msg) {
		n, err := tr.Write(msg[sent:])
		sent += n
		if err != nil && !errors.Is(err, ErrTransient) {
			t.Fatal(err)
		}
	}
	if lb.in.String() != string(msg) {
		t.Fatalf("child saw %q, want %q", lb.in.String(), msg)
	}
	if tr.Stats()[CounterWritesSplit] == 0 {
		t.Error("no writes split at MaxWriteChunk=2")
	}
	if tr.Stats()[CounterWriteTransient] == 0 {
		t.Error("no transient write errors at 1-in-3")
	}
}

func TestCutAfterBytesForcesEOF(t *testing.T) {
	tr := Wrap(newLoopback(payload), Schedule{Seed: 1, CutAfterBytes: 10}, nil)
	got, _, err := drain(tr)
	if err != nil {
		t.Fatal(err)
	}
	if got != payload[:10] {
		t.Fatalf("got %q, want first 10 bytes %q", got, payload[:10])
	}
	// EOF must be sticky.
	if n, err := tr.Read(make([]byte, 8)); n != 0 || err != io.EOF {
		t.Errorf("post-cut read = (%d, %v), want (0, EOF)", n, err)
	}
	if tr.Stats()[CounterEOFCuts] == 0 {
		t.Error("cut not counted")
	}
}

func TestReadDelayInjected(t *testing.T) {
	tr := Wrap(newLoopback(payload), Schedule{
		Seed: 11, DelayEveryN: 1, ReadDelay: time.Millisecond, MaxReadChunk: 4,
	}, nil)
	start := time.Now()
	got, _, err := drain(tr)
	if err != nil || got != payload {
		t.Fatalf("got %q err %v", got, err)
	}
	if tr.Stats()[CounterReadDelays] == 0 {
		t.Error("no delays injected with DelayEveryN=1")
	}
	if time.Since(start) == 0 {
		t.Error("suspiciously instant")
	}
}

func TestScheduleString(t *testing.T) {
	s := Schedule{Seed: 77, MaxReadChunk: 1, TransientEveryN: 8, CutAfterBytes: 5}
	str := s.String()
	for _, want := range []string{"seed=77", "readchunk<=1", "readerr=1in8", "cutafter=5B"} {
		if !bytes.Contains([]byte(str), []byte(want)) {
			t.Errorf("schedule string %q missing %q", str, want)
		}
	}
	if clean := (Schedule{Seed: 3}).String(); !bytes.Contains([]byte(clean), []byte("clean")) {
		t.Errorf("clean schedule renders as %q", clean)
	}
}

// End-to-end through the proc layer: a virtual program behind a faultified
// transport still delivers its whole stream, and the wrapper forwards
// half-close so the child sees EOF.
func TestWrapperOnVirtualTransport(t *testing.T) {
	sink := metrics.NewCounters()
	p, err := proc.SpawnVirtual("greeter", func(stdin io.Reader, stdout io.Writer) error {
		stdout.Write([]byte("hello engine\n"))
		io.ReadAll(stdin)
		stdout.Write([]byte("goodbye\n"))
		return nil
	}, proc.Options{WrapTransport: Wrapper(Schedule{Seed: 2, MaxReadChunk: 1, TransientEveryN: 3}, sink)})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var data bytes.Buffer
	buf := make([]byte, 64)
	for !bytes.Contains(data.Bytes(), []byte("hello engine\n")) {
		n, rerr := p.Read(buf)
		data.Write(buf[:n])
		if rerr != nil && !errors.Is(rerr, ErrTransient) {
			t.Fatalf("read: %v (got %q)", rerr, data.String())
		}
	}
	if err := p.CloseWrite(); err != nil {
		t.Fatal(err)
	}
	for {
		n, rerr := p.Read(buf)
		data.Write(buf[:n])
		if rerr != nil {
			if errors.Is(rerr, ErrTransient) {
				continue
			}
			break
		}
	}
	if got := data.String(); got != "hello engine\ngoodbye\n" {
		t.Fatalf("stream %q", got)
	}
	if sink.Get(CounterReads) == 0 {
		t.Error("sink saw no reads")
	}
}
