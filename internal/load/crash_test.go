package load

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/netx"
	"repro/internal/testutil"
)

// This file is the crash/recovery battery: prove that a soak survives
// losing the expectd daemon. The client checkpoints every session at a
// seeded point, the daemon is SIGKILLed (no drain, no goodbye), a fresh
// daemon comes up, and every session is restored from its checkpoint
// against a new connection — including expects that were parked when the
// lights went out. The dialogue conservation law must hold across the
// crash with zero lost dialogues.

// expectdBin builds cmd/expectd once per test binary; every test in this
// file shares the artifact.
var expectdBin struct {
	once sync.Once
	path string
	err  error
}

func buildExpectd(t *testing.T) string {
	t.Helper()
	expectdBin.once.Do(func() {
		tmp, err := os.MkdirTemp("", "crash-expectd-")
		if err != nil {
			expectdBin.err = err
			return
		}
		bin := filepath.Join(tmp, "expectd")
		build := exec.Command("go", "build", "-o", bin, "repro/cmd/expectd")
		build.Dir = "../.."
		if out, err := build.CombinedOutput(); err != nil {
			expectdBin.err = fmt.Errorf("build expectd: %v\n%s", err, out)
			return
		}
		expectdBin.path = bin
	})
	if expectdBin.err != nil {
		t.Fatal(expectdBin.err)
	}
	return expectdBin.path
}

// crashDaemon is one expectd incarnation under test control. Unlike the
// E18 harness it records every stdout line from the first (the -restore
// report prints before "ready") and stays scanning for the lifetime of
// the process, so tests can wait on any marker the daemon or its drive
// script emits.
type crashDaemon struct {
	t        *testing.T
	cmd      *exec.Cmd
	addrs    map[string]string
	mu       sync.Mutex
	lines    []string
	scanDone chan struct{}
}

func startDaemon(t *testing.T, args ...string) *crashDaemon {
	t.Helper()
	bin := buildExpectd(t)
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start expectd: %v", err)
	}
	d := &crashDaemon{t: t, cmd: cmd, addrs: map[string]string{}, scanDone: make(chan struct{})}
	ready := make(chan struct{})
	go func() {
		defer close(d.scanDone)
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			d.mu.Lock()
			d.lines = append(d.lines, line)
			d.mu.Unlock()
			var name, addr string
			if _, err := fmt.Sscanf(line, "expectd: serving %s on %s", &name, &addr); err == nil {
				d.addrs[name] = addr
				continue
			}
			// The session gateway advertises itself under the reserved
			// name "mux" (program names never collide with it: the
			// registry has no program called mux).
			if _, err := fmt.Sscanf(line, "expectd: mux on %s", &addr); err == nil {
				d.addrs["mux"] = addr
				continue
			}
			if line == "expectd: ready" {
				close(ready)
			}
		}
	}()
	select {
	case <-ready:
	case <-d.scanDone:
		d.kill()
		t.Fatalf("expectd exited before ready:\n%s", d.joined())
	case <-time.After(30 * time.Second):
		d.kill()
		t.Fatal("expectd never became ready")
	}
	return d
}

func (d *crashDaemon) joined() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return strings.Join(d.lines, "\n")
}

// waitLine blocks until some stdout line contains want.
func (d *crashDaemon) waitLine(want string, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if strings.Contains(d.joined(), want) {
			return true
		}
		select {
		case <-d.scanDone:
			return strings.Contains(d.joined(), want)
		case <-time.After(10 * time.Millisecond):
		}
	}
	return false
}

// kill is the crash: SIGKILL, no drain, no checkpoint of its own.
func (d *crashDaemon) kill() {
	d.cmd.Process.Kill()
	<-d.scanDone
	d.cmd.Wait()
}

// stop SIGTERMs the daemon and requires the clean-drain exit.
func (d *crashDaemon) stop() error {
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	select {
	case <-d.scanDone:
	case <-time.After(90 * time.Second):
		d.kill()
		return fmt.Errorf("expectd did not exit within 90s of SIGTERM\n%s", d.joined())
	}
	if err := d.cmd.Wait(); err != nil {
		return fmt.Errorf("expectd exited dirty: %v\n%s", err, d.joined())
	}
	if !strings.Contains(d.joined(), "drained clean") {
		return fmt.Errorf("expectd exited 0 without the drained-clean report:\n%s", d.joined())
	}
	return nil
}

// crashDialogue is the battery's dialogue step — same shape as the
// workbench worker's, scored on the shared counters.
func crashDialogue(s *core.Session, tall *counters, kind string, n int) {
	tall.dialogues.Add(1)
	var (
		deadline time.Duration
		pattern  string
	)
	switch kind {
	case "match":
		pattern = fmt.Sprintf("m%d", n)
		s.Send(pattern + "\n")
		deadline = 30 * time.Second
	case "timeout":
		pattern = "pattern-that-never-arrives"
		deadline = 2 * time.Millisecond
	case "eof":
		s.Send("quit\n")
		pattern = "pattern-that-never-arrives"
		deadline = 30 * time.Second
	}
	res, err := s.ExpectTimeout(deadline,
		core.Exact("echo:"+pattern+"\n"), core.TimeoutCase(), core.EOFCase())
	switch {
	case err != nil:
		tall.errors.Add(1)
	case res.Eof:
		tall.eofs.Add(1)
	case res.TimedOut:
		tall.timeouts.Add(1)
	default:
		tall.matches.Add(1)
	}
}

// TestCrashRecoverySoak is ISSUE 7's crash-mid-soak acceptance run:
// ≥2k socket sessions checkpoint at a seeded point, the daemon is
// SIGKILLed, and every session restores from its checkpoint file against
// a fresh daemon with zero lost dialogues — matches+timeouts+EOFs must
// equal dialogues exactly, errors must be zero. A 16-session cohort
// crashes with an expect op parked mid-flight; the checkpoint carries the
// pending op and the restored session resumes it (ResumeExpect) to a
// real match on the new connection, which is the "zero lost" heart: a
// dialogue that straddles the crash still scores exactly once.
func TestCrashRecoverySoak(t *testing.T) {
	if testing.Short() {
		t.Skip("crash battery: skipped under -short")
	}
	defer testutil.LeakCheck(t, 25, 20*time.Second)()

	const (
		sessions = 2048
		cohort   = 16 // sessions that crash with a parked expect
		shards   = 8
		seed     = 1990
	)

	// The seeded point: every worker's pre-crash and post-restore dialogue
	// schedule is drawn from one seeded stream, so the crash lands at the
	// same dialogue boundary on every run.
	rng := rand.New(rand.NewSource(seed))
	pre := make([]int, sessions)
	post := make([]int, sessions)
	kinds := make([][]string, sessions)
	var expected int64
	for i := range pre {
		pre[i] = 1 + rng.Intn(2)
		post[i] = 1 + rng.Intn(2)
		for n := 0; n < pre[i]+post[i]; n++ {
			k := "match"
			if rng.Intn(8) == 0 {
				k = "timeout"
			}
			kinds[i] = append(kinds[i], k)
		}
		if i%37 == 0 {
			kinds[i][len(kinds[i])-1] = "eof" // a few sessions end on a clean EOF
		}
		expected += int64(pre[i] + post[i])
		if i < cohort {
			expected++ // the crash-straddling resume dialogue
		}
	}

	d := startDaemon(t, "-serve", "echo", "-grace", "60s")
	echoAddr := d.addrs["echo"]
	if echoAddr == "" {
		t.Fatalf("daemon did not advertise echo: %v", d.addrs)
	}

	sc := core.NewScheduler(core.SchedulerOptions{Shards: shards})
	prof := metrics.NewProfiler()
	tall := &counters{}
	live := make([]*core.Session, sessions)

	// Phase 1: spawn everything over sockets and run the pre-crash slice
	// of each schedule; the cohort then parks a long expect that will be
	// mid-flight when the daemon dies.
	var wg sync.WaitGroup
	spawnErr := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := &core.Config{Sched: sc, SID: int32(i + 1), Prof: prof}
			s, err := core.SpawnNetwork(cfg, fmt.Sprintf("crash-%d", i), echoAddr)
			if err != nil {
				spawnErr <- fmt.Errorf("spawn %d: %w", i, err)
				return
			}
			live[i] = s
			for n := 0; n < pre[i]; n++ {
				crashDialogue(s, tall, kinds[i][n], n)
			}
			if i < cohort {
				// The dialogue is scored here, once; the in-flight op's own
				// outcome is discarded (it dies with the daemon) and the
				// checkpointed copy finishes it after restore.
				tall.dialogues.Add(1)
				go s.ExpectTimeout(10*time.Minute,
					core.Exact(fmt.Sprintf("echo:resume-%d\n", i)), core.EOFCase())
			}
		}(i)
	}
	wg.Wait()
	close(spawnErr)
	for err := range spawnErr {
		t.Fatal(err)
	}

	// Wait until every cohort op is actually parked on its shard loop —
	// the loop-synchronized checkpoint is the only honest witness.
	for i := 0; i < cohort; i++ {
		deadline := time.Now().Add(10 * time.Second)
		for {
			cp, err := sc.CheckpointSession(live[i])
			if err != nil {
				t.Fatalf("checkpoint poll %d: %v", i, err)
			}
			if len(cp.Pending) > 0 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("session %d never parked its resume expect", i)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// Checkpoint all 2k sessions to durable files — what a production
	// supervisor would flush before restarting anything.
	ckptDir := t.TempDir()
	ckptFile := func(i int) string { return filepath.Join(ckptDir, fmt.Sprintf("sess-%04d.json", i)) }
	for i, s := range live {
		cp, err := sc.CheckpointSession(s)
		if err != nil {
			t.Fatalf("checkpoint %d: %v", i, err)
		}
		if i < cohort && len(cp.Pending) != 1 {
			t.Fatalf("session %d checkpoint carries %d pending ops, want 1", i, len(cp.Pending))
		}
		if err := os.WriteFile(ckptFile(i), cp.Marshal(), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// The crash: SIGKILL, mid-soak, cohort expects still in flight.
	d.kill()

	// The dead daemon's connections come apart; the old incarnations are
	// garbage now. Their in-flight ops resolve as EOFs nobody reads.
	for _, s := range live {
		s.Close()
		s.WaitPumpDrained()
	}
	sc.Stop()

	// Recovery: fresh daemon, fresh connections, sessions rebuilt from
	// their checkpoint files.
	d2 := startDaemon(t, "-serve", "echo", "-grace", "60s")
	echoAddr2 := d2.addrs["echo"]

	restoreErr := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b, err := os.ReadFile(ckptFile(i))
			if err != nil {
				restoreErr <- err
				return
			}
			cp, err := core.ParseSessionCheckpoint(b)
			if err != nil {
				restoreErr <- fmt.Errorf("parse checkpoint %d: %w", i, err)
				return
			}
			conn, err := net.Dial("tcp", echoAddr2)
			if err != nil {
				restoreErr <- fmt.Errorf("redial %d: %w", i, err)
				return
			}
			s, err := core.RestoreSession(&core.Config{Prof: prof}, cp, conn)
			if err != nil {
				conn.Close()
				restoreErr <- fmt.Errorf("restore %d: %w", i, err)
				return
			}
			defer func() {
				s.Close()
				s.WaitPumpDrained()
			}()
			if got := s.TotalSeen(); got != cp.TotalSeen {
				restoreErr <- fmt.Errorf("session %d: restored TotalSeen %d, checkpoint says %d", i, got, cp.TotalSeen)
				return
			}
			if i < cohort {
				// Resume the op that was parked when the daemon died, then
				// provoke the reply it was waiting for.
				res := make(chan *core.MatchResult, 1)
				resErr := make(chan error, 1)
				go func() {
					r, err := s.ResumeExpect(cp.Pending[0])
					if err != nil {
						resErr <- err
						return
					}
					res <- r
				}()
				s.Send(fmt.Sprintf("resume-%d\n", i))
				select {
				case r := <-res:
					if r.Eof || r.TimedOut {
						restoreErr <- fmt.Errorf("session %d: resumed expect resolved %+v, want match", i, r)
						return
					}
					tall.matches.Add(1)
				case err := <-resErr:
					restoreErr <- fmt.Errorf("session %d: resumed expect: %w", i, err)
					return
				case <-time.After(30 * time.Second):
					restoreErr <- fmt.Errorf("session %d: resumed expect never resolved", i)
					return
				}
			}
			for n := 0; n < post[i]; n++ {
				crashDialogue(s, tall, kinds[i][pre[i]+n], pre[i]+n)
			}
		}(i)
	}
	wg.Wait()
	close(restoreErr)
	for err := range restoreErr {
		t.Error(err)
	}
	if t.Failed() {
		d2.kill()
		t.FailNow()
	}

	// The surviving daemon must still drain clean: every restored session
	// hung up tidily.
	if err := d2.stop(); err != nil {
		t.Error(err)
	}

	dialogues := tall.dialogues.Load()
	matches, timeouts := tall.matches.Load(), tall.timeouts.Load()
	eofs, errs := tall.eofs.Load(), tall.errors.Load()
	t.Logf("crash battery: %d dialogues across the crash: %d matches %d timeouts %d EOFs %d errors",
		dialogues, matches, timeouts, eofs, errs)
	if errs != 0 {
		t.Errorf("%d dialogue errors across the crash", errs)
	}
	if dialogues != expected {
		t.Errorf("lost dialogues: scheduled %d, ran %d", expected, dialogues)
	}
	if got := matches + timeouts + eofs; got != dialogues {
		t.Errorf("conservation broken across the crash: %d+%d+%d = %d, want %d",
			matches, timeouts, eofs, got, dialogues)
	}
}

// TestMuxCrashRecoverySoak is the gateway arm of the crash battery: 2048
// sessions ride a handful of pooled framed connections into one expectd
// -mux gateway, checkpoint at a seeded point, and the gateway is
// SIGKILLed — which tears down every muxed connection at once, the
// failure mode the one-socket-per-session battery above cannot produce
// (there a dead daemon costs each session only its own socket; here one
// lost TCP connection strands thousands of streams). Every session then
// restores from its checkpoint file against a fresh gateway over a fresh
// pool, a 16-session cohort resuming expects that were parked when the
// lights went out. The conservation law must hold with zero lost
// dialogues, and the client side must never have held more than the
// pool's connection bound in sockets.
func TestMuxCrashRecoverySoak(t *testing.T) {
	if testing.Short() {
		t.Skip("crash battery: skipped under -short")
	}
	defer testutil.LeakCheck(t, 25, 20*time.Second)()

	const (
		sessions = 2048
		cohort   = 16 // sessions that crash with a parked expect
		shards   = 8
		maxConns = 4 // 2048 sessions over at most 4 sockets
		seed     = 2611
	)

	rng := rand.New(rand.NewSource(seed))
	pre := make([]int, sessions)
	post := make([]int, sessions)
	kinds := make([][]string, sessions)
	var expected int64
	for i := range pre {
		pre[i] = 1 + rng.Intn(2)
		post[i] = 1 + rng.Intn(2)
		for n := 0; n < pre[i]+post[i]; n++ {
			k := "match"
			if rng.Intn(8) == 0 {
				k = "timeout"
			}
			kinds[i] = append(kinds[i], k)
		}
		if i%37 == 0 {
			kinds[i][len(kinds[i])-1] = "eof"
		}
		expected += int64(pre[i] + post[i])
		if i < cohort {
			expected++ // the crash-straddling resume dialogue
		}
	}

	d := startDaemon(t, "-serve", "echo", "-mux", "127.0.0.1:0", "-grace", "60s")
	muxAddr := d.addrs["mux"]
	if muxAddr == "" {
		t.Fatalf("daemon did not advertise its gateway: %v", d.addrs)
	}

	sc := core.NewScheduler(core.SchedulerOptions{Shards: shards})
	prof := metrics.NewProfiler()
	pool := netx.NewMuxPool(netx.MuxOptions{MaxConns: maxConns})
	tall := &counters{}
	live := make([]*core.Session, sessions)

	// Phase 1: open all 2048 streams through the pool and run the
	// pre-crash slice of each schedule; the cohort then parks a long
	// expect that will be mid-flight when the gateway dies.
	var wg sync.WaitGroup
	spawnErr := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := &core.Config{Sched: sc, SID: int32(i + 1), Prof: prof, Mux: pool}
			s, err := core.SpawnMux(cfg, fmt.Sprintf("muxcrash-%d", i), muxAddr, "echo")
			if err != nil {
				spawnErr <- fmt.Errorf("open stream %d: %w", i, err)
				return
			}
			live[i] = s
			for n := 0; n < pre[i]; n++ {
				crashDialogue(s, tall, kinds[i][n], n)
			}
			if i < cohort {
				tall.dialogues.Add(1)
				go s.ExpectTimeout(10*time.Minute,
					core.Exact(fmt.Sprintf("echo:resume-%d\n", i)), core.EOFCase())
			}
		}(i)
	}
	wg.Wait()
	close(spawnErr)
	for err := range spawnErr {
		t.Fatal(err)
	}
	if st := pool.Stats(); st.Conns > maxConns {
		t.Fatalf("pool used %d connections for %d sessions, bound is %d", st.Conns, sessions, maxConns)
	} else {
		t.Logf("mux crash battery: %d sessions over %d pooled connections", sessions, st.Conns)
	}

	// Wait until every cohort op is actually parked on its shard loop.
	for i := 0; i < cohort; i++ {
		deadline := time.Now().Add(10 * time.Second)
		for {
			cp, err := sc.CheckpointSession(live[i])
			if err != nil {
				t.Fatalf("checkpoint poll %d: %v", i, err)
			}
			if len(cp.Pending) > 0 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("session %d never parked its resume expect", i)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	ckptDir := t.TempDir()
	ckptFile := func(i int) string { return filepath.Join(ckptDir, fmt.Sprintf("sess-%04d.json", i)) }
	for i, s := range live {
		cp, err := sc.CheckpointSession(s)
		if err != nil {
			t.Fatalf("checkpoint %d: %v", i, err)
		}
		if i < cohort && len(cp.Pending) != 1 {
			t.Fatalf("session %d checkpoint carries %d pending ops, want 1", i, len(cp.Pending))
		}
		if err := os.WriteFile(ckptFile(i), cp.Marshal(), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// The crash: SIGKILL. Four TCP connections die and take all 2048
	// streams with them — every stream finishes with EOF at once.
	d.kill()

	for _, s := range live {
		s.Close()
		s.WaitPumpDrained()
	}
	pool.Close()
	sc.Stop()

	// Recovery: fresh gateway, fresh pool, sessions rebuilt from their
	// checkpoint files with a fresh stream as the live transport.
	d2 := startDaemon(t, "-serve", "echo", "-mux", "127.0.0.1:0", "-grace", "60s")
	muxAddr2 := d2.addrs["mux"]
	pool2 := netx.NewMuxPool(netx.MuxOptions{MaxConns: maxConns})
	defer pool2.Close()

	restoreErr := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b, err := os.ReadFile(ckptFile(i))
			if err != nil {
				restoreErr <- err
				return
			}
			cp, err := core.ParseSessionCheckpoint(b)
			if err != nil {
				restoreErr <- fmt.Errorf("parse checkpoint %d: %w", i, err)
				return
			}
			st, err := pool2.Open(muxAddr2, "echo")
			if err != nil {
				restoreErr <- fmt.Errorf("reopen stream %d: %w", i, err)
				return
			}
			s, err := core.RestoreSession(&core.Config{Prof: prof}, cp, st)
			if err != nil {
				st.Close()
				restoreErr <- fmt.Errorf("restore %d: %w", i, err)
				return
			}
			defer func() {
				s.Close()
				s.WaitPumpDrained()
			}()
			if got := s.TotalSeen(); got != cp.TotalSeen {
				restoreErr <- fmt.Errorf("session %d: restored TotalSeen %d, checkpoint says %d", i, got, cp.TotalSeen)
				return
			}
			if i < cohort {
				res := make(chan *core.MatchResult, 1)
				resErr := make(chan error, 1)
				go func() {
					r, err := s.ResumeExpect(cp.Pending[0])
					if err != nil {
						resErr <- err
						return
					}
					res <- r
				}()
				s.Send(fmt.Sprintf("resume-%d\n", i))
				select {
				case r := <-res:
					if r.Eof || r.TimedOut {
						restoreErr <- fmt.Errorf("session %d: resumed expect resolved %+v, want match", i, r)
						return
					}
					tall.matches.Add(1)
				case err := <-resErr:
					restoreErr <- fmt.Errorf("session %d: resumed expect: %w", i, err)
					return
				case <-time.After(30 * time.Second):
					restoreErr <- fmt.Errorf("session %d: resumed expect never resolved", i)
					return
				}
			}
			for n := 0; n < post[i]; n++ {
				crashDialogue(s, tall, kinds[i][pre[i]+n], pre[i]+n)
			}
		}(i)
	}
	wg.Wait()
	close(restoreErr)
	for err := range restoreErr {
		t.Error(err)
	}
	if t.Failed() {
		d2.kill()
		t.FailNow()
	}

	// The surviving gateway must drain clean: every restored stream hung
	// up tidily, so no session was cut.
	if err := d2.stop(); err != nil {
		t.Error(err)
	}

	dialogues := tall.dialogues.Load()
	matches, timeouts := tall.matches.Load(), tall.timeouts.Load()
	eofs, errs := tall.eofs.Load(), tall.errors.Load()
	t.Logf("mux crash battery: %d dialogues across the crash: %d matches %d timeouts %d EOFs %d errors",
		dialogues, matches, timeouts, eofs, errs)
	if errs != 0 {
		t.Errorf("%d dialogue errors across the crash", errs)
	}
	if dialogues != expected {
		t.Errorf("lost dialogues: scheduled %d, ran %d", expected, dialogues)
	}
	if got := matches + timeouts + eofs; got != dialogues {
		t.Errorf("conservation broken across the crash: %d+%d+%d = %d, want %d",
			matches, timeouts, eofs, got, dialogues)
	}
}

// TestExpectdCheckpointRestore exercises the daemon-side hook end to end:
// a drive script parks in expect, SIGUSR1 snapshots the engine (globals +
// the parked op) to the checkpoint file, the daemon is SIGKILLed, and a
// restarted daemon with -restore resumes the script's recorded progress.
func TestExpectdCheckpointRestore(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and drives an expectd subprocess: skipped under -short")
	}
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "expectd.ckpt")
	script1 := filepath.Join(dir, "robot.exp")
	script2 := filepath.Join(dir, "resume.exp")
	if err := os.WriteFile(script1, []byte(`set progress 7
spawn echo
send warm\n
expect {*echo:warm*} {send_user "driver: warmed\n"} timeout {exit 3}
set timeout 3600
send_user "driver: parked\n"
expect {*release-me*} {}
`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(script2, []byte(`send_user "resumed progress=$progress\n"
`), 0o644); err != nil {
		t.Fatal(err)
	}

	d := startDaemon(t, "-serve", "echo", "-drive", script1, "-checkpoint", ckpt)
	if !d.waitLine("driver: parked", 20*time.Second) {
		d.kill()
		t.Fatalf("drive script never parked:\n%s", d.joined())
	}

	// SIGUSR1 until the checkpoint shows the parked op: "parked" printed
	// just before the expect call, so the first signal can land a hair
	// early and record no pending op yet.
	var ec *core.EngineCheckpoint
	deadline := time.Now().Add(15 * time.Second)
	for {
		if err := d.cmd.Process.Signal(syscall.SIGUSR1); err != nil {
			d.kill()
			t.Fatal(err)
		}
		time.Sleep(100 * time.Millisecond)
		if b, err := os.ReadFile(ckpt); err == nil {
			parsed, err := core.ParseEngineCheckpoint(b)
			if err != nil {
				d.kill()
				t.Fatalf("checkpoint file unparseable: %v", err)
			}
			if len(parsed.Sessions) == 1 && len(parsed.Sessions[0].Session.Pending) > 0 {
				ec = parsed
				break
			}
		}
		if time.Now().After(deadline) {
			d.kill()
			t.Fatalf("checkpoint never captured the parked expect:\n%s", d.joined())
		}
	}
	if !d.waitLine("expectd: checkpointed 1 sessions to", 5*time.Second) {
		d.kill()
		t.Fatalf("daemon never reported the checkpoint:\n%s", d.joined())
	}
	if got := ec.Globals["progress"].Value; got != "7" {
		t.Errorf("checkpoint progress global = %q, want 7", got)
	}
	op := ec.Sessions[0].Session.Pending[0]
	var sawPattern bool
	for _, c := range op.Cases {
		if strings.Contains(c.Pattern, "release-me") {
			sawPattern = true
		}
	}
	if !sawPattern {
		t.Errorf("pending op lost its pattern: %+v", op)
	}
	if op.RemainingNS <= 0 {
		t.Errorf("pending op lost its deadline budget: %d", op.RemainingNS)
	}

	// Crash and resume from the recorded state.
	d.kill()
	d2 := startDaemon(t, "-serve", "echo", "-drive", script2, "-restore", ckpt)
	if !d2.waitLine("expectd: restored", 10*time.Second) {
		d2.kill()
		t.Fatalf("restarted daemon never reported the restore:\n%s", d2.joined())
	}
	if !d2.waitLine("resumed progress=7", 20*time.Second) {
		d2.kill()
		t.Fatalf("resumed script did not see the restored global:\n%s", d2.joined())
	}
	if err := d2.stop(); err != nil {
		t.Error(err)
	}
}
