package load

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/faultify"
	"repro/internal/metrics"
	"repro/internal/netx"
	"repro/internal/proc"
	"repro/internal/trace"
)

// NetAddrs points the workbench at loopback servers instead of the
// in-process virtual programs: workers dial these addresses and drive
// the identical dialogue mix over real sockets. Flaky workers dial Echo
// with a client-side faultify cut, so the fault surface is unchanged.
type NetAddrs struct {
	Echo   string
	Slow   string
	Bursty string
}

// ServeLoopback starts the three talker programs behind loopback TCP
// servers sized for an in-process network-mode run. The returned stop
// drains them (netx.Server.Shutdown semantics) and reports whether every
// server closed clean.
func ServeLoopback(slowGap time.Duration, burstLines int) (*NetAddrs, func(grace time.Duration) bool, error) {
	if slowGap <= 0 {
		slowGap = 100 * time.Microsecond
	}
	if burstLines <= 0 {
		burstLines = 8
	}
	progs := []struct {
		name string
		prog proc.Program
	}{
		{"echo", EchoServer()},
		{"slow", SlowTalker(slowGap)},
		{"bursty", BurstyLogger(burstLines)},
	}
	var servers []*netx.Server
	addrs := make([]string, len(progs))
	for i, p := range progs {
		srv, err := netx.NewServer("127.0.0.1:0", p.prog)
		if err != nil {
			for _, s := range servers {
				s.Shutdown(0)
			}
			return nil, nil, fmt.Errorf("load: serve %s: %w", p.name, err)
		}
		servers = append(servers, srv)
		addrs[i] = srv.Addr()
	}
	stop := func(grace time.Duration) bool {
		clean := true
		for _, s := range servers {
			if !s.Shutdown(grace) {
				clean = false
			}
		}
		return clean
	}
	return &NetAddrs{Echo: addrs[0], Slow: addrs[1], Bursty: addrs[2]}, stop, nil
}

// ServeMuxLoopback stands up one in-process session gateway serving the
// three talker programs by name (echo, slow, bursty) for a gateway-mode
// workbench run — the hermetic stand-in for an expectd -mux process.
// Shut it down with (*netx.MuxServer).Shutdown.
func ServeMuxLoopback(slowGap time.Duration, burstLines int, opt netx.MuxServerOptions) (*netx.MuxServer, error) {
	if slowGap <= 0 {
		slowGap = 100 * time.Microsecond
	}
	if burstLines <= 0 {
		burstLines = 8
	}
	return netx.NewMuxServer("127.0.0.1:0", map[string]proc.Program{
		"echo":   EchoServer(),
		"slow":   SlowTalker(slowGap),
		"bursty": BurstyLogger(burstLines),
	}, opt)
}

// Mix weighs the dialogue kinds the seeded driver deals out. The zero
// value means the default mix (mostly matches, a sprinkling of the
// other three).
type Mix struct {
	Match    int // send a line, expect its marker
	Timeout  int // expect a pattern that never comes, short deadline
	EOF      int // tell the child to quit, expect EOF, respawn
	Overflow int // blob past match_max, expect the tail marker
}

func (m Mix) total() int { return m.Match + m.Timeout + m.EOF + m.Overflow }

// Config describes one workbench run. The zero value of most fields
// picks a sensible default; Sessions is required.
type Config struct {
	// Sessions is K: concurrent sessions, each driven by one dialogue
	// worker. Programs are dealt round-robin: echo server, slow talker,
	// bursty logger, flaky child (echo behind a faultify cut).
	Sessions int
	// Dialogues is the per-session dialogue count. Ignored when Duration
	// is set; defaults to 10.
	Dialogues int
	// Duration switches to soak mode: workers loop until the deadline
	// instead of counting dialogues.
	Duration time.Duration
	// Shards > 0 runs sessions under a sharded scheduler with that many
	// event loops; 0 keeps the per-session pump goroutine baseline.
	Shards int
	// Matcher selects rescan or incremental matching for every session.
	Matcher core.MatcherMode
	// Seed makes the dialogue mix reproducible. Same seed, same schedule
	// of kinds per worker, whatever the shard count.
	Seed uint64
	// Mix weighs the dialogue kinds; zero value = default mix.
	Mix Mix
	// Probe is the deadline for timeout dialogues (default 2ms) — short,
	// because every one of them rides it out in full.
	Probe time.Duration
	// MatchMax bounds the match buffer (0 = engine default). Overflow
	// dialogues blob past twice this.
	MatchMax int
	// CutAfterBytes is the flaky child's faultify budget: its transport
	// delivers this many bytes per incarnation, then EOFs (default 1024).
	CutAfterBytes int64
	// Net, when non-nil, switches the workbench to network mode: workers
	// dial these loopback servers (see ServeLoopback) instead of spawning
	// virtual programs in-process. The dialogue mix, seeds, and flaky-cut
	// schedule are identical; only the transport changes.
	Net *NetAddrs
	// MuxAddrs, when non-empty, switches the workbench to gateway mode:
	// workers open framed streams on these expectd -mux addresses through
	// one run-owned connection pool (core.SpawnMux) instead of dialing a
	// socket per session. Addresses are dealt round-robin by worker id, so
	// an E23 run spreads its sessions across every gateway process. The
	// dialogue mix, seeds, and flaky-cut schedule are identical to the
	// other transports. Takes precedence over Net.
	MuxAddrs []string
	// MuxConns bounds pooled connections per gateway address (0 = the
	// netx default of 8); the E23 acceptance bound is ≤64 per process.
	MuxConns int
	// MuxStreamsPerConn bounds concurrent streams per pooled connection
	// (0 = the netx default of 2048).
	MuxStreamsPerConn int
	// LegacyNet pins network sessions to the copying slab ingest path —
	// reader goroutine per connection, no segment pool, no readiness
	// loop. It is the frozen referee the E19 zero-copy comparison
	// measures against.
	LegacyNet bool
	// NoWrap drops the flaky worker's faultify transport wrapper, so
	// every session stays on the raw event-capable transport. E19 uses
	// it to isolate the ingest architecture: a wrapped stream hides the
	// TryRead/TryReadOwned capability and deliberately falls back to a
	// feeder goroutine, which would smear the O(shards)-vs-O(conns)
	// goroutine comparison with a constant it isn't measuring.
	NoWrap bool
	// Prof, when non-nil, receives the engine's phase timings and the
	// wakeup-to-match histogram; nil allocates a private one.
	Prof *metrics.Profiler
	// Rec, when non-nil, supplies per-shard flight recorders (only
	// meaningful with Shards > 0).
	Rec func(shard int) *trace.Recorder
	// Registry, when non-nil, gets the run's telemetry registered into it
	// before the dialogue phase starts: driver-side dialogue counters and
	// latency, ingest accounting, profiler families, and the scheduler's
	// per-shard gauges. E21 serves it from an admin listener and scrapes
	// it at 1 Hz while the soak runs.
	Registry *metrics.Registry
	// OnScheduler, when non-nil, observes the run's scheduler right after
	// creation (called with nil for the pump baseline). The telemetry
	// tests use it to point /debug/sessions at a live run.
	OnScheduler func(*core.Scheduler)
}

func (c Config) withDefaults() Config {
	if c.Dialogues <= 0 && c.Duration <= 0 {
		c.Dialogues = 10
	}
	if c.Mix.total() <= 0 {
		c.Mix = Mix{Match: 12, Timeout: 2, EOF: 1, Overflow: 1}
	}
	if c.Probe <= 0 {
		c.Probe = 2 * time.Millisecond
	}
	if c.CutAfterBytes <= 0 {
		c.CutAfterBytes = 1024
	}
	if c.Prof == nil {
		c.Prof = metrics.NewProfiler()
	}
	return c
}

// Result is the workbench report. Every dialogue started lands in
// exactly one of Matches, Timeouts, or EOFs (the conservation law the
// property test pins); Overflows counts dialogues that additionally
// forced the match buffer to forget, and Errors counts dialogues that
// failed outright (always zero on a healthy engine).
type Result struct {
	Sessions  int
	Shards    int
	Dialogues int64
	Matches   int64
	Timeouts  int64
	EOFs      int64
	Overflows int64
	Errors    int64

	Elapsed         time.Duration
	DialoguesPerSec float64

	// QueueDepthPeak is the high-water mark of each shard's ingest queue
	// (nil for the pump baseline). Dropped counts events the scheduler
	// had to discard — zero on any clean run.
	QueueDepthPeak []int
	Dropped        uint64

	// Ingest accounting (network mode only; zero otherwise): what the
	// socket→match-buffer data path did to every payload byte, and the
	// per-dialogue quotients the E19 memguard gate compares across the
	// legacy and zero-copy configurations.
	BytesCopied       int64
	BytesHandedOff    int64
	IngestAllocs      int64
	SegmentLeases     int64
	SegmentReuses     int64
	BytesCopiedPerDlg float64
	IngestAllocsPer1k float64 // ingest allocations per 1000 dialogues

	// GoroutinePeak is the highest runtime.NumGoroutine() sampled during
	// the dialogue phase — the O(conns) vs O(shards) ingest-goroutine
	// evidence at 10k sessions.
	GoroutinePeak int

	// Gateway-mode reporting (zero otherwise): pooled TCP connections
	// live at the end of the dialogue phase — the "K sessions over how
	// many sockets" number E23's ≤64-per-process bound reads — and
	// streams opened over the whole run (respawns included).
	MuxConns         int
	MuxStreamsOpened uint64

	// Wakeup is the engine's wakeup-to-match latency distribution;
	// Dialogue is end-to-end per-dialogue latency as the driver saw it.
	Wakeup   metrics.HistSummary
	Dialogue metrics.HistSummary
}

// counters is the workers' shared scoreboard.
type counters struct {
	dialogues, matches, timeouts, eofs, overflows, errors atomic.Int64
}

// worker drives one session through its dialogue schedule, respawning
// after every EOF (deliberate or flaky).
type worker struct {
	id   int
	cfg  *Config
	sc   *core.Scheduler
	rng  *rand.Rand
	s    *core.Session
	gen  int // respawn generation, keeps flaky seeds distinct
	tall *counters
	hist *metrics.Histogram

	// Network-mode ingest instrumentation, shared across the run: every
	// worker's sessions report into one scoreboard and lease from one
	// segment pool.
	ingest *metrics.IngestStats
	pool   *netx.SegmentPool
	// mux is the run-owned gateway connection pool (gateway mode only).
	mux *netx.MuxPool
}

// respawn replaces w.s with a fresh incarnation of the worker's program.
func (w *worker) respawn() error {
	if w.s != nil {
		w.s.Close()
		w.s.WaitPumpDrained()
	}
	w.gen++
	cfg := &core.Config{
		Matcher:  w.cfg.Matcher,
		MatchMax: w.cfg.MatchMax,
		Prof:     w.cfg.Prof,
		Sched:    w.sc,
		SID:      int32(w.id),
		Ingest:   w.ingest,
	}
	cfg.NetOptions.Legacy = w.cfg.LegacyNet
	cfg.NetOptions.Pool = w.pool
	var program proc.Program
	name, addr := "", ""
	switch w.id % 4 {
	case 0:
		name, program = "echo", EchoServer()
	case 1:
		name, program = "slow", SlowTalker(100*time.Microsecond)
	case 2:
		name, program = "bursty", BurstyLogger(8)
	case 3:
		name, program = "flaky", EchoServer()
		if !w.cfg.NoWrap {
			cut := faultify.Schedule{
				Seed:          w.cfg.Seed ^ uint64(w.id)<<20 ^ uint64(w.gen),
				CutAfterBytes: w.cfg.CutAfterBytes,
			}
			cfg.SpawnOptions.WrapTransport = faultify.Wrapper(cut, nil)
		}
	}
	if net := w.cfg.Net; net != nil && w.mux == nil {
		switch w.id % 4 {
		case 0:
			addr = net.Echo
		case 1:
			addr = net.Slow
		case 2:
			addr = net.Bursty
		case 3:
			addr = net.Echo // flaky = echo behind the client-side cut above
		}
	}
	label := fmt.Sprintf("%s-%d.%d", name, w.id, w.gen)
	var s *core.Session
	var err error
	if w.mux != nil {
		// Gateway mode: the stream is opened by program name on a pooled
		// framed connection (flaky = echo behind the client-side cut, same
		// as network mode).
		prog := name
		if prog == "flaky" {
			prog = "echo"
		}
		gw := w.cfg.MuxAddrs[w.id%len(w.cfg.MuxAddrs)]
		cfg.Mux = w.mux
		s, err = core.SpawnMux(cfg, label, gw, prog)
	} else if addr != "" {
		s, err = core.SpawnNetwork(cfg, label, addr)
	} else {
		s, err = core.SpawnProgram(cfg, label, program)
	}
	if err != nil {
		return err
	}
	w.s = s
	return nil
}

// dialogue runs one exchange and scores it. The cases always include
// timeout and EOF, so every outcome comes back as a result, not an
// error; errors mean the engine itself misbehaved.
func (w *worker) dialogue(n int64) {
	w.tall.dialogues.Add(1)
	kind := w.pickKind()
	start := time.Now()
	forgotBefore := w.s.Forgotten()

	var (
		deadline time.Duration
		pattern  string
	)
	switch kind {
	case "match":
		pattern = fmt.Sprintf("m%d", n)
		w.s.Send(pattern + "\n")
		deadline = 30 * time.Second
	case "timeout":
		pattern = "pattern-that-never-arrives"
		deadline = w.cfg.Probe
	case "eof":
		w.s.Send("quit\n")
		pattern = "pattern-that-never-arrives"
		deadline = 30 * time.Second
	case "overflow":
		max := w.cfg.MatchMax
		if max <= 0 {
			max = core.DefaultMatchMax
		}
		w.s.Send(fmt.Sprintf("blob %d\n", 2*max))
		pattern = "blob"
		deadline = 30 * time.Second
	}

	res, err := w.s.ExpectTimeout(deadline,
		core.Exact("echo:"+pattern+"\n"), core.TimeoutCase(), core.EOFCase())
	w.hist.Observe(time.Since(start))
	if err != nil {
		w.tall.errors.Add(1)
		w.respawn()
		return
	}
	switch {
	case res.Eof:
		w.tall.eofs.Add(1)
		w.respawn()
	case res.TimedOut:
		w.tall.timeouts.Add(1)
	default:
		w.tall.matches.Add(1)
	}
	if w.s.Forgotten() > forgotBefore {
		w.tall.overflows.Add(1)
	}
}

func (w *worker) pickKind() string {
	r := w.rng.Intn(w.cfg.Mix.total())
	if r -= w.cfg.Mix.Match; r < 0 {
		return "match"
	}
	if r -= w.cfg.Mix.Timeout; r < 0 {
		return "timeout"
	}
	if r -= w.cfg.Mix.EOF; r < 0 {
		return "eof"
	}
	return "overflow"
}

// Run executes one workbench configuration: spawn all K sessions (the
// barrier keeps spawn cost out of the dialogue clock), run the dialogue
// phase, tear everything down, and report.
func Run(cfg Config) (*Result, error) {
	if cfg.Sessions <= 0 {
		return nil, fmt.Errorf("load: Sessions must be positive, got %d", cfg.Sessions)
	}
	cfg = cfg.withDefaults()

	var sc *core.Scheduler
	if cfg.Shards > 0 {
		sc = core.NewScheduler(core.SchedulerOptions{Shards: cfg.Shards, Rec: cfg.Rec})
	}
	tall := &counters{}
	dialHist := metrics.NewHistogram()

	// One ingest scoreboard and one segment pool for the whole run, so
	// reuse crosses sessions and the per-dialogue quotients aggregate.
	var ingest *metrics.IngestStats
	var pool *netx.SegmentPool
	if cfg.Net != nil || len(cfg.MuxAddrs) > 0 {
		ingest = &metrics.IngestStats{}
		if !cfg.LegacyNet {
			pool = netx.NewSegmentPool(netx.Options{}.ReadChunk(), ingest)
		}
	}

	// Gateway mode shares one connection pool across every worker: that
	// is the architecture under test — K sessions over a bounded set of
	// framed sockets, not K sockets.
	var muxPool *netx.MuxPool
	if len(cfg.MuxAddrs) > 0 {
		muxPool = netx.NewMuxPool(netx.MuxOptions{
			MaxConns:          cfg.MuxConns,
			MaxStreamsPerConn: cfg.MuxStreamsPerConn,
			Stats:             ingest,
			Pool:              pool,
		})
		defer muxPool.Close()
	}

	if cfg.OnScheduler != nil {
		cfg.OnScheduler(sc)
	}
	if r := cfg.Registry; r != nil {
		gauge := func(name, help string, n *atomic.Int64) {
			r.Counter(name, help, func() float64 { return float64(n.Load()) })
		}
		gauge("load_dialogues_total", "Dialogues started by the workbench drivers.", &tall.dialogues)
		gauge("load_matches_total", "Dialogues resolved by a pattern match.", &tall.matches)
		gauge("load_timeouts_total", "Dialogues resolved by timeout.", &tall.timeouts)
		gauge("load_eofs_total", "Dialogues resolved by EOF.", &tall.eofs)
		gauge("load_errors_total", "Dialogues that failed outright (zero on a healthy engine).", &tall.errors)
		r.Histogram("load_dialogue_seconds", "End-to-end dialogue latency as the driver saw it.",
			func() []*metrics.Histogram { return []*metrics.Histogram{dialHist} })
		ingest.RegisterInto(r)
		cfg.Prof.RegisterInto(r)
		sc.RegisterMetrics(r)
	}

	workers := make([]*worker, cfg.Sessions)
	for i := range workers {
		workers[i] = &worker{
			id:     i,
			cfg:    &cfg,
			sc:     sc,
			rng:    rand.New(rand.NewSource(int64(cfg.Seed) + int64(i)*0x9e3779b9)),
			tall:   tall,
			hist:   dialHist,
			ingest: ingest,
			pool:   pool,
			mux:    muxPool,
		}
		if err := workers[i].respawn(); err != nil {
			return nil, fmt.Errorf("load: spawn session %d: %w", i, err)
		}
	}

	// Sample the goroutine count through the dialogue phase: the ingest
	// architecture shows up here as O(sessions) reader goroutines versus
	// O(shards) readiness loops.
	goroPeak := runtime.NumGoroutine()
	sampleStop := make(chan struct{})
	var sampleDone sync.WaitGroup
	sampleDone.Add(1)
	go func() {
		defer sampleDone.Done()
		tick := time.NewTicker(25 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				if n := runtime.NumGoroutine(); n > goroPeak {
					goroPeak = n
				}
			case <-sampleStop:
				return
			}
		}
	}()

	start := time.Now()
	var end time.Time
	if cfg.Duration > 0 {
		end = start.Add(cfg.Duration)
	}
	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			for n := int64(0); ; n++ {
				if end.IsZero() {
					if n >= int64(cfg.Dialogues) {
						return
					}
				} else if !time.Now().Before(end) {
					return
				}
				w.dialogue(n)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	var muxStats netx.MuxPoolStats
	if muxPool != nil {
		// Snapshot while sessions are still open: Conns is the live
		// socket count carrying all K sessions.
		muxStats = muxPool.Stats()
	}
	close(sampleStop)
	sampleDone.Wait()
	if n := runtime.NumGoroutine(); n > goroPeak {
		goroPeak = n
	}

	for _, w := range workers {
		w.s.Close()
		w.s.WaitPumpDrained()
	}

	res := &Result{
		Sessions:  cfg.Sessions,
		Shards:    cfg.Shards,
		Dialogues: tall.dialogues.Load(),
		Matches:   tall.matches.Load(),
		Timeouts:  tall.timeouts.Load(),
		EOFs:      tall.eofs.Load(),
		Overflows: tall.overflows.Load(),
		Errors:    tall.errors.Load(),
		Elapsed:   elapsed,
		Wakeup:    cfg.Prof.Hist(metrics.HistWakeupToMatch).Summary("wakeup_to_match"),
		Dialogue:  dialHist.Summary("dialogue"),
	}
	if elapsed > 0 {
		res.DialoguesPerSec = float64(res.Dialogues) / elapsed.Seconds()
	}
	res.GoroutinePeak = goroPeak
	if muxPool != nil {
		res.MuxConns = muxStats.Conns
		res.MuxStreamsOpened = muxStats.Opened
	}
	if ingest != nil {
		res.BytesCopied = ingest.BytesCopied()
		res.BytesHandedOff = ingest.BytesHandedOff()
		res.IngestAllocs = ingest.IngestAllocs()
		res.SegmentLeases = ingest.SegmentLeases()
		res.SegmentReuses = ingest.SegmentReuses()
		if res.Dialogues > 0 {
			res.BytesCopiedPerDlg = float64(res.BytesCopied) / float64(res.Dialogues)
			res.IngestAllocsPer1k = 1000 * float64(res.IngestAllocs) / float64(res.Dialogues)
		}
	}
	if sc != nil {
		sc.Stop()
		res.QueueDepthPeak = sc.PeakQueueDepths()
		res.Dropped = sc.Dropped()
	}
	return res, nil
}
