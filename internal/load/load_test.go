package load

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netx"
)

// TestDialogueConservation is the workbench's metamorphic property:
// however the sessions are scheduled — per-session pumps, 1, 2, or 8
// shards — and whichever matcher runs, every dialogue started resolves
// as exactly one of match, timeout, or EOF. A scheduler that loses a
// wakeup strands a dialogue (the run hangs); one that double-delivers
// breaks the sum.
func TestDialogueConservation(t *testing.T) {
	matchers := map[string]core.MatcherMode{
		"rescan":      core.MatcherRescan,
		"incremental": core.MatcherIncremental,
	}
	for name, m := range matchers {
		for _, shards := range []int{0, 1, 2, 8} {
			res, err := Run(Config{
				Sessions:  12,
				Dialogues: 15,
				Shards:    shards,
				Matcher:   m,
				Seed:      42,
			})
			if err != nil {
				t.Fatalf("%s/shards=%d: %v", name, shards, err)
			}
			if res.Errors != 0 {
				t.Errorf("%s/shards=%d: %d dialogue errors", name, shards, res.Errors)
			}
			if got := res.Matches + res.Timeouts + res.EOFs; got != res.Dialogues {
				t.Errorf("%s/shards=%d: matches %d + timeouts %d + EOFs %d = %d, want %d dialogues",
					name, shards, res.Matches, res.Timeouts, res.EOFs, got, res.Dialogues)
			}
			if res.Dialogues != 12*15 {
				t.Errorf("%s/shards=%d: ran %d dialogues, want %d", name, shards, res.Dialogues, 12*15)
			}
			if res.Dropped != 0 {
				t.Errorf("%s/shards=%d: scheduler dropped %d events", name, shards, res.Dropped)
			}
			// The seeded mix must actually exercise every path.
			if res.Matches == 0 || res.Timeouts == 0 || res.EOFs == 0 || res.Overflows == 0 {
				t.Errorf("%s/shards=%d: degenerate mix: %+v", name, shards, res)
			}
		}
	}
}

// TestSeededMixIsDeterministic pins the driver side of determinism: the
// schedule of dialogue kinds is a pure function of the seed, so two
// runs with the same seed start the same dialogues (outcome totals can
// differ only through scheduling of the flaky cut, which the small
// no-flaky config below rules out).
func TestSeededMixIsDeterministic(t *testing.T) {
	run := func() *Result {
		res, err := Run(Config{
			Sessions:  3, // ids 0..2: echo, slow, bursty — no flaky worker
			Dialogues: 20,
			Shards:    2,
			Seed:      7,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Matches != b.Matches || a.Timeouts != b.Timeouts || a.EOFs != b.EOFs || a.Overflows != b.Overflows {
		t.Errorf("same seed, different outcomes:\n  %+v\n  %+v", a, b)
	}
}

// TestWorkbenchReportsLatency makes sure the histograms the E17 sweep
// depends on are actually fed.
func TestWorkbenchReportsLatency(t *testing.T) {
	res, err := Run(Config{Sessions: 4, Dialogues: 10, Shards: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dialogue.Count != res.Dialogues {
		t.Errorf("dialogue histogram saw %d, want %d", res.Dialogue.Count, res.Dialogues)
	}
	if res.Wakeup.Count == 0 {
		t.Error("wakeup-to-match histogram is empty")
	}
	if res.DialoguesPerSec <= 0 {
		t.Errorf("DialoguesPerSec = %v", res.DialoguesPerSec)
	}
	if len(res.QueueDepthPeak) != 2 {
		t.Errorf("QueueDepthPeak = %v, want one entry per shard", res.QueueDepthPeak)
	}
	if res.Elapsed <= 0 {
		t.Error("Elapsed not measured")
	}
}

// TestNetworkModeConservation reruns the conservation property with the
// workers dialing loopback servers instead of spawning virtual programs:
// same mix, same seeds, same flaky cut — the transport must not be an
// observable. Sharded cells additionally exercise the socket doorbell
// (netx sessions are event-capable, so shards own them with no feeder).
func TestNetworkModeConservation(t *testing.T) {
	addrs, stop, err := ServeLoopback(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if !stop(10 * time.Second) {
			t.Error("loopback servers did not drain clean")
		}
	}()
	for _, shards := range []int{0, 4} {
		res, err := Run(Config{
			Sessions:  12,
			Dialogues: 15,
			Shards:    shards,
			Seed:      42,
			Net:       addrs,
		})
		if err != nil {
			t.Fatalf("net/shards=%d: %v", shards, err)
		}
		if res.Errors != 0 {
			t.Errorf("net/shards=%d: %d dialogue errors", shards, res.Errors)
		}
		if got := res.Matches + res.Timeouts + res.EOFs; got != res.Dialogues {
			t.Errorf("net/shards=%d: matches %d + timeouts %d + EOFs %d = %d, want %d dialogues",
				shards, res.Matches, res.Timeouts, res.EOFs, got, res.Dialogues)
		}
		if res.Dropped != 0 {
			t.Errorf("net/shards=%d: scheduler dropped %d events", shards, res.Dropped)
		}
		if res.Matches == 0 || res.Timeouts == 0 || res.EOFs == 0 || res.Overflows == 0 {
			t.Errorf("net/shards=%d: degenerate mix: %+v", shards, res)
		}
	}
}

// TestMuxModeConservation reruns the conservation property in gateway
// mode: every worker's session is a framed stream on a shared connection
// pool to one in-process mux gateway — same mix, same seeds, same flaky
// cut. Beyond the conservation law, this pins the architecture under
// test: all K sessions ride a handful of pooled sockets (MuxConns ≤ the
// configured bound), and the gateway drains clean afterwards.
func TestMuxModeConservation(t *testing.T) {
	gw, err := ServeMuxLoopback(0, 0, netx.MuxServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if !gw.Shutdown(10 * time.Second) {
			t.Error("gateway did not drain clean")
		}
	}()
	for _, shards := range []int{0, 4} {
		res, err := Run(Config{
			Sessions:  12,
			Dialogues: 15,
			Shards:    shards,
			Seed:      42,
			MuxAddrs:  []string{gw.Addr()},
			MuxConns:  2,
		})
		if err != nil {
			t.Fatalf("mux/shards=%d: %v", shards, err)
		}
		if res.Errors != 0 {
			t.Errorf("mux/shards=%d: %d dialogue errors", shards, res.Errors)
		}
		if got := res.Matches + res.Timeouts + res.EOFs; got != res.Dialogues {
			t.Errorf("mux/shards=%d: matches %d + timeouts %d + EOFs %d = %d, want %d dialogues",
				shards, res.Matches, res.Timeouts, res.EOFs, got, res.Dialogues)
		}
		if res.Dropped != 0 {
			t.Errorf("mux/shards=%d: scheduler dropped %d events", shards, res.Dropped)
		}
		if res.Matches == 0 || res.Timeouts == 0 || res.EOFs == 0 || res.Overflows == 0 {
			t.Errorf("mux/shards=%d: degenerate mix: %+v", shards, res)
		}
		if res.MuxConns < 1 || res.MuxConns > 2 {
			t.Errorf("mux/shards=%d: %d pooled connections, want 1..2", shards, res.MuxConns)
		}
		if res.MuxStreamsOpened < uint64(res.Sessions) {
			t.Errorf("mux/shards=%d: only %d streams opened for %d sessions",
				shards, res.MuxStreamsOpened, res.Sessions)
		}
	}
}

// TestSoakModeStopsOnDeadline checks Duration mode terminates without a
// dialogue budget.
func TestSoakModeStopsOnDeadline(t *testing.T) {
	start := time.Now()
	res, err := Run(Config{Sessions: 4, Duration: 200 * time.Millisecond, Shards: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dialogues == 0 {
		t.Error("soak mode ran no dialogues")
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("200ms soak took %v", elapsed)
	}
}
