// Package load is the deterministic load/soak workbench: it spawns K
// in-process virtual programs and drives M concurrent expect dialogues
// against them with a seeded mix of matches, timeouts, EOFs, and
// match_max overflows, reporting throughput and latency through the
// engine's own metrics histograms. It exists to answer the scaling
// question the sharded scheduler (internal/core/shard.go) was built
// for: what happens at 10k sessions?
package load

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"repro/internal/proc"
)

// All workbench programs speak the same line protocol so the dialogue
// driver is uniform across them:
//
//	<line>      → program-specific chatter, then "echo:<line>\n"
//	blob <n>    → n bytes of filler, then "echo:blob\n" (match_max overflow)
//	quit        → exit (clean EOF)
//
// The reply marker always arrives last, so a dialogue is "send line,
// expect marker" regardless of which program is on the other end.

// serve runs the shared command loop. chatter, when non-nil, writes the
// program's personality (delays, bursts) before each marker.
func serve(stdin io.Reader, stdout io.Writer, chatter func(w io.Writer, line string)) error {
	sc := bufio.NewScanner(stdin)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "quit":
			return nil
		case strings.HasPrefix(line, "blob "):
			n, _ := strconv.Atoi(strings.TrimPrefix(line, "blob "))
			writeFiller(stdout, n)
			fmt.Fprint(stdout, "echo:blob\n")
		default:
			if chatter != nil {
				chatter(stdout, line)
			}
			fmt.Fprintf(stdout, "echo:%s\n", line)
		}
	}
	return nil
}

func writeFiller(w io.Writer, n int) {
	const chunk = 512
	buf := make([]byte, chunk)
	for i := range buf {
		buf[i] = 'x'
	}
	for n > 0 {
		c := chunk
		if n < c {
			c = n
		}
		w.Write(buf[:c])
		n -= c
	}
	io.WriteString(w, "\n")
}

// EchoServer replies immediately — the fastest talker, it measures pure
// engine overhead.
func EchoServer() proc.Program {
	return func(stdin io.Reader, stdout io.Writer) error {
		return serve(stdin, stdout, nil)
	}
}

// SlowTalker sleeps interval before each reply, modelling a remote that
// keeps sessions parked on their timers.
func SlowTalker(interval time.Duration) proc.Program {
	return func(stdin io.Reader, stdout io.Writer) error {
		return serve(stdin, stdout, func(io.Writer, string) {
			time.Sleep(interval)
		})
	}
}

// BurstyLogger writes burst log lines before every reply, modelling a
// chatty child that floods the match buffer between markers.
func BurstyLogger(burst int) proc.Program {
	return func(stdin io.Reader, stdout io.Writer) error {
		n := 0
		return serve(stdin, stdout, func(w io.Writer, _ string) {
			for i := 0; i < burst; i++ {
				n++
				fmt.Fprintf(w, "log line %d: routine event, nothing to see\n", n)
			}
		})
	}
}
