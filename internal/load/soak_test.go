package load

import (
	"testing"
	"time"

	"repro/internal/testutil"
	"repro/internal/trace"
)

// TestSoak2kSessions is the endurance leg: 2000 sessions across 8
// shards churning dialogues (including flaky EOFs and respawns) for a
// sustained window, under the race detector on the soak tier. It must
// finish with zero dialogue errors, zero scheduler drops, zero dropped
// trace events on the per-shard recorders, and zero leaked goroutines.
// Skipped under -short: this is the scripts/check.sh soak leg, not a
// unit test.
func TestSoak2kSessions(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test: skipped under -short")
	}
	defer testutil.LeakCheck(t, 25, 15*time.Second)()

	const shards = 8
	recs := make([]*trace.Recorder, shards)
	res, err := Run(Config{
		Sessions: 2000,
		Duration: 5 * time.Second,
		Shards:   shards,
		Seed:     2026,
		Rec: func(i int) *trace.Recorder {
			recs[i] = trace.New(8192)
			recs[i].SetRecording(true)
			return recs[i]
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	t.Logf("soak: %d dialogues in %v (%.0f/sec), %d matches %d timeouts %d EOFs %d overflows, peak queue %v",
		res.Dialogues, res.Elapsed.Round(time.Millisecond), res.DialoguesPerSec,
		res.Matches, res.Timeouts, res.EOFs, res.Overflows, res.QueueDepthPeak)

	if res.Errors != 0 {
		t.Errorf("%d dialogue errors", res.Errors)
	}
	if res.Dropped != 0 {
		t.Errorf("scheduler dropped %d events", res.Dropped)
	}
	if got := res.Matches + res.Timeouts + res.EOFs; got != res.Dialogues {
		t.Errorf("conservation broken: %d+%d+%d = %d, want %d",
			res.Matches, res.Timeouts, res.EOFs, got, res.Dialogues)
	}
	if res.Dialogues < int64(res.Sessions) {
		t.Errorf("only %d dialogues across %d sessions — workers stalled", res.Dialogues, res.Sessions)
	}
	for i, rec := range recs {
		if rec == nil {
			t.Fatalf("shard %d recorder never requested", i)
		}
		if rec.Total() == 0 {
			t.Errorf("shard %d recorded no events", i)
		}
	}
}
