package load

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/admin"
	"repro/internal/core"
	"repro/internal/metrics"
)

// This file is the telemetry-plane battery: the conservation law read
// through /debug/sessions, the load-workbench registry hooks, and the
// expectd admin protocol (admin line before ready, plane readable while
// draining, listener closed last).

func adminGet(t *testing.T, addr, path string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s read: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

// TestAdminSessionsConservation is the acceptance check: at a
// checkpointed instant — every driven session parked in an expect, no
// respawn in flight — /debug/sessions must list exactly the sessions the
// workbench drove, each with its parked op and a live remaining timeout.
func TestAdminSessionsConservation(t *testing.T) {
	const sessions = 48
	sc := core.NewScheduler(core.SchedulerOptions{Shards: 4})
	defer sc.Stop()

	reg := metrics.NewRegistry()
	sc.RegisterMetrics(reg)
	srv, err := admin.Listen("127.0.0.1:0", admin.Options{
		Registry: reg,
		Sessions: sc.SessionInfos,
		Shards:   sc.SnapshotShards,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Drive K sessions to the checkpointed instant: one expect each,
	// armed with a long deadline, waiting on a line that hasn't been sent.
	const armed = 60 * time.Second
	sess := make([]*core.Session, sessions)
	done := make(chan error, sessions)
	for i := range sess {
		s, err := core.SpawnProgram(&core.Config{Sched: sc, SID: int32(i + 1)},
			fmt.Sprintf("echo-%d", i+1), EchoServer())
		if err != nil {
			t.Fatalf("spawn %d: %v", i, err)
		}
		defer s.Close()
		sess[i] = s
		go func(s *core.Session) {
			_, err := s.ExpectTimeout(armed, core.Exact("echo:release\n"))
			done <- err
		}(s)
	}

	// Wait for every op to park on its shard loop.
	deadline := time.Now().Add(10 * time.Second)
	for {
		parked := 0
		for _, snap := range sc.SnapshotShards() {
			parked += snap.ParkedOps
		}
		if parked == sessions {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d ops parked", parked, sessions)
		}
		time.Sleep(time.Millisecond)
	}

	// The instant: scrape over real HTTP and check the conservation law.
	code, body := adminGet(t, srv.Addr(), "/debug/sessions")
	if code != http.StatusOK {
		t.Fatalf("/debug/sessions status %d", code)
	}
	var reply struct {
		Count    int                `json:"count"`
		Sessions []core.SessionInfo `json:"sessions"`
	}
	if err := json.Unmarshal([]byte(body), &reply); err != nil {
		t.Fatalf("sessions JSON: %v", err)
	}
	if reply.Count != sessions || len(reply.Sessions) != sessions {
		t.Fatalf("sessions listed = %d (count %d), sessions driven = %d",
			len(reply.Sessions), reply.Count, sessions)
	}
	seen := map[int32]bool{}
	for _, info := range reply.Sessions {
		if seen[info.SID] {
			t.Errorf("sid %d listed twice", info.SID)
		}
		seen[info.SID] = true
		if info.ParkedOps != 1 {
			t.Errorf("sid %d: ParkedOps = %d, want 1", info.SID, info.ParkedOps)
		}
		if info.RemainingTimeoutNS <= 0 || info.RemainingTimeoutNS > armed.Nanoseconds() {
			t.Errorf("sid %d: remaining timeout %d outside (0, %d]",
				info.SID, info.RemainingTimeoutNS, armed.Nanoseconds())
		}
		if info.State != "open" {
			t.Errorf("sid %d: state %q", info.SID, info.State)
		}
	}
	// The registry's parked-op rollup tells the same story.
	_, expo := adminGet(t, srv.Addr(), "/metrics")
	var parkedTotal float64
	for _, line := range strings.Split(expo, "\n") {
		var shard string
		var v float64
		if n, _ := fmt.Sscanf(line, "expect_shard_parked_ops{shard=%q} %f", &shard, &v); n == 2 {
			parkedTotal += v
		}
	}
	if int(parkedTotal) != sessions {
		t.Errorf("/metrics parked ops = %v, want %d", parkedTotal, sessions)
	}

	// Release the instant: every parked expect resolves to a match.
	for _, s := range sess {
		s.Send("release\n")
	}
	for range sess {
		if err := <-done; err != nil {
			t.Errorf("parked expect: %v", err)
		}
	}
}

// TestLoadRegistryHooks checks Config.Registry and Config.OnScheduler:
// the run's telemetry is registered before the dialogue phase, and the
// counters a scraper would read agree with the workbench's own report.
func TestLoadRegistryHooks(t *testing.T) {
	reg := metrics.NewRegistry()
	var hooked *core.Scheduler
	res, err := Run(Config{
		Sessions:    8,
		Dialogues:   5,
		Shards:      2,
		Seed:        42,
		Registry:    reg,
		OnScheduler: func(sc *core.Scheduler) { hooked = sc },
	})
	if err != nil {
		t.Fatal(err)
	}
	if hooked == nil {
		t.Error("OnScheduler never called")
	}
	expo := string(reg.RenderPrometheus())
	for metric, want := range map[string]int64{
		"load_dialogues_total": res.Dialogues,
		"load_matches_total":   res.Matches,
		"load_timeouts_total":  res.Timeouts,
		"load_eofs_total":      res.EOFs,
		"load_errors_total":    0,
	} {
		if !strings.Contains(expo, fmt.Sprintf("%s %d\n", metric, want)) {
			t.Errorf("exposition missing %q = %d:\n%s", metric, want, expo)
		}
	}
	if !strings.Contains(expo, "load_dialogue_seconds_count") {
		t.Error("dialogue histogram not registered")
	}
	if !strings.Contains(expo, "expect_shard_wakeup_seconds_count") {
		t.Error("scheduler families not registered")
	}
}

// TestExpectdAdminProtocol pins the daemon's telemetry contract end to
// end: the "expectd: admin <addr>" stdout line appears after the serving
// lines and before ready; the plane answers while the daemon is up; and
// on SIGTERM the admin listener closes LAST — /debug/sessions and
// /metrics stay readable through the whole drain window.
func TestExpectdAdminProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the expectd binary: skipped under -short")
	}
	d := startDaemon(t, "-serve", "echo", "-admin", "127.0.0.1:0", "-grace", "30s")

	// Protocol order: serving, then admin, then ready — and the admin
	// line is machine-parseable.
	d.mu.Lock()
	lines := append([]string(nil), d.lines...)
	d.mu.Unlock()
	adminIdx, readyIdx, servingIdx := -1, -1, -1
	var adminAddr string
	for i, line := range lines {
		switch {
		case strings.HasPrefix(line, "expectd: serving "):
			servingIdx = i
		case strings.HasPrefix(line, "expectd: admin "):
			adminIdx = i
			if _, err := fmt.Sscanf(line, "expectd: admin %s", &adminAddr); err != nil {
				t.Fatalf("unparseable admin line %q: %v", line, err)
			}
		case line == "expectd: ready":
			readyIdx = i
		}
	}
	if adminIdx < 0 {
		t.Fatalf("no admin line in:\n%s", strings.Join(lines, "\n"))
	}
	if !(servingIdx < adminIdx && adminIdx < readyIdx) {
		t.Fatalf("protocol order serving=%d admin=%d ready=%d, want serving < admin < ready",
			servingIdx, adminIdx, readyIdx)
	}

	// Plane is live before any drain.
	if code, body := adminGet(t, adminAddr, "/metrics"); code != 200 || !strings.Contains(body, "# TYPE") {
		t.Fatalf("/metrics while serving: status %d", code)
	}

	// Hold a session open across the SIGTERM so the drain window is real.
	conn, err := net.Dial("tcp", d.addrs["echo"])
	if err != nil {
		t.Fatalf("dial echo: %v", err)
	}
	fmt.Fprintf(conn, "hello\n")
	buf := make([]byte, 64)
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := conn.Read(buf); err != nil {
		t.Fatalf("echo read: %v", err)
	}

	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if !d.waitLine("expectd: draining", 10*time.Second) {
		t.Fatalf("no draining line after SIGTERM:\n%s", d.joined())
	}

	// Mid-drain: the one in-flight session holds the daemon open, and the
	// admin plane must still answer — this is the close-last contract.
	code, body := adminGet(t, adminAddr, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics mid-drain: status %d", code)
	}
	if !strings.Contains(body, "expectd_draining 1") {
		t.Errorf("mid-drain exposition missing expectd_draining 1")
	}
	if !strings.Contains(body, `expectd_sessions_active{program="echo"} 1`) {
		t.Errorf("mid-drain exposition missing the held session:\n%s", body)
	}
	if code, _ := adminGet(t, adminAddr, "/debug/sessions"); code != 200 {
		t.Errorf("/debug/sessions mid-drain: status %d", code)
	}

	// Let the dialogue finish; the drain must complete clean (exit 0).
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.CloseWrite()
	}
	select {
	case <-d.scanDone:
	case <-time.After(60 * time.Second):
		d.kill()
		t.Fatalf("daemon did not exit after the held session closed:\n%s", d.joined())
	}
	if err := d.cmd.Wait(); err != nil {
		t.Fatalf("exit status after clean drain: %v\n%s", err, d.joined())
	}
	if !strings.Contains(d.joined(), "drained clean, served 1 sessions") {
		t.Errorf("missing drained-clean report:\n%s", d.joined())
	}
	conn.Close()
}
