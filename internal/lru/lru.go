// Package lru provides the small bounded compile caches behind the
// engine's hot paths: parse-once Tcl scripts, expr ASTs, and compiled
// glob/regexp patterns. The cache is a plain LRU — a map plus an
// intrusive doubly-linked recency list — protected by a mutex so the
// pattern caches can be shared across sessions running in separate
// goroutines. Hit/miss counters feed the E15 experiment report.
package lru

import "sync"

// entry is one cached key/value pair threaded on the recency list.
type entry[K comparable, V any] struct {
	key        K
	val        V
	prev, next *entry[K, V]
}

// Cache is a bounded LRU cache. The zero value is not usable; construct
// with New. All methods are safe for concurrent use.
type Cache[K comparable, V any] struct {
	mu      sync.Mutex
	items   map[K]*entry[K, V]
	head    *entry[K, V] // most recently used
	tail    *entry[K, V] // least recently used
	cap     int
	hits    uint64
	misses  uint64
	evicted uint64
}

// New returns a cache bounded to capacity entries. A capacity <= 0 yields
// a cache that stores nothing (every Get misses), which callers use as the
// "caching disabled" mode.
func New[K comparable, V any](capacity int) *Cache[K, V] {
	return &Cache[K, V]{
		items: make(map[K]*entry[K, V]),
		cap:   capacity,
	}
}

// Get returns the cached value for key, marking it most recently used.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.items[key]
	if !ok {
		c.misses++
		var zero V
		return zero, false
	}
	c.hits++
	c.moveToFront(e)
	return e.val, true
}

// Put stores key→val, evicting the least recently used entry on overflow.
func (c *Cache[K, V]) Put(key K, val V) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.items[key]; ok {
		e.val = val
		c.moveToFront(e)
		return
	}
	e := &entry[K, V]{key: key, val: val}
	c.items[key] = e
	c.pushFront(e)
	if len(c.items) > c.cap {
		lru := c.tail
		c.unlink(lru)
		delete(c.items, lru.key)
		c.evicted++
	}
}

// Len returns the number of cached entries.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// Cap returns the configured bound.
func (c *Cache[K, V]) Cap() int { return c.cap }

// Purge drops every entry (counters are kept).
func (c *Cache[K, V]) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.items = make(map[K]*entry[K, V])
	c.head, c.tail = nil, nil
}

// Stats reports cumulative hit/miss/eviction counts.
func (c *Cache[K, V]) Stats() (hits, misses, evicted uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evicted
}

func (c *Cache[K, V]) pushFront(e *entry[K, V]) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache[K, V]) unlink(e *entry[K, V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *Cache[K, V]) moveToFront(e *entry[K, V]) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}
