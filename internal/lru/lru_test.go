package lru

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetPutEvictionOrder(t *testing.T) {
	c := New[string, int](3)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("c", 3)
	if _, ok := c.Get("a"); !ok { // a becomes MRU
		t.Fatal("a missing")
	}
	c.Put("d", 4) // evicts b (LRU)
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s missing after eviction", k)
		}
	}
	if c.Len() != 3 {
		t.Errorf("Len = %d, want 3", c.Len())
	}
}

func TestPutUpdatesExisting(t *testing.T) {
	c := New[string, int](2)
	c.Put("a", 1)
	c.Put("a", 9)
	if v, _ := c.Get("a"); v != 9 {
		t.Errorf("a = %d, want 9", v)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
}

func TestZeroCapacityStoresNothing(t *testing.T) {
	c := New[string, int](0)
	c.Put("a", 1)
	if _, ok := c.Get("a"); ok {
		t.Error("zero-capacity cache stored a value")
	}
	if c.Len() != 0 {
		t.Errorf("Len = %d, want 0", c.Len())
	}
}

func TestStatsAndPurge(t *testing.T) {
	c := New[int, int](2)
	c.Put(1, 1)
	c.Get(1)
	c.Get(2)
	c.Put(2, 2)
	c.Put(3, 3) // evicts 1
	hits, misses, evicted := c.Stats()
	if hits != 1 || misses != 1 || evicted != 1 {
		t.Errorf("stats = %d/%d/%d, want 1/1/1", hits, misses, evicted)
	}
	c.Purge()
	if c.Len() != 0 {
		t.Errorf("Len after Purge = %d", c.Len())
	}
	if _, ok := c.Get(2); ok {
		t.Error("entry survived Purge")
	}
}

func TestSingleEntryCache(t *testing.T) {
	c := New[int, string](1)
	c.Put(1, "one")
	c.Put(2, "two")
	if _, ok := c.Get(1); ok {
		t.Error("1 should have been evicted")
	}
	if v, ok := c.Get(2); !ok || v != "two" {
		t.Errorf("2 = %q, %v", v, ok)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New[int, int](64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < 500; k++ {
				c.Put(k%100, g*1000+k)
				c.Get((k + g) % 100)
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Errorf("Len = %d exceeds cap 64", c.Len())
	}
}

func TestEvictionKeepsListConsistent(t *testing.T) {
	c := New[string, int](4)
	for i := 0; i < 100; i++ {
		c.Put(fmt.Sprintf("k%d", i%7), i)
		c.Get(fmt.Sprintf("k%d", (i+3)%7))
		if c.Len() > 4 {
			t.Fatalf("Len = %d exceeds cap at step %d", c.Len(), i)
		}
	}
}
