package metrics

import (
	"sort"
	"strconv"
	"sync"
)

// Counters is a named event-counter set, the integer sibling of Profiler:
// where the profiler answers "where did the time go", counters answer "how
// often did this happen". The fault-injection transport reports its
// perturbations here (chunks split, delays injected, transient errors,
// forced EOFs) so a test that saw a divergence can also see exactly which
// adversities the run was subjected to. A nil *Counters is a valid no-op
// sink, mirroring the Profiler convention.
type Counters struct {
	mu sync.Mutex
	m  map[string]int64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters { return &Counters{m: make(map[string]int64)} }

// Add increments counter name by n. Safe on a nil receiver.
func (c *Counters) Add(name string, n int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[string]int64)
	}
	c.m[name] += n
	c.mu.Unlock()
}

// Get returns the current value of counter name (0 if never incremented).
func (c *Counters) Get(name string) int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[name]
}

// Snapshot returns a copy of all counters.
func (c *Counters) Snapshot() map[string]int64 {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	return out
}

// Reset clears all counters.
func (c *Counters) Reset() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.m = make(map[string]int64)
	c.mu.Unlock()
}

// Report renders the counters one per line, sorted by name, for inclusion
// in divergence reports and experiment logs (shared aligned format).
func (c *Counters) Report() string {
	snap := c.Snapshot()
	if len(snap) == 0 {
		return ""
	}
	names := make([]string, 0, len(snap))
	for k := range snap {
		names = append(names, k)
	}
	sort.Strings(names)
	var t alignedTable
	for _, k := range names {
		t.row(k, strconv.FormatInt(snap[k], 10))
	}
	return t.String()
}
