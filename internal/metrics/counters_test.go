package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCountersBasics(t *testing.T) {
	c := NewCounters()
	c.Add("reads", 2)
	c.Add("reads", 3)
	c.Add("faults", 1)
	if got := c.Get("reads"); got != 5 {
		t.Errorf("reads = %d, want 5", got)
	}
	if got := c.Get("missing"); got != 0 {
		t.Errorf("missing = %d, want 0", got)
	}
	snap := c.Snapshot()
	if snap["faults"] != 1 || len(snap) != 2 {
		t.Errorf("snapshot = %v", snap)
	}
	rep := c.Report()
	if !strings.Contains(rep, "faults") || !strings.Contains(rep, "reads") {
		t.Errorf("report missing counters:\n%s", rep)
	}
	// Report order is sorted by name.
	if strings.Index(rep, "faults") > strings.Index(rep, "reads") {
		t.Errorf("report not sorted:\n%s", rep)
	}
	c.Reset()
	if got := c.Get("reads"); got != 0 {
		t.Errorf("after reset reads = %d", got)
	}
}

func TestCountersNilReceiver(t *testing.T) {
	var c *Counters
	c.Add("x", 1) // must not panic
	if c.Get("x") != 0 || c.Snapshot() != nil || c.Report() != "" {
		t.Error("nil Counters should be a no-op sink")
	}
	c.Reset()
}

func TestCountersConcurrent(t *testing.T) {
	c := NewCounters()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Add("n", 1)
			}
		}()
	}
	wg.Wait()
	if got := c.Get("n"); got != 8000 {
		t.Errorf("n = %d, want 8000", got)
	}
}

// The zero value (not just NewCounters) must be usable: faultify embeds
// counters in options structs.
func TestCountersZeroValue(t *testing.T) {
	var c Counters
	c.Add("a", 1)
	if c.Get("a") != 1 {
		t.Error("zero-value Counters unusable")
	}
}
