package metrics

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"
)

// This file pins the /metrics exposition with a round trip: a strict
// parser for the subset of the Prometheus text format the registry emits,
// and a fixpoint test — parse(render(registry)) re-rendered must equal
// the original bytes exactly. Any drift between what WritePrometheus
// writes and what a scraper reads (a lost sample, a reordered family, a
// float that doesn't round-trip) breaks the equality.

// expoError is a positioned parse failure, styled after trace.ParseError:
// line is 1-based, offset is the byte position of the offending line.
type expoError struct {
	Line   int
	Offset int
	Msg    string
}

func (e *expoError) Error() string {
	return fmt.Sprintf("expo: line %d (byte %d): %s", e.Line, e.Offset, e.Msg)
}

// expoSample is one parsed sample line. Suffix distinguishes a
// histogram's _bucket/_sum/_count series from the family's own name.
type expoSample struct {
	suffix   string // "", "bucket", "sum", or "count"
	labelKey string
	labelVal string
	value    float64
	intVal   int64 // used when isInt (bucket and count series render %d)
	isInt    bool
}

// expoFamily is one parsed family: HELP line, TYPE line, samples.
type expoFamily struct {
	name    string
	help    string
	kind    string
	samples []expoSample
}

// parseExpo strictly parses a text-format exposition: every family is
// HELP then TYPE then its samples, families may not repeat, every sample
// must belong to the family above it, and every line must be complete
// (trailing newline included).
func parseExpo(b []byte) ([]expoFamily, error) {
	var fams []expoFamily
	seen := map[string]bool{}
	var cur *expoFamily
	line, off := 0, 0
	fail := func(msg string) error { return &expoError{Line: line, Offset: off, Msg: msg} }

	for off < len(b) {
		line++
		nl := bytes.IndexByte(b[off:], '\n')
		if nl < 0 {
			return nil, fail("truncated line (no trailing newline)")
		}
		text := string(b[off : off+nl])
		switch {
		case strings.HasPrefix(text, "# HELP "):
			rest := text[len("# HELP "):]
			sp := strings.IndexByte(rest, ' ')
			if sp <= 0 {
				return nil, fail("HELP line without help text")
			}
			name := rest[:sp]
			if !validName(name) {
				return nil, fail("invalid metric name " + strconv.Quote(name))
			}
			if seen[name] {
				return nil, fail("duplicate metric name " + strconv.Quote(name))
			}
			seen[name] = true
			fams = append(fams, expoFamily{name: name, help: rest[sp+1:]})
			cur = &fams[len(fams)-1]
		case strings.HasPrefix(text, "# TYPE "):
			rest := text[len("# TYPE "):]
			sp := strings.IndexByte(rest, ' ')
			if sp <= 0 {
				return nil, fail("TYPE line without a kind")
			}
			name, kind := rest[:sp], rest[sp+1:]
			if cur == nil || cur.name != name {
				return nil, fail("TYPE for " + strconv.Quote(name) + " without its HELP line")
			}
			if cur.kind != "" {
				return nil, fail("second TYPE line for " + strconv.Quote(name))
			}
			switch kind {
			case "gauge", "counter", "histogram":
			default:
				return nil, fail("unknown kind " + strconv.Quote(kind))
			}
			cur.kind = kind
		case strings.HasPrefix(text, "#"):
			return nil, fail("unexpected comment " + strconv.Quote(text))
		case text == "":
			return nil, fail("blank line")
		default:
			if cur == nil || cur.kind == "" {
				return nil, fail("sample before any # HELP/# TYPE header")
			}
			s, err := parseSample(cur, text)
			if err != "" {
				return nil, fail(err)
			}
			cur.samples = append(cur.samples, s)
		}
		off += nl + 1
	}
	for i := range fams {
		if fams[i].kind == "" {
			line, off = 0, 0
			return nil, &expoError{Msg: "family " + strconv.Quote(fams[i].name) + " has no TYPE line"}
		}
	}
	return fams, nil
}

// parseSample parses one sample line against its family, returning an
// error message ("" on success).
func parseSample(f *expoFamily, text string) (expoSample, string) {
	sp := strings.LastIndexByte(text, ' ')
	if sp < 0 {
		return expoSample{}, "sample without a value: " + strconv.Quote(text)
	}
	series, valText := text[:sp], text[sp+1:]

	var s expoSample
	if br := strings.IndexByte(series, '{'); br >= 0 {
		if !strings.HasSuffix(series, "}") {
			return expoSample{}, "unterminated label set: " + strconv.Quote(series)
		}
		pair := series[br+1 : len(series)-1]
		series = series[:br]
		eq := strings.IndexByte(pair, '=')
		if eq <= 0 || len(pair) < eq+3 || pair[eq+1] != '"' || pair[len(pair)-1] != '"' {
			return expoSample{}, "malformed label pair: " + strconv.Quote(pair)
		}
		s.labelKey = pair[:eq]
		val, ok := unescapeLabel(pair[eq+2 : len(pair)-1])
		if !ok {
			return expoSample{}, "bad label escape in " + strconv.Quote(pair)
		}
		s.labelVal = val
	}

	switch {
	case series == f.name:
	case f.kind == "histogram" && series == f.name+"_bucket":
		s.suffix = "bucket"
		if s.labelKey != "le" {
			return expoSample{}, "histogram bucket without an le label: " + strconv.Quote(text)
		}
	case f.kind == "histogram" && series == f.name+"_sum":
		s.suffix = "sum"
	case f.kind == "histogram" && series == f.name+"_count":
		s.suffix = "count"
	default:
		return expoSample{}, "sample " + strconv.Quote(series) + " does not belong to family " + strconv.Quote(f.name)
	}

	if s.suffix == "bucket" || s.suffix == "count" {
		n, err := strconv.ParseInt(valText, 10, 64)
		if err != nil {
			return expoSample{}, "bad integer value " + strconv.Quote(valText)
		}
		s.intVal, s.isInt = n, true
		return s, ""
	}
	switch valText {
	case "+Inf", "-Inf", "NaN":
		// Accepted spellings; round-trip through formatVal below.
	default:
		if _, err := strconv.ParseFloat(valText, 64); err != nil {
			return expoSample{}, "bad value " + strconv.Quote(valText)
		}
	}
	v, _ := strconv.ParseFloat(valText, 64)
	s.value = v
	return s, ""
}

func unescapeLabel(s string) (string, bool) {
	if !strings.ContainsRune(s, '\\') {
		return s, true
	}
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' {
			sb.WriteByte(s[i])
			continue
		}
		i++
		if i >= len(s) {
			return "", false
		}
		switch s[i] {
		case '\\':
			sb.WriteByte('\\')
		case '"':
			sb.WriteByte('"')
		case 'n':
			sb.WriteByte('\n')
		default:
			return "", false
		}
	}
	return sb.String(), true
}

// renderExpo re-renders parsed families the way WritePrometheus does;
// parse → renderExpo is the fixpoint leg of the round trip.
func renderExpo(fams []expoFamily) []byte {
	var sb strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&sb, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&sb, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.samples {
			series := f.name
			if s.suffix != "" {
				series += "_" + s.suffix
			}
			if s.labelKey != "" {
				series += "{" + s.labelKey + "=\"" + escapeLabel(s.labelVal) + "\"}"
			}
			if s.isInt {
				fmt.Fprintf(&sb, "%s %d\n", series, s.intVal)
			} else {
				fmt.Fprintf(&sb, "%s %s\n", series, formatVal(s.value))
			}
		}
	}
	return []byte(sb.String())
}

// richRegistry builds a registry exercising every family shape the
// renderer has: plain gauge and counter, labeled vecs (with a value that
// needs escaping), and a histogram with a clamped top-bucket observation.
func richRegistry() *Registry {
	h := NewHistogram()
	h.Observe(900 * time.Nanosecond)
	h.Observe(30 * time.Microsecond)
	h.Observe(2 * time.Millisecond)
	h.Observe(time.Hour) // clamps into the top bucket → +Inf is load-bearing
	r := NewRegistry()
	r.Gauge("live_sessions", "Live sessions.", func() float64 { return 42 })
	r.Counter("dialogues_total", "Dialogues run.", func() float64 { return 123456 })
	r.GaugeVec("shard_depth", "Backlog per shard.", "shard", func() map[string]float64 {
		return map[string]float64{"0": 1, "1": 0.5, "10": 3}
	})
	r.CounterVec("outcomes_total", "Outcomes by kind.", "kind", func() map[string]float64 {
		return map[string]float64{"match": 10, `quo"te`: 1, "time\nout": 2}
	})
	r.Histogram("latency_seconds", "Dialogue latency.", func() []*Histogram { return []*Histogram{h} })
	return r
}

func TestExpositionRoundTripFixpoint(t *testing.T) {
	rendered := richRegistry().RenderPrometheus()
	fams, err := parseExpo(rendered)
	if err != nil {
		t.Fatalf("parse(render()): %v\nexposition:\n%s", err, rendered)
	}
	again := renderExpo(fams)
	if !bytes.Equal(rendered, again) {
		t.Fatalf("round trip is not a fixpoint:\n--- rendered ---\n%s\n--- re-rendered ---\n%s", rendered, again)
	}
	// And the fixpoint is stable: a second trip changes nothing.
	fams2, err := parseExpo(again)
	if err != nil {
		t.Fatalf("second parse: %v", err)
	}
	if !bytes.Equal(renderExpo(fams2), again) {
		t.Fatal("second round trip diverged")
	}
}

func TestExpositionParserRejectsDuplicates(t *testing.T) {
	dup := []byte("" +
		"# HELP x_total One.\n# TYPE x_total counter\nx_total 1\n" +
		"# HELP y_total Two.\n# TYPE y_total counter\ny_total 2\n" +
		"# HELP x_total Again.\n# TYPE x_total counter\nx_total 3\n")
	_, err := parseExpo(dup)
	if err == nil {
		t.Fatal("duplicate family parsed without error")
	}
	pe, ok := err.(*expoError)
	if !ok {
		t.Fatalf("error is %T, want *expoError", err)
	}
	if !strings.Contains(pe.Msg, "duplicate") || !strings.Contains(pe.Msg, "x_total") {
		t.Errorf("message %q does not name the duplicate", pe.Msg)
	}
	if pe.Line != 7 {
		t.Errorf("error at line %d, want 7 (the second HELP x_total)", pe.Line)
	}
	if want := strings.Index(string(dup), "# HELP x_total Again."); pe.Offset != want {
		t.Errorf("error offset %d, want %d", pe.Offset, want)
	}
}

func TestExpositionParserPositionedErrors(t *testing.T) {
	cases := []struct {
		name     string
		in       string
		wantLine int
		wantMsg  string
	}{
		{"sample before header", "orphan 1\n", 1, "before any"},
		{"type without help", "# TYPE x gauge\n", 1, "without its HELP"},
		{"unknown kind", "# HELP x H.\n# TYPE x summary\n", 2, "unknown kind"},
		{"foreign sample", "# HELP x H.\n# TYPE x gauge\ny 1\n", 3, "does not belong"},
		{"bad value", "# HELP x H.\n# TYPE x gauge\nx one\n", 3, "bad value"},
		{"truncated line", "# HELP x H.\n# TYPE x gauge\nx 1", 3, "truncated"},
		{"blank line", "# HELP x H.\n# TYPE x gauge\n\n", 3, "blank"},
		{"bucket without le", "# HELP x H.\n# TYPE x histogram\nx_bucket 1\n", 3, "le label"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseExpo([]byte(tc.in))
			if err == nil {
				t.Fatalf("parsed without error:\n%s", tc.in)
			}
			pe, ok := err.(*expoError)
			if !ok {
				t.Fatalf("error is %T, want *expoError", err)
			}
			if pe.Line != tc.wantLine {
				t.Errorf("line %d, want %d (%v)", pe.Line, tc.wantLine, err)
			}
			if !strings.Contains(pe.Msg, tc.wantMsg) {
				t.Errorf("message %q missing %q", pe.Msg, tc.wantMsg)
			}
		})
	}
}
