package metrics

import (
	"fmt"
	"strings"
)

// alignedTable is the one table formatter behind every metrics report —
// Profiler phase shares, Counters, and the latency histograms all render
// through it, so their output shares a single convention: the first column
// is left-aligned, every other column is right-aligned, and widths are
// computed from the data so columns line up no matter what the values are.
// Row order is the caller's contract (each report documents its own
// deterministic ordering); the formatter never reorders.
type alignedTable struct {
	rows [][]string
}

func (t *alignedTable) row(cols ...string) {
	t.rows = append(t.rows, cols)
}

func (t *alignedTable) String() string {
	var widths []int
	for _, r := range t.rows {
		for i, c := range r {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	for _, r := range t.rows {
		var line strings.Builder
		for i, c := range r {
			if i == 0 {
				fmt.Fprintf(&line, "%-*s", widths[i], c)
			} else {
				fmt.Fprintf(&line, "  %*s", widths[i], c)
			}
		}
		sb.WriteString(strings.TrimRight(line.String(), " "))
		sb.WriteByte('\n')
	}
	return sb.String()
}
