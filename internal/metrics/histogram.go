package metrics

import (
	"fmt"
	"math/bits"
	"strconv"
	"sync/atomic"
	"time"
)

// HistKind identifies one of the engine's latency distributions. The
// paper's §7.4 table reports CPU *shares*; shares hide tails, and tails
// are where an interactive tool's feel lives — one 50ms wakeup hurts more
// than a thousand 5µs ones. The histograms complement the share table
// with percentile views of the three spans that dominate an expect loop.
type HistKind int

const (
	// HistWakeupToMatch: from a pump wakeup (new bytes notified) to the
	// pattern-scan verdict for that wakeup.
	HistWakeupToMatch HistKind = iota
	// HistReadToWakeup: from the transport read returning to the waiting
	// expect call observing the new bytes.
	HistReadToWakeup
	// HistEvalDispatch: one Tcl command dispatch (lookup + execution).
	HistEvalDispatch

	numHists
)

var histNames = [numHists]string{
	"wakeup-to-match",
	"read-to-wakeup",
	"eval-dispatch",
}

func (k HistKind) String() string {
	if k < 0 || k >= numHists {
		return fmt.Sprintf("hist-%d", int(k))
	}
	return histNames[k]
}

// HistKinds lists all histogram kinds in report order.
func HistKinds() []HistKind {
	out := make([]HistKind, numHists)
	for i := range out {
		out[i] = HistKind(i)
	}
	return out
}

// histBuckets log2 buckets cover 1ns .. ~9 minutes (2^39 ns); anything
// above clamps into the last bucket. Bucket i holds durations whose
// nanosecond count has bit-length i, i.e. [2^(i-1), 2^i) ns; bucket 0
// holds zero-or-negative observations.
const histBuckets = 40

func histIndex(ns int64) int {
	if ns <= 0 {
		return 0
	}
	i := bits.Len64(uint64(ns))
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return i
}

// bucketLow/bucketHigh bound bucket i. High is exclusive (the next power
// of two), which is also what reports print: "count of wakeups under 4µs".
func bucketLow(i int) time.Duration {
	if i <= 0 {
		return 0
	}
	return time.Duration(int64(1) << uint(i-1))
}

func bucketHigh(i int) time.Duration {
	return time.Duration(int64(1) << uint(i))
}

// Histogram is a fixed-size log2-bucketed latency histogram. Observe is
// lock-free (atomic adds into preallocated buckets, zero allocation), so
// it is safe on the engine's hot per-wakeup path. A nil *Histogram is a
// valid no-op sink, matching the Profiler/Counters convention.
type Histogram struct {
	count  atomic.Int64
	sum    atomic.Int64
	maxNS  atomic.Int64
	bucket [histBuckets]atomic.Int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one duration. Safe on a nil receiver; zero allocation.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.bucket[histIndex(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		old := h.maxNS.Load()
		if ns <= old || h.maxNS.CompareAndSwap(old, ns) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Mean returns the arithmetic mean of all observations (0 when empty).
func (h *Histogram) Mean() time.Duration {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Max returns the largest observation (exact, not bucketed).
func (h *Histogram) Max() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.maxNS.Load())
}

// Percentile returns an upper bound for the p-quantile (0 < p <= 1): the
// exclusive upper edge of the bucket the quantile falls in, except the
// top bucket, where the exact maximum is tighter. Concurrent Observe
// calls make the walk approximate by at most the in-flight observations.
func (h *Histogram) Percentile(p float64) time.Duration {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	target := int64(p * float64(n))
	if target < 1 {
		target = 1
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += h.bucket[i].Load()
		if seen >= target {
			if i == histBuckets-1 {
				return h.Max()
			}
			return bucketHigh(i)
		}
	}
	return h.Max()
}

// Merge folds src's observations into h without locking either side:
// bucket counts, count, and sum are transferred with atomic adds, and the
// maximum with the same CAS loop Observe uses. Merging while either
// histogram is being observed is safe and approximate by at most the
// in-flight observations (the Percentile contract); src is not modified.
// Safe when either receiver or src is nil.
func (h *Histogram) Merge(src *Histogram) {
	if h == nil || src == nil {
		return
	}
	for i := 0; i < histBuckets; i++ {
		if c := src.bucket[i].Load(); c != 0 {
			h.bucket[i].Add(c)
		}
	}
	if c := src.count.Load(); c != 0 {
		h.count.Add(c)
	}
	if s := src.sum.Load(); s != 0 {
		h.sum.Add(s)
	}
	ns := src.maxNS.Load()
	for {
		old := h.maxNS.Load()
		if ns <= old || h.maxNS.CompareAndSwap(old, ns) {
			return
		}
	}
}

// Reset clears the histogram.
func (h *Histogram) Reset() {
	if h == nil {
		return
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.maxNS.Store(0)
	for i := range h.bucket {
		h.bucket[i].Store(0)
	}
}

// HistBucket is one non-empty row of a histogram snapshot. High is the
// exclusive upper edge of the bucket.
type HistBucket struct {
	Low   time.Duration
	High  time.Duration
	Count int64
}

// Snapshot returns the non-empty buckets in ascending duration order.
func (h *Histogram) Snapshot() []HistBucket {
	if h == nil {
		return nil
	}
	var out []HistBucket
	for i := 0; i < histBuckets; i++ {
		if c := h.bucket[i].Load(); c > 0 {
			out = append(out, HistBucket{Low: bucketLow(i), High: bucketHigh(i), Count: c})
		}
	}
	return out
}

// HistSummary is the JSON-ready digest of one histogram, used by
// benchreport's BENCH_*.json trajectory files and experiment records.
type HistSummary struct {
	Name    string       `json:"name"`
	Count   int64        `json:"count"`
	MeanNS  int64        `json:"mean_ns"`
	P50NS   int64        `json:"p50_ns"`
	P90NS   int64        `json:"p90_ns"`
	P99NS   int64        `json:"p99_ns"`
	MaxNS   int64        `json:"max_ns"`
	Buckets []HistBucket `json:"-"`
}

// Summary digests the histogram under the given name.
func (h *Histogram) Summary(name string) HistSummary {
	return HistSummary{
		Name:    name,
		Count:   h.Count(),
		MeanNS:  int64(h.Mean()),
		P50NS:   int64(h.Percentile(0.50)),
		P90NS:   int64(h.Percentile(0.90)),
		P99NS:   int64(h.Percentile(0.99)),
		MaxNS:   int64(h.Max()),
		Buckets: h.Snapshot(),
	}
}

// Report renders the bucket table (ascending, shared aligned format).
func (h *Histogram) Report() string {
	snap := h.Snapshot()
	if len(snap) == 0 {
		return ""
	}
	n := h.Count()
	var t alignedTable
	t.row("bucket", "count", "share")
	for _, b := range snap {
		t.row("<"+b.High.String(),
			strconv.FormatInt(b.Count, 10),
			fmt.Sprintf("%.1f%%", float64(b.Count)/float64(n)*100))
	}
	return t.String()
}
