package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram()
	h.Observe(0)
	h.Observe(1)         // bucket 1: [1,2)
	h.Observe(3)         // bucket 2: [2,4)
	h.Observe(1000)      // [512,1024)
	h.Observe(time.Hour) // clamps into the last bucket
	if got := h.Count(); got != 5 {
		t.Fatalf("Count = %d, want 5", got)
	}
	snap := h.Snapshot()
	if len(snap) != 5 {
		t.Fatalf("snapshot rows = %d, want 5: %+v", len(snap), snap)
	}
	// Ascending order, zero bucket first.
	if snap[0].Low != 0 || snap[0].High != 1 || snap[0].Count != 1 {
		t.Errorf("zero bucket: %+v", snap[0])
	}
	for i := 1; i < len(snap); i++ {
		if snap[i].Low < snap[i-1].High {
			t.Errorf("snapshot not ascending at %d: %+v", i, snap)
		}
	}
	if got := h.Max(); got != time.Hour {
		t.Errorf("Max = %v, want 1h (exact, not bucketed)", got)
	}
}

func TestHistogramPercentiles(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 90; i++ {
		h.Observe(100) // bucket [64,128)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100_000) // bucket [65536,131072)
	}
	if p := h.Percentile(0.50); p != 128 {
		t.Errorf("p50 = %v, want 128ns (upper edge of the [64,128) bucket)", p)
	}
	if p := h.Percentile(0.90); p != 128 {
		t.Errorf("p90 = %v, want 128ns", p)
	}
	if p := h.Percentile(0.99); p != 131072 {
		t.Errorf("p99 = %v, want 131072ns", p)
	}
	if p := h.Percentile(1.0); p != 131072 {
		t.Errorf("p100 = %v, want 131072ns", p)
	}
	if m := h.Mean(); m < 10*time.Nanosecond || m > 100*time.Microsecond {
		t.Errorf("mean = %v looks wrong", m)
	}
}

func TestHistogramNilAndEmpty(t *testing.T) {
	var h *Histogram
	h.Observe(time.Second) // must not panic
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 || h.Percentile(0.5) != 0 {
		t.Error("nil histogram should be a zero no-op sink")
	}
	if h.Snapshot() != nil || h.Report() != "" {
		t.Error("nil histogram should render nothing")
	}
	h.Reset()

	h2 := NewHistogram()
	if h2.Percentile(0.99) != 0 || h2.Report() != "" {
		t.Error("empty histogram should render nothing")
	}
}

func TestHistogramObserveAllocationFree(t *testing.T) {
	h := NewHistogram()
	if allocs := testing.AllocsPerRun(200, func() {
		h.Observe(1234 * time.Nanosecond)
	}); allocs > 0 {
		t.Errorf("Observe allocates %.1f objects, want 0", allocs)
	}
	var p *Profiler
	if allocs := testing.AllocsPerRun(200, func() {
		p.Observe(HistWakeupToMatch, time.Microsecond)
	}); allocs > 0 {
		t.Errorf("nil-profiler Observe allocates %.1f objects, want 0", allocs)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(time.Duration(i*1000 + j))
			}
		}(i)
	}
	wg.Wait()
	if got := h.Count(); got != 8000 {
		t.Errorf("Count = %d, want 8000", got)
	}
	var sum int64
	for _, b := range h.Snapshot() {
		sum += b.Count
	}
	if sum != 8000 {
		t.Errorf("bucket sum = %d, want 8000", sum)
	}
}

func TestProfilerHistograms(t *testing.T) {
	p := NewProfiler()
	p.Observe(HistWakeupToMatch, 5*time.Microsecond)
	p.Observe(HistWakeupToMatch, 7*time.Microsecond)
	p.Observe(HistEvalDispatch, time.Microsecond)
	if got := p.Hist(HistWakeupToMatch).Count(); got != 2 {
		t.Errorf("wakeup-to-match count = %d, want 2", got)
	}
	rep := p.HistReport()
	if !strings.Contains(rep, "wakeup-to-match") || !strings.Contains(rep, "eval-dispatch") {
		t.Errorf("HistReport missing kinds:\n%s", rep)
	}
	if strings.Contains(rep, "read-to-wakeup") {
		t.Errorf("HistReport rendered an empty histogram:\n%s", rep)
	}
	// Deterministic kind ordering: wakeup-to-match before eval-dispatch.
	if strings.Index(rep, "wakeup-to-match") > strings.Index(rep, "eval-dispatch") {
		t.Errorf("HistReport not in HistKind order:\n%s", rep)
	}
	p.Reset()
	if p.HistReport() != "" || p.Hist(HistWakeupToMatch).Count() != 0 {
		t.Error("Reset should clear histograms")
	}

	var nilP *Profiler
	nilP.Observe(HistReadToWakeup, time.Second)
	if nilP.Hist(HistReadToWakeup) != nil || nilP.HistReport() != "" {
		t.Error("nil profiler histogram access should be a no-op")
	}
	sum := p.Hist(HistEvalDispatch).Summary(HistEvalDispatch.String())
	if sum.Name != "eval-dispatch" || sum.Count != 0 {
		t.Errorf("summary after reset: %+v", sum)
	}
}

func TestHistKindNames(t *testing.T) {
	for _, k := range HistKinds() {
		if k.String() == "" || strings.HasPrefix(k.String(), "hist-") {
			t.Errorf("kind %d has no name", int(k))
		}
	}
	if HistKind(99).String() != "hist-99" {
		t.Errorf("out-of-range kind name: %q", HistKind(99).String())
	}
}

// The shared formatter keeps columns aligned across rows: every line of a
// report has the same rune width up to trailing-number alignment.
func TestAlignedTable(t *testing.T) {
	var tab alignedTable
	tab.row("name", "count")
	tab.row("a-very-long-name", "7")
	tab.row("x", "123456")
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Numeric column is right-aligned: all lines end at the same width.
	if len(lines[1]) != len(lines[2]) {
		t.Errorf("right alignment broken:\n%s", out)
	}
	if !strings.HasSuffix(lines[2], "123456") || !strings.HasSuffix(lines[1], " 7") {
		t.Errorf("numeric column misaligned:\n%s", out)
	}
}
