package metrics

import "sync/atomic"

// IngestStats is the wire-ingest scoreboard behind the E19 memguard gate:
// it counts, with one atomic add per event, what the socket→engine data
// path did to every byte. The legacy (PR 5) path copies each chunk three
// times — socket buffer → inbox slab, slab → scheduler scratch, scratch →
// gap buffer — and allocates on most of those hops; the zero-copy path
// (pooled segments whose ownership transfers whole, netx → inbox →
// matchBuffer backing) should drive both counters toward zero. The load
// workbench threads one IngestStats through netx.Options and core.Config
// and reports the per-dialogue quotients.
//
// A nil *IngestStats is a valid no-op sink, like Profiler and Counters.
type IngestStats struct {
	// bytesCopied counts payload bytes physically copied between buffers
	// on the ingest path (inbox slab writes, TryRead copy-outs, gap-buffer
	// appends, feeder chunk duplication). The steady-state zero-copy path
	// adds nothing here.
	bytesCopied atomic.Int64
	// bytesHandedOff counts payload bytes whose buffer changed owner
	// without being copied: a leased segment queued whole, or adopted as
	// gap-buffer backing.
	bytesHandedOff atomic.Int64
	// ingestAllocs counts heap allocations the ingest path performed for
	// payload bytes: inbox slab growth, feeder chunk clones, gap-buffer
	// reallocation, and segment-pool misses. Pool hits add nothing.
	ingestAllocs atomic.Int64
	// segLeases / segReuses count pool traffic: every Get is a lease, and
	// a lease satisfied from the free list (no allocation) is a reuse.
	segLeases atomic.Int64
	segReuses atomic.Int64
}

// AddCopied records n payload bytes copied between ingest buffers.
func (s *IngestStats) AddCopied(n int) {
	if s != nil && n > 0 {
		s.bytesCopied.Add(int64(n))
	}
}

// AddHandedOff records n payload bytes transferred by ownership move.
func (s *IngestStats) AddHandedOff(n int) {
	if s != nil && n > 0 {
		s.bytesHandedOff.Add(int64(n))
	}
}

// AddAlloc records one payload-buffer allocation on the ingest path.
func (s *IngestStats) AddAlloc() {
	if s != nil {
		s.ingestAllocs.Add(1)
	}
}

// NoteLease records a segment lease; reused says whether the free list
// satisfied it (no allocation).
func (s *IngestStats) NoteLease(reused bool) {
	if s == nil {
		return
	}
	s.segLeases.Add(1)
	if reused {
		s.segReuses.Add(1)
	}
}

// BytesCopied returns the copied-byte total.
func (s *IngestStats) BytesCopied() int64 {
	if s == nil {
		return 0
	}
	return s.bytesCopied.Load()
}

// BytesHandedOff returns the ownership-transferred byte total.
func (s *IngestStats) BytesHandedOff() int64 {
	if s == nil {
		return 0
	}
	return s.bytesHandedOff.Load()
}

// IngestAllocs returns the ingest-path allocation count.
func (s *IngestStats) IngestAllocs() int64 {
	if s == nil {
		return 0
	}
	return s.ingestAllocs.Load()
}

// SegmentLeases returns the pool lease count.
func (s *IngestStats) SegmentLeases() int64 {
	if s == nil {
		return 0
	}
	return s.segLeases.Load()
}

// SegmentReuses returns how many leases were served from the free list.
func (s *IngestStats) SegmentReuses() int64 {
	if s == nil {
		return 0
	}
	return s.segReuses.Load()
}
