// Package metrics implements the phase accounting behind the paper's §7.4
// throughput table. The original work profiled expect on a Sun 3 and
// reported CPU shares — "about 40% is spent pattern matching …, 26% in I/O,
// 16% in open, close, and ioctl, 8% in fork, and 5% in timer calls". The
// engine brackets the equivalent code regions with a Profiler so the same
// share table can be regenerated on any host (experiment E2).
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Phase identifies one of the paper's cost categories.
type Phase int

const (
	// PhaseMatch is time spent pattern matching to guide the script.
	PhaseMatch Phase = iota
	// PhaseCompile is time spent compiling patterns (amortised by the
	// shared compile cache; one lookup per Expect call, not per wakeup).
	PhaseCompile
	// PhaseIO is time spent reading from and writing to processes.
	PhaseIO
	// PhasePty is time spent locating and initializing ptys ("open,
	// close, and ioctl" in the paper).
	PhasePty
	// PhaseFork is time spent creating processes.
	PhaseFork
	// PhaseTimer is time spent arming and fielding timeouts.
	PhaseTimer
	// PhaseOther is everything else (script interpretation and bookkeeping).
	PhaseOther

	numPhases
)

var phaseNames = [numPhases]string{
	"pattern matching",
	"pattern compile",
	"I/O",
	"open/close/ioctl (pty)",
	"fork",
	"timer",
	"other",
}

func (p Phase) String() string {
	if p < 0 || p >= numPhases {
		return fmt.Sprintf("phase-%d", int(p))
	}
	return phaseNames[p]
}

// Phases lists all phases in report order.
func Phases() []Phase {
	out := make([]Phase, numPhases)
	for i := range out {
		out[i] = Phase(i)
	}
	return out
}

// Profiler accumulates wall time per phase. The zero value is unusable; a
// nil *Profiler is a valid no-op sink, so instrumented code needs no checks
// beyond calling through the pointer.
type Profiler struct {
	mu    sync.Mutex
	total [numPhases]time.Duration
	count [numPhases]int64
}

// NewProfiler returns an empty profiler.
func NewProfiler() *Profiler { return &Profiler{} }

// Add records d in phase p. Safe on a nil receiver.
func (pr *Profiler) Add(p Phase, d time.Duration) {
	if pr == nil {
		return
	}
	pr.mu.Lock()
	pr.total[p] += d
	pr.count[p]++
	pr.mu.Unlock()
}

// Time runs fn and charges its duration to phase p.
func (pr *Profiler) Time(p Phase, fn func()) {
	if pr == nil {
		fn()
		return
	}
	start := time.Now()
	fn()
	pr.Add(p, time.Since(start))
}

// Start begins a region and returns a stop function charging phase p.
func (pr *Profiler) Start(p Phase) (stop func()) {
	if pr == nil {
		return func() {}
	}
	start := time.Now()
	return func() { pr.Add(p, time.Since(start)) }
}

// Reset clears all accumulated samples.
func (pr *Profiler) Reset() {
	if pr == nil {
		return
	}
	pr.mu.Lock()
	pr.total = [numPhases]time.Duration{}
	pr.count = [numPhases]int64{}
	pr.mu.Unlock()
}

// Sample is one row of a phase report.
type Sample struct {
	Phase Phase
	Total time.Duration
	Count int64
	Share float64 // fraction of the sum over all phases
}

// Snapshot returns per-phase samples, largest share first.
func (pr *Profiler) Snapshot() []Sample {
	if pr == nil {
		return nil
	}
	pr.mu.Lock()
	totals := pr.total
	counts := pr.count
	pr.mu.Unlock()

	var sum time.Duration
	for _, d := range totals {
		sum += d
	}
	out := make([]Sample, 0, numPhases)
	for p := Phase(0); p < numPhases; p++ {
		s := Sample{Phase: p, Total: totals[p], Count: counts[p]}
		if sum > 0 {
			s.Share = float64(totals[p]) / float64(sum)
		}
		out = append(out, s)
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Total > out[b].Total })
	return out
}

// Report renders the share table in the paper's style.
func (pr *Profiler) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-26s %8s %10s %8s\n", "phase", "share", "total", "samples")
	for _, s := range pr.Snapshot() {
		fmt.Fprintf(&sb, "%-26s %7.1f%% %10s %8d\n",
			s.Phase, s.Share*100, s.Total.Round(time.Microsecond), s.Count)
	}
	return sb.String()
}
