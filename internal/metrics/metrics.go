// Package metrics implements the phase accounting behind the paper's §7.4
// throughput table. The original work profiled expect on a Sun 3 and
// reported CPU shares — "about 40% is spent pattern matching …, 26% in I/O,
// 16% in open, close, and ioctl, 8% in fork, and 5% in timer calls". The
// engine brackets the equivalent code regions with a Profiler so the same
// share table can be regenerated on any host (experiment E2).
package metrics

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Phase identifies one of the paper's cost categories.
type Phase int

const (
	// PhaseMatch is time spent pattern matching to guide the script.
	PhaseMatch Phase = iota
	// PhaseCompile is time spent compiling patterns (amortised by the
	// shared compile cache; one lookup per Expect call, not per wakeup).
	PhaseCompile
	// PhaseIO is time spent reading from and writing to processes.
	PhaseIO
	// PhasePty is time spent locating and initializing ptys ("open,
	// close, and ioctl" in the paper).
	PhasePty
	// PhaseFork is time spent creating processes.
	PhaseFork
	// PhaseTimer is time spent arming and fielding timeouts.
	PhaseTimer
	// PhaseOther is everything else (script interpretation and bookkeeping).
	PhaseOther

	numPhases
)

var phaseNames = [numPhases]string{
	"pattern matching",
	"pattern compile",
	"I/O",
	"open/close/ioctl (pty)",
	"fork",
	"timer",
	"other",
}

func (p Phase) String() string {
	if p < 0 || p >= numPhases {
		return fmt.Sprintf("phase-%d", int(p))
	}
	return phaseNames[p]
}

// Phases lists all phases in report order.
func Phases() []Phase {
	out := make([]Phase, numPhases)
	for i := range out {
		out[i] = Phase(i)
	}
	return out
}

// Profiler accumulates wall time per phase. The zero value is unusable; a
// nil *Profiler is a valid no-op sink, so instrumented code needs no checks
// beyond calling through the pointer.
type Profiler struct {
	mu    sync.Mutex
	total [numPhases]time.Duration
	count [numPhases]int64

	// hists complements the share table with latency distributions;
	// Observe is lock-free and does not touch mu.
	hists [numHists]Histogram
}

// NewProfiler returns an empty profiler.
func NewProfiler() *Profiler { return &Profiler{} }

// Add records d in phase p. Safe on a nil receiver.
func (pr *Profiler) Add(p Phase, d time.Duration) {
	if pr == nil {
		return
	}
	pr.mu.Lock()
	pr.total[p] += d
	pr.count[p]++
	pr.mu.Unlock()
}

// Time runs fn and charges its duration to phase p.
func (pr *Profiler) Time(p Phase, fn func()) {
	if pr == nil {
		fn()
		return
	}
	start := time.Now()
	fn()
	pr.Add(p, time.Since(start))
}

// Start begins a region and returns a stop function charging phase p.
func (pr *Profiler) Start(p Phase) (stop func()) {
	if pr == nil {
		return func() {}
	}
	start := time.Now()
	return func() { pr.Add(p, time.Since(start)) }
}

// Observe records one latency sample in histogram k. Safe on a nil
// receiver; lock-free and allocation-free (hot-path contract).
func (pr *Profiler) Observe(k HistKind, d time.Duration) {
	if pr == nil || k < 0 || k >= numHists {
		return
	}
	pr.hists[k].Observe(d)
}

// Hist returns histogram k (nil on a nil profiler — still a valid sink).
func (pr *Profiler) Hist(k HistKind) *Histogram {
	if pr == nil || k < 0 || k >= numHists {
		return nil
	}
	return &pr.hists[k]
}

// Reset clears all accumulated samples and histograms.
func (pr *Profiler) Reset() {
	if pr == nil {
		return
	}
	pr.mu.Lock()
	pr.total = [numPhases]time.Duration{}
	pr.count = [numPhases]int64{}
	pr.mu.Unlock()
	for i := range pr.hists {
		pr.hists[i].Reset()
	}
}

// Sample is one row of a phase report.
type Sample struct {
	Phase Phase
	Total time.Duration
	Count int64
	Share float64 // fraction of the sum over all phases
}

// Snapshot returns per-phase samples, largest share first.
func (pr *Profiler) Snapshot() []Sample {
	if pr == nil {
		return nil
	}
	pr.mu.Lock()
	totals := pr.total
	counts := pr.count
	pr.mu.Unlock()

	var sum time.Duration
	for _, d := range totals {
		sum += d
	}
	out := make([]Sample, 0, numPhases)
	for p := Phase(0); p < numPhases; p++ {
		s := Sample{Phase: p, Total: totals[p], Count: counts[p]}
		if sum > 0 {
			s.Share = float64(totals[p]) / float64(sum)
		}
		out = append(out, s)
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Total > out[b].Total })
	return out
}

// Report renders the share table in the paper's style (rows sorted by
// total descending, ties kept in phase order by the stable sort).
func (pr *Profiler) Report() string {
	var t alignedTable
	t.row("phase", "share", "total", "samples")
	for _, s := range pr.Snapshot() {
		t.row(s.Phase.String(),
			fmt.Sprintf("%.1f%%", s.Share*100),
			s.Total.Round(time.Microsecond).String(),
			strconv.FormatInt(s.Count, 10))
	}
	return t.String()
}

// HistReport renders the percentile summary of every non-empty histogram,
// in HistKind order.
func (pr *Profiler) HistReport() string {
	if pr == nil {
		return ""
	}
	var t alignedTable
	t.row("latency", "samples", "mean", "p50", "p90", "p99", "max")
	rows := 0
	for _, k := range HistKinds() {
		h := pr.Hist(k)
		if h.Count() == 0 {
			continue
		}
		rows++
		t.row(k.String(),
			strconv.FormatInt(h.Count(), 10),
			h.Mean().String(),
			"<"+h.Percentile(0.50).String(),
			"<"+h.Percentile(0.90).String(),
			"<"+h.Percentile(0.99).String(),
			h.Max().String())
	}
	if rows == 0 {
		return ""
	}
	return t.String()
}
