package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestAddAndSnapshot(t *testing.T) {
	p := NewProfiler()
	p.Add(PhaseMatch, 40*time.Millisecond)
	p.Add(PhaseIO, 60*time.Millisecond)
	p.Add(PhaseIO, 0)
	snap := p.Snapshot()
	if len(snap) != int(numPhases) {
		t.Fatalf("snapshot has %d rows", len(snap))
	}
	// Sorted by total, descending: IO first.
	if snap[0].Phase != PhaseIO || snap[1].Phase != PhaseMatch {
		t.Errorf("order: %v then %v", snap[0].Phase, snap[1].Phase)
	}
	if snap[0].Count != 2 {
		t.Errorf("IO count = %d", snap[0].Count)
	}
	if got := snap[0].Share; got < 0.59 || got > 0.61 {
		t.Errorf("IO share = %f, want 0.6", got)
	}
}

func TestNilProfilerIsNoop(t *testing.T) {
	var p *Profiler
	p.Add(PhaseFork, time.Second) // must not panic
	p.Time(PhaseFork, func() {})
	stop := p.Start(PhaseFork)
	stop()
	if p.Snapshot() != nil {
		t.Error("nil profiler produced samples")
	}
	p.Reset()
}

func TestStartStop(t *testing.T) {
	p := NewProfiler()
	stop := p.Start(PhaseTimer)
	time.Sleep(5 * time.Millisecond)
	stop()
	snap := p.Snapshot()
	if snap[0].Phase != PhaseTimer || snap[0].Total < 4*time.Millisecond {
		t.Errorf("timer sample = %+v", snap[0])
	}
}

func TestReset(t *testing.T) {
	p := NewProfiler()
	p.Add(PhaseMatch, time.Millisecond)
	p.Reset()
	for _, s := range p.Snapshot() {
		if s.Total != 0 || s.Count != 0 {
			t.Errorf("after reset: %+v", s)
		}
	}
}

func TestReportFormat(t *testing.T) {
	p := NewProfiler()
	p.Add(PhaseMatch, 10*time.Millisecond)
	rep := p.Report()
	if !strings.Contains(rep, "pattern matching") || !strings.Contains(rep, "share") {
		t.Errorf("report:\n%s", rep)
	}
}

func TestPhaseNames(t *testing.T) {
	for _, ph := range Phases() {
		if ph.String() == "" || strings.HasPrefix(ph.String(), "phase-") {
			t.Errorf("phase %d has no name", int(ph))
		}
	}
	if Phase(99).String() != "phase-99" {
		t.Errorf("out-of-range phase name: %q", Phase(99).String())
	}
}

func TestConcurrentAdds(t *testing.T) {
	p := NewProfiler()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 100; k++ {
				p.Add(PhaseIO, time.Microsecond)
			}
		}()
	}
	wg.Wait()
	for _, s := range p.Snapshot() {
		if s.Phase == PhaseIO && s.Count != 800 {
			t.Errorf("IO count = %d, want 800", s.Count)
		}
	}
}
