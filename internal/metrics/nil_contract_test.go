package metrics

import (
	"io"
	"testing"
	"time"
)

// TestNilSinkContract pins the package-wide convention in one table: a nil
// pointer to ANY metrics type is a valid no-op sink. Callers thread
// optional instrumentation without nil checks, so every method must
// tolerate a nil receiver — new types and new methods get a row here.
func TestNilSinkContract(t *testing.T) {
	cases := []struct {
		name string
		use  func()
	}{
		{"Profiler", func() {
			var pr *Profiler
			pr.Add(PhaseMatch, time.Millisecond)
			done := pr.Start(PhaseIO)
			done()
			_ = pr.Snapshot()
			_ = pr.Report()
			_ = pr.Hist(HistWakeupToMatch)
			pr.Reset()
			pr.RegisterInto(NewRegistry())
			pr.RegisterInto(nil)
		}},
		{"Counters", func() {
			var c *Counters
			c.Add("k", 1)
			_ = c.Get("k")
			_ = c.Snapshot()
			_ = c.Report()
			c.Reset()
			c.RegisterInto(NewRegistry(), "nil_counters_total", "h", "k")
			c.RegisterInto(nil, "x_total", "h", "k")
		}},
		{"Histogram", func() {
			var h *Histogram
			h.Observe(time.Millisecond)
			_ = h.Count()
			_ = h.Mean()
			_ = h.Max()
			_ = h.Percentile(0.5)
			_ = h.Snapshot()
			_ = h.Summary("x")
			_ = h.Report()
			h.Merge(NewHistogram())
			NewHistogram().Merge(h)
			h.Reset()
		}},
		{"IngestStats", func() {
			var st *IngestStats
			st.AddCopied(1)
			st.AddHandedOff(1)
			st.AddAlloc()
			st.NoteLease(true)
			_ = st.BytesCopied()
			_ = st.BytesHandedOff()
			_ = st.IngestAllocs()
			_ = st.SegmentLeases()
			_ = st.SegmentReuses()
			st.RegisterInto(NewRegistry())
			st.RegisterInto(nil)
		}},
		{"Registry", func() {
			var r *Registry
			r.Gauge("g", "h", func() float64 { return 0 })
			r.Counter("c_total", "h", func() float64 { return 0 })
			r.GaugeVec("gv", "h", "l", func() map[string]float64 { return nil })
			r.CounterVec("cv_total", "h", "l", func() map[string]float64 { return nil })
			r.Histogram("hist_seconds", "h", func() []*Histogram { return nil })
			if err := r.WritePrometheus(io.Discard); err != nil {
				t.Errorf("nil Registry WritePrometheus: %v", err)
			}
			if out := r.RenderPrometheus(); len(out) != 0 {
				t.Errorf("nil Registry rendered %q", out)
			}
			if out := r.Summary(); out != "" {
				t.Errorf("nil Registry Summary = %q", out)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// The contract is simply "does not panic, returns zero values";
			// any panic fails the subtest with its stack.
			tc.use()
		})
	}
}
