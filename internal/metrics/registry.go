package metrics

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Registry names and aggregates the engine's scattered instrumentation —
// Counters maps, lock-free Histograms, IngestStats atomics, per-shard
// scheduler state — into one queryable surface. It is pull-based: a
// registration hands the registry a closure, and nothing is evaluated
// until a render (the /metrics scrape or a -stats summary), so an armed
// registry costs the hot paths nothing.
//
// Families are rendered in sorted name order and, within a labeled
// family, in sorted label-value order, so renders are deterministic and
// the exposition round-trip test can require a fixpoint. A nil *Registry
// is a valid no-op sink, matching the Profiler/Counters convention.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

type familyKind int

const (
	kindGauge familyKind = iota
	kindCounter
	kindHistogram
)

func (k familyKind) String() string {
	switch k {
	case kindGauge:
		return "gauge"
	case kindCounter:
		return "counter"
	default:
		return "histogram"
	}
}

// family is one named metric: either a single value, a labeled set of
// values produced by one snapshot call, or a histogram merged from one or
// more shard-local Histograms at render time.
type family struct {
	name  string
	help  string
	kind  familyKind
	label string // label name for vec families, "" for scalars

	fn    func() float64            // scalar gauge/counter
	vec   func() map[string]float64 // labeled gauge/counter
	hists func() []*Histogram       // histogram sources, merged per render
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{fams: map[string]*family{}} }

// validName is the Prometheus metric/label name grammar. Registration is
// programmer-driven (names are compile-time literals), so violations and
// duplicate names panic instead of returning errors nobody checks.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func (r *Registry) register(f *family) {
	if r == nil {
		return
	}
	if !validName(f.name) {
		panic("metrics: invalid metric name " + strconv.Quote(f.name))
	}
	if f.label != "" && !validName(f.label) {
		panic("metrics: invalid label name " + strconv.Quote(f.label))
	}
	if strings.ContainsAny(f.help, "\n") {
		panic("metrics: help text must be a single line: " + strconv.Quote(f.name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.fams == nil {
		r.fams = map[string]*family{}
	}
	if _, dup := r.fams[f.name]; dup {
		panic("metrics: duplicate metric name " + strconv.Quote(f.name))
	}
	r.fams[f.name] = f
}

// Gauge registers a single instantaneous value, sampled at render time.
func (r *Registry) Gauge(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, kind: kindGauge, fn: fn})
}

// Counter registers a single monotonically-increasing total.
func (r *Registry) Counter(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, kind: kindCounter, fn: fn})
}

// GaugeVec registers a labeled gauge family. fn is called once per render
// and must return the full label-value → value set, so one snapshot call
// yields a consistent view across the family's samples.
func (r *Registry) GaugeVec(name, help, label string, fn func() map[string]float64) {
	r.register(&family{name: name, help: help, kind: kindGauge, label: label, vec: fn})
}

// CounterVec registers a labeled counter family (one snapshot per render,
// like GaugeVec).
func (r *Registry) CounterVec(name, help, label string, fn func() map[string]float64) {
	r.register(&family{name: name, help: help, kind: kindCounter, label: label, vec: fn})
}

// Histogram registers a latency histogram whose samples live in one or
// more shard-local Histograms. At render time the sources are folded with
// the lock-free Merge into a scratch histogram, so per-shard Observe
// calls never contend and the exposition still shows one fleet-wide
// distribution. Observations are exported in seconds per the Prometheus
// convention.
func (r *Registry) Histogram(name, help string, src func() []*Histogram) {
	r.register(&family{name: name, help: help, kind: kindHistogram, hists: src})
}

// families returns the registered families sorted by name. Callbacks are
// evaluated by the caller after the lock is released, so a slow source
// (e.g. a scheduler snapshot) never blocks registration.
func (r *Registry) families() []*family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		out = append(out, f)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// formatVal renders a sample value the way the exposition parser expects
// to re-render it: shortest round-trippable float, with the Prometheus
// spellings for the non-finite values.
func formatVal(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote, and newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var sb strings.Builder
	for _, c := range s {
		switch c {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(c)
		}
	}
	return sb.String()
}

// vecSample is one evaluated labeled sample, sorted for deterministic
// renders.
type vecSample struct {
	labelVal string
	value    float64
}

func (f *family) vecSamples() []vecSample {
	m := f.vec()
	out := make([]vecSample, 0, len(m))
	for k, v := range m {
		out = append(out, vecSample{labelVal: k, value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].labelVal < out[j].labelVal })
	return out
}

// merged folds the family's histogram sources into one scratch histogram.
func (f *family) merged() *Histogram {
	m := NewHistogram()
	for _, h := range f.hists() {
		m.Merge(h)
	}
	return m
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): a # HELP and # TYPE line per family, samples
// beneath, histograms as cumulative _bucket/_sum/_count series with le
// edges in seconds.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	var sb strings.Builder
	for _, f := range r.families() {
		fmt.Fprintf(&sb, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&sb, "# TYPE %s %s\n", f.name, f.kind)
		switch {
		case f.kind == kindHistogram:
			h := f.merged()
			var cum int64
			for _, b := range h.Snapshot() {
				cum += b.Count
				fmt.Fprintf(&sb, "%s_bucket{le=%q} %d\n",
					f.name, formatVal(b.High.Seconds()), cum)
			}
			fmt.Fprintf(&sb, "%s_bucket{le=\"+Inf\"} %d\n", f.name, h.Count())
			fmt.Fprintf(&sb, "%s_sum %s\n", f.name,
				formatVal(float64(h.sum.Load())/float64(time.Second)))
			fmt.Fprintf(&sb, "%s_count %d\n", f.name, h.Count())
		case f.vec != nil:
			for _, s := range f.vecSamples() {
				fmt.Fprintf(&sb, "%s{%s=\"%s\"} %s\n",
					f.name, f.label, escapeLabel(s.labelVal), formatVal(s.value))
			}
		default:
			fmt.Fprintf(&sb, "%s %s\n", f.name, formatVal(f.fn()))
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// RenderPrometheus renders the exposition into a fresh buffer.
func (r *Registry) RenderPrometheus() []byte {
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	return buf.Bytes()
}

// Summary renders every family through the shared aligned-table formatter
// (the goexpect -stats exit report). Histograms expand to one row per
// digest statistic; everything else is one name/value row.
func (r *Registry) Summary() string {
	if r == nil {
		return ""
	}
	fams := r.families()
	if len(fams) == 0 {
		return ""
	}
	var t alignedTable
	t.row("metric", "value")
	for _, f := range fams {
		switch {
		case f.kind == kindHistogram:
			h := f.merged()
			t.row(f.name+" count", strconv.FormatInt(h.Count(), 10))
			if h.Count() == 0 {
				continue
			}
			t.row(f.name+" mean", h.Mean().String())
			t.row(f.name+" p50", "<"+h.Percentile(0.50).String())
			t.row(f.name+" p90", "<"+h.Percentile(0.90).String())
			t.row(f.name+" p99", "<"+h.Percentile(0.99).String())
			t.row(f.name+" max", h.Max().String())
		case f.vec != nil:
			for _, s := range f.vecSamples() {
				t.row(fmt.Sprintf("%s{%s=%q}", f.name, f.label, escapeLabel(s.labelVal)),
					formatVal(s.value))
			}
		default:
			t.row(f.name, formatVal(f.fn()))
		}
	}
	return t.String()
}

// RegisterInto publishes the profiler's phase totals and latency
// histograms under the expect_ namespace: one labeled seconds/samples
// counter pair for the §7.4 share table, and one histogram family per
// HistKind. Safe on a nil profiler (registers nothing).
func (pr *Profiler) RegisterInto(r *Registry) {
	if pr == nil || r == nil {
		return
	}
	r.CounterVec("expect_phase_seconds_total",
		"Wall seconds charged per engine phase (the paper's section 7.4 share table).",
		"phase", func() map[string]float64 {
			out := make(map[string]float64, numPhases)
			for _, s := range pr.Snapshot() {
				out[phaseSlug(s.Phase)] = s.Total.Seconds()
			}
			return out
		})
	r.CounterVec("expect_phase_samples_total",
		"Samples charged per engine phase.",
		"phase", func() map[string]float64 {
			out := make(map[string]float64, numPhases)
			for _, s := range pr.Snapshot() {
				out[phaseSlug(s.Phase)] = float64(s.Count)
			}
			return out
		})
	for _, k := range HistKinds() {
		k := k
		r.Histogram("expect_"+strings.ReplaceAll(k.String(), "-", "_")+"_seconds",
			"Latency distribution of the "+k.String()+" span.",
			func() []*Histogram { return []*Histogram{pr.Hist(k)} })
	}
}

// phaseSlug is the label-safe spelling of a phase name.
func phaseSlug(p Phase) string {
	s := strings.ToLower(p.String())
	for _, cut := range []string{" (pty)", "/"} {
		s = strings.ReplaceAll(s, cut, " ")
	}
	return strings.ReplaceAll(strings.TrimSpace(s), " ", "_")
}

// RegisterInto publishes the ingest-path byte and allocation totals.
// Safe on nil stats (registers nothing).
func (st *IngestStats) RegisterInto(r *Registry) {
	if st == nil || r == nil {
		return
	}
	counter := func(name, help string, fn func() int64) {
		r.Counter(name, help, func() float64 { return float64(fn()) })
	}
	counter("expect_ingest_bytes_copied_total",
		"Bytes that crossed the socket ingest path by copy.", st.BytesCopied)
	counter("expect_ingest_bytes_handed_off_total",
		"Bytes that crossed the socket ingest path by segment ownership transfer.", st.BytesHandedOff)
	counter("expect_ingest_allocs_total",
		"Buffer allocations on the ingest path.", st.IngestAllocs)
	counter("expect_ingest_segment_leases_total",
		"Pool segments leased to connections.", st.SegmentLeases)
	counter("expect_ingest_segment_reuses_total",
		"Pool segments returned and reused.", st.SegmentReuses)
}

// RegisterInto publishes a Counters map as one labeled counter family.
// Safe on nil counters (registers nothing).
func (c *Counters) RegisterInto(r *Registry, name, help, label string) {
	if c == nil || r == nil {
		return
	}
	r.CounterVec(name, help, label, func() map[string]float64 {
		snap := c.Snapshot()
		out := make(map[string]float64, len(snap))
		for k, v := range snap {
			out[k] = float64(v)
		}
		return out
	})
}
