package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryRenderDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Gauge("b_gauge", "Second alphabetically.", func() float64 { return 2.5 })
	r.Counter("a_counter", "First alphabetically.", func() float64 { return 7 })
	r.GaugeVec("c_vec", "Labeled family.", "shard", func() map[string]float64 {
		return map[string]float64{"1": 10, "0": 20} // map order must not leak
	})
	first := string(r.RenderPrometheus())
	for i := 0; i < 10; i++ {
		if got := string(r.RenderPrometheus()); got != first {
			t.Fatalf("render not deterministic:\n%s\nvs\n%s", first, got)
		}
	}
	// Families sorted by name, vec samples by label value.
	ia, ib, ic := strings.Index(first, "a_counter"), strings.Index(first, "b_gauge"), strings.Index(first, "c_vec")
	if !(ia < ib && ib < ic) {
		t.Errorf("families not sorted by name:\n%s", first)
	}
	if i0, i1 := strings.Index(first, `c_vec{shard="0"}`), strings.Index(first, `c_vec{shard="1"}`); !(i0 >= 0 && i0 < i1) {
		t.Errorf("vec samples not sorted by label:\n%s", first)
	}
	if !strings.Contains(first, "# TYPE a_counter counter") ||
		!strings.Contains(first, "# TYPE b_gauge gauge") {
		t.Errorf("missing TYPE lines:\n%s", first)
	}
	if !strings.Contains(first, "a_counter 7\n") || !strings.Contains(first, "b_gauge 2.5\n") {
		t.Errorf("missing samples:\n%s", first)
	}
}

func TestRegistryHistogramExposition(t *testing.T) {
	h := NewHistogram()
	h.Observe(1500 * time.Nanosecond) // bucket (1024,2048]
	h.Observe(1600 * time.Nanosecond)
	h.Observe(3 * time.Microsecond) // bucket (2048,4096]
	r := NewRegistry()
	r.Histogram("lat_seconds", "Latency.", func() []*Histogram { return []*Histogram{h} })
	out := string(r.RenderPrometheus())
	if !strings.Contains(out, "# TYPE lat_seconds histogram") {
		t.Fatalf("missing histogram TYPE:\n%s", out)
	}
	// Buckets are cumulative and end with +Inf == count.
	if !strings.Contains(out, `lat_seconds_bucket{le="2.048e-06"} 2`) {
		t.Errorf("first bucket wrong:\n%s", out)
	}
	if !strings.Contains(out, `lat_seconds_bucket{le="4.096e-06"} 3`) {
		t.Errorf("cumulative second bucket wrong:\n%s", out)
	}
	if !strings.Contains(out, `lat_seconds_bucket{le="+Inf"} 3`) {
		t.Errorf("+Inf bucket wrong:\n%s", out)
	}
	if !strings.Contains(out, "lat_seconds_count 3") {
		t.Errorf("count sample wrong:\n%s", out)
	}
	if !strings.Contains(out, "lat_seconds_sum 6.1e-06") {
		t.Errorf("sum sample wrong (want 6.1e-06):\n%s", out)
	}
}

func TestRegistryPanicsOnBadNames(t *testing.T) {
	mustPanic := func(name string, f func(r *Registry)) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f(NewRegistry())
	}
	mustPanic("invalid metric name", func(r *Registry) {
		r.Gauge("bad-name", "hyphen is not legal", func() float64 { return 0 })
	})
	mustPanic("empty name", func(r *Registry) {
		r.Counter("", "empty", func() float64 { return 0 })
	})
	mustPanic("leading digit", func(r *Registry) {
		r.Gauge("1up", "digit first", func() float64 { return 0 })
	})
	mustPanic("multiline help", func(r *Registry) {
		r.Gauge("ok_name", "line one\nline two", func() float64 { return 0 })
	})
	mustPanic("duplicate name", func(r *Registry) {
		r.Gauge("dup", "once", func() float64 { return 0 })
		r.Gauge("dup", "twice", func() float64 { return 0 })
	})
	mustPanic("duplicate across kinds", func(r *Registry) {
		r.Counter("dup2", "as counter", func() float64 { return 0 })
		r.Histogram("dup2", "as histogram", func() []*Histogram { return nil })
	})
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.Observe(1 * time.Microsecond)
	a.Observe(2 * time.Millisecond)
	b.Observe(3 * time.Microsecond)
	b.Observe(5 * time.Second)

	m := NewHistogram()
	m.Merge(a)
	m.Merge(b)
	if got := m.Count(); got != 4 {
		t.Fatalf("merged Count = %d, want 4", got)
	}
	if got, want := m.Max(), 5*time.Second; got != want {
		t.Errorf("merged Max = %v, want %v", got, want)
	}
	wantMean := (1*time.Microsecond + 2*time.Millisecond + 3*time.Microsecond + 5*time.Second) / 4
	if got := m.Mean(); got != wantMean {
		t.Errorf("merged Mean = %v, want %v", got, wantMean)
	}
	// Bucket counts are the exact sums: the merged snapshot covers every
	// source observation.
	var total int64
	for _, bk := range m.Snapshot() {
		total += bk.Count
	}
	if total != 4 {
		t.Errorf("merged snapshot holds %d observations, want 4", total)
	}
	// Merging in the other order gives the identical distribution.
	m2 := NewHistogram()
	m2.Merge(b)
	m2.Merge(a)
	if m2.Report() != m.Report() {
		t.Errorf("merge is order-sensitive:\n%s\nvs\n%s", m.Report(), m2.Report())
	}
	// Sources are untouched.
	if a.Count() != 2 || b.Count() != 2 {
		t.Errorf("Merge mutated a source: a=%d b=%d", a.Count(), b.Count())
	}
}

func TestHistogramMergeConcurrentObserve(t *testing.T) {
	src := NewHistogram()
	dst := NewHistogram()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			src.Observe(time.Duration(i%4096) * time.Microsecond)
		}
	}()
	for i := 0; i < 100; i++ {
		dst.Merge(src)
	}
	close(stop)
	wg.Wait()
	// No invariant on the merged totals under concurrent Observe (the
	// merge is approximate by contract) — the test is that nothing races
	// or panics, and the destination is monotone non-negative.
	if dst.Count() < 0 {
		t.Fatalf("merged count went negative: %d", dst.Count())
	}
}

func TestHistogramPercentileEdges(t *testing.T) {
	// Empty: every percentile is zero.
	h := NewHistogram()
	for _, p := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Percentile(p); got != 0 {
			t.Errorf("empty Percentile(%v) = %v, want 0", p, got)
		}
	}
	// Single observation: every percentile lands in its bucket.
	h.Observe(100 * time.Microsecond)
	lo, hi := 50*time.Microsecond, 200*time.Microsecond
	for _, p := range []float64{0, 0.5, 0.99, 1} {
		got := h.Percentile(p)
		if got < lo || got > hi {
			t.Errorf("single-obs Percentile(%v) = %v, want within [%v, %v]", p, got, lo, hi)
		}
	}
	// Concurrent Observe during the percentile walk must not panic or
	// return something wild (the walk reads each bucket once).
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			h.Observe(time.Duration(i%1000) * time.Microsecond)
		}
	}()
	for i := 0; i < 1000; i++ {
		if got := h.Percentile(0.5); got < 0 {
			t.Fatalf("Percentile went negative under concurrent Observe: %v", got)
		}
	}
	close(stop)
	wg.Wait()
}

func TestRegistrySummary(t *testing.T) {
	h := NewHistogram()
	h.Observe(time.Millisecond)
	r := NewRegistry()
	r.Gauge("live", "Live things.", func() float64 { return 3 })
	r.Histogram("lat_seconds", "Latency.", func() []*Histogram { return []*Histogram{h} })
	out := r.Summary()
	for _, want := range []string{"metric", "value", "live", "3", "lat_seconds count", "lat_seconds p50"} {
		if !strings.Contains(out, want) {
			t.Errorf("Summary missing %q:\n%s", want, out)
		}
	}
	// Aligned-table shape: no trailing spaces.
	for _, line := range strings.Split(out, "\n") {
		if line != strings.TrimRight(line, " ") {
			t.Errorf("trailing spaces in summary line %q", line)
		}
	}
}

func TestProfilerRegisterInto(t *testing.T) {
	pr := NewProfiler()
	pr.Add(PhaseMatch, 2*time.Millisecond)
	pr.Hist(HistWakeupToMatch).Observe(30 * time.Microsecond)
	r := NewRegistry()
	pr.RegisterInto(r)
	out := string(r.RenderPrometheus())
	for _, want := range []string{
		`expect_phase_seconds_total{phase="pattern_matching"} 0.002`,
		`expect_phase_samples_total{phase="pattern_matching"} 1`,
		"# TYPE expect_wakeup_to_match_seconds histogram",
		"expect_wakeup_to_match_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestIngestStatsRegisterInto(t *testing.T) {
	st := &IngestStats{}
	st.AddCopied(100)
	st.AddHandedOff(200)
	st.AddAlloc()
	st.NoteLease(true)
	st.NoteLease(false)
	r := NewRegistry()
	st.RegisterInto(r)
	out := string(r.RenderPrometheus())
	for _, want := range []string{
		"expect_ingest_bytes_copied_total 100",
		"expect_ingest_bytes_handed_off_total 200",
		"expect_ingest_allocs_total 1",
		"expect_ingest_segment_leases_total 2",
		"expect_ingest_segment_reuses_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}
