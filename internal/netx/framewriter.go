package netx

import (
	"net"
	"sync"

	"repro/internal/netx/mux"
)

// frameWriterHighWater bounds the coalescing buffer: a writer that finds
// this many bytes already queued behind a stalled peer parks until the
// flusher drains below it, so a slow reader backpressures the whole
// connection instead of growing the heap.
const frameWriterHighWater = 1 << 20

// frameWriter is the group-commit write path shared by both ends of a
// multiplexed connection. A frame write appends to the pending buffer
// under the lock; the first writer to find no flush in flight becomes
// the flusher and keeps writing swapped batches until pending is empty,
// while concurrent writers append and return immediately. At 100k
// streams over a few dozen sockets this turns the syscall count from
// one-per-frame into one-per-batch — the difference between the gateway
// spending its single core in the kernel and spending it matching — and
// when the connection is idle the writer flushes its own frame at once,
// so nothing waits on a timer.
//
// Ordering is append order: whoever holds the lock first is on the wire
// first, which preserves the per-stream OPEN < DATA < CLOSE discipline
// both sides rely on. A non-flusher's frames are on the wire only after
// the flusher's next batch completes; its nil return means "accepted",
// and a later socket error surfaces through fail and connection
// teardown, exactly like bytes sitting in the kernel buffer when the
// peer vanishes.
type frameWriter struct {
	c net.Conn

	mu       sync.Mutex
	unblock  sync.Cond // pending dropped below high water, or err set
	pending  []byte
	spare    []byte // retired batch, reused for the next swap
	flushing bool
	err      error
}

func newFrameWriter(c net.Conn) *frameWriter {
	w := &frameWriter{c: c}
	w.unblock.L = &w.mu
	return w
}

// write queues one frame and flushes if no flush is in flight. The
// payload is copied before write returns, so callers may reuse it.
func (w *frameWriter) write(f mux.Frame) error {
	w.mu.Lock()
	for w.err == nil && w.flushing && len(w.pending) >= frameWriterHighWater {
		w.unblock.Wait()
	}
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	w.pending = mux.AppendFrame(w.pending, f)
	if w.flushing {
		w.mu.Unlock()
		return nil
	}
	w.flushing = true
	for w.err == nil && len(w.pending) > 0 {
		batch := w.pending
		w.pending = w.spare[:0]
		w.mu.Unlock()
		_, err := w.c.Write(batch)
		w.mu.Lock()
		w.spare = batch
		if err != nil && w.err == nil {
			w.err = err
		}
		w.unblock.Broadcast()
	}
	w.flushing = false
	err := w.err
	w.unblock.Broadcast()
	w.mu.Unlock()
	return err
}

// fail poisons the writer so queued and future writers return err
// instead of blocking; the in-flight syscall (if any) is cut by the
// caller closing the socket.
func (w *frameWriter) fail(err error) {
	w.mu.Lock()
	if w.err == nil {
		w.err = err
	}
	w.unblock.Broadcast()
	w.mu.Unlock()
}
