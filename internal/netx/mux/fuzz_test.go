package mux

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzMuxFrameRoundTrip is the adversarial decoder fuzz, styled after
// FuzzJournalRoundTrip: arbitrary bytes hit the production decoder and
// must partition cleanly into a well-formed frame prefix and, when the
// input is not entirely well-formed, one positioned *FrameError — never
// a panic, never an unpositioned error, never an allocation past
// MaxPayload. The well-formed prefix must re-encode byte-identically
// (the canonical fixpoint property) and end exactly where the decoder
// says it does.
//
// Seeds cover the attack shapes the protocol must survive: truncated
// headers and payloads, unknown types, oversized length prefixes,
// zero-stream data, and frames of two sessions interleaved mid-stream.
func FuzzMuxFrameRoundTrip(f *testing.F) {
	// The production encoder's own output: a two-session interleaved
	// gateway dialogue with ping, refusal, and drain frames.
	good := wire(dialogueFrames()...)
	f.Add(good)
	f.Add(good[:len(good)-1])        // truncated final payload
	f.Add(good[:HeaderLen-2])        // truncated first header
	f.Add(good[:len(good)-3])        // mid-payload cut
	f.Add([]byte{})                  // empty input is a clean EOF
	f.Add(make([]byte, HeaderLen*3)) // all-zero headers: unknown type 0

	unknown := append([]byte{}, good...)
	unknown[4] = 0x7f // first frame's type byte
	f.Add(unknown)

	oversized := wire(Frame{Type: TypeData, Stream: 9, Payload: []byte("x")})
	oversized[0], oversized[1] = 0xff, 0xff // length prefix claims ~4 GiB
	f.Add(oversized)

	zeroStream := wire(Frame{Type: TypeData, Stream: 1, Payload: []byte("hi")})
	zeroStream[6], zeroStream[7], zeroStream[8], zeroStream[9] = 0, 0, 0, 0
	f.Add(zeroStream)

	f.Add(wire(
		Frame{Type: TypeData, Stream: 2, Payload: bytes.Repeat([]byte("ab"), 600)},
		Frame{Type: TypeGoaway, Stream: 0, Payload: []byte("draining")},
		Frame{Type: TypeClose, Stream: 2, Flags: FlagHalfClose | FlagError},
	))

	f.Fuzz(func(t *testing.T, raw []byte) {
		dec := NewDecoder(bytes.NewReader(raw))
		var reenc []byte
		for {
			fr, err := dec.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				var fe *FrameError
				if !errors.As(err, &fe) {
					t.Fatalf("decode error is %T (%v), want *FrameError", err, err)
				}
				if fe.Offset < 0 || fe.Offset > int64(len(raw)) {
					t.Fatalf("error offset %d out of input bounds [0,%d]", fe.Offset, len(raw))
				}
				if fe.Offset != dec.Offset() {
					t.Fatalf("error offset %d != decoder offset %d", fe.Offset, dec.Offset())
				}
				if fe.Error() == "" {
					t.Fatal("empty error message")
				}
				break
			}
			if len(fr.Payload) > MaxPayload {
				t.Fatalf("decoder produced %d-byte payload past MaxPayload", len(fr.Payload))
			}
			// Keeping the payload across Next calls requires a copy;
			// AppendFrame copies, so re-encoding now is safe.
			reenc = AppendFrame(reenc, fr)
		}
		// Over-allocation bound: the reused payload buffer never grows past
		// one frame, no matter what the length prefixes claimed.
		if cap(dec.buf) > MaxPayload {
			t.Fatalf("decoder buffer grew to %d, past MaxPayload %d", cap(dec.buf), MaxPayload)
		}
		// Fixpoint: the decoded prefix re-encodes to exactly the bytes the
		// decoder says it consumed.
		if int64(len(reenc)) != dec.Offset() {
			t.Fatalf("re-encoded %d bytes, decoder consumed %d", len(reenc), dec.Offset())
		}
		if !bytes.Equal(reenc, raw[:len(reenc)]) {
			t.Fatalf("re-encoding is not a fixpoint:\n got %x\nwant %x", reenc, raw[:len(reenc)])
		}
		// And the prefix is stable: decoding it again consumes all of it.
		dec2 := NewDecoder(bytes.NewReader(reenc))
		for {
			if _, err := dec2.Next(); err == io.EOF {
				break
			} else if err != nil {
				t.Fatalf("good prefix does not re-decode: %v", err)
			}
		}
		if dec2.Offset() != int64(len(reenc)) {
			t.Fatalf("prefix re-decode consumed %d of %d", dec2.Offset(), len(reenc))
		}
	})
}
