// Package mux is the framed wire protocol of the session gateway: a
// length-prefixed binary framing that lets one TCP connection host many
// concurrent expect sessions, each identified by a stream id.
//
// Frame grammar (all integers big-endian):
//
//	frame  := header payload
//	header := length(u32) type(u8) flags(u8) stream(u32)   — 10 bytes
//
// length counts payload bytes only and is bounded by MaxPayload, so a
// hostile peer cannot make the decoder allocate more than one frame's
// worth of memory. Five frame types:
//
//	OPEN   client → server   open stream id; payload = program NUL tenant
//	DATA   both directions   payload = session bytes for stream id
//	CLOSE  both directions   stream is over. FlagHalfClose from the
//	                         client half-closes (program stdin EOF, its
//	                         output keeps flowing); without the flag the
//	                         close is a cancel and the server discards
//	                         further output. From the server it reports
//	                         the program returned (FlagError = it
//	                         returned an error).
//	PING   both directions   liveness probe on stream 0; FlagAck replies.
//	GOAWAY server → client   stream id N>0: that OPEN was refused,
//	                         payload = reason ("quota", "draining", ...).
//	                         stream id 0: the connection is draining —
//	                         open no new streams; in-flight streams run
//	                         to completion (the hot-drain handshake).
//
// The decoder is strict and positioned: any malformed input — truncated
// header or payload, unknown type, oversized length, zero stream id on a
// stream-scoped frame — fails with a *FrameError carrying the byte
// offset of the offending frame, and never panics. Every well-formed
// frame re-encodes byte-identically (the encoding has no redundancy),
// which is the round-trip property FuzzMuxFrameRoundTrip pins.
package mux

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
)

// HeaderLen is the fixed frame header size in bytes.
const HeaderLen = 10

// MaxPayload bounds one frame's payload. A decoder never allocates more
// than this for a single frame, so a hostile length prefix cannot drive
// memory allocation.
const MaxPayload = 64 << 10

// Type is the frame type tag.
type Type uint8

// Frame types. Zero is deliberately invalid so an all-zero header is
// rejected rather than silently decoded.
const (
	TypeOpen   Type = 1
	TypeData   Type = 2
	TypeClose  Type = 3
	TypePing   Type = 4
	TypeGoaway Type = 5
)

func (t Type) String() string {
	switch t {
	case TypeOpen:
		return "OPEN"
	case TypeData:
		return "DATA"
	case TypeClose:
		return "CLOSE"
	case TypePing:
		return "PING"
	case TypeGoaway:
		return "GOAWAY"
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Frame flags. Bits are interpreted per type; unknown bits round-trip
// verbatim so a newer peer's flags survive re-encoding.
const (
	// FlagHalfClose on CLOSE: only the client→server direction ends
	// (program stdin EOF); the program's remaining output still flows.
	FlagHalfClose uint8 = 1 << 0
	// FlagError on a server CLOSE: the program returned an error.
	FlagError uint8 = 1 << 1
	// FlagAck on PING marks the reply.
	FlagAck uint8 = 1 << 0
)

// Frame is one decoded protocol frame. Payload returned by Decoder.Next
// aliases the decoder's internal buffer and is valid only until the next
// Next call; callers that keep it must copy.
type Frame struct {
	Type    Type
	Flags   uint8
	Stream  uint32
	Payload []byte
}

// EncodedLen reports the wire size of f.
func (f Frame) EncodedLen() int { return HeaderLen + len(f.Payload) }

// AppendFrame appends the wire encoding of f to dst. Frames are
// validated on the way out too — an oversized payload or an invalid
// type/stream combination panics, because the sender constructing such a
// frame is a programming error the peer would reject anyway.
func AppendFrame(dst []byte, f Frame) []byte {
	if len(f.Payload) > MaxPayload {
		panic(fmt.Sprintf("mux: frame payload %d exceeds MaxPayload %d", len(f.Payload), MaxPayload))
	}
	if err := validate(f.Type, f.Stream, len(f.Payload)); err != nil {
		panic("mux: encoding invalid frame: " + err.Error())
	}
	var hdr [HeaderLen]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(f.Payload)))
	hdr[4] = uint8(f.Type)
	hdr[5] = f.Flags
	binary.BigEndian.PutUint32(hdr[6:10], f.Stream)
	dst = append(dst, hdr[:]...)
	return append(dst, f.Payload...)
}

// validate holds the type/stream rules shared by encoder and decoder.
func validate(t Type, stream uint32, plen int) error {
	switch t {
	case TypeOpen, TypeData, TypeClose:
		if stream == 0 {
			return fmt.Errorf("%s frame on stream 0", t)
		}
	case TypePing:
		if stream != 0 {
			return fmt.Errorf("PING frame on stream %d, must be 0", stream)
		}
	case TypeGoaway:
		// Any stream: 0 = connection drain, N = refused open.
	default:
		return fmt.Errorf("unknown frame type %d", uint8(t))
	}
	if t == TypePing && plen > 64 {
		return fmt.Errorf("PING payload %d bytes, max 64", plen)
	}
	return nil
}

// FrameError is a positioned decode failure: Offset is the byte offset
// (from the start of the decoder's stream) of the frame header that
// failed to decode.
type FrameError struct {
	Offset int64
	Msg    string
}

func (e *FrameError) Error() string {
	return fmt.Sprintf("mux: offset %d: %s", e.Offset, e.Msg)
}

// Decoder reads frames off a byte stream, tracking its offset for
// positioned errors. The payload buffer is reused across Next calls and
// never grows past MaxPayload.
type Decoder struct {
	r   io.Reader
	off int64
	hdr [HeaderLen]byte
	buf []byte
}

// NewDecoder wraps r. The caller supplies buffering (bufio) if the
// reader is unbuffered; the decoder issues exactly two reads per frame.
func NewDecoder(r io.Reader) *Decoder { return &Decoder{r: r} }

// Offset reports how many bytes of well-formed frames have been
// consumed — after an error, the offset of the frame that failed.
func (d *Decoder) Offset() int64 { return d.off }

// Next decodes one frame. io.EOF is returned only at a clean frame
// boundary; any mid-frame truncation or malformed header fails with a
// *FrameError positioned at the frame's start. The returned payload is
// valid only until the next call.
func (d *Decoder) Next() (Frame, error) {
	start := d.off
	n, err := io.ReadFull(d.r, d.hdr[:])
	if err != nil {
		if n == 0 && (err == io.EOF || err == io.ErrUnexpectedEOF) {
			return Frame{}, io.EOF
		}
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return Frame{}, &FrameError{Offset: start, Msg: fmt.Sprintf("truncated header: %d of %d bytes", n, HeaderLen)}
		}
		return Frame{}, err
	}
	plen := binary.BigEndian.Uint32(d.hdr[0:4])
	t := Type(d.hdr[4])
	flags := d.hdr[5]
	stream := binary.BigEndian.Uint32(d.hdr[6:10])
	if plen > MaxPayload {
		return Frame{}, &FrameError{Offset: start, Msg: fmt.Sprintf("payload length %d exceeds max %d", plen, MaxPayload)}
	}
	if verr := validate(t, stream, int(plen)); verr != nil {
		return Frame{}, &FrameError{Offset: start, Msg: verr.Error()}
	}
	if int(plen) > cap(d.buf) {
		d.buf = make([]byte, plen)
	}
	d.buf = d.buf[:plen]
	if k, err := io.ReadFull(d.r, d.buf); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return Frame{}, &FrameError{Offset: start, Msg: fmt.Sprintf("truncated payload: %d of %d bytes", k, plen)}
		}
		return Frame{}, err
	}
	d.off += int64(HeaderLen) + int64(plen)
	return Frame{Type: t, Flags: flags, Stream: stream, Payload: d.buf}, nil
}

// AppendOpen appends an OPEN payload: program NUL tenant. Program names
// must be NUL-free (enforced at the session layer by ParseOpen).
func AppendOpen(dst []byte, program, tenant string) []byte {
	dst = append(dst, program...)
	dst = append(dst, 0)
	return append(dst, tenant...)
}

// ParseOpen splits an OPEN payload into program and tenant.
func ParseOpen(p []byte) (program, tenant string, err error) {
	i := bytes.IndexByte(p, 0)
	if i < 0 {
		return "", "", fmt.Errorf("mux: OPEN payload missing program/tenant separator")
	}
	if i == 0 {
		return "", "", fmt.Errorf("mux: OPEN payload has empty program name")
	}
	if bytes.IndexByte(p[i+1:], 0) >= 0 {
		return "", "", fmt.Errorf("mux: OPEN payload has stray NUL in tenant")
	}
	return string(p[:i]), string(p[i+1:]), nil
}
