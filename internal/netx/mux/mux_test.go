package mux

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

// wire encodes a frame sequence the way both gateway endpoints do.
func wire(frames ...Frame) []byte {
	var b []byte
	for _, f := range frames {
		b = AppendFrame(b, f)
	}
	return b
}

// dialogueFrames is a realistic gateway exchange: two interleaved
// sessions on one connection, a ping, a refusal, and a drain notice.
func dialogueFrames() []Frame {
	return []Frame{
		{Type: TypeOpen, Stream: 1, Payload: AppendOpen(nil, "echo", "acme")},
		{Type: TypeOpen, Stream: 3, Payload: AppendOpen(nil, "slow", "acme")},
		{Type: TypeData, Stream: 1, Payload: []byte("m0\n")},
		{Type: TypeData, Stream: 3, Payload: []byte("hello there\n")},
		{Type: TypePing, Stream: 0, Payload: []byte("p1")},
		{Type: TypePing, Stream: 0, Flags: FlagAck, Payload: []byte("p1")},
		{Type: TypeData, Stream: 1, Payload: []byte("echo:m0\n")},
		{Type: TypeGoaway, Stream: 5, Payload: []byte("quota")},
		{Type: TypeClose, Stream: 1, Flags: FlagHalfClose},
		{Type: TypeClose, Stream: 1},
		{Type: TypeGoaway, Stream: 0, Payload: []byte("draining")},
		{Type: TypeClose, Stream: 3, Flags: FlagError, Payload: []byte("boom")},
	}
}

func TestFrameRoundTrip(t *testing.T) {
	want := dialogueFrames()
	raw := wire(want...)
	dec := NewDecoder(bytes.NewReader(raw))
	for i, w := range want {
		f, err := dec.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.Type != w.Type || f.Flags != w.Flags || f.Stream != w.Stream || !bytes.Equal(f.Payload, w.Payload) {
			t.Fatalf("frame %d: got %+v want %+v", i, f, w)
		}
	}
	if _, err := dec.Next(); err != io.EOF {
		t.Fatalf("want io.EOF at the end, got %v", err)
	}
	if dec.Offset() != int64(len(raw)) {
		t.Fatalf("decoder consumed %d of %d bytes", dec.Offset(), len(raw))
	}
}

func TestDecoderPositionedErrors(t *testing.T) {
	good := wire(dialogueFrames()[:3]...)
	cases := []struct {
		name string
		raw  []byte
		want string // substring of the error
	}{
		{"truncated header", good[:len(good)-HeaderLen-3+2], "truncated header"},
		{"truncated payload", good[:len(good)-1], "truncated payload"},
		{"unknown type", wireBad(good, func(h []byte) { h[4] = 9 }), "unknown frame type 9"},
		{"oversized length", wireBad(good, func(h []byte) { h[0] = 0xff }), "exceeds max"},
		{"data on stream 0", wireBad(good, func(h []byte) { h[4] = byte(TypeData); h[6], h[7], h[8], h[9] = 0, 0, 0, 0 }), "DATA frame on stream 0"},
		{"ping on a stream", wireBad(good, func(h []byte) { h[4] = byte(TypePing); h[9] = 7; h[0], h[1], h[2], h[3] = 0, 0, 0, 0 }), "must be 0"},
		{"all zero header", append(append([]byte{}, good...), make([]byte, HeaderLen)...), "unknown frame type 0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dec := NewDecoder(bytes.NewReader(tc.raw))
			var ferr *FrameError
			for {
				_, err := dec.Next()
				if err == nil {
					continue
				}
				if err == io.EOF {
					t.Fatalf("decoded to clean EOF, wanted a FrameError %q", tc.want)
				}
				if !errors.As(err, &ferr) {
					t.Fatalf("error is %T (%v), want *FrameError", err, err)
				}
				break
			}
			if !strings.Contains(ferr.Msg, tc.want) {
				t.Fatalf("error %q does not mention %q", ferr.Msg, tc.want)
			}
			if ferr.Offset < 0 || ferr.Offset > int64(len(tc.raw)) {
				t.Fatalf("error offset %d out of bounds [0,%d]", ferr.Offset, len(tc.raw))
			}
			// The offset must point at the start of the bad frame: the good
			// prefix before it re-decodes cleanly.
			dec2 := NewDecoder(bytes.NewReader(tc.raw[:ferr.Offset]))
			for {
				_, err := dec2.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatalf("good prefix before offset %d does not decode: %v", ferr.Offset, err)
				}
			}
		})
	}
}

// wireBad appends one frame to good and corrupts its header with mutate.
func wireBad(good []byte, mutate func(hdr []byte)) []byte {
	raw := append([]byte{}, good...)
	raw = AppendFrame(raw, Frame{Type: TypeClose, Stream: 7})
	mutate(raw[len(raw)-HeaderLen:])
	return raw
}

func TestOpenPayload(t *testing.T) {
	p := AppendOpen(nil, "eliza-sim", "tenant-7")
	prog, ten, err := ParseOpen(p)
	if err != nil || prog != "eliza-sim" || ten != "tenant-7" {
		t.Fatalf("ParseOpen = %q %q %v", prog, ten, err)
	}
	if _, _, err := ParseOpen([]byte("no-separator")); err == nil {
		t.Fatal("missing separator accepted")
	}
	if _, _, err := ParseOpen([]byte("\x00tenant")); err == nil {
		t.Fatal("empty program accepted")
	}
	if _, _, err := ParseOpen([]byte("p\x00t\x00x")); err == nil {
		t.Fatal("stray NUL accepted")
	}
	// Empty tenant is legal: it means the default tenant.
	if prog, ten, err := ParseOpen(AppendOpen(nil, "echo", "")); err != nil || prog != "echo" || ten != "" {
		t.Fatalf("default tenant: %q %q %v", prog, ten, err)
	}
}

func TestAppendFramePanicsOnInvalid(t *testing.T) {
	for _, f := range []Frame{
		{Type: TypeData, Stream: 1, Payload: make([]byte, MaxPayload+1)},
		{Type: TypeOpen, Stream: 0},
		{Type: Type(77), Stream: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("AppendFrame(%+v) did not panic", f.Type)
				}
			}()
			AppendFrame(nil, f)
		}()
	}
}
