package netx

import (
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/proc"
	"repro/internal/testutil"
)

// muxRegistry is the test gateway's program zoo.
func muxRegistry() map[string]proc.Program {
	return map[string]proc.Program{
		"echo": echoProg,
		// firehose writes bulk data without waiting for anyone to read it,
		// then parks until stdin EOF — the head-of-line antagonist.
		"firehose": func(stdin io.Reader, stdout io.Writer) error {
			chunk := make([]byte, 4096)
			for i := range chunk {
				chunk[i] = 'f'
			}
			for i := 0; i < 16; i++ { // 64 KiB total
				if _, err := stdout.Write(chunk); err != nil {
					return err
				}
			}
			io.Copy(io.Discard, stdin)
			return nil
		},
	}
}

func startGateway(t *testing.T, opt MuxServerOptions) *MuxServer {
	t.Helper()
	srv, err := NewMuxServer("127.0.0.1:0", muxRegistry(), opt)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// TestMuxRoundTripManySessionsOneConn is the tentpole's core claim: many
// concurrent sessions exchange dialogues over ONE TCP connection, each
// isolated, each ending in a clean per-stream EOF.
func TestMuxRoundTripManySessionsOneConn(t *testing.T) {
	defer testutil.LeakCheck(t, 10, 5*time.Second)()
	srv := startGateway(t, MuxServerOptions{})
	defer srv.Shutdown(time.Second)

	pool := NewMuxPool(MuxOptions{MaxConns: 1, MaxStreamsPerConn: 64})
	defer pool.Close()

	const sessions = 32
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := pool.Open(srv.Addr(), "echo")
			if err != nil {
				errs <- err
				return
			}
			for n := 0; n < 3; n++ {
				msg := fmt.Sprintf("s%d-m%d", i, n)
				if _, err := st.Write([]byte(msg + "\n")); err != nil {
					errs <- fmt.Errorf("session %d write: %w", i, err)
					return
				}
				if got := readLine(t, st); got != "ack:"+msg+"\n" {
					errs <- fmt.Errorf("session %d got %q", i, got)
					return
				}
			}
			if err := st.CloseWrite(); err != nil {
				errs <- err
				return
			}
			if _, err := st.Read(make([]byte, 8)); err != io.EOF {
				errs <- fmt.Errorf("session %d: want clean EOF, got %v", i, err)
				return
			}
			if status, _ := st.WaitStatus(); status != 0 {
				errs <- fmt.Errorf("session %d: status %d, want 0", i, status)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := pool.Conns(srv.Addr()); got != 1 {
		t.Errorf("pool used %d connections, want exactly 1", got)
	}
	if got := srv.Served(); got != sessions {
		t.Errorf("gateway served %d, want %d", got, sessions)
	}
	if got := srv.ActiveSessions(); got != 0 {
		t.Errorf("%d sessions still active after close", got)
	}
}

// TestMuxTenantQuotaGoaway pins the backpressure contract: a tenant at
// quota gets a prompt GOAWAY refusal, never a hang, and the slot frees
// once a session ends.
func TestMuxTenantQuotaGoaway(t *testing.T) {
	defer testutil.LeakCheck(t, 10, 5*time.Second)()
	srv := startGateway(t, MuxServerOptions{TenantQuota: 2})
	defer srv.Shutdown(time.Second)

	pool := NewMuxPool(MuxOptions{Tenant: "acme"})
	defer pool.Close()

	open := func() *MuxStream {
		st, err := pool.Open(srv.Addr(), "echo")
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	// Prove admission with a real exchange so the quota slots are held.
	s1, s2 := open(), open()
	for i, st := range []*MuxStream{s1, s2} {
		if _, err := st.Write([]byte("hi\n")); err != nil {
			t.Fatal(err)
		}
		if got := readLine(t, st); got != "ack:hi\n" {
			t.Fatalf("session %d got %q", i, got)
		}
	}

	// The third OPEN must be refused with GOAWAY("quota") — surfaced as a
	// prompt read error, not a hang.
	s3 := open()
	var gerr *GoAwayError
	if _, err := s3.Read(make([]byte, 8)); !errors.As(err, &gerr) || gerr.Reason != RefuseQuota {
		t.Fatalf("over-quota stream read = %v, want GoAwayError(quota)", err)
	}
	if status, _ := s3.WaitStatus(); status != 1 {
		t.Fatalf("refused stream status = %d, want 1", status)
	}
	if got := srv.Stats().Refused[RefuseQuota]; got != 1 {
		t.Fatalf("refusal counter = %d, want 1", got)
	}

	// Ending one session frees the tenant slot: the next OPEN is admitted.
	if err := s1.CloseWrite(); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Read(make([]byte, 8)); err != io.EOF {
		t.Fatalf("want clean EOF, got %v", err)
	}
	s4 := open()
	if _, err := s4.Write([]byte("again\n")); err != nil {
		t.Fatal(err)
	}
	if got := readLine(t, s4); got != "ack:again\n" {
		t.Fatalf("post-release session got %q", got)
	}
	s2.Close()
	s4.Close()
	s3.Close()
}

// TestMuxHeadOfLineIsolation pins the in-window isolation guarantee: a
// slow consumer whose backlog fits its StreamBuf window costs a sibling
// on the same connection nothing — the sibling's dialogue round-trips
// while the slow stream's 64 KiB sits undrained.
func TestMuxHeadOfLineIsolation(t *testing.T) {
	defer testutil.LeakCheck(t, 10, 5*time.Second)()
	srv := startGateway(t, MuxServerOptions{})
	defer srv.Shutdown(time.Second)

	// One connection, and a window comfortably above firehose's 64 KiB.
	pool := NewMuxPool(MuxOptions{MaxConns: 1, StreamBuf: 256 << 10})
	defer pool.Close()

	slow, err := pool.Open(srv.Addr(), "firehose")
	if err != nil {
		t.Fatal(err)
	}
	sibling, err := pool.Open(srv.Addr(), "echo")
	if err != nil {
		t.Fatal(err)
	}
	if pool.Conns(srv.Addr()) != 1 {
		t.Fatal("test needs both streams on one connection")
	}

	// Never read from slow; drive 50 exchanges on the sibling.
	for n := 0; n < 50; n++ {
		msg := fmt.Sprintf("hol-%d", n)
		if _, err := sibling.Write([]byte(msg + "\n")); err != nil {
			t.Fatalf("sibling write %d stalled behind slow consumer: %v", n, err)
		}
		if got := readLine(t, sibling); got != "ack:"+msg+"\n" {
			t.Fatalf("sibling exchange %d got %q", n, got)
		}
	}

	// The slow stream's data is all still there, un-lost.
	if err := slow.CloseWrite(); err != nil {
		t.Fatal(err)
	}
	drained, err := io.Copy(io.Discard, struct{ io.Reader }{slow})
	if err != nil {
		t.Fatalf("draining slow stream: %v", err)
	}
	if drained != 64<<10 {
		t.Fatalf("slow stream delivered %d bytes, want %d", drained, 64<<10)
	}
	sibling.Close()
	slow.Close()
}

// TestMuxShutdownDrainsMidDialogue pins the extended Shutdown contract:
// GOAWAY-then-drain. Mid-dialogue Shutdown sends GOAWAY(0); the
// in-flight stream completes its exchange and ends cleanly; new OPENs
// are refused; and the drain reports clean.
func TestMuxShutdownDrainsMidDialogue(t *testing.T) {
	defer testutil.LeakCheck(t, 10, 5*time.Second)()
	srv := startGateway(t, MuxServerOptions{})

	pool := NewMuxPool(MuxOptions{MaxConns: 1})
	defer pool.Close()

	st, err := pool.Open(srv.Addr(), "echo")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Write([]byte("first\n")); err != nil {
		t.Fatal(err)
	}
	if got := readLine(t, st); got != "ack:first\n" {
		t.Fatalf("got %q", got)
	}

	drained := make(chan bool, 1)
	go func() { drained <- srv.Shutdown(10 * time.Second) }()

	// Gate, not poll: once Draining closes, the listener is down and the
	// GOAWAY(0) notices are on the wire.
	select {
	case <-srv.Draining():
	case <-time.After(5 * time.Second):
		t.Fatal("drain gate never closed")
	}
	// A new session cannot be placed: the pooled connection is (or is
	// about to be) marked draining and fresh dials are refused. Either
	// refusal is a prompt error or a GOAWAY("draining") on the stream.
	if nst, err := pool.Open(srv.Addr(), "echo"); err == nil {
		var gerr *GoAwayError
		if _, rerr := nst.Read(make([]byte, 8)); !errors.As(rerr, &gerr) {
			t.Fatalf("mid-drain open: read = %v, want refusal", rerr)
		} else if gerr.Reason != RefuseDraining {
			t.Fatalf("mid-drain refusal reason %q, want %q", gerr.Reason, RefuseDraining)
		}
		nst.Close()
	}

	// The stream admitted before the notice keeps its dialogue: the
	// second exchange completes mid-drain.
	if _, err := st.Write([]byte("second\n")); err != nil {
		t.Fatalf("mid-drain write failed: %v", err)
	}
	if got := readLine(t, st); got != "ack:second\n" {
		t.Fatalf("mid-drain exchange got %q", got)
	}
	if err := st.CloseWrite(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Read(make([]byte, 8)); err != io.EOF {
		t.Fatalf("want clean per-stream EOF, got %v", err)
	}

	select {
	case clean := <-drained:
		if !clean {
			t.Fatal("drain reported streams cut; the dialogue completed, want clean")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown never returned after the stream finished")
	}
	if got := srv.Served(); got != 1 {
		t.Fatalf("Served = %d, want 1", got)
	}
}

// TestMuxShutdownCutsAtDeadline: a stream that outlives the grace window
// is cut and the drain reports unclean — same contract shape as the
// one-conn server's.
func TestMuxShutdownCutsAtDeadline(t *testing.T) {
	defer testutil.LeakCheck(t, 10, 5*time.Second)()
	srv := startGateway(t, MuxServerOptions{})
	pool := NewMuxPool(MuxOptions{})
	defer pool.Close()

	st, err := pool.Open(srv.Addr(), "echo")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Write([]byte("hi\n")); err != nil {
		t.Fatal(err)
	}
	if got := readLine(t, st); got != "ack:hi\n" {
		t.Fatalf("got %q", got)
	}
	// Never half-close: the program stays parked reading stdin.
	if clean := srv.Shutdown(30 * time.Millisecond); clean {
		t.Fatal("drain should report unclean when the deadline cuts a stream")
	}
	// The cut surfaces on the client as end-of-stream.
	if _, err := io.Copy(io.Discard, struct{ io.Reader }{st}); err != nil && !errors.Is(err, io.EOF) {
		t.Logf("cut stream disposition: %v", err)
	}
	st.Close()
}

// TestMuxPoolPlacement pins the pooling policy: streams pack onto
// existing connections up to MaxStreamsPerConn, new connections dial up
// to MaxConns, and past both bounds Open fails fast with
// ErrPoolSaturated instead of queueing.
func TestMuxPoolPlacement(t *testing.T) {
	defer testutil.LeakCheck(t, 10, 5*time.Second)()
	srv := startGateway(t, MuxServerOptions{})
	defer srv.Shutdown(time.Second)

	pool := NewMuxPool(MuxOptions{MaxConns: 2, MaxStreamsPerConn: 2})
	defer pool.Close()

	var streams []*MuxStream
	for i := 0; i < 4; i++ {
		st, err := pool.Open(srv.Addr(), "echo")
		if err != nil {
			t.Fatalf("open %d: %v", i, err)
		}
		streams = append(streams, st)
	}
	if got := pool.Conns(srv.Addr()); got != 2 {
		t.Fatalf("4 streams over cap-2 conns used %d connections, want 2", got)
	}
	if _, err := pool.Open(srv.Addr(), "echo"); !errors.Is(err, ErrPoolSaturated) {
		t.Fatalf("saturated open = %v, want ErrPoolSaturated", err)
	}
	// Ending one stream frees a slot.
	streams[0].Close()
	st, err := pool.Open(srv.Addr(), "echo")
	if err != nil {
		t.Fatalf("open after release: %v", err)
	}
	streams = append(streams, st)
	for _, st := range streams[1:] {
		st.Close()
	}
}

// TestMuxUnknownProgramRefused: a bad program name is a per-stream
// refusal, not a connection error — sibling streams are untouched.
func TestMuxUnknownProgramRefused(t *testing.T) {
	defer testutil.LeakCheck(t, 10, 5*time.Second)()
	srv := startGateway(t, MuxServerOptions{})
	defer srv.Shutdown(time.Second)
	pool := NewMuxPool(MuxOptions{MaxConns: 1})
	defer pool.Close()

	good, err := pool.Open(srv.Addr(), "echo")
	if err != nil {
		t.Fatal(err)
	}
	bad, err := pool.Open(srv.Addr(), "no-such-program")
	if err != nil {
		t.Fatal(err)
	}
	var gerr *GoAwayError
	if _, err := bad.Read(make([]byte, 8)); !errors.As(err, &gerr) || !strings.Contains(gerr.Reason, RefuseUnknownProg) {
		t.Fatalf("unknown program read = %v, want GoAwayError(unknown program)", err)
	}
	if _, err := good.Write([]byte("still-here\n")); err != nil {
		t.Fatal(err)
	}
	if got := readLine(t, good); got != "ack:still-here\n" {
		t.Fatalf("sibling after refusal got %q", got)
	}
	good.Close()
	bad.Close()
}

// TestMuxConnDeathFailsStreams: a gateway connection dying hard takes
// its streams with it — each finishes with an error disposition, no
// hangs, and the pool stops placing onto the dead connection.
func TestMuxConnDeathFailsStreams(t *testing.T) {
	defer testutil.LeakCheck(t, 10, 5*time.Second)()
	// A raw listener that accepts and immediately RSTs after the first
	// frame arrives.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		buf := make([]byte, 64)
		c.Read(buf)
		if tc, ok := c.(*net.TCPConn); ok {
			tc.SetLinger(0)
		}
		c.Close()
	}()

	pool := NewMuxPool(MuxOptions{})
	defer pool.Close()
	st, err := pool.Open(ln.Addr().String(), "echo")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Read(make([]byte, 8)); err == nil {
		t.Fatal("read on a dead connection returned data")
	}
	if status, _ := st.WaitStatus(); status != 1 {
		t.Fatalf("dead-conn stream status = %d, want 1", status)
	}
	if got := pool.Conns(ln.Addr().String()); got != 0 {
		t.Fatalf("dead connection still pooled: %d", got)
	}
}
