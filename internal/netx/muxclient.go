// The client half of the session gateway: a connection-pooling mux
// client that multiplexes many expect sessions over few TCP connections
// using the internal/netx/mux frame protocol.
//
// A MuxStream is a full transport-contract citizen: blocking Read/Write,
// CloseWrite half-close, the event-capable TryRead + SetReadNotify
// doorbell pair, and the zero-copy TryReadOwned ownership transfer — so
// the sharded scheduler adopts a muxed session exactly like a direct
// socket session, with no scheduler changes. Each connection runs one
// demux goroutine that decodes frames and routes DATA payloads into
// per-stream bounded inboxes of pooled segments (the PR-6 owned-segment
// path, per stream); the inbound copy from the connection's read buffer
// into a leased segment is inherent to demultiplexing and is counted in
// IngestStats as copied bytes.
//
// Head-of-line isolation is bounded, not absolute: within a stream's
// StreamBuf receive window a slow consumer costs its siblings nothing;
// once a stream's window is full the demux goroutine parks, which stops
// reading the connection, which clogs every stream sharing it through
// TCP flow control — the same honest coupling HTTP/2 has once a
// receiver's window is exhausted. TestMuxHeadOfLineIsolation pins the
// in-window guarantee.
package netx

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/netx/mux"
	"repro/internal/proc"
)

// MuxOptions tunes a gateway client pool. The zero value is sensible.
type MuxOptions struct {
	// Tenant is the quota identity sent with every OPEN ("" is the
	// default tenant).
	Tenant string
	// MaxConns bounds connections per gateway address (default 8, the
	// E23 sweep uses up to 64).
	MaxConns int
	// MaxStreamsPerConn bounds concurrent streams per connection
	// (default 2048). Open fails with ErrPoolSaturated once every
	// allowed connection is full.
	MaxStreamsPerConn int
	// StreamBuf bounds each stream's receive inbox (bytes, default
	// 256 KiB) — the head-of-line isolation window: a consumer this far
	// behind parks the connection's demux loop.
	StreamBuf int
	// DialTimeout bounds each connection dial (default 10s).
	DialTimeout time.Duration
	// Stats, when non-nil, receives ingest accounting for all streams.
	Stats *metrics.IngestStats
	// Pool supplies the segment pool DATA payloads are leased into; nil
	// uses a shared process-wide pool.
	Pool *SegmentPool
}

const (
	defaultMuxConns     = 8
	defaultMuxStreams   = 2048
	defaultMuxStreamBuf = 256 << 10
	muxSegmentSize      = 8 << 10
	muxReadBufferSize   = 64 << 10
	muxClientGoingAway  = "client going away"
	muxRefusedPrefix    = "netx: gateway refused stream"
)

func (o MuxOptions) maxConns() int {
	if o.MaxConns <= 0 {
		return defaultMuxConns
	}
	return o.MaxConns
}

func (o MuxOptions) maxStreams() int {
	if o.MaxStreamsPerConn <= 0 {
		return defaultMuxStreams
	}
	return o.MaxStreamsPerConn
}

func (o MuxOptions) streamBuf() int {
	if o.StreamBuf <= 0 {
		return defaultMuxStreamBuf
	}
	return o.StreamBuf
}

func (o MuxOptions) dialTimeout() time.Duration {
	if o.DialTimeout <= 0 {
		return defaultDialTimeout
	}
	return o.DialTimeout
}

// ErrPoolSaturated reports an Open against a pool whose every allowed
// connection is at its stream cap — the client-side admission bound.
var ErrPoolSaturated = errors.New("netx: mux pool saturated (MaxConns × MaxStreamsPerConn streams open)")

// ErrPoolClosed reports an Open against a closed pool.
var ErrPoolClosed = errors.New("netx: mux pool closed")

// GoAwayError is the terminal disposition of a stream the gateway
// refused (quota, drain, unknown program) or tore down by draining.
type GoAwayError struct{ Reason string }

func (e *GoAwayError) Error() string {
	return muxRefusedPrefix + ": " + e.Reason
}

// MuxPool is the connection-pooling gateway client: Open multiplexes a
// new session stream onto an existing connection to the gateway when one
// has capacity, dialing a new connection only below MaxConns. A
// connection the gateway sent GOAWAY(0) on is excluded from placement
// and closed once its last stream ends.
type MuxPool struct {
	opt MuxOptions

	mu     sync.Mutex
	conns  map[string][]*muxConn
	closed bool
	opened uint64 // streams ever opened, for introspection
}

// NewMuxPool returns an empty pool; connections are dialed on demand.
func NewMuxPool(opt MuxOptions) *MuxPool {
	return &MuxPool{opt: opt, conns: make(map[string][]*muxConn)}
}

// MuxPoolStats is a pool snapshot for telemetry and the load workbench.
type MuxPoolStats struct {
	Conns   int    // live connections across all gateways
	Streams int    // live streams across all connections
	Opened  uint64 // streams ever opened
}

// Stats snapshots the pool under one lock hold.
func (p *MuxPool) Stats() MuxPoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := MuxPoolStats{Opened: p.opened}
	for _, cs := range p.conns {
		st.Conns += len(cs)
		for _, mc := range cs {
			st.Streams += mc.nstreams
		}
	}
	return st
}

// Conns reports live connections to one gateway address.
func (p *MuxPool) Conns(addr string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.conns[addr])
}

// Open places a new session stream for program onto a pooled connection
// to the gateway at addr, dialing one if no connection has capacity and
// the per-address bound allows it. The OPEN is asynchronous: a gateway
// refusal (quota, drain) surfaces as a *GoAwayError from the stream's
// read side, promptly — never as a hang.
func (p *MuxPool) Open(addr, program string) (*MuxStream, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrPoolClosed
	}
	var mc *muxConn
	for _, c := range p.conns[addr] {
		if !c.dead && !c.draining && c.nstreams < p.opt.maxStreams() {
			mc = c
			break
		}
	}
	if mc == nil {
		if len(p.conns[addr]) >= p.opt.maxConns() {
			p.mu.Unlock()
			return nil, ErrPoolSaturated
		}
		// Dial under the lock: placement stays strictly within MaxConns
		// even under a stampede of concurrent Opens (a loopback dial is
		// cheap next to the protocol churn a herd of extra connections
		// would cost).
		c, err := p.dial(addr)
		if err != nil {
			p.mu.Unlock()
			return nil, err
		}
		p.conns[addr] = append(p.conns[addr], c)
		mc = c
	}
	mc.nstreams++
	p.opened++
	p.mu.Unlock()

	return mc.openStream(program)
}

func (p *MuxPool) dial(addr string) (*muxConn, error) {
	d := net.Dialer{Timeout: p.opt.dialTimeout()}
	c, err := d.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	segPool := p.opt.Pool
	if segPool == nil {
		segPool = poolFor(muxSegmentSize)
	}
	mc := &muxConn{
		p:       p,
		addr:    addr,
		c:       c,
		pool:    segPool,
		w:       newFrameWriter(c),
		streams: make(map[uint32]*MuxStream),
		nextID:  1,
	}
	go mc.readLoop()
	return mc, nil
}

// releaseSlot returns a stream slot to the pool; a draining or closing
// connection is hung up once its last stream ends.
func (p *MuxPool) releaseSlot(mc *muxConn) {
	p.mu.Lock()
	mc.nstreams--
	retire := !mc.dead && mc.nstreams == 0 && (mc.draining || p.closed)
	if retire {
		p.removeLocked(mc)
	}
	p.mu.Unlock()
	if retire {
		mc.c.Close() // readLoop observes the close and tears down
	}
}

// removeLocked drops mc from the pool's placement list. Caller holds mu.
func (p *MuxPool) removeLocked(mc *muxConn) {
	mc.dead = true
	cs := p.conns[mc.addr]
	for i, c := range cs {
		if c == mc {
			cs[i] = cs[len(cs)-1]
			p.conns[mc.addr] = cs[:len(cs)-1]
			break
		}
	}
}

// Close hangs up every pooled connection. Streams still open finish with
// a clean EOF, matching Conn.Close's local-hangup semantics.
func (p *MuxPool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	var all []*muxConn
	for _, cs := range p.conns {
		all = append(all, cs...)
	}
	p.mu.Unlock()
	for _, mc := range all {
		mc.goodbye()
		mc.teardown(io.EOF)
	}
	return nil
}

// muxConn is one pooled gateway connection: a group-commit write path
// (frameWriter) and one demux goroutine routing inbound frames to
// streams. nstreams/draining/dead are guarded by the pool's mutex
// (placement state); the streams map by smu (routing state).
type muxConn struct {
	p    *MuxPool
	addr string
	c    net.Conn
	pool *SegmentPool
	w    *frameWriter

	smu     sync.Mutex
	streams map[uint32]*MuxStream
	nextID  uint32

	nstreams int  // pool.mu
	draining bool // pool.mu: GOAWAY(0) received
	dead     bool // pool.mu: removed from placement

	downOnce sync.Once
}

// openStream registers a fresh stream id and sends the OPEN frame.
func (mc *muxConn) openStream(program string) (*MuxStream, error) {
	st := &MuxStream{mc: mc, program: program, done: make(chan struct{})}
	st.in.init(mc.p.opt.streamBuf(), mc.pool.Size(), false, mc.p.opt.Stats)
	mc.smu.Lock()
	id := mc.nextID
	mc.nextID++
	st.id = id
	mc.streams[id] = st
	mc.smu.Unlock()
	payload := mux.AppendOpen(nil, program, mc.p.opt.Tenant)
	if err := mc.writeFrame(mux.TypeOpen, 0, id, payload); err != nil {
		// writeFrame's failure triggered teardown, which finishes (and
		// releases the slot of) every registered stream — ours included
		// unless we win the race to take it back.
		if mc.take(id) != nil {
			mc.p.releaseSlot(mc)
		}
		return nil, fmt.Errorf("netx: mux open %s: %w", program, err)
	}
	return st, nil
}

func (mc *muxConn) writeFrame(t mux.Type, flags uint8, stream uint32, payload []byte) error {
	err := mc.w.write(mux.Frame{Type: t, Flags: flags, Stream: stream, Payload: payload})
	if err != nil {
		mc.teardown(err)
	}
	return err
}

// take removes and returns a stream from the routing table.
func (mc *muxConn) take(id uint32) *MuxStream {
	mc.smu.Lock()
	st := mc.streams[id]
	delete(mc.streams, id)
	mc.smu.Unlock()
	return st
}

// goodbye tells the gateway no more OPENs are coming (best-effort).
func (mc *muxConn) goodbye() {
	mc.writeFrame(mux.TypeGoaway, 0, 0, []byte(muxClientGoingAway))
}

// readLoop is the demux goroutine: frames off the wire, payloads into
// per-stream inboxes by leased segment, control frames to stream and
// connection state.
func (mc *muxConn) readLoop() {
	dec := mux.NewDecoder(newConnReader(mc.c))
	for {
		f, err := dec.Next()
		if err != nil {
			if err == io.EOF || errors.Is(err, net.ErrClosed) {
				mc.teardown(io.EOF)
			} else {
				mc.teardown(err)
			}
			return
		}
		switch f.Type {
		case mux.TypeData:
			mc.smu.Lock()
			st := mc.streams[f.Stream]
			mc.smu.Unlock()
			if st == nil {
				continue // late frames after a local close are dropped
			}
			mc.deliver(st, f.Payload)
		case mux.TypeClose:
			st := mc.take(f.Stream)
			if st == nil {
				continue
			}
			if f.Flags&mux.FlagError != 0 {
				st.finish(fmt.Errorf("netx: remote program failed: %s", f.Payload))
			} else {
				st.finish(io.EOF)
			}
		case mux.TypeGoaway:
			if f.Stream == 0 {
				mc.startDrain()
				continue
			}
			if st := mc.take(f.Stream); st != nil {
				st.finish(&GoAwayError{Reason: string(f.Payload)})
			}
		case mux.TypePing:
			if f.Flags&mux.FlagAck == 0 {
				mc.writeFrame(mux.TypePing, mux.FlagAck, 0, f.Payload)
			}
		default: // a gateway must never send OPEN
			mc.teardown(fmt.Errorf("netx: protocol error: gateway sent %s frame", f.Type))
			return
		}
	}
}

// deliver copies one DATA payload into leased segments and queues them
// into the stream's inbox — the one inherent demux copy; from the inbox
// onward the segment travels by ownership transfer. A full inbox parks
// here: see the head-of-line bound in the package comment.
func (mc *muxConn) deliver(st *MuxStream, p []byte) {
	stats := mc.p.opt.Stats
	for len(p) > 0 {
		seg := mc.pool.Get()
		k := copy(seg.buf, p)
		seg.n = k
		stats.AddCopied(k)
		if !st.in.putSeg(seg) {
			return // stream closed locally; remaining payload is discard
		}
		p = p[k:]
	}
}

// startDrain marks the connection draining (GOAWAY(0) received): no new
// placements; it is hung up once the last in-flight stream ends.
func (mc *muxConn) startDrain() {
	p := mc.p
	p.mu.Lock()
	mc.draining = true
	retire := !mc.dead && mc.nstreams == 0
	if retire {
		p.removeLocked(mc)
	}
	p.mu.Unlock()
	if retire {
		mc.c.Close()
	}
}

// teardown ends the connection exactly once: every live stream gets the
// terminal disposition (io.EOF for a local/clean hangup, the wire error
// otherwise) and the pool forgets the connection.
func (mc *muxConn) teardown(err error) {
	mc.downOnce.Do(func() {
		mc.w.fail(err)
		mc.c.Close()
		mc.p.mu.Lock()
		if !mc.dead {
			mc.p.removeLocked(mc)
		}
		mc.p.mu.Unlock()
		mc.smu.Lock()
		streams := make([]*MuxStream, 0, len(mc.streams))
		for id, st := range mc.streams {
			streams = append(streams, st)
			delete(mc.streams, id)
		}
		mc.smu.Unlock()
		for _, st := range streams {
			st.finish(err)
		}
	})
}

// connReader adapts the net.Conn for the decoder with a modest buffer so
// one syscall feeds many small frames.
func newConnReader(c net.Conn) io.Reader {
	return &bufferedReader{c: c, buf: make([]byte, muxReadBufferSize)}
}

type bufferedReader struct {
	c        net.Conn
	buf      []byte
	pos, end int
}

func (r *bufferedReader) Read(b []byte) (int, error) {
	if r.pos == r.end {
		n, err := r.c.Read(r.buf)
		if n <= 0 {
			return 0, err
		}
		r.pos, r.end = 0, n
	}
	n := copy(b, r.buf[r.pos:r.end])
	r.pos += n
	return n, nil
}

// MuxStream is one session multiplexed over a pooled gateway connection.
// It satisfies the full proc transport contract: blocking Read/Write,
// CloseWrite half-close, TryRead/SetReadNotify event capability, and
// TryReadOwned zero-copy ownership transfer.
type MuxStream struct {
	mc      *muxConn
	id      uint32
	program string

	in   inbox
	done chan struct{}

	finOnce   sync.Once
	closeOnce sync.Once
	wclosed   atomic.Bool
	closed    atomic.Bool
}

// Compile-time transport-contract conformance.
var (
	_ io.ReadWriteCloser = (*MuxStream)(nil)
	_ proc.TryReader     = (*MuxStream)(nil)
	_ proc.ReadNotifier  = (*MuxStream)(nil)
	_ proc.OwnedReader   = (*MuxStream)(nil)
)

// ID reports the stream's id on its connection.
func (st *MuxStream) ID() uint32 { return st.id }

// Program reports the gateway program this stream runs.
func (st *MuxStream) Program() string { return st.program }

// finish settles the terminal disposition exactly once and returns the
// stream's placement slot to the pool.
func (st *MuxStream) finish(err error) {
	st.finOnce.Do(func() {
		st.in.finish(err)
		close(st.done)
		st.mc.p.releaseSlot(st.mc)
	})
}

// Read blocks for session bytes; io.EOF is the clean end of stream, a
// *GoAwayError a gateway refusal.
func (st *MuxStream) Read(b []byte) (int, error) { return st.in.read(b) }

// TryRead is the scheduler's non-blocking drain (transport contract).
func (st *MuxStream) TryRead(b []byte) (int, bool, error) { return st.in.tryRead(b) }

// TryReadOwned pops the next queued segment whole by ownership transfer.
func (st *MuxStream) TryReadOwned() (proc.Owned, bool, error) {
	g, ok, err := st.in.tryTake()
	if g == nil {
		return nil, ok, err // explicit nil interface, not (*Segment)(nil)
	}
	return g, ok, err
}

// OwnedEnabled reports that muxed ingest always runs the segment path.
func (st *MuxStream) OwnedEnabled() bool { return true }

// SetReadNotify installs the level-triggered doorbell.
func (st *MuxStream) SetReadNotify(fn func()) { st.in.setNotify(fn) }

// Write frames b as DATA toward the gateway program, splitting at the
// protocol's payload bound.
func (st *MuxStream) Write(b []byte) (int, error) {
	if st.closed.Load() || st.wclosed.Load() {
		return 0, net.ErrClosed
	}
	written := 0
	for len(b) > 0 {
		chunk := b
		if len(chunk) > mux.MaxPayload {
			chunk = chunk[:mux.MaxPayload]
		}
		if err := st.mc.writeFrame(mux.TypeData, 0, st.id, chunk); err != nil {
			return written, err
		}
		written += len(chunk)
		b = b[len(chunk):]
	}
	return written, nil
}

// CloseWrite half-closes the stream: the gateway program reads EOF on
// its stdin while its remaining output stays readable here — the muxed
// analogue of a TCP FIN.
func (st *MuxStream) CloseWrite() error {
	if st.wclosed.Swap(true) || st.closed.Load() {
		return nil
	}
	return st.mc.writeFrame(mux.TypeClose, mux.FlagHalfClose, st.id, nil)
}

// Close cancels the stream locally: undelivered inbound bytes are
// dropped (segments back to their pool), reads see a clean EOF, and the
// gateway is told to discard the program's further output.
func (st *MuxStream) Close() error {
	st.closeOnce.Do(func() {
		st.closed.Store(true)
		if st.mc.take(st.id) != nil {
			// Stream still routable: send the cancel. A stream already
			// finished by CLOSE/GOAWAY/teardown needs no frame.
			st.mc.writeFrame(mux.TypeClose, 0, st.id, nil)
		}
		st.in.closeRead()
		st.finish(io.EOF)
	})
	return nil
}

// Done is closed when the stream dialogue is over.
func (st *MuxStream) Done() <-chan struct{} { return st.done }

// Err returns the terminal disposition after Done: nil for a clean end,
// the refusal or wire error otherwise.
func (st *MuxStream) Err() error {
	select {
	case <-st.done:
	default:
		return nil
	}
	if err := st.in.terminal(); err != nil && err != io.EOF {
		return err
	}
	return nil
}

// WaitStatus blocks until the dialogue is over and reports it
// process-style: 0 for a clean end, 1 for a refusal or wire error.
func (st *MuxStream) WaitStatus() (int, error) {
	<-st.done
	if st.Err() != nil {
		return 1, nil
	}
	return 0, nil
}
