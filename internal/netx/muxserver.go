// The server half of the session gateway: one accept loop whose every
// connection hosts many concurrent sessions via the internal/netx/mux
// frame protocol. Each OPEN admits one program instance whose stdin is
// fed by the connection's demux loop through a bounded buffer and whose
// stdout is framed back as DATA; admission is where backpressure lives:
// a tenant at quota, a connection or server at its session cap, or a
// draining gateway is refused with GOAWAY(stream, reason) — an explicit,
// prompt refusal instead of queue collapse.
//
// Drain contract (the PR-5 Shutdown(grace) contract extended with
// GOAWAY-then-drain, proved by TestMuxShutdownDrainsMidDialogue):
// Shutdown closes the listener, then sends GOAWAY(0) on every live
// connection — from that instant new OPENs are refused with "draining",
// but every stream admitted before the notice keeps exchanging DATA and
// runs to its own end within the grace window. Only streams still
// running at the deadline are cut. The drain is clean iff nothing was
// cut. The Draining gate channel closes after the listener does, so
// tests and supervisors can sequence against the drain start without
// polling.
package netx

import (
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/netx/mux"
	"repro/internal/proc"
)

// MuxServerOptions tunes gateway admission. The zero value admits
// without quotas.
type MuxServerOptions struct {
	// TenantQuota bounds concurrent sessions per tenant (0 = unlimited).
	TenantQuota int
	// MaxSessions bounds concurrent sessions across the gateway
	// (0 = unlimited).
	MaxSessions int
	// MaxConnSessions bounds concurrent sessions per connection
	// (0 = unlimited).
	MaxConnSessions int
	// StreamBuf bounds each session's stdin buffer between the demux
	// loop and the program (bytes, default 64 KiB). A program this far
	// behind parks the connection's demux loop — inbound backpressure
	// through TCP flow control, the same bound Conn ingest has.
	StreamBuf int
}

func (o MuxServerOptions) streamBuf() int {
	if o.StreamBuf <= 0 {
		return defaultReadBuf
	}
	return o.StreamBuf
}

// Refusal reasons carried in GOAWAY payloads and counted in Stats.
const (
	RefuseDraining    = "draining"
	RefuseQuota       = "quota"
	RefuseUnknownProg = "unknown program"
	RefuseServerLimit = "server session limit"
	RefuseConnLimit   = "connection session limit"
)

// MuxServer is the multiplexed session gateway: many programs, many
// sessions per connection.
type MuxServer struct {
	ln    net.Listener
	progs map[string]proc.Program
	opt   MuxServerOptions

	mu       sync.Mutex
	conns    map[*muxSrvConn]struct{}
	tenants  map[string]int
	active   int
	served   uint64
	refused  map[string]uint64
	closed   bool
	draining chan struct{}

	streamWG sync.WaitGroup // one per admitted stream
	connWG   sync.WaitGroup // one per connection loop
}

// NewMuxServer listens on addr (host:0 picks an ephemeral port) and
// serves the given program registry behind the mux protocol.
func NewMuxServer(addr string, progs map[string]proc.Program, opt MuxServerOptions) (*MuxServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return ServeMux(ln, progs, opt), nil
}

// ServeMux starts the gateway accept loop on an existing listener,
// which it owns from here on.
func ServeMux(ln net.Listener, progs map[string]proc.Program, opt MuxServerOptions) *MuxServer {
	s := &MuxServer{
		ln:       ln,
		progs:    progs,
		opt:      opt,
		conns:    make(map[*muxSrvConn]struct{}),
		tenants:  make(map[string]int),
		refused:  make(map[string]uint64),
		draining: make(chan struct{}),
	}
	go s.acceptLoop()
	return s
}

// Addr reports the bound listen address.
func (s *MuxServer) Addr() string { return s.ln.Addr().String() }

// Draining is the drain-start gate: closed once Shutdown has closed the
// listener, so a subsequent dial is deterministically refused.
func (s *MuxServer) Draining() <-chan struct{} { return s.draining }

func (s *MuxServer) acceptLoop() {
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // listener closed: Shutdown in progress
		}
		sc := &muxSrvConn{s: s, c: c, w: newFrameWriter(c), streams: make(map[uint32]*muxSrvStream)}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			continue
		}
		s.conns[sc] = struct{}{}
		s.connWG.Add(1)
		s.mu.Unlock()
		go sc.readLoop()
	}
}

// ActiveSessions reports in-flight streams across all connections.
func (s *MuxServer) ActiveSessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.active
}

// Served reports streams whose program ran to completion.
func (s *MuxServer) Served() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.served
}

// MuxServerStats is one gateway's telemetry snapshot, read under a
// single lock hold so the counters are consistent with each other.
type MuxServerStats struct {
	// Active counts in-flight streams; Served those completed.
	Active int    `json:"active"`
	Served uint64 `json:"served"`
	// Conns counts live multiplexed connections.
	Conns int `json:"conns"`
	// Draining reports that Shutdown has begun.
	Draining bool `json:"draining"`
	// Tenants maps tenant → live streams (quota accounting).
	Tenants map[string]int `json:"tenants"`
	// Refused maps refusal reason → GOAWAY count.
	Refused map[string]uint64 `json:"refused"`
}

// Stats snapshots the gateway.
func (s *MuxServer) Stats() MuxServerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := MuxServerStats{
		Active:   s.active,
		Served:   s.served,
		Conns:    len(s.conns),
		Draining: s.closed,
		Tenants:  make(map[string]int, len(s.tenants)),
		Refused:  make(map[string]uint64, len(s.refused)),
	}
	for k, v := range s.tenants {
		st.Tenants[k] = v
	}
	for k, v := range s.refused {
		st.Refused[k] = v
	}
	return st
}

// admit decides one OPEN under the server lock: reserve the stream's
// quota slots, or name the refusal.
func (s *MuxServer) admit(sc *muxSrvConn, tenant, program string) (proc.Program, string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, RefuseDraining
	}
	prog, ok := s.progs[program]
	if !ok {
		s.refused[RefuseUnknownProg]++
		return nil, RefuseUnknownProg
	}
	if s.opt.MaxSessions > 0 && s.active >= s.opt.MaxSessions {
		s.refused[RefuseServerLimit]++
		return nil, RefuseServerLimit
	}
	if s.opt.MaxConnSessions > 0 && sc.live >= s.opt.MaxConnSessions {
		s.refused[RefuseConnLimit]++
		return nil, RefuseConnLimit
	}
	if s.opt.TenantQuota > 0 && s.tenants[tenant] >= s.opt.TenantQuota {
		s.refused[RefuseQuota]++
		return nil, RefuseQuota
	}
	s.active++
	s.tenants[tenant]++
	sc.live++
	s.streamWG.Add(1)
	return prog, ""
}

// release returns one stream's quota slots and scores it served.
func (s *MuxServer) release(sc *muxSrvConn, tenant string) {
	s.mu.Lock()
	s.active--
	s.tenants[tenant]--
	if s.tenants[tenant] == 0 {
		delete(s.tenants, tenant)
	}
	sc.live--
	s.served++
	s.mu.Unlock()
	s.streamWG.Done()
}

// Shutdown is the GOAWAY-then-drain teardown (see the contract at the
// top of this file). It reports whether the drain was clean — no stream
// still running at the grace deadline had to be cut.
func (s *MuxServer) Shutdown(grace time.Duration) bool {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.streamWG.Wait()
		s.connWG.Wait()
		return true
	}
	s.closed = true
	conns := make([]*muxSrvConn, 0, len(s.conns))
	for sc := range s.conns {
		conns = append(conns, sc)
	}
	s.mu.Unlock()
	s.ln.Close()
	close(s.draining)
	for _, sc := range conns {
		sc.writeFrame(mux.TypeGoaway, 0, 0, []byte(RefuseDraining))
	}

	done := make(chan struct{})
	go func() {
		s.streamWG.Wait()
		close(done)
	}()
	drained := false
	if grace > 0 {
		select {
		case <-done:
			drained = true
		case <-time.After(grace):
		}
	} else {
		select {
		case <-done:
			drained = true
		default:
		}
	}
	cut := 0
	s.mu.Lock()
	if !drained {
		cut = s.active
	}
	conns = conns[:0]
	for sc := range s.conns {
		conns = append(conns, sc)
	}
	s.mu.Unlock()
	// Clean path: hang up idle connections; cut path: hang up everything,
	// which EOFs every stream's stdin so the stragglers unwind.
	for _, sc := range conns {
		sc.teardown()
	}
	<-done
	s.connWG.Wait()
	return cut == 0
}

// muxSrvConn is one gateway-side multiplexed connection.
type muxSrvConn struct {
	s *MuxServer
	c net.Conn
	w *frameWriter // group-commit write path; poisoned on teardown

	smu     sync.Mutex
	streams map[uint32]*muxSrvStream

	live int // s.mu: admitted streams on this conn

	downOnce sync.Once
}

// muxSrvStream is one admitted session on a gateway connection.
type muxSrvStream struct {
	id      uint32
	tenant  string
	stdin   inbox       // legacy slab mode: demux copies in, program reads out
	discard atomic.Bool // client cancelled: stop framing its output
}

func (sc *muxSrvConn) writeFrame(t mux.Type, flags uint8, stream uint32, payload []byte) error {
	return sc.w.write(mux.Frame{Type: t, Flags: flags, Stream: stream, Payload: payload})
}

// readLoop demultiplexes one connection until it dies, routing OPENs
// through admission and DATA into per-stream stdin buffers.
func (sc *muxSrvConn) readLoop() {
	defer sc.s.connWG.Done()
	dec := mux.NewDecoder(newConnReader(sc.c))
	for {
		f, err := dec.Next()
		if err != nil {
			sc.teardown()
			return
		}
		switch f.Type {
		case mux.TypeOpen:
			sc.handleOpen(f)
		case mux.TypeData:
			sc.smu.Lock()
			st := sc.streams[f.Stream]
			sc.smu.Unlock()
			if st != nil {
				st.stdin.put(f.Payload) // blocks when full: TCP backpressure
			}
		case mux.TypeClose:
			sc.smu.Lock()
			st := sc.streams[f.Stream]
			sc.smu.Unlock()
			if st == nil {
				continue
			}
			if f.Flags&mux.FlagHalfClose == 0 {
				// Cancel: the client is gone; its program unwinds on stdin
				// EOF and its remaining output is discarded. (A DATA frame
				// already queued behind the cancel is harmless: the client
				// drops frames for streams it no longer knows.)
				st.discard.Store(true)
			}
			st.stdin.finish(io.EOF)
		case mux.TypePing:
			if f.Flags&mux.FlagAck == 0 {
				sc.writeFrame(mux.TypePing, mux.FlagAck, 0, f.Payload)
			}
		case mux.TypeGoaway:
			// Client-side goodbye: informational. Streams end by CLOSE or
			// by the connection going away.
		}
	}
}

// handleOpen admits or refuses one OPEN.
func (sc *muxSrvConn) handleOpen(f mux.Frame) {
	program, tenant, err := mux.ParseOpen(f.Payload)
	if err != nil {
		sc.writeFrame(mux.TypeGoaway, 0, f.Stream, []byte(err.Error()))
		return
	}
	sc.smu.Lock()
	_, dup := sc.streams[f.Stream]
	sc.smu.Unlock()
	if dup {
		sc.writeFrame(mux.TypeGoaway, 0, f.Stream, []byte("stream id in use"))
		return
	}
	prog, refuse := sc.s.admit(sc, tenant, program)
	if refuse != "" {
		sc.writeFrame(mux.TypeGoaway, 0, f.Stream, []byte(refuse))
		return
	}
	st := &muxSrvStream{id: f.Stream, tenant: tenant}
	st.stdin.init(sc.s.opt.streamBuf(), 0, true, nil)
	sc.smu.Lock()
	sc.streams[f.Stream] = st
	sc.smu.Unlock()
	go sc.runStream(st, prog)
}

// runStream runs one program instance over the stream: stdin from the
// demux buffer, stdout framed back as DATA, and a terminal CLOSE
// reporting the program's disposition.
func (sc *muxSrvConn) runStream(st *muxSrvStream, prog proc.Program) {
	err := prog(stdinReader{&st.stdin}, &streamWriter{sc: sc, st: st})
	sc.smu.Lock()
	delete(sc.streams, st.id)
	sc.smu.Unlock()
	st.stdin.closeRead() // drop undelivered stdin bytes
	flags := uint8(0)
	var payload []byte
	if err != nil {
		flags = mux.FlagError
		msg := err.Error()
		if len(msg) > 256 {
			msg = msg[:256]
		}
		payload = []byte(msg)
	}
	sc.writeFrame(mux.TypeClose, flags, st.id, payload)
	sc.s.release(sc, st.tenant)
}

// teardown ends the connection exactly once: every live stream's stdin
// is finished so its program unwinds (scoring served), and the socket is
// closed. Matching the one-conn server's semantics, a client that
// vanishes mid-stream hangs up its programs, it does not "cut" them.
func (sc *muxSrvConn) teardown() {
	sc.downOnce.Do(func() {
		sc.w.fail(net.ErrClosed)
		sc.c.Close()
		sc.smu.Lock()
		streams := make([]*muxSrvStream, 0, len(sc.streams))
		for _, st := range sc.streams {
			streams = append(streams, st)
		}
		sc.smu.Unlock()
		for _, st := range streams {
			st.stdin.finish(io.EOF)
		}
		sc.s.mu.Lock()
		delete(sc.s.conns, sc)
		sc.s.mu.Unlock()
	})
}

// stdinReader adapts a stream's demux buffer as the program's stdin.
type stdinReader struct{ q *inbox }

func (r stdinReader) Read(b []byte) (int, error) { return r.q.read(b) }

// streamWriter frames a program's stdout as DATA toward the client,
// splitting at the protocol's payload bound. Output after a cancel or a
// dead connection is swallowed so unwinding programs don't error-spin.
type streamWriter struct {
	sc *muxSrvConn
	st *muxSrvStream
}

func (w *streamWriter) Write(b []byte) (int, error) {
	total := len(b)
	for len(b) > 0 {
		chunk := b
		if len(chunk) > mux.MaxPayload {
			chunk = chunk[:mux.MaxPayload]
		}
		if w.st.discard.Load() {
			return total, nil
		}
		// A dead connection surfaces as a write error; unwinding programs
		// must not error-spin, so swallow it like the cancel case.
		if w.sc.w.write(mux.Frame{Type: mux.TypeData, Stream: w.st.id, Payload: chunk}) != nil {
			return total, nil
		}
		b = b[len(chunk):]
	}
	return total, nil
}
