// Package netx is the socket transport: a session that arrives over a
// wire instead of a fork. It implements the same contract as the
// in-process transports of internal/proc — blocking Read/Write, CloseWrite
// half-close, and the event-capable TryRead + SetReadNotify doorbell pair
// the sharded scheduler (internal/core/shard.go) drains sessions with —
// on top of a net.Conn.
//
// The division of timeout labor is deliberate and narrow: transport-level
// read deadlines here are plumbing (a rolling poll so a quiet socket never
// wedges the reader against teardown), and they are always absorbed as
// transient retries. They never surface as EOF or as a timeout. The
// engine's `timeout` variable, armed per Expect call, remains the only
// timeout the dialogue can observe — a socket session times out exactly
// like a pty session does, from the engine's own timer.
//
// Backpressure is bounded at both ends. Inbound, the reader goroutine
// parks once ReadBuf bytes are queued undrained, which stops reading the
// socket, which clogs the peer through TCP flow control — the same "pty
// output queue fills" behaviour virtual transports get from their bounded
// duplex. Outbound, Write blocks on the kernel socket buffer; an optional
// WriteStall deadline converts a peer that never drains into a hard
// ErrWriteStall instead of a goroutine parked forever.
package netx

import (
	"errors"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Options tunes a socket transport endpoint. The zero value is sensible.
type Options struct {
	// ReadBuf bounds the inbox between the socket reader and the engine
	// (bytes, default 64 KiB). A full inbox blocks the reader — the
	// inbound backpressure bound.
	ReadBuf int
	// PollInterval is the rolling read deadline the reader arms on the
	// socket (default 1s). Deadline expiries are transport plumbing,
	// absorbed as transient retries; they are never mapped to EOF or to
	// the engine's timeout semantics. Negative disables the deadline.
	PollInterval time.Duration
	// WriteStall, when > 0, bounds how long one Write may block on a peer
	// that never drains; past it the write fails with ErrWriteStall
	// (non-transient, so the engine gives up instead of retrying).
	WriteStall time.Duration
	// DialTimeout bounds Dial (default 10s).
	DialTimeout time.Duration
}

const (
	defaultReadBuf      = 64 << 10
	defaultPollInterval = time.Second
	defaultDialTimeout  = 10 * time.Second
)

// ErrWriteStall reports a Write that exceeded Options.WriteStall against a
// peer that stopped draining. It is deliberately not Temporary(): a
// stalled peer past the bound is a dead dialogue, not a retry.
var ErrWriteStall = errors.New("netx: write stalled past deadline")

func (o Options) readBuf() int {
	if o.ReadBuf <= 0 {
		return defaultReadBuf
	}
	return o.ReadBuf
}

func (o Options) pollInterval() time.Duration {
	if o.PollInterval == 0 {
		return defaultPollInterval
	}
	if o.PollInterval < 0 {
		return 0
	}
	return o.PollInterval
}

func (o Options) dialTimeout() time.Duration {
	if o.DialTimeout <= 0 {
		return defaultDialTimeout
	}
	return o.DialTimeout
}

// Conn is one endpoint of a socket-backed session. A single reader
// goroutine owned by the transport moves bytes from the socket into a
// bounded inbox; the inbox supplies the non-blocking TryRead and the
// level-triggered SetReadNotify doorbell, so the sharded scheduler adds
// no goroutine of its own to own a network session.
type Conn struct {
	c   net.Conn
	opt Options

	in   inbox
	done chan struct{}

	closed    atomic.Bool
	closeOnce sync.Once
	closeErr  error

	writeMu sync.Mutex
}

// Dial connects to a TCP addr and returns the transport endpoint.
func Dial(addr string, opt Options) (*Conn, error) {
	d := net.Dialer{Timeout: opt.dialTimeout()}
	c, err := d.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return Wrap(c, opt), nil
}

// Wrap adopts an established net.Conn as a transport endpoint, starting
// its reader goroutine. The Conn owns c from here on.
func Wrap(c net.Conn, opt Options) *Conn {
	n := &Conn{c: c, opt: opt, done: make(chan struct{})}
	n.in.init(opt.readBuf())
	go n.reader()
	return n
}

// reader is the transport-owned goroutine: socket → inbox, with the
// rolling poll deadline and the EOF/RST → disposition mapping. A clean
// FIN or a local Close finishes the inbox with io.EOF; a reset (or any
// other hard error) preserves the error so the session's exit
// disposition reports what actually happened on the wire.
func (n *Conn) reader() {
	defer close(n.done)
	buf := make([]byte, 4096)
	poll := n.opt.pollInterval()
	for {
		if poll > 0 {
			n.c.SetReadDeadline(time.Now().Add(poll))
		}
		k, err := n.c.Read(buf)
		if k > 0 {
			if !n.in.put(buf[:k]) {
				return // read side torn down locally
			}
		}
		if err == nil {
			continue
		}
		switch {
		case errors.Is(err, os.ErrDeadlineExceeded):
			// Poll tick: transport plumbing, not a dialogue event. The
			// engine's own Expect timer is the only timeout semantics.
			continue
		case isTransient(err):
			continue
		case n.closed.Load() || errors.Is(err, net.ErrClosed):
			// Local close: a deliberate hangup, clean by definition.
			n.in.finish(io.EOF)
			return
		case errors.Is(err, io.EOF):
			n.in.finish(io.EOF)
			return
		default:
			n.in.finish(err) // RST and friends: preserved disposition
			return
		}
	}
}

// isTransient mirrors the engine's retry test: anything advertising
// Temporary() that is not a deadline expiry (deadlines are handled above).
func isTransient(err error) bool {
	var temp interface{ Temporary() bool }
	return errors.As(err, &temp) && temp.Temporary() &&
		!errors.Is(err, os.ErrDeadlineExceeded)
}

// Read blocks for inbound bytes, returning the terminal disposition
// (io.EOF for a clean hangup) once the stream is finished and drained.
func (n *Conn) Read(b []byte) (int, error) { return n.in.read(b) }

// TryRead is the scheduler's non-blocking drain: ok=false means a
// blocking Read would have parked; at the end of the stream it reports
// (0, true, err) with the terminal disposition.
func (n *Conn) TryRead(b []byte) (int, bool, error) { return n.in.tryRead(b) }

// SetReadNotify installs the level-triggered doorbell: fn runs whenever
// bytes become readable or the stream finishes. Bytes queued before
// installation do not ring it; callers sweep once after installing.
func (n *Conn) SetReadNotify(fn func()) { n.in.setNotify(fn) }

// Write sends bytes to the peer, blocking on the kernel socket buffer —
// the outbound backpressure bound. With Options.WriteStall set, a write
// still blocked past the deadline fails with ErrWriteStall.
func (n *Conn) Write(b []byte) (int, error) {
	n.writeMu.Lock()
	defer n.writeMu.Unlock()
	if n.closed.Load() {
		return 0, net.ErrClosed
	}
	if n.opt.WriteStall > 0 {
		n.c.SetWriteDeadline(time.Now().Add(n.opt.WriteStall))
		defer n.c.SetWriteDeadline(time.Time{})
	}
	k, err := n.c.Write(b)
	if err != nil && errors.Is(err, os.ErrDeadlineExceeded) {
		// A deadline expiry advertises Temporary(); rewrap so the engine's
		// short-write retry loop does not spin on a dead peer forever.
		return k, ErrWriteStall
	}
	return k, err
}

// CloseWrite half-closes the outbound direction (TCP FIN): the remote
// program reads EOF on its stdin while its remaining output stays
// readable here — the socket analogue of closing a child's stdin pipe.
func (n *Conn) CloseWrite() error {
	type closeWriter interface{ CloseWrite() error }
	if cw, ok := n.c.(closeWriter); ok {
		return cw.CloseWrite()
	}
	return nil
}

// Close tears the connection down. Matching the virtual transport's
// close semantics, undelivered inbound bytes are dropped and subsequent
// reads see a clean EOF immediately; the reader goroutine unblocks on the
// socket close and exits.
func (n *Conn) Close() error {
	n.closeOnce.Do(func() {
		n.closed.Store(true)
		n.in.closeRead()
		n.closeErr = n.c.Close()
	})
	return n.closeErr
}

// Done is closed when the stream dialogue is over: the reader observed
// EOF, a reset, or a local close, and the terminal disposition is set.
func (n *Conn) Done() <-chan struct{} { return n.done }

// Err returns the terminal disposition after Done: nil for a clean
// hangup, the preserved wire error otherwise.
func (n *Conn) Err() error {
	select {
	case <-n.done:
	default:
		return nil
	}
	if err := n.in.terminal(); err != nil && err != io.EOF {
		return err
	}
	return nil
}

// WaitStatus blocks until the dialogue is over and reports it
// process-style: status 0 for a clean hangup, 1 when the connection died
// with an error — the same convention virtual programs use.
func (n *Conn) WaitStatus() (int, error) {
	<-n.done
	if n.Err() != nil {
		return 1, nil
	}
	return 0, nil
}

// RemoteAddr reports the peer address.
func (n *Conn) RemoteAddr() net.Addr { return n.c.RemoteAddr() }

// inbox is the bounded byte queue between the socket reader and the
// engine, with the same level-triggered doorbell semantics as the
// virtual transport's memPipe: TryRead that never blocks, a notify
// callback rung (under mu) per queued chunk and at finish, and writer
// backpressure once max bytes are queued.
type inbox struct {
	mu     sync.Mutex
	data   *sync.Cond
	space  *sync.Cond
	buf    []byte
	max    int
	fin    bool  // no more bytes will ever arrive
	err    error // terminal disposition, valid once fin
	closed bool  // read side torn down locally
	notify func()
}

func (q *inbox) init(max int) {
	if max < 1 {
		max = 1
	}
	q.max = max
	q.data = sync.NewCond(&q.mu)
	q.space = sync.NewCond(&q.mu)
}

// put queues a chunk from the reader, blocking while the inbox is full.
// It reports false once the read side is gone and the reader should stop.
func (q *inbox) put(b []byte) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(b) > 0 {
		if q.closed || q.fin {
			return false
		}
		for len(q.buf) >= q.max {
			q.space.Wait()
			if q.closed || q.fin {
				return false
			}
		}
		room := q.max - len(q.buf)
		chunk := b
		if len(chunk) > room {
			chunk = chunk[:room]
		}
		q.buf = append(q.buf, chunk...)
		b = b[len(chunk):]
		q.data.Broadcast()
		// Ring per chunk, under mu: a reader parked on space has already
		// made bytes readable, and a doorbell deferred to return time
		// would deadlock the engine loop against the socket reader.
		if q.notify != nil {
			q.notify()
		}
	}
	return true
}

// finish marks the stream over with its terminal disposition.
func (q *inbox) finish(err error) {
	q.mu.Lock()
	if !q.fin {
		q.fin = true
		q.err = err
	}
	q.data.Broadcast()
	q.space.Broadcast()
	if q.notify != nil {
		q.notify()
	}
	q.mu.Unlock()
}

// closeRead tears down the read side locally: pending bytes are dropped
// and readers see a clean EOF, matching the virtual duplex's CloseRead.
func (q *inbox) closeRead() {
	q.mu.Lock()
	q.closed = true
	q.buf = nil
	if !q.fin {
		q.fin = true
		q.err = io.EOF
	}
	q.data.Broadcast()
	q.space.Broadcast()
	if q.notify != nil {
		q.notify()
	}
	q.mu.Unlock()
}

func (q *inbox) read(b []byte) (int, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.buf) == 0 {
		if q.fin {
			if q.err == nil {
				return 0, io.EOF
			}
			return 0, q.err
		}
		q.data.Wait()
	}
	n := copy(b, q.buf)
	q.buf = q.buf[n:]
	if len(q.buf) == 0 {
		q.buf = nil
	}
	q.space.Broadcast()
	return n, nil
}

func (q *inbox) tryRead(b []byte) (int, bool, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.buf) == 0 {
		if q.fin {
			if q.err == nil {
				return 0, true, io.EOF
			}
			return 0, true, q.err
		}
		return 0, false, nil
	}
	n := copy(b, q.buf)
	q.buf = q.buf[n:]
	if len(q.buf) == 0 {
		q.buf = nil
	}
	q.space.Broadcast()
	return n, true, nil
}

func (q *inbox) setNotify(fn func()) {
	q.mu.Lock()
	q.notify = fn
	q.mu.Unlock()
}

func (q *inbox) terminal() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.err
}
