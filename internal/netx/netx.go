// Package netx is the socket transport: a session that arrives over a
// wire instead of a fork. It implements the same contract as the
// in-process transports of internal/proc — blocking Read/Write, CloseWrite
// half-close, and the event-capable TryRead + SetReadNotify doorbell pair
// the sharded scheduler (internal/core/shard.go) drains sessions with —
// on top of a net.Conn.
//
// Ingest is zero-copy by default: socket reads land in pooled Segments
// (segment.go) whose ownership travels with them — reader → inbox →
// TryReadOwned → gap-buffer backing — so the steady-state path moves no
// payload bytes between buffers. The per-connection reader goroutine is
// itself optional: a deferred connection (DialDeferred/WrapDeferred) can
// be registered with a shard's readiness Poller (poller_linux.go), which
// reads many sockets from one loop via raw epoll. Options.Legacy keeps
// the original copying slab inbox and eager reader goroutine as the
// referee arm the E19 memguard gate measures the zero-copy path against.
//
// The division of timeout labor is deliberate and narrow: transport-level
// read deadlines here are plumbing (a rolling poll so a quiet socket never
// wedges the reader against teardown), and they are always absorbed as
// transient retries. They never surface as EOF or as a timeout. The
// engine's `timeout` variable, armed per Expect call, remains the only
// timeout the dialogue can observe — a socket session times out exactly
// like a pty session does, from the engine's own timer.
//
// Backpressure is bounded at both ends. Inbound, the producer (reader
// goroutine or poller) parks once ReadBuf bytes are queued undrained,
// which stops reading the socket, which clogs the peer through TCP flow
// control — the same "pty output queue fills" behaviour virtual
// transports get from their bounded duplex. Outbound, Write blocks on the
// kernel socket buffer; an optional WriteStall deadline converts a peer
// that never drains into a hard ErrWriteStall instead of a goroutine
// parked forever.
package netx

import (
	"errors"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/metrics"
	"repro/internal/proc"
)

// Options tunes a socket transport endpoint. The zero value is sensible.
type Options struct {
	// ReadBuf bounds the inbox between the socket reader and the engine
	// (bytes, default 64 KiB). A full inbox blocks the producer — the
	// inbound backpressure bound.
	ReadBuf int
	// PollInterval is the rolling read deadline the fallback reader arms
	// on the socket (default 1s). Deadline expiries are transport
	// plumbing, absorbed as transient retries; they are never mapped to
	// EOF or to the engine's timeout semantics. Negative disables the
	// deadline. The epoll readiness loop needs no poll deadline at all.
	PollInterval time.Duration
	// WriteStall, when > 0, bounds how long one Write may block on a peer
	// that never drains; past it the write fails with ErrWriteStall
	// (non-transient, so the engine gives up instead of retrying).
	WriteStall time.Duration
	// DialTimeout bounds Dial (default 10s).
	DialTimeout time.Duration
	// Stats, when non-nil, receives ingest accounting: bytes copied vs
	// handed off by ownership transfer, and payload-buffer allocations.
	Stats *metrics.IngestStats
	// Pool supplies the segment pool reads lease from; nil uses a shared
	// process-wide pool sized to the read chunk.
	Pool *SegmentPool
	// Legacy selects the original copying ingest path: a byte-slab inbox
	// the reader copies into and TryRead copies out of, one eager reader
	// goroutine per connection, no ownership transfer. It exists as the
	// frozen referee arm for the E19 comparison and is never the default.
	Legacy bool
	// NoPoller keeps a zero-copy connection off any readiness Poller
	// (Register refuses it), forcing the fallback reader goroutine. The
	// conformance suite uses it to differentially test the two loops.
	NoPoller bool
}

const (
	defaultReadBuf      = 64 << 10
	defaultPollInterval = time.Second
	defaultDialTimeout  = 10 * time.Second
	minReadChunk        = 4096
	maxReadChunk        = 64 << 10
)

// ErrWriteStall reports a Write that exceeded Options.WriteStall against a
// peer that stopped draining. It is deliberately not Temporary(): a
// stalled peer past the bound is a dead dialogue, not a retry.
var ErrWriteStall = errors.New("netx: write stalled past deadline")

func (o Options) readBuf() int {
	if o.ReadBuf <= 0 {
		return defaultReadBuf
	}
	return o.ReadBuf
}

// readChunk sizes one socket read from the configured inbox bound instead
// of a fixed 4 KiB, so large-inbox configs don't degrade to 4 KiB
// syscalls: an eighth of the inbox, clamped to [4 KiB, 64 KiB].
// ReadChunk reports the per-read segment size these options produce —
// the capacity callers should give a custom SegmentPool.
func (o Options) ReadChunk() int { return o.readChunk() }

func (o Options) readChunk() int {
	c := o.readBuf() / 8
	if c < minReadChunk {
		c = minReadChunk
	}
	if c > maxReadChunk {
		c = maxReadChunk
	}
	return c
}

func (o Options) pollInterval() time.Duration {
	if o.PollInterval == 0 {
		return defaultPollInterval
	}
	if o.PollInterval < 0 {
		return 0
	}
	return o.PollInterval
}

func (o Options) dialTimeout() time.Duration {
	if o.DialTimeout <= 0 {
		return defaultDialTimeout
	}
	return o.DialTimeout
}

// Ingest modes a Conn can be in. A connection starts deferred and moves
// exactly once to one of the running modes; the transition is a CAS so a
// poller registration and a blocking Read racing each other settle on a
// single owner of the socket's read side.
const (
	modeDeferred int32 = iota // no ingest yet (DialDeferred/WrapDeferred)
	modeReader                // fallback reader goroutine, pooled segments
	modePolled                // a shard readiness Poller owns the fd
	modeLegacy                // referee: reader goroutine + copying slab
)

// Conn is one endpoint of a socket-backed session. Its read side is owned
// by exactly one producer — a readiness Poller or a fallback reader
// goroutine — that moves bytes from the socket into a bounded inbox of
// owned segments; the inbox supplies blocking Read, the non-blocking
// TryRead, the ownership-transfer TryReadOwned, and the level-triggered
// SetReadNotify doorbell.
type Conn struct {
	c    net.Conn
	opt  Options
	pool *SegmentPool

	in   inbox
	done chan struct{}

	mode    atomic.Int32
	finOnce sync.Once

	closed    atomic.Bool
	closeOnce sync.Once
	closeErr  error

	writeMu sync.Mutex

	// Readiness-loop attachment (nil/zero unless Register succeeded).
	poll    *Poller
	pollTok int32
	raw     syscall.RawConn
	parked  atomic.Bool
}

// Dial connects to a TCP addr and returns the transport endpoint with its
// ingest already running (fallback reader goroutine).
func Dial(addr string, opt Options) (*Conn, error) {
	n, err := DialDeferred(addr, opt)
	if err != nil {
		return nil, err
	}
	n.StartIngest()
	return n, nil
}

// DialDeferred connects without starting ingest: no reader goroutine
// exists until the connection is registered with a Poller or StartIngest
// runs (a blocking Read starts it implicitly). The sharded scheduler uses
// this window to claim the socket for its per-shard readiness loop.
func DialDeferred(addr string, opt Options) (*Conn, error) {
	d := net.Dialer{Timeout: opt.dialTimeout()}
	c, err := d.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return WrapDeferred(c, opt), nil
}

// Wrap adopts an established net.Conn as a transport endpoint, starting
// its ingest. The Conn owns c from here on.
func Wrap(c net.Conn, opt Options) *Conn {
	n := WrapDeferred(c, opt)
	n.StartIngest()
	return n
}

// WrapDeferred adopts an established net.Conn without starting ingest;
// see DialDeferred.
func WrapDeferred(c net.Conn, opt Options) *Conn {
	n := &Conn{c: c, opt: opt, done: make(chan struct{})}
	segSize := 0
	if !opt.Legacy {
		n.pool = opt.Pool
		if n.pool == nil {
			n.pool = poolFor(opt.readChunk())
		}
		segSize = n.pool.Size()
	}
	n.in.init(opt.readBuf(), segSize, opt.Legacy, opt.Stats)
	return n
}

// StartIngest starts the fallback reader goroutine if no producer owns
// the read side yet. It is idempotent and safe to race with a Poller
// registration: exactly one producer wins.
func (n *Conn) StartIngest() {
	want := modeReader
	if n.opt.Legacy {
		want = modeLegacy
	}
	if n.mode.CompareAndSwap(modeDeferred, want) {
		go n.reader()
	}
}

// finish marks the dialogue over exactly once: terminal disposition into
// the inbox (ringing the doorbell) and Done closed.
func (n *Conn) finish(err error) {
	n.finOnce.Do(func() {
		n.in.finish(err)
		close(n.done)
	})
}

// reader is the fallback transport-owned goroutine: socket → inbox, with
// the rolling poll deadline and the EOF/RST → disposition mapping. A
// clean FIN or a local Close finishes the inbox with io.EOF; a reset (or
// any other hard error) preserves the error so the session's exit
// disposition reports what actually happened on the wire.
//
// In the default mode each read lands in a leased segment queued whole —
// no copy; in Legacy mode it lands in a reusable scratch buffer the inbox
// slab copies out of, reproducing the original data path byte for byte.
func (n *Conn) reader() {
	poll := n.opt.pollInterval()
	legacy := n.mode.Load() == modeLegacy
	var scratch []byte
	if legacy {
		scratch = make([]byte, n.opt.readChunk())
	}
	for {
		if poll > 0 {
			n.c.SetReadDeadline(time.Now().Add(poll))
		}
		var k int
		var err error
		var seg *Segment
		if legacy {
			k, err = n.c.Read(scratch)
			if k > 0 && !n.in.put(scratch[:k]) {
				n.finish(io.EOF) // read side torn down locally
				return
			}
		} else {
			seg = n.pool.Get()
			k, err = n.c.Read(seg.buf)
			if k > 0 {
				seg.n = k
				if !n.in.putSeg(seg) {
					n.finish(io.EOF)
					return
				}
			} else {
				seg.Release()
			}
		}
		if err == nil {
			continue
		}
		switch {
		case errors.Is(err, os.ErrDeadlineExceeded):
			// Poll tick: transport plumbing, not a dialogue event. The
			// engine's own Expect timer is the only timeout semantics.
			continue
		case isTransient(err):
			continue
		case n.closed.Load() || errors.Is(err, net.ErrClosed):
			// Local close: a deliberate hangup, clean by definition.
			n.finish(io.EOF)
			return
		case errors.Is(err, io.EOF):
			n.finish(io.EOF)
			return
		default:
			n.finish(err) // RST and friends: preserved disposition
			return
		}
	}
}

// isTransient mirrors the engine's retry test: anything advertising
// Temporary() that is not a deadline expiry (deadlines are handled above).
func isTransient(err error) bool {
	var temp interface{ Temporary() bool }
	return errors.As(err, &temp) && temp.Temporary() &&
		!errors.Is(err, os.ErrDeadlineExceeded)
}

// Read blocks for inbound bytes, returning the terminal disposition
// (io.EOF for a clean hangup) once the stream is finished and drained.
// On a deferred connection nobody claimed, the first Read starts the
// fallback reader.
func (n *Conn) Read(b []byte) (int, error) {
	if n.mode.Load() == modeDeferred {
		n.StartIngest()
	}
	return n.in.read(b)
}

// TryRead is the scheduler's non-blocking drain: ok=false means a
// blocking Read would have parked; at the end of the stream it reports
// (0, true, err) with the terminal disposition.
func (n *Conn) TryRead(b []byte) (int, bool, error) {
	if n.mode.Load() == modeDeferred {
		n.StartIngest()
	}
	return n.in.tryRead(b)
}

// TryReadOwned pops the next queued segment whole, transferring its
// ownership to the caller — the zero-copy drain. Contract matches
// TryRead: ok=false would have parked, (nil, true, err) is stream end.
// The returned chunk must be Released once its bytes are forgotten.
func (n *Conn) TryReadOwned() (proc.Owned, bool, error) {
	if n.mode.Load() == modeDeferred {
		n.StartIngest()
	}
	g, ok, err := n.in.tryTake()
	if g == nil {
		return nil, ok, err // explicit nil interface, not (*Segment)(nil)
	}
	return g, ok, err
}

// OwnedEnabled reports whether this connection actually runs the
// ownership-transfer path; a Legacy connection implements the method set
// but copies internally, and the engine must not treat it as zero-copy.
func (n *Conn) OwnedEnabled() bool { return !n.opt.Legacy }

// SetReadNotify installs the level-triggered doorbell: fn runs whenever
// bytes become readable or the stream finishes. Bytes queued before
// installation do not ring it; callers sweep once after installing.
func (n *Conn) SetReadNotify(fn func()) { n.in.setNotify(fn) }

// Write sends bytes to the peer, blocking on the kernel socket buffer —
// the outbound backpressure bound. With Options.WriteStall set, a write
// still blocked past the deadline fails with ErrWriteStall.
func (n *Conn) Write(b []byte) (int, error) {
	n.writeMu.Lock()
	defer n.writeMu.Unlock()
	if n.closed.Load() {
		return 0, net.ErrClosed
	}
	if n.opt.WriteStall > 0 {
		n.c.SetWriteDeadline(time.Now().Add(n.opt.WriteStall))
		defer n.c.SetWriteDeadline(time.Time{})
	}
	k, err := n.c.Write(b)
	if err != nil && errors.Is(err, os.ErrDeadlineExceeded) {
		// A deadline expiry advertises Temporary(); rewrap so the engine's
		// short-write retry loop does not spin on a dead peer forever.
		return k, ErrWriteStall
	}
	return k, err
}

// CloseWrite half-closes the outbound direction (TCP FIN): the remote
// program reads EOF on its stdin while its remaining output stays
// readable here — the socket analogue of closing a child's stdin pipe.
func (n *Conn) CloseWrite() error {
	type closeWriter interface{ CloseWrite() error }
	if cw, ok := n.c.(closeWriter); ok {
		return cw.CloseWrite()
	}
	return nil
}

// Close tears the connection down. Matching the virtual transport's
// close semantics, undelivered inbound bytes are dropped (their segments
// returned to the pool) and subsequent reads see a clean EOF immediately.
// A reader goroutine unblocks on the socket close and exits; a polled or
// never-started connection has no goroutine to observe the close, so the
// dialogue is finished right here.
func (n *Conn) Close() error {
	n.closeOnce.Do(func() {
		n.closed.Store(true)
		n.in.closeRead()
		n.closeErr = n.c.Close()
		n.pollDetach()
		if m := n.mode.Load(); m != modeReader && m != modeLegacy {
			n.finish(io.EOF)
		}
	})
	return n.closeErr
}

// Done is closed when the stream dialogue is over: the producer observed
// EOF, a reset, or a local close, and the terminal disposition is set.
func (n *Conn) Done() <-chan struct{} { return n.done }

// Err returns the terminal disposition after Done: nil for a clean
// hangup, the preserved wire error otherwise.
func (n *Conn) Err() error {
	select {
	case <-n.done:
	default:
		return nil
	}
	if err := n.in.terminal(); err != nil && err != io.EOF {
		return err
	}
	return nil
}

// WaitStatus blocks until the dialogue is over and reports it
// process-style: status 0 for a clean hangup, 1 when the connection died
// with an error — the same convention virtual programs use.
func (n *Conn) WaitStatus() (int, error) {
	<-n.done
	if n.Err() != nil {
		return 1, nil
	}
	return 0, nil
}

// RemoteAddr reports the peer address.
func (n *Conn) RemoteAddr() net.Addr { return n.c.RemoteAddr() }

// inbox is the bounded queue between the socket's producer and the
// engine, with the same level-triggered doorbell semantics as the virtual
// transport's memPipe: TryRead that never blocks, a notify callback rung
// (under mu) per queued chunk and at finish, and producer backpressure
// once max bytes are queued.
//
// Two storage modes. The default is a queue of owned segments: putSeg
// enqueues a leased segment whole, tryTake dequeues one whole, and the
// copying read/tryRead paths advance through segment fronts, releasing
// each segment to its pool as it drains. Legacy mode is the original byte
// slab the producer copies into and readers copy out of — preserved
// verbatim (including its realloc-per-put behaviour once tryRead nils the
// emptied slab) as the frozen referee the E19 memguard gate measures the
// segment path against; "fixing" it would erase the baseline.
type inbox struct {
	mu     sync.Mutex
	data   *sync.Cond
	space  *sync.Cond
	max    int
	stats  *metrics.IngestStats
	legacy bool

	buf []byte // legacy slab

	segs   []*Segment // segment queue; segs[head:] are live
	head   int
	total  int // queued payload bytes across segs
	segCap int // max queued segments (bounds memory for tiny reads)

	fin     bool  // no more bytes will ever arrive
	err     error // terminal disposition, valid once fin
	closed  bool  // read side torn down locally
	notify  func()
	spaceFn func() // poller re-arm hook, invoked outside mu
}

func (q *inbox) init(max, segSize int, legacy bool, stats *metrics.IngestStats) {
	if max < 1 {
		max = 1
	}
	q.max = max
	q.legacy = legacy
	q.stats = stats
	if segSize > 0 {
		q.segCap = max/segSize + 1
		if q.segCap < 2 {
			q.segCap = 2
		}
	}
	q.data = sync.NewCond(&q.mu)
	q.space = sync.NewCond(&q.mu)
}

// put queues a chunk by copying it into the legacy slab, blocking while
// the inbox is full. It reports false once the read side is gone and the
// reader should stop. Segment-mode connections never call it.
func (q *inbox) put(b []byte) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(b) > 0 {
		if q.closed || q.fin {
			return false
		}
		for len(q.buf) >= q.max {
			q.space.Wait()
			if q.closed || q.fin {
				return false
			}
		}
		room := q.max - len(q.buf)
		chunk := b
		if len(chunk) > room {
			chunk = chunk[:room]
		}
		capBefore := cap(q.buf)
		q.buf = append(q.buf, chunk...)
		if cap(q.buf) != capBefore {
			q.stats.AddAlloc()
		}
		q.stats.AddCopied(len(chunk))
		b = b[len(chunk):]
		q.data.Broadcast()
		// Ring per chunk, under mu: a reader parked on space has already
		// made bytes readable, and a doorbell deferred to return time
		// would deadlock the engine loop against the socket reader.
		if q.notify != nil {
			q.notify()
		}
	}
	return true
}

// putSeg queues a leased segment whole — ownership moves to the inbox, no
// copy — blocking while the inbox is full. On false the read side is gone;
// the segment has been returned to its pool and the producer should stop.
func (q *inbox) putSeg(g *Segment) bool {
	q.mu.Lock()
	for {
		if q.closed || q.fin {
			q.mu.Unlock()
			g.Release()
			return false
		}
		if q.total < q.max && len(q.segs)-q.head < q.segCap {
			break
		}
		q.space.Wait()
	}
	q.segs = append(q.segs, g)
	q.total += g.Len()
	q.stats.AddHandedOff(g.Len())
	q.data.Broadcast()
	if q.notify != nil {
		q.notify()
	}
	q.mu.Unlock()
	return true
}

// hasRoom reports whether the producer may queue another segment — the
// poller's pre-read check, so a readiness loop serving many connections
// never blocks inside putSeg (a single producer per connection means room
// observed here cannot vanish before the put).
func (q *inbox) hasRoom() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return !q.closed && !q.fin && q.total < q.max && len(q.segs)-q.head < q.segCap
}

// copyOutLocked copies queued bytes into b, releasing segments as they
// drain, and returns the count. Caller holds mu.
func (q *inbox) copyOutLocked(b []byte) int {
	n := 0
	for n < len(b) && q.head < len(q.segs) {
		g := q.segs[q.head]
		k := copy(b[n:], g.Bytes())
		g.advance(k)
		n += k
		q.total -= k
		if g.Len() == 0 {
			q.segs[q.head] = nil
			q.head++
			g.Release()
		}
	}
	q.compactLocked()
	q.stats.AddCopied(n)
	return n
}

// compactLocked rewinds the segment queue once drained (and shifts a
// long-consumed prefix down) so the slice never grows without bound.
func (q *inbox) compactLocked() {
	if q.head == len(q.segs) {
		q.segs = q.segs[:0]
		q.head = 0
	} else if q.head > 32 {
		n := copy(q.segs, q.segs[q.head:])
		for i := n; i < len(q.segs); i++ {
			q.segs[i] = nil
		}
		q.segs = q.segs[:n]
		q.head = 0
	}
}

// spaceFreedLocked reports whether the poller's re-arm hook should run:
// a parked producer has room again. Caller holds mu; the hook itself must
// be invoked after unlocking.
func (q *inbox) spaceFreedLocked() bool {
	return q.spaceFn != nil && !q.closed && !q.fin &&
		q.total < q.max && len(q.segs)-q.head < q.segCap
}

// finish marks the stream over with its terminal disposition.
func (q *inbox) finish(err error) {
	q.mu.Lock()
	if !q.fin {
		q.fin = true
		q.err = err
	}
	q.data.Broadcast()
	q.space.Broadcast()
	if q.notify != nil {
		q.notify()
	}
	q.mu.Unlock()
}

// closeRead tears down the read side locally: pending bytes are dropped
// (segments back to their pool) and readers see a clean EOF, matching the
// virtual duplex's CloseRead.
func (q *inbox) closeRead() {
	q.mu.Lock()
	q.closed = true
	q.buf = nil
	for i := q.head; i < len(q.segs); i++ {
		q.segs[i].Release()
		q.segs[i] = nil
	}
	q.segs, q.head, q.total = nil, 0, 0
	if !q.fin {
		q.fin = true
		q.err = io.EOF
	}
	q.data.Broadcast()
	q.space.Broadcast()
	if q.notify != nil {
		q.notify()
	}
	q.mu.Unlock()
}

func (q *inbox) read(b []byte) (int, error) {
	q.mu.Lock()
	if q.legacy {
		defer q.mu.Unlock()
		for len(q.buf) == 0 {
			if q.fin {
				if q.err == nil {
					return 0, io.EOF
				}
				return 0, q.err
			}
			q.data.Wait()
		}
		n := copy(b, q.buf)
		q.stats.AddCopied(n)
		q.buf = q.buf[n:]
		if len(q.buf) == 0 {
			q.buf = nil
		}
		q.space.Broadcast()
		return n, nil
	}
	for q.total == 0 {
		if q.fin {
			err := q.err
			q.mu.Unlock()
			if err == nil {
				err = io.EOF
			}
			return 0, err
		}
		q.data.Wait()
	}
	n := q.copyOutLocked(b)
	q.space.Broadcast()
	rearm := q.spaceFreedLocked()
	fn := q.spaceFn
	q.mu.Unlock()
	if rearm {
		fn()
	}
	return n, nil
}

func (q *inbox) tryRead(b []byte) (int, bool, error) {
	q.mu.Lock()
	if q.legacy {
		defer q.mu.Unlock()
		if len(q.buf) == 0 {
			if q.fin {
				if q.err == nil {
					return 0, true, io.EOF
				}
				return 0, true, q.err
			}
			return 0, false, nil
		}
		n := copy(b, q.buf)
		q.stats.AddCopied(n)
		q.buf = q.buf[n:]
		if len(q.buf) == 0 {
			q.buf = nil
		}
		q.space.Broadcast()
		return n, true, nil
	}
	if q.total == 0 {
		fin, err := q.fin, q.err
		q.mu.Unlock()
		if fin {
			if err == nil {
				err = io.EOF
			}
			return 0, true, err
		}
		return 0, false, nil
	}
	n := q.copyOutLocked(b)
	q.space.Broadcast()
	rearm := q.spaceFreedLocked()
	fn := q.spaceFn
	q.mu.Unlock()
	if rearm {
		fn()
	}
	return n, true, nil
}

// tryTake dequeues the front segment whole, moving its ownership to the
// caller. Same contract shape as tryRead; legacy inboxes always report
// not-ready so a misrouted caller falls back to the copying drain.
func (q *inbox) tryTake() (*Segment, bool, error) {
	q.mu.Lock()
	if q.legacy || q.total == 0 {
		fin, err := q.fin, q.err
		legacy, buffered := q.legacy, len(q.buf) > 0
		q.mu.Unlock()
		if legacy && buffered {
			return nil, false, nil
		}
		if fin {
			if err == nil {
				err = io.EOF
			}
			return nil, true, err
		}
		return nil, false, nil
	}
	g := q.segs[q.head]
	q.segs[q.head] = nil
	q.head++
	q.total -= g.Len()
	q.compactLocked()
	q.space.Broadcast()
	rearm := q.spaceFreedLocked()
	fn := q.spaceFn
	q.mu.Unlock()
	if rearm {
		fn()
	}
	return g, true, nil
}

func (q *inbox) setNotify(fn func()) {
	q.mu.Lock()
	q.notify = fn
	q.mu.Unlock()
}

func (q *inbox) setSpaceFn(fn func()) {
	q.mu.Lock()
	q.spaceFn = fn
	q.mu.Unlock()
}

func (q *inbox) terminal() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.err
}
