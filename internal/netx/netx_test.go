package netx

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/testutil"
)

// echoProg replies "ack:<line>\n" per line and returns on stdin EOF.
func echoProg(stdin io.Reader, stdout io.Writer) error {
	sc := bufio.NewScanner(stdin)
	for sc.Scan() {
		fmt.Fprintf(stdout, "ack:%s\n", sc.Text())
	}
	return nil
}

func readLine(t *testing.T, r io.Reader) string {
	t.Helper()
	var line []byte
	b := make([]byte, 1)
	for {
		n, err := r.Read(b)
		if n == 1 {
			line = append(line, b[0])
			if b[0] == '\n' {
				return string(line)
			}
		}
		if err != nil {
			t.Fatalf("readLine: %v (got %q)", err, line)
		}
	}
}

func TestConnRoundTripAndHalfClose(t *testing.T) {
	defer testutil.LeakCheck(t, 10, 5*time.Second)()
	srv, err := NewServer("127.0.0.1:0", echoProg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(time.Second)

	c, err := Dial(srv.Addr(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("hello\n")); err != nil {
		t.Fatal(err)
	}
	if got := readLine(t, c); got != "ack:hello\n" {
		t.Fatalf("got %q", got)
	}
	// Half-close: FIN delivers EOF to the program's stdin; its exit closes
	// the server side, which surfaces here as a clean EOF after the drain.
	if err := c.CloseWrite(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read(make([]byte, 16)); err != io.EOF {
		t.Fatalf("want io.EOF after half-close drain, got %v", err)
	}
	if status, err := c.WaitStatus(); status != 0 || err != nil {
		t.Fatalf("WaitStatus = %d, %v; want 0, nil", status, err)
	}
	if c.Err() != nil {
		t.Fatalf("clean hangup should have nil Err, got %v", c.Err())
	}
}

func TestTryReadNotifyDoorbell(t *testing.T) {
	defer testutil.LeakCheck(t, 10, 5*time.Second)()
	srv, err := NewServer("127.0.0.1:0", echoProg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(time.Second)

	c, err := Dial(srv.Addr(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	buf := make([]byte, 64)
	if n, ok, err := c.TryRead(buf); n != 0 || ok || err != nil {
		t.Fatalf("idle TryRead = (%d, %v, %v); want (0, false, nil)", n, ok, err)
	}

	ring := make(chan struct{}, 16)
	c.SetReadNotify(func() {
		select {
		case ring <- struct{}{}:
		default:
		}
	})
	if _, err := c.Write([]byte("ping\n")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ring:
	case <-time.After(5 * time.Second):
		t.Fatal("doorbell never rang after peer wrote")
	}
	var got strings.Builder
	for got.Len() < len("ack:ping\n") {
		n, ok, err := c.TryRead(buf)
		if err != nil {
			t.Fatalf("TryRead: %v", err)
		}
		if ok {
			got.Write(buf[:n])
			continue
		}
		select {
		case <-ring:
		case <-time.After(5 * time.Second):
			t.Fatalf("stalled draining, have %q", got.String())
		}
	}
	if got.String() != "ack:ping\n" {
		t.Fatalf("drained %q", got.String())
	}

	// EOF must ring the doorbell too and then report (0, true, io.EOF).
	if err := c.CloseWrite(); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for {
		n, ok, err := c.TryRead(buf)
		if ok && err == io.EOF && n == 0 {
			return
		}
		if err != nil {
			t.Fatalf("TryRead at EOF = (%d, %v, %v)", n, ok, err)
		}
		select {
		case <-ring:
		case <-deadline:
			t.Fatal("doorbell never rang for EOF")
		}
	}
}

// TestDeadlineAbsorbed pins the timeout division of labor: transport
// poll deadlines fire (aggressively here) against a silent peer and must
// never surface as EOF or data — the engine's own timer is the only
// timeout a dialogue can observe.
func TestDeadlineAbsorbed(t *testing.T) {
	defer testutil.LeakCheck(t, 10, 5*time.Second)()
	gate := make(chan struct{})
	srv, err := NewServer("127.0.0.1:0", func(stdin io.Reader, stdout io.Writer) error {
		<-gate // silent until released
		io.WriteString(stdout, "late\n")
		io.Copy(io.Discard, stdin)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(time.Second)

	c, err := Dial(srv.Addr(), Options{PollInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Dozens of poll deadlines expire during this window; none may leak out.
	quiet := time.After(150 * time.Millisecond)
	buf := make([]byte, 16)
	for {
		n, ok, err := c.TryRead(buf)
		if n != 0 || ok || err != nil {
			t.Fatalf("poll deadline leaked: TryRead = (%d, %v, %v)", n, ok, err)
		}
		select {
		case <-quiet:
		case <-time.After(time.Millisecond):
			continue
		}
		break
	}
	close(gate)
	if got := readLine(t, c); got != "late\n" {
		t.Fatalf("got %q after release", got)
	}
}

// TestResetDisposition pins RST plumbing: a hard peer reset is preserved
// as the terminal error (exit disposition 1), not masked as a clean EOF.
func TestResetDisposition(t *testing.T) {
	defer testutil.LeakCheck(t, 10, 5*time.Second)()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan *net.TCPConn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		accepted <- c.(*net.TCPConn)
	}()

	c, err := Dial(ln.Addr().String(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sc := <-accepted
	sc.SetLinger(0) // close now sends RST, not FIN
	sc.Close()

	_, err = c.Read(make([]byte, 16))
	if err == nil || err == io.EOF {
		t.Fatalf("want preserved reset error, got %v", err)
	}
	if status, _ := c.WaitStatus(); status != 1 {
		t.Fatalf("reset should report status 1, got %d", status)
	}
	if c.Err() == nil {
		t.Fatal("Err() should preserve the wire error after a reset")
	}
}

func TestLocalCloseIsCleanEOF(t *testing.T) {
	defer testutil.LeakCheck(t, 10, 5*time.Second)()
	srv, err := NewServer("127.0.0.1:0", echoProg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(time.Second)
	c, err := Dial(srv.Addr(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, err := c.Read(make([]byte, 8)); err != io.EOF {
		t.Fatalf("read after local close = %v; want io.EOF", err)
	}
	if status, _ := c.WaitStatus(); status != 0 {
		t.Fatalf("local close is a deliberate hangup; status = %d, want 0", status)
	}
}

// TestWriteStallBound pins the outbound backpressure bound: against a
// peer that never drains, a Write blocks on the kernel buffers and then
// fails with ErrWriteStall instead of parking forever.
func TestWriteStallBound(t *testing.T) {
	defer testutil.LeakCheck(t, 10, 5*time.Second)()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	hold := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			hold <- c // never read from
		}
	}()
	c, err := Dial(ln.Addr().String(), Options{WriteStall: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	defer func() {
		if sc := <-hold; sc != nil {
			sc.Close()
		}
	}()

	chunk := make([]byte, 64<<10)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := c.Write(chunk); err != nil {
			if !errors.Is(err, ErrWriteStall) {
				t.Fatalf("want ErrWriteStall, got %v", err)
			}
			return
		}
	}
	t.Fatal("writes never stalled against a non-draining peer")
}

// TestServerShutdownDrains proves the drain contract (satellite: no
// session dropped mid-dialogue on SIGTERM): Shutdown stops accepting
// immediately but an already-admitted session finishes its dialogue —
// second exchange included — before the server goes away.
func TestServerShutdownDrains(t *testing.T) {
	defer testutil.LeakCheck(t, 10, 5*time.Second)()
	srv, err := NewServer("127.0.0.1:0", echoProg)
	if err != nil {
		t.Fatal(err)
	}

	c, err := Dial(srv.Addr(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("first\n")); err != nil {
		t.Fatal(err)
	}
	if got := readLine(t, c); got != "ack:first\n" {
		t.Fatalf("got %q", got)
	}

	// Mid-dialogue, the daemon is told to go away.
	drained := make(chan bool, 1)
	go func() { drained <- srv.Shutdown(10 * time.Second) }()

	// The drain gate closes only after the listener is down, so a single
	// dial here is deterministically refused — no dial-until-refused poll
	// racing the listener close against in-flight accepts.
	select {
	case <-srv.Draining():
	case <-time.After(5 * time.Second):
		t.Fatal("drain gate never closed")
	}
	if nc, err := net.DialTimeout("tcp", srv.Addr(), time.Second); err == nil {
		nc.Close()
		t.Fatal("new dial accepted after the drain gate closed")
	}

	// But the in-flight dialogue is not dropped: it completes normally.
	if _, err := c.Write([]byte("second\n")); err != nil {
		t.Fatalf("mid-drain write failed: %v", err)
	}
	if got := readLine(t, c); got != "ack:second\n" {
		t.Fatalf("mid-drain exchange got %q", got)
	}
	if err := c.CloseWrite(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read(make([]byte, 8)); err != io.EOF {
		t.Fatalf("want clean EOF to finish the dialogue, got %v", err)
	}

	select {
	case clean := <-drained:
		if !clean {
			t.Fatal("drain reported sessions cut; dialogue completed, want clean")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown never returned after the session finished")
	}
	if got := srv.Served(); got != 1 {
		t.Fatalf("Served = %d, want 1", got)
	}
}

// TestServerShutdownCutsAtDeadline is the other side of the contract:
// a session that outlives the grace window is force-closed and the drain
// reports unclean.
func TestServerShutdownCutsAtDeadline(t *testing.T) {
	defer testutil.LeakCheck(t, 10, 5*time.Second)()
	srv, err := NewServer("127.0.0.1:0", echoProg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(srv.Addr(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("hi\n")); err != nil {
		t.Fatal(err)
	}
	if got := readLine(t, c); got != "ack:hi\n" {
		t.Fatalf("got %q", got)
	}
	// Never send EOF: the program stays parked in its read loop.
	if clean := srv.Shutdown(30 * time.Millisecond); clean {
		t.Fatal("drain should report unclean when the grace deadline cuts a session")
	}
	// The cut surfaces on the client as end-of-stream (EOF or reset).
	if _, err := io.Copy(io.Discard, c); err != nil && !errors.Is(err, io.EOF) {
		// a reset disposition is acceptable here too; just don't hang
		t.Logf("cut session disposition: %v", err)
	}
}
