//go:build linux

package netx

import (
	"errors"
	"io"
	"sync"
	"syscall"
)

// Poller is a per-shard readiness loop: one goroutine multiplexing the
// socket reads of every connection registered with it, via a raw epoll
// instance. Registering a deferred Conn replaces its would-be reader
// goroutine, collapsing ingest from O(connections) goroutines to
// O(shards).
//
// Invariants:
//
//  1. Single producer: once Register wins the mode CAS, the poller's loop
//     is the only goroutine that reads the socket and fills the inbox.
//  2. One-shot arming: every fd is registered EPOLLONESHOT, so readiness
//     fires once and stays disarmed until the loop (or the inbox's
//     space hook) explicitly re-arms it. A connection parked on a full
//     inbox is simply left disarmed — no level-triggered spin — and the
//     kernel's receive buffer filling behind it is the TCP flow-control
//     backpressure, exactly like a parked reader goroutine.
//  3. fd safety: all reads and epoll_ctl calls go through
//     syscall.RawConn, whose reference counting keeps the fd pinned
//     against a concurrent Close — the poller never touches a raw fd
//     number it stored earlier.
//  4. Fairness: one readiness event drains at most maxPollReads segments
//     before re-arming and yielding, so a firehose connection cannot
//     starve its shard-mates.
type Poller struct {
	epfd  int
	wakeR int
	wakeW int
	done  chan struct{}

	closeOnce sync.Once

	mu     sync.Mutex
	conns  map[int32]*Conn
	next   int32
	closed bool
}

// ErrPollerUnavailable reports that a connection cannot join a readiness
// loop (legacy/NoPoller options, a non-syscall net.Conn, a closed
// poller, or a platform without epoll) and should fall back to its own
// reader goroutine via StartIngest.
var ErrPollerUnavailable = errors.New("netx: readiness poller unavailable")

// maxPollReads bounds how many segments one readiness event may drain
// before the connection re-arms and yields the loop.
const maxPollReads = 8

// wakeToken is the reserved epoll token for the wake pipe.
const wakeToken = 0

// NewPoller creates a readiness loop and starts its goroutine.
func NewPoller() (*Poller, error) {
	epfd, err := syscall.EpollCreate1(syscall.EPOLL_CLOEXEC)
	if err != nil {
		return nil, err
	}
	var pipe [2]int
	if err := syscall.Pipe2(pipe[:], syscall.O_NONBLOCK|syscall.O_CLOEXEC); err != nil {
		syscall.Close(epfd)
		return nil, err
	}
	ev := syscall.EpollEvent{Events: syscall.EPOLLIN, Fd: wakeToken}
	if err := syscall.EpollCtl(epfd, syscall.EPOLL_CTL_ADD, pipe[0], &ev); err != nil {
		syscall.Close(epfd)
		syscall.Close(pipe[0])
		syscall.Close(pipe[1])
		return nil, err
	}
	p := &Poller{
		epfd:  epfd,
		wakeR: pipe[0],
		wakeW: pipe[1],
		done:  make(chan struct{}),
		conns: make(map[int32]*Conn),
		next:  1,
	}
	go p.loop()
	return p, nil
}

// Register hands a deferred connection's read side to this poller. On
// ErrPollerUnavailable (or any registration failure) the connection is
// left deferred and the caller should StartIngest the fallback reader.
func (p *Poller) Register(n *Conn) error {
	if n.opt.Legacy || n.opt.NoPoller {
		return ErrPollerUnavailable
	}
	sc, ok := n.c.(syscall.Conn)
	if !ok {
		return ErrPollerUnavailable
	}
	if !n.mode.CompareAndSwap(modeDeferred, modePolled) {
		return errors.New("netx: ingest already started")
	}
	raw, err := sc.SyscallConn()
	if err != nil {
		n.mode.Store(modeDeferred)
		return err
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		n.mode.Store(modeDeferred)
		return ErrPollerUnavailable
	}
	tok := p.next
	p.next++
	p.conns[tok] = n
	p.mu.Unlock()

	n.raw = raw
	n.poll = p
	n.pollTok = tok
	n.in.setSpaceFn(n.rearmFromSpace)
	if err := p.arm(n, syscall.EPOLL_CTL_ADD); err != nil {
		p.forget(tok)
		n.in.setSpaceFn(nil)
		n.poll = nil
		n.mode.Store(modeDeferred)
		return err
	}
	return nil
}

// arm (re)installs the one-shot readiness interest for n's fd, with the
// connection token in the event payload.
func (p *Poller) arm(n *Conn, op int) error {
	var ctlErr error
	err := n.raw.Control(func(fd uintptr) {
		ev := syscall.EpollEvent{
			Events: syscall.EPOLLIN | syscall.EPOLLRDHUP | syscall.EPOLLONESHOT,
			Fd:     n.pollTok,
		}
		ctlErr = syscall.EpollCtl(p.epfd, op, int(fd), &ev)
	})
	if err != nil {
		return err
	}
	return ctlErr
}

func (p *Poller) forget(tok int32) {
	p.mu.Lock()
	delete(p.conns, tok)
	p.mu.Unlock()
}

func (p *Poller) lookup(tok int32) *Conn {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.conns[tok]
}

// loop is the readiness loop: wait, dispatch each ready connection's
// drain, repeat. Doorbell coalescing happens downstream — each putSeg
// rings the session's markDirty once per transition, and the shard steps
// its touched sessions once per ingest batch — so one epoll round of N
// ready sockets costs the shard one sweep, not N.
func (p *Poller) loop() {
	defer close(p.done)
	events := make([]syscall.EpollEvent, 128)
	for {
		nev, err := syscall.EpollWait(p.epfd, events, -1)
		if err != nil {
			if errors.Is(err, syscall.EINTR) {
				continue
			}
			p.cleanup()
			return
		}
		for i := 0; i < nev; i++ {
			tok := events[i].Fd
			if tok == wakeToken {
				p.mu.Lock()
				closed := p.closed
				p.mu.Unlock()
				if closed {
					p.cleanup()
					return
				}
				var drain [64]byte
				syscall.Read(p.wakeR, drain[:])
				continue
			}
			if c := p.lookup(tok); c != nil {
				c.pollReady()
			}
		}
	}
}

// cleanup finishes any connection still registered (a forced poller
// shutdown with live sessions reads as a clean hangup, the same verdict a
// killed reader goroutine would produce) and releases the kernel objects.
func (p *Poller) cleanup() {
	p.mu.Lock()
	conns := p.conns
	p.conns = make(map[int32]*Conn)
	p.mu.Unlock()
	for _, c := range conns {
		c.finish(io.EOF)
	}
	syscall.Close(p.epfd)
	syscall.Close(p.wakeR)
	syscall.Close(p.wakeW)
}

// Close stops the loop and waits for it to exit. Idempotent.
func (p *Poller) Close() {
	p.closeOnce.Do(func() {
		p.mu.Lock()
		p.closed = true
		p.mu.Unlock()
		syscall.Write(p.wakeW, []byte{1})
		<-p.done
	})
}

// pollReady drains one readiness event: lease a segment, read the socket
// through the RawConn (fd pinned against Close), queue the segment whole,
// until EAGAIN, EOF, a hard error, a full inbox, or the fairness budget.
// Runs only on the poller's loop goroutine.
func (n *Conn) pollReady() {
	for reads := 0; reads < maxPollReads; reads++ {
		if n.closed.Load() {
			n.poll.forget(n.pollTok)
			return
		}
		if !n.in.hasRoom() {
			// Park without re-arming (invariant 2); the inbox's space hook
			// re-arms when the engine drains. Recheck after publishing the
			// park so a drain racing this window cannot strand the fd with
			// neither side re-arming.
			n.parked.Store(true)
			if n.in.hasRoom() && n.parked.Swap(false) {
				continue
			}
			return
		}
		seg := n.pool.Get()
		var k int
		var rerr error
		cerr := n.raw.Read(func(fd uintptr) bool {
			k, rerr = syscall.Read(int(fd), seg.buf)
			return true
		})
		if k > 0 {
			seg.n = k
			if !n.in.putSeg(seg) {
				n.finish(io.EOF)
				n.poll.forget(n.pollTok)
				return
			}
		} else {
			seg.Release()
		}
		if cerr != nil {
			// Local close raced the read; Close has already set the clean
			// disposition, this finish is a no-op backstop.
			n.finish(io.EOF)
			n.poll.forget(n.pollTok)
			return
		}
		switch {
		case rerr == nil && k > 0:
			continue
		case rerr == nil: // read 0: FIN, clean hangup
			n.finish(io.EOF)
			n.poll.forget(n.pollTok)
			return
		case rerr == syscall.EAGAIN || rerr == syscall.EWOULDBLOCK:
			n.rearm()
			return
		case rerr == syscall.EINTR:
			continue
		default: // RST and friends: preserved disposition
			n.finish(rerr)
			n.poll.forget(n.pollTok)
			return
		}
	}
	// Budget spent with the socket still hot: re-arm and yield so
	// shard-mates on this loop get their turn (invariant 4).
	n.rearm()
}

// rearm re-enables one-shot readiness after it fired. Errors are
// deliberately dropped: the only causes are a concurrently closing fd,
// and Close finishes the dialogue itself.
func (n *Conn) rearm() {
	if n.poll == nil || n.closed.Load() {
		return
	}
	n.poll.arm(n, syscall.EPOLL_CTL_MOD)
}

// rearmFromSpace is the inbox's space hook: when the engine frees inbox
// room and the producer is parked, wake the fd back up.
func (n *Conn) rearmFromSpace() {
	if n.parked.Swap(false) {
		n.rearm()
	}
}

// pollDetach drops the poller's token for a locally closed connection.
// The kernel removes the fd from the interest set when the socket closes;
// only the token map needs cleaning here.
func (n *Conn) pollDetach() {
	if n.poll != nil {
		n.poll.forget(n.pollTok)
	}
}
