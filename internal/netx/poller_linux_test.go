//go:build linux

package netx

import (
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/testutil"
)

// pollerEcho stands up a loopback echo server, a deferred connection, and
// a poller owning its read side. Cleanup order matters: connection, then
// poller, then server drain.
func pollerEcho(t *testing.T, opt Options) (*Conn, *Poller, chan struct{}) {
	t.Helper()
	srv, err := NewServer("127.0.0.1:0", func(stdin io.Reader, stdout io.Writer) error {
		io.Copy(stdout, stdin)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	nc, err := DialDeferred(srv.Addr(), opt)
	if err != nil {
		srv.Shutdown(0)
		t.Fatal(err)
	}
	p, err := NewPoller()
	if err != nil {
		nc.Close()
		srv.Shutdown(0)
		t.Fatalf("NewPoller: %v", err)
	}
	rings := make(chan struct{}, 1)
	nc.SetReadNotify(func() {
		select {
		case rings <- struct{}{}:
		default:
		}
	})
	if err := p.Register(nc); err != nil {
		nc.Close()
		p.Close()
		srv.Shutdown(0)
		t.Fatalf("Register: %v", err)
	}
	t.Cleanup(func() {
		nc.Close()
		p.Close()
		if !srv.Shutdown(5 * time.Second) {
			t.Error("loopback server did not drain clean")
		}
	})
	return nc, p, rings
}

// drainOwned pulls owned chunks until want bytes arrived (verifying each
// against gen) or the stream ends; it returns the terminal error if the
// stream ended first.
func drainOwned(t *testing.T, nc *Conn, rings chan struct{}, want int, gen func(int) byte) error {
	t.Helper()
	seen := 0
	deadline := time.Now().Add(30 * time.Second)
	for seen < want {
		o, ok, err := nc.TryReadOwned()
		if o != nil {
			for i, b := range o.Bytes() {
				if b != gen(seen+i) {
					t.Fatalf("byte %d = %#x, want %#x", seen+i, b, gen(seen+i))
				}
			}
			seen += len(o.Bytes())
			o.Release()
			continue
		}
		if ok {
			return err
		}
		if time.Now().After(deadline) {
			t.Fatalf("stalled after %d of %d bytes", seen, want)
		}
		select {
		case <-rings:
		case <-time.After(50 * time.Millisecond):
		}
	}
	return nil
}

// TestPollerDeliversAndEOF: a registered connection runs zero reader
// goroutines — the poller loop moves the bytes — and a peer FIN arrives
// as the io.EOF disposition through the same owned-segment path.
func TestPollerDeliversAndEOF(t *testing.T) {
	defer testutil.LeakCheck(t, 10, 5*time.Second)()
	nc, _, rings := pollerEcho(t, Options{})

	if got := nc.mode.Load(); got != modePolled {
		t.Fatalf("ingest mode = %d after Register, want modePolled", got)
	}

	msg := []byte("ding ding ding\n")
	if _, err := nc.Write(msg); err != nil {
		t.Fatal(err)
	}
	if err := drainOwned(t, nc, rings, len(msg), func(i int) byte { return msg[i] }); err != nil {
		t.Fatalf("stream ended early: %v", err)
	}

	// Half-close: echo drains, server closes, FIN must surface as EOF.
	if err := nc.CloseWrite(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		o, ok, err := nc.TryReadOwned()
		if o != nil {
			o.Release()
			continue
		}
		if ok {
			if err != io.EOF {
				t.Fatalf("terminal disposition %v, want io.EOF", err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("EOF never arrived through the poller")
		}
		select {
		case <-rings:
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// TestPollerBackpressureRoundTrip floods a tiny inbox so the poller must
// park the fd (inbox full) and re-arm from the space hook many times;
// every byte must still arrive exactly once and in order.
func TestPollerBackpressureRoundTrip(t *testing.T) {
	defer testutil.LeakCheck(t, 10, 5*time.Second)()
	nc, _, rings := pollerEcho(t, Options{ReadBuf: 8 << 10})

	const total = 512 << 10
	pattern := func(i int) byte { return byte(i*131 + 3) }
	go func() {
		buf := make([]byte, 4096)
		for off := 0; off < total; {
			n := len(buf)
			if total-off < n {
				n = total - off
			}
			for i := 0; i < n; i++ {
				buf[i] = pattern(off + i)
			}
			if _, err := nc.Write(buf[:n]); err != nil {
				return
			}
			off += n
		}
	}()

	if err := drainOwned(t, nc, rings, total, pattern); err != nil {
		t.Fatalf("stream ended early: %v", err)
	}
}

// TestPollerRefusesIneligible: legacy and NoPoller connections must be
// declined with ErrPollerUnavailable, leaving them deferred so the
// caller's fallback (StartIngest) still works.
func TestPollerRefusesIneligible(t *testing.T) {
	defer testutil.LeakCheck(t, 10, 5*time.Second)()
	srv, err := NewServer("127.0.0.1:0", func(stdin io.Reader, stdout io.Writer) error {
		io.Copy(stdout, stdin)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if !srv.Shutdown(5 * time.Second) {
			t.Error("loopback server did not drain clean")
		}
	}()
	p, err := NewPoller()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	for _, tc := range []struct {
		name string
		opt  Options
	}{
		{"legacy", Options{Legacy: true}},
		{"nopoller", Options{NoPoller: true}},
	} {
		nc, err := DialDeferred(srv.Addr(), tc.opt)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Register(nc); !errors.Is(err, ErrPollerUnavailable) {
			t.Errorf("%s: Register err = %v, want ErrPollerUnavailable", tc.name, err)
		}
		if got := nc.mode.Load(); got != modeDeferred {
			t.Errorf("%s: refused conn left in mode %d, want deferred", tc.name, got)
		}
		nc.Close()
	}
}

// TestPollerRefusesStartedIngest: once a fallback reader owns the read
// side the poller must not double-own the socket.
func TestPollerRefusesStartedIngest(t *testing.T) {
	defer testutil.LeakCheck(t, 10, 5*time.Second)()
	srv, err := NewServer("127.0.0.1:0", func(stdin io.Reader, stdout io.Writer) error {
		io.Copy(stdout, stdin)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if !srv.Shutdown(5 * time.Second) {
			t.Error("loopback server did not drain clean")
		}
	}()
	p, err := NewPoller()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	nc, err := Dial(srv.Addr(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if err := p.Register(nc); err == nil {
		t.Fatal("Register succeeded on a connection whose reader already started")
	}
	if got := nc.mode.Load(); got != modeReader {
		t.Fatalf("failed registration disturbed the running reader: mode %d", got)
	}
}
