//go:build !linux

package netx

import "errors"

// Poller is the non-linux stand-in for the epoll readiness loop: it can
// never be created, so every connection falls back to its own reader
// goroutine — the portable ingest path the conformance suite proves
// byte-identical to the polled one.
type Poller struct{}

// ErrPollerUnavailable reports that readiness polling is not supported on
// this platform; callers fall back to StartIngest.
var ErrPollerUnavailable = errors.New("netx: readiness poller unavailable on this platform")

// NewPoller always fails off linux.
func NewPoller() (*Poller, error) { return nil, ErrPollerUnavailable }

// Register always refuses; the caller starts the fallback reader.
func (p *Poller) Register(n *Conn) error { return ErrPollerUnavailable }

// Close is a no-op.
func (p *Poller) Close() {}

// pollDetach is a no-op without a poller implementation.
func (n *Conn) pollDetach() {}
