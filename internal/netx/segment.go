package netx

import (
	"sync"

	"repro/internal/metrics"
)

// A Segment is one pooled read buffer whose ownership travels with it:
// leased from a SegmentPool by whoever reads the socket (the per-shard
// readiness loop or the fallback reader goroutine), filled by exactly one
// read(2), queued whole in the connection's inbox, handed to the engine
// whole by TryReadOwned, adopted as gap-buffer backing by
// matchBuffer.AppendOwned, and finally Released back to the pool when the
// match window forgets it. At no point between the kernel and the pattern
// matcher are its bytes copied.
//
// The ownership rule is strict single-holder: whoever holds the *Segment
// may read and write it; Release hands it back and ends the lease. Using
// a segment after Release is a bug the pool makes loud — Release panics
// on a double release, and because released segments are immediately
// re-leased to other connections, any lingering reader shows up as a data
// race under -race.
type Segment struct {
	buf  []byte
	off  int // consumed prefix (advanced by copying TryRead)
	n    int // filled length
	pool *SegmentPool

	// leased guards against double release / use after return. Guarded by
	// the pool's mutex.
	leased bool
}

// Bytes returns the unconsumed payload. The slice aliases pooled memory:
// it is valid only while the lease is held, and never after Release.
func (g *Segment) Bytes() []byte { return g.buf[g.off:g.n] }

// Len returns the unconsumed payload length.
func (g *Segment) Len() int { return g.n - g.off }

// advance consumes k bytes from the front (the copying TryRead path).
func (g *Segment) advance(k int) { g.off += k }

// Release returns the segment to its pool, ending the lease. The caller
// must drop every reference to Bytes() first. Releasing twice panics:
// a double release would let two holders share one buffer, which is the
// exact corruption the ownership-transfer design exists to prevent.
func (g *Segment) Release() {
	if g == nil {
		return
	}
	g.pool.put(g)
}

// SegmentPool is a bounded free list of fixed-capacity read segments.
// It is deliberately a plain locked list rather than a sync.Pool: leases
// and reuses are counted for the E19 memguard gate, and a bounded list
// gives a hard memory ceiling instead of GC-pressure heuristics.
type SegmentPool struct {
	size  int
	stats *metrics.IngestStats

	mu     sync.Mutex
	free   []*Segment
	leased int // segments currently out on lease
	peak   int // high-water of leased: the observed working set
}

// poolFreeFloor is the minimum idle retention; beyond it a pool retains
// up to its own lease high-water mark, so retention tracks the observed
// working set: a 64-session run idles a few dozen segments, a
// 100k-session gateway run keeps its tens of thousands in circulation
// instead of re-allocating (and re-zeroing, and GC-scanning) 8 KiB per
// delivery. Total memory stays bounded by 2x the peak working set —
// peak leased out plus at most peak idle.
const poolFreeFloor = 256

// NewSegmentPool returns a pool of segments with the given capacity
// (bytes). stats, when non-nil, receives lease/reuse/alloc accounting.
func NewSegmentPool(size int, stats *metrics.IngestStats) *SegmentPool {
	if size < 1 {
		size = 4096
	}
	return &SegmentPool{size: size, stats: stats}
}

// Size returns the capacity of the segments this pool leases.
func (p *SegmentPool) Size() int { return p.size }

// Get leases a segment: empty, with the pool's full capacity available in
// its buf. The caller owns it until Release.
func (p *SegmentPool) Get() *Segment {
	p.mu.Lock()
	p.leased++
	if p.leased > p.peak {
		p.peak = p.leased
	}
	if k := len(p.free); k > 0 {
		g := p.free[k-1]
		p.free[k-1] = nil
		p.free = p.free[:k-1]
		g.leased = true
		p.mu.Unlock()
		g.off, g.n = 0, 0
		p.stats.NoteLease(true)
		return g
	}
	p.mu.Unlock()
	p.stats.NoteLease(false)
	p.stats.AddAlloc()
	return &Segment{buf: make([]byte, p.size), pool: p, leased: true}
}

// Idle reports how many released segments the free list currently holds.
func (p *SegmentPool) Idle() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}

func (p *SegmentPool) put(g *Segment) {
	p.mu.Lock()
	if !g.leased {
		p.mu.Unlock()
		panic("netx: segment released twice (use after ownership return)")
	}
	g.leased = false
	p.leased--
	cap := p.peak
	if cap < poolFreeFloor {
		cap = poolFreeFloor
	}
	if len(p.free) < cap {
		p.free = append(p.free, g)
	}
	p.mu.Unlock()
}

// sharedPools hands out one process-wide pool per segment size, so every
// connection reading with the same chunk size draws from (and refills)
// the same free list. Stats on shared pools stay nil — per-run accounting
// belongs to pools the run owns (netx.Options.Pool).
var sharedPools struct {
	mu sync.Mutex
	m  map[int]*SegmentPool
}

func poolFor(size int) *SegmentPool {
	sharedPools.mu.Lock()
	defer sharedPools.mu.Unlock()
	if sharedPools.m == nil {
		sharedPools.m = make(map[int]*SegmentPool)
	}
	p := sharedPools.m[size]
	if p == nil {
		p = NewSegmentPool(size, nil)
		sharedPools.m[size] = p
	}
	return p
}
