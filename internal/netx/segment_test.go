package netx

import (
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/testutil"
)

// TestSegmentLeaseReturnRoundTrip pins the pool contract: a fresh lease
// allocates once, Release parks the buffer on the free list, and the next
// Get hands the same backing array back empty.
func TestSegmentLeaseReturnRoundTrip(t *testing.T) {
	st := &metrics.IngestStats{}
	p := NewSegmentPool(512, st)
	if p.Size() != 512 {
		t.Fatalf("Size() = %d, want 512", p.Size())
	}

	g := p.Get()
	if len(g.Bytes()) != 0 || cap(g.buf) != 512 {
		t.Fatalf("fresh segment: %d live bytes, cap %d", len(g.Bytes()), cap(g.buf))
	}
	backing := &g.buf[0]
	g.n = copy(g.buf, "hello")
	if string(g.Bytes()) != "hello" || g.Len() != 5 {
		t.Fatalf("Bytes() = %q (len %d)", g.Bytes(), g.Len())
	}
	g.advance(2)
	if string(g.Bytes()) != "llo" {
		t.Fatalf("after advance(2): %q", g.Bytes())
	}

	g.Release()
	if p.Idle() != 1 {
		t.Fatalf("Idle() = %d after release, want 1", p.Idle())
	}
	g2 := p.Get()
	if p.Idle() != 0 {
		t.Fatalf("Idle() = %d after re-lease, want 0", p.Idle())
	}
	if &g2.buf[0] != backing {
		t.Fatal("re-lease did not reuse the released backing array")
	}
	if g2.Len() != 0 || len(g2.Bytes()) != 0 {
		t.Fatalf("re-leased segment not rewound: len %d", g2.Len())
	}
	g2.Release()

	if got := st.SegmentLeases(); got != 2 {
		t.Errorf("SegmentLeases() = %d, want 2", got)
	}
	if got := st.SegmentReuses(); got != 1 {
		t.Errorf("SegmentReuses() = %d, want 1", got)
	}
	if got := st.IngestAllocs(); got != 1 {
		t.Errorf("IngestAllocs() = %d, want 1 (only the cold lease)", got)
	}
}

// TestSegmentDoubleReleasePanics: returning a segment twice is a
// use-after-ownership-return bug and must fail loudly, not corrupt the
// free list.
func TestSegmentDoubleReleasePanics(t *testing.T) {
	p := NewSegmentPool(64, nil)
	g := p.Get()
	g.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("second Release did not panic")
		}
	}()
	g.Release()
}

// TestInboxPutSegAfterCloseRead: tearing down the read side drops queued
// segments back to their pool, and a producer arriving afterwards gets
// its segment returned and a stop signal — nothing leaks, nothing lands
// in a dead queue.
func TestInboxPutSegAfterCloseRead(t *testing.T) {
	st := &metrics.IngestStats{}
	p := NewSegmentPool(64, st)
	var q inbox
	q.init(256, p.Size(), false, st)

	g := p.Get()
	g.n = copy(g.buf, "queued")
	if !q.putSeg(g) {
		t.Fatal("putSeg on a live inbox reported stop")
	}
	if p.Idle() != 0 {
		t.Fatalf("Idle() = %d with a segment queued, want 0", p.Idle())
	}

	q.closeRead()
	if p.Idle() != 1 {
		t.Fatalf("Idle() = %d after closeRead, want 1 (queued segment returned)", p.Idle())
	}

	late := p.Get()
	late.n = copy(late.buf, "late")
	if q.putSeg(late) {
		t.Fatal("putSeg after closeRead reported success")
	}
	if p.Idle() != 1 {
		t.Fatalf("Idle() = %d after rejected put, want 1 (late segment returned)", p.Idle())
	}

	if g, ok, err := q.tryTake(); g != nil || !ok || err != io.EOF {
		t.Fatalf("tryTake after closeRead = (%v, %v, %v), want (nil, true, io.EOF)", g, ok, err)
	}
}

// TestSegmentIngestSteadyStateAllocs pins the zero-copy hot loop: once
// the pool and queue are warm, a full lease → fill → hand off → take →
// release cycle performs no heap allocations. This is the regression
// guard for the per-dialogue alloc claim in E19.
func TestSegmentIngestSteadyStateAllocs(t *testing.T) {
	p := NewSegmentPool(128, nil)
	var q inbox
	q.init(1024, p.Size(), false, nil)
	payload := []byte("twelve bytes")

	bad := false
	avg := testing.AllocsPerRun(200, func() {
		g := p.Get()
		g.n = copy(g.buf, payload)
		if !q.putSeg(g) {
			bad = true
			return
		}
		got, ok, err := q.tryTake()
		if got == nil || !ok || err != nil {
			bad = true
			return
		}
		got.Release()
	})
	if bad {
		t.Fatal("ingest cycle failed mid-measurement")
	}
	if avg != 0 {
		t.Errorf("steady-state ingest cycle allocates %.1f times per run, want 0", avg)
	}
}

// TestOwnedIngestRaceHammer streams a deterministic pattern through a
// live socket and drains it with TryReadOwned + immediate Release while
// the producer keeps re-leasing the same pool. Byte identity proves no
// chunk is read after its ownership went back; the race detector (the
// check.sh unit tier runs this under -race) proves the happens-before
// edges around the pool free list.
func TestOwnedIngestRaceHammer(t *testing.T) {
	defer testutil.LeakCheck(t, 10, 5*time.Second)()
	const total = 1 << 20
	pattern := func(i int) byte { return byte(i*31 + 7) }

	srv, err := NewServer("127.0.0.1:0", func(stdin io.Reader, stdout io.Writer) error {
		buf := make([]byte, 8192)
		for off := 0; off < total; {
			n := len(buf)
			if total-off < n {
				n = total - off
			}
			for i := 0; i < n; i++ {
				buf[i] = pattern(off + i)
			}
			if _, err := stdout.Write(buf[:n]); err != nil {
				return err
			}
			off += n
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(5 * time.Second)

	// A small inbox forces the producer through the full park/wake
	// backpressure cycle many times over the 1 MiB stream.
	nc, err := Dial(srv.Addr(), Options{ReadBuf: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()

	rings := make(chan struct{}, 1)
	nc.SetReadNotify(func() {
		select {
		case rings <- struct{}{}:
		default:
		}
	})

	seen := 0
	deadline := time.Now().Add(30 * time.Second)
	for {
		o, ok, err := nc.TryReadOwned()
		if o != nil {
			for i, b := range o.Bytes() {
				if b != pattern(seen+i) {
					t.Fatalf("byte %d = %#x, want %#x (stale or reused segment)", seen+i, b, pattern(seen+i))
				}
			}
			seen += len(o.Bytes())
			o.Release()
			continue
		}
		if ok {
			if err != io.EOF {
				t.Fatalf("terminal disposition %v, want io.EOF", err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stalled after %d of %d bytes", seen, total)
		}
		select {
		case <-rings:
		case <-time.After(50 * time.Millisecond):
		}
	}
	if seen != total {
		t.Fatalf("drained %d bytes, want %d", seen, total)
	}
	if _, _, err := nc.TryReadOwned(); err != io.EOF && !errors.Is(err, io.EOF) {
		t.Fatalf("post-EOF TryReadOwned err = %v", err)
	}
}
