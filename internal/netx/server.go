// The server half of the socket transport: an accept loop that runs one
// proc.Program instance per connection, with a drain-then-close shutdown.
//
// Drain contract (relied on by cmd/expectd's SIGTERM handling and proved
// by TestServerShutdownDrains): Shutdown first closes the listener — new
// dials are refused — then waits for every accepted session's program to
// return and its connection to be closed before returning. A session
// admitted before Shutdown is therefore never dropped mid-dialogue: its
// dialogue runs to its own EOF as long as it finishes within the grace
// window. Only sessions still running at the grace deadline are
// force-closed (their programs see a read error and unwind).
package netx

import (
	"net"
	"sync"
	"time"

	"repro/internal/proc"
)

// Server serves one proc.Program per accepted TCP connection: the
// expectd building block.
type Server struct {
	ln   net.Listener
	prog proc.Program

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	// draining closes once Shutdown has closed the listener, so a dial
	// attempted after the gate is deterministically refused. Tests and
	// supervisors sequence against it instead of polling with sleeps.
	draining chan struct{}

	served uint64 // sessions fully completed (program returned)
}

// NewServer listens on addr (host:0 picks an ephemeral port) and starts
// serving prog, one instance per connection.
func NewServer(addr string, prog proc.Program) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return Serve(ln, prog), nil
}

// Serve starts the accept loop on an existing listener. The Server owns
// the listener from here on.
func Serve(ln net.Listener, prog proc.Program) *Server {
	s := &Server{ln: ln, prog: prog, conns: make(map[net.Conn]struct{}), draining: make(chan struct{})}
	go s.acceptLoop()
	return s
}

// Addr reports the bound listen address (useful with :0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Draining is the drain-start gate: closed once Shutdown has closed the
// listener — from that moment new dials are refused, deterministically.
func (s *Server) Draining() <-chan struct{} { return s.draining }

func (s *Server) acceptLoop() {
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // listener closed: Shutdown in progress
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			continue
		}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.session(c)
	}
}

// session runs one program instance over the connection: the conn is the
// program's terminal. The program returns when its dialogue is over
// (typically on stdin EOF — the client's CloseWrite FIN); any buffered
// output has already been written to the socket by then, so closing the
// conn afterwards delivers a clean FIN, not a truncation.
func (s *Server) session(c net.Conn) {
	defer s.wg.Done()
	s.prog(c, c)
	if tc, ok := c.(*net.TCPConn); ok {
		tc.CloseWrite()
	}
	c.Close()
	s.mu.Lock()
	delete(s.conns, c)
	s.served++
	s.mu.Unlock()
}

// ActiveSessions reports the number of in-flight sessions.
func (s *Server) ActiveSessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// Served reports how many sessions ran their program to completion.
func (s *Server) Served() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.served
}

// ServerStats is one server's telemetry snapshot.
type ServerStats struct {
	// Active counts connections currently running a program instance.
	Active int
	// Served counts sessions whose program ran to completion.
	Served uint64
	// Draining reports that Shutdown has begun (no new accepts).
	Draining bool
}

// Stats reads the three counters under one lock hold, so the telemetry
// plane's per-program gauges are consistent with each other: a scrape
// never sees a session counted both active and served.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return ServerStats{Active: len(s.conns), Served: s.served, Draining: s.closed}
}

// Shutdown is the drain-then-close teardown (see the contract at the top
// of this file): stop accepting, wait up to grace for in-flight sessions
// to complete their dialogues, force-close any stragglers, and return
// only when every session goroutine has unwound. It reports whether the
// drain was clean (no session had to be cut).
func (s *Server) Shutdown(grace time.Duration) bool {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return true
	}
	s.closed = true
	s.mu.Unlock()
	s.ln.Close()
	close(s.draining)

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	if grace > 0 {
		select {
		case <-done:
			return true
		case <-time.After(grace):
		}
	} else {
		select {
		case <-done:
			return true
		default:
		}
	}
	s.mu.Lock()
	cut := len(s.conns)
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	<-done
	return cut == 0
}
