package pattern

import (
	"regexp"

	"repro/internal/lru"
)

// Compiled is a glob pattern compiled once into an op program. It is
// immutable after construction and safe for concurrent use; compiling once
// and matching many times avoids re-lexing the pattern (class set
// construction in particular) on every wakeup of the expect loop.
type Compiled struct {
	pat string
	ops []globOp
}

// Pattern returns the original pattern text.
func (c *Compiled) Pattern() string { return c.pat }

// Match reports whether s matches the pattern in its entirety (anchored at
// both ends). It accepts the raw byte buffer so callers on the read loop
// never have to materialise a string copy of accumulated output.
func (c *Compiled) Match(s []byte) bool { return matchOps(c.ops, s) }

// MatchString is Match for string input.
func (c *Compiled) MatchString(s string) bool { return matchOps(c.ops, s) }

// matchOps runs the classic two-pointer backtracking glob match over a
// compiled op program. Because compileGlob collapses star runs, each '*'
// is a single backtrack point, mirroring matchHere exactly.
func matchOps[T ~[]byte | ~string](ops []globOp, s T) bool {
	px, sx := 0, 0
	starPx, starSx := -1, -1
	for sx < len(s) {
		if px < len(ops) {
			op := &ops[px]
			switch op.kind {
			case opStar:
				// Remember backtrack point; try matching zero chars first.
				starPx, starSx = px, sx
				px++
				continue
			case opAny:
				px++
				sx++
				continue
			case opLiteral:
				if op.ch == s[sx] {
					px++
					sx++
					continue
				}
			case opClass:
				if op.class.contains(s[sx]) != op.negate {
					px++
					sx++
					continue
				}
			}
		}
		// Mismatch: backtrack to the last '*' and let it eat one more char.
		if starPx >= 0 {
			starSx++
			px, sx = starPx+1, starSx
			continue
		}
		return false
	}
	// Input exhausted: remaining pattern must be all '*'.
	for px < len(ops) && ops[px].kind == opStar {
		px++
	}
	return px == len(ops)
}

// DefaultCompileCacheSize bounds the shared pattern-compile cache. Expect
// scripts cycle through a small, fixed set of patterns, so a few hundred
// entries covers steady state while keeping worst-case memory bounded.
const DefaultCompileCacheSize = 256

// compileCache memoises compiled globs and regexps, keyed by kind-prefixed
// pattern text. Compiled entries are immutable, so a cached value can be
// shared freely across goroutines and matchers. A regexp that fails to
// compile caches its error under the same key: repeatedly evaluating a bad
// pattern should not repeatedly pay regexp.Compile.
var compileCache = lru.New[string, any](DefaultCompileCacheSize)

// SetCompileCacheSize replaces the shared compile cache with one holding at
// most n entries; n <= 0 disables caching (every call recompiles).
func SetCompileCacheSize(n int) { compileCache = lru.New[string, any](n) }

// CompileCacheStats reports hit/miss/eviction counters of the shared cache.
func CompileCacheStats() (hits, misses, evicted uint64) { return compileCache.Stats() }

// CompileGlob returns the compiled form of pat, memoised in the shared
// cache. Compiling is cheap but not free; the expect hot loop calls Match
// with the same handful of patterns on every chunk of process output.
func CompileGlob(pat string) *Compiled {
	key := "g\x00" + pat
	if v, ok := compileCache.Get(key); ok {
		return v.(*Compiled)
	}
	c := &Compiled{pat: pat, ops: compileGlob(pat)}
	compileCache.Put(key, c)
	return c
}

// CompileRegexp is a memoised regexp.Compile sharing the glob cache; both
// pattern kinds appear in the same expect command lists, so one bound
// covers the working set.
func CompileRegexp(pat string) (*regexp.Regexp, error) {
	key := "r\x00" + pat
	if v, ok := compileCache.Get(key); ok {
		switch e := v.(type) {
		case *regexp.Regexp:
			return e, nil
		case error:
			return nil, e
		}
	}
	re, err := regexp.Compile(pat)
	if err != nil {
		compileCache.Put(key, err)
		return nil, err
	}
	compileCache.Put(key, re)
	return re, nil
}
