package pattern

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestCompiledAgreesWithNaiveOnTable(t *testing.T) {
	for _, tc := range matchCases {
		c := CompileGlob(tc.pat)
		if got := c.MatchString(tc.s); got != tc.want {
			t.Errorf("CompileGlob(%q).MatchString(%q) = %v, want %v", tc.pat, tc.s, got, tc.want)
		}
		if got := c.Match([]byte(tc.s)); got != tc.want {
			t.Errorf("CompileGlob(%q).Match(%q) = %v, want %v", tc.pat, tc.s, got, tc.want)
		}
		if got := MatchNaive(tc.pat, tc.s); got != tc.want {
			t.Errorf("MatchNaive(%q, %q) = %v, want %v", tc.pat, tc.s, got, tc.want)
		}
	}
}

// randomHarshPattern generates patterns that stress the dark corners the
// table misses: escapes (including trailing backslash), negated classes,
// ranges, and malformed (unterminated) classes.
func randomHarshPattern(r *rand.Rand) string {
	n := r.Intn(10)
	var sb strings.Builder
	for k := 0; k < n; k++ {
		switch r.Intn(12) {
		case 0, 1:
			sb.WriteByte('a')
		case 2:
			sb.WriteByte('b')
		case 3:
			sb.WriteByte('c')
		case 4, 5:
			sb.WriteByte('*')
		case 6:
			sb.WriteByte('?')
		case 7:
			sb.WriteString("[ab]")
		case 8:
			sb.WriteString("[^a]")
		case 9:
			sb.WriteString("[a-c]")
		case 10:
			sb.WriteByte('\\')
		case 11:
			sb.WriteByte('[') // often malformed
		}
	}
	return sb.String()
}

// Property: the compiled matcher and the naive interpreter agree on random
// pattern/input pairs, for both the []byte and string entry points.
func TestCompiledEquivalenceQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pat := randomHarshPattern(r)
		in := randomInput(r)
		want := MatchNaive(pat, in)
		c := CompileGlob(pat)
		if got := c.MatchString(in); got != want {
			t.Logf("pat=%q in=%q: compiled string=%v naive=%v", pat, in, got, want)
			return false
		}
		if got := c.Match([]byte(in)); got != want {
			t.Logf("pat=%q in=%q: compiled bytes=%v naive=%v", pat, in, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4000}); err != nil {
		t.Error(err)
	}
}

func TestCompileCacheSharing(t *testing.T) {
	SetCompileCacheSize(DefaultCompileCacheSize)
	defer SetCompileCacheSize(DefaultCompileCacheSize)

	a := CompileGlob("*shared pattern*")
	b := CompileGlob("*shared pattern*")
	if a != b {
		t.Error("second CompileGlob of the same pattern should return the cached object")
	}
	if a.Pattern() != "*shared pattern*" {
		t.Errorf("Pattern() = %q", a.Pattern())
	}

	// Incremental matchers share the same compiled op program.
	m1 := NewIncremental("*shared ops*")
	m2 := NewIncremental("*shared ops*")
	if len(m1.ops) == 0 || &m1.ops[0] != &m2.ops[0] {
		t.Error("incremental matchers for one pattern should share compiled ops")
	}
	// ...but carry independent live state.
	m1.Feed([]byte("shared ops"))
	if !m1.Matched() || m2.Matched() {
		t.Error("shared ops must not leak match state between matchers")
	}

	hits0, _, _ := CompileCacheStats()
	CompileGlob("*shared pattern*")
	hits1, _, _ := CompileCacheStats()
	if hits1 != hits0+1 {
		t.Errorf("cache hits went %d -> %d, want +1", hits0, hits1)
	}
}

func TestCompileCacheDisabled(t *testing.T) {
	SetCompileCacheSize(0)
	defer SetCompileCacheSize(DefaultCompileCacheSize)

	a := CompileGlob("*uncached*")
	b := CompileGlob("*uncached*")
	if a == b {
		t.Error("with caching disabled each call should compile fresh")
	}
	if !a.MatchString("is uncached!") || !b.MatchString("is uncached!") {
		t.Error("uncached compiles should still match")
	}
}

func TestCompileRegexpCached(t *testing.T) {
	SetCompileCacheSize(DefaultCompileCacheSize)
	defer SetCompileCacheSize(DefaultCompileCacheSize)

	re1, err := CompileRegexp(`ab+c`)
	if err != nil {
		t.Fatal(err)
	}
	re2, err := CompileRegexp(`ab+c`)
	if err != nil {
		t.Fatal(err)
	}
	if re1 != re2 {
		t.Error("second CompileRegexp of the same pattern should return the cached object")
	}
	if !re1.MatchString("abbc") {
		t.Error("cached regexp does not match")
	}

	// Errors are cached too: same pattern, same error, no recompilation.
	_, err1 := CompileRegexp(`a(`)
	if err1 == nil {
		t.Fatal("expected compile error")
	}
	_, err2 := CompileRegexp(`a(`)
	if err1 != err2 {
		t.Error("regexp compile error should be served from cache")
	}

	// Glob and regexp entries of the same text do not collide.
	g := CompileGlob(`ab+c`)
	if !g.MatchString("ab+c") || g.MatchString("abbc") {
		t.Error("glob entry collided with regexp entry for the same text")
	}
}

func TestCompileCacheBounded(t *testing.T) {
	SetCompileCacheSize(4)
	defer SetCompileCacheSize(DefaultCompileCacheSize)

	pats := []string{"*p0*", "*p1*", "*p2*", "*p3*", "*p4*", "*p5*", "*p6*", "*p7*"}
	for _, p := range pats {
		CompileGlob(p)
	}
	if n := compileCache.Len(); n > 4 {
		t.Errorf("cache holds %d entries, cap 4", n)
	}
	_, _, evicted := CompileCacheStats()
	if evicted == 0 {
		t.Error("expected evictions after overflowing the cache")
	}
}
