package pattern

import (
	"testing"
)

// FuzzGlobEquivalence cross-checks the three glob implementations — the
// recursive reference matcher, the compiled-op matcher, and the streaming
// NFA — on the same (pattern, input) pair. The incremental matcher is
// additionally fed the input under a seed-derived chunking: its live set
// is a function of the total byte sequence, so the final Matched() must
// not depend on where the chunk boundaries fell.
func FuzzGlobEquivalence(f *testing.F) {
	seeds := []struct {
		pat, in string
		seed    uint64
	}{
		{"*a*", "banana", 7},
		{"[a-c]?*", "abz", 1},
		{"*Str:\\ 18*", "Jun  5 Str: 18 free", 3},
		{"**x**", "prefix x suffix", 9},
		{"[!0-9]*", "q123", 11},
		{"[^abc]", "d", 13},
		{"\\*literal\\?", "*literal?", 17},
		{"[z-a]", "b", 19},   // inverted range
		{"[abc", "[abc", 23}, // malformed class: treated as literal '['
		{"", "", 29},
		{"*", "", 31},
		{"?", "", 37},
		{"a\\", "a", 41}, // trailing backslash
		{"*ab*ab*", "abababab", 43},
	}
	for _, s := range seeds {
		f.Add(s.pat, s.in, s.seed)
	}
	f.Fuzz(func(t *testing.T, pat, in string, seed uint64) {
		if len(pat) > 256 || len(in) > 4096 {
			t.Skip("bounded to keep the naive matcher's backtracking tame")
		}
		want := MatchNaive(pat, in)
		if got := CompileGlob(pat).MatchString(in); got != want {
			t.Fatalf("compiled mismatch: pat=%q in=%q naive=%v compiled=%v",
				pat, in, want, got)
		}
		inc := NewIncremental(pat)
		if got := inc.Feed([]byte(in)); got != want {
			t.Fatalf("incremental (one chunk) mismatch: pat=%q in=%q naive=%v inc=%v",
				pat, in, want, got)
		}
		// Re-feed under a seeded chunking; the final verdict must agree.
		inc.Reset()
		rest := []byte(in)
		x := seed | 1
		for len(rest) > 0 {
			// splitmix64 step drives the chunk size.
			x += 0x9e3779b97f4a7c15
			z := x
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			z = (z ^ (z >> 27)) * 0x94d049bb133111eb
			z ^= z >> 31
			n := int(z%7) + 1
			if n > len(rest) {
				n = len(rest)
			}
			inc.Feed(rest[:n])
			rest = rest[n:]
		}
		if got := inc.Matched(); got != want {
			t.Fatalf("incremental (seed=%d chunking) mismatch: pat=%q in=%q naive=%v inc=%v",
				seed, pat, in, want, got)
		}
		if inc.Dead() && want {
			t.Fatalf("incremental reports dead but naive matches: pat=%q in=%q", pat, in)
		}
	})
}
