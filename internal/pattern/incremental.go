package pattern

// Incremental is a glob matcher that consumes input a chunk at a time and
// never re-reads earlier data. It simulates the pattern's NFA: the live set
// of pattern positions is carried across Feed calls, so the total work for
// an N-byte stream is O(N · |pattern|) regardless of how many reads deliver
// it. The naive alternative — re-running Match over the whole buffer after
// every read, which is what the original expect did — costs O(N²/c) for
// c-byte chunks; benchmark BenchmarkMatcherRescan quantifies the gap.
//
// The matcher implements the paper's anchored semantics: it answers "does
// the entire stream seen so far match the pattern?" after each feed.
type Incremental struct {
	pat string
	// ops is the compiled pattern: one op per element.
	ops []globOp
	// live[i] reports that ops[i:] still needs to match the remaining
	// input; live[len(ops)] is the accept state.
	live []bool
	// scratch is the next-state buffer, reused across feeds.
	scratch []bool
	n       int64 // total bytes consumed
}

type globOpKind uint8

const (
	opLiteral globOpKind = iota
	opAny                // ?
	opStar               // *
	opClass              // [...]
)

type globOp struct {
	kind   globOpKind
	ch     byte
	class  *classSet
	negate bool
}

type classSet struct {
	bits [4]uint64
}

func (c *classSet) add(b byte)           { c.bits[b>>6] |= 1 << (b & 63) }
func (c *classSet) contains(b byte) bool { return c.bits[b>>6]&(1<<(b&63)) != 0 }

// NewIncremental compiles pat into an incremental matcher. The op program
// comes from the shared compile cache and is never mutated, so concurrent
// matchers for the same pattern share one compiled form.
func NewIncremental(pat string) *Incremental {
	m := &Incremental{pat: pat, ops: CompileGlob(pat).ops}
	m.live = make([]bool, len(m.ops)+1)
	m.scratch = make([]bool, len(m.ops)+1)
	m.Reset()
	return m
}

// Pattern returns the original pattern text.
func (m *Incremental) Pattern() string { return m.pat }

// Consumed returns the total number of bytes fed so far.
func (m *Incremental) Consumed() int64 { return m.n }

// Reset restarts the matcher as if no input had been seen.
func (m *Incremental) Reset() {
	for i := range m.live {
		m.live[i] = false
	}
	m.n = 0
	m.live[0] = true
	m.closure(m.live)
}

// closure expands star positions: a live state sitting on '*' may also skip
// it without consuming input.
func (m *Incremental) closure(set []bool) {
	for i := 0; i < len(m.ops); i++ {
		if set[i] && m.ops[i].kind == opStar {
			set[i+1] = true
		}
	}
}

// Feed consumes a chunk and reports whether the entire input seen so far
// matches the pattern.
func (m *Incremental) Feed(chunk []byte) bool {
	for _, c := range chunk {
		next := m.scratch
		for i := range next {
			next[i] = false
		}
		for i := 0; i < len(m.ops); i++ {
			if !m.live[i] {
				continue
			}
			op := m.ops[i]
			switch op.kind {
			case opStar:
				next[i] = true // star eats c and stays
			case opAny:
				next[i+1] = true
			case opLiteral:
				if op.ch == c {
					next[i+1] = true
				}
			case opClass:
				if op.class.contains(c) != op.negate {
					next[i+1] = true
				}
			}
		}
		m.closure(next)
		m.live, m.scratch = next, m.live
	}
	m.n += int64(len(chunk))
	return m.live[len(m.ops)]
}

// Matched reports whether the input consumed so far matches.
func (m *Incremental) Matched() bool { return m.live[len(m.ops)] }

// LiveStates returns how many NFA states are currently live, including the
// accept state. It is matcher-health introspection for the observability
// layer: a count collapsing toward zero as bytes arrive means the stream is
// diverging from the pattern, while a stable plateau usually marks a star
// absorbing input. Zero is exactly Dead().
func (m *Incremental) LiveStates() int {
	n := 0
	for _, l := range m.live {
		if l {
			n++
		}
	}
	return n
}

// Dead reports that no future input can produce a match (the live set is
// empty), letting callers fail fast on streams that have diverged.
func (m *Incremental) Dead() bool {
	for _, l := range m.live {
		if l {
			return false
		}
	}
	return true
}

// compileGlob translates a glob pattern into ops. Malformed classes compile
// as a literal '[' to mirror Match's behaviour.
func compileGlob(pat string) []globOp {
	var ops []globOp
	for i := 0; i < len(pat); {
		switch pat[i] {
		case '*':
			// Collapse runs of stars: "**" ≡ "*".
			if len(ops) == 0 || ops[len(ops)-1].kind != opStar {
				ops = append(ops, globOp{kind: opStar})
			}
			i++
		case '?':
			ops = append(ops, globOp{kind: opAny})
			i++
		case '\\':
			if i+1 < len(pat) {
				ops = append(ops, globOp{kind: opLiteral, ch: pat[i+1]})
				i += 2
			} else {
				ops = append(ops, globOp{kind: opLiteral, ch: '\\'})
				i++
			}
		case '[':
			set, negate, next := compileClass(pat, i)
			if next == 0 {
				ops = append(ops, globOp{kind: opLiteral, ch: '['})
				i++
			} else {
				ops = append(ops, globOp{kind: opClass, class: set, negate: negate})
				i = next
			}
		default:
			ops = append(ops, globOp{kind: opLiteral, ch: pat[i]})
			i++
		}
	}
	return ops
}

func compileClass(pat string, start int) (*classSet, bool, int) {
	i := start + 1
	negate := false
	if i < len(pat) && (pat[i] == '^' || pat[i] == '!') {
		negate = true
		i++
	}
	set := &classSet{}
	first := true
	for i < len(pat) {
		if pat[i] == ']' && !first {
			return set, negate, i + 1
		}
		first = false
		if pat[i] == '\\' && i+1 < len(pat) {
			i++
		}
		lo := pat[i]
		hi := lo
		if i+2 < len(pat) && pat[i+1] == '-' && pat[i+2] != ']' {
			i += 2
			if pat[i] == '\\' && i+1 < len(pat) {
				i++
			}
			hi = pat[i]
		}
		for c := int(lo); c <= int(hi); c++ {
			set.add(byte(c))
		}
		i++
	}
	return nil, false, 0
}
