// Package pattern implements the matching machinery of the expect engine:
// C-shell-style glob patterns (`*`, `?`, `[...]`, `\`), matched against the
// entire accumulated output of a process — the paper's §3.1 semantics, which
// is why expect scripts write `*welcome*` — plus an incremental matcher that
// carries NFA state across reads so data arriving in many small chunks is
// never rescanned (the paper's §7.4 open performance question).
package pattern

// Match reports whether s matches glob pattern pat in its entirety
// (anchored at both ends). Supported syntax:
//
//   - any run of characters, including empty
//     ?        any single character
//     [a-z]    character class, ranges allowed, ^ or ! negates
//     \x       literal x
//
// A malformed class (unterminated '[') matches a literal '['.
//
// Match compiles pat through the shared compile cache, so repeated calls
// with the same pattern — the expect hot loop — pay compilation once.
func Match(pat, s string) bool {
	return CompileGlob(pat).MatchString(s)
}

// MatchNaive is the original single-pass interpreter that re-lexes the
// pattern as it matches. It is retained as the reference implementation for
// equivalence tests and benchmarks against the compiled matcher.
func MatchNaive(pat, s string) bool {
	return matchHere(pat, s)
}

func matchHere(pat, s string) bool {
	px, sx := 0, 0
	starPx, starSx := -1, -1
	for sx < len(s) {
		if px < len(pat) {
			switch pat[px] {
			case '*':
				// Remember backtrack point; try matching zero chars first.
				starPx, starSx = px, sx
				px++
				continue
			case '?':
				px++
				sx++
				continue
			case '[':
				if ok, next := classMatch(pat, px, s[sx]); next > 0 {
					if ok {
						px = next
						sx++
						continue
					}
				} else if s[sx] == '[' { // malformed class: literal
					px++
					sx++
					continue
				}
			case '\\':
				if px+1 < len(pat) {
					if pat[px+1] == s[sx] {
						px += 2
						sx++
						continue
					}
				} else if s[sx] == '\\' {
					px++
					sx++
					continue
				}
			default:
				if pat[px] == s[sx] {
					px++
					sx++
					continue
				}
			}
		}
		// Mismatch: backtrack to the last '*' and let it eat one more char.
		if starPx >= 0 {
			starSx++
			px, sx = starPx+1, starSx
			continue
		}
		return false
	}
	// Input exhausted: remaining pattern must be all '*'.
	for px < len(pat) && pat[px] == '*' {
		px++
	}
	return px == len(pat)
}

// classMatch evaluates the character class starting at pat[start] (which is
// '[') against c. It returns whether c matches and the index just past the
// closing ']'; next == 0 signals a malformed (unterminated) class.
func classMatch(pat string, start int, c byte) (matched bool, next int) {
	i := start + 1
	negate := false
	if i < len(pat) && (pat[i] == '^' || pat[i] == '!') {
		negate = true
		i++
	}
	first := true
	found := false
	for i < len(pat) {
		if pat[i] == ']' && !first {
			if negate {
				return !found, i + 1
			}
			return found, i + 1
		}
		first = false
		var lo byte
		if pat[i] == '\\' && i+1 < len(pat) {
			i++
		}
		lo = pat[i]
		hi := lo
		if i+2 < len(pat) && pat[i+1] == '-' && pat[i+2] != ']' {
			i += 2
			if pat[i] == '\\' && i+1 < len(pat) {
				i++
			}
			hi = pat[i]
		}
		if lo <= c && c <= hi {
			found = true
		}
		i++
	}
	return false, 0 // unterminated
}

// HasWildcards reports whether pat contains any glob metacharacters; plain
// strings can use fast substring checks.
func HasWildcards(pat string) bool {
	for i := 0; i < len(pat); i++ {
		switch pat[i] {
		case '*', '?', '[', '\\':
			return true
		}
	}
	return false
}
