package pattern

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

var matchCases = []struct {
	pat, s string
	want   bool
}{
	// Literals.
	{"", "", true},
	{"", "a", false},
	{"a", "a", true},
	{"a", "b", false},
	{"abc", "abc", true},
	{"abc", "abx", false},
	{"abc", "ab", false},
	{"ab", "abc", false},

	// Star.
	{"*", "", true},
	{"*", "anything at all", true},
	{"a*", "a", true},
	{"a*", "abc", true},
	{"a*", "ba", false},
	{"*a", "a", true},
	{"*a", "bca", true},
	{"*a", "ab", false},
	{"a*b", "ab", true},
	{"a*b", "axxxb", true},
	{"a*b", "axxxc", false},
	{"*a*", "xax", true},
	{"*a*", "xxx", false},
	{"**", "abc", true},
	{"*abc*def*", "xxabcyydefzz", true},
	{"*abc*def*", "xxabcyydezz", false},

	// The paper's anchored semantics: patterns must match the ENTIRE
	// output, which is why scripts write *welcome*.
	{"welcome", "login: welcome to unix", false},
	{"*welcome*", "login: welcome to unix", true},
	{"*Str:\\ 18*", "Level: 1  Str: 18  Gold: 0", true},
	{"*Str: 18*", "Level: 1  Str: 17  Gold: 0", false},
	{"*CONNECT*", "ATDT5551212\r\nCONNECT 1200\r\n", true},
	{"*OK*", "ATZ\r\nOK\r\n", true},
	{"*busy*", "line is busy, try later", true},

	// Question mark.
	{"?", "a", true},
	{"?", "", false},
	{"?", "ab", false},
	{"a?c", "abc", true},
	{"a?c", "ac", false},
	{"???", "abc", true},
	{"?*", "x", true},
	{"?*", "", false},

	// Character classes.
	{"[abc]", "b", true},
	{"[abc]", "d", false},
	{"[a-z]", "m", true},
	{"[a-z]", "M", false},
	{"[a-zA-Z]", "M", true},
	{"[^abc]", "d", true},
	{"[^abc]", "a", false},
	{"[!abc]", "d", true},
	{"x[0-9]y", "x5y", true},
	{"x[0-9]y", "xay", false},
	{"[]]", "]", true},
	{"[-a]", "-", true},
	{"[a-]", "-", true},
	{"*[0-9]*", "Str: 18", true},

	// Backslash escapes.
	{`\*`, "*", true},
	{`\*`, "a", false},
	{`\?`, "?", true},
	{`a\*b`, "a*b", true},
	{`a\*b`, "axb", false},
	{`\\`, `\`, true},
	{`\[a\]`, "[a]", true},

	// Malformed class degrades to literal '['.
	{"[abc", "[abc", true},
	{"a[", "a[", true},

	// Pathological backtracking shapes still work.
	{"*a*a*a*a*", "aaaa", true},
	{"*a*a*a*a*a*", "aaaa", false},
	{"a*a*a*b", strings.Repeat("a", 30) + "b", true},
}

func TestMatch(t *testing.T) {
	for _, tc := range matchCases {
		if got := Match(tc.pat, tc.s); got != tc.want {
			t.Errorf("Match(%q, %q) = %v, want %v", tc.pat, tc.s, got, tc.want)
		}
	}
}

func TestIncrementalAgreesWithMatch(t *testing.T) {
	for _, tc := range matchCases {
		m := NewIncremental(tc.pat)
		if got := m.Feed([]byte(tc.s)); got != tc.want {
			t.Errorf("Incremental(%q).Feed(%q) = %v, want %v", tc.pat, tc.s, got, tc.want)
		}
	}
}

func TestIncrementalByteAtATime(t *testing.T) {
	for _, tc := range matchCases {
		m := NewIncremental(tc.pat)
		got := m.Matched()
		for k := 0; k < len(tc.s); k++ {
			got = m.Feed([]byte{tc.s[k]})
		}
		if got != tc.want {
			t.Errorf("Incremental(%q) byte-at-a-time over %q = %v, want %v",
				tc.pat, tc.s, got, tc.want)
		}
		if m.Consumed() != int64(len(tc.s)) {
			t.Errorf("Consumed = %d, want %d", m.Consumed(), len(tc.s))
		}
	}
}

func TestIncrementalReset(t *testing.T) {
	m := NewIncremental("*abc*")
	if !m.Feed([]byte("xxabcyy")) {
		t.Fatal("expected match before reset")
	}
	m.Reset()
	if m.Matched() {
		t.Error("matched immediately after reset")
	}
	if m.Consumed() != 0 {
		t.Errorf("Consumed after reset = %d", m.Consumed())
	}
	if !m.Feed([]byte("abc")) {
		t.Error("expected match after reset and refeed")
	}
}

func TestIncrementalDead(t *testing.T) {
	m := NewIncremental("abc") // fully anchored literal
	m.Feed([]byte("x"))
	if !m.Dead() {
		t.Error("literal pattern fed wrong first byte should be dead")
	}
	m2 := NewIncremental("*abc*")
	m2.Feed([]byte("zzzzzz"))
	if m2.Dead() {
		t.Error("leading-star pattern can always still match")
	}
}

func TestIncrementalLiveStates(t *testing.T) {
	m := NewIncremental("abc")
	if got := m.LiveStates(); got != 1 {
		t.Errorf("fresh literal matcher LiveStates = %d, want 1", got)
	}
	m.Feed([]byte("ab"))
	if got := m.LiveStates(); got != 1 {
		t.Errorf("mid-literal LiveStates = %d, want 1", got)
	}
	m.Feed([]byte("x"))
	if got := m.LiveStates(); got != 0 {
		t.Errorf("diverged matcher LiveStates = %d, want 0", got)
	}
	if !m.Dead() {
		t.Error("LiveStates 0 must agree with Dead")
	}

	// A leading star keeps its own state live forever; the closure also
	// lights the state after it, so the plateau is visible in the count.
	s := NewIncremental("*abc")
	base := s.LiveStates()
	if base < 2 {
		t.Errorf("star matcher LiveStates = %d, want >= 2", base)
	}
	s.Feed([]byte("zzzz"))
	if got := s.LiveStates(); got < 2 {
		t.Errorf("star matcher after junk LiveStates = %d, want >= 2", got)
	}
	if s.Dead() {
		t.Error("star matcher must never be dead")
	}
}

func TestIncrementalEmptyPattern(t *testing.T) {
	m := NewIncremental("")
	if !m.Matched() {
		t.Error("empty pattern should match empty input")
	}
	if m.Feed([]byte("a")) {
		t.Error("empty pattern must not match non-empty input")
	}
}

func TestHasWildcards(t *testing.T) {
	for pat, want := range map[string]bool{
		"abc":   false,
		"a*c":   true,
		"a?c":   true,
		"a[b]c": true,
		`a\*`:   true,
		"":      false,
	} {
		if got := HasWildcards(pat); got != want {
			t.Errorf("HasWildcards(%q) = %v, want %v", pat, got, want)
		}
	}
}

// randomPattern builds a small glob pattern over {a, b, *, ?, [ab]}.
func randomPattern(r *rand.Rand) string {
	n := r.Intn(8)
	var sb strings.Builder
	for k := 0; k < n; k++ {
		switch r.Intn(6) {
		case 0:
			sb.WriteByte('a')
		case 1:
			sb.WriteByte('b')
		case 2:
			sb.WriteByte('c')
		case 3:
			sb.WriteByte('*')
		case 4:
			sb.WriteByte('?')
		case 5:
			sb.WriteString("[ab]")
		}
	}
	return sb.String()
}

func randomInput(r *rand.Rand) string {
	n := r.Intn(12)
	var sb strings.Builder
	for k := 0; k < n; k++ {
		sb.WriteByte("abc"[r.Intn(3)])
	}
	return sb.String()
}

// Property: the incremental matcher agrees with the backtracking matcher on
// random pattern/input pairs, regardless of how the input is chunked.
func TestIncrementalEquivalenceQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pat := randomPattern(r)
		in := randomInput(r)
		want := Match(pat, in)

		whole := NewIncremental(pat).Feed([]byte(in))
		if whole != want {
			t.Logf("pat=%q in=%q: whole-feed=%v want=%v", pat, in, whole, want)
			return false
		}
		m := NewIncremental(pat)
		got := m.Matched()
		pos := 0
		for pos < len(in) {
			step := 1 + r.Intn(3)
			if pos+step > len(in) {
				step = len(in) - pos
			}
			got = m.Feed([]byte(in[pos : pos+step]))
			pos += step
		}
		if got != want {
			t.Logf("pat=%q in=%q: chunked=%v want=%v", pat, in, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: a pattern always matches itself once wildcards are escaped.
func TestEscapedSelfMatchQuick(t *testing.T) {
	f := func(s string) bool {
		var pat strings.Builder
		for i := 0; i < len(s); i++ {
			switch s[i] {
			case '*', '?', '[', '\\':
				pat.WriteByte('\\')
			}
			pat.WriteByte(s[i])
		}
		return Match(pat.String(), s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
