package proc

import (
	"errors"
	"io"
	"sync"
)

// memPipe is a buffered in-memory byte pipe with backpressure: writers
// block once cap bytes are buffered, the way a real pty's output queue
// clogs when nobody drains it (the paper notes free-running processes
// "will eventually clog the pty if not periodically flushed").
type memPipe struct {
	mu          sync.Mutex
	dataReady   *sync.Cond
	spaceReady  *sync.Cond
	buf         []byte
	max         int
	writeClosed bool
	readClosed  bool
	// notify, when set, is invoked (under mu) every time bytes become
	// readable or the pipe reaches EOF — the level-triggered doorbell the
	// sharded scheduler polls TryRead on. The callback must be non-blocking
	// and must not reenter the pipe.
	notify func()
}

// errPipeClosed is returned for writes into a pipe whose read side is gone.
var errPipeClosed = errors.New("proc: write to closed pipe")

func newMemPipe(max int) *memPipe {
	// A degenerate bound would make every Write park forever on spaceReady
	// (len(buf) >= 0 is always true); clamp so NewDuplexPair(0) behaves as
	// the smallest real pipe instead of deadlocking.
	if max < 1 {
		max = 1
	}
	p := &memPipe{max: max}
	p.dataReady = sync.NewCond(&p.mu)
	p.spaceReady = sync.NewCond(&p.mu)
	return p
}

func (p *memPipe) Read(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.buf) == 0 {
		if p.writeClosed || p.readClosed {
			return 0, io.EOF
		}
		p.dataReady.Wait()
	}
	n := copy(b, p.buf)
	p.buf = p.buf[n:]
	if len(p.buf) == 0 {
		p.buf = nil
	}
	p.spaceReady.Broadcast()
	return n, nil
}

func (p *memPipe) Write(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	written := 0
	for written < len(b) {
		if p.readClosed || p.writeClosed {
			return written, errPipeClosed
		}
		for len(p.buf) >= p.max {
			p.spaceReady.Wait()
			if p.readClosed || p.writeClosed {
				return written, errPipeClosed
			}
		}
		room := p.max - len(p.buf)
		chunk := b[written:]
		if len(chunk) > room {
			chunk = chunk[:room]
		}
		p.buf = append(p.buf, chunk...)
		written += len(chunk)
		p.dataReady.Broadcast()
		// Ring per chunk, not per call: a writer parked on spaceReady with
		// a full buffer has already made bytes readable, and a doorbell
		// deferred to return time would deadlock reader against writer.
		if p.notify != nil {
			p.notify()
		}
	}
	return written, nil
}

// TryRead is the non-blocking read the sharded scheduler drains pipes
// with: ok=false means no bytes were available and no terminal condition
// was reached (a blocking Read would have parked). At EOF it returns
// (0, true, io.EOF).
func (p *memPipe) TryRead(b []byte) (int, bool, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.buf) == 0 {
		if p.writeClosed || p.readClosed {
			return 0, true, io.EOF
		}
		return 0, false, nil
	}
	n := copy(b, p.buf)
	p.buf = p.buf[n:]
	if len(p.buf) == 0 {
		p.buf = nil
	}
	p.spaceReady.Broadcast()
	return n, true, nil
}

// SetReadNotify installs the readable-data doorbell. Data buffered before
// the handler was installed does not ring it; callers must do one
// unconditional sweep after installation or risk missing a child that
// spoke (or hung up) first.
func (p *memPipe) SetReadNotify(fn func()) {
	p.mu.Lock()
	p.notify = fn
	p.mu.Unlock()
}

// CloseWrite signals EOF to the reader once the buffer drains.
func (p *memPipe) CloseWrite() error {
	p.mu.Lock()
	p.writeClosed = true
	p.dataReady.Broadcast()
	p.spaceReady.Broadcast()
	if p.notify != nil {
		p.notify()
	}
	p.mu.Unlock()
	return nil
}

// CloseRead tears down the read side; subsequent writes fail.
func (p *memPipe) CloseRead() error {
	p.mu.Lock()
	p.readClosed = true
	p.buf = nil
	p.dataReady.Broadcast()
	p.spaceReady.Broadcast()
	if p.notify != nil {
		p.notify()
	}
	p.mu.Unlock()
	return nil
}

// Duplex is one endpoint of an in-memory bidirectional byte stream — the
// virtual-program analogue of a pty master or slave.
type Duplex struct {
	in  *memPipe // what this endpoint reads
	out *memPipe // what this endpoint writes
}

// NewDuplexPair creates a connected pair of endpoints, each side buffering
// up to capacity bytes in each direction.
func NewDuplexPair(capacity int) (*Duplex, *Duplex) {
	ab := newMemPipe(capacity)
	ba := newMemPipe(capacity)
	return &Duplex{in: ba, out: ab}, &Duplex{in: ab, out: ba}
}

func (d *Duplex) Read(b []byte) (int, error)  { return d.in.Read(b) }
func (d *Duplex) Write(b []byte) (int, error) { return d.out.Write(b) }

// TryRead non-blockingly drains this endpoint's inbound pipe (see
// memPipe.TryRead).
func (d *Duplex) TryRead(b []byte) (int, bool, error) { return d.in.TryRead(b) }

// SetReadNotify installs the inbound-data doorbell (see
// memPipe.SetReadNotify).
func (d *Duplex) SetReadNotify(fn func()) { d.in.SetReadNotify(fn) }

// Close shuts down both directions as seen from this endpoint: the peer
// reads EOF, and the peer's writes start failing.
func (d *Duplex) Close() error {
	d.out.CloseWrite()
	d.in.CloseRead()
	return nil
}

// CloseWrite half-closes: the peer reads EOF but can still write to us.
// close(1) in an expect script maps to this on virtual processes, matching
// "most interactive programs will detect EOF on their standard input".
func (d *Duplex) CloseWrite() error { return d.out.CloseWrite() }
