// Package proc is the process substrate of the expect engine: it spawns
// interactive programs and hands back a two-way byte channel to them
// (Figure 2 of the paper). Three transports are provided:
//
//   - pty: a real child process behind a pseudo-terminal, the paper's
//     mechanism (§2.1); programs opening /dev/tty talk to the engine.
//   - pipe: a real child over plain pipes — kept deliberately, because the
//     paper's comparisons (stelnet, §9; terminal-size programs, §2.1) need
//     a pipe-backed mode to demonstrate what ptys fix.
//   - virtual: an in-process Go function speaking over an in-memory duplex
//     stream. Tests and benchmarks use this to run thousands of dialogues
//     hermetically; the simulated programs of internal/programs run on
//     either a virtual transport or a real binary interchangeably.
package proc

import (
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"
	"sync/atomic"
	"syscall"

	"repro/internal/metrics"
	"repro/internal/pty"
	"repro/internal/trace"
)

// Kind names a transport flavor.
type Kind string

// Transport kinds.
const (
	KindPty     Kind = "pty"
	KindPipe    Kind = "pipe"
	KindVirtual Kind = "virtual"
	KindNetwork Kind = "network"
	// KindMux is a session multiplexed over a pooled gateway connection
	// (netx.MuxStream adopted via SpawnStream).
	KindMux Kind = "mux"
)

// Options configures spawning.
type Options struct {
	// Prof receives phase timings (pty init, fork); nil disables profiling.
	Prof *metrics.Profiler
	// Rows and Cols set the pty window size (pty transport only).
	// Zero values leave the kernel defaults.
	Rows, Cols uint16
	// RawOutput disables output post-processing on the pty slave so child
	// "\n" bytes arrive unmangled (no "\r\n" translation).
	RawOutput bool
	// NoEcho disables echo on the pty slave. Without it, everything the
	// engine sends is echoed back by the tty driver and shows up in the
	// match buffer — real expect scripts live with this; tests that want
	// exact streams turn it off.
	NoEcho bool
	// Env overrides the child environment (nil inherits).
	Env []string
	// Dir sets the child working directory.
	Dir string
	// BufferCap bounds each direction of a virtual transport (bytes).
	// Zero means a generous default.
	BufferCap int
	// WrapTransport, when non-nil, wraps the raw byte channel to the child
	// before the engine sees it. This is the injection point for
	// fault-injection transports (internal/faultify) and any other
	// stream-level instrumentation: the wrapper observes exactly the bytes
	// the kernel (or virtual duplex) would have delivered. If the wrapper
	// supports CloseWrite it should forward it to the wrapped stream, or
	// half-close stops working on pipe/virtual transports.
	WrapTransport func(io.ReadWriteCloser) io.ReadWriteCloser
	// Rec, when armed, receives a spawn event per successful spawn (pid,
	// program, transport kind), tagged with TraceSID — the engine passes
	// the reserved spawn id so the recording reads in script terms.
	Rec      *trace.Recorder
	TraceSID int32
}

const defaultBufferCap = 1 << 20

// wrap applies the WrapTransport hook, if any, to a freshly created
// transport stream.
func (o Options) wrap(rw io.ReadWriteCloser) io.ReadWriteCloser {
	if o.WrapTransport != nil {
		return o.WrapTransport(rw)
	}
	return rw
}

// recordSpawn logs a successful spawn in the flight recorder, if armed.
func (o Options) recordSpawn(name string, kind Kind, pid int) {
	if o.Rec.On() {
		o.Rec.Record(trace.KindSpawn, o.TraceSID, int64(pid), 0, false, name, string(kind))
	}
}

// Program is an in-process interactive program: it reads its "terminal"
// from stdin and writes to stdout, returning when the conversation ends.
// An io.EOF from stdin is the hangup signal.
type Program func(stdin io.Reader, stdout io.Writer) error

// Process is a spawned entity of any transport kind.
type Process struct {
	name string
	kind Kind
	rw   io.ReadWriteCloser
	pid  int

	cmd *exec.Cmd
	pt  *pty.Pty

	closeOnce sync.Once
	closeErr  error

	waitOnce   sync.Once
	waitStatus int
	waitErr    error
	virtDone   chan struct{}
	virtErr    error
	waitFn     func() (int, error)
}

var virtualPidCounter int64 = 70000

// SpawnPty starts program args under a freshly allocated pseudo-terminal.
func SpawnPty(name string, args []string, opt Options) (*Process, error) {
	stopPty := opt.Prof.Start(metrics.PhasePty)
	pt, err := pty.Open()
	if err != nil {
		stopPty()
		return nil, err
	}
	slave, err := pt.OpenSlave()
	if err != nil {
		pt.Close()
		stopPty()
		return nil, err
	}
	if opt.Rows != 0 || opt.Cols != 0 {
		if err := pty.SetWinsize(pt.Master, opt.Rows, opt.Cols); err != nil {
			slave.Close()
			pt.Close()
			stopPty()
			return nil, err
		}
	}
	if opt.RawOutput {
		if err := pty.DisableOutputProcessing(slave); err != nil {
			slave.Close()
			pt.Close()
			stopPty()
			return nil, err
		}
	}
	if opt.NoEcho {
		if err := pty.SetEcho(slave, false); err != nil {
			slave.Close()
			pt.Close()
			stopPty()
			return nil, err
		}
	}
	stopPty()

	cmd := exec.Command(name, args...)
	cmd.Stdin = slave
	cmd.Stdout = slave
	cmd.Stderr = slave // stderr overloads the stdout path, per §2.1
	cmd.Env = opt.Env
	cmd.Dir = opt.Dir
	cmd.SysProcAttr = &syscall.SysProcAttr{
		Setsid:  true,
		Setctty: true,
		Ctty:    0, // stdin, in the child's descriptor space
	}
	stopFork := opt.Prof.Start(metrics.PhaseFork)
	err = cmd.Start()
	stopFork()
	slave.Close() // parent keeps only the master
	if err != nil {
		pt.Close()
		return nil, fmt.Errorf("proc: spawn %s: %w", name, err)
	}
	opt.recordSpawn(name, KindPty, cmd.Process.Pid)
	return &Process{
		name: name,
		kind: KindPty,
		rw:   opt.wrap(pt.Master),
		pid:  cmd.Process.Pid,
		cmd:  cmd,
		pt:   pt,
	}, nil
}

// pipeRW glues a child's stdout (read side) and stdin (write side).
type pipeRW struct {
	io.Reader
	w io.WriteCloser
	r io.Closer
}

func (p *pipeRW) Write(b []byte) (int, error) { return p.w.Write(b) }
func (p *pipeRW) Close() error {
	err := p.w.Close()
	if cerr := p.r.Close(); err == nil {
		err = cerr
	}
	return err
}

// CloseWrite half-closes the child's stdin, delivering EOF while output
// remains readable.
func (p *pipeRW) CloseWrite() error { return p.w.Close() }

// SpawnPipe starts program args over plain pipes (no terminal semantics).
func SpawnPipe(name string, args []string, opt Options) (*Process, error) {
	cmd := exec.Command(name, args...)
	cmd.Env = opt.Env
	cmd.Dir = opt.Dir
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stderr = cmd.Stdout
	stopFork := opt.Prof.Start(metrics.PhaseFork)
	err = cmd.Start()
	stopFork()
	if err != nil {
		return nil, fmt.Errorf("proc: spawn %s: %w", name, err)
	}
	opt.recordSpawn(name, KindPipe, cmd.Process.Pid)
	return &Process{
		name: name,
		kind: KindPipe,
		rw:   opt.wrap(&pipeRW{Reader: stdout, w: stdin, r: stdout}),
		pid:  cmd.Process.Pid,
		cmd:  cmd,
	}, nil
}

// SpawnVirtual runs program in-process over an in-memory duplex stream.
// The fork phase is charged for symmetry with real spawns.
func SpawnVirtual(name string, program Program, opt Options) (*Process, error) {
	capacity := opt.BufferCap
	if capacity <= 0 {
		capacity = defaultBufferCap
	}
	stopFork := opt.Prof.Start(metrics.PhaseFork)
	engineSide, programSide := NewDuplexPair(capacity)
	p := &Process{
		name:     name,
		kind:     KindVirtual,
		rw:       opt.wrap(engineSide),
		pid:      int(atomic.AddInt64(&virtualPidCounter, 1)),
		virtDone: make(chan struct{}),
	}
	go func() {
		err := program(programSide, programSide)
		programSide.Close()
		p.virtErr = err
		close(p.virtDone)
	}()
	stopFork()
	opt.recordSpawn(name, KindVirtual, p.pid)
	return p, nil
}

// SpawnStream adopts an already-established byte stream — typically a
// netx socket connection — as a Process of the given kind. The stream
// passes through the same WrapTransport hook and spawn recording as the
// fork-based transports, so fault injection and tracing compose over it
// unchanged. wait, when non-nil, supplies the exit status once the
// stream's dialogue is over (netx maps clean hangup → 0, wire error → 1);
// nil makes Wait return status 0 immediately. The pid is synthetic, like
// a virtual program's.
func SpawnStream(name string, kind Kind, rw io.ReadWriteCloser, wait func() (int, error), opt Options) *Process {
	p := &Process{
		name:   name,
		kind:   kind,
		rw:     opt.wrap(rw),
		pid:    int(atomic.AddInt64(&virtualPidCounter, 1)),
		waitFn: wait,
	}
	opt.recordSpawn(name, kind, p.pid)
	return p
}

// Name returns the spawned program name.
func (p *Process) Name() string { return p.name }

// Kind returns the transport kind.
func (p *Process) Kind() Kind { return p.kind }

// Pid returns the process id (synthetic for virtual programs). This is the
// value the paper's spawn command returns — "Note that this is not
// equivalent to the descriptor spawn_id".
func (p *Process) Pid() int { return p.pid }

// Read reads child output from the transport.
func (p *Process) Read(b []byte) (int, error) { return p.rw.Read(b) }

// Write sends input to the child.
func (p *Process) Write(b []byte) (int, error) { return p.rw.Write(b) }

// TryReader is the non-blocking read half of an event-capable transport:
// TryRead returns ok=false when a blocking Read would have parked, and
// (0, true, io.EOF) once the stream is finished.
type TryReader interface {
	TryRead(b []byte) (n int, ok bool, err error)
}

// ReadNotifier is the doorbell half: fn is invoked whenever bytes become
// readable or EOF is reached. fn must be non-blocking and must not call
// back into the transport. Data present (or EOF reached) before
// installation does not ring it.
type ReadNotifier interface {
	SetReadNotify(fn func())
}

// EventCapable reports whether the transport supports the non-blocking
// TryRead + SetReadNotify pair the sharded scheduler needs to own a
// session without a dedicated reader goroutine. Unwrapped virtual
// transports qualify; ptys, pipes, and wrapped (fault-injected) streams
// do not and keep a feeder.
func (p *Process) EventCapable() bool {
	_, tr := p.rw.(TryReader)
	_, rn := p.rw.(ReadNotifier)
	return tr && rn
}

// TryRead forwards to the transport's non-blocking read; callers must
// check EventCapable first.
func (p *Process) TryRead(b []byte) (int, bool, error) {
	return p.rw.(TryReader).TryRead(b)
}

// SetReadNotify forwards the doorbell installation; callers must check
// EventCapable first.
func (p *Process) SetReadNotify(fn func()) {
	p.rw.(ReadNotifier).SetReadNotify(fn)
}

// Owned is a chunk of child output whose buffer ownership travels with
// it: the holder may alias Bytes until it calls Release, at which point
// the backing storage returns to its pool and every alias dies. This is
// the unit of zero-copy ingest — a pooled read segment handed from the
// socket reader to the engine whole instead of being copied through an
// intermediate slab.
type Owned interface {
	// Bytes returns the payload; valid only until Release.
	Bytes() []byte
	// Release returns the backing buffer to its owner. Must be called
	// exactly once; the payload must not be touched afterwards.
	Release()
}

// OwnedReader is the ownership-transfer read half of a zero-copy
// transport: TryReadOwned pops one whole owned chunk without copying,
// returning ok=false when nothing is buffered and (nil, true, io.EOF)
// once the stream is finished and drained. OwnedEnabled lets a transport
// that implements the interface decline at runtime (e.g. a legacy-mode
// connection that still buffers through a copying slab).
type OwnedReader interface {
	TryReadOwned() (Owned, bool, error)
	OwnedEnabled() bool
}

// OwnedCapable reports whether the transport can hand output chunks to
// the engine by ownership transfer. Requires the event pair too — owned
// ingest rides the same doorbell discipline as TryRead.
func (p *Process) OwnedCapable() bool {
	or, ok := p.rw.(OwnedReader)
	return ok && or.OwnedEnabled() && p.EventCapable()
}

// TryReadOwned forwards to the transport's ownership-transfer read;
// callers must check OwnedCapable first.
func (p *Process) TryReadOwned() (Owned, bool, error) {
	return p.rw.(OwnedReader).TryReadOwned()
}

// Transport exposes the raw transport for capability probes that need
// more than the forwarding methods (test harnesses, shard adoption).
func (p *Process) Transport() io.ReadWriteCloser { return p.rw }

// CloseWrite half-closes the channel toward the child when the transport
// supports it (pipe/virtual), delivering EOF on the child's stdin. Pty
// transports have a single bidirectional line, so CloseWrite is a no-op
// and callers should use Close.
func (p *Process) CloseWrite() error {
	type writeCloser interface{ CloseWrite() error }
	if wc, ok := p.rw.(writeCloser); ok {
		return wc.CloseWrite()
	}
	return nil
}

// Close tears down the connection to the child: "most interactive programs
// will detect EOF on their standard input and exit; thus close usually
// suffices to kill the process as well" (§3.2).
func (p *Process) Close() error {
	p.closeOnce.Do(func() {
		p.closeErr = p.rw.Close()
	})
	return p.closeErr
}

// Kill forcibly terminates a real child; it is the backstop for programs
// that ignore EOF/SIGHUP.
func (p *Process) Kill() error {
	if p.cmd != nil && p.cmd.Process != nil {
		return p.cmd.Process.Kill()
	}
	return nil
}

// Signal delivers sig to a real child (no-op for virtual programs).
func (p *Process) Signal(sig os.Signal) error {
	if p.cmd != nil && p.cmd.Process != nil {
		return p.cmd.Process.Signal(sig)
	}
	return nil
}

// Wait blocks until the child exits and returns its exit status. For
// virtual programs the status is 0, or 1 when the program returned an
// error (available via Err).
func (p *Process) Wait() (int, error) {
	p.waitOnce.Do(func() {
		switch {
		case p.cmd != nil:
			err := p.cmd.Wait()
			if err == nil {
				p.waitStatus = 0
				return
			}
			if ee, ok := err.(*exec.ExitError); ok {
				p.waitStatus = ee.ExitCode()
				return
			}
			p.waitErr = err
		case p.waitFn != nil:
			p.waitStatus, p.waitErr = p.waitFn()
		case p.virtDone != nil:
			<-p.virtDone
			if p.virtErr != nil {
				p.waitStatus = 1
			}
		}
	})
	return p.waitStatus, p.waitErr
}

// Err returns the error a virtual program returned, if any (after exit).
func (p *Process) Err() error {
	if p.virtDone != nil {
		select {
		case <-p.virtDone:
			return p.virtErr
		default:
			return nil
		}
	}
	return nil
}
