package proc

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"sync"
	"syscall"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/testutil"
)

func TestMemPipeBasic(t *testing.T) {
	p := newMemPipe(64)
	go func() {
		p.Write([]byte("hello"))
		p.CloseWrite()
	}()
	data, err := io.ReadAll(readerOnly{p})
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "hello" {
		t.Errorf("read %q", data)
	}
}

type readerOnly struct{ p *memPipe }

func (r readerOnly) Read(b []byte) (int, error) { return r.p.Read(b) }

func TestMemPipeBackpressure(t *testing.T) {
	p := newMemPipe(4)
	wrote := make(chan struct{})
	go func() {
		p.Write([]byte("abcdefgh")) // twice the capacity
		close(wrote)
	}()
	select {
	case <-wrote:
		t.Fatal("write of 8 bytes into 4-byte pipe did not block")
	case <-time.After(30 * time.Millisecond):
	}
	buf := make([]byte, 8)
	n, _ := p.Read(buf)
	if n == 0 {
		t.Fatal("no data readable")
	}
	select {
	case <-wrote:
	case <-time.After(2 * time.Second):
		// May need a second read.
		p.Read(buf)
		select {
		case <-wrote:
		case <-time.After(2 * time.Second):
			t.Fatal("writer still blocked after drain")
		}
	}
}

func TestMemPipeWriteAfterCloseRead(t *testing.T) {
	p := newMemPipe(16)
	p.CloseRead()
	if _, err := p.Write([]byte("x")); err == nil {
		t.Error("write after CloseRead succeeded")
	}
}

func TestMemPipeReadAfterCloseWriteDrains(t *testing.T) {
	p := newMemPipe(16)
	p.Write([]byte("tail"))
	p.CloseWrite()
	buf := make([]byte, 16)
	n, err := p.Read(buf)
	if err != nil || string(buf[:n]) != "tail" {
		t.Errorf("drain read = %q, %v", buf[:n], err)
	}
	if _, err := p.Read(buf); err != io.EOF {
		t.Errorf("after drain err = %v, want EOF", err)
	}
}

// Property: bytes written into a duplex arrive intact and in order on the
// peer, regardless of write chunking.
func TestDuplexOrderQuick(t *testing.T) {
	f := func(chunks [][]byte) bool {
		a, b := NewDuplexPair(128)
		var want bytes.Buffer
		for _, c := range chunks {
			want.Write(c)
		}
		go func() {
			for _, c := range chunks {
				if _, err := a.Write(c); err != nil {
					return
				}
			}
			a.CloseWrite()
		}()
		got, err := io.ReadAll(b)
		if err != nil {
			return false
		}
		return bytes.Equal(got, want.Bytes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDuplexBothDirections(t *testing.T) {
	a, b := NewDuplexPair(64)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, 16)
		n, _ := b.Read(buf)
		b.Write(bytes.ToUpper(buf[:n]))
	}()
	a.Write([]byte("ping"))
	buf := make([]byte, 16)
	n, err := a.Read(buf)
	if err != nil || string(buf[:n]) != "PING" {
		t.Errorf("echo = %q, %v", buf[:n], err)
	}
	wg.Wait()
}

func TestSpawnVirtualLifecycle(t *testing.T) {
	p, err := SpawnVirtual("greeter", func(stdin io.Reader, stdout io.Writer) error {
		fmt.Fprint(stdout, "hi\n")
		io.Copy(io.Discard, stdin)
		return nil
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind() != KindVirtual {
		t.Errorf("kind = %v", p.Kind())
	}
	if p.Pid() == 0 {
		t.Error("virtual pid is zero")
	}
	buf := make([]byte, 8)
	n, err := p.Read(buf)
	if err != nil || string(buf[:n]) != "hi\n" {
		t.Fatalf("read %q, %v", buf[:n], err)
	}
	p.Close()
	code, err := p.Wait()
	if err != nil || code != 0 {
		t.Errorf("wait = %d, %v", code, err)
	}
}

func TestSpawnVirtualErrorStatus(t *testing.T) {
	p, err := SpawnVirtual("bad", func(io.Reader, io.Writer) error {
		return fmt.Errorf("synthetic")
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	code, err := p.Wait()
	if err != nil || code != 1 {
		t.Errorf("wait = %d, %v", code, err)
	}
	if p.Err() == nil {
		t.Error("Err() lost the program error")
	}
}

func TestVirtualPidsUnique(t *testing.T) {
	seen := map[int]bool{}
	for i := 0; i < 20; i++ {
		p, err := SpawnVirtual("x", func(stdin io.Reader, stdout io.Writer) error { return nil }, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if seen[p.Pid()] {
			t.Fatalf("duplicate pid %d", p.Pid())
		}
		seen[p.Pid()] = true
		p.Close()
	}
}

func TestSpawnPipeCat(t *testing.T) {
	p, err := SpawnPipe("cat", nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Kind() != KindPipe {
		t.Errorf("kind = %v", p.Kind())
	}
	p.Write([]byte("round trip\n"))
	buf := make([]byte, 64)
	n, err := p.Read(buf)
	if err != nil || !strings.Contains(string(buf[:n]), "round trip") {
		t.Fatalf("read %q, %v", buf[:n], err)
	}
	p.CloseWrite()
	if code, err := p.Wait(); err != nil || code != 0 {
		t.Errorf("wait = %d, %v", code, err)
	}
}

func TestSpawnPtyCat(t *testing.T) {
	testutil.RequirePty(t)
	testutil.RequireCmd(t, "cat")
	p, err := SpawnPty("cat", nil, Options{RawOutput: true, NoEcho: true})
	if err != nil {
		t.Fatalf("SpawnPty: %v", err)
	}
	defer p.Close()
	if p.Kind() != KindPty {
		t.Errorf("kind = %v", p.Kind())
	}
	if p.Pid() <= 0 {
		t.Errorf("pid = %d", p.Pid())
	}
	p.Write([]byte("tty trip\n"))
	deadline := time.Now().Add(5 * time.Second)
	var acc []byte
	for time.Now().Before(deadline) {
		buf := make([]byte, 64)
		n, err := p.Read(buf)
		acc = append(acc, buf[:n]...)
		if strings.Contains(string(acc), "tty trip") {
			break
		}
		if err != nil {
			t.Fatalf("read error before echo: %v (got %q)", err, acc)
		}
	}
	if !strings.Contains(string(acc), "tty trip") {
		t.Fatalf("never saw data back through pty: %q", acc)
	}
	p.Kill()
	p.Wait()
}

// TestSpawnPtyIsATty pins §2.1: the child of a pty spawn believes it has a
// terminal; the child of a pipe spawn does not.
func TestSpawnPtyIsATty(t *testing.T) {
	testutil.RequirePty(t)
	testutil.RequireCmd(t, "sh")
	run := func(spawn func() (*Process, error)) string {
		p, err := spawn()
		if err != nil {
			t.Fatalf("spawn failed: %v", err)
		}
		defer p.Close()
		var acc []byte
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			buf := make([]byte, 64)
			n, err := p.Read(buf)
			acc = append(acc, buf[:n]...)
			if err != nil || bytes.Contains(acc, []byte("\n")) {
				break
			}
		}
		p.Wait()
		return string(acc)
	}
	ptyOut := run(func() (*Process, error) {
		return SpawnPty("sh", []string{"-c", "if [ -t 0 ]; then echo YES-TTY; else echo NO-TTY; fi"}, Options{})
	})
	if !strings.Contains(ptyOut, "YES-TTY") {
		t.Errorf("pty child does not see a tty: %q", ptyOut)
	}
	pipeOut := run(func() (*Process, error) {
		return SpawnPipe("sh", []string{"-c", "if [ -t 0 ]; then echo YES-TTY; else echo NO-TTY; fi"}, Options{})
	})
	if !strings.Contains(pipeOut, "NO-TTY") {
		t.Errorf("pipe child thinks it has a tty: %q", pipeOut)
	}
}

// TestDevTtyThroughPty pins the paper's /dev/tty property: "Programs that
// open /dev/tty will actually end up speaking to their pty."
func TestDevTtyThroughPty(t *testing.T) {
	testutil.RequirePty(t)
	testutil.RequireCmd(t, "sh")
	p, err := SpawnPty("sh", []string{"-c", "echo via-dev-tty > /dev/tty"}, Options{})
	if err != nil {
		t.Fatalf("spawn failed: %v", err)
	}
	defer p.Close()
	var acc []byte
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		buf := make([]byte, 64)
		n, err := p.Read(buf)
		acc = append(acc, buf[:n]...)
		if bytes.Contains(acc, []byte("via-dev-tty")) {
			break
		}
		if err != nil {
			break
		}
	}
	if !bytes.Contains(acc, []byte("via-dev-tty")) {
		t.Errorf("/dev/tty output did not reach the pty master: %q", acc)
	}
	p.Wait()
}

func TestSpawnPtyExitStatus(t *testing.T) {
	testutil.RequirePty(t)
	testutil.RequireCmd(t, "sh")
	p, err := SpawnPty("sh", []string{"-c", "exit 3"}, Options{})
	if err != nil {
		t.Fatalf("spawn failed: %v", err)
	}
	defer p.Close()
	code, err := p.Wait()
	if err != nil || code != 3 {
		t.Errorf("wait = %d, %v", code, err)
	}
}

func TestSpawnMissingBinary(t *testing.T) {
	if _, err := SpawnPty("/no/such/binary", nil, Options{}); err == nil {
		t.Error("pty spawn of missing binary succeeded")
	}
	if _, err := SpawnPipe("/no/such/binary", nil, Options{}); err == nil {
		t.Error("pipe spawn of missing binary succeeded")
	}
}

// TestSignalRealChild covers §7.3's signal story at the transport level:
// a child that traps SIGTERM reports it; Kill ends one that ignores EOF.
func TestSignalRealChild(t *testing.T) {
	testutil.RequirePty(t)
	testutil.RequireCmd(t, "sh")
	p, err := SpawnPty("sh", []string{"-c",
		`trap 'echo GOT-TERM; exit 0' TERM; echo armed; while true; do sleep 0.05; done`},
		Options{})
	if err != nil {
		t.Fatalf("spawn: %v", err)
	}
	defer p.Close()
	waitFor := func(needle string) bool {
		var acc []byte
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			buf := make([]byte, 128)
			n, err := p.Read(buf)
			acc = append(acc, buf[:n]...)
			if strings.Contains(string(acc), needle) {
				return true
			}
			if err != nil {
				return strings.Contains(string(acc), needle)
			}
		}
		return false
	}
	if !waitFor("armed") {
		t.Fatal("child never armed its trap")
	}
	if err := p.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if !waitFor("GOT-TERM") {
		t.Fatal("child never reported the signal")
	}
	if code, err := p.Wait(); err != nil || code != 0 {
		t.Errorf("wait = %d, %v", code, err)
	}
}

// TestKillBackstopsEOFIgnorers: close alone cannot end a child that
// ignores hangups; Kill is the documented backstop.
func TestKillBackstopsEOFIgnorers(t *testing.T) {
	testutil.RequirePty(t)
	testutil.RequireCmd(t, "sh")
	p, err := SpawnPty("sh", []string{"-c",
		`trap '' HUP; echo running; while true; do sleep 0.05; done`}, Options{})
	if err != nil {
		t.Fatalf("spawn: %v", err)
	}
	p.Close()
	if err := p.Kill(); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { p.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("HUP-ignoring child survived Kill")
	}
}
