// The transport contract suite: every transport the engine can sit on —
// virtual duplex, child-over-pipes, child-under-pty, and netx socket —
// must honor the same byte-channel contract, so the assertions live in
// one capability-annotated table instead of per-transport test files.
// Capabilities that genuinely differ (half-close, the TryRead/notify
// doorbell, how stream end is spelled) are declared per leg and the
// suite asserts both directions: a leg that claims a capability must
// exhibit it, and one that doesn't must refuse it detectably.
//
// The suite lives in package proc_test because the socket leg needs
// internal/netx, which itself imports proc.
package proc_test

import (
	"bytes"
	"io"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/netx"
	"repro/internal/proc"
	"repro/internal/testutil"
)

// contractLeg describes one transport under test.
type contractLeg struct {
	name string
	// skip gates the leg on host capabilities (skip, never fail).
	skip func(t *testing.T)
	// spawn starts a cat-like child (echoes stdin to stdout, exits on
	// EOF) under opt. cleanup tears down anything beyond the Process.
	spawn func(t *testing.T, opt proc.Options) (*proc.Process, func())
	// halfClose: CloseWrite delivers EOF to the child while its output
	// stays readable. Ptys have one bidirectional line and can't.
	halfClose bool
	// event: the unwrapped transport implements TryRead + SetReadNotify.
	event bool
	// cleanEOF: stream end arrives as io.EOF. A pty master instead
	// errors (EIO) when the child side hangs up.
	cleanEOF bool
	// owned: the transport hands chunks over by ownership transfer
	// (TryReadOwned) instead of copying. Only the segment-mode socket
	// qualifies; a legacy socket implements the methods but must decline
	// via OwnedEnabled.
	owned bool
}

func contractLegs() []contractLeg {
	return []contractLeg{
		{
			name: "virtual",
			spawn: func(t *testing.T, opt proc.Options) (*proc.Process, func()) {
				p, err := proc.SpawnVirtual("cat", func(stdin io.Reader, stdout io.Writer) error {
					io.Copy(stdout, stdin)
					return nil
				}, opt)
				if err != nil {
					t.Fatal(err)
				}
				return p, func() { p.Close() }
			},
			halfClose: true, event: true, cleanEOF: true,
		},
		{
			name: "pipe",
			skip: func(t *testing.T) { testutil.RequireCmd(t, "cat") },
			spawn: func(t *testing.T, opt proc.Options) (*proc.Process, func()) {
				p, err := proc.SpawnPipe("cat", nil, opt)
				if err != nil {
					t.Fatal(err)
				}
				return p, func() { p.Close(); p.Wait() }
			},
			halfClose: true, event: false, cleanEOF: true,
		},
		{
			name: "pty",
			skip: func(t *testing.T) { testutil.RequirePty(t); testutil.RequireCmd(t, "cat") },
			spawn: func(t *testing.T, opt proc.Options) (*proc.Process, func()) {
				opt.NoEcho = true
				opt.RawOutput = true
				p, err := proc.SpawnPty("cat", nil, opt)
				if err != nil {
					t.Fatal(err)
				}
				return p, func() { p.Close(); p.Kill(); p.Wait() }
			},
			halfClose: false, event: false, cleanEOF: false,
		},
		{
			name: "socket",
			spawn: func(t *testing.T, opt proc.Options) (*proc.Process, func()) {
				srv, err := netx.NewServer("127.0.0.1:0", func(stdin io.Reader, stdout io.Writer) error {
					io.Copy(stdout, stdin)
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
				nc, err := netx.Dial(srv.Addr(), netx.Options{})
				if err != nil {
					srv.Shutdown(0)
					t.Fatal(err)
				}
				p := proc.SpawnStream("cat", proc.KindNetwork, nc, nc.WaitStatus, opt)
				return p, func() {
					p.Close()
					if !srv.Shutdown(5 * time.Second) {
						t.Error("loopback server did not drain clean")
					}
				}
			},
			halfClose: true, event: true, cleanEOF: true, owned: true,
		},
		{
			// The frozen copying referee: same socket, same contract,
			// but chunks cross a byte slab instead of moving whole — it
			// must refuse the zero-copy capability at runtime.
			name: "socket-legacy",
			spawn: func(t *testing.T, opt proc.Options) (*proc.Process, func()) {
				srv, err := netx.NewServer("127.0.0.1:0", func(stdin io.Reader, stdout io.Writer) error {
					io.Copy(stdout, stdin)
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
				nc, err := netx.Dial(srv.Addr(), netx.Options{Legacy: true})
				if err != nil {
					srv.Shutdown(0)
					t.Fatal(err)
				}
				p := proc.SpawnStream("cat", proc.KindNetwork, nc, nc.WaitStatus, opt)
				return p, func() {
					p.Close()
					if !srv.Shutdown(5 * time.Second) {
						t.Error("loopback server did not drain clean")
					}
				}
			},
			halfClose: true, event: true, cleanEOF: true, owned: false,
		},
		{
			// A session multiplexed over a pooled gateway connection: the
			// full contract — half-close via CLOSE(half) frames, the
			// TryRead/notify doorbell, clean per-stream EOF, and segment
			// ownership transfer — over one shared TCP connection.
			name: "mux",
			spawn: func(t *testing.T, opt proc.Options) (*proc.Process, func()) {
				srv, err := netx.NewMuxServer("127.0.0.1:0", map[string]proc.Program{
					"cat": func(stdin io.Reader, stdout io.Writer) error {
						io.Copy(stdout, stdin)
						return nil
					},
				}, netx.MuxServerOptions{})
				if err != nil {
					t.Fatal(err)
				}
				pool := netx.NewMuxPool(netx.MuxOptions{})
				st, err := pool.Open(srv.Addr(), "cat")
				if err != nil {
					pool.Close()
					srv.Shutdown(0)
					t.Fatal(err)
				}
				p := proc.SpawnStream("cat", proc.KindMux, st, st.WaitStatus, opt)
				return p, func() {
					p.Close()
					if !srv.Shutdown(5 * time.Second) {
						t.Error("gateway did not drain clean")
					}
					pool.Close()
				}
			},
			halfClose: true, event: true, cleanEOF: true, owned: true,
		},
	}
}

// endInput tells the child no more input is coming: half-close where the
// transport can, the canonical-mode EOF character where it can't (pty).
func endInput(t *testing.T, lg contractLeg, p *proc.Process) {
	t.Helper()
	if lg.halfClose {
		if err := p.CloseWrite(); err != nil {
			t.Fatalf("CloseWrite: %v", err)
		}
		return
	}
	if _, err := p.Write([]byte{0x04}); err != nil {
		t.Fatalf("write EOF char: %v", err)
	}
}

// readUntil reads byte-at-a-time until the collected output contains
// want or a deadline passes.
func readUntil(t *testing.T, p *proc.Process, want string) {
	t.Helper()
	var got bytes.Buffer
	one := make([]byte, 1)
	deadline := time.Now().Add(5 * time.Second)
	for !bytes.Contains(got.Bytes(), []byte(want)) {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %q; got %q", want, got.String())
		}
		n, err := p.Read(one)
		got.Write(one[:n])
		if err != nil {
			t.Fatalf("read error %v; got %q, want %q", err, got.String(), want)
		}
	}
}

// drainToEnd reads until the stream reports its end and returns the
// terminal error.
func drainToEnd(t *testing.T, p *proc.Process) error {
	t.Helper()
	buf := make([]byte, 256)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("stream never ended after input closed")
		}
		if _, err := p.Read(buf); err != nil {
			return err
		}
	}
}

// TestTransportContractRoundTrip: bytes written reach the child, its
// echo comes back, ending input ends the stream with the leg's declared
// terminal condition, and the exit status is clean.
func TestTransportContractRoundTrip(t *testing.T) {
	for _, lg := range contractLegs() {
		lg := lg
		t.Run(lg.name, func(t *testing.T) {
			if lg.skip != nil {
				lg.skip(t)
			}
			defer testutil.LeakCheck(t, 10, 5*time.Second)()
			p, cleanup := lg.spawn(t, proc.Options{})
			defer cleanup()

			if _, err := p.Write([]byte("ping\n")); err != nil {
				t.Fatalf("write: %v", err)
			}
			readUntil(t, p, "ping\n")

			endInput(t, lg, p)
			err := drainToEnd(t, p)
			if lg.cleanEOF && err != io.EOF {
				t.Errorf("stream end = %v, want io.EOF", err)
			}
			if !lg.cleanEOF && err == nil {
				t.Error("stream end reported no error at all")
			}
			status, werr := p.Wait()
			if status != 0 || werr != nil {
				t.Errorf("Wait = (%d, %v), want (0, nil)", status, werr)
			}
		})
	}
}

// TestTransportContractNotify: event legs must expose the goroutine-free
// doorbell — idle TryRead parks nobody, arrival rings, EOF rings and is
// then readable as (0, true, io.EOF). Non-event legs must say so via
// EventCapable, not lie and block.
func TestTransportContractNotify(t *testing.T) {
	for _, lg := range contractLegs() {
		lg := lg
		t.Run(lg.name, func(t *testing.T) {
			if lg.skip != nil {
				lg.skip(t)
			}
			defer testutil.LeakCheck(t, 10, 5*time.Second)()
			p, cleanup := lg.spawn(t, proc.Options{})
			defer cleanup()

			if !lg.event {
				if p.EventCapable() {
					t.Fatalf("%s unexpectedly claims TryRead/SetReadNotify", lg.name)
				}
				return
			}
			if !p.EventCapable() {
				t.Fatalf("%s transport should be event-capable", lg.name)
			}

			rings := make(chan struct{}, 64)
			p.SetReadNotify(func() {
				select {
				case rings <- struct{}{}:
				default:
				}
			})
			buf := make([]byte, 64)
			if n, ok, err := p.TryRead(buf); n != 0 || ok || err != nil {
				t.Fatalf("idle TryRead = (%d, %v, %v), want (0, false, nil)", n, ok, err)
			}

			if _, err := p.Write([]byte("ding\n")); err != nil {
				t.Fatal(err)
			}
			select {
			case <-rings:
			case <-time.After(5 * time.Second):
				t.Fatal("doorbell never rang after child wrote")
			}
			var got []byte
			deadline := time.Now().Add(5 * time.Second)
			for !bytes.Contains(got, []byte("ding\n")) {
				if time.Now().After(deadline) {
					t.Fatalf("TryRead never yielded the echo; got %q", got)
				}
				n, ok, err := p.TryRead(buf)
				if err != nil {
					t.Fatalf("TryRead: %v (got %q)", err, got)
				}
				if ok {
					got = append(got, buf[:n]...)
				}
			}

			endInput(t, lg, p)
			deadline = time.Now().Add(5 * time.Second)
			for {
				if time.Now().After(deadline) {
					t.Fatal("TryRead never reported EOF after input closed")
				}
				n, ok, err := p.TryRead(buf)
				if ok && err == io.EOF {
					if n != 0 {
						t.Fatalf("EOF delivered with %d bytes", n)
					}
					break
				}
				if err != nil {
					t.Fatalf("TryRead: %v", err)
				}
				if !ok {
					select {
					case <-rings:
					case <-time.After(50 * time.Millisecond):
					}
				}
			}
		})
	}
}

// TestTransportContractOwned: owned legs must expose the zero-copy
// drain — idle TryReadOwned parks nobody, written bytes come back as
// whole released-once chunks, and stream end is (nil, true, io.EOF).
// Non-owned legs must refuse via OwnedCapable rather than hand out
// chunks with dangling ownership.
func TestTransportContractOwned(t *testing.T) {
	for _, lg := range contractLegs() {
		lg := lg
		t.Run(lg.name, func(t *testing.T) {
			if lg.skip != nil {
				lg.skip(t)
			}
			defer testutil.LeakCheck(t, 10, 5*time.Second)()
			p, cleanup := lg.spawn(t, proc.Options{})
			defer cleanup()

			if !lg.owned {
				if p.OwnedCapable() {
					t.Fatalf("%s unexpectedly claims ownership-transfer reads", lg.name)
				}
				return
			}
			if !p.OwnedCapable() {
				t.Fatalf("%s transport should support TryReadOwned", lg.name)
			}

			rings := make(chan struct{}, 64)
			p.SetReadNotify(func() {
				select {
				case rings <- struct{}{}:
				default:
				}
			})
			if o, ok, err := p.TryReadOwned(); o != nil || ok || err != nil {
				t.Fatalf("idle TryReadOwned = (%v, %v, %v), want (nil, false, nil)", o, ok, err)
			}

			if _, err := p.Write([]byte("ding\n")); err != nil {
				t.Fatal(err)
			}
			var got []byte
			deadline := time.Now().Add(5 * time.Second)
			for !bytes.Contains(got, []byte("ding\n")) {
				if time.Now().After(deadline) {
					t.Fatalf("TryReadOwned never yielded the echo; got %q", got)
				}
				o, ok, err := p.TryReadOwned()
				if err != nil {
					t.Fatalf("TryReadOwned: %v (got %q)", err, got)
				}
				if o != nil {
					if len(o.Bytes()) == 0 {
						t.Fatal("owned chunk with no payload")
					}
					got = append(got, o.Bytes()...)
					o.Release()
				}
				if !ok {
					select {
					case <-rings:
					case <-time.After(50 * time.Millisecond):
					}
				}
			}

			endInput(t, lg, p)
			deadline = time.Now().Add(5 * time.Second)
			for {
				if time.Now().After(deadline) {
					t.Fatal("TryReadOwned never reported EOF after input closed")
				}
				o, ok, err := p.TryReadOwned()
				if o != nil {
					o.Release()
					continue
				}
				if ok && err == io.EOF {
					break
				}
				if err != nil {
					t.Fatalf("TryReadOwned: %v", err)
				}
				if !ok {
					select {
					case <-rings:
					case <-time.After(50 * time.Millisecond):
					}
				}
			}
		})
	}
}

// countingWrap stands in for a fault-injection wrapper: it counts the
// operations flowing through and forwards half-close, which Options
// documents as the wrapper's obligation.
type countingWrap struct {
	rw          io.ReadWriteCloser
	reads       atomic.Int64
	writes      atomic.Int64
	closeWrites atomic.Int64
}

func (c *countingWrap) Read(b []byte) (int, error) {
	c.reads.Add(1)
	return c.rw.Read(b)
}

func (c *countingWrap) Write(b []byte) (int, error) {
	c.writes.Add(1)
	return c.rw.Write(b)
}

func (c *countingWrap) Close() error { return c.rw.Close() }

func (c *countingWrap) CloseWrite() error {
	c.closeWrites.Add(1)
	if cw, ok := c.rw.(interface{ CloseWrite() error }); ok {
		return cw.CloseWrite()
	}
	return nil
}

// TestTransportContractWrap: the WrapTransport hook must sit on the byte
// path of every transport — each engine read and write crosses it, and
// half-close routes through it to the real stream. A wrapped stream also
// loses the doorbell (the wrapper hides TryReader/ReadNotifier), which
// is what demotes fault-injected sessions to feeder mode.
func TestTransportContractWrap(t *testing.T) {
	for _, lg := range contractLegs() {
		lg := lg
		t.Run(lg.name, func(t *testing.T) {
			if lg.skip != nil {
				lg.skip(t)
			}
			defer testutil.LeakCheck(t, 10, 5*time.Second)()
			var wrap *countingWrap
			p, cleanup := lg.spawn(t, proc.Options{
				WrapTransport: func(rw io.ReadWriteCloser) io.ReadWriteCloser {
					wrap = &countingWrap{rw: rw}
					return wrap
				},
			})
			defer cleanup()
			if wrap == nil {
				t.Fatal("WrapTransport was not invoked")
			}
			if p.EventCapable() {
				t.Error("wrapped transport still claims the doorbell; fault injection would race the shard loop")
			}

			if _, err := p.Write([]byte("ping\n")); err != nil {
				t.Fatal(err)
			}
			readUntil(t, p, "ping\n")
			endInput(t, lg, p)
			drainToEnd(t, p)

			if wrap.reads.Load() == 0 || wrap.writes.Load() == 0 {
				t.Errorf("wrapper off the byte path: reads=%d writes=%d",
					wrap.reads.Load(), wrap.writes.Load())
			}
			if lg.halfClose && wrap.closeWrites.Load() == 0 {
				t.Error("CloseWrite bypassed the wrapper")
			}
		})
	}
}

// TestTransportContractCloseIdempotent: Close must be safe to call
// twice, returning the same verdict, and must end the stream for any
// reader still draining it.
func TestTransportContractCloseIdempotent(t *testing.T) {
	for _, lg := range contractLegs() {
		lg := lg
		t.Run(lg.name, func(t *testing.T) {
			if lg.skip != nil {
				lg.skip(t)
			}
			defer testutil.LeakCheck(t, 10, 5*time.Second)()
			p, cleanup := lg.spawn(t, proc.Options{})
			defer cleanup()

			err1 := p.Close()
			err2 := p.Close()
			if err1 != err2 {
				t.Errorf("second Close changed the verdict: %v then %v", err1, err2)
			}
			buf := make([]byte, 16)
			deadline := time.Now().Add(5 * time.Second)
			for {
				if time.Now().After(deadline) {
					t.Fatal("reads kept succeeding after Close")
				}
				if _, err := p.Read(buf); err != nil {
					break
				}
			}
		})
	}
}
