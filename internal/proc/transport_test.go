package proc

import (
	"bytes"
	"io"
	"testing"
	"time"
)

// TestVirtualWriteSplitsAtBufferCap pins the delivery contract the
// fault-injection transport depends on: a virtual program's write larger
// than BufferCap must not be delivered atomically — it is split at the cap,
// so a 1-byte cap yields strictly 1-byte arrivals and multi-byte patterns
// get torn across engine wakeups.
func TestVirtualWriteSplitsAtBufferCap(t *testing.T) {
	const payload = "login: password: welcome"
	for _, capacity := range []int{1, 3} {
		p, err := SpawnVirtual("w", func(stdin io.Reader, stdout io.Writer) error {
			_, err := stdout.Write([]byte(payload))
			return err
		}, Options{BufferCap: capacity})
		if err != nil {
			t.Fatal(err)
		}
		var got bytes.Buffer
		buf := make([]byte, len(payload)+16)
		for {
			n, err := p.Read(buf)
			if n > 0 {
				if n > capacity {
					t.Errorf("cap %d: read delivered %d bytes", capacity, n)
				}
				got.Write(buf[:n])
			}
			if err != nil {
				break
			}
		}
		if got.String() != payload {
			t.Errorf("cap %d: got %q, want %q", capacity, got.String(), payload)
		}
		p.Close()
	}
}

// TestVirtualOneByteCapPreservesWriteBlocking: with cap 1 the writer must
// still observe backpressure (each byte waits for the reader) rather than
// erroring or dropping data.
func TestVirtualOneByteCapPreservesWriteBlocking(t *testing.T) {
	wrote := make(chan error, 1)
	p, err := SpawnVirtual("w", func(stdin io.Reader, stdout io.Writer) error {
		_, werr := stdout.Write([]byte("abc"))
		wrote <- werr
		return werr
	}, Options{BufferCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	// Before any read at most 1 byte fits, so the write cannot finish.
	select {
	case err := <-wrote:
		t.Fatalf("3-byte write completed against a 1-byte cap before any read (err=%v)", err)
	case <-time.After(20 * time.Millisecond):
	}
	buf := make([]byte, 8)
	var got []byte
	for len(got) < 3 {
		n, rerr := p.Read(buf)
		got = append(got, buf[:n]...)
		if rerr != nil {
			t.Fatalf("read error %v after %q", rerr, got)
		}
	}
	if string(got) != "abc" {
		t.Fatalf("got %q", got)
	}
	if err := <-wrote; err != nil {
		t.Fatalf("write error: %v", err)
	}
}

// TestDuplexPairDegenerateCapacity: NewDuplexPair(0) historically armed a
// pipe whose writers waited forever for space that could never exist; the
// cap is clamped to the smallest real pipe instead.
func TestDuplexPairDegenerateCapacity(t *testing.T) {
	a, b := NewDuplexPair(0)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := a.Write([]byte("hi")); err != nil {
			t.Errorf("write: %v", err)
		}
	}()
	buf := make([]byte, 4)
	var got []byte
	for len(got) < 2 {
		n, err := b.Read(buf)
		got = append(got, buf[:n]...)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("write deadlocked on zero-capacity duplex")
	}
	if string(got) != "hi" {
		t.Fatalf("got %q", got)
	}
}

// The generalizable transport assertions (wrap-hook coverage, EOF
// ordering, half-close forwarding, notify semantics) live in the
// capability-annotated contract suite in transport_contract_test.go,
// which runs them against all four transports. This file keeps only the
// virtual-duplex-specific delivery pins above.
