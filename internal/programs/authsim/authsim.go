// Package authsim simulates the authentication-shaped programs the paper
// keeps returning to: passwd, the program whose insistence on prompting
// motivates the whole system (§1); a login greeter (the target of uucp
// chat scripts and stelnet); and an rn-style input-flushing program
// (§5.4), against which blind shell redirection demonstrably loses data.
package authsim

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/proc"
)

// crlfReader reads lines terminated by \n, \r, or \r\n — programs of this
// vintage sit behind ttys and modems, where bare carriage returns are the
// norm (uucp chat scripts send \r, not \n).
type crlfReader struct {
	in        *bufio.Reader
	lastWasCR bool
}

func newCRLFReader(r io.Reader) *crlfReader {
	return &crlfReader{in: bufio.NewReader(r)}
}

// ReadLine returns the next line (without its terminator) and whether the
// stream is still usable.
func (r *crlfReader) ReadLine() (string, bool) {
	var sb strings.Builder
	for {
		c, err := r.in.ReadByte()
		if err != nil {
			return sb.String(), sb.Len() > 0
		}
		switch c {
		case '\n':
			if r.lastWasCR && sb.Len() == 0 {
				// The \n of a \r\n pair: not a new line.
				r.lastWasCR = false
				continue
			}
			r.lastWasCR = false
			return sb.String(), true
		case '\r':
			r.lastWasCR = true
			return sb.String(), true
		default:
			r.lastWasCR = false
			sb.WriteByte(c)
		}
	}
}

// PasswdConfig configures the passwd clone.
type PasswdConfig struct {
	User        string
	OldPassword string
	// Dictionary lists forbidden passwords (the system dictionary of the
	// paper's §1 example: "rejects passwords that are in the system
	// dictionary").
	Dictionary []string
	// MinLength rejects short passwords (default 6).
	MinLength int
	// MaxTries bounds new-password attempts (default 3).
	MaxTries int
	// OnSuccess, when non-nil, receives the accepted password.
	OnSuccess func(newPassword string)
}

// NewPasswd returns the passwd program. Like the real one it refuses to
// take the password any way but interactively — there is no flag, no
// stdin-redirection convention, nothing: you must answer its prompts.
func NewPasswd(cfg PasswdConfig) proc.Program {
	minLen := cfg.MinLength
	if minLen == 0 {
		minLen = 6
	}
	maxTries := cfg.MaxTries
	if maxTries == 0 {
		maxTries = 3
	}
	dict := make(map[string]bool, len(cfg.Dictionary))
	for _, w := range cfg.Dictionary {
		dict[strings.ToLower(w)] = true
	}
	return func(stdin io.Reader, stdout io.Writer) error {
		in := newCRLFReader(stdin)
		readLine := in.ReadLine

		fmt.Fprintf(stdout, "Changing password for %s\n", cfg.User)
		if cfg.OldPassword != "" {
			fmt.Fprint(stdout, "Old password: ")
			old, ok := readLine()
			if !ok || old != cfg.OldPassword {
				fmt.Fprintln(stdout, "\nSorry.")
				return fmt.Errorf("passwd: bad old password")
			}
			fmt.Fprintln(stdout)
		}
		for try := 0; try < maxTries; try++ {
			fmt.Fprint(stdout, "New password: ")
			pw, ok := readLine()
			if !ok {
				return fmt.Errorf("passwd: EOF")
			}
			fmt.Fprintln(stdout)
			switch {
			case len(pw) < minLen:
				fmt.Fprintln(stdout, "Please use a longer password.")
				continue
			case dict[strings.ToLower(pw)]:
				fmt.Fprintln(stdout, "Please don't use an English word as your password.")
				continue
			}
			fmt.Fprint(stdout, "Retype new password: ")
			again, ok := readLine()
			if !ok {
				return fmt.Errorf("passwd: EOF")
			}
			fmt.Fprintln(stdout)
			if again != pw {
				fmt.Fprintln(stdout, "Mismatch - password unchanged.")
				return fmt.Errorf("passwd: mismatch")
			}
			if cfg.OnSuccess != nil {
				cfg.OnSuccess(pw)
			}
			fmt.Fprintln(stdout, "Password changed.")
			return nil
		}
		fmt.Fprintln(stdout, "Too many tries; password unchanged.")
		return fmt.Errorf("passwd: too many tries")
	}
}

// LoginConfig configures the login greeter.
type LoginConfig struct {
	// Accounts maps user names to passwords.
	Accounts map[string]string
	// Hostname appears in the banner (default "unixhost").
	Hostname string
	// Banner replaces the default pre-login banner when non-empty.
	Banner string
	// PromptVariant, when set, changes "login: " to "Username: " — the
	// kind of drift that breaks fixed chat scripts (experiment E12).
	PromptVariant bool
	// Busy makes the system print a busy message and hang up, another E12
	// failure mode.
	Busy bool
	// MaxAttempts before giving up (default 3) — the §5.4 lockout
	// countermeasure against relentless password guessing.
	MaxAttempts int
	// LoginDelay pauses before the first prompt (a slow getty).
	LoginDelay time.Duration
	// Mail holds messages the shell's mail command will print — used by
	// the §5.8 remote-mail-retrieval example.
	Mail []string
}

// NewLogin returns the login-plus-shell program. After authentication it
// answers a tiny command set (ls, who, echo, mail, logout) with a "$ "
// prompt, enough dialogue surface for every login-driving experiment.
func NewLogin(cfg LoginConfig) proc.Program {
	host := cfg.Hostname
	if host == "" {
		host = "unixhost"
	}
	maxAttempts := cfg.MaxAttempts
	if maxAttempts == 0 {
		maxAttempts = 3
	}
	return func(stdin io.Reader, stdout io.Writer) error {
		if cfg.LoginDelay > 0 {
			time.Sleep(cfg.LoginDelay)
		}
		if cfg.Busy {
			fmt.Fprintf(stdout, "\r\n%s: all lines busy, try again later\r\n", host)
			return fmt.Errorf("login: busy")
		}
		if cfg.Banner != "" {
			fmt.Fprintf(stdout, "%s\r\n", cfg.Banner)
		} else {
			fmt.Fprintf(stdout, "\r\n%s UNIX (4.3BSD)\r\n\r\n", host)
		}
		in := newCRLFReader(stdin)
		readLine := in.ReadLine
		prompt := "login: "
		if cfg.PromptVariant {
			prompt = "Username: "
		}
		var user string
		authed := false
		for attempt := 0; attempt < maxAttempts; attempt++ {
			fmt.Fprint(stdout, prompt)
			u, ok := readLine()
			if !ok {
				return nil
			}
			fmt.Fprint(stdout, "Password: ")
			p, ok := readLine()
			if !ok {
				return nil
			}
			fmt.Fprint(stdout, "\r\n")
			if want, exists := cfg.Accounts[u]; exists && want == p {
				user = u
				authed = true
				break
			}
			fmt.Fprint(stdout, "Login incorrect\r\n")
		}
		if !authed {
			return fmt.Errorf("login: too many attempts")
		}
		fmt.Fprintf(stdout, "Last login: Tue Jun  5 09:15:03 on ttyp0\r\nWelcome to %s.\r\n", host)
		mail := cfg.Mail
		if len(mail) > 0 {
			fmt.Fprint(stdout, "You have mail.\r\n")
		}
		for {
			fmt.Fprint(stdout, "$ ")
			line, ok := readLine()
			if !ok {
				return nil
			}
			fields := strings.Fields(line)
			if len(fields) == 0 {
				continue
			}
			switch fields[0] {
			case "logout", "exit":
				fmt.Fprint(stdout, "logout\r\n")
				return nil
			case "ls":
				fmt.Fprint(stdout, "Mail\t\tbin\t\tnotes.txt\r\n")
			case "who":
				fmt.Fprintf(stdout, "%s\tttyp0\tJun  5 09:15\r\n", user)
			case "echo":
				fmt.Fprintf(stdout, "%s\r\n", strings.Join(fields[1:], " "))
			case "mail":
				if len(mail) == 0 {
					fmt.Fprint(stdout, "No mail.\r\n")
					continue
				}
				for i, m := range mail {
					fmt.Fprintf(stdout, "Message %d:\r\n%s\r\n", i+1, m)
				}
				mail = nil
			default:
				fmt.Fprintf(stdout, "%s: Command not found.\r\n", fields[0])
			}
		}
	}
}

// FlusherConfig configures the rn-style input flusher of §5.4:
// "Particularly clever programs such as rn not only flush input already
// received but continue to flush input for a short time afterwards."
type FlusherConfig struct {
	// Commands is how many prompts the program issues.
	Commands int
	// ThinkTime is how long the program "works" before each prompt; input
	// arriving during this window is flushed unread.
	ThinkTime time.Duration
	// PostFlush keeps flushing for this long after each prompt would have
	// appeared following an error — modeled as a flat extension of the
	// flush window.
	PostFlush time.Duration
	// OnProcessed, when non-nil, is called with each command line that
	// actually survived to be read.
	OnProcessed func(line string)
}

// NewFlusher returns the flushing program. Input sent before a prompt is
// discarded, so a writer that does not wait for prompts (blind shell
// redirection) loses lines; expect, waiting for each prompt, loses none.
func NewFlusher(cfg FlusherConfig) proc.Program {
	return func(stdin io.Reader, stdout io.Writer) error {
		// A dedicated goroutine owns stdin and timestamps arrivals; the
		// command loop flushes whatever predates its prompt.
		input := make(chan []byte, 64)
		go func() {
			defer close(input)
			for {
				buf := make([]byte, 256)
				n, err := stdin.Read(buf)
				if n > 0 {
					input <- buf[:n]
				}
				if err != nil {
					return
				}
			}
		}()
		var pending []byte
		processed := 0
		for i := 0; i < cfg.Commands; i++ {
			// Think, then flush everything that arrived meanwhile.
			deadline := time.After(cfg.ThinkTime + cfg.PostFlush)
		flushLoop:
			for {
				select {
				case _, ok := <-input:
					if !ok {
						fmt.Fprintf(stdout, "processed %d of %d\n", processed, cfg.Commands)
						return nil
					}
					// flushed unread
				case <-deadline:
					break flushLoop
				}
			}
			pending = nil
			fmt.Fprintf(stdout, "Command %d> ", i+1)
			// Now read one line; input after the prompt is honored.
			line, ok := readLineFrom(input, &pending)
			if !ok {
				fmt.Fprintf(stdout, "processed %d of %d\n", processed, cfg.Commands)
				return nil
			}
			processed++
			if cfg.OnProcessed != nil {
				cfg.OnProcessed(line)
			}
			fmt.Fprintf(stdout, "ok: %s\n", line)
		}
		fmt.Fprintf(stdout, "processed %d of %d\n", processed, cfg.Commands)
		return nil
	}
}

func readLineFrom(input chan []byte, pending *[]byte) (string, bool) {
	var sb strings.Builder
	for {
		for len(*pending) > 0 {
			c := (*pending)[0]
			*pending = (*pending)[1:]
			if c == '\n' || c == '\r' {
				if sb.Len() == 0 {
					continue
				}
				return sb.String(), true
			}
			sb.WriteByte(c)
		}
		ch, ok := <-input
		if !ok {
			return sb.String(), sb.Len() > 0
		}
		*pending = append(*pending, ch...)
	}
}
