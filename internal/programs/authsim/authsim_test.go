package authsim

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

func TestPasswdHappyPath(t *testing.T) {
	var accepted string
	prog := NewPasswd(PasswdConfig{
		User:        "libes",
		OldPassword: "old-secret",
		Dictionary:  []string{"password", "dragon"},
		OnSuccess:   func(pw string) { accepted = pw },
	})
	s, err := core.SpawnProgram(nil, "passwd", prog)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.ExpectTimeout(2*time.Second, core.Glob("*Old password:*")); err != nil {
		t.Fatalf("old prompt: %v", err)
	}
	s.Send("old-secret\n")
	if _, err := s.ExpectTimeout(2*time.Second, core.Glob("*New password:*")); err != nil {
		t.Fatalf("new prompt: %v", err)
	}
	s.Send("xkcd-grue-42\n")
	if _, err := s.ExpectTimeout(2*time.Second, core.Glob("*Retype new password:*")); err != nil {
		t.Fatalf("retype prompt: %v", err)
	}
	s.Send("xkcd-grue-42\n")
	if _, err := s.ExpectTimeout(2*time.Second, core.Glob("*Password changed*")); err != nil {
		t.Fatalf("no success: %v", err)
	}
	if code, _ := s.Wait(); code != 0 {
		t.Errorf("exit %d", code)
	}
	if accepted != "xkcd-grue-42" {
		t.Errorf("accepted %q", accepted)
	}
}

// TestPasswdRejectsDictionary is the paper's opening problem: "it is
// impossible to write a [shell] script that, say, rejects passwords that
// are in the system dictionary" — passwd itself enforces it here, and an
// expect-driven dialogue can react to the rejection.
func TestPasswdRejectsDictionary(t *testing.T) {
	prog := NewPasswd(PasswdConfig{
		User:       "libes",
		Dictionary: []string{"dragon"},
	})
	s, err := core.SpawnProgram(nil, "passwd", prog)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.ExpectTimeout(2*time.Second, core.Glob("*New password:*")); err != nil {
		t.Fatalf("prompt: %v", err)
	}
	s.Send("dragon\n")
	// Anchored globs consume the whole buffer, so the rejection and the
	// retry prompt are matched together, idiomatic-expect style.
	if _, err := s.ExpectTimeout(2*time.Second, core.Glob("*English word*New password:*")); err != nil {
		t.Fatalf("no dictionary rejection + retry prompt: %v", err)
	}
	s.Send("g00d-and-l0ng\n")
	if _, err := s.ExpectTimeout(2*time.Second, core.Glob("*Retype*")); err != nil {
		t.Fatalf("no retype: %v", err)
	}
	s.Send("g00d-and-l0ng\n")
	if _, err := s.ExpectTimeout(2*time.Second, core.Glob("*changed*")); err != nil {
		t.Fatalf("no success: %v", err)
	}
}

func TestPasswdShortAndMismatch(t *testing.T) {
	prog := NewPasswd(PasswdConfig{User: "u"})
	s, err := core.SpawnProgram(nil, "passwd", prog)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.ExpectTimeout(2*time.Second, core.Glob("*New password:*"))
	s.Send("ab\n")
	if _, err := s.ExpectTimeout(2*time.Second, core.Glob("*longer*")); err != nil {
		t.Fatalf("no short rejection: %v", err)
	}
	s.ExpectTimeout(2*time.Second, core.Glob("*New password:*"))
	s.Send("long-enough\n")
	s.ExpectTimeout(2*time.Second, core.Glob("*Retype*"))
	s.Send("different\n")
	if _, err := s.ExpectTimeout(2*time.Second, core.Glob("*Mismatch*")); err != nil {
		t.Fatalf("no mismatch: %v", err)
	}
	if code, _ := s.Wait(); code == 0 {
		t.Error("mismatch exited 0")
	}
}

func TestPasswdWrongOld(t *testing.T) {
	prog := NewPasswd(PasswdConfig{User: "u", OldPassword: "right"})
	s, err := core.SpawnProgram(nil, "passwd", prog)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.ExpectTimeout(2*time.Second, core.Glob("*Old password:*"))
	s.Send("wrong\n")
	if _, err := s.ExpectTimeout(2*time.Second, core.Glob("*Sorry*")); err != nil {
		t.Fatalf("no rejection: %v", err)
	}
}

func loginSession(t *testing.T, cfg LoginConfig) *core.Session {
	t.Helper()
	s, err := core.SpawnProgram(nil, "login", NewLogin(cfg))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestLoginSuccessAndShell(t *testing.T) {
	s := loginSession(t, LoginConfig{
		Accounts: map[string]string{"don": "expect1990"},
		Hostname: "nist",
	})
	if _, err := s.ExpectTimeout(2*time.Second, core.Glob("*login:*")); err != nil {
		t.Fatalf("prompt: %v", err)
	}
	s.Send("don\n")
	s.ExpectTimeout(2*time.Second, core.Glob("*Password:*"))
	s.Send("expect1990\n")
	if _, err := s.ExpectTimeout(2*time.Second, core.Glob("*Welcome to nist*")); err != nil {
		t.Fatalf("welcome: %v", err)
	}
	// The shell reads lines as they come; anchored matches above already
	// consumed each prompt, so don't wait on them again.
	s.Send("echo hello there\n")
	if _, err := s.ExpectTimeout(2*time.Second, core.Glob("*hello there*")); err != nil {
		t.Fatalf("echo: %v", err)
	}
	s.Send("who\n")
	if _, err := s.ExpectTimeout(2*time.Second, core.Glob("*don*ttyp0*")); err != nil {
		t.Fatalf("who: %v", err)
	}
	s.Send("logout\n")
	if _, err := s.ExpectTimeout(2*time.Second, core.Glob("*logout*")); err != nil {
		t.Fatalf("logout: %v", err)
	}
}

func TestLoginLockout(t *testing.T) {
	s := loginSession(t, LoginConfig{
		Accounts:    map[string]string{"don": "right"},
		MaxAttempts: 2,
	})
	if _, err := s.ExpectTimeout(2*time.Second, core.Glob("*login:*")); err != nil {
		t.Fatalf("first prompt: %v", err)
	}
	// The greeter reads lines whether or not we pace ourselves, so feed
	// both failing attempts and watch both rejections arrive.
	s.Send("don\nwrong\ndon\nwrong\n")
	if _, err := s.ExpectTimeout(2*time.Second, core.Regexp(`(?s)Login incorrect.*Login incorrect`)); err != nil {
		t.Fatalf("rejections: %v", err)
	}
	// §5.4's countermeasure: the account locks out, the program exits.
	if _, err := s.ExpectTimeout(2*time.Second, core.EOFCase()); err != nil {
		t.Fatalf("after lockout: %v", err)
	}
	if code, _ := s.Wait(); code == 0 {
		t.Error("lockout exited 0")
	}
}

func TestLoginBusyVariant(t *testing.T) {
	s := loginSession(t, LoginConfig{Busy: true})
	if _, err := s.ExpectTimeout(2*time.Second, core.Glob("*busy*")); err != nil {
		t.Fatalf("busy banner: %v", err)
	}
}

func TestLoginPromptVariant(t *testing.T) {
	s := loginSession(t, LoginConfig{
		Accounts:      map[string]string{"don": "pw"},
		PromptVariant: true,
	})
	if _, err := s.ExpectTimeout(2*time.Second, core.Glob("*Username:*")); err != nil {
		t.Fatalf("variant prompt: %v", err)
	}
}

func TestLoginMail(t *testing.T) {
	s := loginSession(t, LoginConfig{
		Accounts: map[string]string{"don": "pw"},
		Mail:     []string{"From mci!sys: your build is done"},
	})
	s.ExpectTimeout(2*time.Second, core.Glob("*login:*"))
	s.Send("don\n")
	s.ExpectTimeout(2*time.Second, core.Glob("*Password:*"))
	s.Send("pw\n")
	if _, err := s.ExpectTimeout(2*time.Second, core.Glob("*You have mail*")); err != nil {
		t.Fatalf("mail notice: %v", err)
	}
	s.Send("mail\n")
	if _, err := s.ExpectTimeout(2*time.Second, core.Glob("*your build is done*")); err != nil {
		t.Fatalf("mail body: %v", err)
	}
}

// TestFlusherLosesBlindInput pins §5.4: input sent before the prompt is
// flushed; input sent after each prompt survives.
func TestFlusherLosesBlindInput(t *testing.T) {
	var mu sync.Mutex
	var processed []string
	record := func(line string) {
		mu.Lock()
		processed = append(processed, line)
		mu.Unlock()
	}
	cfg := FlusherConfig{Commands: 3, ThinkTime: 60 * time.Millisecond, OnProcessed: record}

	// Blind writer: everything up front, like `prog < cmds.txt`.
	s, err := core.SpawnProgram(nil, "rn", NewFlusher(cfg))
	if err != nil {
		t.Fatal(err)
	}
	s.Send("one\ntwo\nthree\n")
	s.CloseWrite() // blind writer is done; without EOF rn would wait forever
	if _, err := s.ExpectTimeout(5*time.Second, core.Glob("*processed*"), core.EOFCase()); err != nil {
		t.Fatalf("flusher never finished: %v", err)
	}
	s.Wait()
	s.Close()
	mu.Lock()
	blindCount := len(processed)
	processed = nil
	mu.Unlock()
	if blindCount == 3 {
		t.Error("blind writer lost nothing — flusher is not flushing")
	}

	// Prompt-aware writer (what expect does): wait for each prompt.
	s2, err := core.SpawnProgram(nil, "rn", NewFlusher(cfg))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for i, cmd := range []string{"one", "two", "three"} {
		if _, err := s2.ExpectTimeout(5*time.Second, core.Glob("*Command*> *")); err != nil {
			t.Fatalf("prompt %d: %v", i+1, err)
		}
		s2.Send(cmd + "\n")
	}
	r, err := s2.ExpectTimeout(5*time.Second, core.Glob("*processed 3 of 3*"), core.EOFCase())
	if err != nil {
		t.Fatalf("summary: %v", err)
	}
	_ = r
	mu.Lock()
	awareCount := len(processed)
	mu.Unlock()
	if awareCount != 3 {
		t.Errorf("prompt-aware writer processed %d of 3", awareCount)
	}
}
